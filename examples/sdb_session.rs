//! A scripted `sdb` session — the command-line face of the debugger the
//! paper's interface was built for.
//!
//! Run with: `cargo run --example sdb_session`

use procsim::ksim::Cred;
use procsim::tools::{self, Sdb};

fn main() {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("sdb", Cred::new(100, 10));
    let script = [
        "dis tick 2",
        "b tick",
        "cont",
        "where",
        "regs",
        "cont",
        "cont",
        "x tick 2",
        "map",
        "kill",
    ];
    println!("$ sdb /bin/ticker");
    for line in &script {
        println!("sdb> {line}");
    }
    println!("--- transcript ---");
    let transcript =
        Sdb::run_script(&mut sys, ctl, "/bin/ticker", &["ticker"], &script).expect("session");
    print!("{transcript}");
}
