//! System-call encapsulation: "older system calls or alternate versions
//! of them can be simulated entirely at user level. (This is one way in
//! which obsolete facilities could be supported 'forever' without
//! cluttering up the operating system.)"
//!
//! `/bin/retired` calls a system call the kernel no longer implements
//! (it fails with ENOSYS). A controlling process traces entry to the
//! call, aborts the kernel's execution, and manufactures the return
//! value the old kernel would have produced — the target cannot tell the
//! difference.
//!
//! Run with: `cargo run --example encapsulate_syscall`

use procsim::ksim::ptrace::{decode_status, WaitStatus};
use procsim::ksim::sysno::{SysSet, SYS_RETIRED};
use procsim::ksim::Cred;
use procsim::tools::{self, Debugger};

fn main() {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("emulator", Cred::new(100, 10));

    // First, without encapsulation: the kernel refuses the call and the
    // program gives up with 255.
    let pid = sys.spawn_program(ctl, "/bin/retired", &["retired"]).expect("spawn");
    let _ = pid;
    let (_, status) = sys.host_wait(ctl).expect("wait");
    println!("uncontrolled run exits with {:?} (the kernel says ENOSYS)", decode_status(status));

    // Now under encapsulation.
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/retired", &["retired"]).expect("launch");
    let mut calls = SysSet::empty();
    calls.add(SYS_RETIRED as usize);
    let mut emulated = 0u64;
    let status = dbg
        .encapsulate(&mut sys, calls, |nr, regs| {
            emulated += 1;
            println!(
                "  intercepted {} (arg {}): kernel aborted, answering {}",
                procsim::ksim::sysno::sys_name(nr),
                regs.arg(0),
                regs.arg(0) * 6
            );
            Ok(regs.arg(0) * 6)
        })
        .expect("encapsulate");
    match decode_status(status) {
        WaitStatus::Exited(code) => {
            println!("encapsulated run exits with code {code} after {emulated} emulated call(s)");
        }
        other => println!("unexpected end: {other:?}"),
    }
}
