//! The proposed watchpoint facility: watched areas "of any size, down to
//! a single byte"; the process stops only when a watchpoint really
//! fires, while references to unwatched data in the same page are
//! recovered transparently by the system.
//!
//! Run with: `cargo run --example watchpoints`

use procsim::ksim::{Cred, Fault};
use procsim::procfs::{PrRun, PrWatch, PRRUN_CFAULT, PRRUN_WBYPASS};
use procsim::tools::{self, ProcHandle};

fn main() {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("watcher", Cred::new(100, 10));
    let pid = sys.spawn_program(ctl, "/bin/watched", &["watched"]).expect("spawn");

    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open /proc file");
    h.stop(&mut sys).expect("stop");
    // Find the watched cell from the symbol table (via PIOCOPENM).
    let aout = h.read_aout(&mut sys).expect("read a.out");
    let cell = aout.sym("cell").expect("cell symbol");
    println!("watching 8 bytes at {cell:#x} for writes");

    let mut flt = procsim::ksim::FltSet::empty();
    flt.add(Fault::Watch.number());
    h.set_flt_trace(&mut sys, flt).expect("trace FLTWATCH");
    h.set_watch(&mut sys, PrWatch { vaddr: cell, size: 8, flags: 2 }).expect("set watch");
    h.resume(&mut sys).expect("run");

    for i in 1..=3 {
        let st = h.wstop(&mut sys).expect("wait for stop");
        let usage = h.usage(&mut sys).expect("usage");
        println!(
            "hit {i}: stopped on {} at pc={:#x}; transparent same-page recoveries so far: {}",
            Fault::from_number(st.what as usize).map(|f| f.name()).unwrap_or("?"),
            st.reg.pc,
            usage.watch_recoveries,
        );
        // Step over the watched access (one-shot bypass) and continue.
        h.run(&mut sys, PrRun { flags: PRRUN_CFAULT | PRRUN_WBYPASS, vaddr: 0 })
            .expect("run");
    }

    // Remove the watchpoint: the target runs free.
    h.set_watch(&mut sys, PrWatch { vaddr: cell, size: 0, flags: 0 }).expect("remove");
    sys.run_idle(100);
    let st = h.status(&mut sys).expect("status");
    println!(
        "watch removed; target running again (stopped={})",
        st.flags & procsim::procfs::PR_STOPPED != 0
    );
}
