//! `truss -f`: follow children across fork, each process reported under
//! its own pid — the multi-process control story of the paper
//! (inherit-on-fork + stop-on-fork-exit).
//!
//! Run with: `cargo run --example truss_follow`

use procsim::ksim::Cred;
use procsim::tools::{self, truss_command, TrussOptions};

fn main() {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("truss", Cred::new(100, 10));

    println!("$ truss -f /bin/forker");
    let report = truss_command(
        &mut sys,
        ctl,
        "/bin/forker",
        &["forker"],
        &TrussOptions { follow: true, ..Default::default() },
    )
    .expect("truss");
    println!("{}", report.text());

    println!("\nper-syscall completion counts:");
    for (nr, count) in &report.counts {
        println!("  {:<12} {}", procsim::ksim::sysno::sys_name(*nr), count);
    }
    println!("\n{} process exits observed", report.exits.len());

    println!("\n$ truss /bin/forker            (children unmolested)");
    let report = truss_command(
        &mut sys,
        ctl,
        "/bin/forker",
        &["forker"],
        &TrussOptions { follow: false, ..Default::default() },
    )
    .expect("truss");
    println!("{} exits observed (only the parent)", report.exits.len());
}
