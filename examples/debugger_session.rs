//! A debugger session: breakpoints, conditional breakpoints,
//! single-stepping, register and memory inspection, disassembly —
//! everything the paper says `/proc` provides "sufficient mechanism" for.
//!
//! Run with: `cargo run --example debugger_session`

use procsim::ksim::Cred;
use procsim::tools::{self, DebugEvent, Debugger};

fn main() {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("sdb", Cred::new(100, 10));

    // Launch /bin/ticker stopped before its first instruction.
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
    println!("launched /bin/ticker as pid {}", dbg.pid());

    // Symbols come from the executable found via PIOCOPENM — no pathname
    // was needed.
    let tick = dbg.sym("tick").expect("symbol tick");
    println!("tick is at {tick:#x}; disassembly:");
    print!("{}", dbg.disassemble(&mut sys, tick, 2).expect("disassemble"));

    // Plain breakpoint: stop the first three calls.
    dbg.set_breakpoint(&mut sys, tick).expect("breakpoint");
    for _ in 0..3 {
        let ev = dbg.cont(&mut sys).expect("cont");
        let regs = dbg.regs(&mut sys).expect("regs");
        println!("stopped: {ev:?}; a0 (call count) = {}", regs.arg(0));
    }

    // Single steps.
    for _ in 0..2 {
        dbg.step(&mut sys).expect("step");
        let regs = dbg.regs(&mut sys).expect("regs");
        println!("stepped to pc={:#x}", regs.pc);
    }

    // Conditional breakpoint: report only when a0 == 10.
    dbg.clear_breakpoint(&mut sys, tick).expect("clear");
    dbg.set_conditional_breakpoint(&mut sys, tick, Box::new(|r| r.arg(0) == 10))
        .expect("conditional");
    match dbg.cont(&mut sys).expect("cont") {
        DebugEvent::Breakpoint { addr, hits } => {
            let regs = dbg.regs(&mut sys).expect("regs");
            println!(
                "conditional hit at {addr:#x} after {hits} silent skips; a0 = {}",
                regs.arg(0)
            );
        }
        other => println!("unexpected event {other:?}"),
    }

    // Rewrite a register through /proc: jump the counter ahead.
    let mut regs = dbg.regs(&mut sys).expect("regs");
    regs.set_arg(0, 1000);
    dbg.set_regs(&mut sys, &regs).expect("set regs");
    dbg.clear_breakpoint(&mut sys, tick).expect("clear");
    dbg.set_conditional_breakpoint(&mut sys, tick, Box::new(|r| r.arg(0) >= 1002))
        .expect("conditional");
    if let DebugEvent::Breakpoint { .. } = dbg.cont(&mut sys).expect("cont") {
        let regs = dbg.regs(&mut sys).expect("regs");
        println!("after register rewrite, a0 = {}", regs.arg(0));
    }

    dbg.kill(&mut sys).expect("kill");
    println!("target killed; session over");
}
