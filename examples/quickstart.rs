//! Quickstart: boot the simulated system, look at `/proc`, and trace a
//! program with `truss`.
//!
//! Run with: `cargo run --example quickstart`

use procsim::ksim::Cred;
use procsim::tools::{self, truss_command, TrussOptions, UserTable};

fn main() {
    // Boot a system with both /proc generations mounted and the demo
    // userland installed in the root file system.
    let mut sys = tools::boot_demo();

    // Controlling programs are *hosted processes*: they occupy a pid and
    // credentials inside the simulation, but their logic is Rust code.
    let root = sys.spawn_hosted("demo", Cred::superuser());
    let user = sys.spawn_hosted("user-shell", Cred::new(100, 10));

    // Start a couple of background processes so the listing is lively.
    sys.spawn_program(user, "/bin/spin", &["spin"]).expect("spawn spin");
    sys.spawn_program(user, "/bin/sleeper", &["sleeper"]).expect("spawn sleeper");
    sys.run_idle(500);

    // Figure 1: every process is a file.
    let mut users = UserTable::default();
    users.add_user(100, "raf");
    println!("$ ls -l /proc");
    print!("{}", tools::lsproc::ls_l_proc(&mut sys, root, &users).expect("ls"));

    // ps: one PIOCPSINFO per process, each line a true snapshot.
    println!("\n$ ps -ef");
    let opts = tools::ps::PsOptions { all: true, full: true };
    print!("{}", tools::ps::ps(&mut sys, root, &opts, &users).expect("ps"));

    // truss: intercept every system call of a command.
    println!("\n$ truss /bin/greeter");
    let report = truss_command(
        &mut sys,
        user,
        "/bin/greeter",
        &["greeter"],
        &TrussOptions::default(),
    )
    .expect("truss");
    println!("{}", report.text());
}
