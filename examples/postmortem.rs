//! Post-mortem debugging: a program dies on a fault, the kernel writes
//! `/tmp/core.<pid>`, and the analysis tool produces a symbolised death
//! report — "psig() terminates the process, possibly with a core dump."
//!
//! Run with: `cargo run --example postmortem`

use procsim::ksim::Cred;
use procsim::tools::{self, postmortem};

fn main() {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("coroner", Cred::new(100, 10));

    // A program that calls into a helper and divides by zero there.
    let src = r#"
        _start:
            movi a0, 21
            call halve_badly
            movi rv, 1
            syscall
        halve_badly:
            push ra
            movi a1, 0
            div  a0, a0, a1      ; boom
            pop  ra
            ret
    "#;
    sys.install_program("/bin/crashy", src);
    let pid = sys.spawn_program(ctl, "/bin/crashy", &["crashy"]).expect("spawn");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    println!(
        "the program died: {:?}\n",
        procsim::ksim::ptrace::decode_status(status)
    );

    let pm = postmortem::load(&mut sys, ctl, pid, Some("/bin/crashy")).expect("core");
    print!("{}", pm.report());

    println!("\nreturn addresses visible in the stack snapshot:");
    for addr in pm.backtrace_candidates() {
        println!("  {addr:#x}");
    }
}
