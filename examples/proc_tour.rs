//! A tour of both `/proc` generations on one process: the flat SVR4
//! interface (Figures 1 and 2) and the proposed hierarchical
//! restructuring, including batched control messages and per-LWP files.
//!
//! Run with: `cargo run --example proc_tour`

use procsim::ksim::Cred;
use procsim::procfs::hier::{ctl_batch, ctl_record, PCDSTOP, PCRUN, PCWSTOP};
use procsim::procfs::{PrStatus, PsInfo};
use procsim::tools::{self, pmap};
use procsim::vfs::OFlags;

fn main() {
    let mut sys = tools::boot_demo();
    let ctl = sys.spawn_hosted("tour", Cred::new(100, 10));
    // A multi-threaded target linked against a shared library would be
    // ideal; use the library client for the map and the threaded program
    // for the LWP tree.
    let libuser = sys.spawn_program(ctl, "/bin/libuser", &["libuser"]).expect("spawn");
    let threaded = sys.spawn_program(ctl, "/bin/threaded", &["threaded"]).expect("spawn");

    // Take the library client's map before it runs to completion.
    println!("== Figure 2: the memory map of /bin/libuser (PIOCMAP) ==");
    print!("{}", pmap::pmap(&mut sys, ctl, libuser).expect("pmap"));
    sys.run_idle(300);

    println!("\n== The same process through the hierarchy ==");
    let dir = format!("/proc2/{}", threaded.0);
    for e in sys.list_dir(ctl, &dir).expect("list") {
        println!("  {dir}/{}", e.name);
    }
    for e in sys.list_dir(ctl, &format!("{dir}/lwp")).expect("list lwp") {
        println!("  {dir}/lwp/{}/{{status,ctl,gregs}}", e.name);
    }

    // Read psinfo as a plain file.
    let fd = sys.host_open(ctl, &format!("{dir}/psinfo"), OFlags::rdonly()).expect("open");
    let mut buf = vec![0u8; PsInfo::WIRE_LEN];
    sys.host_read(ctl, fd, &mut buf).expect("read");
    let info = PsInfo::from_bytes(&buf).expect("decode");
    println!(
        "\npsinfo by read(2): pid={} cmd={} lwps={} size={}K",
        info.pid,
        info.fname,
        info.nlwp,
        info.size / 1024
    );

    // Batched control: direct a stop and wait for it in ONE write.
    let cfd = sys.host_open(ctl, &format!("{dir}/ctl"), OFlags::wronly()).expect("open ctl");
    let batch = ctl_batch(&[(PCDSTOP, vec![]), (PCWSTOP, vec![])]);
    sys.host_write(ctl, cfd, &batch).expect("batched stop+wait");
    let sfd = sys.host_open(ctl, &format!("{dir}/status"), OFlags::rdonly()).expect("open");
    let mut sbuf = vec![0u8; PrStatus::WIRE_LEN];
    sys.host_read(ctl, sfd, &mut sbuf).expect("read");
    let st = PrStatus::from_bytes(&sbuf).expect("decode");
    println!(
        "one write stopped the process: why={:?}, {} LWPs",
        st.why, st.nlwp
    );

    // Per-LWP registers.
    for tid in 1..=2u32 {
        let gfd = sys
            .host_open(ctl, &format!("{dir}/lwp/{tid}/gregs"), OFlags::rdonly())
            .expect("open gregs");
        let mut gbuf = vec![0u8; procsim::isa::GregSet::WIRE_LEN];
        sys.host_read(ctl, gfd, &mut gbuf).expect("read");
        let regs = procsim::isa::GregSet::from_bytes(&gbuf).expect("decode");
        println!("LWP {tid}: pc = {:#x}", regs.pc);
    }

    // Release it.
    sys.host_write(ctl, cfd, &ctl_record(PCRUN, &[])).expect("run");
    println!("released");
}
