//! SVR4-style virtual memory for the procsim kernel.
//!
//! The paper's process model rests on the SVR4 VM architecture (derived
//! from SunOS): a process executes in an address space consisting of a
//! number of *mappings* — contiguous virtual ranges, each with a
//! protection, a private/shared flag, and a backing *object* (a file or
//! anonymous zero-fill memory). "Text", "data" and "stack" are not special
//! in the model; they are ordinary mappings distinguished only by a name
//! recorded for tools such as `PIOCMAP`.
//!
//! This crate implements that model:
//!
//! * [`ObjectStore`] — reference-counted backing objects holding 4 KiB
//!   page frames ([`page::PageFrame`], shared via `Arc`);
//! * [`Mapping`] — a virtual range with protections, flags, an object
//!   reference, and (for `MAP_PRIVATE`) a copy-on-write overlay of private
//!   frames;
//! * [`AddressSpace`] — the ordered set of mappings plus the paper's
//!   `as_fault` operation, transparent stack growth, the `brk` segment,
//!   and the proposed watchpoint facility's watched areas.
//!
//! Copy-on-write works at two levels, both required by the paper:
//!
//! 1. multiple private mappings of one object share the object's frames
//!    until a write, at which point the written page is copied into the
//!    mapping's overlay ("private mappings are implemented so as to
//!    provide copy-on-write semantics");
//! 2. `fork` clones an address space by cloning overlay maps — the frames
//!    themselves stay shared (`Arc`) until either side writes
//!    (`Arc::make_mut` clones the frame lazily).
//!
//! Crucially for `/proc`: [`AddressSpace::kernel_write`] bypasses page
//! protections but *honours* copy-on-write for private mappings, so a
//! controlling process can plant breakpoints in a read/execute text
//! mapping without corrupting the executable file or any other process
//! running the same image. Only bona-fide shared memory (`MAP_SHARED`)
//! is written through to the object.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The execution fast path runs under every guest instruction: any
// fallible case must surface a typed `AccessDenied`/`MapError`, never a
// panic. Test modules opt back in with a local `allow`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod error;
pub mod map;
pub mod object;
pub mod page;
pub mod space;
pub mod watch;

pub use error::AccessDenied;
pub use map::{MapFlags, Mapping, Prot, SegName};
pub use object::{MemPressure, Object, ObjectId, ObjectKind, ObjectStore};
pub use page::{PageFrame, PAGE_SIZE};
pub use space::{AddressSpace, TlbStats};
pub use watch::{WatchArea, WatchFlags};
