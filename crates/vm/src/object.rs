//! Backing objects: the things mappings map.
//!
//! "The system provides suitably-behaving anonymous objects to which
//! mappings may be applied in the construction of other segments (e.g.
//! 'bss', uninitialized zero-filled memory)." File objects carry the
//! identity of the underlying vnode so `PIOCOPENM` can hand a debugger a
//! file descriptor for the mapped object (shared-library symbol tables
//! without pathnames).

use crate::page::{page_chunks, PageFrame, PAGE_SIZE};
use std::collections::BTreeMap;

/// Handle to an object in an [`ObjectStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// What an object is backed by.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectKind {
    /// Anonymous zero-fill memory (bss, stack, heap, shared memory).
    Anon,
    /// A cached file image. `fs`/`node` identify the vnode for
    /// `PIOCOPENM`; `path` is advisory (diagnostics only — the interface
    /// itself never needs pathnames).
    File {
        /// File-system identifier of the backing vnode.
        fs: u32,
        /// Node identifier within that file system.
        node: u64,
        /// Advisory pathname recorded at map time.
        path: String,
    },
}

/// A backing object: a sparse collection of page frames plus a length.
/// Pages not present read as zeroes and are materialised on first write.
#[derive(Clone, Debug)]
pub struct Object {
    /// Backing kind.
    pub kind: ObjectKind,
    /// Logical length in bytes (reads beyond it still succeed within the
    /// mapped range; the length records the initialised extent).
    pub len: u64,
    pages: BTreeMap<u64, PageFrame>,
    refs: u32,
}

impl Object {
    /// Reads `buf.len()` bytes at `off`; absent pages read as zero.
    pub fn read_at(&self, off: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        for (page, poff, n) in page_chunks(off, buf.len() as u64) {
            match self.pages.get(&page) {
                Some(frame) => buf[done..done + n].copy_from_slice(&frame.bytes()[poff..poff + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Writes `data` at `off`, materialising pages as needed and extending
    /// the logical length.
    pub fn write_at(&mut self, off: u64, data: &[u8]) {
        let mut done = 0usize;
        for (page, poff, n) in page_chunks(off, data.len() as u64) {
            let frame = self.pages.entry(page).or_insert_with(PageFrame::zeroed);
            frame.make_mut()[poff..poff + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
        self.len = self.len.max(off + data.len() as u64);
    }

    /// Returns the frame for `page` if it has been materialised.
    pub fn page(&self, page: u64) -> Option<&PageFrame> {
        self.pages.get(&page)
    }

    /// Returns a clone (shared handle) of the frame for `page`, if any.
    pub fn page_cloned(&self, page: u64) -> Option<PageFrame> {
        self.pages.get(&page).cloned()
    }

    /// Number of materialised pages (resident set contribution).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Seeded, deterministic memory-pressure source. When attached to an
/// [`ObjectStore`], page-frame materialisation and address-space growth
/// sites consult it before allocating; a denial surfaces as
/// `AccessDenied::NoMemory` / `MapError::NoMemory` and ultimately as
/// `ENOMEM` through the /proc faces.
///
/// The generator is the same xorshift64* used by the wire fault plan, so
/// a given `(seed, permille)` pair replays the exact same denial
/// schedule. A rate of zero consumes no generator state at all: a
/// zero-rate pressure source is byte-for-byte equivalent to none.
#[derive(Clone, Debug)]
pub struct MemPressure {
    state: u64,
    permille: u16,
    /// Number of allocations denied so far (fault-plan observability).
    pub denials: u64,
}

impl MemPressure {
    /// Creates a pressure source; a zero seed is remapped so the
    /// generator never sticks.
    pub fn new(seed: u64, permille: u16) -> MemPressure {
        let state = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        MemPressure { state, permille, denials: 0 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Rolls once; true means this allocation is denied.
    pub fn deny(&mut self) -> bool {
        let hit = self.permille > 0 && self.next() % 1000 < u64::from(self.permille);
        if hit {
            self.denials += 1;
        }
        hit
    }
}

/// A reference-counted table of objects. Mappings hold [`ObjectId`]s;
/// the address-space code increments the count when a mapping is created
/// or split and decrements it when a mapping is removed; the object's
/// pages are freed when the count reaches zero.
#[derive(Clone, Debug, Default)]
pub struct ObjectStore {
    objs: Vec<Option<Object>>,
    free: Vec<usize>,
    /// Bumped whenever any object is handed out mutably: shared-object
    /// writes are visible to every process mapping the object, so
    /// cross-process snapshot caches invalidate on this counter.
    pub content_gen: u64,
    /// Optional injected memory pressure; `None` (the default) means
    /// every allocation succeeds, exactly as before.
    pub pressure: Option<MemPressure>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    /// Attaches (or, with `permille == 0`, effectively disarms) a
    /// deterministic memory-pressure source.
    pub fn set_pressure(&mut self, seed: u64, permille: u16) {
        self.pressure = Some(MemPressure::new(seed, permille));
    }

    /// Rolls the pressure source once. `false` means the allocation the
    /// caller is about to perform must fail with an out-of-memory error.
    pub fn mem_ok(&mut self) -> bool {
        match &mut self.pressure {
            Some(p) => !p.deny(),
            None => true,
        }
    }

    /// Allocations denied so far by injected pressure.
    pub fn pressure_denials(&self) -> u64 {
        self.pressure.as_ref().map(|p| p.denials).unwrap_or(0)
    }

    fn insert(&mut self, obj: Object) -> ObjectId {
        match self.free.pop() {
            Some(slot) => {
                self.objs[slot] = Some(obj);
                ObjectId(slot as u32)
            }
            None => {
                self.objs.push(Some(obj));
                ObjectId((self.objs.len() - 1) as u32)
            }
        }
    }

    /// Allocates an anonymous zero-fill object with one reference.
    pub fn alloc_anon(&mut self, len: u64) -> ObjectId {
        self.insert(Object { kind: ObjectKind::Anon, len, pages: BTreeMap::new(), refs: 1 })
    }

    /// Allocates a file-backed object (a cached file image) initialised
    /// from `content`, with one reference.
    pub fn alloc_file(&mut self, fs: u32, node: u64, path: &str, content: &[u8]) -> ObjectId {
        let mut pages = BTreeMap::new();
        for (i, chunk) in content.chunks(PAGE_SIZE as usize).enumerate() {
            pages.insert(i as u64, PageFrame::from_bytes(chunk));
        }
        self.insert(Object {
            kind: ObjectKind::File { fs, node, path: path.to_string() },
            len: content.len() as u64,
            pages,
            refs: 1,
        })
    }

    /// Shared access to an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (refcounting bug); the address-space code
    /// owns all references.
    pub fn get(&self, id: ObjectId) -> &Object {
        match self.objs[id.0 as usize].as_ref() {
            Some(o) => o,
            None => panic!("stale ObjectId {id:?}"),
        }
    }

    /// Exclusive access to an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn get_mut(&mut self, id: ObjectId) -> &mut Object {
        self.content_gen = self.content_gen.wrapping_add(1);
        match self.objs[id.0 as usize].as_mut() {
            Some(o) => o,
            None => panic!("stale ObjectId {id:?}"),
        }
    }

    /// Adds a reference (a new mapping of the object).
    pub fn incref(&mut self, id: ObjectId) {
        self.get_mut(id).refs += 1;
    }

    /// Drops a reference, freeing the object's pages when none remain.
    pub fn decref(&mut self, id: ObjectId) {
        let slot = id.0 as usize;
        let obj = match self.objs[slot].as_mut() {
            Some(o) => o,
            None => panic!("stale ObjectId {id:?}"),
        };
        obj.refs -= 1;
        if obj.refs == 0 {
            self.objs[slot] = None;
            self.free.push(slot);
        }
    }

    /// Current reference count (tests and diagnostics).
    pub fn refcount(&self, id: ObjectId) -> u32 {
        self.get(id).refs
    }

    /// True if the object is still live.
    pub fn is_live(&self, id: ObjectId) -> bool {
        self.objs.get(id.0 as usize).map(|s| s.is_some()).unwrap_or(false)
    }

    /// Number of live objects (leak detection in tests).
    pub fn live_count(&self) -> usize {
        self.objs.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anon_reads_zero_until_written() {
        let mut store = ObjectStore::new();
        let id = store.alloc_anon(8192);
        let mut buf = [0xAAu8; 16];
        store.get(id).read_at(100, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        store.get_mut(id).write_at(100, &[1, 2, 3]);
        store.get(id).read_at(99, &mut buf);
        assert_eq!(&buf[..5], &[0, 1, 2, 3, 0]);
    }

    #[test]
    fn file_object_contains_content_across_pages() {
        let mut store = ObjectStore::new();
        let content: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
        let id = store.alloc_file(1, 7, "/bin/x", &content);
        let mut buf = vec![0u8; 100];
        store.get(id).read_at(4090, &mut buf);
        let expect: Vec<u8> = (4090..4190u32).map(|i| i as u8).collect();
        assert_eq!(buf, expect);
        assert_eq!(store.get(id).len, 10_000);
    }

    #[test]
    fn write_extends_length() {
        let mut store = ObjectStore::new();
        let id = store.alloc_anon(0);
        store.get_mut(id).write_at(5000, &[9]);
        assert_eq!(store.get(id).len, 5001);
    }

    #[test]
    fn refcounting_frees_and_reuses_slots() {
        let mut store = ObjectStore::new();
        let a = store.alloc_anon(4096);
        store.incref(a);
        assert_eq!(store.refcount(a), 2);
        store.decref(a);
        assert!(store.is_live(a));
        store.decref(a);
        assert!(!store.is_live(a));
        assert_eq!(store.live_count(), 0);
        let b = store.alloc_anon(4096);
        assert_eq!(b, a, "slot is reused");
    }

    #[test]
    fn straddling_write_materialises_both_pages() {
        let mut store = ObjectStore::new();
        let id = store.alloc_anon(3 * PAGE_SIZE);
        store.get_mut(id).write_at(PAGE_SIZE - 2, &[1, 2, 3, 4]);
        assert_eq!(store.get(id).resident_pages(), 2);
        let mut buf = [0u8; 4];
        store.get(id).read_at(PAGE_SIZE - 2, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }
}
