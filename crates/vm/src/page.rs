//! Page frames: the unit of memory sharing and copy-on-write.

use std::sync::Arc;

/// System page size in bytes. The paper notes the granularity of a mapping
/// is "a system-specific page size, typically a small multiple of 1024
/// bytes"; we use 4096.
pub const PAGE_SIZE: u64 = 4096;

/// A physical page frame. Frames are shared between address spaces (and
/// between an object and private overlays) via `Arc`; writes that must not
/// be seen by other holders go through [`PageFrame::make_mut`], which
/// clones the frame when it is shared — copy-on-write.
#[derive(Clone)]
pub struct PageFrame(Arc<Page>);

/// The actual 4 KiB of storage. Boxed inside the `Arc` as a plain array.
pub struct Page(pub [u8; PAGE_SIZE as usize]);

impl Clone for Page {
    fn clone(&self) -> Self {
        Page(self.0)
    }
}

impl PageFrame {
    /// Allocates a zero-filled frame.
    pub fn zeroed() -> PageFrame {
        PageFrame(Arc::new(Page([0; PAGE_SIZE as usize])))
    }

    /// Allocates a frame initialised from `data` (zero-padded; at most one
    /// page of `data` is used).
    pub fn from_bytes(data: &[u8]) -> PageFrame {
        let mut p = Page([0; PAGE_SIZE as usize]);
        let n = data.len().min(PAGE_SIZE as usize);
        p.0[..n].copy_from_slice(&data[..n]);
        PageFrame(Arc::new(p))
    }

    /// Read access to the page bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE as usize] {
        &self.0 .0
    }

    /// Write access, performing copy-on-write if the frame is shared with
    /// any other holder.
    #[inline]
    pub fn make_mut(&mut self) -> &mut [u8; PAGE_SIZE as usize] {
        &mut Arc::make_mut(&mut self.0).0
    }

    /// True if this frame is currently shared (a write would copy).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }

    /// True if both handles refer to the same physical frame.
    pub fn ptr_eq(a: &PageFrame, b: &PageFrame) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl std::fmt::Debug for PageFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageFrame(shared={})", self.is_shared())
    }
}

/// Splits a byte range `[addr, addr+len)` into per-page subranges,
/// yielding `(page_index, offset_in_page, len_in_page)` where `page_index`
/// is `addr / PAGE_SIZE` for the chunk's start.
pub fn page_chunks(addr: u64, len: u64) -> impl Iterator<Item = (u64, usize, usize)> {
    let mut pos = addr;
    let end = addr + len;
    std::iter::from_fn(move || {
        if pos >= end {
            return None;
        }
        let page = pos / PAGE_SIZE;
        let off = (pos % PAGE_SIZE) as usize;
        let take = ((PAGE_SIZE as usize) - off).min((end - pos) as usize);
        pos += take as u64;
        Some((page, off, take))
    })
}

/// Rounds `v` up to a page boundary.
pub fn page_align_up(v: u64) -> u64 {
    v.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// Rounds `v` down to a page boundary.
pub fn page_align_down(v: u64) -> u64 {
    v - v % PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cow_clones_on_shared_write() {
        let mut a = PageFrame::zeroed();
        let b = a.clone();
        assert!(a.is_shared());
        a.make_mut()[0] = 7;
        assert!(!a.is_shared());
        assert_eq!(a.bytes()[0], 7);
        assert_eq!(b.bytes()[0], 0, "the other holder must be unaffected");
        assert!(!PageFrame::ptr_eq(&a, &b));
    }

    #[test]
    fn unshared_write_does_not_copy() {
        let mut a = PageFrame::from_bytes(&[1, 2, 3]);
        let before = a.bytes() as *const _;
        a.make_mut()[0] = 9;
        assert_eq!(a.bytes() as *const _, before);
        assert_eq!(a.bytes()[0], 9);
        assert_eq!(a.bytes()[1], 2);
    }

    #[test]
    fn from_bytes_pads_and_truncates() {
        let a = PageFrame::from_bytes(&[0xFF; 8192]);
        assert!(a.bytes().iter().all(|&b| b == 0xFF));
        let b = PageFrame::from_bytes(&[1]);
        assert_eq!(b.bytes()[0], 1);
        assert_eq!(b.bytes()[1], 0);
    }

    #[test]
    fn page_chunks_cover_range_exactly() {
        let chunks: Vec<_> = page_chunks(PAGE_SIZE - 10, 30).collect();
        assert_eq!(chunks, vec![(0, (PAGE_SIZE - 10) as usize, 10), (1, 0, 20)]);
        let total: usize = page_chunks(12345, 99999).map(|(_, _, n)| n).sum();
        assert_eq!(total, 99999);
    }

    #[test]
    fn page_chunks_empty_range() {
        assert_eq!(page_chunks(100, 0).count(), 0);
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(page_align_up(0), 0);
        assert_eq!(page_align_up(1), PAGE_SIZE);
        assert_eq!(page_align_up(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(page_align_down(PAGE_SIZE + 1), PAGE_SIZE);
        assert_eq!(page_align_down(PAGE_SIZE - 1), 0);
    }
}
