//! Watched areas — the paper's proposed generalized data watchpoint
//! facility.
//!
//! "The interface accepts specification of watched areas of any size, down
//! to a single byte. The traced process stops only when a watchpoint
//! really fires; the system takes care of the details of recovering from
//! machine faults taken due to references to unwatched data that happens
//! to fall in the same page as watched data."
//!
//! The model here mirrors a page-protection implementation: any user
//! access to a *page* containing watched bytes takes a (simulated) machine
//! fault; if the access actually intersects a watched area with a
//! matching mode the process stops on `FLTWATCH`, otherwise the kernel
//! transparently completes the access, at a cost — the recovery counter
//! lets the benchmark harness expose that cost (experiment E6).

use crate::page::PAGE_SIZE;

/// Which access modes a watched area fires on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct WatchFlags {
    /// Fire on data reads.
    pub read: bool,
    /// Fire on data writes.
    pub write: bool,
    /// Fire on instruction fetch.
    pub exec: bool,
}

impl WatchFlags {
    /// Watch writes only — the common case for data watchpoints.
    pub fn write_only() -> WatchFlags {
        WatchFlags { read: false, write: true, exec: false }
    }

    /// Watch reads and writes.
    pub fn read_write() -> WatchFlags {
        WatchFlags { read: true, write: true, exec: false }
    }

    /// Encodes to a bit mask (bit 0 read, bit 1 write, bit 2 exec) for the
    /// `/proc` wire format.
    pub fn to_bits(self) -> u32 {
        (self.read as u32) | (self.write as u32) << 1 | (self.exec as u32) << 2
    }

    /// Decodes from the `/proc` wire format.
    pub fn from_bits(bits: u32) -> WatchFlags {
        WatchFlags { read: bits & 1 != 0, write: bits & 2 != 0, exec: bits & 4 != 0 }
    }
}

/// A watched area of the address space: any size, down to a single byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchArea {
    /// First watched byte.
    pub base: u64,
    /// Length in bytes (never zero).
    pub len: u64,
    /// Modes the area fires on.
    pub flags: WatchFlags,
}

impl WatchArea {
    /// True if `[addr, addr+len)` intersects this area.
    pub fn overlaps(&self, addr: u64, len: u64) -> bool {
        addr < self.base + self.len && self.base < addr + len
    }

    /// True if the area shares a page with `[addr, addr+len)`.
    pub fn same_page(&self, addr: u64, len: u64) -> bool {
        let a0 = addr / PAGE_SIZE;
        let a1 = (addr + len.max(1) - 1) / PAGE_SIZE;
        let w0 = self.base / PAGE_SIZE;
        let w1 = (self.base + self.len - 1) / PAGE_SIZE;
        a0 <= w1 && w0 <= a1
    }

    /// True if the area fires for the given access mode.
    pub fn fires_on(&self, read: bool, write: bool, exec: bool) -> bool {
        (read && self.flags.read) || (write && self.flags.write) || (exec && self.flags.exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_and_same_page() {
        let w = WatchArea { base: 0x1000, len: 1, flags: WatchFlags::write_only() };
        assert!(w.overlaps(0x1000, 1));
        assert!(!w.overlaps(0x1001, 4));
        assert!(!w.overlaps(0x0FFF, 1));
        assert!(w.overlaps(0x0FFE, 4));
        // Same 4 KiB page (0x1000..0x2000) but no byte overlap.
        assert!(w.same_page(0x1800, 8));
        assert!(!w.same_page(0x2000, 8));
        assert!(!w.same_page(0x0FF0, 8));
    }

    #[test]
    fn single_byte_watch() {
        let w = WatchArea { base: 100, len: 1, flags: WatchFlags::read_write() };
        assert!(w.overlaps(100, 1));
        assert!(!w.overlaps(99, 1));
        assert!(!w.overlaps(101, 1));
        assert!(w.overlaps(98, 5));
    }

    #[test]
    fn fires_on_respects_modes() {
        let w = WatchArea { base: 0, len: 8, flags: WatchFlags::write_only() };
        assert!(!w.fires_on(true, false, false));
        assert!(w.fires_on(false, true, false));
        let rw = WatchArea { base: 0, len: 8, flags: WatchFlags::read_write() };
        assert!(rw.fires_on(true, false, false));
    }

    #[test]
    fn flags_roundtrip_bits() {
        for bits in 0..8 {
            assert_eq!(WatchFlags::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn watch_spanning_pages() {
        let w = WatchArea {
            base: PAGE_SIZE - 4,
            len: 8,
            flags: WatchFlags::write_only(),
        };
        assert!(w.same_page(0, 1), "first page is involved");
        assert!(w.same_page(PAGE_SIZE, 1), "second page is involved");
        assert!(!w.same_page(2 * PAGE_SIZE, 1));
    }
}
