//! Access-failure classification.

use crate::watch::WatchArea;

/// Why a user-mode (or kernel-mode) access to an address space failed.
///
/// The kernel maps these onto the paper's machine faults: `Unmapped`
/// becomes `FLTBOUNDS` (after transparent stack growth has been ruled
/// out), `Protection` becomes `FLTACCESS`, and `Watch` becomes the
/// proposed `FLTWATCH`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessDenied {
    /// No mapping covers the faulting address.
    Unmapped {
        /// The first unmapped address in the attempted range.
        addr: u64,
    },
    /// A mapping covers the address but its protections forbid the access.
    Protection {
        /// The first protected address in the attempted range.
        addr: u64,
    },
    /// The access overlaps a watched area; the paper's proposed watchpoint
    /// facility reports the watched range that fired.
    Watch {
        /// The first watched address touched.
        addr: u64,
        /// The watched area that fired.
        area: WatchArea,
    },
    /// The kernel could not materialise a page frame for the access
    /// (memory exhaustion, real or injected by a fault plan). Surfaces
    /// as `ENOMEM` on /proc address-space I/O.
    NoMemory {
        /// The address whose backing frame could not be allocated.
        addr: u64,
    },
    /// Kernel-internal: the access would have to mutate the shared
    /// object store (COW materialisation, shared-mapping write, stack
    /// growth) but the caller only holds a frozen view of it. Never a
    /// guest-visible fault — the sharded scheduler aborts the
    /// speculative slice and retries with full store access.
    NeedStore {
        /// The address whose access needs the mutable store.
        addr: u64,
    },
}

impl AccessDenied {
    /// The faulting address, whatever the kind.
    pub fn addr(&self) -> u64 {
        match self {
            AccessDenied::Unmapped { addr }
            | AccessDenied::Protection { addr }
            | AccessDenied::Watch { addr, .. }
            | AccessDenied::NoMemory { addr }
            | AccessDenied::NeedStore { addr } => *addr,
        }
    }
}
