//! The address space (`as`) structure and its operations.
//!
//! "Each process has an associated address space ('as') data structure to
//! which a set of standard operations may be applied. One such operation
//! is `as_fault`, which performs page-fault processing for a specified
//! range of addresses." Inter-process I/O — the heart of `/proc` reads and
//! writes — is exactly [`AddressSpace::kernel_read`] /
//! [`AddressSpace::kernel_write`]: fault the pages in, map them, copy.

use crate::error::AccessDenied;
use crate::map::{MapFlags, Mapping, Prot, SegName};
use crate::object::{ObjectId, ObjectStore};
use crate::page::{page_align_down, page_chunks, PageFrame, PAGE_SIZE};
use crate::watch::WatchArea;
use std::collections::BTreeMap;

/// Errors from mapping-management operations (`mmap`/`munmap`/`mprotect`
/// and kernel segment setup). The kernel translates these to errnos.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapError {
    /// Base or length not page-aligned, or length zero.
    BadAlign,
    /// The requested range overlaps an existing mapping.
    Overlap,
    /// Part of the requested range is not mapped.
    NotMapped,
    /// No room in the search region for an anywhere-mapping.
    NoRoom,
    /// The store's memory-pressure source denied the allocation the
    /// operation needed. The kernel surfaces this as `ENOMEM`.
    NoMemory,
}

/// Access mode for permission checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// Number of direct-mapped software-TLB entries (power of two).
const TLB_WAYS: usize = 64;

/// One software-TLB line: a resolved translation for a virtual page,
/// optionally carrying the resolved page frame. The frame is only
/// served while its generation stamps hold: `frame_stamp` must match
/// the space's frame generation (moved by every slow-path write — COW
/// materialisation, `/proc` plants) and `frame_cgen` must match the
/// object store's content generation (moved by every shared/object
/// write). Watched pages are cached too, with `watched` set; a hit on
/// one runs the watch screen first, so no slow-path side effect
/// (recovery counting, one-shot bypass consumption) is ever skipped.
#[derive(Clone, Debug, Default)]
struct TlbEntry {
    /// Virtual page number this line translates.
    vpage: u64,
    /// `as_gen` at fill time; 0 means the line is empty.
    stamp: u64,
    /// Index into `maps` (valid only while `stamp == as_gen`, since any
    /// structural change bumps the generation).
    map_idx: u32,
    /// Protections of the mapping at fill time.
    prot: Prot,
    /// Some watch area intersects this page: hits must run the watch
    /// screen before moving any data.
    watched: bool,
    /// Resolved frame for the page (overlay or object), or `None` when
    /// not yet resolved / evicted by a store.
    frame: Option<PageFrame>,
    /// Space frame generation at frame-resolve time.
    frame_stamp: u64,
    /// Store content generation at frame-resolve time.
    frame_cgen: u64,
}

/// Hit/miss/invalidation counters for the software TLB; `PIOCXSTATS`
/// reports these per process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Accesses served entirely from a TLB line.
    pub hits: u64,
    /// Hits additionally served from a cached frame pointer (no
    /// overlay/object walk at all).
    pub frame_hits: u64,
    /// Fast-path-eligible accesses that fell through to the slow path.
    pub misses: u64,
    /// Generation bumps (each one logically flushes the whole TLB).
    pub invalidations: u64,
}

/// A process's virtual address space.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    /// Mappings sorted by base address, pairwise disjoint.
    maps: Vec<Mapping>,
    /// Watched areas (the proposed watchpoint facility).
    pub watchpoints: Vec<WatchArea>,
    /// One-shot bypass: the next access that would fire a watchpoint is
    /// completed instead (used to step over the watched access after a
    /// `FLTWATCH` stop).
    pub watch_bypass_once: bool,
    /// Count of accesses that faulted on a watched *page* but missed every
    /// watched *byte range* and were transparently recovered by the
    /// system (experiment E6 reads this).
    pub watch_recovered: u64,
    /// Lowest address automatic stack growth may reach; 0 disables growth.
    pub stack_limit: u64,
    /// Cached sum of mapping lengths, maintained by every size-changing
    /// operation so [`AddressSpace::total_size`] — the `ls -l /proc`
    /// size — is O(1) instead of a walk over the map list.
    total: u64,
    /// Address-space generation: bumped by every structural change
    /// (map/unmap/protect/growth/clear) and by watchpoint add/remove.
    /// TLB lines and decoded-instruction cache entries stamp themselves
    /// with this value and self-invalidate with one compare. Starts at 1
    /// and never revisits 0 (0 is the empty-line sentinel).
    as_gen: u64,
    /// Execution fast path enabled (TLB fills/hits and instruction-cache
    /// fills). Turning it off forces every access down the slow path —
    /// the differential oracle runs both ways.
    fast_path: bool,
    /// Direct-mapped translation cache, indexed by `vpage % TLB_WAYS`.
    tlb: Vec<TlbEntry>,
    /// Hit/miss/invalidate counters.
    tlb_stats: TlbStats,
    /// Frame generation: moved by every slow-path write (`kernel_write`
    /// — COW materialisation, breakpoint plants, `/proc` I/O). Cached
    /// frame pointers in TLB lines re-resolve when it moves. Starts at 1
    /// and never revisits 0.
    frame_gen: u64,
    /// Count of per-page content-epoch bumps (`PIOCXSTATS` reports it;
    /// the dense-breakpoint bench reads it to show per-page beating
    /// whole-mapping invalidation).
    page_epoch_bumps: u64,
    /// Bench-only knob: emulate PR 5's whole-mapping invalidation by
    /// bumping every page epoch of a mapping on any write into it.
    coarse_epochs: bool,
}

impl Default for AddressSpace {
    fn default() -> AddressSpace {
        AddressSpace {
            maps: Vec::new(),
            watchpoints: Vec::new(),
            watch_bypass_once: false,
            watch_recovered: 0,
            stack_limit: 0,
            total: 0,
            as_gen: 1,
            fast_path: true,
            tlb: vec![TlbEntry::default(); TLB_WAYS],
            tlb_stats: TlbStats::default(),
            frame_gen: 1,
            page_epoch_bumps: 0,
            coarse_epochs: false,
        }
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// The mappings, sorted by base address.
    pub fn mappings(&self) -> &[Mapping] {
        &self.maps
    }

    /// Total mapped bytes — the "size" reported for the process file in
    /// `ls -l /proc` (Figure 1). Served from the maintained stamp, so a
    /// `getattr` storm (`ls -l` over a large process table) never walks
    /// the map lists.
    pub fn total_size(&self) -> u64 {
        debug_assert_eq!(self.total, self.maps.iter().map(|m| m.len).sum::<u64>());
        self.total
    }

    /// Approximate resident bytes: privately materialised overlay pages
    /// plus, for shared mappings, materialised object pages in range.
    pub fn resident_bytes(&self, store: &ObjectStore) -> u64 {
        let mut pages = 0u64;
        for m in &self.maps {
            if m.flags.shared {
                let obj = store.get(m.object);
                let first = m.obj_off / PAGE_SIZE;
                let last = (m.obj_off + m.len - 1) / PAGE_SIZE;
                pages += (first..=last).filter(|p| obj.page(*p).is_some()).count() as u64;
            } else {
                pages += m.overlay.len() as u64;
            }
        }
        pages * PAGE_SIZE
    }

    /// Finds the mapping containing `addr`.
    pub fn find(&self, addr: u64) -> Option<&Mapping> {
        let idx = self.maps.partition_point(|m| m.end() <= addr);
        self.maps.get(idx).filter(|m| m.contains(addr))
    }

    fn find_idx(&self, addr: u64) -> Option<usize> {
        let idx = self.maps.partition_point(|m| m.end() <= addr);
        if self.maps.get(idx).is_some_and(|m| m.contains(addr)) {
            Some(idx)
        } else {
            None
        }
    }

    /// The current address-space generation. Caches stamped with an older
    /// value (or with a generation from a different address space — fork
    /// children start over at 1 with an empty TLB) must re-resolve.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.as_gen
    }

    /// Invalidates every cached translation by moving the generation.
    /// Skips 0 on wrap (0 marks an empty TLB line).
    #[inline]
    pub fn bump_gen(&mut self) {
        self.as_gen = self.as_gen.wrapping_add(1);
        if self.as_gen == 0 {
            self.as_gen = 1;
        }
        self.tlb_stats.invalidations += 1;
    }

    /// Whether the execution fast path (TLB + instruction cache fills) is
    /// active for this address space.
    #[inline]
    pub fn fast_path_enabled(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables the execution fast path. Disabling (and
    /// re-enabling) bumps the generation so no stale line survives the
    /// transition.
    pub fn set_fast_path(&mut self, on: bool) {
        if self.fast_path != on {
            self.fast_path = on;
            self.bump_gen();
        }
    }

    /// The TLB hit/miss/invalidate counters.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb_stats
    }

    /// Count of per-page content-epoch bumps so far.
    #[inline]
    pub fn page_epoch_bumps(&self) -> u64 {
        self.page_epoch_bumps
    }

    /// Bench-only knob: when set, any write into a mapping bumps *every*
    /// page epoch of that mapping, emulating the whole-mapping
    /// invalidation this design replaced. The dense-breakpoint benchmark
    /// flips this to measure the difference in one binary.
    pub fn set_coarse_epochs(&mut self, on: bool) {
        self.coarse_epochs = on;
    }

    /// The content epoch of the page containing `addr` within mapping
    /// `idx`, if that mapping exists and covers `addr`. Instruction-cache
    /// entries and superblocks validate against this (the index is only
    /// meaningful while the generation that resolved it is current).
    #[inline]
    pub fn page_epoch_at(&self, idx: usize, addr: u64) -> Option<u64> {
        let m = self.maps.get(idx)?;
        if !m.contains(addr) {
            return None;
        }
        Some(m.page_epoch(addr / PAGE_SIZE - m.base / PAGE_SIZE))
    }

    /// Resolves an executable, single-page, watch-free slot for the
    /// instruction cache: returns `(map_idx, page_epoch)` when `[addr,
    /// addr+len)` lies inside one page of one exec-permitted mapping and
    /// no watch area touches that page. `None` means "do not cache".
    pub fn exec_slot(&self, addr: u64, len: u64) -> Option<(usize, u64)> {
        let len = len.max(1);
        let last = addr.checked_add(len - 1)?;
        let vpage = addr / PAGE_SIZE;
        if last / PAGE_SIZE != vpage {
            return None;
        }
        let i = self.find_idx(addr)?;
        let m = &self.maps[i];
        if !m.prot.exec || last >= m.end() {
            return None;
        }
        let page_base = vpage * PAGE_SIZE;
        if self.watchpoints.iter().any(|w| w.same_page(page_base, PAGE_SIZE)) {
            return None;
        }
        Some((i, m.page_epoch(vpage - m.base / PAGE_SIZE)))
    }

    /// Resolves a superblock-eligible slot: like
    /// [`AddressSpace::exec_slot`], but additionally requires the text to
    /// be immune to stores from *inside* a running block — not
    /// user-writable (a store could rewrite instructions the block
    /// pre-validated) and not shared (another mapping of the object could
    /// do the same). `/proc` writes (breakpoint plants) remain possible;
    /// they move the page epoch between dispatches, which is enough
    /// because host-side writes never interleave with a running quantum.
    pub fn sblock_slot(&self, addr: u64, len: u64) -> Option<(usize, u64)> {
        let (i, epoch) = self.exec_slot(addr, len)?;
        let m = &self.maps[i];
        if m.prot.write || m.flags.shared {
            return None;
        }
        Some((i, epoch))
    }

    /// TLB probe: a hit returns the mapping index, and whether the page
    /// is watched, for an access wholly inside one page whose cached
    /// protections permit `mode`. On a watched hit the caller must run
    /// [`AddressSpace::watch_screen`] before moving any data.
    #[inline]
    fn tlb_lookup(&self, addr: u64, len: u64, mode: Mode) -> Option<(usize, bool)> {
        let last = addr.checked_add(len - 1)?;
        let vpage = addr / PAGE_SIZE;
        if last / PAGE_SIZE != vpage {
            return None;
        }
        let e = &self.tlb[(vpage as usize) & (TLB_WAYS - 1)];
        if e.stamp != self.as_gen || e.vpage != vpage {
            return None;
        }
        let ok = match mode {
            Mode::Read => e.prot.read,
            Mode::Write => e.prot.write,
            Mode::Exec => e.prot.exec,
        };
        if ok {
            Some((e.map_idx as usize, e.watched))
        } else {
            None
        }
    }

    /// Fills the TLB line for the page containing `addr` after a
    /// successful slow-path access confined to that page. The frame is
    /// resolved lazily by the first hit, not here.
    fn tlb_fill(&mut self, addr: u64, len: u64) {
        if !self.fast_path {
            return;
        }
        let len = len.max(1);
        let Some(last) = addr.checked_add(len - 1) else { return };
        let vpage = addr / PAGE_SIZE;
        if last / PAGE_SIZE != vpage {
            return;
        }
        let Some(map_idx) = self.find_idx(addr) else { return };
        // The access must not straddle into the next mapping either (the
        // cached index serves the whole page on later hits).
        if last >= self.maps[map_idx].end() {
            return;
        }
        let page_base = vpage * PAGE_SIZE;
        let watched = self.watchpoints.iter().any(|w| w.same_page(page_base, PAGE_SIZE));
        self.tlb[(vpage as usize) & (TLB_WAYS - 1)] = TlbEntry {
            vpage,
            stamp: self.as_gen,
            map_idx: map_idx as u32,
            prot: self.maps[map_idx].prot,
            watched,
            frame: None,
            frame_stamp: 0,
            frame_cgen: 0,
        };
    }

    /// Serves a read/fetch hit from the line's cached frame when the
    /// frame stamps still hold. Returns false when no valid frame is
    /// cached; the caller re-resolves and re-caches.
    #[inline]
    fn frame_copy(&mut self, store: &ObjectStore, addr: u64, buf: &mut [u8]) -> bool {
        let vpage = addr / PAGE_SIZE;
        let e = &self.tlb[(vpage as usize) & (TLB_WAYS - 1)];
        if e.frame_stamp != self.frame_gen || e.frame_cgen != store.content_gen {
            return false;
        }
        let Some(frame) = &e.frame else { return false };
        let off = (addr % PAGE_SIZE) as usize;
        buf.copy_from_slice(&frame.bytes()[off..off + buf.len()]);
        self.tlb_stats.frame_hits += 1;
        true
    }

    /// Resolves the current frame for the page under `addr` and caches
    /// it in the page's TLB line, stamped with the current frame and
    /// content generations. Absent (zero-fill) pages and object pages
    /// behind an unaligned `obj_off` are not cached.
    fn cache_frame(&mut self, store: &ObjectStore, mi: usize, addr: u64) {
        let m = &self.maps[mi];
        let vpage = addr / PAGE_SIZE;
        let rel_page = vpage - m.base / PAGE_SIZE;
        let frame = if m.flags.shared {
            if !m.obj_off.is_multiple_of(PAGE_SIZE) {
                return;
            }
            store.get(m.object).page_cloned(m.obj_off / PAGE_SIZE + rel_page)
        } else if let Some(f) = m.overlay.get(&rel_page) {
            Some(f.clone())
        } else {
            if !m.obj_off.is_multiple_of(PAGE_SIZE) {
                return;
            }
            store.get(m.object).page_cloned(m.obj_off / PAGE_SIZE + rel_page)
        };
        let Some(frame) = frame else { return };
        let frame_stamp = self.frame_gen;
        let e = &mut self.tlb[(vpage as usize) & (TLB_WAYS - 1)];
        if e.stamp == self.as_gen && e.vpage == vpage {
            e.frame = Some(frame);
            e.frame_stamp = frame_stamp;
            e.frame_cgen = store.content_gen;
        }
    }

    /// Moves the frame generation, invalidating every cached frame
    /// pointer. Skips 0 on wrap (0 marks a never-resolved frame).
    #[inline]
    fn bump_frame_gen(&mut self) {
        self.frame_gen = self.frame_gen.wrapping_add(1);
        if self.frame_gen == 0 {
            self.frame_gen = 1;
        }
    }

    /// Single-page data movement for a TLB hit: overlay page if privately
    /// materialised, else the backing object. Mirrors one `page_chunks`
    /// step of [`AddressSpace::kernel_read`].
    fn copy_from_mapping(&self, store: &ObjectStore, mi: usize, addr: u64, buf: &mut [u8]) {
        let m = &self.maps[mi];
        let off = (addr % PAGE_SIZE) as usize;
        if !m.flags.shared {
            let rel_page = addr / PAGE_SIZE - m.base / PAGE_SIZE;
            if let Some(frame) = m.overlay.get(&rel_page) {
                buf.copy_from_slice(&frame.bytes()[off..off + buf.len()]);
                return;
            }
        }
        let obj_pos = m.obj_off + (addr - m.base);
        store.get(m.object).read_at(obj_pos, buf);
    }

    /// Installs a mapping at a fixed address. The caller transfers one
    /// object reference for the new mapping (allocate the object, or
    /// `incref` an existing one, before calling).
    #[allow(clippy::too_many_arguments)]
    pub fn map_fixed(
        &mut self,
        base: u64,
        len: u64,
        prot: Prot,
        flags: MapFlags,
        object: ObjectId,
        obj_off: u64,
        name: SegName,
    ) -> Result<(), MapError> {
        if len == 0 || !base.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MapError::BadAlign);
        }
        let end = base.checked_add(len).ok_or(MapError::BadAlign)?;
        let idx = self.maps.partition_point(|m| m.end() <= base);
        if self.maps.get(idx).is_some_and(|m| m.base < end) {
            return Err(MapError::Overlap);
        }
        self.maps.insert(
            idx,
            Mapping {
                base,
                len,
                prot,
                flags,
                object,
                obj_off,
                overlay: BTreeMap::new(),
                name,
                page_epochs: BTreeMap::new(),
            },
        );
        self.total += len;
        self.bump_gen();
        Ok(())
    }

    /// Installs a mapping at the lowest free page-aligned slot in
    /// `[lo, hi)`. The caller transfers one object reference as with
    /// [`AddressSpace::map_fixed`]. Returns the chosen base address.
    #[allow(clippy::too_many_arguments)]
    pub fn map_anywhere(
        &mut self,
        lo: u64,
        hi: u64,
        len: u64,
        prot: Prot,
        flags: MapFlags,
        object: ObjectId,
        obj_off: u64,
        name: SegName,
    ) -> Result<u64, MapError> {
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MapError::BadAlign);
        }
        let mut candidate = lo;
        for m in &self.maps {
            if m.end() <= candidate {
                continue;
            }
            if m.base >= candidate + len {
                break;
            }
            candidate = m.end();
        }
        if candidate + len > hi {
            return Err(MapError::NoRoom);
        }
        self.map_fixed(candidate, len, prot, flags, object, obj_off, name)?;
        Ok(candidate)
    }

    /// Removes all mappings intersecting `[base, base+len)`, splitting
    /// partial overlaps. Object references held by removed pieces are
    /// dropped.
    pub fn unmap(&mut self, store: &mut ObjectStore, base: u64, len: u64) -> Result<(), MapError> {
        if len == 0 || !base.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MapError::BadAlign);
        }
        let end = base + len;
        self.split_boundary(store, base);
        self.split_boundary(store, end);
        let mut i = 0;
        while i < self.maps.len() {
            if self.maps[i].base >= base && self.maps[i].end() <= end {
                let dead = self.maps.remove(i);
                self.total -= dead.len;
                store.decref(dead.object);
            } else {
                i += 1;
            }
        }
        self.bump_gen();
        Ok(())
    }

    /// Changes protections on `[base, base+len)`; the entire range must be
    /// mapped.
    pub fn protect(
        &mut self,
        store: &mut ObjectStore,
        base: u64,
        len: u64,
        prot: Prot,
    ) -> Result<(), MapError> {
        if len == 0 || !base.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MapError::BadAlign);
        }
        // Verify full coverage first so the operation is atomic.
        if self.valid_span(base, len) != len {
            return Err(MapError::NotMapped);
        }
        let end = base + len;
        self.split_boundary(store, base);
        self.split_boundary(store, end);
        for m in &mut self.maps {
            if m.base >= base && m.end() <= end {
                m.prot = prot;
            }
        }
        self.bump_gen();
        Ok(())
    }

    /// Splits the mapping containing `addr` at `addr` (a page boundary),
    /// if one exists and `addr` is strictly inside it. The new piece gains
    /// an object reference.
    fn split_boundary(&mut self, store: &mut ObjectStore, addr: u64) {
        if !addr.is_multiple_of(PAGE_SIZE) {
            return;
        }
        if let Some(i) = self.find_idx(addr) {
            if self.maps[i].base < addr {
                let tail = self.maps[i].split_at(addr);
                store.incref(tail.object);
                self.maps.insert(i + 1, tail);
            }
        }
    }

    /// Number of contiguously mapped bytes starting at `addr`, capped at
    /// `max`. Zero means `addr` itself is unmapped. `/proc` file I/O uses
    /// this for the paper's truncation rule: "I/O operations that extend
    /// into unmapped areas do not fail but are truncated at the boundary."
    pub fn valid_span(&self, addr: u64, max: u64) -> u64 {
        let mut pos = addr;
        // Saturate rather than wrap: a span reaching the top of the
        // address space truncates there, and callers comparing the result
        // against `max` correctly see a short span.
        let end = addr.saturating_add(max);
        while pos < end {
            match self.find(pos) {
                Some(m) => pos = m.end().min(end),
                None => break,
            }
        }
        pos - addr
    }

    /// The paper's `as_fault` for a failed access: attempts transparent
    /// recovery (automatic downward growth of a `grows_down` mapping).
    /// Returns true if the fault was resolved and the access should be
    /// retried.
    pub fn as_fault(&mut self, store: &mut ObjectStore, addr: u64) -> bool {
        if self.find(addr).is_some() {
            return false;
        }
        if self.stack_limit == 0 || addr < self.stack_limit {
            return false;
        }
        // Find the lowest grows-down mapping above the fault address.
        let Some(i) = self
            .maps
            .iter()
            .position(|m| m.flags.grows_down && m.base > addr)
        else {
            return false;
        };
        let new_base = page_align_down(addr);
        // Do not grow into a neighbour below.
        if i > 0 && self.maps[i - 1].end() > new_base {
            return false;
        }
        // Growth needs fresh frames; under injected pressure the fault is
        // simply not resolved and the access fails as an ordinary bounds
        // fault, exactly as when the stack limit is exhausted.
        if !store.mem_ok() {
            return false;
        }
        let m = &mut self.maps[i];
        let delta_pages = (m.base - new_base) / PAGE_SIZE;
        let old_overlay = std::mem::take(&mut m.overlay);
        m.overlay = old_overlay.into_iter().map(|(k, v)| (k + delta_pages, v)).collect();
        let old_epochs = std::mem::take(&mut m.page_epochs);
        m.page_epochs = old_epochs.into_iter().map(|(k, v)| (k + delta_pages, v)).collect();
        let grown = m.base - new_base;
        m.len += grown;
        m.base = new_base;
        self.total += grown;
        self.bump_gen();
        true
    }

    /// Grows (or shrinks) the break mapping so that it ends at `new_end`
    /// (page-rounded up). Supports only growth; shrinking is ignored.
    /// Growth consults the store's pressure source: a denial is the
    /// paper's `brk` failing with `ENOMEM`.
    pub fn grow_break(
        &mut self,
        store: &mut ObjectStore,
        new_end: u64,
    ) -> Result<u64, MapError> {
        let Some(i) = self.maps.iter().position(|m| m.flags.is_break) else {
            return Err(MapError::NotMapped);
        };
        let end = crate::page::page_align_up(new_end);
        let cur_end = self.maps[i].end();
        if end <= cur_end {
            return Ok(cur_end);
        }
        // Do not grow into a neighbour above.
        if self.maps.get(i + 1).is_some_and(|n| n.base < end) {
            return Err(MapError::Overlap);
        }
        if !store.mem_ok() {
            return Err(MapError::NoMemory);
        }
        self.total += end - cur_end;
        self.maps[i].len = end - self.maps[i].base;
        self.bump_gen();
        Ok(end)
    }

    /// Checks whether a user-mode access is permitted, applying the
    /// watchpoint screening described in the paper (page-level trigger,
    /// byte-level decision, transparent recovery for unwatched bytes).
    pub fn check_user_access(
        &mut self,
        addr: u64,
        len: u64,
        mode: Mode,
    ) -> Result<(), AccessDenied> {
        let len = len.max(1);
        // Page protections first. An access whose end wraps past the top
        // of the address space cannot be fully mapped (map ends are
        // bounded by u64::MAX), so it is simply unmapped somewhere.
        let Some(end) = addr.checked_add(len) else {
            return Err(AccessDenied::Unmapped { addr });
        };
        let mut pos = addr;
        while pos < end {
            match self.find(pos) {
                None => return Err(AccessDenied::Unmapped { addr: pos }),
                Some(m) => {
                    let ok = match mode {
                        Mode::Read => m.prot.read,
                        Mode::Write => m.prot.write,
                        Mode::Exec => m.prot.exec,
                    };
                    if !ok {
                        return Err(AccessDenied::Protection { addr: pos });
                    }
                    pos = m.end().min(end);
                }
            }
        }
        self.watch_screen(addr, len, mode)
    }

    /// The watchpoint screen on its own: page-level trigger, byte-level
    /// decision, transparent recovery for unwatched bytes. Both the slow
    /// path ([`AddressSpace::check_user_access`]) and watched-page TLB
    /// hits run exactly this, so caching a watched translation never
    /// skips a side effect (recovery counting, one-shot bypass
    /// consumption).
    fn watch_screen(&mut self, addr: u64, len: u64, mode: Mode) -> Result<(), AccessDenied> {
        let (r, w, x) = match mode {
            Mode::Read => (true, false, false),
            Mode::Write => (false, true, false),
            Mode::Exec => (false, false, true),
        };
        let mut recovered = false;
        for area in &self.watchpoints {
            if !area.fires_on(r, w, x) {
                continue;
            }
            if area.overlaps(addr, len) {
                if self.watch_bypass_once {
                    self.watch_bypass_once = false;
                    self.watch_recovered += 1;
                    return Ok(());
                }
                let hit = addr.max(area.base);
                let area = *area;
                return Err(AccessDenied::Watch { addr: hit, area });
            }
            if area.same_page(addr, len) {
                recovered = true;
            }
        }
        if recovered {
            self.watch_recovered += 1;
        }
        Ok(())
    }

    /// Adds a watched area. Overlapping areas coexist; the first
    /// overlapping area (in insertion order) reports the fault.
    pub fn add_watch(&mut self, area: WatchArea) {
        self.watchpoints.push(area);
        // Lines covering the newly watched page must stop hitting (the
        // slow path owns watch screening and its side effects).
        self.bump_gen();
    }

    /// Removes watched areas exactly matching `base`/`len`. Returns how
    /// many were removed.
    pub fn remove_watch(&mut self, base: u64, len: u64) -> usize {
        let before = self.watchpoints.len();
        self.watchpoints.retain(|w| !(w.base == base && w.len == len));
        self.bump_gen();
        before - self.watchpoints.len()
    }

    /// Reads bytes with kernel privilege: protections and watchpoints are
    /// bypassed; unmapped addresses fail. This is the read half of `/proc`
    /// address-space I/O.
    pub fn kernel_read(
        &self,
        store: &ObjectStore,
        addr: u64,
        buf: &mut [u8],
    ) -> Result<(), AccessDenied> {
        let mut done = 0usize;
        let mut pos = addr;
        let Some(end) = addr.checked_add(buf.len() as u64) else {
            return Err(AccessDenied::Unmapped { addr });
        };
        while pos < end {
            let m = self.find(pos).ok_or(AccessDenied::Unmapped { addr: pos })?;
            let chunk_end = m.end().min(end);
            for (vpage, off, n) in page_chunks(pos, chunk_end - pos) {
                let rel_page = vpage - m.base / PAGE_SIZE;
                let out = &mut buf[done..done + n];
                if !m.flags.shared {
                    if let Some(frame) = m.overlay.get(&rel_page) {
                        out.copy_from_slice(&frame.bytes()[off..off + n]);
                        done += n;
                        continue;
                    }
                }
                let obj_pos = m.obj_off + (vpage * PAGE_SIZE + off as u64 - m.base);
                store.get(m.object).read_at(obj_pos, out);
                done += n;
            }
            pos = chunk_end;
        }
        Ok(())
    }

    /// Writes bytes with kernel privilege. Protections and watchpoints
    /// are bypassed, but copy-on-write is honoured: writes to a private
    /// mapping land in its overlay (copying the object page on first
    /// touch), so "writing to one process will not corrupt another process
    /// executing the same executable file or shared library". Writes to a
    /// shared mapping go to the object — bona-fide shared memory.
    pub fn kernel_write(
        &mut self,
        store: &mut ObjectStore,
        addr: u64,
        data: &[u8],
    ) -> Result<(), AccessDenied> {
        // Validate the whole range first so the write is atomic.
        if self.valid_span(addr, data.len() as u64) != data.len() as u64 {
            let hole = addr + self.valid_span(addr, data.len() as u64);
            return Err(AccessDenied::Unmapped { addr: hole });
        }
        // Any slow-path write can change frame identity (COW
        // materialisation, object writes): cached frame pointers in TLB
        // lines must re-resolve.
        self.bump_frame_gen();
        let coarse = self.coarse_epochs;
        let mut done = 0usize;
        let mut pos = addr;
        let end = addr + data.len() as u64;
        while pos < end {
            let Some(i) = self.find_idx(pos) else {
                return Err(AccessDenied::Unmapped { addr: pos });
            };
            let mut bumps = 0u64;
            let m = &mut self.maps[i];
            let chunk_end = m.end().min(end);
            for (vpage, off, n) in page_chunks(pos, chunk_end - pos) {
                let rel_page = vpage - m.base / PAGE_SIZE;
                let src = &data[done..done + n];
                // A write into executable text (a breakpoint plant, a
                // `/proc` patch) moves the content epoch of exactly the
                // touched page, so cached decodes of *other* pages in
                // the same mapping survive. Non-exec pages have no
                // decode consumers and skip the bump.
                if m.prot.exec {
                    if coarse {
                        for p in 0..(m.len / PAGE_SIZE) {
                            m.bump_page_epoch(p);
                        }
                        bumps += m.len / PAGE_SIZE;
                    } else {
                        m.bump_page_epoch(rel_page);
                        bumps += 1;
                    }
                }
                if m.flags.shared {
                    let obj_pos = m.obj_off + (vpage * PAGE_SIZE + off as u64 - m.base);
                    store.get_mut(m.object).write_at(obj_pos, src);
                } else {
                    let frame = match m.overlay.get_mut(&rel_page) {
                        Some(f) => f,
                        None => {
                            // Copy-on-write materialises a private frame;
                            // under injected pressure that allocation can
                            // fail mid-write (the validated prefix stays
                            // written, as with a real partial copyout).
                            if !store.mem_ok() {
                                return Err(AccessDenied::NoMemory {
                                    addr: vpage * PAGE_SIZE + off as u64,
                                });
                            }
                            let obj_page = (m.obj_off / PAGE_SIZE) + rel_page;
                            debug_assert_eq!(m.obj_off % PAGE_SIZE, 0);
                            let fresh = store
                                .get(m.object)
                                .page_cloned(obj_page)
                                .unwrap_or_else(PageFrame::zeroed);
                            m.overlay.entry(rel_page).or_insert(fresh)
                        }
                    };
                    frame.make_mut()[off..off + n].copy_from_slice(src);
                }
                done += n;
            }
            self.page_epoch_bumps += bumps;
            pos = chunk_end;
        }
        Ok(())
    }

    /// User-mode read: permission + watchpoint check, then data movement.
    /// A dTLB hit (single-page access, cached protections permit) skips
    /// the mapping binary search; a hit with valid frame stamps skips
    /// the overlay/object walk too and copies straight from the cached
    /// frame. Watched-page hits run the watch screen first.
    pub fn read_user(
        &mut self,
        store: &ObjectStore,
        addr: u64,
        buf: &mut [u8],
    ) -> Result<(), AccessDenied> {
        let len = (buf.len() as u64).max(1);
        if self.fast_path {
            if let Some((mi, watched)) = self.tlb_lookup(addr, len, Mode::Read) {
                if watched {
                    self.watch_screen(addr, len, Mode::Read)?;
                }
                self.tlb_stats.hits += 1;
                if self.frame_copy(store, addr, buf) {
                    return Ok(());
                }
                self.copy_from_mapping(store, mi, addr, buf);
                self.cache_frame(store, mi, addr);
                return Ok(());
            }
            self.tlb_stats.misses += 1;
        }
        self.check_user_access(addr, len, Mode::Read)?;
        self.kernel_read(store, addr, buf)?;
        self.tlb_fill(addr, len);
        Ok(())
    }

    /// User-mode write: permission + watchpoint check, then data movement
    /// (copy-on-write for private mappings, write-through for shared).
    /// The fast path serves only writes landing in an already
    /// materialised private overlay page: COW materialisation rolls the
    /// memory-pressure source and shared writes move the store's content
    /// generation, and the slow path must keep owning both side effects
    /// so fast-on and fast-off runs stay transcript-identical.
    pub fn write_user(
        &mut self,
        store: &mut ObjectStore,
        addr: u64,
        data: &[u8],
    ) -> Result<(), AccessDenied> {
        let len = (data.len() as u64).max(1);
        if self.fast_path {
            if let Some((mi, watched)) = self.tlb_lookup(addr, len, Mode::Write) {
                if watched {
                    self.watch_screen(addr, len, Mode::Write)?;
                }
                // Drop any cached frame for the page before storing: a
                // held `Arc` would force `make_mut` to copy, and the
                // copy would go stale the moment the overlay advances.
                let vpage = addr / PAGE_SIZE;
                self.tlb[(vpage as usize) & (TLB_WAYS - 1)].frame = None;
                let coarse = self.coarse_epochs;
                let m = &mut self.maps[mi];
                if !m.flags.shared && !data.is_empty() {
                    let rel_page = vpage - m.base / PAGE_SIZE;
                    let off = (addr % PAGE_SIZE) as usize;
                    if let Some(frame) = m.overlay.get_mut(&rel_page) {
                        frame.make_mut()[off..off + data.len()].copy_from_slice(data);
                        if m.prot.exec {
                            // Self-modifying code through a writable
                            // text page: the decoded-instruction cache
                            // must see the page move.
                            let bumps = if coarse {
                                for p in 0..(m.len / PAGE_SIZE) {
                                    m.bump_page_epoch(p);
                                }
                                m.len / PAGE_SIZE
                            } else {
                                m.bump_page_epoch(rel_page);
                                1
                            };
                            self.page_epoch_bumps += bumps;
                        }
                        self.tlb_stats.hits += 1;
                        return Ok(());
                    }
                }
            }
            self.tlb_stats.misses += 1;
        }
        self.check_user_access(addr, len, Mode::Write)?;
        self.kernel_write(store, addr, data)?;
        self.tlb_fill(addr, len);
        Ok(())
    }

    /// User-mode write against a *frozen* object store, used by the
    /// sharded scheduler's speculative parallel phase (the store is
    /// shared read-only across worker threads, so nothing here may
    /// touch it). Commits only the one case [`AddressSpace::write_user`]
    /// serves without a store: a dTLB hit landing wholly in an already
    /// materialised private overlay page. Everything else — TLB miss,
    /// shared mapping, unmaterialised COW page, any case whose
    /// classification or completion might need the store (growth,
    /// pressure rolls, write-through) — returns
    /// [`AccessDenied::NeedStore`] *before any side effect* (no stat
    /// counting, no watch-bypass consumption, no epoch bumps), so the
    /// caller can abort the slice and re-run the access through the
    /// full-store path with an identical outcome.
    pub fn write_user_frozen(&mut self, addr: u64, data: &[u8]) -> Result<(), AccessDenied> {
        let len = (data.len() as u64).max(1);
        if !self.fast_path || data.is_empty() {
            return Err(AccessDenied::NeedStore { addr });
        }
        let Some((mi, watched)) = self.tlb_lookup(addr, len, Mode::Write) else {
            return Err(AccessDenied::NeedStore { addr });
        };
        // Pure pre-check (tlb_lookup and these map reads mutate nothing):
        // the write must be frozen-satisfiable before the side-effectful
        // steps below run, or an abort after a consumed watch bypass
        // would change the serial re-run's outcome.
        let vpage = addr / PAGE_SIZE;
        {
            let m = &self.maps[mi];
            let rel_page = vpage - m.base / PAGE_SIZE;
            if m.flags.shared || !m.overlay.contains_key(&rel_page) {
                return Err(AccessDenied::NeedStore { addr });
            }
        }
        // From here this is exactly `write_user`'s fast path.
        if watched {
            self.watch_screen(addr, len, Mode::Write)?;
        }
        self.tlb[(vpage as usize) & (TLB_WAYS - 1)].frame = None;
        let coarse = self.coarse_epochs;
        let m = &mut self.maps[mi];
        let rel_page = vpage - m.base / PAGE_SIZE;
        let off = (addr % PAGE_SIZE) as usize;
        let Some(frame) = m.overlay.get_mut(&rel_page) else {
            return Err(AccessDenied::NeedStore { addr });
        };
        frame.make_mut()[off..off + data.len()].copy_from_slice(data);
        if m.prot.exec {
            let bumps = if coarse {
                for p in 0..(m.len / PAGE_SIZE) {
                    m.bump_page_epoch(p);
                }
                m.len / PAGE_SIZE
            } else {
                m.bump_page_epoch(rel_page);
                1
            };
            self.page_epoch_bumps += bumps;
        }
        self.tlb_stats.hits += 1;
        Ok(())
    }

    /// Instruction fetch: exec permission + watch check, then read. Hits
    /// the same dTLB lines as data reads (one cache, three probe modes).
    pub fn fetch_user(
        &mut self,
        store: &ObjectStore,
        addr: u64,
        buf: &mut [u8],
    ) -> Result<(), AccessDenied> {
        let len = (buf.len() as u64).max(1);
        if self.fast_path {
            if let Some((mi, watched)) = self.tlb_lookup(addr, len, Mode::Exec) {
                if watched {
                    self.watch_screen(addr, len, Mode::Exec)?;
                }
                self.tlb_stats.hits += 1;
                if self.frame_copy(store, addr, buf) {
                    return Ok(());
                }
                self.copy_from_mapping(store, mi, addr, buf);
                self.cache_frame(store, mi, addr);
                return Ok(());
            }
            self.tlb_stats.misses += 1;
        }
        self.check_user_access(addr, len, Mode::Exec)?;
        self.kernel_read(store, addr, buf)?;
        self.tlb_fill(addr, len);
        Ok(())
    }

    /// Clones the address space for `fork`: mappings are duplicated,
    /// overlay frames stay shared until written (copy-on-write across the
    /// fork), and every mapping's object gains a reference.
    pub fn fork_clone(&self, store: &mut ObjectStore) -> AddressSpace {
        for m in &self.maps {
            store.incref(m.object);
        }
        AddressSpace {
            maps: self.maps.clone(),
            watchpoints: Vec::new(),
            watch_bypass_once: false,
            watch_recovered: 0,
            stack_limit: self.stack_limit,
            total: self.total,
            // The child starts cold: fresh generation, empty TLB, zeroed
            // counters. Shared frames can't leak stale translations
            // because no line carries over.
            as_gen: 1,
            fast_path: self.fast_path,
            tlb: vec![TlbEntry::default(); TLB_WAYS],
            tlb_stats: TlbStats::default(),
            frame_gen: 1,
            page_epoch_bumps: 0,
            coarse_epochs: self.coarse_epochs,
        }
    }

    /// Drops every mapping, releasing object references. Used by `exec`
    /// and `exit`.
    pub fn clear(&mut self, store: &mut ObjectStore) {
        for m in self.maps.drain(..) {
            store.decref(m.object);
        }
        self.total = 0;
        self.watchpoints.clear();
        self.watch_bypass_once = false;
        self.stack_limit = 0;
        // exec rebuilds on a clean slate; nothing cached may survive.
        self.bump_gen();
    }

    /// Verifies internal invariants (sortedness, disjointness, alignment);
    /// used by tests.
    pub fn check_invariants(&self) {
        for w in self.maps.windows(2) {
            assert!(w[0].end() <= w[1].base, "mappings overlap or unsorted");
        }
        for m in &self.maps {
            assert_eq!(m.base % PAGE_SIZE, 0, "unaligned base");
            assert_eq!(m.len % PAGE_SIZE, 0, "unaligned len");
            assert!(m.len > 0, "empty mapping");
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::watch::WatchFlags;

    const K: u64 = 1024;

    /// Minimal deterministic xorshift64* generator for randomized tests.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn setup() -> (AddressSpace, ObjectStore) {
        (AddressSpace::new(), ObjectStore::new())
    }

    fn anon_map(
        a: &mut AddressSpace,
        s: &mut ObjectStore,
        base: u64,
        len: u64,
        prot: Prot,
    ) -> ObjectId {
        let obj = s.alloc_anon(len);
        a.map_fixed(base, len, prot, MapFlags::default(), obj, 0, SegName::Anon)
            .expect("map");
        obj
    }

    #[test]
    fn map_read_write_roundtrip() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 16 * K, Prot::RW);
        a.write_user(&mut s, 0x10100, b"hello").expect("write");
        let mut buf = [0u8; 5];
        a.read_user(&s, 0x10100, &mut buf).expect("read");
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn overlap_rejected() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 16 * K, Prot::RW);
        let obj = s.alloc_anon(4096);
        let err = a
            .map_fixed(0x12000, 4096, Prot::RW, MapFlags::default(), obj, 0, SegName::Anon)
            .expect_err("overlap");
        assert_eq!(err, MapError::Overlap);
    }

    #[test]
    fn unmapped_access_denied() {
        let (mut a, s) = setup();
        let mut buf = [0u8; 4];
        let err = a.read_user(&s, 0x5000, &mut buf).expect_err("unmapped");
        assert_eq!(err, AccessDenied::Unmapped { addr: 0x5000 });
    }

    #[test]
    fn protection_enforced_for_user_not_kernel() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 8 * K, Prot::RX);
        // User write denied.
        let err = a.write_user(&mut s, 0x10000, &[1]).expect_err("prot");
        assert!(matches!(err, AccessDenied::Protection { .. }));
        // Kernel (that is, /proc) write succeeds — breakpoint planting.
        a.kernel_write(&mut s, 0x10000, &[0xCC]).expect("kernel write");
        let mut b = [0u8; 1];
        a.read_user(&s, 0x10000, &mut b).expect("read");
        assert_eq!(b[0], 0xCC);
    }

    #[test]
    fn private_mappings_cow_from_shared_object() {
        let (mut a, mut s) = setup();
        let obj = s.alloc_file(1, 1, "/bin/prog", &[7u8; 8192]);
        s.incref(obj);
        // Two private mappings of the same object, as two processes
        // running one executable would have.
        a.map_fixed(0x10000, 8192, Prot::RX, MapFlags::default(), obj, 0, SegName::Text)
            .expect("map 1");
        a.map_fixed(0x40000, 8192, Prot::RX, MapFlags::default(), obj, 0, SegName::Text)
            .expect("map 2");
        // Plant a "breakpoint" through the first mapping.
        a.kernel_write(&mut s, 0x10000, &[0xCC]).expect("plant");
        let mut b1 = [0u8; 1];
        let mut b2 = [0u8; 1];
        a.kernel_read(&s, 0x10000, &mut b1).expect("read 1");
        a.kernel_read(&s, 0x40000, &mut b2).expect("read 2");
        assert_eq!(b1[0], 0xCC);
        assert_eq!(b2[0], 7, "the second mapping (other process) is unaffected");
        // The object itself (the executable file image) is unchanged.
        let mut ob = [0u8; 1];
        s.get(obj).read_at(0, &mut ob);
        assert_eq!(ob[0], 7);
    }

    #[test]
    fn shared_mapping_writes_through() {
        let (mut a, mut s) = setup();
        let obj = s.alloc_anon(4096);
        s.incref(obj);
        let shared = MapFlags { shared: true, ..Default::default() };
        a.map_fixed(0x10000, 4096, Prot::RW, shared, obj, 0, SegName::Anon).expect("map 1");
        a.map_fixed(0x20000, 4096, Prot::RW, shared, obj, 0, SegName::Anon).expect("map 2");
        a.write_user(&mut s, 0x10010, b"shared!").expect("write");
        let mut buf = [0u8; 7];
        a.read_user(&s, 0x20010, &mut buf).expect("read");
        assert_eq!(&buf, b"shared!");
    }

    #[test]
    fn fork_clone_is_cow() {
        let (mut a, mut s) = setup();
        let obj = anon_map(&mut a, &mut s, 0x10000, 4096, Prot::RW);
        a.write_user(&mut s, 0x10000, b"parent").expect("write");
        let mut child = a.fork_clone(&mut s);
        assert_eq!(s.refcount(obj), 2);
        // Child writes; parent must not see it.
        child.write_user(&mut s, 0x10000, b"child!").expect("child write");
        let mut pb = [0u8; 6];
        a.read_user(&s, 0x10000, &mut pb).expect("parent read");
        assert_eq!(&pb, b"parent");
        let mut cb = [0u8; 6];
        child.read_user(&s, 0x10000, &mut cb).expect("child read");
        assert_eq!(&cb, b"child!");
        child.clear(&mut s);
        assert_eq!(s.refcount(obj), 1);
    }

    #[test]
    fn valid_span_truncates_at_holes() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 8 * K, Prot::RW);
        anon_map(&mut a, &mut s, 0x10000 + 8 * K, 4 * K, Prot::R); // contiguous
        assert_eq!(a.valid_span(0x10000, 100 * K), 12 * K);
        assert_eq!(a.valid_span(0x10000 + 11 * K, 100 * K), K);
        assert_eq!(a.valid_span(0x9000, 10), 0);
        assert_eq!(a.valid_span(0x10500, 100), 100);
    }

    #[test]
    fn unmap_splits_and_releases() {
        let (mut a, mut s) = setup();
        let obj = anon_map(&mut a, &mut s, 0x10000, 16 * K, Prot::RW);
        a.write_user(&mut s, 0x10000, &[1]).expect("w0");
        a.write_user(&mut s, 0x10000 + 12 * K, &[4]).expect("w3");
        // Punch a hole in the middle two pages.
        a.unmap(&mut s, 0x10000 + 4 * K, 8 * K).expect("unmap");
        a.check_invariants();
        assert_eq!(a.mappings().len(), 2);
        assert_eq!(s.refcount(obj), 2, "head and tail each hold a reference");
        assert_eq!(a.valid_span(0x10000, 100 * K), 4 * K);
        // Overlay data survived in the right pieces.
        let mut b = [0u8; 1];
        a.read_user(&s, 0x10000, &mut b).expect("r0");
        assert_eq!(b[0], 1);
        a.read_user(&s, 0x10000 + 12 * K, &mut b).expect("r3");
        assert_eq!(b[0], 4);
        let err = a.read_user(&s, 0x10000 + 5 * K, &mut b).expect_err("hole");
        assert!(matches!(err, AccessDenied::Unmapped { .. }));
    }

    #[test]
    fn protect_splits_and_applies() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 12 * K, Prot::RW);
        a.protect(&mut s, 0x10000 + 4 * K, 4 * K, Prot::R).expect("protect");
        a.check_invariants();
        assert_eq!(a.mappings().len(), 3);
        a.write_user(&mut s, 0x10000, &[1]).expect("head still rw");
        let err = a.write_user(&mut s, 0x10000 + 4 * K, &[1]).expect_err("mid is ro");
        assert!(matches!(err, AccessDenied::Protection { .. }));
        a.write_user(&mut s, 0x10000 + 8 * K, &[1]).expect("tail still rw");
    }

    #[test]
    fn protect_requires_full_coverage() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        let err = a.protect(&mut s, 0x10000, 8 * K, Prot::R).expect_err("hole");
        assert_eq!(err, MapError::NotMapped);
        // And nothing changed (atomicity).
        assert_eq!(a.mappings()[0].prot, Prot::RW);
    }

    #[test]
    fn stack_grows_down_transparently() {
        let (mut a, mut s) = setup();
        let obj = s.alloc_anon(16 * K);
        let flags = MapFlags { grows_down: true, ..Default::default() };
        a.map_fixed(0x7F000, 4 * K, Prot::RW, flags, obj, 0, SegName::Stack).expect("map");
        a.stack_limit = 0x70000;
        a.write_user(&mut s, 0x7F100, b"top").expect("in range");
        // Fault below the mapping: as_fault grows it.
        assert!(a.find(0x7E000).is_none());
        assert!(a.as_fault(&mut s, 0x7EFF8));
        a.check_invariants();
        a.write_user(&mut s, 0x7EFF8, b"grown").expect("after growth");
        let mut b = [0u8; 3];
        a.read_user(&s, 0x7F100, &mut b).expect("old data intact");
        assert_eq!(&b, b"top");
        // Below the limit: not grown.
        assert!(!a.as_fault(&mut s, 0x6F000));
    }

    #[test]
    fn break_grows_on_request() {
        let (mut a, mut s) = setup();
        let obj = s.alloc_anon(4 * K);
        let flags = MapFlags { is_break: true, ..Default::default() };
        a.map_fixed(0x30000, 4 * K, Prot::RW, flags, obj, 0, SegName::Break).expect("map");
        let new_end = a.grow_break(&mut s, 0x30000 + 10 * K).expect("grow");
        assert_eq!(new_end, 0x30000 + 12 * K, "page rounded");
        a.write_user(&mut s, 0x30000 + 9 * K, &[5]).expect("grown area usable");
        // Shrinking is a no-op.
        assert_eq!(a.grow_break(&mut s, 0x30000).expect("noop"), 0x30000 + 12 * K);
    }

    #[test]
    fn watchpoint_fires_only_on_watched_bytes() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 8 * K, Prot::RW);
        a.add_watch(WatchArea { base: 0x10100, len: 4, flags: WatchFlags::write_only() });
        // Write to a different byte in the same page: recovered, allowed.
        a.write_user(&mut s, 0x10200, &[1]).expect("recovered");
        assert_eq!(a.watch_recovered, 1);
        // Read of the watched bytes: write-only watch does not fire.
        let mut b = [0u8; 4];
        a.read_user(&s, 0x10100, &mut b).expect("read ok");
        // Write to the watched bytes: fires.
        let err = a.write_user(&mut s, 0x10102, &[9]).expect_err("watch");
        match err {
            AccessDenied::Watch { addr, area } => {
                assert_eq!(addr, 0x10102);
                assert_eq!(area.base, 0x10100);
            }
            other => panic!("wrong denial {other:?}"),
        }
        // Bypass-once lets the access complete (and counts as recovery).
        a.watch_bypass_once = true;
        a.write_user(&mut s, 0x10102, &[9]).expect("bypassed");
        assert!(!a.watch_bypass_once);
        // Other-page access: no recovery, no trigger.
        let before = a.watch_recovered;
        a.write_user(&mut s, 0x11000, &[1]).expect("other page");
        assert_eq!(a.watch_recovered, before, "other-page access costs nothing");
    }

    #[test]
    fn kernel_write_bypasses_watchpoints() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        a.add_watch(WatchArea { base: 0x10000, len: 8, flags: WatchFlags::read_write() });
        a.kernel_write(&mut s, 0x10000, &[1, 2, 3]).expect("kernel ignores watches");
        assert_eq!(a.watch_recovered, 0);
    }

    #[test]
    fn remove_watch_by_range() {
        let (mut a, _s) = setup();
        a.add_watch(WatchArea { base: 0x10, len: 4, flags: WatchFlags::write_only() });
        a.add_watch(WatchArea { base: 0x20, len: 4, flags: WatchFlags::write_only() });
        assert_eq!(a.remove_watch(0x10, 4), 1);
        assert_eq!(a.watchpoints.len(), 1);
        assert_eq!(a.remove_watch(0x999, 4), 0);
    }

    #[test]
    fn map_anywhere_finds_gaps() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x40000, 4 * K, Prot::RW);
        let obj = s.alloc_anon(8 * K);
        let base = a
            .map_anywhere(
                0x40000,
                0x50000,
                8 * K,
                Prot::RW,
                MapFlags::default(),
                obj,
                0,
                SegName::Anon,
            )
            .expect("fits after the existing mapping");
        assert_eq!(base, 0x41000);
        let obj2 = s.alloc_anon(0x10000);
        let err = a
            .map_anywhere(
                0x40000,
                0x44000,
                0x10000,
                Prot::RW,
                MapFlags::default(),
                obj2,
                0,
                SegName::Anon,
            )
            .expect_err("no room");
        assert_eq!(err, MapError::NoRoom);
    }

    #[test]
    fn kernel_write_is_atomic_over_holes() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        // Write extending past the end must not partially apply.
        let data = vec![9u8; 8 * K as usize];
        let err = a.kernel_write(&mut s, 0x10000 + 2 * K, &data).expect_err("hole");
        assert!(matches!(err, AccessDenied::Unmapped { .. }));
        let mut b = [0u8; 1];
        a.kernel_read(&s, 0x10000 + 2 * K, &mut b).expect("read");
        assert_eq!(b[0], 0, "no partial write");
    }

    /// Random map/unmap/protect sequences preserve the invariants.
    #[test]
    fn invariants_hold_under_random_ops() {
        let mut rng = 0x0014_17A5_u64;
        for _ in 0..64 {
            let (mut a, mut s) = setup();
            let nops = 1 + (xorshift(&mut rng) % 39) as usize;
            for _ in 0..nops {
                let op = (xorshift(&mut rng) % 3) as u8;
                let page = xorshift(&mut rng) % 64;
                let pages = 1 + xorshift(&mut rng) % 15;
                let base = 0x10000 + page * PAGE_SIZE;
                let len = pages * PAGE_SIZE;
                match op {
                    0 => {
                        let obj = s.alloc_anon(len);
                        if a.map_fixed(base, len, Prot::RW, MapFlags::default(), obj, 0,
                                       SegName::Anon).is_err() {
                            s.decref(obj);
                        }
                    }
                    1 => { let _ = a.unmap(&mut s, base, len); }
                    _ => { let _ = a.protect(&mut s, base, len, Prot::R); }
                }
                a.check_invariants();
            }
            // Total refcounts equal live mappings.
            let live = a.mappings().len();
            let total_refs: u32 = a
                .mappings()
                .iter()
                .map(|m| m.object)
                .collect::<std::collections::BTreeSet<_>>()
                .iter()
                .map(|&o| s.refcount(o))
                .sum();
            assert_eq!(total_refs as usize, live, "every mapping holds one reference");
            // Clearing releases everything.
            a.clear(&mut s);
            assert_eq!(s.live_count(), 0);
        }
    }

    #[test]
    fn access_near_u64_max_does_not_overflow() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        // check_user_access: end computation must not wrap to a small
        // value and "succeed".
        let err = a
            .check_user_access(u64::MAX - 2, 8, Mode::Read)
            .expect_err("wrapping access");
        assert!(matches!(err, AccessDenied::Unmapped { .. }));
        // kernel_read with a wrapping range.
        let mut buf = [0u8; 16];
        let err = a.kernel_read(&s, u64::MAX - 4, &mut buf).expect_err("wrapping read");
        assert!(matches!(err, AccessDenied::Unmapped { .. }));
        // kernel_write validates through valid_span, which saturates.
        let err = a.kernel_write(&mut s, u64::MAX - 4, &[0u8; 16]).expect_err("wrapping write");
        assert!(matches!(err, AccessDenied::Unmapped { .. }));
        // valid_span saturates instead of wrapping: the reported span is
        // shorter than the request, never bogus-full.
        assert!(a.valid_span(u64::MAX - 2, 100) < 100);
        // And the user-mode entry points reject it too.
        let err = a.read_user(&s, u64::MAX - 2, &mut buf).expect_err("user read");
        assert!(matches!(err, AccessDenied::Unmapped { .. }));
        let err = a.write_user(&mut s, u64::MAX - 2, &[0u8; 16]).expect_err("user write");
        assert!(matches!(err, AccessDenied::Unmapped { .. }));
    }

    #[test]
    fn tlb_hits_after_slow_path_and_invalidates_on_change() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 8 * K, Prot::RW);
        let mut b = [0u8; 4];
        a.write_user(&mut s, 0x10100, &[1, 2, 3, 4]).expect("w");
        a.read_user(&s, 0x10100, &mut b).expect("r1");
        let before = a.tlb_stats();
        a.read_user(&s, 0x10100, &mut b).expect("r2");
        assert_eq!(a.tlb_stats().hits, before.hits + 1, "second read hits");
        // A structural change flushes: the next read misses again.
        a.protect(&mut s, 0x10000, 4 * K, Prot::R).expect("protect");
        let mid = a.tlb_stats();
        a.read_user(&s, 0x10100, &mut b).expect("r3");
        assert_eq!(a.tlb_stats().misses, mid.misses + 1, "post-protect read misses");
        assert!(a.tlb_stats().invalidations > before.invalidations);
    }

    #[test]
    fn tlb_respects_new_protections_and_watchpoints() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        a.write_user(&mut s, 0x10000, &[7]).expect("warm");
        a.write_user(&mut s, 0x10000, &[8]).expect("hot");
        // Revoke write: the cached RW line must not serve the store.
        a.protect(&mut s, 0x10000, 4 * K, Prot::R).expect("protect");
        let err = a.write_user(&mut s, 0x10000, &[9]).expect_err("now read-only");
        assert!(matches!(err, AccessDenied::Protection { .. }));
        // Watch the page: hot reads must fall back to slow-path
        // screening and fire.
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        a.write_user(&mut s, 0x10010, &[1]).expect("warm");
        a.write_user(&mut s, 0x10010, &[2]).expect("hot");
        a.add_watch(WatchArea { base: 0x10010, len: 4, flags: WatchFlags::write_only() });
        let err = a.write_user(&mut s, 0x10010, &[3]).expect_err("watched");
        assert!(matches!(err, AccessDenied::Watch { .. }));
        // Unwatched byte in the watched page still counts recovery.
        let rec = a.watch_recovered;
        a.write_user(&mut s, 0x10100, &[1]).expect("recovered");
        assert_eq!(a.watch_recovered, rec + 1);
    }

    #[test]
    fn fast_path_off_is_equivalent_and_counts_nothing() {
        let (mut a, mut s) = setup();
        a.set_fast_path(false);
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        a.write_user(&mut s, 0x10000, b"abcd").expect("w");
        let mut b = [0u8; 4];
        a.read_user(&s, 0x10000, &mut b).expect("r");
        a.read_user(&s, 0x10000, &mut b).expect("r");
        assert_eq!(&b, b"abcd");
        let st = a.tlb_stats();
        assert_eq!((st.hits, st.misses), (0, 0));
    }

    #[test]
    fn fork_child_tlb_starts_cold() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        a.write_user(&mut s, 0x10000, &[1]).expect("warm");
        a.write_user(&mut s, 0x10000, &[2]).expect("hot");
        let child = a.fork_clone(&mut s);
        assert_eq!(child.tlb_stats(), TlbStats::default());
        assert_eq!(child.generation(), 1);
    }

    #[test]
    fn watched_page_caches_with_screen_side_effects() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        a.add_watch(WatchArea { base: 0x10010, len: 4, flags: WatchFlags::write_only() });
        // First store to an unwatched byte fills the (watched) line.
        a.write_user(&mut s, 0x10100, &[1]).expect("fill");
        let warm = a.tlb_stats();
        let rec = a.watch_recovered;
        // Second store hits the cached watched line — and still counts
        // the transparent recovery the slow path would have counted.
        a.write_user(&mut s, 0x10100, &[2]).expect("hit");
        assert_eq!(a.tlb_stats().hits, warm.hits + 1, "watched page never cached");
        assert_eq!(a.watch_recovered, rec + 1, "cached hit skipped the screen");
        // A store to the watched bytes fires from the hot line.
        let err = a.write_user(&mut s, 0x10010, &[9]).expect_err("watched");
        assert!(matches!(err, AccessDenied::Watch { .. }));
        // Bypass-once is consumed by a cached hit exactly as by the
        // slow path.
        a.watch_bypass_once = true;
        a.write_user(&mut s, 0x10010, &[9]).expect("bypassed");
        assert!(!a.watch_bypass_once);
    }

    #[test]
    fn frame_hits_serve_repeats_and_die_on_kernel_write() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        a.write_user(&mut s, 0x10000, b"aaaa").expect("w");
        let mut b = [0u8; 4];
        a.read_user(&s, 0x10000, &mut b).expect("r1 resolves the frame");
        let before = a.tlb_stats();
        a.read_user(&s, 0x10000, &mut b).expect("r2");
        assert_eq!(a.tlb_stats().frame_hits, before.frame_hits + 1, "no frame hit");
        // A /proc write moves the frame generation: the cached frame
        // must not serve the stale bytes.
        a.kernel_write(&mut s, 0x10000, b"bbbb").expect("plant");
        a.read_user(&s, 0x10000, &mut b).expect("r3");
        assert_eq!(&b, b"bbbb", "cached frame served stale data");
    }

    #[test]
    fn store_evicts_cached_frame_and_keeps_reads_coherent() {
        let (mut a, mut s) = setup();
        anon_map(&mut a, &mut s, 0x10000, 4 * K, Prot::RW);
        a.write_user(&mut s, 0x10000, b"1111").expect("w1");
        let mut b = [0u8; 4];
        a.read_user(&s, 0x10000, &mut b).expect("r1");
        a.read_user(&s, 0x10000, &mut b).expect("r2 frame hit");
        // In-place fast-path store: evicts the frame, writes the overlay.
        a.write_user(&mut s, 0x10000, b"2222").expect("w2");
        a.read_user(&s, 0x10000, &mut b).expect("r3");
        assert_eq!(&b, b"2222");
        // The in-place store must not have copied the overlay frame out
        // from under future reads: read again through a fresh frame hit.
        a.read_user(&s, 0x10000, &mut b).expect("r4");
        assert_eq!(&b, b"2222");
    }

    #[test]
    fn page_epochs_move_per_page_not_per_mapping() {
        let (mut a, mut s) = setup();
        let obj = s.alloc_file(1, 1, "/bin/prog", &[7u8; 2 * PAGE_SIZE as usize]);
        a.map_fixed(0x10000, 2 * PAGE_SIZE, Prot::RX, MapFlags::default(), obj, 0, SegName::Text)
            .expect("map");
        let (i0, e0) = a.exec_slot(0x10000, 8).expect("slot 0");
        let (i1, e1) = a.exec_slot(0x10000 + PAGE_SIZE, 8).expect("slot 1");
        assert_eq!((i0, i1), (0, 0));
        // Plant into page 0 only.
        a.kernel_write(&mut s, 0x10010, &[0xCC]).expect("plant");
        assert_ne!(a.page_epoch_at(0, 0x10000), Some(e0), "page 0 epoch must move");
        assert_eq!(a.page_epoch_at(0, 0x10000 + PAGE_SIZE), Some(e1), "page 1 epoch must hold");
        assert_eq!(a.page_epoch_bumps(), 1);
        // The coarse knob restores whole-mapping behaviour for the bench.
        a.set_coarse_epochs(true);
        let e1 = a.page_epoch_at(0, 0x10000 + PAGE_SIZE).expect("epoch");
        a.kernel_write(&mut s, 0x10010, &[0xCC]).expect("plant 2");
        assert_ne!(a.page_epoch_at(0, 0x10000 + PAGE_SIZE), Some(e1), "coarse bump missed page 1");
    }

    #[test]
    fn sblock_slot_requires_immutable_private_text() {
        let (mut a, mut s) = setup();
        let obj = s.alloc_file(1, 1, "/bin/prog", &[7u8; PAGE_SIZE as usize]);
        s.incref(obj);
        s.incref(obj);
        a.map_fixed(0x10000, PAGE_SIZE, Prot::RX, MapFlags::default(), obj, 0, SegName::Text)
            .expect("rx");
        a.map_fixed(0x20000, PAGE_SIZE, Prot::RWX, MapFlags::default(), obj, 0, SegName::Text)
            .expect("rwx");
        let shared = MapFlags { shared: true, ..Default::default() };
        a.map_fixed(0x30000, PAGE_SIZE, Prot::RX, shared, obj, 0, SegName::Text).expect("shared");
        assert!(a.sblock_slot(0x10000, 8).is_some(), "plain text refused");
        assert!(a.sblock_slot(0x20000, 8).is_none(), "writable text accepted");
        assert!(a.sblock_slot(0x30000, 8).is_none(), "shared text accepted");
        assert!(a.exec_slot(0x20000, 8).is_some(), "icache still allows writable text");
    }

    /// Data written user-mode is read back identically through both
    /// user and kernel paths.
    #[test]
    fn write_read_consistency() {
        let mut rng = 0xC0515_u64;
        for _ in 0..128 {
            let (mut a, mut s) = setup();
            anon_map(&mut a, &mut s, 0x10000, 3 * PAGE_SIZE, Prot::RW);
            let len = 1 + (xorshift(&mut rng) % 255) as usize;
            let off = xorshift(&mut rng) % (3 * PAGE_SIZE - len as u64);
            let data: Vec<u8> = (0..len).map(|_| xorshift(&mut rng) as u8).collect();
            a.write_user(&mut s, 0x10000 + off, &data).expect("write");
            let mut ub = vec![0u8; data.len()];
            a.read_user(&s, 0x10000 + off, &mut ub).expect("user read");
            assert_eq!(&ub, &data);
            let mut kb = vec![0u8; data.len()];
            a.kernel_read(&s, 0x10000 + off, &mut kb).expect("kernel read");
            assert_eq!(&kb, &data);
        }
    }
}
