//! Mappings: contiguous virtual ranges backed by an object.

use crate::object::ObjectId;
use crate::page::{PageFrame, PAGE_SIZE};
use std::collections::BTreeMap;
use std::fmt;

/// Page protections on a mapping (read / write / execute).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl Prot {
    /// `read`-only.
    pub const R: Prot = Prot { read: true, write: false, exec: false };
    /// `read/write`.
    pub const RW: Prot = Prot { read: true, write: true, exec: false };
    /// `read/exec` — a text segment.
    pub const RX: Prot = Prot { read: true, write: false, exec: true };
    /// All three.
    pub const RWX: Prot = Prot { read: true, write: true, exec: true };
    /// No access.
    pub const NONE: Prot = Prot { read: false, write: false, exec: false };

    /// Encodes as bits (1 read, 2 write, 4 exec) for the `/proc` wire
    /// format (`prmap` entries).
    pub fn to_bits(self) -> u32 {
        (self.read as u32) | (self.write as u32) << 1 | (self.exec as u32) << 2
    }

    /// Decodes from the wire format.
    pub fn from_bits(bits: u32) -> Prot {
        Prot { read: bits & 1 != 0, write: bits & 2 != 0, exec: bits & 4 != 0 }
    }
}

impl fmt::Display for Prot {
    /// Renders in the style of the paper's Figure 2: `read/write/exec`
    /// joined by `/`, or `none`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.read {
            parts.push("read");
        }
        if self.write {
            parts.push("write");
        }
        if self.exec {
            parts.push("exec");
        }
        if parts.is_empty() {
            write!(f, "none")
        } else {
            write!(f, "{}", parts.join("/"))
        }
    }
}

/// Mapping attributes beyond protections.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MapFlags {
    /// `MAP_SHARED`: stores go to the object and are visible to every
    /// process mapping it. When false the mapping is `MAP_PRIVATE` with
    /// copy-on-write semantics.
    pub shared: bool,
    /// The mapping grows downward automatically (the initial stack
    /// segment — "the operating system is prepared to grow one mapping
    /// automatically").
    pub grows_down: bool,
    /// The mapping grows upward on explicit `brk` request (the break
    /// segment).
    pub is_break: bool,
}

/// Advisory segment names. The VM model does not distinguish text, data
/// and stack, but tools (and the paper's own `PIOCMAP` footnote about
/// "stack" and "break" mappings) want the labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegName {
    /// Executable code of the a.out.
    Text,
    /// Initialized data of the a.out.
    Data,
    /// Zero-fill bss.
    Bss,
    /// The initial program stack.
    Stack,
    /// The break (heap) segment.
    Break,
    /// Shared-library text; carries the library name.
    LibText(String),
    /// Shared-library data; carries the library name.
    LibData(String),
    /// An anonymous mmap region.
    Anon,
    /// A file mmap region.
    Mapped,
}

impl fmt::Display for SegName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegName::Text => write!(f, "text"),
            SegName::Data => write!(f, "data"),
            SegName::Bss => write!(f, "bss"),
            SegName::Stack => write!(f, "stack"),
            SegName::Break => write!(f, "break"),
            SegName::LibText(n) => write!(f, "lib:{n} text"),
            SegName::LibData(n) => write!(f, "lib:{n} data"),
            SegName::Anon => write!(f, "anon"),
            SegName::Mapped => write!(f, "mapped"),
        }
    }
}

/// A contiguous virtual address range mapped to (part of) an object.
///
/// For private mappings, `overlay` holds the pages that have been written
/// through this mapping (indexed by page offset *within the mapping*);
/// unwritten pages fall through to the object, so multiple private
/// mappings of one object share memory until they write — exactly the
/// copy-on-write story in the paper.
#[derive(Clone, Debug)]
pub struct Mapping {
    /// First virtual address (page-aligned).
    pub base: u64,
    /// Length in bytes (page multiple, never zero).
    pub len: u64,
    /// Protections.
    pub prot: Prot,
    /// Shared/private and growth attributes.
    pub flags: MapFlags,
    /// Backing object.
    pub object: ObjectId,
    /// Byte offset within the object corresponding to `base`.
    pub obj_off: u64,
    /// Private copy-on-write overlay: mapping-relative page index to frame.
    pub overlay: BTreeMap<u64, PageFrame>,
    /// Advisory name for tools.
    pub name: SegName,
    /// Per-page content epochs, keyed by mapping-relative page index;
    /// absent pages are at epoch 0. A write that lands in a page (user
    /// store, `/proc` breakpoint plant, COW materialisation) bumps only
    /// that page's epoch. Decoded-instruction cache entries and
    /// superblocks record their page's epoch at fill time and
    /// self-invalidate when it moves — so planting a breakpoint
    /// invalidates one page's decodes, not the whole mapping's.
    pub page_epochs: BTreeMap<u64, u64>,
}

impl Mapping {
    /// End address (exclusive).
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// True if `addr` falls inside the mapping.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Object offset corresponding to virtual address `addr`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is outside the mapping.
    #[inline]
    pub fn obj_offset_of(&self, addr: u64) -> u64 {
        debug_assert!(self.contains(addr));
        self.obj_off + (addr - self.base)
    }

    /// The content epoch of mapping-relative page `rel_page`. Pages
    /// never written through this mapping are at epoch 0.
    #[inline]
    pub fn page_epoch(&self, rel_page: u64) -> u64 {
        self.page_epochs.get(&rel_page).copied().unwrap_or(0)
    }

    /// Moves the content epoch of `rel_page`, invalidating cached
    /// decodes of that page.
    #[inline]
    pub fn bump_page_epoch(&mut self, rel_page: u64) {
        *self.page_epochs.entry(rel_page).or_insert(0) += 1;
    }

    /// Splits off the tail of the mapping at `addr` (page-aligned, strictly
    /// inside), leaving `self` as the head and returning the tail. Overlay
    /// pages and page epochs are partitioned; the object gains a reference
    /// (the caller must `incref` — see [`crate::space::AddressSpace`],
    /// which owns the store interaction).
    pub fn split_at(&mut self, addr: u64) -> Mapping {
        debug_assert!(addr > self.base && addr < self.end());
        debug_assert_eq!(addr % PAGE_SIZE, 0);
        let head_pages = (addr - self.base) / PAGE_SIZE;
        let tail_overlay: BTreeMap<u64, PageFrame> = self
            .overlay
            .split_off(&head_pages)
            .into_iter()
            .map(|(k, v)| (k - head_pages, v))
            .collect();
        let tail_epochs: BTreeMap<u64, u64> = self
            .page_epochs
            .split_off(&head_pages)
            .into_iter()
            .map(|(k, v)| (k - head_pages, v))
            .collect();
        let tail = Mapping {
            base: addr,
            len: self.end() - addr,
            prot: self.prot,
            flags: self.flags,
            object: self.object,
            obj_off: self.obj_off + (addr - self.base),
            overlay: tail_overlay,
            name: self.name.clone(),
            page_epochs: tail_epochs,
        };
        self.len = addr - self.base;
        tail
    }

    /// Number of resident (overlay) pages private to this mapping.
    pub fn private_pages(&self) -> usize {
        self.overlay.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(base: u64, len: u64) -> Mapping {
        Mapping {
            base,
            len,
            prot: Prot::RW,
            flags: MapFlags::default(),
            object: ObjectId(0),
            obj_off: 0,
            overlay: BTreeMap::new(),
            name: SegName::Anon,
            page_epochs: BTreeMap::new(),
        }
    }

    #[test]
    fn prot_display_matches_figure_2_style() {
        assert_eq!(Prot::RX.to_string(), "read/exec");
        assert_eq!(Prot::RW.to_string(), "read/write");
        assert_eq!(Prot::R.to_string(), "read");
        assert_eq!(Prot::NONE.to_string(), "none");
    }

    #[test]
    fn prot_bits_roundtrip() {
        for bits in 0..8 {
            assert_eq!(Prot::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn split_partitions_overlay() {
        let mut m = mk(0x10000, 4 * PAGE_SIZE);
        m.overlay.insert(0, PageFrame::from_bytes(&[1]));
        m.overlay.insert(3, PageFrame::from_bytes(&[4]));
        let tail = m.split_at(0x10000 + 2 * PAGE_SIZE);
        assert_eq!(m.len, 2 * PAGE_SIZE);
        assert_eq!(tail.base, 0x10000 + 2 * PAGE_SIZE);
        assert_eq!(tail.len, 2 * PAGE_SIZE);
        assert_eq!(tail.obj_off, 2 * PAGE_SIZE);
        assert!(m.overlay.contains_key(&0));
        assert!(!m.overlay.contains_key(&3));
        assert!(tail.overlay.contains_key(&1), "page 3 becomes tail page 1");
        assert_eq!(tail.overlay[&1].bytes()[0], 4);
    }

    #[test]
    fn obj_offset_tracks_addr() {
        let mut m = mk(0x20000, 2 * PAGE_SIZE);
        m.obj_off = 0x5000;
        assert_eq!(m.obj_offset_of(0x20000), 0x5000);
        assert_eq!(m.obj_offset_of(0x20010), 0x5010);
    }
}
