//! The applications the paper builds over `/proc`.
//!
//! * [`ps`] — `PIOCPSINFO` snapshots, one operation per process;
//! * [`lsproc`] — the `ls -l /proc` listing of Figure 1;
//! * [`pmap`] — the memory-map reporter of Figure 2;
//! * [`truss`] — system-call/fault/signal tracing with follow-fork;
//! * [`debugger`] — an `sdb`-like breakpoint debugger (conditional
//!   breakpoints, single-step, symbols via `PIOCOPENM`, system-call
//!   encapsulation);
//! * [`ptrace_lib`] — `ptrace(2)` re-implemented as a library over
//!   `/proc`, plus the kernel-ptrace baseline debugger used by the
//!   benchmark harness;
//! * [`postmortem`] — core-file analysis (death report, symbolised PC,
//!   heuristic backtrace);
//! * [`migrate`] — the live-migration driver: streams a `PIOCCKPT`
//!   image between two systems as idempotent `PIOCMIGRATE`
//!   sub-operations over the (possibly adversarial) wire;
//! * [`proc_io`] — the typed client handle the tools share;
//! * [`userland`] — the canned simulated programs everything operates on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The controllers promise to survive a dying, starved or racing target:
// every fallible path must surface a typed `Errno`, never a panic. Test
// modules opt back in with a local `allow`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod debugger;
pub mod lsproc;
pub mod migrate;
pub mod names;
pub mod pmap;
pub mod postmortem;
pub mod proc_io;
pub mod ps;
pub mod ptrace_lib;
pub mod sdb;
pub mod truss;
pub mod userland;

pub use debugger::{DebugEvent, Debugger};
pub use migrate::MigrateReport;
pub use names::UserTable;
pub use proc_io::ProcHandle;
pub use ptrace_lib::{PtraceDebugger, PtraceOverProc};
pub use sdb::{EofPolicy, Sdb};
pub use truss::{truss_attach, truss_command, TrussOptions, TrussReport};
pub use userland::{boot_demo, boot_demo_cfg, install_userland};
