//! Post-mortem analysis of core dump files.
//!
//! The paper's kernel "terminates the process, possibly with a core
//! dump"; a debugger's other half is making sense of the result. This
//! module reads `/tmp/core.<pid>`, symbolises the program counter
//! against the executable's symbol table, and renders a death report.

use ksim::corefile::Core;
use ksim::{Aout, Pid, SysResult, System};
use vfs::OFlags;

/// A parsed post-mortem: the core image plus symbol resolution.
#[derive(Debug)]
pub struct PostMortem {
    /// The core image.
    pub core: Core,
    /// The faulting symbol (nearest symbol at or below the PC), if the
    /// executable was available.
    pub symbol: Option<(String, u64)>,
}

/// Reads a whole file through the hosted API.
pub fn read_file(sys: &mut System, ctl: Pid, path: &str) -> SysResult<Vec<u8>> {
    let meta = sys.stat_path(ctl, path)?;
    let fd = sys.host_open(ctl, path, OFlags::rdonly())?;
    let mut out = vec![0u8; meta.size as usize];
    let mut off = 0;
    while off < out.len() {
        let n = sys.host_read(ctl, fd, &mut out[off..])?;
        if n == 0 {
            break;
        }
        off += n;
    }
    sys.host_close(ctl, fd)?;
    out.truncate(off);
    Ok(out)
}

/// Finds the nearest symbol at or below `addr`.
pub fn nearest_symbol(aout: &Aout, addr: u64) -> Option<(String, u64)> {
    aout.symbols
        .iter()
        .filter(|(_, a)| *a <= addr)
        .max_by_key(|(_, a)| *a)
        .map(|(n, a)| (n.clone(), addr - a))
}

/// Loads `/tmp/core.<pid>` and symbolises it against the executable at
/// `exe_path` (when given).
pub fn load(
    sys: &mut System,
    ctl: Pid,
    pid: Pid,
    exe_path: Option<&str>,
) -> SysResult<PostMortem> {
    let image = read_file(sys, ctl, &format!("/tmp/core.{}", pid.0))?;
    let core = Core::from_bytes(&image)?;
    let symbol = match exe_path {
        Some(path) => {
            let bytes = read_file(sys, ctl, path)?;
            let aout = Aout::from_bytes(&bytes)?;
            nearest_symbol(&aout, core.gregs.pc)
        }
        None => None,
    };
    Ok(PostMortem { core, symbol })
}

impl PostMortem {
    /// Renders the death report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "process {} died on {} at pc={:#x}",
            self.core.pid,
            ksim::signal::sig_name(self.core.sig as usize),
            self.core.gregs.pc,
        ));
        if let Some((sym, off)) = &self.symbol {
            if *off == 0 {
                out.push_str(&format!(" ({sym})"));
            } else {
                out.push_str(&format!(" ({sym}+{off:#x})"));
            }
        }
        out.push('\n');
        out.push_str(&format!(
            "sp={:#x}  stack snapshot: {} bytes from {:#x}\n",
            self.core.gregs.sp(),
            self.core.stack.len(),
            self.core.stack_base,
        ));
        out.push_str("memory map at death:\n");
        for m in &self.core.maps {
            out.push_str(&format!(
                "  {:08x} {:>6}K {:<12} {}\n",
                m.base,
                m.len / 1024,
                vm::Prot::from_bits(m.prot).to_string(),
                m.name,
            ));
        }
        out
    }

    /// Walks saved return addresses visible in the stack snapshot that
    /// land in a text mapping — a heuristic backtrace.
    pub fn backtrace_candidates(&self) -> Vec<u64> {
        let text: Vec<(u64, u64)> = self
            .core
            .maps
            .iter()
            .filter(|m| m.prot & 4 != 0)
            .map(|m| (m.base, m.base + m.len))
            .collect();
        let mut out = Vec::new();
        let mut addr = self.core.gregs.sp();
        while let Some(word) = self.core.stack_word(addr) {
            if text.iter().any(|(lo, hi)| word >= *lo && word < *hi) {
                out.push(word);
            }
            addr += 8;
        }
        out
    }
}

/// Convenience: returns an error when no core exists for `pid`.
pub fn core_exists(sys: &mut System, ctl: Pid, pid: Pid) -> bool {
    sys.stat_path(ctl, &format!("/tmp/core.{}", pid.0)).is_ok()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::Cred;

    #[test]
    fn postmortem_of_a_faulting_program() {
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("pm", Cred::new(100, 10));
        // faulty divides by zero inside _start.
        let pid = sys.spawn_program(ctl, "/bin/faulty", &["faulty"]).expect("spawn");
        let (_, status) = sys.host_wait(ctl).expect("wait");
        assert!(status & 0x80 != 0, "core dumped");
        assert!(core_exists(&mut sys, ctl, pid));
        let pm = load(&mut sys, ctl, pid, Some("/bin/faulty")).expect("load");
        assert_eq!(pm.core.sig as usize, ksim::signal::SIGFPE);
        let report = pm.report();
        assert!(report.contains("SIGFPE"), "{report}");
        assert!(report.contains("_start+"), "{report}");
        assert!(report.contains("stack"), "{report}");
    }

    #[test]
    fn backtrace_sees_a_call_frame() {
        // A program that calls into a function and faults there: the
        // return address must appear among the backtrace candidates.
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("pm", Cred::new(100, 10));
        let src = r#"
            _start:
                call deep
                nop
            after_call:
                jmp after_call
            deep:
                push ra
                movi a0, 1
                movi a1, 0
                div  a2, a0, a1
                ret
        "#;
        sys.install_program("/bin/deep", src);
        let pid = sys.spawn_program(ctl, "/bin/deep", &["deep"]).expect("spawn");
        sys.host_wait(ctl).expect("wait");
        let pm = load(&mut sys, ctl, pid, Some("/bin/deep")).expect("load");
        assert_eq!(pm.symbol.as_ref().map(|(s, _)| s.as_str()), Some("deep"));
        let aout = ksim::aout::build_aout(src).expect("asm");
        let ret_addr = aout.sym("_start").expect("start") + 8; // after the call
        assert!(
            pm.backtrace_candidates().contains(&ret_addr),
            "return address {ret_addr:#x} visible in {:x?}",
            pm.backtrace_candidates()
        );
    }

    #[test]
    fn missing_core_is_an_error() {
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("pm", Cred::new(100, 10));
        assert!(!core_exists(&mut sys, ctl, Pid(9999)));
        assert_eq!(
            load(&mut sys, ctl, Pid(9999), None).err(),
            Some(ksim::Errno::ENOENT)
        );
    }
}
