//! The canned simulated userland: assembly programs installed into the
//! root file system for examples, tests and the benchmark harness.
//!
//! Each program exercises a facet of the process model: spinning (stop
//! targets), calling functions (breakpoint targets), bursts of system
//! calls (tracing targets), forking, pipes, signals, shared libraries,
//! retired system calls (encapsulation), and watched stores.

use ksim::aout::{build_aout, build_lib};
use ksim::System;

/// A busy loop; the canonical stop/attach target.
pub const SPIN: &str = r#"
_start:
loop:
    jmp loop
"#;

/// Calls `tick` forever; plant breakpoints on `tick`. `a0` counts calls.
pub const TICKER: &str = r#"
_start:
    movi a0, 0
loop:
    call tick
    jmp  loop
tick:
    addi a0, a0, 1
    ret
"#;

/// Crunches a 256-iteration inner loop between `tick` calls, forever.
/// The breakpoints-per-second workload with realistic density: a
/// debugger breaking on `tick` fields one stop per ~770 retired
/// instructions, so execution speed — not controller overhead —
/// dominates the round trip (E1/E13).
pub const CRUNCHER: &str = r#"
_start:
    movi a0, 0
outer:
    movi a1, 0
    movi a2, 256
inner:
    addi a1, a1, 1
    beq  a1, a2, hot
    jmp  inner
hot:
    call tick
    jmp  outer
tick:
    addi a0, a0, 1
    ret
"#;

/// Performs `a1` getpid calls, then exits 0. Default count comes from
/// argv; falls back to 1000.
pub const SYSCALL_BURST: &str = r#"
_start:
    movi a1, 1000
    movi a2, 0
loop:
    beq  a2, a1, done
    movi rv, 20        ; getpid
    syscall
    addi a2, a2, 1
    jmp  loop
done:
    movi rv, 1
    movi a0, 0
    syscall
"#;

/// Calls the retired system call forever, exiting with the first
/// nonnegative result (only an encapsulating controller can produce
/// one — the kernel itself fails the call with ENOSYS).
pub const RETIRED_CALLER: &str = r#"
_start:
    movi a5, 100        ; attempts
loop:
    movi rv, 79         ; retired_op(7)
    movi a0, 7
    syscall
    slti a1, rv, 0      ; rv < 0 ?
    beq  a1, zero, got
    addi a5, a5, -1
    bne  a5, zero, loop
    movi rv, 1          ; exhausted: exit 255
    movi a0, 255
    syscall
got:
    mov  a0, rv
    movi rv, 1          ; exit(result)
    syscall
"#;

/// Forks `a1` children that each exit immediately; reaps them; exits 0.
pub const FORKER: &str = r#"
_start:
    movi a1, 3
loop:
    beq  a1, zero, done
    movi rv, 2          ; fork
    syscall
    beq  rv, zero, child
    movi rv, 7          ; wait(0)
    movi a0, 0
    syscall
    addi a1, a1, -1
    jmp  loop
child:
    movi rv, 20         ; getpid — give truss -f something to see
    syscall
    movi rv, 1          ; exit(0)
    movi a0, 0
    syscall
done:
    movi rv, 1
    movi a0, 0
    syscall
"#;

/// Parent writes through a pipe to a child which echoes the byte count.
pub const PIPER: &str = r#"
_start:
    movi rv, 42
    la   a0, fds
    syscall
    movi rv, 2
    syscall
    beq  rv, zero, child
    la   a0, fds
    ld   a0, [a0+8]
    movi rv, 4          ; write(wfd, msg, 5)
    la   a1, msg
    movi a2, 5
    syscall
    movi rv, 7
    la   a0, st
    syscall
    la   a0, st
    ld   a0, [a0]
    shri a0, a0, 8
    movi rv, 1          ; exit(child code)
    syscall
child:
    la   a0, fds
    ld   a0, [a0]
    movi rv, 3          ; read(rfd, buf, 16)
    la   a1, buf
    movi a2, 16
    syscall
    mov  a0, rv
    movi rv, 1          ; exit(bytes)
    syscall
.data
.align 8
fds: .space 16
st:  .word 0
msg: .asciz "ping"
buf: .space 16
"#;

/// Installs a SIGUSR1 handler that bumps a counter, then pauses forever.
pub const SIGLOOP: &str = r#"
_start:
    movi rv, 48         ; sigaction(SIGUSR1, handler, 0)
    movi a0, 16
    la   a1, handler
    movi a2, 0
    syscall
waitloop:
    movi rv, 29         ; pause
    syscall
    jmp  waitloop
handler:
    la   a1, counter
    ld   a2, [a1]
    addi a2, a2, 1
    st   a2, [a1]
    ret
.data
.align 8
counter: .word 0
"#;

/// Stores into a watched cell and an unwatched same-page cell in a loop.
pub const WATCH_TARGET: &str = r#"
_start:
    la   a0, cell
    movi a1, 0
loop:
    addi a1, a1, 1
    st   a1, [a0+512]   ; same page, unwatched
    st   a1, [a0]       ; watched by the controller
    jmp  loop
.data
.align 8
cell: .space 1024
"#;

/// Greeter: writes a message into `/tmp/greeting` and exits 0.
pub const GREETER: &str = r#"
_start:
    movi rv, 8          ; creat("/tmp/greeting")
    la   a0, path
    syscall
    mov  a0, rv
    movi rv, 4          ; write(fd, msg, 24)
    la   a1, msg
    movi a2, 24
    syscall
    movi rv, 6          ; close
    syscall
    movi rv, 1
    movi a0, 0
    syscall
.data
path: .asciz "/tmp/greeting"
msg:  .asciz "hello from the simulator"
"#;

/// Source of the demo shared library: an `lrandom`-ish routine at a
/// well-known address plus a data cell.
pub const LIBDEMO: &str = r#"
; libdemo: triple(a0) -> a0*3, and a library-data cell
triple:
    mov  a1, a0
    add  a0, a0, a1
    add  a0, a0, a1
    ret
.data
.align 8
libcell: .word 1234
"#;

/// A program linked against libdemo: calls `triple(14)` and exits with
/// the result (42).
pub fn libuser_src() -> String {
    // A broken LIBDEMO would produce a client that jumps to 0 — caught
    // immediately by every test that runs /bin/libuser, so no panic is
    // needed here to surface it.
    let triple = build_lib(LIBDEMO, 0).ok().and_then(|l| l.sym("triple")).unwrap_or(0);
    format!(
        r#"
_start:
    movi a0, 14
    li   a3, {triple}
    callr a3
    movi rv, 1
    syscall
"#
    )
}

/// Burns CPU with floating point, then sleeps in a loop (ps variety).
pub const SLEEPER: &str = r#"
_start:
    fmovi f0, 1
    fmovi f1, 3
loop:
    fdiv  f2, f0, f1
    movi rv, 69         ; nanosleep(2000)
    movi a0, 2000
    syscall
    jmp  loop
"#;

/// Divides by zero (fault demo).
pub const FAULTY: &str = r#"
_start:
    movi a0, 1
    movi a1, 0
    div  a2, a0, a1
    movi rv, 1
    movi a0, 0
    syscall
"#;

/// Creates a second LWP; both spin (multi-threading demo).
pub const THREADED: &str = r#"
_start:
    movi rv, 73
    la   a0, side
    addi a1, sp, -8192
    movi a2, 0
    syscall
mainloop:
    jmp mainloop
side:
    jmp side
"#;

/// Installs every canned program (plus `/lib/libdemo` and `/bin/libuser`)
/// into the system's root file system.
pub fn install_userland(sys: &mut System) {
    sys.install_dir("/tmp", 0o777);
    for (path, src) in [
        ("/bin/spin", SPIN),
        ("/bin/ticker", TICKER),
        ("/bin/cruncher", CRUNCHER),
        ("/bin/burst", SYSCALL_BURST),
        ("/bin/retired", RETIRED_CALLER),
        ("/bin/forker", FORKER),
        ("/bin/piper", PIPER),
        ("/bin/sigloop", SIGLOOP),
        ("/bin/watched", WATCH_TARGET),
        ("/bin/greeter", GREETER),
        ("/bin/sleeper", SLEEPER),
        ("/bin/faulty", FAULTY),
        ("/bin/threaded", THREADED),
    ] {
        sys.install_program(path, src);
    }
    // The shared library and its client. Skipped gracefully if the
    // bundled sources ever fail to assemble — the tests that exercise
    // /bin/libuser then fail loudly, which is the right place for it.
    if let Ok(lib) = build_lib(LIBDEMO, 0) {
        sys.install_aout("/lib/libdemo", &lib, 0o755);
    }
    if let Ok(user) = build_aout(&libuser_src()) {
        sys.install_aout("/bin/libuser", &user.with_libs(&["libdemo"]), 0o755);
    }
}

/// Boots a full demonstration system: `/proc` + `/proc2` mounted and the
/// userland installed.
pub fn boot_demo() -> System {
    boot_demo_cfg(ksim::SimConfig::standard())
}

/// Boots a demonstration system under an explicit [`ksim::SimConfig`]
/// (mounts interpreted by [`procfs::build_sim`]), then installs the
/// userland. With `cfg.record(true)` the installs are the head of the
/// recording, so a replay reconstructs the same `/bin`.
pub fn boot_demo_cfg(cfg: ksim::SimConfig) -> System {
    let mut sys = procfs::build_sim(&cfg);
    install_userland(&mut sys);
    sys
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::ptrace::{decode_status, WaitStatus};
    use ksim::Cred;

    #[test]
    fn all_programs_assemble_and_install() {
        let mut sys = boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        let entries = sys.list_dir(ctl, "/bin").expect("list /bin");
        assert!(entries.len() >= 12, "{entries:?}");
    }

    #[test]
    fn libuser_returns_42_through_the_shared_library() {
        let mut sys = boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        let pid = sys.spawn_program(ctl, "/bin/libuser", &["libuser"]).expect("spawn");
        let _ = pid;
        let (_, status) = sys.host_wait(ctl).expect("wait");
        assert_eq!(decode_status(status), WaitStatus::Exited(42));
    }

    #[test]
    fn greeter_writes_its_file() {
        let mut sys = boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::superuser());
        sys.spawn_program(ctl, "/bin/greeter", &["greeter"]).expect("spawn");
        sys.host_wait(ctl).expect("wait");
        let mut buf = [0u8; 32];
        let fd = sys.host_open(ctl, "/tmp/greeting", vfs::OFlags::rdonly()).expect("open");
        let n = sys.host_read(ctl, fd, &mut buf).expect("read");
        assert_eq!(&buf[..n], b"hello from the simulator");
    }

    #[test]
    fn piper_round_trip() {
        let mut sys = boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        sys.spawn_program(ctl, "/bin/piper", &["piper"]).expect("spawn");
        let (_, status) = sys.host_wait(ctl).expect("wait");
        assert_eq!(decode_status(status), WaitStatus::Exited(5), "five piped bytes");
    }

    #[test]
    fn forker_completes() {
        let mut sys = boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        sys.spawn_program(ctl, "/bin/forker", &["forker"]).expect("spawn");
        let (_, status) = sys.host_wait(ctl).expect("wait");
        assert_eq!(decode_status(status), WaitStatus::Exited(0));
    }

    #[test]
    fn burst_completes() {
        let mut sys = boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        sys.spawn_program(ctl, "/bin/burst", &["burst"]).expect("spawn");
        let (_, status) = sys.host_wait(ctl).expect("wait");
        assert_eq!(decode_status(status), WaitStatus::Exited(0));
    }
}
