//! An `sdb`-like breakpoint debugger built on `/proc`.
//!
//! "The /proc interface does not directly implement the concept of a
//! process breakpoint, but it provides sufficient mechanism for a
//! debugger to do so. Breakpoints can be installed in a process by a
//! debugger using the read and write operations on the process address
//! space to replace the machine instruction at each breakpoint address
//! with an illegal user-level instruction" — here, the approved `BPT`
//! encoding, fielded as a `FLTBPT` stop ("stop-on-fault is the preferred
//! method for fielding breakpoints").
//!
//! Conditional breakpoints re-run the classic dance (lift, single-step,
//! re-plant, continue) when the condition is false; "breakpoints per
//! second is a realistic measure of performance" for exactly this path
//! (experiment E1).

use crate::proc_io::ProcHandle;
use isa::GregSet;
use ksim::fault::{Fault, FltSet};
use ksim::signal::{SigSet, SIGKILL};
use ksim::sysno::SysSet;
use ksim::{Aout, Errno, Pid, SysResult, System};
use procfs::{PrRun, PrStatus, PrWhy, PRRUN_CFAULT, PRRUN_CSIG, PRRUN_SABORT, PRRUN_STEP};
use std::collections::HashMap;

/// A condition evaluated on the stopped registers; the breakpoint
/// reports only when it returns true.
pub type BpCondition = Box<dyn Fn(&GregSet) -> bool>;

struct BreakPoint {
    saved: [u8; 8],
    condition: Option<BpCondition>,
    /// Times the trap fired (whether or not the condition passed).
    hits: u64,
}

/// What `cont`/`step` observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DebugEvent {
    /// A (condition-passing) breakpoint fired at this address.
    Breakpoint {
        /// The breakpoint address (the PC is left exactly here).
        addr: u64,
        /// Cumulative hits at this address, counting condition misses.
        hits: u64,
    },
    /// The target stopped on receipt of this traced signal.
    Signal(usize),
    /// Entry to a traced system call.
    SyscallEntry(u16),
    /// Exit from a traced system call.
    SyscallExit(u16),
    /// A non-breakpoint machine fault.
    Fault(Fault),
    /// A single step completed.
    Stepped,
    /// A watched area was touched at this address.
    Watchpoint,
    /// A requested stop (attach, or PRSTOP).
    Stopped,
    /// The target exited with this wait-status.
    Exited(u16),
}

/// The debugger: one controlled target.
pub struct Debugger {
    /// The `/proc` handle.
    pub h: ProcHandle,
    /// The target's executable image (symbols), read via `PIOCOPENM`.
    pub aout: Aout,
    bps: HashMap<u64, BreakPoint>,
    /// Total control-interface calls, forwarded from the handle (E2).
    pub last_status: Option<PrStatus>,
}

impl Debugger {
    /// Launches `path` under control, stopped before its first
    /// instruction.
    pub fn launch(
        sys: &mut System,
        ctl: Pid,
        path: &str,
        argv: &[&str],
    ) -> SysResult<Debugger> {
        // A starved kernel may refuse the spawn with EAGAIN; back off
        // (letting the simulation run) and retry a bounded number of
        // times before surfacing the typed error.
        let mut pid = None;
        for attempt in 0..=crate::proc_io::TRANSIENT_RETRIES {
            match sys.spawn_program(ctl, path, argv) {
                Ok(p) => {
                    pid = Some(p);
                    break;
                }
                Err(Errno::EAGAIN) => sys.run_idle(1 << attempt),
                Err(e) => return Err(e),
            }
        }
        let pid = pid.ok_or(Errno::EAGAIN)?;
        // Nothing has run yet; the directed stop lands before user code.
        Self::attach(sys, ctl, pid)
    }

    /// Grabs an existing process ("the ability to grab and debug an
    /// existing process"), stopping it.
    pub fn attach(sys: &mut System, ctl: Pid, pid: Pid) -> SysResult<Debugger> {
        let mut h = ProcHandle::open_rw(sys, ctl, pid)?;
        match Self::attach_ops(sys, &mut h) {
            Ok((st, aout)) => {
                Ok(Debugger { h, aout, bps: HashMap::new(), last_status: Some(st) })
            }
            Err(e) => {
                // Unwind without leaving a half-grabbed target stopped.
                // A PIOCSTOP aborted by EINTR latches a directed stop
                // that lands at the target's next scheduling point, so
                // let the machine run until the stop surfaces, then
                // release it (all best-effort: the target may be gone).
                for _ in 0..4 {
                    match sys.kernel.proc(pid) {
                        Ok(p) if p.zombie => break,
                        Ok(p) if p.is_stopped() => {
                            let _ = h.resume(sys);
                            break;
                        }
                        Ok(_) => sys.run_idle(50),
                        Err(_) => break,
                    }
                }
                let _ = h.close(sys);
                Err(e)
            }
        }
    }

    /// The fallible middle of [`Debugger::attach`]: everything between
    /// opening the descriptor and constructing the debugger.
    fn attach_ops(sys: &mut System, h: &mut ProcHandle) -> SysResult<(PrStatus, Aout)> {
        let st = h.stop(sys)?;
        // Field breakpoints and single-steps as faults.
        let mut flt = FltSet::empty();
        flt.add(Fault::Bpt.number());
        flt.add(Fault::Trace.number());
        flt.add(Fault::Watch.number());
        h.set_flt_trace(sys, flt)?;
        let aout = h.read_aout(sys)?;
        Ok((st, aout))
    }

    /// The target pid.
    pub fn pid(&self) -> Pid {
        self.h.pid
    }

    /// True if a failed operation means the target is gone rather than
    /// the operation being wrong: the process file vanished
    /// (`ESRCH`/`ENOENT`) or the process is a zombie (address-space and
    /// control operations on a zombie fail, typically with `EIO`).
    fn target_gone(&self, sys: &System, e: Errno) -> bool {
        matches!(e, Errno::ESRCH | Errno::ENOENT)
            || sys.kernel.proc(self.h.pid).map(|p| p.zombie).unwrap_or(true)
    }

    /// The clean degradation for a target that died mid-operation.
    fn exited_event(&mut self, sys: &System) -> DebugEvent {
        let status = sys.kernel.proc(self.h.pid).map(|p| p.exit_status).unwrap_or(0);
        self.last_status = None;
        DebugEvent::Exited(status)
    }

    /// Resolves a symbol to its address.
    pub fn sym(&self, name: &str) -> SysResult<u64> {
        self.aout.sym(name).ok_or(Errno::ENOENT)
    }

    /// Plants an unconditional breakpoint at `addr`.
    pub fn set_breakpoint(&mut self, sys: &mut System, addr: u64) -> SysResult<()> {
        self.set_breakpoint_inner(sys, addr, None)
    }

    /// Plants a breakpoint that reports only when `cond` holds on the
    /// stopped registers.
    pub fn set_conditional_breakpoint(
        &mut self,
        sys: &mut System,
        addr: u64,
        cond: BpCondition,
    ) -> SysResult<()> {
        self.set_breakpoint_inner(sys, addr, Some(cond))
    }

    fn set_breakpoint_inner(
        &mut self,
        sys: &mut System,
        addr: u64,
        condition: Option<BpCondition>,
    ) -> SysResult<()> {
        if self.bps.contains_key(&addr) {
            return Err(Errno::EEXIST);
        }
        let mut saved = [0u8; 8];
        self.h.read_mem(sys, addr, &mut saved)?;
        self.h.write_mem(sys, addr, &isa::insn::breakpoint_bytes())?;
        self.bps.insert(addr, BreakPoint { saved, condition, hits: 0 });
        Ok(())
    }

    /// Removes the breakpoint at `addr`, restoring the original
    /// instruction.
    pub fn clear_breakpoint(&mut self, sys: &mut System, addr: u64) -> SysResult<()> {
        let bp = self.bps.remove(&addr).ok_or(Errno::ENOENT)?;
        self.h.write_mem(sys, addr, &bp.saved)?;
        Ok(())
    }

    /// Lifts every breakpoint (used around fork when children must run
    /// unmolested).
    pub fn lift_all(&mut self, sys: &mut System) -> SysResult<Vec<u64>> {
        let addrs: Vec<u64> = self.bps.keys().copied().collect();
        for &a in &addrs {
            let saved = self.bps[&a].saved;
            self.h.write_mem(sys, a, &saved)?;
        }
        Ok(addrs)
    }

    /// Re-plants previously lifted breakpoints.
    pub fn replant_all(&mut self, sys: &mut System) -> SysResult<()> {
        let addrs: Vec<u64> = self.bps.keys().copied().collect();
        for a in addrs {
            self.h.write_mem(sys, a, &isa::insn::breakpoint_bytes())?;
        }
        Ok(())
    }

    /// Traces entry/exit of the given system calls (empty sets disable).
    pub fn trace_syscalls(
        &mut self,
        sys: &mut System,
        entry: SysSet,
        exit: SysSet,
    ) -> SysResult<()> {
        self.h.set_entry_trace(sys, entry)?;
        self.h.set_exit_trace(sys, exit)
    }

    /// Traces receipt of the given signals.
    pub fn trace_signals(&mut self, sys: &mut System, set: SigSet) -> SysResult<()> {
        self.h.set_sig_trace(sys, set)
    }

    /// Steps one instruction (stepping over a breakpoint at the PC).
    /// A target that dies at any point in the dance degrades to
    /// [`DebugEvent::Exited`] instead of a raw error.
    pub fn step(&mut self, sys: &mut System) -> SysResult<DebugEvent> {
        let st = match self.h.status(sys) {
            Ok(st) => st,
            Err(e) if self.target_gone(sys, e) => return Ok(self.exited_event(sys)),
            Err(e) => return Err(e),
        };
        let pc = st.reg.pc;
        let planted_here = self.bps.contains_key(&pc);
        if planted_here {
            let saved = self.bps[&pc].saved;
            if let Err(e) = self.h.write_mem(sys, pc, &saved) {
                if self.target_gone(sys, e) {
                    return Ok(self.exited_event(sys));
                }
                return Err(e);
            }
        }
        if let Err(e) = self.h.run(sys, PrRun { flags: PRRUN_STEP | PRRUN_CFAULT, vaddr: 0 }) {
            if self.target_gone(sys, e) {
                return Ok(self.exited_event(sys));
            }
            return Err(e);
        }
        let ev = self.wait_event(sys)?;
        if planted_here && self.bps.contains_key(&pc) && !matches!(ev, DebugEvent::Exited(_)) {
            self.h.write_mem(sys, pc, &isa::insn::breakpoint_bytes())?;
        }
        Ok(match ev {
            DebugEvent::Fault(Fault::Trace) => DebugEvent::Stepped,
            other => other,
        })
    }

    /// Continues until an interesting event, transparently stepping over
    /// breakpoints whose condition is false. Works whether the target is
    /// currently stopped (resumes it) or already running (just waits).
    pub fn cont(&mut self, sys: &mut System) -> SysResult<DebugEvent> {
        // Step over a breakpoint at the current PC first.
        if let Ok(st) = self.h.status(sys) {
            if st.flags & procfs::PR_ISTOP != 0 && self.bps.contains_key(&st.reg.pc) {
                match self.step(sys)? {
                    DebugEvent::Stepped => {}
                    other => return Ok(other),
                }
            }
        }
        loop {
            if let Ok(st) = self.h.status(sys) {
                if st.flags & procfs::PR_ISTOP != 0 {
                    if let Err(e) = self.h.run(sys, PrRun { flags: PRRUN_CFAULT, vaddr: 0 }) {
                        if self.target_gone(sys, e) {
                            return Ok(self.exited_event(sys));
                        }
                        return Err(e);
                    }
                }
            }
            let ev = self.wait_event(sys)?;
            match ev {
                DebugEvent::Breakpoint { addr, .. } => {
                    let passes = {
                        // wait_event captured the stop status just above;
                        // a missing one is an EIO-grade protocol break,
                        // not a panic.
                        let st = self.last_status.as_ref().ok_or(Errno::EIO)?;
                        let bp = self.bps.get_mut(&addr).ok_or(Errno::ENOENT)?;
                        bp.hits += 1;
                        bp.condition.as_ref().map(|c| c(&st.reg)).unwrap_or(true)
                    };
                    if passes {
                        let hits = self.bps[&addr].hits;
                        return Ok(DebugEvent::Breakpoint { addr, hits });
                    }
                    // Condition false: step over transparently.
                    match self.step(sys)? {
                        DebugEvent::Stepped => continue,
                        other => return Ok(other),
                    }
                }
                other => return Ok(other),
            }
        }
    }

    /// Waits for the next stop (or exit) and classifies it.
    fn wait_event(&mut self, sys: &mut System) -> SysResult<DebugEvent> {
        let st = match self.h.wstop(sys) {
            Ok(st) => st,
            // ESRCH/ENOENT: the process file vanished. target_gone also
            // catches a target that zombified mid-wait and surfaced some
            // other errno (e.g. an EINTR retry storm against a corpse).
            Err(e) if self.target_gone(sys, e) => {
                return Ok(self.exited_event(sys));
            }
            Err(e) => return Err(e),
        };
        self.last_status = Some(st.clone());
        Ok(match st.why {
            PrWhy::Faulted => match Fault::from_number(st.what as usize) {
                Some(Fault::Bpt) => {
                    let addr = st.reg.pc;
                    if self.bps.contains_key(&addr) {
                        DebugEvent::Breakpoint { addr, hits: 0 }
                    } else {
                        DebugEvent::Fault(Fault::Bpt)
                    }
                }
                Some(Fault::Watch) => DebugEvent::Watchpoint,
                Some(f) => DebugEvent::Fault(f),
                None => DebugEvent::Stopped,
            },
            PrWhy::Signalled => DebugEvent::Signal(st.what as usize),
            PrWhy::SyscallEntry => DebugEvent::SyscallEntry(st.what),
            PrWhy::SyscallExit => DebugEvent::SyscallExit(st.what),
            _ => DebugEvent::Stopped,
        })
    }

    /// Non-blocking event check via `poll`: classifies a pending stop
    /// (or exit) if the target's process file is ready, `None` when
    /// nothing has happened. The paper's proposed extension — "one could
    /// poll for a process to stop" — without committing to a blocking
    /// `PIOCWSTOP` per target.
    pub fn poll_event(&mut self, sys: &mut System) -> SysResult<Option<DebugEvent>> {
        let st = self.h.poll(sys)?;
        if st.ready() {
            Ok(Some(self.wait_event(sys)?))
        } else {
            Ok(None)
        }
    }

    /// The registers at the last stop.
    pub fn regs(&mut self, sys: &mut System) -> SysResult<GregSet> {
        self.h.gregs(sys)
    }

    /// Installs registers.
    pub fn set_regs(&mut self, sys: &mut System, regs: &GregSet) -> SysResult<()> {
        self.h.set_gregs(sys, regs)
    }

    /// Reads target memory.
    pub fn read(&mut self, sys: &mut System, addr: u64, buf: &mut [u8]) -> SysResult<usize> {
        self.h.read_mem(sys, addr, buf)
    }

    /// Writes target memory.
    pub fn write(&mut self, sys: &mut System, addr: u64, data: &[u8]) -> SysResult<usize> {
        self.h.write_mem(sys, addr, data)
    }

    /// Disassembles `n` instructions at `addr`.
    pub fn disassemble(&mut self, sys: &mut System, addr: u64, n: usize) -> SysResult<String> {
        let mut out = String::new();
        for i in 0..n {
            let pc = addr + (i as u64) * 8;
            let mut b = [0u8; 8];
            self.h.read_mem(sys, pc, &mut b)?;
            let label = self
                .aout
                .sym_at(pc)
                .map(|s| format!("{s}: "))
                .unwrap_or_default();
            out.push_str(&format!("{pc:08x}  {label}{}\n", isa::dis::disassemble(&b, pc)));
        }
        Ok(out)
    }

    /// Clears the current signal at a signalled stop.
    pub fn clear_signal(&mut self, sys: &mut System) -> SysResult<()> {
        self.h.set_cursig(sys, 0)
    }

    /// Detaches: lifts breakpoints, clears tracing and releases the
    /// target running. If the target died along the way the detach
    /// still succeeds — there is nothing left to release — and the
    /// descriptor is always closed.
    pub fn detach(mut self, sys: &mut System) -> SysResult<()> {
        let r = self.detach_ops(sys);
        let close = self.h.close(sys);
        match r {
            Ok(()) => close,
            Err(e) => Err(e),
        }
    }

    fn detach_ops(&mut self, sys: &mut System) -> SysResult<()> {
        let ops = |d: &mut Debugger, sys: &mut System| -> SysResult<()> {
            let _ = d.lift_all(sys);
            d.h.set_entry_trace(sys, SysSet::empty())?;
            d.h.set_exit_trace(sys, SysSet::empty())?;
            d.h.set_sig_trace(sys, SigSet::empty())?;
            d.h.set_flt_trace(sys, FltSet::empty())?;
            // Release if stopped.
            let st = d.h.status(sys)?;
            if st.flags & procfs::PR_ISTOP != 0 {
                d.h.run(sys, PrRun { flags: PRRUN_CSIG | PRRUN_CFAULT, vaddr: 0 })?;
            }
            Ok(())
        };
        match ops(self, sys) {
            Err(e) if self.target_gone(sys, e) => Ok(()),
            other => other,
        }
    }

    /// Kills the target outright. A target that already died counts as
    /// success; the descriptor is always closed.
    pub fn kill(mut self, sys: &mut System) -> SysResult<()> {
        let r = match self.h.kill(sys, SIGKILL) {
            Err(e) if self.target_gone(sys, e) => Ok(()),
            other => other,
        };
        // A stopped target must be released for the signal to act.
        if let Ok(st) = self.h.status(sys) {
            if st.flags & procfs::PR_ISTOP != 0 {
                let _ = self.h.run(sys, PrRun::default());
            }
        }
        let close = self.h.close(sys);
        r.and(close)
    }

    /// Runs an encapsulation loop: while the target executes, every entry
    /// to a system call in `calls` is intercepted, aborted in the kernel,
    /// and answered by `emulate` instead — "older system calls or
    /// alternate versions of them can be simulated entirely at user
    /// level". Returns when the target exits.
    pub fn encapsulate(
        &mut self,
        sys: &mut System,
        calls: SysSet,
        mut emulate: impl FnMut(u16, &GregSet) -> Result<u64, Errno>,
    ) -> SysResult<u16> {
        self.h.set_entry_trace(sys, calls)?;
        self.h.set_exit_trace(sys, calls)?;
        loop {
            if let Err(e) = self.h.run(sys, PrRun::default()) {
                if self.target_gone(sys, e) {
                    self.last_status = None;
                    return Ok(sys.kernel.proc(self.h.pid).map(|p| p.exit_status).unwrap_or(0));
                }
                return Err(e);
            }
            match self.wait_event(sys)? {
                DebugEvent::SyscallEntry(_) => {
                    // Abort the kernel's execution of the call: it goes
                    // directly to syscall exit with EINTR, where we
                    // manufacture the emulated return value.
                    self.h.run(sys, PrRun { flags: PRRUN_SABORT, vaddr: 0 })?;
                    match self.wait_event(sys)? {
                        DebugEvent::SyscallExit(nr) => {
                            let st = self.last_status.clone().ok_or(Errno::EIO)?;
                            let mut regs = st.reg;
                            match emulate(nr, &regs) {
                                Ok(v) => {
                                    regs.set_rv(v);
                                    regs.psr &= !isa::PSR_ERR;
                                }
                                Err(e) => {
                                    regs.set_rv((-(e as i64)) as u64);
                                    regs.psr |= isa::PSR_ERR;
                                }
                            }
                            self.h.set_gregs(sys, &regs)?;
                        }
                        DebugEvent::Exited(status) => return Ok(status),
                        _ => {}
                    }
                }
                DebugEvent::SyscallExit(_) => {}
                DebugEvent::Exited(status) => return Ok(status),
                _ => {}
            }
        }
    }
}

/// Waits on N traced processes with one `poll(2)` call instead of N
/// blocking ioctls — the workload the paper's proposed extension exists
/// for. Blocks until at least one target's process file reports ready
/// (stopped on an event of interest) or hung up (terminated), then
/// classifies that target's event. Returns the index of the woken
/// debugger and its event. All debuggers must share one controlling
/// process.
pub fn wait_event_any(
    sys: &mut System,
    dbgs: &mut [Debugger],
) -> SysResult<(usize, DebugEvent)> {
    let first = dbgs.first().ok_or(Errno::EINVAL)?;
    let ctl = first.h.ctl;
    if dbgs.iter().any(|d| d.h.ctl != ctl) {
        return Err(Errno::EINVAL);
    }
    let fds: Vec<usize> = dbgs.iter().map(|d| d.h.fd).collect();
    // One system call covers the whole set; per-handle accounting, which
    // exists to measure exactly this saving (E2), charges nothing here —
    // the classification below pays its own PIOCWSTOP.
    let mut attempts = 0;
    loop {
        let sts = match sys.host_poll_in(ctl, &fds) {
            Ok(sts) => sts,
            // An interrupted poll is transparently restarted (bounded).
            Err(Errno::EINTR) if attempts < crate::proc_io::TRANSIENT_RETRIES => {
                attempts += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        // Hangups first: a target that died between POLLHUP readiness
        // and classification must surface as a clean exit. Sending it
        // through wait_event would issue PIOCWSTOP against a corpse —
        // a wait that can never complete.
        for (i, st) in sts.iter().enumerate() {
            if st.hangup {
                let ev = dbgs[i].exited_event(sys);
                return Ok((i, ev));
            }
        }
        for (i, st) in sts.iter().enumerate() {
            if st.ready() {
                let ev = dbgs[i].wait_event(sys)?;
                return Ok((i, ev));
            }
        }
        // Nothing actually ready: a spurious wakeup. Poll again
        // (bounded, so a pathological plan cannot spin forever).
        attempts += 1;
        if attempts > crate::proc_io::TRANSIENT_RETRIES {
            return Err(Errno::EAGAIN);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::Cred;

    fn boot() -> (System, Pid) {
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("dbg", Cred::new(100, 10));
        (sys, ctl)
    }

    #[test]
    fn breakpoint_hits_at_symbol() {
        let (mut sys, ctl) = boot();
        let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let tick = dbg.sym("tick").expect("symbol");
        dbg.set_breakpoint(&mut sys, tick).expect("bp");
        for expected_a0 in 0..3u64 {
            let ev = dbg.cont(&mut sys).expect("cont");
            assert!(matches!(ev, DebugEvent::Breakpoint { addr, .. } if addr == tick), "{ev:?}");
            let regs = dbg.regs(&mut sys).expect("regs");
            assert_eq!(regs.pc, tick, "PC at the breakpoint");
            assert_eq!(regs.arg(0), expected_a0, "call count visible in a0");
        }
        dbg.kill(&mut sys).expect("kill");
    }

    #[test]
    fn conditional_breakpoint_skips_until_condition() {
        let (mut sys, ctl) = boot();
        let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let tick = dbg.sym("tick").expect("symbol");
        dbg.set_conditional_breakpoint(&mut sys, tick, Box::new(|r| r.arg(0) == 5))
            .expect("bp");
        let ev = dbg.cont(&mut sys).expect("cont");
        match ev {
            DebugEvent::Breakpoint { addr, hits } => {
                assert_eq!(addr, tick);
                assert_eq!(hits, 6, "five transparent skips plus the reported hit");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(dbg.regs(&mut sys).expect("regs").arg(0), 5);
        dbg.kill(&mut sys).expect("kill");
    }

    #[test]
    fn single_step_advances_one_instruction() {
        let (mut sys, ctl) = boot();
        let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let pc0 = dbg.regs(&mut sys).expect("regs").pc;
        assert_eq!(dbg.step(&mut sys).expect("step"), DebugEvent::Stepped);
        let pc1 = dbg.regs(&mut sys).expect("regs").pc;
        assert_eq!(pc1, pc0 + 8, "movi then next insn");
        dbg.kill(&mut sys).expect("kill");
    }

    #[test]
    fn disassembly_around_breakpoint() {
        let (mut sys, ctl) = boot();
        let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let tick = dbg.sym("tick").expect("symbol");
        let listing = dbg.disassemble(&mut sys, tick, 2).expect("dis");
        assert!(listing.contains("tick: "), "{listing}");
        assert!(listing.contains("addi"), "{listing}");
        dbg.kill(&mut sys).expect("kill");
    }

    #[test]
    fn encapsulation_emulates_retired_syscall() {
        // The kernel fails SYS_RETIRED with ENOSYS; the controller makes
        // it "work" entirely at user level — the target exits with the
        // emulated value.
        let (mut sys, ctl) = boot();
        let mut dbg =
            Debugger::launch(&mut sys, ctl, "/bin/retired", &["retired"]).expect("launch");
        let mut calls = SysSet::empty();
        calls.add(ksim::sysno::SYS_RETIRED as usize);
        let status = dbg
            .encapsulate(&mut sys, calls, |nr, regs| {
                assert_eq!(nr, ksim::sysno::SYS_RETIRED);
                Ok(regs.arg(0) * 6) // retired_op(7) => 42
            })
            .expect("encapsulate");
        assert_eq!(ksim::ptrace::decode_status(status), ksim::ptrace::WaitStatus::Exited(42));
    }

    #[test]
    fn detach_leaves_target_running_clean() {
        let (mut sys, ctl) = boot();
        let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let tick = dbg.sym("tick").expect("symbol");
        dbg.set_breakpoint(&mut sys, tick).expect("bp");
        let ev = dbg.cont(&mut sys).expect("cont");
        assert!(matches!(ev, DebugEvent::Breakpoint { .. }));
        let pid = dbg.pid();
        dbg.detach(&mut sys).expect("detach");
        sys.run_idle(200);
        let proc = sys.kernel.proc(pid).expect("alive");
        assert!(!proc.is_stopped(), "released");
        assert!(!proc.trace.any_tracing(), "no tracing left behind");
    }

    #[test]
    fn poll_wakes_exactly_the_stopped_target() {
        // Three traced processes, one poll(2): two spinners that never
        // stop and one ticker with a breakpoint. The single wait must
        // wake on exactly the breakpointed target.
        let (mut sys, ctl) = boot();
        let mut dbgs = Vec::new();
        for _ in 0..2 {
            let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
            dbgs.push(Debugger::attach(&mut sys, ctl, pid).expect("attach"));
        }
        let mut tick_dbg =
            Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let tick = tick_dbg.sym("tick").expect("symbol");
        tick_dbg.set_breakpoint(&mut sys, tick).expect("bp");
        dbgs.push(tick_dbg);
        // Release all three; nothing is ready yet.
        for d in dbgs.iter_mut() {
            d.h.run(&mut sys, PrRun { flags: PRRUN_CFAULT, vaddr: 0 }).expect("run");
            assert_eq!(d.poll_event(&mut sys).expect("poll"), None);
        }
        let (i, ev) = wait_event_any(&mut sys, &mut dbgs).expect("wait any");
        assert_eq!(i, 2, "only the breakpointed target became ready");
        assert!(matches!(ev, DebugEvent::Breakpoint { addr, .. } if addr == tick), "{ev:?}");
        // The spinners are still running: their process files stay
        // unready.
        for d in dbgs.iter_mut().take(2) {
            assert_eq!(d.poll_event(&mut sys).expect("poll"), None);
        }
        for d in dbgs {
            d.kill(&mut sys).expect("kill");
        }
    }

    #[test]
    fn poll_reports_hangup_on_exit() {
        // A target that exits flips its process file to hangup; the
        // poll-driven wait classifies it as Exited without a blocking
        // per-target ioctl.
        let (mut sys, ctl) = boot();
        let mut dbg =
            Debugger::launch(&mut sys, ctl, "/bin/retired", &["retired"]).expect("launch");
        let spin_pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let mut spin_dbg = Debugger::attach(&mut sys, ctl, spin_pid).expect("attach");
        spin_dbg.h.run(&mut sys, PrRun { flags: PRRUN_CFAULT, vaddr: 0 }).expect("run spin");
        dbg.h.run(&mut sys, PrRun { flags: PRRUN_CSIG | PRRUN_CFAULT, vaddr: 0 }).expect("run");
        let mut dbgs = vec![spin_dbg, dbg];
        let (i, ev) = wait_event_any(&mut sys, &mut dbgs).expect("wait any");
        assert_eq!(i, 1, "the exiting target wakes the poll");
        assert!(matches!(ev, DebugEvent::Exited(_)), "{ev:?}");
        let spin = dbgs.swap_remove(0);
        spin.kill(&mut sys).expect("kill");
    }

    #[test]
    fn attach_grabs_running_process() {
        let (mut sys, ctl) = boot();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        sys.run_idle(50);
        let mut dbg = Debugger::attach(&mut sys, ctl, pid).expect("grab");
        let st = dbg.h.status(&mut sys).expect("status");
        assert_ne!(st.flags & procfs::PR_STOPPED, 0);
        assert!(dbg.aout.sym("loop").is_some(), "symbols found without a pathname");
        dbg.kill(&mut sys).expect("kill");
    }
}
