//! The memory-map reporter — the paper's Figure 2.
//!
//! "Figure 2 shows a typical memory map, obtained by a simple tool that
//! reports the contents of the map structures returned by PIOCMAP."

use crate::proc_io::ProcHandle;
use ksim::{Pid, SysResult, System};
use procfs::PrMap;

/// Renders the target's memory map in the style of Figure 2: address,
/// size in K, permissions — plus the advisory segment name (the paper's
/// footnote notes that "stack" and "break" mappings are identified in
/// the PIOCMAP interface because control applications can use that).
pub fn pmap(sys: &mut System, ctl: Pid, pid: Pid) -> SysResult<String> {
    let mut h = ProcHandle::open_ro(sys, ctl, pid)?;
    let maps = h.maps(sys)?;
    h.close(sys)?;
    Ok(render(&maps))
}

/// Formats an already-captured map list.
pub fn render(maps: &[PrMap]) -> String {
    let mut out = String::new();
    for m in maps {
        out.push_str(&format!(
            "{:08X} {:>6}K {:<16} {}\n",
            m.vaddr,
            m.size / 1024,
            m.prot_string(),
            m.name,
        ));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::Cred;

    #[test]
    fn map_shows_figure_2_shape() {
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        // A program with a shared library, like the paper's example.
        let pid = sys.spawn_program(ctl, "/bin/libuser", &["libuser"]).expect("spawn");
        let text = pmap(&mut sys, ctl, pid).expect("pmap");
        // Code mappings read/exec, data mappings read/write, both for the
        // a.out and the library; stack and break are named.
        assert!(text.contains("read/exec"), "{text}");
        assert!(text.contains("read/write"), "{text}");
        assert!(text.contains("text"), "{text}");
        assert!(text.contains("lib:libdemo text"), "{text}");
        assert!(text.contains("stack"), "{text}");
        assert!(text.contains("break"), "{text}");
        // Library mappings live at the high link base.
        assert!(text.contains("40000000"), "{text}");
    }
}
