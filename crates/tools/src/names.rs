//! A minimal passwd/group table for rendering listings.

use std::collections::BTreeMap;

/// Maps uids/gids to names for `ls -l` and `ps` output.
#[derive(Clone, Debug)]
pub struct UserTable {
    users: BTreeMap<u32, String>,
    groups: BTreeMap<u32, String>,
}

impl Default for UserTable {
    fn default() -> Self {
        let mut users = BTreeMap::new();
        users.insert(0, "root".to_string());
        let mut groups = BTreeMap::new();
        groups.insert(0, "root".to_string());
        groups.insert(10, "staff".to_string());
        UserTable { users, groups }
    }
}

impl UserTable {
    /// Registers a user name.
    pub fn add_user(&mut self, uid: u32, name: &str) -> &mut Self {
        self.users.insert(uid, name.to_string());
        self
    }

    /// Registers a group name.
    pub fn add_group(&mut self, gid: u32, name: &str) -> &mut Self {
        self.groups.insert(gid, name.to_string());
        self
    }

    /// The name for `uid` (`u<uid>` when unknown).
    pub fn name(&self, uid: u32) -> String {
        self.users.get(&uid).cloned().unwrap_or_else(|| format!("u{uid}"))
    }

    /// The name for `gid` (`g<gid>` when unknown).
    pub fn group(&self, gid: u32) -> String {
        self.groups.get(&gid).cloned().unwrap_or_else(|| format!("g{gid}"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_additions() {
        let mut t = UserTable::default();
        assert_eq!(t.name(0), "root");
        assert_eq!(t.group(10), "staff");
        assert_eq!(t.name(77), "u77");
        t.add_user(100, "raf").add_group(20, "wheel");
        assert_eq!(t.name(100), "raf");
        assert_eq!(t.group(20), "wheel");
    }
}
