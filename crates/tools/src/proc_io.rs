//! A typed client over the flat `/proc` interface.
//!
//! [`ProcHandle`] wraps one open `/proc` descriptor with typed accessors
//! for every `PIOC*` operation and for address-space I/O. It counts the
//! control-interface calls it makes (`calls`), which is the measurement
//! the paper cares about when it claims `/proc` "reduces the number of
//! system calls routinely made by a debugger" (experiment E2).

use isa::{FpregSet, GregSet};
use ksim::fault::FltSet;
use ksim::signal::SigSet;
use ksim::sysno::SysSet;
use ksim::{Pid, SysResult, System};
use procfs::ioctl::*;
use procfs::{PrCred, PrMap, PrRun, PrStatus, PrUsage, PrWatch, PrXStats, PsInfo};
use vfs::{Errno, OFlags, PollStatus};

/// The `/proc` path of a process (five-digit form, as listed).
pub fn proc_path(pid: Pid) -> String {
    proc_path_at("/proc", pid)
}

/// The process file path under an arbitrary mount point (a remote
/// `/proc` is usually mounted elsewhere, e.g. `/rproc`).
pub fn proc_path_at(mount: &str, pid: Pid) -> String {
    format!("{}/{:05}", mount, pid.0)
}

/// How many times a transient fault (`EINTR` from an interrupted wait,
/// `EAGAIN` from a starved fork) is retried before the typed error is
/// surfaced to the caller.
pub const TRANSIENT_RETRIES: u32 = 8;

/// The host-call surface a `/proc` client needs. [`ProcHandle`] (and
/// everything built on it — the debugger, `truss`, `ps`, `pmap`) drives
/// its descriptors exclusively through this trait, so one call path
/// serves every kind of mount: the same typed accessors work whether
/// `/proc` is the local file system or a [`vfs::remote::RemoteFs`] shim
/// pipelining frames across a faulty wire. [`System`] is the canonical
/// implementation; benches and tests can supply their own (e.g. to
/// drive an unmounted file system directly or to count calls).
pub trait ProcTransport {
    /// `open(2)`.
    fn pt_open(&mut self, ctl: Pid, path: &str, flags: OFlags) -> SysResult<usize>;
    /// `close(2)`.
    fn pt_close(&mut self, ctl: Pid, fd: usize) -> SysResult<()>;
    /// `ioctl(2)`, blocking until the reply is complete.
    fn pt_ioctl(&mut self, ctl: Pid, fd: usize, req: u32, arg: &[u8]) -> SysResult<Vec<u8>>;
    /// `lseek(2)`.
    fn pt_lseek(&mut self, ctl: Pid, fd: usize, off: i64, whence: u32) -> SysResult<u64>;
    /// `read(2)`.
    fn pt_read(&mut self, ctl: Pid, fd: usize, buf: &mut [u8]) -> SysResult<usize>;
    /// `write(2)`.
    fn pt_write(&mut self, ctl: Pid, fd: usize, data: &[u8]) -> SysResult<usize>;
    /// Non-blocking readiness of one descriptor.
    fn pt_poll_fd(&mut self, ctl: Pid, fd: usize) -> SysResult<PollStatus>;
    /// `poll(2)` over a descriptor set: blocks until at least one is
    /// input-ready (`POLLIN | POLLHUP`), then reports every
    /// descriptor's status. Writability is ignored — `/proc` files of
    /// live processes are always writable.
    fn pt_poll(&mut self, ctl: Pid, fds: &[usize]) -> SysResult<Vec<PollStatus>>;
}

impl ProcTransport for System {
    fn pt_open(&mut self, ctl: Pid, path: &str, flags: OFlags) -> SysResult<usize> {
        self.host_open(ctl, path, flags)
    }
    fn pt_close(&mut self, ctl: Pid, fd: usize) -> SysResult<()> {
        self.host_close(ctl, fd)
    }
    fn pt_ioctl(&mut self, ctl: Pid, fd: usize, req: u32, arg: &[u8]) -> SysResult<Vec<u8>> {
        self.host_ioctl(ctl, fd, req, arg)
    }
    fn pt_lseek(&mut self, ctl: Pid, fd: usize, off: i64, whence: u32) -> SysResult<u64> {
        self.host_lseek(ctl, fd, off, whence)
    }
    fn pt_read(&mut self, ctl: Pid, fd: usize, buf: &mut [u8]) -> SysResult<usize> {
        self.host_read(ctl, fd, buf)
    }
    fn pt_write(&mut self, ctl: Pid, fd: usize, data: &[u8]) -> SysResult<usize> {
        self.host_write(ctl, fd, data)
    }
    fn pt_poll_fd(&mut self, ctl: Pid, fd: usize) -> SysResult<PollStatus> {
        self.poll_fd(ctl, fd)
    }
    fn pt_poll(&mut self, ctl: Pid, fds: &[usize]) -> SysResult<Vec<PollStatus>> {
        self.host_poll_in(ctl, fds)
    }
}

/// One open `/proc` descriptor, owned by hosted process `ctl`.
#[derive(Debug)]
pub struct ProcHandle {
    /// The target process.
    pub pid: Pid,
    /// The controlling (hosted) process owning the descriptor.
    pub ctl: Pid,
    /// The descriptor number in `ctl`'s table.
    pub fd: usize,
    /// Control-interface calls made through this handle (each host-level
    /// open/close/ioctl/lseek/read/write counts one).
    pub calls: u64,
}

impl ProcHandle {
    /// Opens the target's process file with the given flags.
    pub fn open(sys: &mut impl ProcTransport, ctl: Pid, pid: Pid, flags: OFlags) -> SysResult<ProcHandle> {
        let fd = sys.pt_open(ctl, &proc_path(pid), flags)?;
        Ok(ProcHandle { pid, ctl, fd, calls: 1 })
    }

    /// Opens read/write (the debugger's usual mode).
    pub fn open_rw(sys: &mut impl ProcTransport, ctl: Pid, pid: Pid) -> SysResult<ProcHandle> {
        Self::open(sys, ctl, pid, OFlags::rdwr())
    }

    /// Opens read-only (the `ps` mode: "the opens always succeed and no
    /// interference is created").
    pub fn open_ro(sys: &mut impl ProcTransport, ctl: Pid, pid: Pid) -> SysResult<ProcHandle> {
        Self::open(sys, ctl, pid, OFlags::rdonly())
    }

    /// Opens for exclusive control.
    pub fn open_excl(sys: &mut impl ProcTransport, ctl: Pid, pid: Pid) -> SysResult<ProcHandle> {
        Self::open(sys, ctl, pid, OFlags::rdwr_excl())
    }

    /// Opens the target's process file under an arbitrary mount point
    /// (for remote `/proc` mounts).
    pub fn open_at(
        sys: &mut impl ProcTransport,
        ctl: Pid,
        pid: Pid,
        mount: &str,
        flags: OFlags,
    ) -> SysResult<ProcHandle> {
        let fd = sys.pt_open(ctl, &proc_path_at(mount, pid), flags)?;
        Ok(ProcHandle { pid, ctl, fd, calls: 1 })
    }

    /// Closes the descriptor.
    pub fn close(mut self, sys: &mut impl ProcTransport) -> SysResult<()> {
        self.calls += 1;
        sys.pt_close(self.ctl, self.fd)
    }

    /// Runs `f` with a freshly opened handle and closes it on *every*
    /// exit path — normal return, typed error, or panic. This is the
    /// last-close guard the paper's run-on-last-close semantics need: a
    /// controller that unwinds mid-operation still closes the process
    /// file, so a stopped target with `PIOCSRLC` in effect is set
    /// running again rather than left stopped forever.
    ///
    /// (`ProcHandle` cannot do this from `Drop`: closing needs `&mut`
    /// access to the transport, which a `Drop` impl cannot borrow.)
    pub fn scoped<S: ProcTransport, T>(
        sys: &mut S,
        ctl: Pid,
        pid: Pid,
        flags: OFlags,
        f: impl FnOnce(&mut S, &mut ProcHandle) -> SysResult<T>,
    ) -> SysResult<T> {
        Self::scoped_at(sys, ctl, pid, "/proc", flags, f)
    }

    /// [`ProcHandle::scoped`] under an arbitrary mount point — the same
    /// unwind-safe last-close guarantee over a remote `/proc`.
    pub fn scoped_at<S: ProcTransport, T>(
        sys: &mut S,
        ctl: Pid,
        pid: Pid,
        mount: &str,
        flags: OFlags,
        f: impl FnOnce(&mut S, &mut ProcHandle) -> SysResult<T>,
    ) -> SysResult<T> {
        let mut h = Self::open_at(sys, ctl, pid, mount, flags)?;
        let (ctl, fd) = (h.ctl, h.fd);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(sys, &mut h)));
        // Close no matter how the body ended. A close failure after a
        // successful body is not surfaced: the target may legitimately
        // have died while we held the descriptor.
        let _ = sys.pt_close(ctl, fd);
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    fn ioctl(&mut self, sys: &mut impl ProcTransport, req: u32, arg: &[u8]) -> SysResult<Vec<u8>> {
        self.calls += 1;
        sys.pt_ioctl(self.ctl, self.fd, req, arg)
    }

    /// Like [`ProcHandle::ioctl`], but retries a bounded number of times
    /// when the kernel interrupts the wait with `EINTR` — the discipline
    /// every blocking `/proc` wait (`PIOCSTOP`, `PIOCWSTOP`) needs under
    /// an installed fault plan. A persistent `EINTR` storm still
    /// surfaces, typed, after [`TRANSIENT_RETRIES`] attempts.
    fn ioctl_retry_intr(
        &mut self,
        sys: &mut impl ProcTransport,
        req: u32,
        arg: &[u8],
    ) -> SysResult<Vec<u8>> {
        let mut attempts = 0;
        loop {
            match self.ioctl(sys, req, arg) {
                Err(Errno::EINTR) if attempts < TRANSIENT_RETRIES => attempts += 1,
                other => return other,
            }
        }
    }

    /// `PIOCSTATUS`: the full status in one operation.
    pub fn status(&mut self, sys: &mut impl ProcTransport) -> SysResult<PrStatus> {
        let out = self.ioctl(sys, PIOCSTATUS, &[])?;
        PrStatus::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCSTOP`: direct the process to stop and wait for the stop.
    /// Interrupted waits are retried (bounded).
    pub fn stop(&mut self, sys: &mut impl ProcTransport) -> SysResult<PrStatus> {
        let out = self.ioctl_retry_intr(sys, PIOCSTOP, &[])?;
        PrStatus::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCWSTOP`: wait for the next event-of-interest stop.
    /// Interrupted waits are retried (bounded).
    pub fn wstop(&mut self, sys: &mut impl ProcTransport) -> SysResult<PrStatus> {
        let out = self.ioctl_retry_intr(sys, PIOCWSTOP, &[])?;
        PrStatus::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCRUN` with options.
    pub fn run(&mut self, sys: &mut impl ProcTransport, run: PrRun) -> SysResult<()> {
        self.ioctl(sys, PIOCRUN, &run.to_bytes())?;
        Ok(())
    }

    /// `PIOCRUN` with no options.
    pub fn resume(&mut self, sys: &mut impl ProcTransport) -> SysResult<()> {
        self.run(sys, PrRun::default())
    }

    /// `PIOCSTRACE`: set traced signals.
    pub fn set_sig_trace(&mut self, sys: &mut impl ProcTransport, set: SigSet) -> SysResult<()> {
        self.ioctl(sys, PIOCSTRACE, &set.to_bytes())?;
        Ok(())
    }

    /// `PIOCGTRACE`: get traced signals.
    pub fn sig_trace(&mut self, sys: &mut impl ProcTransport) -> SysResult<SigSet> {
        let out = self.ioctl(sys, PIOCGTRACE, &[])?;
        SigSet::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCSFAULT`: set traced faults.
    pub fn set_flt_trace(&mut self, sys: &mut impl ProcTransport, set: FltSet) -> SysResult<()> {
        self.ioctl(sys, PIOCSFAULT, &set.to_bytes())?;
        Ok(())
    }

    /// `PIOCSENTRY`: set traced system call entries.
    pub fn set_entry_trace(&mut self, sys: &mut impl ProcTransport, set: SysSet) -> SysResult<()> {
        self.ioctl(sys, PIOCSENTRY, &set.to_bytes())?;
        Ok(())
    }

    /// `PIOCSEXIT`: set traced system call exits.
    pub fn set_exit_trace(&mut self, sys: &mut impl ProcTransport, set: SysSet) -> SysResult<()> {
        self.ioctl(sys, PIOCSEXIT, &set.to_bytes())?;
        Ok(())
    }

    /// `PIOCGREG`: fetch the general registers.
    pub fn gregs(&mut self, sys: &mut impl ProcTransport) -> SysResult<GregSet> {
        let out = self.ioctl(sys, PIOCGREG, &[])?;
        GregSet::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCSREG`: install the general registers.
    pub fn set_gregs(&mut self, sys: &mut impl ProcTransport, regs: &GregSet) -> SysResult<()> {
        self.ioctl(sys, PIOCSREG, &regs.to_bytes())?;
        Ok(())
    }

    /// `PIOCGFPREG`: fetch the floating registers.
    pub fn fpregs(&mut self, sys: &mut impl ProcTransport) -> SysResult<FpregSet> {
        let out = self.ioctl(sys, PIOCGFPREG, &[])?;
        FpregSet::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCSFPREG`: install the floating registers.
    pub fn set_fpregs(&mut self, sys: &mut impl ProcTransport, regs: &FpregSet) -> SysResult<()> {
        self.ioctl(sys, PIOCSFPREG, &regs.to_bytes())?;
        Ok(())
    }

    /// `PIOCMAP`: the address map.
    pub fn maps(&mut self, sys: &mut impl ProcTransport) -> SysResult<Vec<PrMap>> {
        let out = self.ioctl(sys, PIOCMAP, &[])?;
        Ok(PrMap::decode_list(&out))
    }

    /// `PIOCPSINFO`: the `ps` snapshot.
    pub fn psinfo(&mut self, sys: &mut impl ProcTransport) -> SysResult<PsInfo> {
        let out = self.ioctl(sys, PIOCPSINFO, &[])?;
        PsInfo::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCCRED`: credentials.
    pub fn cred(&mut self, sys: &mut impl ProcTransport) -> SysResult<PrCred> {
        let out = self.ioctl(sys, PIOCCRED, &[])?;
        PrCred::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCUSAGE`: resource usage.
    pub fn usage(&mut self, sys: &mut impl ProcTransport) -> SysResult<PrUsage> {
        let out = self.ioctl(sys, PIOCUSAGE, &[])?;
        PrUsage::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCKILL`: post a signal.
    pub fn kill(&mut self, sys: &mut impl ProcTransport, sig: usize) -> SysResult<()> {
        self.ioctl(sys, PIOCKILL, &(sig as u32).to_le_bytes())?;
        Ok(())
    }

    /// `PIOCUNKILL`: delete a pending signal.
    pub fn unkill(&mut self, sys: &mut impl ProcTransport, sig: usize) -> SysResult<()> {
        self.ioctl(sys, PIOCUNKILL, &(sig as u32).to_le_bytes())?;
        Ok(())
    }

    /// `PIOCSSIG`: set (0 clears) the current signal.
    pub fn set_cursig(&mut self, sys: &mut impl ProcTransport, sig: usize) -> SysResult<()> {
        self.ioctl(sys, PIOCSSIG, &(sig as u32).to_le_bytes())?;
        Ok(())
    }

    /// `PIOCSFORK`/`PIOCRFORK`: inherit-on-fork.
    pub fn set_inherit_on_fork(&mut self, sys: &mut impl ProcTransport, on: bool) -> SysResult<()> {
        self.ioctl(sys, if on { PIOCSFORK } else { PIOCRFORK }, &[])?;
        Ok(())
    }

    /// `PIOCSRLC`/`PIOCRRLC`: run-on-last-close.
    pub fn set_run_on_last_close(&mut self, sys: &mut impl ProcTransport, on: bool) -> SysResult<()> {
        self.ioctl(sys, if on { PIOCSRLC } else { PIOCRRLC }, &[])?;
        Ok(())
    }

    /// `PIOCSWATCH`: add (or with `size == 0` remove) a watched area.
    pub fn set_watch(&mut self, sys: &mut impl ProcTransport, w: PrWatch) -> SysResult<()> {
        self.ioctl(sys, PIOCSWATCH, &w.to_bytes())?;
        Ok(())
    }

    /// Any of the six stats ioctls (`PIOCCACHESTATS`,
    /// `PIOCKFAULTSTATS`, `PIOCXSTATS`, `PIOCWIRESTATS`,
    /// `PIOCRECSTATS`, `PIOCMIGSTATS`), decoded through the one typed
    /// [`procfs::StatsReport`] path. The typed accessors below delegate
    /// here; callers that iterate over families (e.g. a stats dumper)
    /// can use this directly and walk `StatsReport::counters()`.
    pub fn stats(
        &mut self,
        sys: &mut impl ProcTransport,
        req: u32,
    ) -> SysResult<procfs::StatsReport> {
        let out = self.ioctl(sys, req, &[])?;
        match Ioctl::from_req(req).ok_or(Errno::EINVAL)?.decode_reply(&out)? {
            IoctlPayload::Stats(s) => Ok(s),
            _ => Err(Errno::EINVAL),
        }
    }

    /// `PIOCCACHESTATS`: the snapshot-cache counters of the `/proc`
    /// mount serving this descriptor.
    pub fn cache_stats(&mut self, sys: &mut impl ProcTransport) -> SysResult<procfs::PrCacheStats> {
        match self.stats(sys, PIOCCACHESTATS)? {
            procfs::StatsReport::Cache(c) => Ok(c),
            _ => Err(Errno::EIO),
        }
    }

    /// `PIOCWIRESTATS`: the wire-layer transport counters, when the
    /// descriptor's `/proc` is mounted behind a [`vfs::remote::RemoteFs`].
    /// Answered by the client stub without crossing the wire, so it works
    /// even when the network is down; over a local mount it fails with
    /// the mount's unknown-ioctl errno.
    pub fn wire_stats(&mut self, sys: &mut impl ProcTransport) -> SysResult<vfs::remote::WireStats> {
        match self.stats(sys, vfs::remote::PIOCWIRESTATS)? {
            procfs::StatsReport::Wire(w) => Ok(w),
            _ => Err(Errno::EIO),
        }
    }

    /// `PIOCKFAULTSTATS`: the kernel fault-injection counters. Answered
    /// by the kernel owning the target, so over a remote mount the reply
    /// reports the *server's* fault plan. All zeros when no plan is
    /// installed.
    pub fn kfault_stats(&mut self, sys: &mut impl ProcTransport) -> SysResult<ksim::KFaultStats> {
        match self.stats(sys, PIOCKFAULTSTATS)? {
            procfs::StatsReport::KernelFaults(f) => Ok(f),
            _ => Err(Errno::EIO),
        }
    }

    /// `PIOCXSTATS`: the execution fast-path counters (software TLB and
    /// decoded-instruction cache) for the target. Kernel-resident like
    /// `PIOCKFAULTSTATS`, so over a remote mount the reply crosses the
    /// wire and reports the server's caches.
    pub fn xstats(&mut self, sys: &mut impl ProcTransport) -> SysResult<PrXStats> {
        match self.stats(sys, PIOCXSTATS)? {
            procfs::StatsReport::Exec(x) => Ok(x),
            _ => Err(Errno::EIO),
        }
    }

    /// `PIOCRECSTATS`: the record/replay counters of the kernel owning
    /// the target. All zeros when recording is off.
    pub fn rec_stats(&mut self, sys: &mut impl ProcTransport) -> SysResult<ksim::RecStats> {
        match self.stats(sys, PIOCRECSTATS)? {
            procfs::StatsReport::Recorder(r) => Ok(r),
            _ => Err(Errno::EIO),
        }
    }

    /// `PIOCMIGRATE`: one migration sub-operation (a raw
    /// [`ksim::migrate`] argument image), with the reply decoded into a
    /// typed [`ksim::MigReply`]. Protocol rejections ride *successful*
    /// ioctls (`MIG_ST_ERR` inside the reply), so a transport error here
    /// always means the wire, never the protocol.
    pub fn migrate_op(
        &mut self,
        sys: &mut impl ProcTransport,
        arg: &[u8],
    ) -> SysResult<ksim::MigReply> {
        let out = self.ioctl(sys, PIOCMIGRATE, arg)?;
        ksim::MigReply::from_bytes(&out).ok_or(Errno::EIO)
    }

    /// `PIOCMIGSTATS`: the migration counters of the kernel owning the
    /// target (begins, chunks, duplicate absorptions, commits, aborts,
    /// digest mismatches, resumes).
    pub fn mig_stats(&mut self, sys: &mut impl ProcTransport) -> SysResult<ksim::MigStats> {
        match self.stats(sys, PIOCMIGSTATS)? {
            procfs::StatsReport::Migrate(m) => Ok(m),
            _ => Err(Errno::EIO),
        }
    }

    /// `PIOCCKPT`: checkpoint the stopped target into a self-contained
    /// image (identity, registers, signal mask, sparse address space).
    /// Works over local and remote mounts alike — the image crosses the
    /// wire as an ordinary variable-length reply.
    pub fn checkpoint(&mut self, sys: &mut impl ProcTransport) -> SysResult<Vec<u8>> {
        let out = self.ioctl(sys, PIOCCKPT, &[])?;
        match Ioctl::Ckpt.decode_reply(&out)? {
            IoctlPayload::Image(img) => Ok(img),
            _ => Err(Errno::EIO),
        }
    }

    /// `PIOCRESTORE`: restore a [`ProcHandle::checkpoint`] image into
    /// the stopped target, replacing its address space, registers and
    /// signal mask. A malformed image fails with `EINVAL` before any
    /// state is touched.
    pub fn restore(&mut self, sys: &mut impl ProcTransport, image: &[u8]) -> SysResult<()> {
        self.ioctl(sys, PIOCRESTORE, image)?;
        Ok(())
    }

    /// Non-blocking `poll` readiness of this descriptor — the paper's
    /// proposed extension: the process file is "ready" (readable) when
    /// the target is stopped on an event of interest, and in `hangup`
    /// when it has terminated.
    pub fn poll(&mut self, sys: &mut impl ProcTransport) -> SysResult<PollStatus> {
        self.calls += 1;
        sys.pt_poll_fd(self.ctl, self.fd)
    }

    /// `PIOCOPENM`: open the object mapped at `vaddr`, returning a plain
    /// descriptor in the controller's table.
    pub fn open_mapped(&mut self, sys: &mut impl ProcTransport, vaddr: u64) -> SysResult<usize> {
        let out = self.ioctl(sys, PIOCOPENM, &vaddr.to_le_bytes())?;
        Ok(u64::from_le_bytes(out.try_into().map_err(|_| Errno::EIO)?) as usize)
    }

    /// Reads target memory at `addr` (lseek + read: two calls).
    pub fn read_mem(&mut self, sys: &mut impl ProcTransport, addr: u64, buf: &mut [u8]) -> SysResult<usize> {
        self.calls += 2;
        sys.pt_lseek(self.ctl, self.fd, addr as i64, 0)?;
        sys.pt_read(self.ctl, self.fd, buf)
    }

    /// Writes target memory at `addr` (lseek + write: two calls).
    pub fn write_mem(&mut self, sys: &mut impl ProcTransport, addr: u64, data: &[u8]) -> SysResult<usize> {
        self.calls += 2;
        sys.pt_lseek(self.ctl, self.fd, addr as i64, 0)?;
        sys.pt_write(self.ctl, self.fd, data)
    }

    /// Reads one 64-bit word of target memory.
    pub fn peek(&mut self, sys: &mut impl ProcTransport, addr: u64) -> SysResult<u64> {
        let mut b = [0u8; 8];
        self.read_mem(sys, addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes one 64-bit word of target memory.
    pub fn poke(&mut self, sys: &mut impl ProcTransport, addr: u64, value: u64) -> SysResult<()> {
        self.write_mem(sys, addr, &value.to_le_bytes())?;
        Ok(())
    }

    /// Reads the target's executable image via `PIOCOPENM` at the current
    /// program counter and parses it (symbol-table access without
    /// pathnames).
    pub fn read_aout(&mut self, sys: &mut impl ProcTransport) -> SysResult<ksim::Aout> {
        let pc = self.status(sys)?.reg.pc;
        let objfd = self.open_mapped(sys, pc)?;
        let mut image = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            self.calls += 1;
            let n = sys.pt_read(self.ctl, objfd, &mut buf)?;
            if n == 0 {
                break;
            }
            image.extend_from_slice(&buf[..n]);
        }
        self.calls += 1;
        sys.pt_close(self.ctl, objfd)?;
        ksim::Aout::from_bytes(&image)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::Cred;

    #[test]
    fn handle_covers_basic_cycle() {
        let mut sys = procfs::boot_with_proc();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        sys.install_program("/bin/spin", "_start:\nloop: jmp loop");
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
        let st = h.stop(&mut sys).expect("stop");
        assert_ne!(st.flags & procfs::PR_STOPPED, 0);
        let regs = h.gregs(&mut sys).expect("gregs");
        assert_eq!(regs.pc, st.reg.pc);
        let maps = h.maps(&mut sys).expect("maps");
        assert!(maps.iter().any(|m| m.name == "text"));
        let aout = h.read_aout(&mut sys).expect("aout");
        assert!(aout.sym("loop").is_some());
        h.resume(&mut sys).expect("run");
        let calls = h.calls;
        assert!(calls > 0);
        h.close(&mut sys).expect("close");
    }
}
