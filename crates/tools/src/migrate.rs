//! Live guest migration: move one process from a source [`System`] to a
//! destination [`System`] over `/proc`.
//!
//! The driver side of `PIOCMIGRATE` (the kernel side lives in
//! [`ksim::migrate`]):
//!
//! 1. stop the source target and take a `PIOCCKPT` image;
//! 2. spawn a stopped placeholder process on the destination;
//! 3. stream the image into the placeholder's process file as
//!    `BEGIN` / `CHUNK*` / `COMMIT` sub-operations, each at most
//!    [`ksim::migrate::MIG_CHUNK_MAX`] bytes;
//! 4. on a committed transfer (the destination's end-to-end FNV digest
//!    matched and `PIOCRESTORE` succeeded), kill the source target —
//!    the guest now runs exactly once, on the destination;
//! 5. on any failure, send a best-effort `ABORT`, kill the placeholder,
//!    and set the source target running again — source untouched,
//!    destination empty.
//!
//! Every sub-operation is idempotent on the kernel side (duplicate
//! chunks are absorbed, a re-sent `BEGIN` resumes, a re-sent `COMMIT`
//! of a done transfer just re-reports), so the driver recovers from any
//! transport failure by re-sending and resynchronising from the
//! reply's `next_off` — the discipline that makes the transfer
//! exactly-once over an adversarial wire. Protocol rejections arrive as
//! `MIG_ST_ERR` *inside successful replies* (so the wire's own retry
//! machinery never re-runs a rejected mutation) and are rebuilt here
//! into the typed [`MigrateError`].

use crate::proc_io::ProcHandle;
use ksim::migrate::{arg_abort, arg_begin, arg_chunk, arg_commit, MIG_CHUNK_MAX, MIG_ST_ERR};
use ksim::signal::SIGKILL;
use ksim::{MigReply, MigrateError, Pid, System};
use vfs::{Errno, OFlags};

/// How many times the driver re-sends one sub-operation whose transport
/// failed before surfacing [`MigrateError::Transport`]. Each re-send is
/// safe (the kernel side is idempotent), so this bounds patience, not
/// correctness.
pub const MIG_DRIVER_RETRIES: u32 = 400;

/// The placeholder program materialised on the destination to receive
/// the image (single-LWP, so `PIOCRESTORE`'s shape check passes).
pub const MIG_PLACEHOLDER: &str = "/bin/spin";

/// How many placeholders the driver will burn through before giving up:
/// destination fault injection may kill one mid-transfer, and because
/// the kernel keys transfer state by id (not by pid), a fresh
/// placeholder resumes the same transfer where the last one died.
pub const PLACEHOLDER_ATTEMPTS: u32 = 8;

/// Does this failure mean the placeholder itself is gone (so a respawn
/// can resume the transfer), rather than the transfer being refused?
fn placeholder_died(e: &MigrateError) -> bool {
    matches!(
        e,
        MigrateError::Transport(Errno::ENOENT | Errno::ESRCH)
            | MigrateError::Rejected { errno: Errno::ESRCH, .. }
    )
}

/// What a completed migration looked like.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrateReport {
    /// The destination pid now holding the guest (left stopped; the
    /// caller decides when it runs).
    pub dst_pid: Pid,
    /// Image size transferred, in bytes.
    pub bytes: usize,
    /// `CHUNK` sub-operations that drew an `OK` reply.
    pub chunks: u32,
    /// Sub-operations re-sent after a transport failure.
    pub retries: u32,
}

/// Sends one migration sub-operation, re-sending on transport failure
/// until a decodable reply lands or the retry budget runs out.
fn mig_op(
    dst: &mut System,
    h: &mut ProcHandle,
    arg: &[u8],
    retries: &mut u32,
) -> Result<MigReply, MigrateError> {
    let mut last = Errno::EIO;
    for attempt in 0..=MIG_DRIVER_RETRIES {
        if attempt > 0 {
            *retries += 1;
        }
        match h.migrate_op(dst, arg) {
            Ok(reply) => return Ok(reply),
            Err(e) => last = e,
        }
    }
    Err(MigrateError::Transport(last))
}

/// Rebuilds a `MIG_ST_ERR` reply into the typed driver error. A commit
/// rejected with `EIO` carries the destination's computed digest in
/// `detail` — that is the end-to-end check failing, which gets its own
/// variant.
fn rejected(op: &'static str, reply: MigReply, expected: u64) -> MigrateError {
    let errno = Errno::from_i32(reply.errno).unwrap_or(Errno::EIO);
    if op == "commit" && errno == Errno::EIO {
        return MigrateError::DigestMismatch { expected, got: reply.detail };
    }
    MigrateError::Rejected { op, errno }
}

/// Retries a source-side `/proc` operation through transient faults,
/// mapping a persistent failure to [`MigrateError::Transport`].
fn src_op<T>(
    what: &'static str,
    mut f: impl FnMut() -> ksim::SysResult<T>,
) -> Result<T, MigrateError> {
    let mut last = Errno::EIO;
    for _ in 0..=MIG_DRIVER_RETRIES {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) => last = e,
        }
    }
    let _ = what;
    Err(MigrateError::Transport(last))
}

/// Streams `image` into the (already stopped) destination process
/// behind `h`, returning the chunk/retry counts on a committed
/// transfer. On `Err` the transfer has been best-effort aborted and the
/// destination holds nothing.
fn stream_image(
    dst: &mut System,
    h: &mut ProcHandle,
    xfer: u64,
    image: &[u8],
    digest: u64,
) -> Result<(u32, u32), MigrateError> {
    let mut retries = 0u32;
    let total = image.len() as u64;

    let begin = arg_begin(xfer, total, digest);
    let mut reply = mig_op(dst, h, &begin, &mut retries)?;
    if reply.status == MIG_ST_ERR && Errno::from_i32(reply.errno) == Some(Errno::EBUSY) {
        // A stale transfer with different parameters holds our id:
        // clear it and claim the id once more.
        let _ = mig_op(dst, h, &arg_abort(xfer), &mut retries)?;
        reply = mig_op(dst, h, &begin, &mut retries)?;
    }
    if reply.status == MIG_ST_ERR {
        return Err(rejected("begin", reply, digest));
    }

    // `next` always comes from the destination's reply — a duplicate or
    // out-of-order chunk resynchronises the driver instead of failing.
    let mut next = reply.next_off;
    let mut chunks = 0u32;
    let mut commits = 0u32;
    loop {
        while next < total {
            let at = next as usize;
            let end = (at + MIG_CHUNK_MAX).min(image.len());
            let reply = mig_op(dst, h, &arg_chunk(xfer, next, &image[at..end]), &mut retries)?;
            if reply.status == MIG_ST_ERR {
                return Err(rejected("chunk", reply, digest));
            }
            if reply.next_off <= next && end as u64 != total {
                // The destination refuses to advance: protocol, not wire.
                return Err(MigrateError::Protocol("chunk made no progress"));
            }
            next = reply.next_off;
            chunks += 1;
        }
        let reply = mig_op(dst, h, &arg_commit(xfer, digest), &mut retries)?;
        if reply.status == MIG_ST_ERR {
            let errno = Errno::from_i32(reply.errno);
            if errno == Some(Errno::EINVAL) && reply.next_off < total && commits < 8 {
                // Incomplete buffer (a tail chunk was lost after its
                // reply): resynchronise and refill.
                commits += 1;
                next = reply.next_off;
                continue;
            }
            return Err(rejected("commit", reply, digest));
        }
        return Ok((chunks, retries));
    }
}

/// Migrates `target` from `src` (its process file reached through
/// `src_mount`) into a fresh process on `dst` (streamed through
/// `dst_mount`, which is the adversarial remote mount in the tests).
///
/// On `Ok`, the source target has been killed and the returned
/// [`MigrateReport::dst_pid`] holds the guest, stopped, transcript-
/// identical to a local restore of the same image. On `Err`, the source
/// target is set running again and the destination placeholder is
/// killed — nothing was materialised.
pub fn migrate(
    src: &mut System,
    src_ctl: Pid,
    src_mount: &str,
    target: Pid,
    dst: &mut System,
    dst_ctl: Pid,
    dst_mount: &str,
) -> Result<MigrateReport, MigrateError> {
    // -- Source side: stop and image the guest. ---------------------
    let mut sh = src_op("open source", || {
        ProcHandle::open_at(src, src_ctl, target, src_mount, OFlags::rdwr())
    })?;
    if let Err(e) = src_op("stop source", || sh.stop(src)) {
        let _ = sh.close(src);
        return Err(e);
    }
    let image = match src_op("checkpoint", || sh.checkpoint(src)) {
        Ok(img) => img,
        Err(e) => {
            let _ = sh.resume(src);
            let _ = sh.close(src);
            return Err(e);
        }
    };
    if image.len() > ksim::ckpt::CKPT_MAX {
        let _ = sh.resume(src);
        let _ = sh.close(src);
        return Err(MigrateError::TooLarge(image.len()));
    }
    let digest = ksim::record::fnv(&image);
    // The transfer id is a function of the image, so a driver restarted
    // wholesale resumes the same transfer instead of colliding.
    let xfer = digest ^ (image.len() as u64);

    // -- Destination side: a stopped placeholder to restore into. ---
    // The placeholder itself is expendable: if fault injection kills it
    // (ENOENT/ESRCH) or spuriously wakes it (a commit-time EBUSY), the
    // transfer state survives in the destination kernel, keyed by
    // `xfer`, and a fresh attempt resumes it from `next_off` instead of
    // restarting — that is what makes the whole operation exactly-once
    // rather than at-most-once.
    let mut placeholder: Option<Pid> = None;
    let mut chunks = 0u32;
    let mut retries = 0u32;
    let mut outcome: Result<Pid, MigrateError> =
        Err(MigrateError::Protocol("no placeholder attempt ran"));
    'attempt: for _ in 0..PLACEHOLDER_ATTEMPTS {
        // A live placeholder, respawned if the last one died under us.
        let pid = match placeholder {
            Some(p) if dst.kernel.proc(p).map(|pr| !pr.zombie).unwrap_or(false) => p,
            _ => {
                let mut spawned = Err(Errno::EAGAIN);
                for _ in 0..=MIG_DRIVER_RETRIES {
                    spawned = dst.spawn_program(dst_ctl, MIG_PLACEHOLDER, &["migrated"]);
                    if spawned.is_ok() {
                        break;
                    }
                }
                match spawned {
                    Ok(p) => {
                        dst.run_idle(30);
                        placeholder = Some(p);
                        p
                    }
                    Err(e) => {
                        outcome = Err(MigrateError::Transport(e));
                        break 'attempt;
                    }
                }
            }
        };
        let mut dh = match src_op("open destination", || {
            ProcHandle::open_at(dst, dst_ctl, pid, dst_mount, OFlags::rdwr())
        }) {
            Ok(h) => h,
            Err(e) => {
                if placeholder_died(&e) {
                    placeholder = None;
                    continue;
                }
                outcome = Err(e);
                break;
            }
        };
        let step = match src_op("stop destination", || dh.stop(dst)) {
            Ok(_) => stream_image(dst, &mut dh, xfer, &image, digest),
            Err(e) => Err(e),
        };
        let _ = dh.close(dst);
        match step {
            Ok((c, r)) => {
                chunks += c;
                retries += r;
                outcome = Ok(pid);
                break;
            }
            Err(e) if placeholder_died(&e) => placeholder = None,
            Err(MigrateError::Rejected { op: "commit", errno: Errno::EBUSY }) => {
                // Spurious wakeup set the placeholder running between
                // the stop and the restore; the next attempt re-stops
                // it and resumes the (complete) transfer.
            }
            Err(e) => {
                outcome = Err(e);
                break;
            }
        }
    }

    let dst_pid = match outcome {
        Ok(pid) => pid,
        Err(e) => {
            // Best-effort teardown: drop the half-built transfer, kill
            // whatever placeholder remains, let the source run on —
            // source untouched, destination empty.
            if let Some(pid) = placeholder {
                if let Ok(mut dh) =
                    ProcHandle::open_at(dst, dst_ctl, pid, dst_mount, OFlags::rdwr())
                {
                    let mut r = 0u32;
                    let _ = mig_op(dst, &mut dh, &arg_abort(xfer), &mut r);
                    let _ = dh.kill(dst, SIGKILL);
                    let _ = dh.resume(dst);
                    let _ = dh.close(dst);
                } else {
                    let _ = dst.kernel.post_signal(pid, SIGKILL);
                }
            }
            let _ = sh.resume(src);
            let _ = sh.close(src);
            return Err(e);
        }
    };

    // Committed: the guest exists on the destination. Retire the source
    // copy so it runs exactly once. (ESRCH here means it already died —
    // equally retired.)
    let _ = src_op("kill source", || sh.kill(src, SIGKILL));
    let _ = sh.resume(src);
    let _ = sh.close(src);

    Ok(MigrateReport { dst_pid, bytes: image.len(), chunks, retries })
}
