//! `ls -l /proc` — the paper's Figure 1.
//!
//! "A typical 'ls -l /proc' is shown in Figure 1. The name of each entry
//! is a decimal number corresponding to the process id. The owner and
//! group of the file are the process's real user-id and group-id ... The
//! reported 'size' is the total virtual memory size of the process;
//! system processes such as process 0 and process 2 have no user-level
//! address space, so their sizes are zero."

use crate::names::UserTable;
use ksim::{Pid, SysResult, System};

/// The fixed pretty-date used in listings: the paper's figure was taken
/// on Oct 31 at 10:06; we anchor the simulated epoch there and advance
/// minutes with simulated time.
fn format_date(mtime_secs: u64) -> String {
    let total_min = 10 * 60 + 6 + mtime_secs / 60;
    format!("Oct 31 {:02}:{:02}", (total_min / 60) % 24, total_min % 60)
}

/// Renders `ls -l /proc` in the style of Figure 1.
pub fn ls_l_proc(sys: &mut System, ctl: Pid, users: &UserTable) -> SysResult<String> {
    let mut entries = sys.list_dir(ctl, "/proc")?;
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    for e in entries {
        let meta = sys.stat_path(ctl, &format!("/proc/{}", e.name))?;
        out.push_str(&format!(
            "{} 1 {:<8} {:<8} {:>8} {} {}\n",
            meta.ls_mode(),
            users.name(meta.uid),
            users.group(meta.gid),
            meta.size,
            format_date(meta.mtime),
            e.name,
        ));
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::Cred;

    #[test]
    fn listing_resembles_figure_1() {
        let mut sys = crate::userland::boot_demo();
        let root = sys.spawn_hosted("rootls", Cred::superuser());
        let user = sys.spawn_hosted("user", Cred::new(100, 10));
        sys.spawn_program(user, "/bin/spin", &["spin"]).expect("spawn");
        let mut users = UserTable::default();
        users.add_user(100, "raf");
        let listing = ls_l_proc(&mut sys, root, &users).expect("ls");
        // Process 0 with zero size, user-owned entries, padded names.
        assert!(listing.contains("00000"), "{listing}");
        let first = listing.lines().next().expect("lines");
        assert!(first.starts_with("-rw-------"), "{first}");
        assert!(first.contains("root"));
        assert!(first.contains("Oct 31"));
        assert!(listing.contains("raf"), "{listing}");
        assert!(listing.contains("staff"), "{listing}");
        // The spin target has nonzero size; process 0 has zero.
        let p0_line = listing.lines().find(|l| l.ends_with("00000")).expect("p0");
        assert!(p0_line.contains(" 0 Oct"), "system process size 0: {p0_line}");
    }

    #[test]
    fn date_formatting_wraps() {
        assert_eq!(format_date(0), "Oct 31 10:06");
        assert_eq!(format_date(60), "Oct 31 10:07");
        assert_eq!(format_date(3600), "Oct 31 11:06");
    }
}
