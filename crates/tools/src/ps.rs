//! `ps(1)` over `/proc`.
//!
//! "The logic of ps is to read the /proc directory, open each process
//! file in turn, issue the PIOCPSINFO request, close the file, and print
//! the result if appropriate according to the ps options. Because ps runs
//! with super-user privilege and the process files are opened read-only,
//! the opens always succeed and no interference is created for
//! controlling and controlled processes. Because all the information for
//! a process is obtained in a single operation, each line of ps output is
//! a true snapshot of the process, even though the complete listing is
//! not a true snapshot of the whole system."

use crate::names::UserTable;
use crate::proc_io::ProcHandle;
use ksim::{Pid, SysResult, System, HZ};
use procfs::PsInfo;

/// Options for [`ps`].
#[derive(Clone, Debug, Default)]
pub struct PsOptions {
    /// `-e`: every process (otherwise only those with the caller's uid).
    pub all: bool,
    /// `-f`: full listing (adds PPID and UID columns).
    pub full: bool,
}

/// Gathers `PIOCPSINFO` snapshots for all visible processes, exactly per
/// the paper's recipe. Processes whose open fails (e.g. they exited
/// between `readdir` and `open`) are skipped silently, as real `ps` does.
pub fn ps_snapshots(sys: &mut System, ctl: Pid) -> SysResult<Vec<PsInfo>> {
    let entries = sys.list_dir(ctl, "/proc")?;
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let Ok(pid) = e.name.parse::<u32>() else { continue };
        let Ok(mut h) = ProcHandle::open_ro(sys, ctl, Pid(pid)) else {
            continue;
        };
        if let Ok(info) = h.psinfo(sys) {
            out.push(info);
        }
        let _ = h.close(sys);
    }
    Ok(out)
}

/// Renders one `ps` invocation.
pub fn ps(sys: &mut System, ctl: Pid, opts: &PsOptions, users: &UserTable) -> SysResult<String> {
    let caller_uid = sys.kernel.proc(ctl)?.cred.ruid;
    let mut snapshots = ps_snapshots(sys, ctl)?;
    if !opts.all {
        snapshots.retain(|p| p.uid == caller_uid);
    }
    let mut out = String::new();
    if opts.full {
        out.push_str("     UID   PID  PPID S      SZ     TIME CMD\n");
    } else {
        out.push_str("   PID S      SZ     TIME CMD\n");
    }
    for p in &snapshots {
        let time = format_time(p.time);
        if opts.full {
            out.push_str(&format!(
                "{:>8} {:>5} {:>5} {} {:>7} {:>8} {}\n",
                users.name(p.uid),
                p.pid,
                p.ppid,
                p.state as char,
                p.size / 1024,
                time,
                p.psargs,
            ));
        } else {
            out.push_str(&format!(
                "{:>6} {} {:>7} {:>8} {}\n",
                p.pid,
                p.state as char,
                p.size / 1024,
                time,
                p.fname,
            ));
        }
    }
    Ok(out)
}

/// Renders CPU time as `M:SS`.
fn format_time(ticks: u64) -> String {
    let secs = ticks / HZ;
    format!("{}:{:02}", secs / 60, secs % 60)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::Cred;

    #[test]
    fn ps_lists_the_expected_mix() {
        let mut sys = crate::userland::boot_demo();
        let user_ctl = sys.spawn_hosted("userctl", Cred::new(100, 10));
        let root = sys.spawn_hosted("rootps", Cred::superuser());
        let a = sys.spawn_program(user_ctl, "/bin/spin", &["spin"]).expect("spawn");
        let b = sys.spawn_program(user_ctl, "/bin/sleeper", &["sleeper"]).expect("spawn");
        sys.run_idle(200);
        // Root sees everything in one-snapshot-per-line fashion.
        let users = UserTable::default();
        let all = ps(&mut sys, root, &PsOptions { all: true, full: true }, &users)
            .expect("ps -ef");
        assert!(all.contains("sched"), "{all}");
        assert!(all.contains("init"), "{all}");
        assert!(all.contains("spin"), "{all}");
        assert!(all.contains("sleeper"), "{all}");
        assert!(all.contains("root"), "{all}");
        // The plain view of uid 100 shows only its own processes.
        let mine = ps(&mut sys, user_ctl, &PsOptions::default(), &users).expect("ps");
        assert!(mine.contains("spin"));
        assert!(!mine.contains("sched"));
        let _ = (a, b);
    }

    #[test]
    fn snapshots_skip_races_gracefully() {
        let mut sys = crate::userland::boot_demo();
        let root = sys.spawn_hosted("rootps", Cred::superuser());
        let list = ps_snapshots(&mut sys, root).expect("snapshots");
        assert!(list.iter().any(|p| p.fname == "init"));
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(0), "0:00");
        assert_eq!(format_time(61 * HZ), "1:01");
    }
}
