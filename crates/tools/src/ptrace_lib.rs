//! `ptrace(2)` as a library over `/proc` — and the kernel-`ptrace`
//! baseline debugger.
//!
//! "It is possible ... to eliminate ptrace from the operating system and
//! implement it as a library function built on /proc." [`PtraceOverProc`]
//! is that library: the classic request set re-expressed as `/proc`
//! operations. [`PtraceDebugger`] is the *kernel*-ptrace baseline used by
//! experiments E1/E2: word-at-a-time PEEK/POKE plus wait-based stop
//! handling, exactly the work profile the paper's efficiency argument is
//! about.

use crate::proc_io::ProcHandle;
use isa::GregSet;
use ksim::ptrace::{
    decode_status, WaitStatus, PT_CONT, PT_KILL, PT_PEEKDATA, PT_PEEKTEXT, PT_POKEDATA,
    PT_POKETEXT, PT_STEP,
};
use ksim::signal::SIGTRAP;
use ksim::{Errno, Pid, SysResult, System};
use procfs::{PrRun, PRRUN_CSIG, PRRUN_STEP, PRRUN_SVADDR};
use std::collections::HashMap;

/// The `ptrace` library built on `/proc`: one instance per controlling
/// process, caching a `/proc` handle per target.
pub struct PtraceOverProc {
    ctl: Pid,
    handles: HashMap<u32, ProcHandle>,
    /// Control-interface calls made (each underlying `/proc` call).
    pub calls: u64,
}

impl PtraceOverProc {
    /// Creates the emulation layer for controller `ctl`.
    pub fn new(ctl: Pid) -> PtraceOverProc {
        PtraceOverProc { ctl, handles: HashMap::new(), calls: 0 }
    }

    fn handle(&mut self, sys: &mut System, pid: Pid) -> SysResult<&mut ProcHandle> {
        if !self.handles.contains_key(&pid.0) {
            let h = ProcHandle::open_rw(sys, self.ctl, pid)?;
            self.handles.insert(pid.0, h);
        }
        self.handles.get_mut(&pid.0).ok_or(Errno::ESRCH)
    }

    /// The classic entry point: `ptrace(request, pid, addr, data)`.
    pub fn ptrace(
        &mut self,
        sys: &mut System,
        request: u64,
        pid: Pid,
        addr: u64,
        data: u64,
    ) -> SysResult<u64> {
        match request {
            PT_PEEKTEXT | PT_PEEKDATA => {
                let h = self.handle(sys, pid)?;
                let v = h.peek(sys, addr)?;
                self.calls += 2;
                Ok(v)
            }
            PT_POKETEXT | PT_POKEDATA => {
                let h = self.handle(sys, pid)?;
                h.poke(sys, addr, data)?;
                self.calls += 2;
                Ok(0)
            }
            PT_CONT | PT_STEP => {
                let mut extra = 0u64;
                let h = self.handle(sys, pid)?;
                let mut flags = 0;
                if data == 0 {
                    flags |= PRRUN_CSIG;
                } else {
                    h.set_cursig(sys, data as usize)?;
                    extra += 1;
                }
                if request == PT_STEP {
                    flags |= PRRUN_STEP;
                }
                let vaddr = if addr != 1 { addr } else { 0 };
                if addr != 1 {
                    flags |= PRRUN_SVADDR;
                }
                h.run(sys, PrRun { flags, vaddr })?;
                self.calls += extra + 1;
                Ok(0)
            }
            PT_KILL => {
                let h = self.handle(sys, pid)?;
                h.kill(sys, ksim::signal::SIGKILL)?;
                let _ = h.run(sys, PrRun::default());
                self.calls += 2;
                Ok(0)
            }
            _ => Err(Errno::EIO),
        }
    }

    /// Drops the cached handle for a dead target.
    pub fn forget(&mut self, sys: &mut System, pid: Pid) {
        if let Some(h) = self.handles.remove(&pid.0) {
            let _ = h.close(sys);
        }
    }
}

/// A minimal breakpoint debugger built on *kernel* ptrace: the baseline
/// the paper's `/proc` replaces. The target must be a child that called
/// (or was marked with) trace-me.
pub struct PtraceDebugger {
    /// The controlling (parent) process.
    pub ctl: Pid,
    /// The traced child.
    pub pid: Pid,
    saved: HashMap<u64, u64>,
    /// ptrace + wait calls made (E2's count).
    pub calls: u64,
}

impl PtraceDebugger {
    /// Launches `path` as a ptrace-traced child of `ctl`, stopped at its
    /// first signal... which classic debuggers arrange by having the
    /// child raise `SIGTRAP` immediately; here we mark it traced and
    /// send the trap ourselves before it runs.
    pub fn launch(
        sys: &mut System,
        ctl: Pid,
        path: &str,
        argv: &[&str],
    ) -> SysResult<PtraceDebugger> {
        let pid = sys.spawn_program(ctl, path, argv)?;
        sys.host_ptrace_traceme(pid)?;
        sys.host_kill(ctl, pid, SIGTRAP)?;
        let mut dbg = PtraceDebugger { ctl, pid, saved: HashMap::new(), calls: 2 };
        dbg.wait_stop(sys)?;
        Ok(dbg)
    }

    /// Waits for the child to stop (or exit).
    pub fn wait_stop(&mut self, sys: &mut System) -> SysResult<WaitStatus> {
        self.calls += 1;
        let (_, status) = sys.host_wait(self.ctl)?;
        Ok(decode_status(status))
    }

    /// Reads one word.
    pub fn peek(&mut self, sys: &mut System, addr: u64) -> SysResult<u64> {
        self.calls += 1;
        sys.host_ptrace(self.ctl, PT_PEEKTEXT, self.pid, addr, 0)
    }

    /// Writes one word.
    pub fn poke(&mut self, sys: &mut System, addr: u64, value: u64) -> SysResult<()> {
        self.calls += 1;
        sys.host_ptrace(self.ctl, PT_POKETEXT, self.pid, addr, value)?;
        Ok(())
    }

    /// Reads a buffer word by word — the ptrace way.
    pub fn read_mem(&mut self, sys: &mut System, addr: u64, buf: &mut [u8]) -> SysResult<()> {
        let mut off = 0usize;
        while off < buf.len() {
            let word = self.peek(sys, addr + off as u64)?;
            let bytes = word.to_le_bytes();
            let n = (buf.len() - off).min(8);
            buf[off..off + n].copy_from_slice(&bytes[..n]);
            off += n;
        }
        Ok(())
    }

    /// Fetches the registers (the GETREGS extension; one call).
    pub fn regs(&mut self, sys: &mut System) -> SysResult<GregSet> {
        self.calls += 1;
        sys.host_ptrace_getregs(self.ctl, self.pid)
    }

    /// Installs registers.
    pub fn set_regs(&mut self, sys: &mut System, regs: GregSet) -> SysResult<()> {
        self.calls += 1;
        sys.host_ptrace_setregs(self.ctl, self.pid, regs)
    }

    /// Plants a breakpoint.
    pub fn set_breakpoint(&mut self, sys: &mut System, addr: u64) -> SysResult<()> {
        let original = self.peek(sys, addr)?;
        self.saved.insert(addr, original);
        self.poke(sys, addr, u64::from_le_bytes(isa::insn::breakpoint_bytes()))
    }

    /// Removes a breakpoint.
    pub fn clear_breakpoint(&mut self, sys: &mut System, addr: u64) -> SysResult<()> {
        let original = self.saved.remove(&addr).ok_or(Errno::ENOENT)?;
        self.poke(sys, addr, original)
    }

    /// Continues (delivering no signal) and waits for the next stop.
    pub fn cont_wait(&mut self, sys: &mut System) -> SysResult<WaitStatus> {
        self.calls += 1;
        sys.host_ptrace(self.ctl, PT_CONT, self.pid, 1, 0)?;
        self.wait_stop(sys)
    }

    /// The classic resume-past-a-breakpoint dance: restore the original
    /// word, single-step, re-plant, continue.
    pub fn step_over_and_cont(&mut self, sys: &mut System, addr: u64) -> SysResult<WaitStatus> {
        let original = *self.saved.get(&addr).ok_or(Errno::ENOENT)?;
        self.poke(sys, addr, original)?;
        self.calls += 1;
        sys.host_ptrace(self.ctl, PT_STEP, self.pid, 1, 0)?;
        let st = self.wait_stop(sys)?;
        if !matches!(st, WaitStatus::Stopped(_)) {
            return Ok(st);
        }
        self.poke(sys, addr, u64::from_le_bytes(isa::insn::breakpoint_bytes()))?;
        self.cont_wait(sys)
    }

    /// Kills the child.
    pub fn kill(&mut self, sys: &mut System) -> SysResult<()> {
        self.calls += 1;
        sys.host_ptrace(self.ctl, PT_KILL, self.pid, 0, 0)?;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::Cred;

    #[test]
    fn ptrace_over_proc_peek_poke_cont() {
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        let pid = sys.spawn_program(ctl, "/bin/ticker", &["ticker"]).expect("spawn");
        // Stop it through /proc first (the library needs a stopped
        // target for poke of registers etc., like real ptrace).
        let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
        h.stop(&mut sys).expect("stop");
        let mut pt = PtraceOverProc::new(ctl);
        let aout = h.read_aout(&mut sys).expect("aout");
        let tick = aout.sym("tick").expect("symbol");
        let word = pt.ptrace(&mut sys, PT_PEEKTEXT, pid, tick, 0).expect("peek");
        assert_ne!(word, 0);
        pt.ptrace(&mut sys, PT_POKETEXT, pid, tick, word).expect("poke");
        pt.ptrace(&mut sys, PT_CONT, pid, 1, 0).expect("cont");
        sys.run_idle(10);
        assert!(!sys.kernel.proc(pid).expect("alive").is_stopped());
        assert!(pt.calls >= 5);
        pt.forget(&mut sys, pid);
        h.close(&mut sys).expect("close");
    }

    #[test]
    fn ptrace_debugger_breakpoint_cycle() {
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        let mut dbg =
            PtraceDebugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        // Find `tick` from a fresh assembly of the program (ptrace has no
        // PIOCOPENM; the baseline debugger needs the symbol table on the
        // side — itself part of the paper's point).
        let aout = ksim::aout::build_aout(crate::userland::TICKER).expect("asm");
        let tick = aout.sym("tick").expect("symbol");
        dbg.set_breakpoint(&mut sys, tick).expect("bp");
        let st = dbg.cont_wait(&mut sys).expect("cont");
        assert_eq!(st, WaitStatus::Stopped(SIGTRAP));
        let regs = dbg.regs(&mut sys).expect("regs");
        assert_eq!(regs.pc, tick);
        // Resume past it and hit it again.
        let st = dbg.step_over_and_cont(&mut sys, tick).expect("dance");
        assert_eq!(st, WaitStatus::Stopped(SIGTRAP));
        assert_eq!(dbg.regs(&mut sys).expect("regs").pc, tick);
        dbg.kill(&mut sys).expect("kill");
    }

    #[test]
    fn word_at_a_time_reads_cost_more_calls() {
        // The core of E2: reading 64 bytes costs 8 PEEKs under ptrace
        // but one lseek+read pair under /proc.
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
        let mut dbg =
            PtraceDebugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let aout = ksim::aout::build_aout(crate::userland::TICKER).expect("asm");
        let tick = aout.sym("tick").expect("symbol");
        let before = dbg.calls;
        let mut buf = [0u8; 64];
        dbg.read_mem(&mut sys, tick, &mut buf).expect("read");
        let ptrace_calls = dbg.calls - before;
        assert_eq!(ptrace_calls, 8);
        let mut h = ProcHandle::open_rw(&mut sys, ctl, dbg.pid).expect("open");
        let before = h.calls;
        let mut buf2 = [0u8; 64];
        h.read_mem(&mut sys, tick, &mut buf2).expect("read");
        let proc_calls = h.calls - before;
        assert_eq!(proc_calls, 2);
        assert_eq!(buf, buf2);
        dbg.kill(&mut sys).expect("kill");
        h.close(&mut sys).expect("close");
    }
}
