//! `sdb` — a scripted command-line debugger front-end.
//!
//! "The standard debuggers sdb(1) and dbx(1) have been rewritten in SVR4
//! to use /proc (and, for sdb, to add a few new capabilities, such as the
//! ability to grab and debug an existing process)." This module provides
//! the command loop of such a debugger over [`crate::Debugger`]; commands
//! arrive as strings (a script or an interactive reader) and output is a
//! transcript, which keeps it testable.
//!
//! Commands:
//!
//! ```text
//! break <sym|0xADDR>      plant a breakpoint            (alias: b)
//! delete <sym|0xADDR>     remove a breakpoint           (alias: d)
//! cont                    continue to the next event    (alias: c)
//! step [n]                single-step n instructions    (alias: s)
//! regs                    show the general registers    (alias: r)
//! x <sym|0xADDR> [n]      examine n 64-bit words        (alias: examine)
//! dis <sym|0xADDR> [n]    disassemble n instructions
//! poke <sym|0xADDR> <v>   write one word
//! watch <sym|0xADDR> <len> set a write watchpoint
//! signal <sig>            post a signal to the target
//! clearsig                discard the current signal
//! map                     show the address map
//! where                   symbolise the current PC
//! kill                    kill the target and finish
//! detach                  release the target and finish
//! tick                    show the recording position
//! reverse-step            undo the last step/cont stop  (alias: rs)
//! reverse-cont            undo back past the last cont  (alias: rc)
//! goto-tick <k>           re-materialize the run at tick k
//! save-rec <file>         write the recording as a durable recfile
//! load-rec <file>         re-materialize a run from a saved recfile
//! migrate                 move the target to a fresh system over the wire
//! ```
//!
//! The reverse commands need a *recorded* system (booted from a
//! [`ksim::SimConfig`] with `record(true)`, e.g. via
//! [`crate::userland::boot_demo_cfg`]): each forward stop pushes a mark
//! at the current recording position, and reversing re-materializes the
//! run at an earlier mark through [`procfs::goto_tick`] — the whole
//! `System` is rebuilt, but the debugger's `/proc` descriptor is valid
//! in the replayed state because the replay reproduces the descriptor
//! table along with everything else. On an unrecorded system they print
//! a note and do nothing. Breakpoints planted *after* the mark being
//! reversed to are unplanted in the restored state, exactly as they
//! were at that point in history.

use crate::debugger::{DebugEvent, Debugger};
use crate::proc_io::ProcHandle;
use isa::reg::reg_name;
use ksim::fault::Fault;
use ksim::signal::sig_name;
use ksim::{Errno, Pid, SysResult, System};
use procfs::PrWatch;

/// What [`Sdb::run_script_policy`] does with a target that is still
/// alive when the script runs out of lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EofPolicy {
    /// Kill the survivor (the historical behaviour, and what one-shot
    /// test scripts want).
    Kill,
    /// Detach and let it run — fault harnesses reuse scripts against
    /// targets that must survive the session.
    Detach,
}

/// The scripted debugger session.
pub struct Sdb {
    dbg: Option<Debugger>,
    transcript: String,
    finished: bool,
    /// Reverse-execution marks: `(recording position, command)` for the
    /// session start and every step/cont stop, oldest first. The last
    /// mark is "now"; reversing pops it and lands on the one below.
    marks: Vec<(usize, String)>,
}

/// The recording position of a system, when it records.
fn rec_pos(sys: &System) -> Option<usize> {
    sys.kernel.recorder.as_ref().map(|r| r.records.len())
}

impl Sdb {
    /// Launches `path` under control, stopped at its first instruction.
    pub fn launch(sys: &mut System, ctl: Pid, path: &str, argv: &[&str]) -> SysResult<Sdb> {
        let dbg = Debugger::launch(sys, ctl, path, argv)?;
        let pid = dbg.pid();
        let mut s =
            Sdb { dbg: Some(dbg), transcript: String::new(), finished: false, marks: Vec::new() };
        s.mark(sys, "launch");
        s.say(&format!("sdb: {path} (pid {pid}) stopped before first instruction"));
        Ok(s)
    }

    /// Grabs a running process.
    pub fn attach(sys: &mut System, ctl: Pid, pid: Pid) -> SysResult<Sdb> {
        let dbg = Debugger::attach(sys, ctl, pid)?;
        let mut s =
            Sdb { dbg: Some(dbg), transcript: String::new(), finished: false, marks: Vec::new() };
        s.mark(sys, "attach");
        s.say(&format!("sdb: grabbed pid {pid}"));
        Ok(s)
    }

    fn mark(&mut self, sys: &System, label: &str) {
        if let Some(pos) = rec_pos(sys) {
            self.marks.push((pos, label.to_string()));
        }
    }

    /// Re-materializes `sys` at recording position `k`. A divergence is
    /// reported in the transcript and surfaced as `EIO` — it means the
    /// log no longer reproduces (e.g. it was tampered with), which a
    /// debugger must not paper over.
    fn goto(&mut self, sys: &mut System, k: usize) -> SysResult<()> {
        match procfs::goto_tick(sys, k) {
            Ok(restored) => {
                *sys = restored;
                Ok(())
            }
            Err(d) => {
                self.say(&format!(
                    "sdb: replay diverged at tick {} (expected {:#018x}, got {:#018x})",
                    d.tick, d.expected, d.got
                ));
                Err(Errno::EIO)
            }
        }
    }

    /// True once the target exited or was released.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The session transcript so far.
    pub fn transcript(&self) -> &str {
        &self.transcript
    }

    fn say(&mut self, line: &str) {
        self.transcript.push_str(line);
        self.transcript.push('\n');
    }

    fn dbg(&mut self) -> SysResult<&mut Debugger> {
        self.dbg.as_mut().ok_or(Errno::ESRCH)
    }

    fn resolve(&mut self, token: &str) -> SysResult<u64> {
        if let Some(hex) = token.strip_prefix("0x") {
            return u64::from_str_radix(hex, 16).map_err(|_| Errno::EINVAL);
        }
        if let Ok(v) = token.parse::<u64>() {
            return Ok(v);
        }
        self.dbg()?.sym(token)
    }

    fn describe(&mut self, ev: &DebugEvent) -> String {
        match ev {
            DebugEvent::Breakpoint { addr, hits } => {
                let sym = self
                    .dbg
                    .as_ref()
                    .and_then(|d| d.aout.sym_at(*addr))
                    .map(|s| format!(" <{s}>"))
                    .unwrap_or_default();
                format!("breakpoint at {addr:#x}{sym} (hit {hits})")
            }
            DebugEvent::Signal(sig) => format!("received signal {}", sig_name(*sig)),
            DebugEvent::SyscallEntry(nr) => {
                format!("stopped at entry to {}", ksim::sysno::sys_name(*nr))
            }
            DebugEvent::SyscallExit(nr) => {
                format!("stopped at exit from {}", ksim::sysno::sys_name(*nr))
            }
            DebugEvent::Fault(f) => format!("incurred fault {}", f.name()),
            DebugEvent::Stepped => "stepped".to_string(),
            DebugEvent::Watchpoint => "watchpoint fired".to_string(),
            DebugEvent::Stopped => "stopped".to_string(),
            DebugEvent::Exited(status) => {
                format!("process exited, status {:?}", ksim::ptrace::decode_status(*status))
            }
        }
    }

    /// Executes one command line; output goes to the transcript.
    ///
    /// A target that dies mid-command (kill -9 from elsewhere, injected
    /// death) ends the session with a transcript note instead of
    /// surfacing a raw error: the user typed a debugger command, not a
    /// syscall, and "the process is gone" is an answer, not a failure.
    pub fn exec(&mut self, sys: &mut System, line: &str) -> SysResult<()> {
        match self.exec_inner(sys, line) {
            Ok(()) => Ok(()),
            Err(e) => {
                let gone = self
                    .dbg
                    .as_ref()
                    .map(|d| {
                        matches!(e, Errno::ESRCH | Errno::ENOENT)
                            || sys.kernel.proc(d.pid()).map(|p| p.zombie).unwrap_or(true)
                    })
                    .unwrap_or(false);
                if !gone {
                    return Err(e);
                }
                if let Some(dbg) = self.dbg.take() {
                    let _ = dbg.h.close(sys);
                }
                self.finished = true;
                self.say(&format!("sdb: target gone ({}); session finished", e.name()));
                Ok(())
            }
        }
    }

    fn exec_inner(&mut self, sys: &mut System, line: &str) -> SysResult<()> {
        if self.finished {
            self.say("sdb: session finished");
            return Ok(());
        }
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else { return Ok(()) };
        let args: Vec<&str> = parts.collect();
        match (cmd, args.as_slice()) {
            ("break" | "b", [target]) => {
                let addr = self.resolve(target)?;
                self.dbg()?.set_breakpoint(sys, addr)?;
                self.say(&format!("breakpoint set at {addr:#x}"));
            }
            ("delete" | "d", [target]) => {
                let addr = self.resolve(target)?;
                self.dbg()?.clear_breakpoint(sys, addr)?;
                self.say(&format!("breakpoint removed from {addr:#x}"));
            }
            ("cont" | "c", []) => {
                let ev = self.dbg()?.cont(sys)?;
                if matches!(ev, DebugEvent::Exited(_)) {
                    self.finished = true;
                } else {
                    self.mark(sys, "cont");
                }
                let msg = self.describe(&ev);
                self.say(&msg);
            }
            ("step" | "s", rest) => {
                let n: usize = rest.first().and_then(|t| t.parse().ok()).unwrap_or(1);
                for _ in 0..n {
                    let ev = self.dbg()?.step(sys)?;
                    if !matches!(ev, DebugEvent::Stepped) {
                        if matches!(ev, DebugEvent::Exited(_)) {
                            self.finished = true;
                        } else {
                            self.mark(sys, "step");
                        }
                        let msg = self.describe(&ev);
                        self.say(&msg);
                        return Ok(());
                    }
                }
                self.mark(sys, "step");
                let regs = self.dbg()?.regs(sys)?;
                let line = {
                    let dbg = self.dbg()?;
                    let mut b = [0u8; 8];
                    dbg.read(sys, regs.pc, &mut b)?;
                    isa::dis::disassemble(&b, regs.pc)
                };
                self.say(&format!("stepped to {:#x}: {}", regs.pc, line));
            }
            ("regs" | "r", []) => {
                let regs = self.dbg()?.regs(sys)?;
                self.say(&format!("pc  = {:#018x}  psr = {:#x}", regs.pc, regs.psr));
                for chunk in (0..32).collect::<Vec<_>>().chunks(4) {
                    let line = chunk
                        .iter()
                        .map(|&i| format!("{:<4}= {:#018x}", reg_name(i), regs.get(i)))
                        .collect::<Vec<_>>()
                        .join("  ");
                    self.say(&line);
                }
            }
            ("x" | "examine", [target, rest @ ..]) => {
                let addr = self.resolve(target)?;
                let n: usize = rest.first().and_then(|t| t.parse().ok()).unwrap_or(1);
                for i in 0..n {
                    let a = addr + (i as u64) * 8;
                    let dbg = self.dbg()?;
                    let mut b = [0u8; 8];
                    dbg.read(sys, a, &mut b)?;
                    self.say(&format!("{a:#010x}: {:#018x}", u64::from_le_bytes(b)));
                }
            }
            ("dis", [target, rest @ ..]) => {
                let addr = self.resolve(target)?;
                let n: usize = rest.first().and_then(|t| t.parse().ok()).unwrap_or(4);
                let listing = self.dbg()?.disassemble(sys, addr, n)?;
                self.transcript.push_str(&listing);
            }
            ("poke", [target, value]) => {
                let addr = self.resolve(target)?;
                let v = self.resolve(value)?;
                self.dbg()?.write(sys, addr, &v.to_le_bytes())?;
                self.say(&format!("poked {v:#x} at {addr:#x}"));
            }
            ("watch", [target, len]) => {
                let addr = self.resolve(target)?;
                let len: u64 = len.parse().map_err(|_| Errno::EINVAL)?;
                let dbg = self.dbg()?;
                let mut flt = ksim::FltSet::empty();
                flt.add(Fault::Bpt.number());
                flt.add(Fault::Trace.number());
                flt.add(Fault::Watch.number());
                dbg.h.set_flt_trace(sys, flt)?;
                dbg.h.set_watch(sys, PrWatch { vaddr: addr, size: len, flags: 2 })?;
                self.say(&format!("watching {len} bytes at {addr:#x} for writes"));
            }
            ("signal", [sig]) => {
                let sig: usize = sig.parse().map_err(|_| Errno::EINVAL)?;
                self.dbg()?.h.kill(sys, sig)?;
                self.say(&format!("posted {}", sig_name(sig)));
            }
            ("clearsig", []) => {
                self.dbg()?.clear_signal(sys)?;
                self.say("current signal cleared");
            }
            ("map", []) => {
                let maps = self.dbg()?.h.maps(sys)?;
                self.transcript.push_str(&crate::pmap::render(&maps));
            }
            ("where", []) => {
                let regs = self.dbg()?.regs(sys)?;
                let sym = crate::postmortem::nearest_symbol(&self.dbg()?.aout, regs.pc);
                match sym {
                    Some((name, 0)) => self.say(&format!("pc = {:#x} in {name}", regs.pc)),
                    Some((name, off)) => {
                        self.say(&format!("pc = {:#x} in {name}+{off:#x}", regs.pc))
                    }
                    None => self.say(&format!("pc = {:#x}", regs.pc)),
                }
            }
            ("kill", []) => {
                if let Some(dbg) = self.dbg.take() {
                    dbg.kill(sys)?;
                }
                self.finished = true;
                self.say("killed");
            }
            ("detach", []) => {
                if let Some(dbg) = self.dbg.take() {
                    dbg.detach(sys)?;
                }
                self.finished = true;
                self.say("detached");
            }
            ("tick", []) => match rec_pos(sys) {
                Some(pos) => self.say(&format!("tick {pos}")),
                None => self.say("sdb: recording is off"),
            },
            ("reverse-step" | "rs", []) => {
                if rec_pos(sys).is_none() {
                    self.say("sdb: recording is off; reverse execution unavailable");
                    return Ok(());
                }
                if self.marks.len() < 2 {
                    self.say("sdb: already at the earliest recorded stop");
                    return Ok(());
                }
                self.marks.pop();
                let target = self.marks.last().map(|m| m.0).unwrap_or(0);
                self.goto(sys, target)?;
                let pc = self.dbg()?.regs(sys)?.pc;
                self.say(&format!("sdb: reversed to tick {target}, pc = {pc:#x}"));
            }
            ("reverse-cont" | "rc", []) => {
                if rec_pos(sys).is_none() {
                    self.say("sdb: recording is off; reverse execution unavailable");
                    return Ok(());
                }
                if self.marks.len() < 2 {
                    self.say("sdb: already at the earliest recorded stop");
                    return Ok(());
                }
                // Pop stops until a `cont` stop has been undone (or the
                // session start is all that remains): the reverse of
                // "run to the next event" is "un-run the last event".
                while self.marks.len() > 1 {
                    let undone = self.marks.pop();
                    if matches!(&undone, Some((_, l)) if l == "cont") {
                        break;
                    }
                }
                let target = self.marks.last().map(|m| m.0).unwrap_or(0);
                self.goto(sys, target)?;
                let pc = self.dbg()?.regs(sys)?.pc;
                self.say(&format!("sdb: reversed to tick {target}, pc = {pc:#x}"));
            }
            ("save-rec", [path]) => match sys.save_recfile() {
                Some(bytes) => {
                    let n = bytes.len();
                    match std::fs::write(path, bytes) {
                        Ok(()) => {
                            self.say(&format!("sdb: recording saved to {path} ({n} bytes)"));
                        }
                        Err(e) => {
                            if let Some(r) = sys.kernel.recorder.as_mut() {
                                r.stats.file_errors += 1;
                            }
                            self.say(&format!("sdb: save-rec failed: {e}"));
                        }
                    }
                }
                None => self.say("sdb: recording is off"),
            },
            ("load-rec", [path]) => {
                let bytes = match std::fs::read(path) {
                    Ok(b) => b,
                    Err(e) => {
                        self.say(&format!("sdb: load-rec failed: {e}"));
                        return Ok(());
                    }
                };
                match procfs::replay_file(&bytes) {
                    Ok(loaded) => {
                        *sys = loaded;
                        let pos = rec_pos(sys).unwrap_or(0);
                        self.marks.retain(|m| m.0 <= pos);
                        if self.marks.is_empty() {
                            self.marks.push((pos, "load".to_string()));
                        }
                        self.say(&format!("sdb: loaded {path}, at tick {pos}"));
                    }
                    Err(e) => {
                        if let Some(r) = sys.kernel.recorder.as_mut() {
                            r.stats.file_errors += 1;
                        }
                        self.say(&format!("sdb: load-rec failed: {e}"));
                    }
                }
            }
            ("migrate", []) => {
                let (ctl, target) = {
                    let dbg = self.dbg()?;
                    (dbg.h.ctl, dbg.pid())
                };
                // A fresh destination system reached through a clean
                // remote mount — the demonstration counterpart of
                // migrating to another machine.
                let cfg = ksim::SimConfig::standard().mount(
                    "/procr",
                    ksim::MountPlan::RemoteProc(vfs::remote::WireConfig::clean()),
                );
                let mut dst = crate::userland::boot_demo_cfg(cfg);
                let dst_ctl = dst.spawn_hosted("sdb-migrate", ksim::Cred::superuser());
                match crate::migrate::migrate(sys, ctl, "/proc", target, &mut dst, dst_ctl, "/procr")
                {
                    Ok(r) => {
                        self.say(&format!(
                            "sdb: migrated pid {target} -> destination pid {} ({} bytes in {} chunks); source retired",
                            r.dst_pid, r.bytes, r.chunks
                        ));
                        self.dbg = None;
                        self.finished = true;
                    }
                    Err(e) => {
                        // The driver's failure path sets the source
                        // running again; re-stop it so the session's
                        // stopped-at-prompt invariant holds.
                        self.say(&format!("sdb: migrate failed: {e}; target kept here"));
                        let _ = self.dbg()?.h.stop(sys);
                    }
                }
            }
            ("goto-tick", [k]) => {
                let Some(pos) = rec_pos(sys) else {
                    self.say("sdb: recording is off; reverse execution unavailable");
                    return Ok(());
                };
                let k: usize = k.parse().map_err(|_| Errno::EINVAL)?;
                let k = k.min(pos);
                self.goto(sys, k)?;
                self.marks.retain(|m| m.0 <= k);
                if self.marks.is_empty() {
                    self.marks.push((k, "goto".to_string()));
                }
                self.say(&format!("sdb: at tick {k}"));
            }
            _ => self.say(&format!("sdb: unknown command `{line}`")),
        }
        Ok(())
    }

    /// Runs a whole script, returning the transcript. A target that
    /// survives the script is killed — see [`Sdb::run_script_policy`]
    /// for the detaching variant.
    pub fn run_script(
        sys: &mut System,
        ctl: Pid,
        path: &str,
        argv: &[&str],
        script: &[&str],
    ) -> SysResult<String> {
        Sdb::run_script_policy(sys, ctl, path, argv, script, EofPolicy::Kill)
    }

    /// Runs a whole script with an explicit end-of-script policy for a
    /// surviving target: [`EofPolicy::Kill`] destroys it,
    /// [`EofPolicy::Detach`] releases it to run free.
    pub fn run_script_policy(
        sys: &mut System,
        ctl: Pid,
        path: &str,
        argv: &[&str],
        script: &[&str],
        eof: EofPolicy,
    ) -> SysResult<String> {
        let mut sdb = Sdb::launch(sys, ctl, path, argv)?;
        for line in script {
            sdb.exec(sys, line)?;
            if sdb.finished {
                break;
            }
        }
        if !sdb.finished {
            if let Some(dbg) = sdb.dbg.take() {
                match eof {
                    EofPolicy::Kill => {
                        let _ = dbg.kill(sys);
                    }
                    EofPolicy::Detach => {
                        let _ = dbg.detach(sys);
                    }
                }
            }
        }
        Ok(sdb.transcript)
    }
}

/// Reads the handle type used in command implementations (doc aid).
pub type SdbHandle = ProcHandle;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::Cred;

    fn boot() -> (System, Pid) {
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("sdb", Cred::new(100, 10));
        (sys, ctl)
    }

    #[test]
    fn scripted_breakpoint_session() {
        let (mut sys, ctl) = boot();
        let t = Sdb::run_script(
            &mut sys,
            ctl,
            "/bin/ticker",
            &["ticker"],
            &["b tick", "c", "regs", "where", "c", "x tick 2", "dis tick 2", "kill"],
        )
        .expect("script");
        assert!(t.contains("breakpoint set at"), "{t}");
        assert!(t.contains("<tick> (hit 1)"), "{t}");
        assert!(t.contains("pc  ="), "{t}");
        assert!(t.contains("in tick"), "{t}");
        assert!(t.contains("(hit 2)"), "{t}");
        assert!(t.contains("killed"), "{t}");
    }

    #[test]
    fn step_and_poke() {
        let (mut sys, ctl) = boot();
        let t = Sdb::run_script(
            &mut sys,
            ctl,
            "/bin/ticker",
            &["ticker"],
            &["s", "s 2", "map", "poke 0x1001000 66", "x 0x1001000 1", "detach"],
        )
        .expect("script");
        assert!(t.contains("stepped to"), "{t}");
        assert!(t.contains("text"), "{t}");
        assert!(t.contains("0x01001000: 0x0000000000000042"), "{t}");
        assert!(t.contains("detached"), "{t}");
    }

    #[test]
    fn watch_command_stops_on_store() {
        let (mut sys, ctl) = boot();
        let mut sdb = Sdb::launch(&mut sys, ctl, "/bin/watched", &["watched"]).expect("launch");
        sdb.exec(&mut sys, "watch cell 8").expect("watch");
        sdb.exec(&mut sys, "cont").expect("cont");
        assert!(sdb.transcript().contains("watchpoint fired"), "{}", sdb.transcript());
        sdb.exec(&mut sys, "kill").expect("kill");
    }

    #[test]
    fn run_to_exit_reports() {
        let (mut sys, ctl) = boot();
        let t = Sdb::run_script(&mut sys, ctl, "/bin/greeter", &["greeter"], &["c"])
            .expect("script");
        assert!(t.contains("process exited, status Exited(0)"), "{t}");
    }

    #[test]
    fn detach_eof_policy_leaves_target_running() {
        let (mut sys, ctl) = boot();
        let t = Sdb::run_script_policy(
            &mut sys,
            ctl,
            "/bin/ticker",
            &["ticker"],
            &["s", "regs"],
            EofPolicy::Detach,
        )
        .expect("script");
        assert!(t.contains("stepped to"), "{t}");
        // The survivor keeps running after the script: find it and
        // check it is neither gone nor left stopped.
        let pid = sys
            .kernel
            .procs
            .values()
            .find(|p| !p.hosted && p.pid.0 > 1 && !p.zombie)
            .map(|p| p.pid)
            .expect("target survived detach");
        let stopped = sys.kernel.proc(pid).expect("proc").is_event_stopped();
        assert!(!stopped, "detached target must not be left stopped");
    }

    fn boot_recorded() -> (System, Pid) {
        let mut sys =
            crate::userland::boot_demo_cfg(ksim::SimConfig::standard().record(true));
        let ctl = sys.spawn_hosted("sdb", Cred::new(100, 10));
        (sys, ctl)
    }

    #[test]
    fn reverse_step_restores_register_state() {
        let (mut sys, ctl) = boot_recorded();
        let mut sdb = Sdb::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        sdb.exec(&mut sys, "step").expect("step");
        let before = sdb.dbg().expect("dbg").regs(&mut sys).expect("regs");
        sdb.exec(&mut sys, "step 3").expect("step 3");
        let after = sdb.dbg().expect("dbg").regs(&mut sys).expect("regs");
        assert_ne!(before, after, "three steps must move the pc");
        sdb.exec(&mut sys, "reverse-step").expect("reverse-step");
        let reversed = sdb.dbg().expect("dbg").regs(&mut sys).expect("regs");
        assert_eq!(before, reversed, "reverse-step must land on the pre-step registers");
        assert!(sdb.transcript().contains("reversed to tick"), "{}", sdb.transcript());
    }

    #[test]
    fn reverse_cont_undoes_a_breakpoint_hit() {
        let (mut sys, ctl) = boot_recorded();
        let mut sdb = Sdb::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        sdb.exec(&mut sys, "break tick").expect("break");
        sdb.exec(&mut sys, "cont").expect("cont 1");
        let first_hit = sdb.dbg().expect("dbg").regs(&mut sys).expect("regs");
        sdb.exec(&mut sys, "cont").expect("cont 2");
        let second_hit = sdb.dbg().expect("dbg").regs(&mut sys).expect("regs");
        assert_ne!(first_hit, second_hit, "tick call counter must advance between hits");
        sdb.exec(&mut sys, "reverse-cont").expect("reverse-cont");
        let reversed = sdb.dbg().expect("dbg").regs(&mut sys).expect("regs");
        assert_eq!(first_hit, reversed, "reverse-cont must land on the first hit's registers");
        // Forward from the restored state: the next cont re-reaches the
        // second hit with identical registers — history is consistent.
        sdb.exec(&mut sys, "cont").expect("cont again");
        let forward = sdb.dbg().expect("dbg").regs(&mut sys).expect("regs");
        assert_eq!(second_hit, forward, "re-running forward must reproduce the second hit");
    }

    #[test]
    fn goto_tick_and_tick_report_positions() {
        let (mut sys, ctl) = boot_recorded();
        let mut sdb = Sdb::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        sdb.exec(&mut sys, "step").expect("step");
        sdb.exec(&mut sys, "tick").expect("tick");
        assert!(sdb.transcript().contains("tick "), "{}", sdb.transcript());
        let pos = ksim::System::recording(&sys).expect("recording").len();
        sdb.exec(&mut sys, &format!("goto-tick {pos}")).expect("goto");
        assert!(sdb.transcript().contains(&format!("at tick {pos}")), "{}", sdb.transcript());
    }

    #[test]
    fn reverse_without_recording_is_a_note_not_an_error() {
        let (mut sys, ctl) = boot();
        let mut sdb = Sdb::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        sdb.exec(&mut sys, "reverse-step").expect("reverse-step");
        assert!(sdb.transcript().contains("recording is off"), "{}", sdb.transcript());
        sdb.exec(&mut sys, "kill").expect("kill");
    }

    #[test]
    fn save_rec_and_load_rec_round_trip_through_a_file() {
        let (mut sys, ctl) = boot_recorded();
        let mut sdb = Sdb::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        sdb.exec(&mut sys, "step 4").expect("step");
        let before = sdb.dbg().expect("dbg").regs(&mut sys).expect("regs");

        let path = std::env::temp_dir().join(format!("sdb-recfile-{}.rec", std::process::id()));
        let path_s = path.to_string_lossy().into_owned();
        sdb.exec(&mut sys, &format!("save-rec {path_s}")).expect("save-rec");
        assert!(sdb.transcript().contains("recording saved"), "{}", sdb.transcript());

        sdb.exec(&mut sys, &format!("load-rec {path_s}")).expect("load-rec");
        let _ = std::fs::remove_file(&path);
        assert!(sdb.transcript().contains("loaded"), "{}", sdb.transcript());
        // The re-materialised run reproduces the session state exactly.
        let after = sdb.dbg().expect("dbg").regs(&mut sys).expect("regs");
        assert_eq!(before, after, "load-rec landed on different registers");
        sdb.exec(&mut sys, "kill").expect("kill");
    }

    #[test]
    fn load_rec_of_garbage_is_a_note_not_a_panic() {
        let (mut sys, ctl) = boot_recorded();
        let mut sdb = Sdb::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let path = std::env::temp_dir().join(format!("sdb-garbage-{}.rec", std::process::id()));
        std::fs::write(&path, b"not a recfile at all").expect("write garbage");
        let path_s = path.to_string_lossy().into_owned();
        sdb.exec(&mut sys, &format!("load-rec {path_s}")).expect("load-rec");
        let _ = std::fs::remove_file(&path);
        assert!(sdb.transcript().contains("load-rec failed"), "{}", sdb.transcript());
        // The session survived: the rejected load is a counted error.
        let stats = sys.kernel.recorder.as_ref().expect("recorder").stats;
        assert_eq!(stats.file_errors, 1, "{stats:?}");
        sdb.exec(&mut sys, "kill").expect("kill");
    }

    #[test]
    fn migrate_command_moves_the_target_out() {
        let (mut sys, ctl) = boot();
        let mut sdb = Sdb::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        sdb.exec(&mut sys, "migrate").expect("migrate");
        let t = sdb.transcript().to_string();
        assert!(t.contains("migrated pid"), "{t}");
        assert!(t.contains("source retired"), "{t}");
        // The session is over; further commands degrade gracefully
        // rather than erroring out.
        let before = sdb.transcript().len();
        let _ = sdb.exec(&mut sys, "regs");
        assert!(
            !sdb.transcript()[before..].contains("pc  ="),
            "a migrated-away target still reported registers: {}",
            sdb.transcript()
        );
    }

    #[test]
    fn unknown_command_is_reported_not_fatal() {
        let (mut sys, ctl) = boot();
        let t = Sdb::run_script(&mut sys, ctl, "/bin/ticker", &["t"], &["frobnicate", "kill"])
            .expect("script");
        assert!(t.contains("unknown command"), "{t}");
        assert!(t.contains("killed"), "{t}");
    }
}
