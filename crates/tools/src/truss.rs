//! `truss(1)` — system call tracing over `/proc`.
//!
//! "The interception of system calls with /proc is at the heart of
//! truss(1), a command that traces the execution of a process, producing
//! a symbolic report of the system calls it executes, the faults it
//! encounters and the signals it receives. truss can be applied to
//! running processes or used to start up commands to be traced, and will
//! optionally follow the execution of child processes as well. ...
//! truss will not alter the behavior of a process other than by slowing
//! it down."

use crate::proc_io::ProcHandle;
use ksim::fault::{Fault, FltSet};
use ksim::signal::{sig_name, SigSet};
use ksim::sysno::{sys_name, SysSet, SYS_EXEC, SYS_FORK, SYS_OPEN, SYS_STAT, SYS_VFORK};
use ksim::{Errno, Pid, SysResult, System};
use procfs::{PrRun, PrStatus, PrWhy};
use std::collections::BTreeMap;

/// Options controlling a trace.
#[derive(Clone, Debug)]
pub struct TrussOptions {
    /// `-f`: follow children created by fork/vfork.
    pub follow: bool,
    /// Include machine faults in the report.
    pub faults: bool,
    /// Stop tracing after this many reported events (safety bound).
    pub max_events: usize,
}

impl Default for TrussOptions {
    fn default() -> Self {
        TrussOptions { follow: true, faults: true, max_events: 20_000 }
    }
}

/// The trace report.
#[derive(Clone, Debug, Default)]
pub struct TrussReport {
    /// Human-readable trace lines, in event order.
    pub lines: Vec<String>,
    /// Exit status of each traced process, in exit order.
    pub exits: Vec<(Pid, u16)>,
    /// Per-call-number completion counts.
    pub counts: BTreeMap<u16, u64>,
}

impl TrussReport {
    /// The whole report as one string.
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }
}

/// In-flight call state per traced process.
struct Traced {
    handle: ProcHandle,
    pending: Option<(u16, String)>,
    gone: bool,
}

/// Starts `path` under trace and follows it to completion.
pub fn truss_command(
    sys: &mut System,
    ctl: Pid,
    path: &str,
    argv: &[&str],
    opts: &TrussOptions,
) -> SysResult<TrussReport> {
    // Process-table pressure (real or injected) surfaces as EAGAIN;
    // retry with backoff like a shell would, bounded so a saturated
    // table still fails cleanly.
    let mut pid = None;
    for attempt in 0..=crate::proc_io::TRANSIENT_RETRIES {
        match sys.spawn_program(ctl, path, argv) {
            Ok(p) => {
                pid = Some(p);
                break;
            }
            Err(Errno::EAGAIN) => sys.run_idle(1 << attempt),
            Err(e) => return Err(e),
        }
    }
    let pid = pid.ok_or(Errno::EAGAIN)?;
    // The target has not executed an instruction yet (the scheduler only
    // runs inside host calls), so tracing from the very first call is
    // race-free.
    truss_attach(sys, ctl, pid, opts)
}

/// Attaches to `pid` and traces it (and, with `follow`, its children)
/// until every traced process exits or `max_events` is reached.
pub fn truss_attach(
    sys: &mut System,
    ctl: Pid,
    pid: Pid,
    opts: &TrussOptions,
) -> SysResult<TrussReport> {
    let mut report = TrussReport::default();
    // The target can die between the caller naming it and the trace
    // arming — attach to a corpse reports the exit instead of erroring.
    let mut traced = match arm(sys, ctl, pid, opts) {
        Ok(t) => vec![t],
        Err(e) if target_gone(sys, pid, e) => {
            push_exit(sys, pid, &mut report);
            return Ok(report);
        }
        Err(e) => return Err(e),
    };
    let mut events = 0usize;
    while events < opts.max_events {
        // Anything left alive?
        if traced.iter().all(|t| t.gone) {
            break;
        }
        let mut progressed = false;
        for i in 0..traced.len() {
            if traced[i].gone {
                continue;
            }
            let st = match peek_stop(sys, &mut traced[i]) {
                Ok(Some(st)) => st,
                Ok(None) => continue,
                // An interrupted poll is not a death sentence; come back
                // to this target on the next sweep.
                Err(Errno::EINTR) => continue,
                Err(_) => {
                    // Process gone (or its descriptor beyond use): release
                    // it best-effort and report its exit.
                    let _ = traced[i].handle.run(sys, PrRun::default());
                    let tpid = traced[i].handle.pid;
                    push_exit(sys, tpid, &mut report);
                    traced[i].gone = true;
                    progressed = true;
                    continue;
                }
            };
            progressed = true;
            events += 1;
            let new_child = service_stop(sys, &mut traced[i], &st, opts, &mut report)?;
            if let Some(child) = new_child {
                if opts.follow {
                    if let Ok(t) = arm_child(sys, ctl, child) {
                        traced.push(t);
                    }
                }
            }
        }
        if !progressed {
            // Everything is running: let the machine advance.
            if !sys.step() {
                break;
            }
        }
    }
    Ok(report)
}

/// True when an error from a `/proc` operation means the target is gone
/// (exited, killed, or already reaped) rather than a genuine failure.
fn target_gone(sys: &System, pid: Pid, e: Errno) -> bool {
    matches!(e, Errno::ESRCH | Errno::ENOENT)
        || sys.kernel.proc(pid).map(|p| p.zombie).unwrap_or(true)
}

/// Records a target's exit in the report.
fn push_exit(sys: &System, pid: Pid, report: &mut TrussReport) {
    let status = sys.kernel.proc(pid).map(|p| p.exit_status).unwrap_or(0);
    report.exits.push((pid, status));
    report.lines.push(format!("{:>5}: ** process exited, status {status:#06x} **", pid.0));
}

/// Opens and arms a fresh target: all syscalls at entry and exit, all
/// signals, and (optionally) all faults.
fn arm(sys: &mut System, ctl: Pid, pid: Pid, opts: &TrussOptions) -> SysResult<Traced> {
    let mut handle = ProcHandle::open_rw(sys, ctl, pid)?;
    handle.set_entry_trace(sys, SysSet::full())?;
    handle.set_exit_trace(sys, SysSet::full())?;
    handle.set_sig_trace(sys, SigSet::full())?;
    if opts.faults {
        handle.set_flt_trace(sys, FltSet::full())?;
    }
    if opts.follow {
        handle.set_inherit_on_fork(sys, true)?;
    }
    Ok(Traced { handle, pending: None, gone: false })
}

/// A followed child arrives already stopped (on fork exit) with the
/// tracing flags inherited; just open it.
fn arm_child(sys: &mut System, ctl: Pid, pid: Pid) -> SysResult<Traced> {
    let handle = ProcHandle::open_rw(sys, ctl, pid)?;
    Ok(Traced { handle, pending: None, gone: false })
}

/// Non-blocking stop check: returns the status if the target is stopped
/// on an event of interest. The `poll` readiness bit gates the probe —
/// only a ready process file is worth the full `PIOCSTATUS`, so a
/// spinning target costs one cheap poll per loop instead of a status
/// snapshot.
fn peek_stop(sys: &mut System, t: &mut Traced) -> SysResult<Option<PrStatus>> {
    let ready = t.handle.poll(sys)?;
    if ready.hangup {
        // Terminated: surface the same error path a failed status read
        // used to take, so the caller reports the exit.
        return Err(Errno::ESRCH);
    }
    if !ready.readable {
        return Ok(None);
    }
    let st = t.handle.status(sys)?;
    if st.flags & procfs::PR_ISTOP != 0 {
        Ok(Some(st))
    } else {
        Ok(None)
    }
}

/// Handles one stop; returns a child pid discovered at a fork exit.
fn service_stop(
    sys: &mut System,
    t: &mut Traced,
    st: &PrStatus,
    opts: &TrussOptions,
    report: &mut TrussReport,
) -> SysResult<Option<Pid>> {
    let pid = t.handle.pid;
    let mut child = None;
    match st.why {
        PrWhy::SyscallEntry => {
            let nr = st.what;
            let call = format_call(sys, t, nr, st);
            if nr == ksim::sysno::SYS_EXIT || nr == ksim::sysno::SYS_THR_EXIT {
                // These calls do not return; report them at entry.
                report.lines.push(format!("{:>5}: {}", pid.0, call));
                *report.counts.entry(nr).or_default() += 1;
            } else {
                t.pending = Some((nr, call));
            }
        }
        PrWhy::SyscallExit => {
            let nr = st.what;
            let call = match t.pending.take() {
                Some((pnr, text)) if pnr == nr => text,
                // The entry was not seen (attach mid-call, or fork child).
                _ => format!("{}(...)", sys_name(nr)),
            };
            let rv = st.reg.rv() as i64;
            let result = if rv < 0 {
                match Errno::from_i32((-rv) as i32) {
                    Some(e) => format!("Err#{} {}", -rv, e.name()),
                    None => format!("Err#{}", -rv),
                }
            } else {
                format!("= {rv}")
            };
            report.lines.push(format!("{:>5}: {:<48} {}", pid.0, call, result));
            *report.counts.entry(nr).or_default() += 1;
            if (nr == SYS_FORK || nr == SYS_VFORK) && rv > 0 && opts.follow {
                child = Some(Pid(rv as u32));
            }
        }
        PrWhy::Signalled => {
            report
                .lines
                .push(format!("{:>5}:     Received signal {}", pid.0, sig_name(st.what as usize)));
        }
        PrWhy::Faulted => {
            let name = Fault::from_number(st.what as usize)
                .map(|f| f.name().to_string())
                .unwrap_or_else(|| format!("FLT{}", st.what));
            report.lines.push(format!("{:>5}:     Incurred fault {}", pid.0, name));
        }
        PrWhy::Requested | PrWhy::None | PrWhy::JobControl | PrWhy::Ptrace => {}
    }
    // Resume without clearing anything: "truss will not alter the
    // behavior of a process other than by slowing it down."
    if let Err(e) = t.handle.run(sys, PrRun::default()) {
        if !target_gone(sys, pid, e) {
            return Err(e);
        }
        // Died at the stop (killed while the event was being decoded):
        // report the exit rather than surfacing a raw error.
        push_exit(sys, pid, report);
        t.gone = true;
    }
    Ok(child)
}

/// Renders a call with decoded arguments, reading strings from the
/// target where the call takes a pathname.
fn format_call(sys: &mut System, t: &mut Traced, nr: u16, st: &PrStatus) -> String {
    let a = |i: usize| st.reg.arg(i);
    let path_arg = |sys: &mut System, t: &mut Traced, addr: u64| -> String {
        let mut buf = [0u8; 32];
        match t.handle.read_mem(sys, addr, &mut buf) {
            Ok(n) => {
                let end = buf[..n].iter().position(|&c| c == 0).unwrap_or(n);
                format!("\"{}\"", String::from_utf8_lossy(&buf[..end]))
            }
            Err(_) => format!("{addr:#x}"),
        }
    };
    match nr {
        SYS_OPEN => format!("open({}, {:#x})", path_arg(sys, t, a(0)), a(1)),
        SYS_STAT => format!("stat({}, {:#x})", path_arg(sys, t, a(0)), a(1)),
        SYS_EXEC => format!("exec({}, {:#x})", path_arg(sys, t, a(0)), a(1)),
        ksim::sysno::SYS_CREAT => format!("creat({})", path_arg(sys, t, a(0))),
        ksim::sysno::SYS_UNLINK => format!("unlink({})", path_arg(sys, t, a(0))),
        ksim::sysno::SYS_CHDIR => format!("chdir({})", path_arg(sys, t, a(0))),
        ksim::sysno::SYS_READ => format!("read({}, {:#x}, {})", a(0), a(1), a(2)),
        ksim::sysno::SYS_WRITE => format!("write({}, {:#x}, {})", a(0), a(1), a(2)),
        ksim::sysno::SYS_CLOSE => format!("close({})", a(0)),
        ksim::sysno::SYS_KILL => {
            format!("kill({}, {})", a(0), sig_name(a(1) as usize))
        }
        ksim::sysno::SYS_EXIT => format!("exit({})", a(0)),
        ksim::sysno::SYS_WAIT => format!("wait({:#x})", a(0)),
        ksim::sysno::SYS_GETPID
        | ksim::sysno::SYS_GETPPID
        | ksim::sysno::SYS_GETUID
        | ksim::sysno::SYS_GETGID
        | SYS_FORK
        | SYS_VFORK => format!("{}()", sys_name(nr)),
        _ => format!("{}({:#x}, {:#x}, {:#x})", sys_name(nr), a(0), a(1), a(2)),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ksim::Cred;

    fn run_truss(path: &str, opts: &TrussOptions) -> TrussReport {
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("truss", Cred::new(100, 10));
        truss_command(&mut sys, ctl, path, &[path.rsplit('/').next().expect("name")], opts)
            .expect("truss")
    }

    #[test]
    fn traces_greeter_syscalls_in_order() {
        let report = run_truss("/bin/greeter", &TrussOptions::default());
        let text = report.text();
        assert!(text.contains("creat(\"/tmp/greeting\")"), "{text}");
        assert!(text.contains("write(0, "), "{text}");
        assert!(text.contains("close(0)"), "{text}");
        assert!(text.contains("exit(0)"), "{text}");
        assert!(text.contains("process exited"), "{text}");
        // creat before write before close.
        let pos = |s: &str| text.find(s).unwrap_or(usize::MAX);
        assert!(pos("creat") < pos("write("));
        assert!(pos("write(") < pos("close"));
        // Counts recorded.
        assert_eq!(report.counts[&ksim::sysno::SYS_CREAT], 1);
        assert_eq!(report.counts[&ksim::sysno::SYS_WRITE], 1);
    }

    #[test]
    fn follows_forked_children() {
        let report = run_truss("/bin/forker", &TrussOptions::default());
        let text = report.text();
        // The parent forks three times; each child's getpid appears under
        // its own pid.
        assert_eq!(report.counts[&SYS_FORK], 3 + 3, "3 parent exits + 3 child exits");
        let child_lines: Vec<&str> =
            text.lines().filter(|l| l.contains("getpid()")).collect();
        assert!(child_lines.len() >= 3, "{text}");
        assert_eq!(report.exits.len(), 4, "three children and the parent");
    }

    #[test]
    fn without_follow_children_run_unmolested() {
        let opts = TrussOptions { follow: false, ..Default::default() };
        let report = run_truss("/bin/forker", &opts);
        assert_eq!(report.exits.len(), 1, "only the parent is traced");
        // fork exits observed only in the parent (3 of them).
        assert_eq!(report.counts[&SYS_FORK], 3);
    }

    #[test]
    fn reports_faults_and_signals() {
        let report = run_truss("/bin/faulty", &TrussOptions::default());
        let text = report.text();
        assert!(text.contains("Incurred fault FLTIZDIV"), "{text}");
        assert!(text.contains("Received signal SIGFPE"), "{text}");
        assert!(text.contains("process exited"), "{text}");
    }

    #[test]
    fn does_not_alter_behavior() {
        // The piper pipeline completes with the same result under trace.
        let report = run_truss("/bin/piper", &TrussOptions::default());
        let (_, status) = *report.exits.last().expect("parent exit");
        assert_eq!(ksim::ptrace::decode_status(status), ksim::ptrace::WaitStatus::Exited(5));
        let text = report.text();
        assert!(text.contains("pipe("), "{text}");
        assert!(text.contains("read("), "{text}");
    }

    #[test]
    fn attaches_to_a_running_process() {
        let mut sys = crate::userland::boot_demo();
        let ctl = sys.spawn_hosted("truss", Cred::new(100, 10));
        let pid = sys.spawn_program(ctl, "/bin/burst", &["burst"]).expect("spawn");
        sys.run_idle(100); // Let it run a while untraced.
        let opts = TrussOptions { max_events: 200, ..Default::default() };
        let report = truss_attach(&mut sys, ctl, pid, &opts).expect("attach");
        assert!(report.text().contains("getpid()"), "{}", report.text());
    }
}
