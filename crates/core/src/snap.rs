//! Generation-stamped snapshot caching for both `/proc` generations.
//!
//! The hot paths of `ps` and `truss` are dominated by repeated renders
//! of the same wire images: a process that has not run since the last
//! inspection produces byte-identical `psinfo`, `prstatus`, `prmap`,
//! `prcred` and `prusage` snapshots, and a process table that has not
//! changed shape produces an identical directory listing. The kernel
//! stamps every externally visible mutation with a per-process
//! generation counter ([`ksim::proc::Proc::pr_gen`]), every table-shape
//! change with [`ksim::Kernel::table_gen`], and every shared-page write
//! with [`vm::ObjectStore::content_gen`]; this module caches rendered
//! images against those stamps so an unchanged process costs one hash
//! lookup instead of a full capture.
//!
//! One [`SnapCache`] is shared (via [`SnapHandle`]) between the flat
//! [`crate::ProcFs`] and the hierarchical [`crate::HierFs`]: the five
//! pure-read `PIOC*` replies are byte-identical to the corresponding
//! hierarchical file images, so both interfaces hit the same entries.

use crate::types::PrCacheStats;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use vfs::DirEntry;

/// Shared handle to a [`SnapCache`]; the two `/proc` file systems
/// mounted by [`crate::mount_standard`] hold clones of one handle.
/// A `Mutex` (uncontended in the single-threaded simulator) rather than
/// a `RefCell` keeps the file systems `Send` for remote-mount tests.
pub type SnapHandle = Arc<Mutex<SnapCache>>;

/// Creates a fresh shared cache handle.
pub fn snap_handle() -> SnapHandle {
    Arc::new(Mutex::new(SnapCache::default()))
}

/// Which cached directory listing (the two roots differ in entry names
/// and node encodings).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirSlot {
    /// The flat `/proc` root (five-digit names).
    Flat,
    /// The hierarchical `/proc2` root (plain decimal names).
    Hier,
}

#[derive(Debug)]
struct Entry {
    pr_gen: u64,
    mem_gen: u64,
    lwp_gen: u64,
    bytes: Vec<u8>,
}

/// A cache of rendered `/proc` wire images keyed on
/// `(pid, kind, tid)` and validated against generation stamps.
#[derive(Debug, Default)]
pub struct SnapCache {
    entries: HashMap<(u32, u8, u32), Entry>,
    dir_flat: Option<(u64, Vec<DirEntry>)>,
    dir_hier: Option<(u64, Vec<DirEntry>)>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// True if the image for this node kind depends on address-space
/// contents (resident-set sizes, map arrays) and must therefore also be
/// validated against the page-cache content generation. Credentials and
/// register images depend only on the process's own stamp.
fn mem_dependent(kind: u8) -> bool {
    // Kind codes follow the hierarchical node encoding: 2 status,
    // 3 psinfo, 6 map, 8 usage, 11 lwp status.
    matches!(kind, 2 | 3 | 6 | 8 | 11)
}

/// True if the image is scoped to a single LWP (`lwp/<tid>/status`,
/// `lwp/<tid>/gregs`) and must therefore also be validated against that
/// LWP's own generation stamp. LWP-scoped mutations bump only the
/// per-LWP stamp (plus `pr_gen` when the LWP is the representative one),
/// so mutating one thread leaves its siblings' entries — and the
/// whole-process entries — valid.
fn lwp_dependent(kind: u8) -> bool {
    // Kind codes: 11 lwp status, 13 lwp gregs.
    matches!(kind, 11 | 13)
}

impl SnapCache {
    /// Looks up a cached image; on a hit, runs `f` over the bytes.
    /// `pr_gen`, `mem_gen` and `lwp_gen` are the *current* stamps (pass
    /// `lwp_gen` 0 for non-LWP kinds, where it is ignored); a stale
    /// entry is counted as an invalidation and removed.
    #[allow(clippy::too_many_arguments)]
    pub fn lookup<R>(
        &mut self,
        pid: u32,
        kind: u8,
        tid: u32,
        pr_gen: u64,
        mem_gen: u64,
        lwp_gen: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Option<R> {
        let key = (pid, kind, tid);
        match self.entries.get(&key) {
            Some(e)
                if e.pr_gen == pr_gen
                    && (!mem_dependent(kind) || e.mem_gen == mem_gen)
                    && (!lwp_dependent(kind) || e.lwp_gen == lwp_gen) =>
            {
                self.hits += 1;
                Some(f(&e.bytes))
            }
            Some(_) => {
                self.invalidations += 1;
                self.entries.remove(&key);
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly rendered image under the given stamps.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        pid: u32,
        kind: u8,
        tid: u32,
        pr_gen: u64,
        mem_gen: u64,
        lwp_gen: u64,
        bytes: Vec<u8>,
    ) {
        self.entries.insert((pid, kind, tid), Entry { pr_gen, mem_gen, lwp_gen, bytes });
    }

    /// Drops every entry for a pid (the process is gone; pids are never
    /// reused, so the entries can only waste memory).
    pub fn drop_pid(&mut self, pid: u32) {
        self.entries.retain(|k, _| k.0 != pid);
    }

    /// Drops entries whose pid fails the `live` predicate — called when
    /// a directory rebuild observes the new process table.
    pub fn retain_pids(&mut self, live: impl Fn(u32) -> bool) {
        self.entries.retain(|k, _| live(k.0));
    }

    /// The cached root listing, if still valid for `table_gen`.
    pub fn dir(&mut self, slot: DirSlot, table_gen: u64) -> Option<Vec<DirEntry>> {
        let cached = match slot {
            DirSlot::Flat => &self.dir_flat,
            DirSlot::Hier => &self.dir_hier,
        };
        match cached {
            Some((gen, list)) if *gen == table_gen => {
                self.hits += 1;
                Some(list.clone())
            }
            Some(_) => {
                self.invalidations += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a rebuilt root listing under `table_gen`.
    pub fn set_dir(&mut self, slot: DirSlot, table_gen: u64, list: Vec<DirEntry>) {
        match slot {
            DirSlot::Flat => self.dir_flat = Some((table_gen, list)),
            DirSlot::Hier => self.dir_hier = Some((table_gen, list)),
        }
    }

    /// Counter snapshot for the `PIOCCACHESTATS` read path.
    pub fn stats(&self) -> PrCacheStats {
        PrCacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            entries: self.entries.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_invalidate_accounting() {
        let mut c = SnapCache::default();
        assert!(c.lookup(1, 3, 0, 7, 0, 0, |b| b.to_vec()).is_none());
        c.insert(1, 3, 0, 7, 0, 0, vec![0xAA]);
        assert_eq!(c.lookup(1, 3, 0, 7, 0, 0, |b| b.to_vec()), Some(vec![0xAA]));
        // A moved pr_gen invalidates.
        assert!(c.lookup(1, 3, 0, 8, 0, 0, |b| b.to_vec()).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 1));
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn mem_gen_only_guards_memory_kinds() {
        let mut c = SnapCache::default();
        // Cred (kind 7) ignores the content generation...
        c.insert(1, 7, 0, 1, 10, 0, vec![1]);
        assert!(c.lookup(1, 7, 0, 1, 99, 0, |_| ()).is_some());
        // ...but psinfo (kind 3) does not.
        c.insert(1, 3, 0, 1, 10, 0, vec![2]);
        assert!(c.lookup(1, 3, 0, 1, 99, 0, |_| ()).is_none());
    }

    #[test]
    fn lwp_gen_only_guards_lwp_kinds() {
        let mut c = SnapCache::default();
        // A whole-process image (kind 2, status) ignores lwp_gen...
        c.insert(1, 2, 0, 1, 1, 0, vec![1]);
        assert!(c.lookup(1, 2, 0, 1, 1, 42, |_| ()).is_some());
        // ...but an LWP gregs image (kind 13) is pinned to its stamp...
        c.insert(1, 13, 2, 1, 1, 5, vec![2]);
        assert!(c.lookup(1, 13, 2, 1, 1, 5, |_| ()).is_some());
        assert!(c.lookup(1, 13, 2, 1, 1, 6, |_| ()).is_none());
        // ...and an LWP status image (kind 11) checks all three stamps.
        c.insert(1, 11, 2, 1, 1, 5, vec![3]);
        assert!(c.lookup(1, 11, 2, 2, 1, 5, |_| ()).is_none());
        c.insert(1, 11, 2, 1, 1, 5, vec![3]);
        assert!(c.lookup(1, 11, 2, 1, 1, 6, |_| ()).is_none());
    }

    #[test]
    fn dir_cache_tracks_table_gen() {
        let mut c = SnapCache::default();
        assert!(c.dir(DirSlot::Flat, 5).is_none());
        c.set_dir(DirSlot::Flat, 5, vec![]);
        assert!(c.dir(DirSlot::Flat, 5).is_some());
        assert!(c.dir(DirSlot::Flat, 6).is_none());
        // The hier slot is independent.
        assert!(c.dir(DirSlot::Hier, 5).is_none());
    }

    #[test]
    fn pid_pruning() {
        let mut c = SnapCache::default();
        c.insert(1, 3, 0, 0, 0, 0, vec![]);
        c.insert(2, 3, 0, 0, 0, 0, vec![]);
        c.insert(2, 2, 0, 0, 0, 0, vec![]);
        c.retain_pids(|p| p == 1);
        assert_eq!(c.stats().entries, 1);
        c.drop_pid(1);
        assert_eq!(c.stats().entries, 0);
    }
}
