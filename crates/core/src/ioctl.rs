//! The flat interface's control operations: the `PIOC*` ioctl family.
//!
//! "Information and control operations are provided through ioctl." The
//! interface distinguishes read-only operations (status inspection) from
//! read/write operations (anything that modifies process state or
//! behaviour); the latter require the descriptor to be open for writing.
//!
//! Requests have one typed face, [`Ioctl`], shared by the three places
//! that used to hand-roll their own knowledge of the family: the local
//! dispatcher ([`prioctl`]), the hierarchical interface's control batch
//! parser ([`Ioctl::from_ctl_op`]) and the remote wire codec
//! ([`wire_table`]). One encode/decode, not three. Replies decode into
//! a typed [`IoctlPayload`] via [`Ioctl::decode_reply`].

use crate::ops;
use crate::types::{PrCacheStats, PrCred, PrMap, PrStatus, PrUsage, PrWatch, PrXStats, PsInfo};
use isa::{FpregSet, GregSet};
use ksim::fault::FltSet;
use ksim::signal::SigSet;
use ksim::sysno::SysSet;
use ksim::Kernel;
use vfs::remote::WireStats;
use vfs::{Errno, IoctlReply, Pid, SysResult};

/// Get process status (`prstatus`).
pub const PIOCSTATUS: u32 = 0x5001;
/// Direct the process to stop and wait for it; returns `prstatus`.
pub const PIOCSTOP: u32 = 0x5002;
/// Wait for the process to stop on an event of interest; returns
/// `prstatus`.
pub const PIOCWSTOP: u32 = 0x5003;
/// Make the stopped process runnable (operand: `prrun`).
pub const PIOCRUN: u32 = 0x5004;
/// Define the set of traced signals (operand: `sigset`).
pub const PIOCSTRACE: u32 = 0x5005;
/// Get the set of traced signals.
pub const PIOCGTRACE: u32 = 0x5006;
/// Define the set of traced machine faults (operand: `fltset`).
pub const PIOCSFAULT: u32 = 0x5007;
/// Get the set of traced machine faults.
pub const PIOCGFAULT: u32 = 0x5008;
/// Define the set of traced system call entries (operand: `sysset`).
pub const PIOCSENTRY: u32 = 0x5009;
/// Get the traced entry set.
pub const PIOCGENTRY: u32 = 0x500A;
/// Define the set of traced system call exits (operand: `sysset`).
pub const PIOCSEXIT: u32 = 0x500B;
/// Get the traced exit set.
pub const PIOCGEXIT: u32 = 0x500C;
/// Get the general registers.
pub const PIOCGREG: u32 = 0x500D;
/// Set the general registers (process must be stopped).
pub const PIOCSREG: u32 = 0x500E;
/// Get the floating-point registers.
pub const PIOCGFPREG: u32 = 0x500F;
/// Set the floating-point registers (process must be stopped).
pub const PIOCSFPREG: u32 = 0x5010;
/// Number of mappings in the address space.
pub const PIOCNMAP: u32 = 0x5011;
/// Get the address map (array of `prmap`).
pub const PIOCMAP: u32 = 0x5012;
/// Open the object mapped at a virtual address (operand: `u64` vaddr;
/// returns a descriptor number).
pub const PIOCOPENM: u32 = 0x5013;
/// Get credentials (`prcred`).
pub const PIOCCRED: u32 = 0x5014;
/// Get supplementary groups (array of `u32`).
pub const PIOCGROUPS: u32 = 0x5015;
/// Get the kernel `proc` structure (deprecated; implementation-revealing
/// by design — "their very existence reveals details of system
/// implementation").
pub const PIOCGETPR: u32 = 0x5016;
/// Get the user area (deprecated, as above).
pub const PIOCGETU: u32 = 0x5017;
/// Get the `ps` snapshot (`psinfo`).
pub const PIOCPSINFO: u32 = 0x5018;
/// Post a signal (operand: `u32`).
pub const PIOCKILL: u32 = 0x5019;
/// Delete a pending signal (operand: `u32`).
pub const PIOCUNKILL: u32 = 0x501A;
/// Set or clear the current signal (operand: `u32`, 0 clears).
pub const PIOCSSIG: u32 = 0x501B;
/// Set the held-signal mask (operand: `sigset`).
pub const PIOCSHOLD: u32 = 0x501C;
/// Get the held-signal mask.
pub const PIOCGHOLD: u32 = 0x501D;
/// Set inherit-on-fork.
pub const PIOCSFORK: u32 = 0x501E;
/// Clear inherit-on-fork.
pub const PIOCRFORK: u32 = 0x501F;
/// Set run-on-last-close.
pub const PIOCSRLC: u32 = 0x5020;
/// Clear run-on-last-close.
pub const PIOCRRLC: u32 = 0x5021;
/// Add (or, with size 0, remove) a watched area (operand: `prwatch`).
pub const PIOCSWATCH: u32 = 0x5022;
/// Get the watched areas (array of `prwatch`).
pub const PIOCGWATCH: u32 = 0x5023;
/// Get resource usage (`prusage`) — proposed extension.
pub const PIOCUSAGE: u32 = 0x5024;
/// Adjust priority (operand: `i32`).
pub const PIOCNICE: u32 = 0x5025;
/// Get snapshot-cache counters (`prcachestats`). Answered by the file
/// system layer, not `prioctl`: the cache lives above the kernel.
pub const PIOCCACHESTATS: u32 = 0x5026;
/// Get kernel fault-injection counters (`KFaultStats`). Answered by
/// `prioctl` — the fault plan lives on the kernel — so the reply crosses
/// the remote wire like any other status request.
pub const PIOCKFAULTSTATS: u32 = 0x5027;
/// Get execution fast-path counters (`prxstats`): software-TLB and
/// decoded-instruction-cache hits/misses/invalidations plus retired
/// instructions. Answered by `prioctl` — the caches live on the
/// address space and LWPs — so the reply crosses the remote wire.
pub const PIOCXSTATS: u32 = 0x5028;
/// Get record/replay counters (`RecStats`): inputs logged, snapshots
/// taken, bytes digested, replays applied, divergences detected.
/// Answered by `prioctl` — the recorder lives on the kernel.
pub const PIOCRECSTATS: u32 = 0x5029;
/// Checkpoint the stopped target into a self-describing image
/// (registers, identity, held mask, sparse address-space content).
/// Read-only: it inspects, never modifies. The reply is the image.
pub const PIOCCKPT: u32 = 0x502A;
/// Restore a checkpoint image (the operand) into the stopped target,
/// replacing its registers, identity and entire address space —
/// migration when the image came from another mount.
pub const PIOCRESTORE: u32 = 0x502B;
/// Live-migration sub-operation (BEGIN/CHUNK/COMMIT/ABORT multiplexed
/// by the operand's first byte): stream a checkpoint image into the
/// destination kernel chunk by chunk and materialise it into the target
/// at COMMIT after an end-to-end digest check. Issued against the
/// *destination's* placeholder process, usually over the remote mount.
pub const PIOCMIGRATE: u32 = 0x502C;
/// Get migration protocol counters (`MigStats`): transfers begun,
/// chunks/bytes accepted, duplicates absorbed, commits, aborts, digest
/// mismatches, resumes. Answered by `prioctl` on the destination.
pub const PIOCMIGSTATS: u32 = 0x502D;

/// Get remote-wire traffic/fault/recovery counters (`WireStats`).
/// Answered locally by the [`vfs::remote::RemoteFs`] client shim — the
/// counters live on the near side of the wire, so the request never
/// crosses it. Re-exported here so flat tooling can name it alongside
/// the other `PIOC*` requests.
pub use vfs::remote::PIOCWIRESTATS;

/// One `PIOC*` request, typed. The single source of truth for a
/// request's number, name, write requirement, wire shape, hierarchical
/// control-op twin and reply decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ioctl {
    /// `PIOCSTATUS`
    Status,
    /// `PIOCSTOP`
    Stop,
    /// `PIOCWSTOP`
    WStop,
    /// `PIOCRUN`
    Run,
    /// `PIOCSTRACE`
    SetSigTrace,
    /// `PIOCGTRACE`
    GetSigTrace,
    /// `PIOCSFAULT`
    SetFltTrace,
    /// `PIOCGFAULT`
    GetFltTrace,
    /// `PIOCSENTRY`
    SetEntryTrace,
    /// `PIOCGENTRY`
    GetEntryTrace,
    /// `PIOCSEXIT`
    SetExitTrace,
    /// `PIOCGEXIT`
    GetExitTrace,
    /// `PIOCGREG`
    GetRegs,
    /// `PIOCSREG`
    SetRegs,
    /// `PIOCGFPREG`
    GetFpRegs,
    /// `PIOCSFPREG`
    SetFpRegs,
    /// `PIOCNMAP`
    NMap,
    /// `PIOCMAP`
    Map,
    /// `PIOCOPENM`
    OpenMapped,
    /// `PIOCCRED`
    GetCred,
    /// `PIOCGROUPS`
    Groups,
    /// `PIOCGETPR`
    GetProc,
    /// `PIOCGETU`
    GetUArea,
    /// `PIOCPSINFO`
    GetPsInfo,
    /// `PIOCKILL`
    Kill,
    /// `PIOCUNKILL`
    UnKill,
    /// `PIOCSSIG`
    SetSig,
    /// `PIOCSHOLD`
    SetHold,
    /// `PIOCGHOLD`
    GetHold,
    /// `PIOCSFORK`
    SetForkInherit,
    /// `PIOCRFORK`
    ClearForkInherit,
    /// `PIOCSRLC`
    SetRunOnLastClose,
    /// `PIOCRRLC`
    ClearRunOnLastClose,
    /// `PIOCSWATCH`
    SetWatch,
    /// `PIOCGWATCH`
    GetWatch,
    /// `PIOCUSAGE`
    Usage,
    /// `PIOCNICE`
    Nice,
    /// `PIOCCACHESTATS`
    CacheStats,
    /// `PIOCKFAULTSTATS`
    KFaultStats,
    /// `PIOCXSTATS`
    XStats,
    /// `PIOCWIRESTATS`
    WireCounters,
    /// `PIOCRECSTATS`
    RecStats,
    /// `PIOCCKPT`
    Ckpt,
    /// `PIOCRESTORE`
    Restore,
    /// `PIOCMIGRATE`
    Migrate,
    /// `PIOCMIGSTATS`
    MigStats,
}

/// One decoded counter family. Every stats-style `PIOC*` reply decodes
/// into this single type, so tools render any family uniformly and a new
/// family (the recorder's, in this PR) slots in as a variant instead of
/// a fifth hand-rolled decode path.
#[derive(Clone, Debug, PartialEq)]
pub enum StatsReport {
    /// Snapshot-cache counters (`PIOCCACHESTATS`).
    Cache(PrCacheStats),
    /// Kernel fault-injection counters (`PIOCKFAULTSTATS`).
    KernelFaults(ksim::kfault::KFaultStats),
    /// Execution fast-path counters (`PIOCXSTATS`).
    Exec(PrXStats),
    /// Remote-wire counters (`PIOCWIRESTATS`).
    Wire(WireStats),
    /// Record/replay counters (`PIOCRECSTATS`).
    Recorder(ksim::RecStats),
    /// Migration protocol counters (`PIOCMIGSTATS`).
    Migrate(ksim::MigStats),
}

impl StatsReport {
    /// Short family name, for uniform display.
    pub fn family(&self) -> &'static str {
        match self {
            StatsReport::Cache(_) => "cache",
            StatsReport::KernelFaults(_) => "kfault",
            StatsReport::Exec(_) => "exec",
            StatsReport::Wire(_) => "wire",
            StatsReport::Recorder(_) => "recorder",
            StatsReport::Migrate(_) => "migrate",
        }
    }

    /// Every counter as a `(name, value)` pair, in wire order — the one
    /// flattening tools print from, whatever the family.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        match self {
            StatsReport::Cache(c) => vec![
                ("hits", c.hits),
                ("misses", c.misses),
                ("invalidations", c.invalidations),
                ("entries", c.entries),
            ],
            StatsReport::KernelFaults(f) => vec![
                ("enomem_vm", f.enomem_vm),
                ("eagain_fork", f.eagain_fork),
                ("eagain_spawn", f.eagain_spawn),
                ("eintr_wait", f.eintr_wait),
                ("spurious_wakeups", f.spurious_wakeups),
                ("deaths", f.deaths),
                ("deaths_mid_op", f.deaths_mid_op),
            ],
            StatsReport::Exec(x) => vec![
                ("enabled", x.enabled),
                ("tlb_hits", x.tlb_hits),
                ("tlb_misses", x.tlb_misses),
                ("tlb_invalidations", x.tlb_invalidations),
                ("icache_hits", x.icache_hits),
                ("icache_misses", x.icache_misses),
                ("icache_invalidations", x.icache_invalidations),
                ("insns", x.insns),
                ("tlb_frame_hits", x.tlb_frame_hits),
                ("page_epoch_bumps", x.page_epoch_bumps),
                ("sblock_built", x.sblock_built),
                ("sblock_dispatched", x.sblock_dispatched),
                ("sblock_insns", x.sblock_insns),
                ("sblock_exit_end", x.sblock_exit_end),
                ("sblock_exit_side", x.sblock_exit_side),
                ("sblock_exit_trap", x.sblock_exit_trap),
                ("sblock_exit_budget", x.sblock_exit_budget),
                ("sblock_stale", x.sblock_stale),
            ],
            StatsReport::Wire(w) => vec![
                ("ops", w.ops),
                ("bytes_sent", w.bytes_sent),
                ("bytes_received", w.bytes_received),
                ("unsupported_ioctls", w.unsupported_ioctls),
                ("frames_sent", w.frames_sent),
                ("drops", w.drops),
                ("truncations", w.truncations),
                ("bitflips", w.bitflips),
                ("duplicates", w.duplicates),
                ("delays", w.delays),
                ("checksum_rejects", w.checksum_rejects),
                ("retries", w.retries),
                ("dedup_hits", w.dedup_hits),
                ("timeouts", w.timeouts),
                ("sessions_opened", w.sessions_opened),
                ("sessions_evicted", w.sessions_evicted),
                ("frames_shed", w.frames_shed),
                ("in_queue_hwm", w.in_queue_hwm),
                ("out_queue_hwm", w.out_queue_hwm),
                ("churn_events", w.churn_events),
                ("resync_bytes", w.resync_bytes),
                ("stale_replays", w.stale_replays),
                ("eagain_rejected", w.eagain_rejected),
                ("floods", w.floods),
            ],
            StatsReport::Recorder(r) => vec![
                ("inputs", r.inputs),
                ("steps", r.steps),
                ("bytes_logged", r.bytes_logged),
                ("snapshots", r.snapshots),
                ("replays", r.replays),
                ("divergences", r.divergences),
                ("restores", r.restores),
                ("ckpts", r.ckpts),
                ("file_saves", r.file_saves),
                ("file_loads", r.file_loads),
                ("file_bytes", r.file_bytes),
                ("file_errors", r.file_errors),
            ],
            StatsReport::Migrate(m) => vec![
                ("begins", m.begins),
                ("chunks", m.chunks),
                ("bytes", m.bytes),
                ("dup_chunks", m.dup_chunks),
                ("commits", m.commits),
                ("aborts", m.aborts),
                ("digest_mismatches", m.digest_mismatches),
                ("resumes", m.resumes),
            ],
        }
    }

    /// Uniform one-line-per-counter rendering: `family.name value`.
    pub fn render(&self) -> String {
        let fam = self.family();
        let mut out = String::new();
        for (name, value) in self.counters() {
            out.push_str(fam);
            out.push('.');
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

/// A decoded `PIOC*` reply: what the raw bytes mean for each request.
#[derive(Clone, Debug, PartialEq)]
pub enum IoctlPayload {
    /// No payload (set-style requests acknowledge with empty bytes).
    Unit,
    /// A `prstatus` image.
    Status(PrStatus),
    /// A signal set.
    SigSet(SigSet),
    /// A fault set.
    FltSet(FltSet),
    /// A system-call set.
    SysSet(SysSet),
    /// General registers.
    Gregs(GregSet),
    /// Floating-point registers.
    Fpregs(FpregSet),
    /// A bare count (`PIOCNMAP`, `PIOCSWATCH`).
    Count(u64),
    /// A descriptor number (`PIOCOPENM`).
    Fd(u64),
    /// The address map.
    Maps(Vec<PrMap>),
    /// Credentials.
    Cred(PrCred),
    /// Supplementary groups.
    Groups(Vec<u32>),
    /// The `ps` snapshot.
    PsInfo(PsInfo),
    /// Watched areas.
    Watches(Vec<PrWatch>),
    /// Resource usage.
    Usage(PrUsage),
    /// A counter family — all four legacy stats requests plus the
    /// recorder's decode through this one arm.
    Stats(StatsReport),
    /// A checkpoint image (`PIOCCKPT`).
    Image(Vec<u8>),
    /// An implementation dump (`PIOCGETPR`/`PIOCGETU`, deprecated).
    Text(String),
}

impl Ioctl {
    /// Resolves a raw request number.
    pub fn from_req(req: u32) -> Option<Ioctl> {
        Some(match req {
            PIOCSTATUS => Ioctl::Status,
            PIOCSTOP => Ioctl::Stop,
            PIOCWSTOP => Ioctl::WStop,
            PIOCRUN => Ioctl::Run,
            PIOCSTRACE => Ioctl::SetSigTrace,
            PIOCGTRACE => Ioctl::GetSigTrace,
            PIOCSFAULT => Ioctl::SetFltTrace,
            PIOCGFAULT => Ioctl::GetFltTrace,
            PIOCSENTRY => Ioctl::SetEntryTrace,
            PIOCGENTRY => Ioctl::GetEntryTrace,
            PIOCSEXIT => Ioctl::SetExitTrace,
            PIOCGEXIT => Ioctl::GetExitTrace,
            PIOCGREG => Ioctl::GetRegs,
            PIOCSREG => Ioctl::SetRegs,
            PIOCGFPREG => Ioctl::GetFpRegs,
            PIOCSFPREG => Ioctl::SetFpRegs,
            PIOCNMAP => Ioctl::NMap,
            PIOCMAP => Ioctl::Map,
            PIOCOPENM => Ioctl::OpenMapped,
            PIOCCRED => Ioctl::GetCred,
            PIOCGROUPS => Ioctl::Groups,
            PIOCGETPR => Ioctl::GetProc,
            PIOCGETU => Ioctl::GetUArea,
            PIOCPSINFO => Ioctl::GetPsInfo,
            PIOCKILL => Ioctl::Kill,
            PIOCUNKILL => Ioctl::UnKill,
            PIOCSSIG => Ioctl::SetSig,
            PIOCSHOLD => Ioctl::SetHold,
            PIOCGHOLD => Ioctl::GetHold,
            PIOCSFORK => Ioctl::SetForkInherit,
            PIOCRFORK => Ioctl::ClearForkInherit,
            PIOCSRLC => Ioctl::SetRunOnLastClose,
            PIOCRRLC => Ioctl::ClearRunOnLastClose,
            PIOCSWATCH => Ioctl::SetWatch,
            PIOCGWATCH => Ioctl::GetWatch,
            PIOCUSAGE => Ioctl::Usage,
            PIOCNICE => Ioctl::Nice,
            PIOCCACHESTATS => Ioctl::CacheStats,
            PIOCKFAULTSTATS => Ioctl::KFaultStats,
            PIOCXSTATS => Ioctl::XStats,
            PIOCWIRESTATS => Ioctl::WireCounters,
            PIOCRECSTATS => Ioctl::RecStats,
            PIOCCKPT => Ioctl::Ckpt,
            PIOCRESTORE => Ioctl::Restore,
            PIOCMIGRATE => Ioctl::Migrate,
            PIOCMIGSTATS => Ioctl::MigStats,
            _ => return None,
        })
    }

    /// The raw `PIOC*` request number.
    pub fn req(self) -> u32 {
        match self {
            Ioctl::Status => PIOCSTATUS,
            Ioctl::Stop => PIOCSTOP,
            Ioctl::WStop => PIOCWSTOP,
            Ioctl::Run => PIOCRUN,
            Ioctl::SetSigTrace => PIOCSTRACE,
            Ioctl::GetSigTrace => PIOCGTRACE,
            Ioctl::SetFltTrace => PIOCSFAULT,
            Ioctl::GetFltTrace => PIOCGFAULT,
            Ioctl::SetEntryTrace => PIOCSENTRY,
            Ioctl::GetEntryTrace => PIOCGENTRY,
            Ioctl::SetExitTrace => PIOCSEXIT,
            Ioctl::GetExitTrace => PIOCGEXIT,
            Ioctl::GetRegs => PIOCGREG,
            Ioctl::SetRegs => PIOCSREG,
            Ioctl::GetFpRegs => PIOCGFPREG,
            Ioctl::SetFpRegs => PIOCSFPREG,
            Ioctl::NMap => PIOCNMAP,
            Ioctl::Map => PIOCMAP,
            Ioctl::OpenMapped => PIOCOPENM,
            Ioctl::GetCred => PIOCCRED,
            Ioctl::Groups => PIOCGROUPS,
            Ioctl::GetProc => PIOCGETPR,
            Ioctl::GetUArea => PIOCGETU,
            Ioctl::GetPsInfo => PIOCPSINFO,
            Ioctl::Kill => PIOCKILL,
            Ioctl::UnKill => PIOCUNKILL,
            Ioctl::SetSig => PIOCSSIG,
            Ioctl::SetHold => PIOCSHOLD,
            Ioctl::GetHold => PIOCGHOLD,
            Ioctl::SetForkInherit => PIOCSFORK,
            Ioctl::ClearForkInherit => PIOCRFORK,
            Ioctl::SetRunOnLastClose => PIOCSRLC,
            Ioctl::ClearRunOnLastClose => PIOCRRLC,
            Ioctl::SetWatch => PIOCSWATCH,
            Ioctl::GetWatch => PIOCGWATCH,
            Ioctl::Usage => PIOCUSAGE,
            Ioctl::Nice => PIOCNICE,
            Ioctl::CacheStats => PIOCCACHESTATS,
            Ioctl::KFaultStats => PIOCKFAULTSTATS,
            Ioctl::XStats => PIOCXSTATS,
            Ioctl::WireCounters => PIOCWIRESTATS,
            Ioctl::RecStats => PIOCRECSTATS,
            Ioctl::Ckpt => PIOCCKPT,
            Ioctl::Restore => PIOCRESTORE,
            Ioctl::Migrate => PIOCMIGRATE,
            Ioctl::MigStats => PIOCMIGSTATS,
        }
    }

    /// Symbolic name (diagnostics and `truss` decoding).
    pub fn name(self) -> &'static str {
        match self {
            Ioctl::Status => "PIOCSTATUS",
            Ioctl::Stop => "PIOCSTOP",
            Ioctl::WStop => "PIOCWSTOP",
            Ioctl::Run => "PIOCRUN",
            Ioctl::SetSigTrace => "PIOCSTRACE",
            Ioctl::GetSigTrace => "PIOCGTRACE",
            Ioctl::SetFltTrace => "PIOCSFAULT",
            Ioctl::GetFltTrace => "PIOCGFAULT",
            Ioctl::SetEntryTrace => "PIOCSENTRY",
            Ioctl::GetEntryTrace => "PIOCGENTRY",
            Ioctl::SetExitTrace => "PIOCSEXIT",
            Ioctl::GetExitTrace => "PIOCGEXIT",
            Ioctl::GetRegs => "PIOCGREG",
            Ioctl::SetRegs => "PIOCSREG",
            Ioctl::GetFpRegs => "PIOCGFPREG",
            Ioctl::SetFpRegs => "PIOCSFPREG",
            Ioctl::NMap => "PIOCNMAP",
            Ioctl::Map => "PIOCMAP",
            Ioctl::OpenMapped => "PIOCOPENM",
            Ioctl::GetCred => "PIOCCRED",
            Ioctl::Groups => "PIOCGROUPS",
            Ioctl::GetProc => "PIOCGETPR",
            Ioctl::GetUArea => "PIOCGETU",
            Ioctl::GetPsInfo => "PIOCPSINFO",
            Ioctl::Kill => "PIOCKILL",
            Ioctl::UnKill => "PIOCUNKILL",
            Ioctl::SetSig => "PIOCSSIG",
            Ioctl::SetHold => "PIOCSHOLD",
            Ioctl::GetHold => "PIOCGHOLD",
            Ioctl::SetForkInherit => "PIOCSFORK",
            Ioctl::ClearForkInherit => "PIOCRFORK",
            Ioctl::SetRunOnLastClose => "PIOCSRLC",
            Ioctl::ClearRunOnLastClose => "PIOCRRLC",
            Ioctl::SetWatch => "PIOCSWATCH",
            Ioctl::GetWatch => "PIOCGWATCH",
            Ioctl::Usage => "PIOCUSAGE",
            Ioctl::Nice => "PIOCNICE",
            Ioctl::CacheStats => "PIOCCACHESTATS",
            Ioctl::KFaultStats => "PIOCKFAULTSTATS",
            Ioctl::XStats => "PIOCXSTATS",
            Ioctl::WireCounters => "PIOCWIRESTATS",
            Ioctl::RecStats => "PIOCRECSTATS",
            Ioctl::Ckpt => "PIOCCKPT",
            Ioctl::Restore => "PIOCRESTORE",
            Ioctl::Migrate => "PIOCMIGRATE",
            Ioctl::MigStats => "PIOCMIGSTATS",
        }
    }

    /// True if the request modifies process state or behaviour and
    /// therefore requires a descriptor open for writing. "The former are
    /// regarded as 'read/write' operations and the latter as
    /// 'read-only.'"
    pub fn needs_write(self) -> bool {
        !matches!(
            self,
            Ioctl::Status
                | Ioctl::WStop
                | Ioctl::GetSigTrace
                | Ioctl::GetFltTrace
                | Ioctl::GetEntryTrace
                | Ioctl::GetExitTrace
                | Ioctl::GetRegs
                | Ioctl::GetFpRegs
                | Ioctl::NMap
                | Ioctl::Map
                | Ioctl::OpenMapped
                | Ioctl::GetCred
                | Ioctl::Groups
                | Ioctl::GetProc
                | Ioctl::GetUArea
                | Ioctl::GetPsInfo
                | Ioctl::GetHold
                | Ioctl::GetWatch
                | Ioctl::Usage
                | Ioctl::CacheStats
                | Ioctl::KFaultStats
                | Ioctl::XStats
                | Ioctl::RecStats
                | Ioctl::Ckpt
                | Ioctl::MigStats
        )
    }

    /// Wire sizes of the request's operand, for the remote (RFS) shim —
    /// exactly the per-request knowledge the paper complains `ioctl`
    /// needs. Returns `(in_len, max_out_len)`; `None` for requests that
    /// cannot cross a wire.
    pub fn wire_spec(self) -> Option<(usize, usize)> {
        Some(match self {
            Ioctl::Status | Ioctl::Stop | Ioctl::WStop => (0, PrStatus::WIRE_LEN),
            Ioctl::Run => (crate::types::PrRun::WIRE_LEN, 0),
            Ioctl::SetSigTrace | Ioctl::SetHold => (SigSet::WIRE_LEN, 0),
            Ioctl::GetSigTrace | Ioctl::GetHold => (0, SigSet::WIRE_LEN),
            Ioctl::SetFltTrace => (SigSet::WIRE_LEN, 0),
            Ioctl::GetFltTrace => (0, SigSet::WIRE_LEN),
            Ioctl::SetEntryTrace | Ioctl::SetExitTrace => (SysSet::WIRE_LEN, 0),
            Ioctl::GetEntryTrace | Ioctl::GetExitTrace => (0, SysSet::WIRE_LEN),
            Ioctl::GetRegs => (0, GregSet::WIRE_LEN),
            Ioctl::SetRegs => (GregSet::WIRE_LEN, 0),
            Ioctl::GetFpRegs => (0, FpregSet::WIRE_LEN),
            Ioctl::SetFpRegs => (FpregSet::WIRE_LEN, 0),
            Ioctl::NMap => (0, 8),
            Ioctl::Map => (0, 256 * PrMap::WIRE_LEN),
            Ioctl::OpenMapped => (8, 8),
            Ioctl::GetCred => (0, PrCred::WIRE_LEN),
            Ioctl::Groups => (0, 64 * 4),
            Ioctl::GetPsInfo => (0, PsInfo::WIRE_LEN),
            Ioctl::Kill | Ioctl::UnKill | Ioctl::SetSig | Ioctl::Nice => (4, 0),
            Ioctl::SetForkInherit
            | Ioctl::ClearForkInherit
            | Ioctl::SetRunOnLastClose
            | Ioctl::ClearRunOnLastClose => (0, 0),
            Ioctl::SetWatch => (PrWatch::WIRE_LEN, 8),
            Ioctl::GetWatch => (0, 64 * PrWatch::WIRE_LEN),
            Ioctl::Usage => (0, PrUsage::WIRE_LEN),
            Ioctl::CacheStats => (0, PrCacheStats::WIRE_LEN),
            Ioctl::KFaultStats => (0, ksim::kfault::KFaultStats::WIRE_LEN),
            Ioctl::XStats => (0, PrXStats::WIRE_LEN),
            Ioctl::RecStats => (0, ksim::RecStats::WIRE_LEN),
            // Checkpoint images are variable-sized: the spec's lengths
            // are maxima (the wire gate rejects anything beyond them),
            // bounded so the frames fit under the default queue caps.
            Ioctl::Ckpt => (0, ksim::ckpt::CKPT_MAX),
            Ioctl::Restore => (ksim::ckpt::CKPT_MAX, 0),
            // Migration sub-ops carry at most one chunk plus a fixed
            // header; the reply is a fixed status/offset record.
            Ioctl::Migrate => (
                ksim::migrate::MIG_CHUNK_MAX + 32,
                ksim::migrate::MIG_REPLY_LEN,
            ),
            Ioctl::MigStats => (0, ksim::MigStats::WIRE_LEN),
            // PIOCGETPR / PIOCGETU are variable-sized implementation
            // dumps — precisely the kind of operation that cannot cross
            // a wire. PIOCWIRESTATS never crosses either: it is
            // answered by the near side.
            Ioctl::GetProc | Ioctl::GetUArea | Ioctl::WireCounters => return None,
        })
    }

    /// Resolves the hierarchical interface's `PC*` control-op twin, for
    /// the ctl batch parser. `PCDSTOP` has no flat twin (stop without
    /// waiting exists only in the write-based interface) and is handled
    /// by the hier layer itself.
    pub fn from_ctl_op(op: u32) -> Option<Ioctl> {
        use crate::hier;
        Some(match op {
            hier::PCSTOP => Ioctl::Stop,
            hier::PCWSTOP => Ioctl::WStop,
            hier::PCRUN => Ioctl::Run,
            hier::PCSTRACE => Ioctl::SetSigTrace,
            hier::PCSFAULT => Ioctl::SetFltTrace,
            hier::PCSENTRY => Ioctl::SetEntryTrace,
            hier::PCSEXIT => Ioctl::SetExitTrace,
            hier::PCKILL => Ioctl::Kill,
            hier::PCUNKILL => Ioctl::UnKill,
            hier::PCSSIG => Ioctl::SetSig,
            hier::PCSHOLD => Ioctl::SetHold,
            hier::PCSREG => Ioctl::SetRegs,
            hier::PCSFPREG => Ioctl::SetFpRegs,
            hier::PCSFORK => Ioctl::SetForkInherit,
            hier::PCRFORK => Ioctl::ClearForkInherit,
            hier::PCSRLC => Ioctl::SetRunOnLastClose,
            hier::PCRRLC => Ioctl::ClearRunOnLastClose,
            hier::PCWATCH => Ioctl::SetWatch,
            hier::PCNICE => Ioctl::Nice,
            _ => return None,
        })
    }

    /// Decodes a raw reply into its typed payload. Damaged or
    /// short images are rejected with `EIO` — the same discipline as
    /// the wire layer, never a misparse.
    pub fn decode_reply(self, bytes: &[u8]) -> SysResult<IoctlPayload> {
        let bad = Errno::EIO;
        Ok(match self {
            Ioctl::Status | Ioctl::Stop | Ioctl::WStop => {
                IoctlPayload::Status(PrStatus::from_bytes(bytes).ok_or(bad)?)
            }
            Ioctl::GetSigTrace | Ioctl::SetHold | Ioctl::GetHold => {
                IoctlPayload::SigSet(SigSet::from_bytes(bytes).ok_or(bad)?)
            }
            Ioctl::GetFltTrace => IoctlPayload::FltSet(FltSet::from_bytes(bytes).ok_or(bad)?),
            Ioctl::GetEntryTrace | Ioctl::GetExitTrace => {
                IoctlPayload::SysSet(SysSet::from_bytes(bytes).ok_or(bad)?)
            }
            Ioctl::GetRegs => IoctlPayload::Gregs(GregSet::from_bytes(bytes).ok_or(bad)?),
            Ioctl::GetFpRegs => IoctlPayload::Fpregs(FpregSet::from_bytes(bytes).ok_or(bad)?),
            Ioctl::NMap | Ioctl::SetWatch => {
                let arr: [u8; 8] = bytes.get(..8).and_then(|s| s.try_into().ok()).ok_or(bad)?;
                IoctlPayload::Count(u64::from_le_bytes(arr))
            }
            Ioctl::OpenMapped => {
                let arr: [u8; 8] = bytes.get(..8).and_then(|s| s.try_into().ok()).ok_or(bad)?;
                IoctlPayload::Fd(u64::from_le_bytes(arr))
            }
            Ioctl::Map => {
                let mut maps = Vec::with_capacity(bytes.len() / PrMap::WIRE_LEN);
                for chunk in bytes.chunks_exact(PrMap::WIRE_LEN) {
                    maps.push(PrMap::from_bytes(chunk).ok_or(bad)?);
                }
                IoctlPayload::Maps(maps)
            }
            Ioctl::GetCred => IoctlPayload::Cred(PrCred::from_bytes(bytes).ok_or(bad)?),
            Ioctl::Groups => {
                let mut groups = Vec::with_capacity(bytes.len() / 4);
                for chunk in bytes.chunks_exact(4) {
                    let arr: [u8; 4] = chunk.try_into().map_err(|_| bad)?;
                    groups.push(u32::from_le_bytes(arr));
                }
                IoctlPayload::Groups(groups)
            }
            Ioctl::GetPsInfo => IoctlPayload::PsInfo(PsInfo::from_bytes(bytes).ok_or(bad)?),
            Ioctl::GetWatch => {
                let mut ws = Vec::with_capacity(bytes.len() / PrWatch::WIRE_LEN);
                for chunk in bytes.chunks_exact(PrWatch::WIRE_LEN) {
                    ws.push(PrWatch::from_bytes(chunk).ok_or(bad)?);
                }
                IoctlPayload::Watches(ws)
            }
            Ioctl::Usage => IoctlPayload::Usage(PrUsage::from_bytes(bytes).ok_or(bad)?),
            Ioctl::CacheStats => IoctlPayload::Stats(StatsReport::Cache(
                PrCacheStats::from_bytes(bytes).ok_or(bad)?,
            )),
            Ioctl::KFaultStats => IoctlPayload::Stats(StatsReport::KernelFaults(
                ksim::kfault::KFaultStats::from_bytes(bytes).map_err(|_| bad)?,
            )),
            Ioctl::XStats => IoctlPayload::Stats(StatsReport::Exec(
                PrXStats::from_bytes(bytes).ok_or(bad)?,
            )),
            Ioctl::WireCounters => IoctlPayload::Stats(StatsReport::Wire(
                WireStats::from_bytes(bytes).ok_or(bad)?,
            )),
            Ioctl::RecStats => IoctlPayload::Stats(StatsReport::Recorder(
                ksim::RecStats::from_bytes(bytes).ok_or(bad)?,
            )),
            Ioctl::MigStats => IoctlPayload::Stats(StatsReport::Migrate(
                ksim::MigStats::from_bytes(bytes).ok_or(bad)?,
            )),
            Ioctl::Ckpt => IoctlPayload::Image(bytes.to_vec()),
            Ioctl::GetProc | Ioctl::GetUArea => {
                IoctlPayload::Text(String::from_utf8_lossy(bytes).into_owned())
            }
            _ => IoctlPayload::Unit,
        })
    }
}

/// True if the request modifies process state (see
/// [`Ioctl::needs_write`]); unknown requests conservatively require
/// write permission.
pub fn needs_write(req: u32) -> bool {
    Ioctl::from_req(req).is_none_or(Ioctl::needs_write)
}

/// Wire sizes of each request's operand (see [`Ioctl::wire_spec`]).
pub fn wire_spec(req: u32) -> Option<(usize, usize)> {
    Ioctl::from_req(req).and_then(Ioctl::wire_spec)
}

/// The shared ioctl wire table for remote mounts: one closure built from
/// the typed enum, replacing the per-call-site copies that used to be
/// hand-rolled wherever a `RemoteFs` was constructed.
pub fn wire_table() -> vfs::remote::IoctlTable {
    Box::new(|req| {
        wire_spec(req).map(|(i, o)| vfs::remote::IoctlWireSpec { in_len: i, out_len: o })
    })
}

/// Symbolic name of a request (diagnostics and `truss` decoding).
pub fn req_name(req: u32) -> &'static str {
    Ioctl::from_req(req).map_or("PIOC???", Ioctl::name)
}

/// Dispatches one `PIOC*` request against the target process. `caller`
/// is the process issuing the ioctl (its descriptor table receives
/// `PIOCOPENM` results).
pub fn prioctl(
    k: &mut Kernel,
    caller: Pid,
    target: Pid,
    req: u32,
    arg: &[u8],
) -> SysResult<IoctlReply> {
    let done = |bytes: Vec<u8>| Ok(IoctlReply::Done(bytes));
    let ioc = Ioctl::from_req(req).ok_or(Errno::ENOTTY)?;
    match ioc {
        Ioctl::Status => done(ops::status_bytes(k, target, None)?),
        Ioctl::Stop => {
            ops::direct_stop(k, target)?;
            if ops::event_stopped(k, target)? {
                done(ops::status_bytes(k, target, None)?)
            } else {
                Ok(IoctlReply::Block)
            }
        }
        Ioctl::WStop => {
            if ops::event_stopped(k, target)? {
                done(ops::status_bytes(k, target, None)?)
            } else {
                Ok(IoctlReply::Block)
            }
        }
        Ioctl::Run => {
            ops::run(k, target, None, arg)?;
            done(vec![])
        }
        Ioctl::SetSigTrace => {
            ops::set_sig_trace(k, target, arg)?;
            done(vec![])
        }
        Ioctl::GetSigTrace => done(k.proc(target)?.trace.sig_trace.to_bytes()),
        Ioctl::SetFltTrace => {
            ops::set_flt_trace(k, target, arg)?;
            done(vec![])
        }
        Ioctl::GetFltTrace => done(k.proc(target)?.trace.flt_trace.to_bytes()),
        Ioctl::SetEntryTrace => {
            ops::set_entry_trace(k, target, arg)?;
            done(vec![])
        }
        Ioctl::GetEntryTrace => done(k.proc(target)?.trace.entry_trace.to_bytes()),
        Ioctl::SetExitTrace => {
            ops::set_exit_trace(k, target, arg)?;
            done(vec![])
        }
        Ioctl::GetExitTrace => done(k.proc(target)?.trace.exit_trace.to_bytes()),
        Ioctl::GetRegs => {
            ops::live(k, target)?;
            done(k.proc(target)?.rep_lwp().gregs.to_bytes())
        }
        Ioctl::SetRegs => {
            ops::live(k, target)?;
            let mut regs = isa::GregSet::from_bytes(arg).ok_or(Errno::EINVAL)?;
            regs.normalize();
            let proc = k.proc_mut(target)?;
            if !proc.rep_lwp().is_stopped() {
                return Err(Errno::EBUSY);
            }
            proc.rep_lwp_mut().gregs = regs;
            done(vec![])
        }
        Ioctl::GetFpRegs => {
            ops::live(k, target)?;
            done(k.proc(target)?.rep_lwp().fpregs.to_bytes())
        }
        Ioctl::SetFpRegs => {
            ops::live(k, target)?;
            let regs = isa::FpregSet::from_bytes(arg).ok_or(Errno::EINVAL)?;
            let proc = k.proc_mut(target)?;
            if !proc.rep_lwp().is_stopped() {
                return Err(Errno::EBUSY);
            }
            proc.rep_lwp_mut().fpregs = regs;
            done(vec![])
        }
        Ioctl::NMap => {
            let n = PrMap::capture_all(k, target)?.len() as u64;
            done(n.to_le_bytes().to_vec())
        }
        Ioctl::Map => {
            let maps = PrMap::capture_all(k, target)?;
            let mut out = Vec::with_capacity(maps.len() * PrMap::WIRE_LEN);
            for m in &maps {
                out.extend_from_slice(&m.to_bytes());
            }
            done(out)
        }
        Ioctl::OpenMapped => {
            let fd = ops::open_mapped(k, caller, target, arg)?;
            done(fd.to_le_bytes().to_vec())
        }
        Ioctl::GetCred => done(PrCred::capture(k, target)?.to_bytes()),
        Ioctl::Groups => {
            let groups = k.proc(target)?.cred.groups.clone();
            let mut out = Vec::with_capacity(groups.len() * 4);
            for g in groups {
                out.extend_from_slice(&g.to_le_bytes());
            }
            done(out)
        }
        Ioctl::GetProc => {
            // Deprecated on purpose: a raw dump of the internal process
            // structure, tied to this very implementation.
            let dump = format!("{:?}", k.proc(target)?);
            done(dump.into_bytes())
        }
        Ioctl::GetUArea => {
            let proc = k.proc(target)?;
            let dump = format!(
                "uarea {{ fds: {}, cwd: {:?}, umask: {:#o}, lwps: {:?} }}",
                proc.fds.count(),
                proc.cwd,
                proc.umask,
                proc.lwps.iter().map(|l| l.tid.0).collect::<Vec<_>>(),
            );
            done(dump.into_bytes())
        }
        Ioctl::GetPsInfo => done(PsInfo::capture(k, target)?.to_bytes()),
        Ioctl::Kill => {
            ops::kill(k, target, arg)?;
            done(vec![])
        }
        Ioctl::UnKill => {
            ops::unkill(k, target, arg)?;
            done(vec![])
        }
        Ioctl::SetSig => {
            ops::set_sig(k, target, None, arg)?;
            done(vec![])
        }
        Ioctl::SetHold => {
            ops::set_hold(k, target, None, arg)?;
            done(vec![])
        }
        Ioctl::GetHold => {
            ops::live(k, target)?;
            done(k.proc(target)?.rep_lwp().held.to_bytes())
        }
        Ioctl::SetForkInherit | Ioctl::ClearForkInherit => {
            ops::live(k, target)?;
            k.proc_mut(target)?.trace.inherit_on_fork = ioc == Ioctl::SetForkInherit;
            done(vec![])
        }
        Ioctl::SetRunOnLastClose | Ioctl::ClearRunOnLastClose => {
            ops::live(k, target)?;
            k.proc_mut(target)?.trace.run_on_last_close = ioc == Ioctl::SetRunOnLastClose;
            done(vec![])
        }
        Ioctl::SetWatch => {
            let n = ops::watch(k, target, arg)?;
            done(n.to_le_bytes().to_vec())
        }
        Ioctl::GetWatch => {
            ops::live(k, target)?;
            let proc = k.proc(target)?;
            let mut out = Vec::new();
            for w in &proc.aspace.watchpoints {
                out.extend_from_slice(
                    &PrWatch { vaddr: w.base, size: w.len, flags: w.flags.to_bits() }.to_bytes(),
                );
            }
            done(out)
        }
        Ioctl::Usage => done(PrUsage::capture(k, target)?.to_bytes()),
        Ioctl::Nice => {
            ops::nice(k, target, arg)?;
            done(vec![])
        }
        // The fault plan lives on the kernel, so (unlike the two stats
        // requests below) this one is answered here and crosses the
        // remote wire to reach the server's kernel.
        Ioctl::KFaultStats => done(k.kfault_stats().to_bytes()),
        // Likewise kernel-resident: the TLB lives on the target's
        // address space and the icache on its LWPs.
        Ioctl::XStats => done(PrXStats::capture(k, target)?.to_bytes()),
        // Kernel-resident too: the recorder hangs off the kernel, so a
        // remote mount reads the *server's* recording counters.
        Ioctl::RecStats => done(k.rec_stats().to_bytes()),
        Ioctl::Ckpt => done(ksim::ckpt::checkpoint(k, target)?),
        Ioctl::Restore => {
            ksim::ckpt::restore(k, target, arg)?;
            done(vec![])
        }
        // The destination half of a migration: sub-op multiplexed by the
        // operand, materialising into `target` at COMMIT.
        Ioctl::Migrate => done(ksim::migrate::handle(k, target, arg)?),
        Ioctl::MigStats => done(k.mig_stats.to_bytes()),
        // Answered above the kernel: the cache lives in the file-system
        // layer and the wire counters live on the client side.
        Ioctl::CacheStats | Ioctl::WireCounters => Err(Errno::ENOTTY),
    }
}
