//! The flat interface's control operations: the `PIOC*` ioctl family.
//!
//! "Information and control operations are provided through ioctl." The
//! interface distinguishes read-only operations (status inspection) from
//! read/write operations (anything that modifies process state or
//! behaviour); the latter require the descriptor to be open for writing.

use crate::ops;
use crate::types::{PrCred, PrMap, PrStatus, PrUsage, PsInfo};
use ksim::Kernel;
use vfs::{Errno, IoctlReply, Pid, SysResult};

/// Get process status (`prstatus`).
pub const PIOCSTATUS: u32 = 0x5001;
/// Direct the process to stop and wait for it; returns `prstatus`.
pub const PIOCSTOP: u32 = 0x5002;
/// Wait for the process to stop on an event of interest; returns
/// `prstatus`.
pub const PIOCWSTOP: u32 = 0x5003;
/// Make the stopped process runnable (operand: `prrun`).
pub const PIOCRUN: u32 = 0x5004;
/// Define the set of traced signals (operand: `sigset`).
pub const PIOCSTRACE: u32 = 0x5005;
/// Get the set of traced signals.
pub const PIOCGTRACE: u32 = 0x5006;
/// Define the set of traced machine faults (operand: `fltset`).
pub const PIOCSFAULT: u32 = 0x5007;
/// Get the set of traced machine faults.
pub const PIOCGFAULT: u32 = 0x5008;
/// Define the set of traced system call entries (operand: `sysset`).
pub const PIOCSENTRY: u32 = 0x5009;
/// Get the traced entry set.
pub const PIOCGENTRY: u32 = 0x500A;
/// Define the set of traced system call exits (operand: `sysset`).
pub const PIOCSEXIT: u32 = 0x500B;
/// Get the traced exit set.
pub const PIOCGEXIT: u32 = 0x500C;
/// Get the general registers.
pub const PIOCGREG: u32 = 0x500D;
/// Set the general registers (process must be stopped).
pub const PIOCSREG: u32 = 0x500E;
/// Get the floating-point registers.
pub const PIOCGFPREG: u32 = 0x500F;
/// Set the floating-point registers (process must be stopped).
pub const PIOCSFPREG: u32 = 0x5010;
/// Number of mappings in the address space.
pub const PIOCNMAP: u32 = 0x5011;
/// Get the address map (array of `prmap`).
pub const PIOCMAP: u32 = 0x5012;
/// Open the object mapped at a virtual address (operand: `u64` vaddr;
/// returns a descriptor number).
pub const PIOCOPENM: u32 = 0x5013;
/// Get credentials (`prcred`).
pub const PIOCCRED: u32 = 0x5014;
/// Get supplementary groups (array of `u32`).
pub const PIOCGROUPS: u32 = 0x5015;
/// Get the kernel `proc` structure (deprecated; implementation-revealing
/// by design — "their very existence reveals details of system
/// implementation").
pub const PIOCGETPR: u32 = 0x5016;
/// Get the user area (deprecated, as above).
pub const PIOCGETU: u32 = 0x5017;
/// Get the `ps` snapshot (`psinfo`).
pub const PIOCPSINFO: u32 = 0x5018;
/// Post a signal (operand: `u32`).
pub const PIOCKILL: u32 = 0x5019;
/// Delete a pending signal (operand: `u32`).
pub const PIOCUNKILL: u32 = 0x501A;
/// Set or clear the current signal (operand: `u32`, 0 clears).
pub const PIOCSSIG: u32 = 0x501B;
/// Set the held-signal mask (operand: `sigset`).
pub const PIOCSHOLD: u32 = 0x501C;
/// Get the held-signal mask.
pub const PIOCGHOLD: u32 = 0x501D;
/// Set inherit-on-fork.
pub const PIOCSFORK: u32 = 0x501E;
/// Clear inherit-on-fork.
pub const PIOCRFORK: u32 = 0x501F;
/// Set run-on-last-close.
pub const PIOCSRLC: u32 = 0x5020;
/// Clear run-on-last-close.
pub const PIOCRRLC: u32 = 0x5021;
/// Add (or, with size 0, remove) a watched area (operand: `prwatch`).
pub const PIOCSWATCH: u32 = 0x5022;
/// Get the watched areas (array of `prwatch`).
pub const PIOCGWATCH: u32 = 0x5023;
/// Get resource usage (`prusage`) — proposed extension.
pub const PIOCUSAGE: u32 = 0x5024;
/// Adjust priority (operand: `i32`).
pub const PIOCNICE: u32 = 0x5025;
/// Get snapshot-cache counters (`prcachestats`). Answered by the file
/// system layer, not `prioctl`: the cache lives above the kernel.
pub const PIOCCACHESTATS: u32 = 0x5026;

/// Get remote-wire traffic/fault/recovery counters (`WireStats`).
/// Answered locally by the [`vfs::remote::RemoteFs`] client shim — the
/// counters live on the near side of the wire, so the request never
/// crosses it. Re-exported here so flat tooling can name it alongside
/// the other `PIOC*` requests.
pub use vfs::remote::PIOCWIRESTATS;

/// True if the request modifies process state or behaviour and therefore
/// requires a descriptor open for writing. "The former are regarded as
/// 'read/write' operations and the latter as 'read-only.'"
pub fn needs_write(req: u32) -> bool {
    !matches!(
        req,
        PIOCSTATUS
            | PIOCWSTOP
            | PIOCGTRACE
            | PIOCGFAULT
            | PIOCGENTRY
            | PIOCGEXIT
            | PIOCGREG
            | PIOCGFPREG
            | PIOCNMAP
            | PIOCMAP
            | PIOCOPENM
            | PIOCCRED
            | PIOCGROUPS
            | PIOCGETPR
            | PIOCGETU
            | PIOCPSINFO
            | PIOCGHOLD
            | PIOCGWATCH
            | PIOCUSAGE
            | PIOCCACHESTATS
    )
}

/// Wire sizes of each request's operand, for the remote (RFS) shim —
/// exactly the per-request knowledge the paper complains `ioctl` needs.
/// Returns `(in_len, max_out_len)`.
pub fn wire_spec(req: u32) -> Option<(usize, usize)> {
    use isa::{FpregSet, GregSet};
    use ksim::signal::SigSet;
    use ksim::sysno::SysSet;
    Some(match req {
        PIOCSTATUS | PIOCSTOP | PIOCWSTOP => (0, PrStatus::WIRE_LEN),
        PIOCRUN => (crate::types::PrRun::WIRE_LEN, 0),
        PIOCSTRACE | PIOCSHOLD => (SigSet::WIRE_LEN, 0),
        PIOCGTRACE | PIOCGHOLD => (0, SigSet::WIRE_LEN),
        PIOCSFAULT => (SigSet::WIRE_LEN, 0),
        PIOCGFAULT => (0, SigSet::WIRE_LEN),
        PIOCSENTRY | PIOCSEXIT => (SysSet::WIRE_LEN, 0),
        PIOCGENTRY | PIOCGEXIT => (0, SysSet::WIRE_LEN),
        PIOCGREG => (0, GregSet::WIRE_LEN),
        PIOCSREG => (GregSet::WIRE_LEN, 0),
        PIOCGFPREG => (0, FpregSet::WIRE_LEN),
        PIOCSFPREG => (FpregSet::WIRE_LEN, 0),
        PIOCNMAP => (0, 8),
        PIOCMAP => (0, 256 * PrMap::WIRE_LEN),
        PIOCOPENM => (8, 8),
        PIOCCRED => (0, PrCred::WIRE_LEN),
        PIOCGROUPS => (0, 64 * 4),
        PIOCPSINFO => (0, PsInfo::WIRE_LEN),
        PIOCKILL | PIOCUNKILL | PIOCSSIG | PIOCNICE => (4, 0),
        PIOCSFORK | PIOCRFORK | PIOCSRLC | PIOCRRLC => (0, 0),
        PIOCSWATCH => (crate::types::PrWatch::WIRE_LEN, 8),
        PIOCGWATCH => (0, 64 * crate::types::PrWatch::WIRE_LEN),
        PIOCUSAGE => (0, PrUsage::WIRE_LEN),
        PIOCCACHESTATS => (0, crate::types::PrCacheStats::WIRE_LEN),
        // PIOCGETPR / PIOCGETU are variable-sized implementation dumps —
        // precisely the kind of operation that cannot cross a wire.
        _ => return None,
    })
}

/// Dispatches one `PIOC*` request against the target process. `caller`
/// is the process issuing the ioctl (its descriptor table receives
/// `PIOCOPENM` results).
pub fn prioctl(
    k: &mut Kernel,
    caller: Pid,
    target: Pid,
    req: u32,
    arg: &[u8],
) -> SysResult<IoctlReply> {
    let done = |bytes: Vec<u8>| Ok(IoctlReply::Done(bytes));
    match req {
        PIOCSTATUS => done(ops::status_bytes(k, target, None)?),
        PIOCSTOP => {
            ops::direct_stop(k, target)?;
            if ops::event_stopped(k, target)? {
                done(ops::status_bytes(k, target, None)?)
            } else {
                Ok(IoctlReply::Block)
            }
        }
        PIOCWSTOP => {
            if ops::event_stopped(k, target)? {
                done(ops::status_bytes(k, target, None)?)
            } else {
                Ok(IoctlReply::Block)
            }
        }
        PIOCRUN => {
            ops::run(k, target, None, arg)?;
            done(vec![])
        }
        PIOCSTRACE => {
            ops::set_sig_trace(k, target, arg)?;
            done(vec![])
        }
        PIOCGTRACE => done(k.proc(target)?.trace.sig_trace.to_bytes()),
        PIOCSFAULT => {
            ops::set_flt_trace(k, target, arg)?;
            done(vec![])
        }
        PIOCGFAULT => done(k.proc(target)?.trace.flt_trace.to_bytes()),
        PIOCSENTRY => {
            ops::set_entry_trace(k, target, arg)?;
            done(vec![])
        }
        PIOCGENTRY => done(k.proc(target)?.trace.entry_trace.to_bytes()),
        PIOCSEXIT => {
            ops::set_exit_trace(k, target, arg)?;
            done(vec![])
        }
        PIOCGEXIT => done(k.proc(target)?.trace.exit_trace.to_bytes()),
        PIOCGREG => {
            ops::live(k, target)?;
            done(k.proc(target)?.rep_lwp().gregs.to_bytes())
        }
        PIOCSREG => {
            ops::live(k, target)?;
            let mut regs = isa::GregSet::from_bytes(arg).ok_or(Errno::EINVAL)?;
            regs.normalize();
            let proc = k.proc_mut(target)?;
            if !proc.rep_lwp().is_stopped() {
                return Err(Errno::EBUSY);
            }
            proc.rep_lwp_mut().gregs = regs;
            done(vec![])
        }
        PIOCGFPREG => {
            ops::live(k, target)?;
            done(k.proc(target)?.rep_lwp().fpregs.to_bytes())
        }
        PIOCSFPREG => {
            ops::live(k, target)?;
            let regs = isa::FpregSet::from_bytes(arg).ok_or(Errno::EINVAL)?;
            let proc = k.proc_mut(target)?;
            if !proc.rep_lwp().is_stopped() {
                return Err(Errno::EBUSY);
            }
            proc.rep_lwp_mut().fpregs = regs;
            done(vec![])
        }
        PIOCNMAP => {
            let n = PrMap::capture_all(k, target)?.len() as u64;
            done(n.to_le_bytes().to_vec())
        }
        PIOCMAP => {
            let maps = PrMap::capture_all(k, target)?;
            let mut out = Vec::with_capacity(maps.len() * PrMap::WIRE_LEN);
            for m in &maps {
                out.extend_from_slice(&m.to_bytes());
            }
            done(out)
        }
        PIOCOPENM => {
            let fd = ops::open_mapped(k, caller, target, arg)?;
            done(fd.to_le_bytes().to_vec())
        }
        PIOCCRED => done(PrCred::capture(k, target)?.to_bytes()),
        PIOCGROUPS => {
            let groups = k.proc(target)?.cred.groups.clone();
            let mut out = Vec::with_capacity(groups.len() * 4);
            for g in groups {
                out.extend_from_slice(&g.to_le_bytes());
            }
            done(out)
        }
        PIOCGETPR => {
            // Deprecated on purpose: a raw dump of the internal process
            // structure, tied to this very implementation.
            let dump = format!("{:?}", k.proc(target)?);
            done(dump.into_bytes())
        }
        PIOCGETU => {
            let proc = k.proc(target)?;
            let dump = format!(
                "uarea {{ fds: {}, cwd: {:?}, umask: {:#o}, lwps: {:?} }}",
                proc.fds.count(),
                proc.cwd,
                proc.umask,
                proc.lwps.iter().map(|l| l.tid.0).collect::<Vec<_>>(),
            );
            done(dump.into_bytes())
        }
        PIOCPSINFO => done(PsInfo::capture(k, target)?.to_bytes()),
        PIOCKILL => {
            ops::kill(k, target, arg)?;
            done(vec![])
        }
        PIOCUNKILL => {
            ops::unkill(k, target, arg)?;
            done(vec![])
        }
        PIOCSSIG => {
            ops::set_sig(k, target, None, arg)?;
            done(vec![])
        }
        PIOCSHOLD => {
            ops::set_hold(k, target, None, arg)?;
            done(vec![])
        }
        PIOCGHOLD => {
            ops::live(k, target)?;
            done(k.proc(target)?.rep_lwp().held.to_bytes())
        }
        PIOCSFORK | PIOCRFORK => {
            ops::live(k, target)?;
            k.proc_mut(target)?.trace.inherit_on_fork = req == PIOCSFORK;
            done(vec![])
        }
        PIOCSRLC | PIOCRRLC => {
            ops::live(k, target)?;
            k.proc_mut(target)?.trace.run_on_last_close = req == PIOCSRLC;
            done(vec![])
        }
        PIOCSWATCH => {
            let n = ops::watch(k, target, arg)?;
            done(n.to_le_bytes().to_vec())
        }
        PIOCGWATCH => {
            ops::live(k, target)?;
            let proc = k.proc(target)?;
            let mut out = Vec::new();
            for w in &proc.aspace.watchpoints {
                out.extend_from_slice(
                    &crate::types::PrWatch {
                        vaddr: w.base,
                        size: w.len,
                        flags: w.flags.to_bits(),
                    }
                    .to_bytes(),
                );
            }
            done(out)
        }
        PIOCUSAGE => done(PrUsage::capture(k, target)?.to_bytes()),
        PIOCNICE => {
            ops::nice(k, target, arg)?;
            done(vec![])
        }
        _ => Err(Errno::ENOTTY),
    }
}

/// Symbolic name of a request (diagnostics and `truss` decoding).
pub fn req_name(req: u32) -> &'static str {
    match req {
        PIOCSTATUS => "PIOCSTATUS",
        PIOCSTOP => "PIOCSTOP",
        PIOCWSTOP => "PIOCWSTOP",
        PIOCRUN => "PIOCRUN",
        PIOCSTRACE => "PIOCSTRACE",
        PIOCGTRACE => "PIOCGTRACE",
        PIOCSFAULT => "PIOCSFAULT",
        PIOCGFAULT => "PIOCGFAULT",
        PIOCSENTRY => "PIOCSENTRY",
        PIOCGENTRY => "PIOCGENTRY",
        PIOCSEXIT => "PIOCSEXIT",
        PIOCGEXIT => "PIOCGEXIT",
        PIOCGREG => "PIOCGREG",
        PIOCSREG => "PIOCSREG",
        PIOCGFPREG => "PIOCGFPREG",
        PIOCSFPREG => "PIOCSFPREG",
        PIOCNMAP => "PIOCNMAP",
        PIOCMAP => "PIOCMAP",
        PIOCOPENM => "PIOCOPENM",
        PIOCCRED => "PIOCCRED",
        PIOCGROUPS => "PIOCGROUPS",
        PIOCGETPR => "PIOCGETPR",
        PIOCGETU => "PIOCGETU",
        PIOCPSINFO => "PIOCPSINFO",
        PIOCKILL => "PIOCKILL",
        PIOCUNKILL => "PIOCUNKILL",
        PIOCSSIG => "PIOCSSIG",
        PIOCSHOLD => "PIOCSHOLD",
        PIOCGHOLD => "PIOCGHOLD",
        PIOCSFORK => "PIOCSFORK",
        PIOCRFORK => "PIOCRFORK",
        PIOCSRLC => "PIOCSRLC",
        PIOCRRLC => "PIOCRRLC",
        PIOCSWATCH => "PIOCSWATCH",
        PIOCGWATCH => "PIOCGWATCH",
        PIOCUSAGE => "PIOCUSAGE",
        PIOCNICE => "PIOCNICE",
        PIOCCACHESTATS => "PIOCCACHESTATS",
        PIOCWIRESTATS => "PIOCWIRESTATS",
        _ => "PIOC???",
    }
}
