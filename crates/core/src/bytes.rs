//! Little-endian scalar extraction from length-validated byte slices.
//!
//! Callers have already bounds-checked their input (ioctl argument
//! buffers, status images, ctl messages); these helpers centralise the
//! slice-to-array step so the panic-free gate (`clippy::unwrap_used`)
//! holds without scattering manual array copies.

/// The first 8 bytes of `b` as a little-endian `u64`.
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[..8]);
    u64::from_le_bytes(w)
}

/// The first 4 bytes of `b` as a little-endian `u32`.
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    let mut w = [0u8; 4];
    w.copy_from_slice(&b[..4]);
    u32::from_le_bytes(w)
}

/// The first 2 bytes of `b` as a little-endian `u16`.
pub(crate) fn le_u16(b: &[u8]) -> u16 {
    let mut w = [0u8; 2];
    w.copy_from_slice(&b[..2]);
    u16::from_le_bytes(w)
}
