//! The `/proc` data structures and their byte images.
//!
//! Everything a controlling process exchanges with `/proc` is a byte
//! image: `ioctl` operands in the flat interface, file contents in the
//! hierarchical one. Each structure here has a fixed-layout little-endian
//! encoding (`to_bytes`/`from_bytes`) and is shared by both interfaces —
//! one reason the restructuring is cheap.
//!
//! `prstatus` "is designed to contain the information most frequently
//! needed by a controlling process such as a debugger"; `psinfo` carries
//! "everything that ps might want to display about a process" so that
//! "each line of ps output is a true snapshot of the process".

use isa::GregSet;
use ksim::proc::{LwpState, StopWhy};
use ksim::signal::SigSet;
use ksim::{Kernel, Tid};
use vfs::{Errno, Pid, SysResult};
use vm::{Prot, SegName};

/// `pr_flags`: the process (representative LWP) is stopped.
pub const PR_STOPPED: u32 = 1 << 0;
/// `pr_flags`: stopped on an event of interest (what `PIOCWSTOP` waits
/// for).
pub const PR_ISTOP: u32 = 1 << 1;
/// `pr_flags`: a stop directive is in effect.
pub const PR_DSTOP: u32 = 1 << 2;
/// `pr_flags`: asleep in an interruptible system call.
pub const PR_ASLEEP: u32 = 1 << 3;
/// `pr_flags`: a system process (no user-level address space).
pub const PR_ISSYS: u32 = 1 << 4;
/// `pr_flags`: inherit-on-fork is set.
pub const PR_FORK: u32 = 1 << 5;
/// `pr_flags`: run-on-last-close is set.
pub const PR_RLC: u32 = 1 << 6;
/// `pr_flags`: the process is ptrace-traced (competing mechanism).
pub const PR_PTRACE: u32 = 1 << 7;

/// `pr_why` codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum PrWhy {
    /// Not stopped.
    None = 0,
    /// Requested stop.
    Requested = 1,
    /// Stopped on a traced signal.
    Signalled = 2,
    /// Stopped on entry to a traced system call.
    SyscallEntry = 3,
    /// Stopped on exit from a traced system call.
    SyscallExit = 4,
    /// Stopped on a traced machine fault.
    Faulted = 5,
    /// Job-control stop.
    JobControl = 6,
    /// Old-style ptrace stop.
    Ptrace = 7,
}

impl PrWhy {
    /// Decodes a `pr_why` value.
    pub fn from_u16(v: u16) -> PrWhy {
        match v {
            1 => PrWhy::Requested,
            2 => PrWhy::Signalled,
            3 => PrWhy::SyscallEntry,
            4 => PrWhy::SyscallExit,
            5 => PrWhy::Faulted,
            6 => PrWhy::JobControl,
            7 => PrWhy::Ptrace,
            _ => PrWhy::None,
        }
    }
}

/// The process status structure (`prstatus_t`).
#[derive(Clone, Debug, PartialEq)]
pub struct PrStatus {
    /// Status flags (`PR_*`).
    pub flags: u32,
    /// Why the process is stopped.
    pub why: PrWhy,
    /// Detail for `why` (signal, fault or system call number).
    pub what: u16,
    /// The current signal, or 0.
    pub cursig: u32,
    /// Pending (process-directed) signals.
    pub sigpend: SigSet,
    /// Held signals of the representative LWP.
    pub sighold: SigSet,
    /// Process id.
    pub pid: u32,
    /// Parent process id.
    pub ppid: u32,
    /// Process group.
    pub pgrp: u32,
    /// Session.
    pub sid: u32,
    /// User CPU time, ticks (all LWPs).
    pub utime: u64,
    /// System CPU time, ticks (accounted to kernel entries; informative).
    pub stime: u64,
    /// Number of LWPs.
    pub nlwp: u32,
    /// The LWP this status describes.
    pub who: u32,
    /// The instruction at the program counter.
    pub instr: u64,
    /// General registers of the described LWP.
    pub reg: GregSet,
}

impl PrStatus {
    /// Encoded length in bytes.
    pub const WIRE_LEN: usize = 96 + GregSet::WIRE_LEN;

    /// Serialises to the wire image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        b.extend_from_slice(&self.flags.to_le_bytes());
        b.extend_from_slice(&(self.why as u16).to_le_bytes());
        b.extend_from_slice(&self.what.to_le_bytes());
        b.extend_from_slice(&self.cursig.to_le_bytes());
        b.extend_from_slice(&0u32.to_le_bytes());
        b.extend_from_slice(&self.sigpend.to_bytes());
        b.extend_from_slice(&self.sighold.to_bytes());
        b.extend_from_slice(&self.pid.to_le_bytes());
        b.extend_from_slice(&self.ppid.to_le_bytes());
        b.extend_from_slice(&self.pgrp.to_le_bytes());
        b.extend_from_slice(&self.sid.to_le_bytes());
        b.extend_from_slice(&self.utime.to_le_bytes());
        b.extend_from_slice(&self.stime.to_le_bytes());
        b.extend_from_slice(&self.nlwp.to_le_bytes());
        b.extend_from_slice(&self.who.to_le_bytes());
        b.extend_from_slice(&self.instr.to_le_bytes());
        b.extend_from_slice(&self.reg.to_bytes());
        debug_assert_eq!(b.len(), Self::WIRE_LEN);
        b
    }

    /// Deserialises from the wire image.
    pub fn from_bytes(b: &[u8]) -> Option<PrStatus> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let u32_at = |o: usize| crate::bytes::le_u32(&b[o..]);
        let u16_at = |o: usize| crate::bytes::le_u16(&b[o..]);
        let u64_at = |o: usize| crate::bytes::le_u64(&b[o..]);
        Some(PrStatus {
            flags: u32_at(0),
            why: PrWhy::from_u16(u16_at(4)),
            what: u16_at(6),
            cursig: u32_at(8),
            sigpend: SigSet::from_bytes(&b[16..32])?,
            sighold: SigSet::from_bytes(&b[32..48])?,
            pid: u32_at(48),
            ppid: u32_at(52),
            pgrp: u32_at(56),
            sid: u32_at(60),
            utime: u64_at(64),
            stime: u64_at(72),
            nlwp: u32_at(80),
            who: u32_at(84),
            instr: u64_at(88),
            reg: GregSet::from_bytes(&b[96..96 + GregSet::WIRE_LEN])?,
        })
    }

    /// Builds the status of `pid` (describing LWP `tid`, or the
    /// representative LWP when `None`).
    pub fn capture(k: &Kernel, pid: Pid, tid: Option<Tid>) -> SysResult<PrStatus> {
        let proc = k.proc(pid)?;
        if proc.zombie {
            return Err(Errno::ENOENT);
        }
        let lwp = match tid {
            Some(t) => proc.lwp(t).ok_or(Errno::ESRCH)?,
            None => proc.rep_lwp(),
        };
        let mut flags = 0u32;
        let (why, what) = match lwp.stop_why() {
            Some(w) => {
                flags |= PR_STOPPED;
                if w.is_event_stop() {
                    flags |= PR_ISTOP;
                }
                match w {
                    StopWhy::Requested => (PrWhy::Requested, 0u16),
                    StopWhy::Signalled(s) => (PrWhy::Signalled, s as u16),
                    StopWhy::JobControl(s) => (PrWhy::JobControl, s as u16),
                    StopWhy::Faulted(f) => (PrWhy::Faulted, f.number() as u16),
                    StopWhy::SyscallEntry(n) => (PrWhy::SyscallEntry, n),
                    StopWhy::SyscallExit(n) => (PrWhy::SyscallExit, n),
                    StopWhy::Ptrace(s) => (PrWhy::Ptrace, s as u16),
                }
            }
            None => (PrWhy::None, 0),
        };
        if lwp.stop_directive {
            flags |= PR_DSTOP;
        }
        if matches!(lwp.state, LwpState::Sleeping { interruptible: true, .. }) {
            flags |= PR_ASLEEP;
        }
        if proc.hosted {
            flags |= PR_ISSYS;
        }
        if proc.trace.inherit_on_fork {
            flags |= PR_FORK;
        }
        if proc.trace.run_on_last_close {
            flags |= PR_RLC;
        }
        if proc.ptraced {
            flags |= PR_PTRACE;
        }
        let mut instr = [0u8; 8];
        let _ = proc.aspace.kernel_read(&k.objects, lwp.gregs.pc, &mut instr);
        Ok(PrStatus {
            flags,
            why,
            what,
            cursig: lwp.cursig.unwrap_or(0) as u32,
            sigpend: proc.pending,
            sighold: lwp.held,
            pid: proc.pid.0,
            ppid: proc.ppid.0,
            pgrp: proc.pgrp.0,
            sid: proc.sid.0,
            utime: proc.cpu_time,
            stime: 0,
            nlwp: proc.lwps.iter().filter(|l| l.state != LwpState::Zombie).count() as u32,
            who: lwp.tid.0,
            instr: u64::from_le_bytes(instr),
            reg: lwp.gregs.clone(),
        })
    }
}

/// Fixed-width name fields in `psinfo`.
pub const FNAME_LEN: usize = 16;
/// Width of the argument string in `psinfo`.
pub const PSARGS_LEN: usize = 80;

/// The `ps` information structure (`prpsinfo_t`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PsInfo {
    /// Process id.
    pub pid: u32,
    /// Parent pid.
    pub ppid: u32,
    /// Process group.
    pub pgrp: u32,
    /// Session.
    pub sid: u32,
    /// Real uid.
    pub uid: u32,
    /// Real gid.
    pub gid: u32,
    /// Total virtual memory, bytes.
    pub size: u64,
    /// Resident memory, bytes.
    pub rss: u64,
    /// Start time, ticks since boot.
    pub start: u64,
    /// CPU time, ticks.
    pub time: u64,
    /// Run-state character (O/S/T/Z).
    pub state: u8,
    /// Nice value (biased by 20 in the image).
    pub nice: i8,
    /// Live LWP count.
    pub nlwp: u32,
    /// Command name.
    pub fname: String,
    /// Command line.
    pub psargs: String,
}

impl PsInfo {
    /// Encoded length in bytes.
    pub const WIRE_LEN: usize = 64 + FNAME_LEN + PSARGS_LEN;

    /// Serialises to the wire image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        for v in [self.pid, self.ppid, self.pgrp, self.sid, self.uid, self.gid] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        for v in [self.size, self.rss, self.start, self.time] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b.push(self.state);
        b.push((self.nice as i16 + 20) as u8);
        b.extend_from_slice(&[0u8; 2]);
        b.extend_from_slice(&self.nlwp.to_le_bytes());
        let mut fname = [0u8; FNAME_LEN];
        let n = self.fname.len().min(FNAME_LEN - 1);
        fname[..n].copy_from_slice(&self.fname.as_bytes()[..n]);
        b.extend_from_slice(&fname);
        let mut psargs = [0u8; PSARGS_LEN];
        let n = self.psargs.len().min(PSARGS_LEN - 1);
        psargs[..n].copy_from_slice(&self.psargs.as_bytes()[..n]);
        b.extend_from_slice(&psargs);
        debug_assert_eq!(b.len(), Self::WIRE_LEN);
        b
    }

    /// Deserialises from the wire image.
    pub fn from_bytes(b: &[u8]) -> Option<PsInfo> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let u32_at = |o: usize| crate::bytes::le_u32(&b[o..]);
        let u64_at = |o: usize| crate::bytes::le_u64(&b[o..]);
        let cstr = |range: &[u8]| {
            let end = range.iter().position(|&c| c == 0).unwrap_or(range.len());
            String::from_utf8_lossy(&range[..end]).into_owned()
        };
        Some(PsInfo {
            pid: u32_at(0),
            ppid: u32_at(4),
            pgrp: u32_at(8),
            sid: u32_at(12),
            uid: u32_at(16),
            gid: u32_at(20),
            size: u64_at(24),
            rss: u64_at(32),
            start: u64_at(40),
            time: u64_at(48),
            state: b[56],
            nice: (b[57] as i16 - 20) as i8,
            nlwp: u32_at(60),
            fname: cstr(&b[64..64 + FNAME_LEN]),
            psargs: cstr(&b[64 + FNAME_LEN..64 + FNAME_LEN + PSARGS_LEN]),
        })
    }

    /// Builds the `ps` snapshot of `pid` — "all the information for a
    /// process is obtained in a single operation".
    pub fn capture(k: &Kernel, pid: Pid) -> SysResult<PsInfo> {
        let proc = k.proc(pid)?;
        Ok(PsInfo {
            pid: proc.pid.0,
            ppid: proc.ppid.0,
            pgrp: proc.pgrp.0,
            sid: proc.sid.0,
            uid: proc.cred.ruid,
            gid: proc.cred.rgid,
            size: proc.aspace.total_size(),
            rss: proc.aspace.resident_bytes(&k.objects),
            start: proc.start_time,
            time: proc.cpu_time,
            state: proc.state_char() as u8,
            nice: proc.nice,
            nlwp: proc.lwps.iter().filter(|l| l.state != LwpState::Zombie).count() as u32,
            fname: proc.fname.clone(),
            psargs: proc.psargs.clone(),
        })
    }
}

/// Width of the name field in a map entry.
pub const MAPNAME_LEN: usize = 32;

/// One address-space mapping (`prmap_t`), as returned by `PIOCMAP`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrMap {
    /// First virtual address.
    pub vaddr: u64,
    /// Size in bytes.
    pub size: u64,
    /// Offset within the backing object.
    pub offset: u64,
    /// Protection bits (1 read, 2 write, 4 exec).
    pub prot: u32,
    /// Attribute bits (1 shared, 2 grows down, 4 break segment).
    pub flags: u32,
    /// Advisory segment name.
    pub name: String,
}

/// `PrMap.flags`: MAP_SHARED mapping.
pub const PRMAP_SHARED: u32 = 1;
/// `PrMap.flags`: automatic downward growth (stack).
pub const PRMAP_GROWSDOWN: u32 = 2;
/// `PrMap.flags`: the break segment.
pub const PRMAP_BREAK: u32 = 4;

impl PrMap {
    /// Encoded length of one entry.
    pub const WIRE_LEN: usize = 32 + MAPNAME_LEN;

    /// Serialises one entry.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        b.extend_from_slice(&self.vaddr.to_le_bytes());
        b.extend_from_slice(&self.size.to_le_bytes());
        b.extend_from_slice(&self.offset.to_le_bytes());
        b.extend_from_slice(&self.prot.to_le_bytes());
        b.extend_from_slice(&self.flags.to_le_bytes());
        let mut name = [0u8; MAPNAME_LEN];
        let n = self.name.len().min(MAPNAME_LEN - 1);
        name[..n].copy_from_slice(&self.name.as_bytes()[..n]);
        b.extend_from_slice(&name);
        b
    }

    /// Deserialises one entry.
    pub fn from_bytes(b: &[u8]) -> Option<PrMap> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let u64_at = |o: usize| crate::bytes::le_u64(&b[o..]);
        let u32_at = |o: usize| crate::bytes::le_u32(&b[o..]);
        let end = b[32..32 + MAPNAME_LEN].iter().position(|&c| c == 0).unwrap_or(MAPNAME_LEN);
        Some(PrMap {
            vaddr: u64_at(0),
            size: u64_at(8),
            offset: u64_at(16),
            prot: u32_at(24),
            flags: u32_at(28),
            name: String::from_utf8_lossy(&b[32..32 + end]).into_owned(),
        })
    }

    /// Captures the full memory map of `pid` (Figure 2's data).
    pub fn capture_all(k: &Kernel, pid: Pid) -> SysResult<Vec<PrMap>> {
        let proc = k.proc(pid)?;
        Ok(proc
            .aspace
            .mappings()
            .iter()
            .map(|m| PrMap {
                vaddr: m.base,
                size: m.len,
                offset: m.obj_off,
                prot: m.prot.to_bits(),
                flags: (m.flags.shared as u32) * PRMAP_SHARED
                    + (m.flags.grows_down as u32) * PRMAP_GROWSDOWN
                    + (m.flags.is_break as u32) * PRMAP_BREAK,
                name: m.name.to_string(),
            })
            .collect())
    }

    /// Decodes a buffer of concatenated entries.
    pub fn decode_list(b: &[u8]) -> Vec<PrMap> {
        b.chunks_exact(Self::WIRE_LEN).filter_map(PrMap::from_bytes).collect()
    }

    /// Pretty protection in the style of Figure 2.
    pub fn prot_string(&self) -> String {
        Prot::from_bits(self.prot).to_string()
    }
}

/// Credentials (`prcred_t`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrCred {
    /// Real user id.
    pub ruid: u32,
    /// Effective user id.
    pub euid: u32,
    /// Saved user id.
    pub suid: u32,
    /// Real group id.
    pub rgid: u32,
    /// Effective group id.
    pub egid: u32,
    /// Saved group id.
    pub sgid: u32,
    /// Number of supplementary groups (fetch them with `PIOCGROUPS`).
    pub ngroups: u32,
}

impl PrCred {
    /// Encoded length.
    pub const WIRE_LEN: usize = 28;

    /// Serialises.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        for v in [self.ruid, self.euid, self.suid, self.rgid, self.egid, self.sgid, self.ngroups]
        {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    /// Deserialises.
    pub fn from_bytes(b: &[u8]) -> Option<PrCred> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let u32_at = |o: usize| crate::bytes::le_u32(&b[o..]);
        Some(PrCred {
            ruid: u32_at(0),
            euid: u32_at(4),
            suid: u32_at(8),
            rgid: u32_at(12),
            egid: u32_at(16),
            sgid: u32_at(20),
            ngroups: u32_at(24),
        })
    }

    /// Captures the credentials of `pid`.
    pub fn capture(k: &Kernel, pid: Pid) -> SysResult<PrCred> {
        let c = &k.proc(pid)?.cred;
        Ok(PrCred {
            ruid: c.ruid,
            euid: c.euid,
            suid: c.suid,
            rgid: c.rgid,
            egid: c.egid,
            sgid: c.sgid,
            ngroups: c.groups.len() as u32,
        })
    }
}

/// Run options (`prrun_t`) for `PIOCRUN`/`PCRUN`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrRun {
    /// Option bits (`PRRUN_*`).
    pub flags: u32,
    /// Resume address when `PRRUN_SVADDR` is set.
    pub vaddr: u64,
}

/// Clear the current signal.
pub const PRRUN_CSIG: u32 = 1 << 0;
/// Clear the current fault.
pub const PRRUN_CFAULT: u32 = 1 << 1;
/// Abort the system call stopped at entry.
pub const PRRUN_SABORT: u32 = 1 << 2;
/// Single-step.
pub const PRRUN_STEP: u32 = 1 << 3;
/// Stop again at the next `issig()`.
pub const PRRUN_SSTOP: u32 = 1 << 4;
/// Resume at `vaddr`.
pub const PRRUN_SVADDR: u32 = 1 << 5;
/// Complete one access that would fire a watchpoint.
pub const PRRUN_WBYPASS: u32 = 1 << 6;

impl PrRun {
    /// Encoded length.
    pub const WIRE_LEN: usize = 16;

    /// Serialises.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        b.extend_from_slice(&self.flags.to_le_bytes());
        b.extend_from_slice(&0u32.to_le_bytes());
        b.extend_from_slice(&self.vaddr.to_le_bytes());
        b
    }

    /// Deserialises (an empty buffer is an all-defaults run).
    pub fn from_bytes(b: &[u8]) -> Option<PrRun> {
        if b.is_empty() {
            return Some(PrRun::default());
        }
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        Some(PrRun {
            flags: crate::bytes::le_u32(b),
            vaddr: crate::bytes::le_u64(&b[8..]),
        })
    }

    /// Converts to kernel run options.
    pub fn to_opts(self) -> ksim::RunOpts {
        ksim::RunOpts {
            clear_sig: self.flags & PRRUN_CSIG != 0,
            clear_fault: self.flags & PRRUN_CFAULT != 0,
            abort_syscall: self.flags & PRRUN_SABORT != 0,
            step: self.flags & PRRUN_STEP != 0,
            stop_again: self.flags & PRRUN_SSTOP != 0,
            bypass_watch_once: self.flags & PRRUN_WBYPASS != 0,
            set_pc: (self.flags & PRRUN_SVADDR != 0).then_some(self.vaddr),
        }
    }
}

/// A watched area (`prwatch_t`) for the proposed watchpoint facility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrWatch {
    /// First watched byte.
    pub vaddr: u64,
    /// Length in bytes; zero removes watchpoints at `vaddr`.
    pub size: u64,
    /// Mode bits (1 read, 2 write, 4 exec).
    pub flags: u32,
}

impl PrWatch {
    /// Encoded length.
    pub const WIRE_LEN: usize = 24;

    /// Serialises.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        b.extend_from_slice(&self.vaddr.to_le_bytes());
        b.extend_from_slice(&self.size.to_le_bytes());
        b.extend_from_slice(&self.flags.to_le_bytes());
        b.extend_from_slice(&0u32.to_le_bytes());
        b
    }

    /// Deserialises.
    pub fn from_bytes(b: &[u8]) -> Option<PrWatch> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        Some(PrWatch {
            vaddr: crate::bytes::le_u64(b),
            size: crate::bytes::le_u64(&b[8..]),
            flags: crate::bytes::le_u32(&b[16..]),
        })
    }
}

/// Resource usage (`prusage_t`) — the proposed performance extension.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrUsage {
    /// Instructions retired (CPU time in ticks).
    pub cpu_ticks: u64,
    /// LWPs ever created.
    pub nlwp: u64,
    /// Watchpoint recoveries performed by the system for this process.
    pub watch_recoveries: u64,
    /// Start tick.
    pub start: u64,
    /// Virtual size, bytes.
    pub size: u64,
    /// Resident bytes.
    pub rss: u64,
}

impl PrUsage {
    /// Encoded length.
    pub const WIRE_LEN: usize = 48;

    /// Serialises.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        for v in [
            self.cpu_ticks,
            self.nlwp,
            self.watch_recoveries,
            self.start,
            self.size,
            self.rss,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    /// Deserialises.
    pub fn from_bytes(b: &[u8]) -> Option<PrUsage> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let u64_at = |o: usize| crate::bytes::le_u64(&b[o..]);
        Some(PrUsage {
            cpu_ticks: u64_at(0),
            nlwp: u64_at(8),
            watch_recoveries: u64_at(16),
            start: u64_at(24),
            size: u64_at(32),
            rss: u64_at(40),
        })
    }

    /// Captures usage for `pid`.
    pub fn capture(k: &Kernel, pid: Pid) -> SysResult<PrUsage> {
        let proc = k.proc(pid)?;
        Ok(PrUsage {
            cpu_ticks: proc.cpu_time,
            nlwp: (proc.next_tid - 1) as u64,
            watch_recoveries: proc.aspace.watch_recovered,
            start: proc.start_time,
            size: proc.aspace.total_size(),
            rss: proc.aspace.resident_bytes(&k.objects),
        })
    }
}

/// Snapshot-cache counters (`prcachestats`) — read through
/// `PIOCCACHESTATS` or [`crate::mount_standard_with_cache`]; the
/// observability half of the generation-stamped caching layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrCacheStats {
    /// Renders served from cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found a stale entry (a generation stamp moved).
    pub invalidations: u64,
    /// Entries currently cached.
    pub entries: u64,
}

impl PrCacheStats {
    /// Encoded length.
    pub const WIRE_LEN: usize = 32;

    /// Serialises.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        for v in [self.hits, self.misses, self.invalidations, self.entries] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    /// Deserialises.
    pub fn from_bytes(b: &[u8]) -> Option<PrCacheStats> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let u64_at = |o: usize| crate::bytes::le_u64(&b[o..]);
        Some(PrCacheStats {
            hits: u64_at(0),
            misses: u64_at(8),
            invalidations: u64_at(16),
            entries: u64_at(24),
        })
    }
}

/// Execution fast-path counters (`prxstats`) — read through `PIOCXSTATS`
/// or the hierarchical `xstats` file; the observability half of the
/// per-LWP software TLB, decoded-instruction cache and superblock
/// engine. Instruction-cache and superblock counters are summed over the
/// process's current LWPs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrXStats {
    /// 1 if the fast path is enabled for this address space, else 0.
    pub enabled: u64,
    /// Software-TLB lookups served from a validated entry.
    pub tlb_hits: u64,
    /// Software-TLB lookups that fell to the slow path.
    pub tlb_misses: u64,
    /// Address-space generation bumps (structural invalidations).
    pub tlb_invalidations: u64,
    /// Instruction fetches served from a validated decoded slot.
    pub icache_hits: u64,
    /// Instruction fetches that decoded fresh.
    pub icache_misses: u64,
    /// Probes that matched on pc but failed stamp validation.
    pub icache_invalidations: u64,
    /// Instructions retired by this process (all LWPs).
    pub insns: u64,
    /// TLB hits served straight from a cached resolved frame.
    pub tlb_frame_hits: u64,
    /// Per-page text-epoch bumps (each invalidates one page's decoded
    /// instructions and superblocks, not the whole mapping's).
    pub page_epoch_bumps: u64,
    /// Superblocks traced and installed.
    pub sblock_built: u64,
    /// Superblock dispatches.
    pub sblock_dispatched: u64,
    /// Instructions retired inside superblock dispatches.
    pub sblock_insns: u64,
    /// Dispatches that ran the whole trace.
    pub sblock_exit_end: u64,
    /// Dispatches that side-exited on an untaken prediction.
    pub sblock_exit_side: u64,
    /// Dispatches ended by a trapping instruction.
    pub sblock_exit_trap: u64,
    /// Dispatches cut short by the quantum budget.
    pub sblock_exit_budget: u64,
    /// Superblock probes that failed stamp validation.
    pub sblock_stale: u64,
}

impl PrXStats {
    /// Encoded length: eighteen little-endian `u64` counters.
    pub const WIRE_LEN: usize = 144;

    /// Serialises in field order.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        for v in [
            self.enabled,
            self.tlb_hits,
            self.tlb_misses,
            self.tlb_invalidations,
            self.icache_hits,
            self.icache_misses,
            self.icache_invalidations,
            self.insns,
            self.tlb_frame_hits,
            self.page_epoch_bumps,
            self.sblock_built,
            self.sblock_dispatched,
            self.sblock_insns,
            self.sblock_exit_end,
            self.sblock_exit_side,
            self.sblock_exit_trap,
            self.sblock_exit_budget,
            self.sblock_stale,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    /// Deserialises.
    pub fn from_bytes(b: &[u8]) -> Option<PrXStats> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let u64_at = |o: usize| crate::bytes::le_u64(&b[o..]);
        Some(PrXStats {
            enabled: u64_at(0),
            tlb_hits: u64_at(8),
            tlb_misses: u64_at(16),
            tlb_invalidations: u64_at(24),
            icache_hits: u64_at(32),
            icache_misses: u64_at(40),
            icache_invalidations: u64_at(48),
            insns: u64_at(56),
            tlb_frame_hits: u64_at(64),
            page_epoch_bumps: u64_at(72),
            sblock_built: u64_at(80),
            sblock_dispatched: u64_at(88),
            sblock_insns: u64_at(96),
            sblock_exit_end: u64_at(104),
            sblock_exit_side: u64_at(112),
            sblock_exit_trap: u64_at(120),
            sblock_exit_budget: u64_at(128),
            sblock_stale: u64_at(136),
        })
    }

    /// Captures the fast-path counters for `pid`.
    pub fn capture(k: &Kernel, pid: Pid) -> SysResult<PrXStats> {
        let proc = k.proc(pid)?;
        let tlb = proc.aspace.tlb_stats();
        let mut st = PrXStats {
            enabled: u64::from(proc.aspace.fast_path_enabled()),
            tlb_hits: tlb.hits,
            tlb_misses: tlb.misses,
            tlb_invalidations: tlb.invalidations,
            tlb_frame_hits: tlb.frame_hits,
            page_epoch_bumps: proc.aspace.page_epoch_bumps(),
            ..PrXStats::default()
        };
        for lwp in &proc.lwps {
            let ic = lwp.icache.stats();
            st.icache_hits += ic.hits;
            st.icache_misses += ic.misses;
            st.icache_invalidations += ic.invalidations;
            st.insns += lwp.insns;
            let sb = lwp.sblocks.stats();
            st.sblock_built += sb.built;
            st.sblock_dispatched += sb.dispatched;
            st.sblock_insns += sb.insns;
            st.sblock_exit_end += sb.exit_end;
            st.sblock_exit_side += sb.exit_side;
            st.sblock_exit_trap += sb.exit_trap;
            st.sblock_exit_budget += sb.exit_budget;
            st.sblock_stale += sb.stale;
        }
        Ok(st)
    }
}

/// Maps a [`SegName`]-style display string back for tools; kept here so
/// tools do not depend on `vm` directly.
pub fn seg_display(name: &SegName) -> String {
    name.to_string()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn prstatus_roundtrip() {
        let mut reg = GregSet::at(0x0100_0040);
        reg.set_sp(0x7FFF_0000);
        let st = PrStatus {
            flags: PR_STOPPED | PR_ISTOP,
            why: PrWhy::Faulted,
            what: 3,
            cursig: 0,
            sigpend: {
                let mut s = SigSet::empty();
                s.add(2);
                s
            },
            sighold: SigSet::empty(),
            pid: 42,
            ppid: 1,
            pgrp: 42,
            sid: 42,
            utime: 1000,
            stime: 0,
            nlwp: 2,
            who: 1,
            instr: 0x0000_0000_0000_0004,
            reg,
        };
        let b = st.to_bytes();
        assert_eq!(b.len(), PrStatus::WIRE_LEN);
        assert_eq!(PrStatus::from_bytes(&b).expect("roundtrip"), st);
    }

    #[test]
    fn psinfo_roundtrip_and_truncation() {
        let info = PsInfo {
            pid: 1,
            ppid: 0,
            pgrp: 1,
            sid: 1,
            uid: 100,
            gid: 10,
            size: 208896,
            rss: 4096,
            start: 0,
            time: 12345,
            state: b'S',
            nice: -5,
            nlwp: 1,
            fname: "a-very-long-command-name-that-will-truncate".to_string(),
            psargs: "x".repeat(200),
        };
        let b = info.to_bytes();
        assert_eq!(b.len(), PsInfo::WIRE_LEN);
        let back = PsInfo::from_bytes(&b).expect("roundtrip");
        assert_eq!(back.pid, 1);
        assert_eq!(back.nice, -5);
        assert_eq!(back.fname.len(), FNAME_LEN - 1);
        assert_eq!(back.psargs.len(), PSARGS_LEN - 1);
        assert_eq!(back.size, 208896);
    }

    #[test]
    fn prmap_roundtrip() {
        let m = PrMap {
            vaddr: 0x0100_0000,
            size: 26 * 1024,
            offset: 0,
            prot: 5,
            flags: PRMAP_GROWSDOWN,
            name: "text".to_string(),
        };
        let b = m.to_bytes();
        assert_eq!(b.len(), PrMap::WIRE_LEN);
        assert_eq!(PrMap::from_bytes(&b).expect("roundtrip"), m);
        assert_eq!(m.prot_string(), "read/exec");
        let list: Vec<u8> = [m.to_bytes(), m.to_bytes()].concat();
        assert_eq!(PrMap::decode_list(&list).len(), 2);
    }

    #[test]
    fn prcred_roundtrip() {
        let c = PrCred { ruid: 1, euid: 2, suid: 3, rgid: 4, egid: 5, sgid: 6, ngroups: 2 };
        assert_eq!(PrCred::from_bytes(&c.to_bytes()).expect("roundtrip"), c);
    }

    #[test]
    fn prrun_roundtrip_and_opts() {
        let r = PrRun { flags: PRRUN_CSIG | PRRUN_STEP | PRRUN_SVADDR, vaddr: 0x4000 };
        let back = PrRun::from_bytes(&r.to_bytes()).expect("roundtrip");
        assert_eq!(back, r);
        let opts = back.to_opts();
        assert!(opts.clear_sig);
        assert!(opts.step);
        assert_eq!(opts.set_pc, Some(0x4000));
        assert!(!opts.abort_syscall);
        // Empty buffer = default run.
        assert_eq!(PrRun::from_bytes(&[]).expect("empty"), PrRun::default());
    }

    #[test]
    fn prwatch_and_prusage_roundtrip() {
        let w = PrWatch { vaddr: 0x2000, size: 1, flags: 2 };
        assert_eq!(PrWatch::from_bytes(&w.to_bytes()).expect("roundtrip"), w);
        let u = PrUsage {
            cpu_ticks: 7,
            nlwp: 2,
            watch_recoveries: 3,
            start: 1,
            size: 8192,
            rss: 4096,
        };
        assert_eq!(PrUsage::from_bytes(&u.to_bytes()).expect("roundtrip"), u);
    }

    #[test]
    fn short_buffers_rejected() {
        assert!(PrStatus::from_bytes(&[0; 8]).is_none());
        assert!(PsInfo::from_bytes(&[0; 8]).is_none());
        assert!(PrMap::from_bytes(&[0; 8]).is_none());
        assert!(PrCred::from_bytes(&[0; 8]).is_none());
        assert!(PrRun::from_bytes(&[0; 8]).is_none());
        assert!(PrWatch::from_bytes(&[0; 8]).is_none());
        assert!(PrUsage::from_bytes(&[0; 8]).is_none());
    }
}
