//! Control-operation core shared by the flat (ioctl) and hierarchical
//! (write-to-ctl-file) interfaces. Both are thin encodings over these
//! functions — which is the restructuring argument in miniature: the
//! *operations* are interface-independent.

use crate::types::{PrRun, PrStatus, PrWatch};
use ksim::fault::FltSet;
use ksim::fd::FileKind;
use ksim::signal::SigSet;
use ksim::sysno::SysSet;
use ksim::{Kernel, Tid};
use vfs::{Errno, OFlags, Pid, SysResult};
use vm::{ObjectKind, WatchArea, WatchFlags};

/// Ensures the target exists and is not a zombie.
pub fn live(k: &Kernel, pid: Pid) -> SysResult<()> {
    let p = k.proc(pid)?;
    if p.zombie {
        return Err(Errno::ENOENT);
    }
    Ok(())
}

/// `PIOCSTRACE`/`PCSTRACE`: define the set of traced signals.
pub fn set_sig_trace(k: &mut Kernel, pid: Pid, bytes: &[u8]) -> SysResult<()> {
    let set = SigSet::from_bytes(bytes).ok_or(Errno::EINVAL)?;
    live(k, pid)?;
    k.proc_mut(pid)?.trace.sig_trace = set;
    Ok(())
}

/// `PIOCSFAULT`/`PCSFAULT`: define the set of traced machine faults.
pub fn set_flt_trace(k: &mut Kernel, pid: Pid, bytes: &[u8]) -> SysResult<()> {
    let set = FltSet::from_bytes(bytes).ok_or(Errno::EINVAL)?;
    live(k, pid)?;
    k.proc_mut(pid)?.trace.flt_trace = set;
    Ok(())
}

/// `PIOCSENTRY`/`PCSENTRY`: define the traced system call entries.
pub fn set_entry_trace(k: &mut Kernel, pid: Pid, bytes: &[u8]) -> SysResult<()> {
    let set = SysSet::from_bytes(bytes).ok_or(Errno::EINVAL)?;
    live(k, pid)?;
    k.proc_mut(pid)?.trace.entry_trace = set;
    Ok(())
}

/// `PIOCSEXIT`/`PCSEXIT`: define the traced system call exits.
pub fn set_exit_trace(k: &mut Kernel, pid: Pid, bytes: &[u8]) -> SysResult<()> {
    let set = SysSet::from_bytes(bytes).ok_or(Errno::EINVAL)?;
    live(k, pid)?;
    k.proc_mut(pid)?.trace.exit_trace = set;
    Ok(())
}

/// `PIOCRUN`/`PCRUN`: make a stopped LWP runnable, with options.
/// Without an explicit `tid` the representative LWP is resumed.
pub fn run(k: &mut Kernel, pid: Pid, tid: Option<Tid>, arg: &[u8]) -> SysResult<()> {
    let prrun = PrRun::from_bytes(arg).ok_or(Errno::EINVAL)?;
    live(k, pid)?;
    let tid = match tid {
        Some(t) => t,
        None => k.proc(pid)?.rep_lwp().tid,
    };
    k.run_lwp(pid, tid, prrun.to_opts())
}

/// `PIOCKILL`/`PCKILL`: post a signal. The open descriptor is the
/// capability; no further permission check is applied.
pub fn kill(k: &mut Kernel, pid: Pid, arg: &[u8]) -> SysResult<()> {
    let sig = read_u32(arg)? as usize;
    live(k, pid)?;
    k.post_signal(pid, sig)
}

/// `PIOCUNKILL`/`PCUNKILL`: delete a pending signal.
pub fn unkill(k: &mut Kernel, pid: Pid, arg: &[u8]) -> SysResult<()> {
    let sig = read_u32(arg)? as usize;
    if sig == 0 || sig >= SigSet::capacity() {
        return Err(Errno::EINVAL);
    }
    live(k, pid)?;
    k.proc_mut(pid)?.pending.del(sig);
    Ok(())
}

/// `PIOCSSIG`/`PCSSIG`: set (or with 0 clear) the current signal.
pub fn set_sig(k: &mut Kernel, pid: Pid, tid: Option<Tid>, arg: &[u8]) -> SysResult<()> {
    let sig = read_u32(arg)? as usize;
    live(k, pid)?;
    let tid = match tid {
        Some(t) => t,
        None => k.proc(pid)?.rep_lwp().tid,
    };
    if sig >= SigSet::capacity() {
        return Err(Errno::EINVAL);
    }
    k.set_cursig(pid, tid, (sig != 0).then_some(sig))
}

/// `PIOCSHOLD`/`PCSHOLD`: replace the held-signal mask.
pub fn set_hold(k: &mut Kernel, pid: Pid, tid: Option<Tid>, arg: &[u8]) -> SysResult<()> {
    let mut set = SigSet::from_bytes(arg).ok_or(Errno::EINVAL)?;
    set.del(ksim::signal::SIGKILL);
    set.del(ksim::signal::SIGSTOP);
    live(k, pid)?;
    let proc = k.proc_mut(pid)?;
    let lwp = match tid {
        Some(t) => proc.lwp_mut(t).ok_or(Errno::ESRCH)?,
        None => proc.rep_lwp_mut(),
    };
    lwp.held = set;
    Ok(())
}

/// `PIOCSWATCH`/`PCWATCH`: add a watched area, or remove the areas at
/// `vaddr` when `size` is zero.
pub fn watch(k: &mut Kernel, pid: Pid, arg: &[u8]) -> SysResult<u64> {
    let w = PrWatch::from_bytes(arg).ok_or(Errno::EINVAL)?;
    live(k, pid)?;
    let proc = k.proc_mut(pid)?;
    if w.size == 0 {
        let before = proc.aspace.watchpoints.len();
        proc.aspace.watchpoints.retain(|a| a.base != w.vaddr);
        return Ok((before - proc.aspace.watchpoints.len()) as u64);
    }
    let flags = WatchFlags::from_bits(w.flags);
    if !flags.read && !flags.write && !flags.exec {
        return Err(Errno::EINVAL);
    }
    proc.aspace.add_watch(WatchArea { base: w.vaddr, len: w.size, flags });
    Ok(1)
}

/// `PIOCNICE`/`PCNICE`: adjust priority.
pub fn nice(k: &mut Kernel, pid: Pid, arg: &[u8]) -> SysResult<()> {
    let incr = read_u32(arg)? as i32 as i8;
    live(k, pid)?;
    let proc = k.proc_mut(pid)?;
    proc.nice = proc.nice.saturating_add(incr).clamp(-20, 19);
    Ok(())
}

/// Direct every LWP of the target to stop (the non-waiting half of
/// `PIOCSTOP`; `PCDSTOP`).
pub fn direct_stop(k: &mut Kernel, pid: Pid) -> SysResult<()> {
    live(k, pid)?;
    k.direct_stop(pid)
}

/// True when the representative LWP is stopped on an event of interest —
/// the condition `PIOCSTOP`/`PIOCWSTOP` wait for.
pub fn event_stopped(k: &Kernel, pid: Pid) -> SysResult<bool> {
    let p = k.proc(pid)?;
    if p.zombie {
        return Err(Errno::ENOENT);
    }
    Ok(p.is_event_stopped())
}

/// `PIOCOPENM`/the `object` convention: given a virtual address in the
/// target, opens the underlying mapped object read-only and returns a
/// descriptor *in the caller's table* — "this enables a debugger to find
/// executable file symbol tables ... without having to know pathnames".
pub fn open_mapped(k: &mut Kernel, caller: Pid, pid: Pid, arg: &[u8]) -> SysResult<u64> {
    let vaddr = read_u64(arg)?;
    live(k, pid)?;
    let (fs, node) = {
        let proc = k.proc(pid)?;
        let mapping = proc.aspace.find(vaddr).ok_or(Errno::EFAULT)?;
        match &k.objects.get(mapping.object).kind {
            ObjectKind::File { fs, node, .. } => (*fs, vfs::NodeId(*node)),
            ObjectKind::Anon => return Err(Errno::ENXIO),
        }
    };
    // The kernel grants the descriptor directly; the mapping itself is
    // proof the object is readable by the process being examined.
    let fid = k.files.alloc(
        FileKind::Vnode { fs, node, token: vfs::OpenToken(0) },
        OFlags::rdonly(),
    );
    let fd = {
        let proc = k.proc_mut(caller)?;
        proc.fds.alloc(fid)
    };
    match fd {
        Some(fd) => Ok(fd as u64),
        None => {
            k.files.decref(fid);
            Err(Errno::EMFILE)
        }
    }
}

/// Builds the status reply for stop-style operations.
pub fn status_bytes(k: &Kernel, pid: Pid, tid: Option<Tid>) -> SysResult<Vec<u8>> {
    Ok(PrStatus::capture(k, pid, tid)?.to_bytes())
}

fn read_u32(arg: &[u8]) -> SysResult<u32> {
    if arg.len() < 4 {
        return Err(Errno::EINVAL);
    }
    Ok(crate::bytes::le_u32(arg))
}

fn read_u64(arg: &[u8]) -> SysResult<u64> {
    if arg.len() < 8 {
        return Err(Errno::EINVAL);
    }
    Ok(crate::bytes::le_u64(arg))
}
