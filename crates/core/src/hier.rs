//! The proposed restructuring: a hierarchical `/proc`.
//!
//! "A new structure is under consideration that would change the /proc
//! file system from a flat structure to a hierarchical one containing a
//! number of sub-directories and additional status and control files.
//! The programming interface changes from one in which ioctl(2)
//! operations are applied to open file descriptors ... to one in which
//! process state is interrogated by read(2) operations applied to
//! appropriate read-only status files and process control is effected by
//! structured messages written to write-only control files."
//!
//! Layout (mounted at `/proc2` so both generations coexist):
//!
//! ```text
//! /proc2/<pid>/status    read-only  prstatus image
//! /proc2/<pid>/psinfo    read-only  psinfo image
//! /proc2/<pid>/ctl       write-only structured control messages
//! /proc2/<pid>/as        read-write the address space
//! /proc2/<pid>/map       read-only  prmap array
//! /proc2/<pid>/cred      read-only  prcred image
//! /proc2/<pid>/usage     read-only  prusage image
//! /proc2/<pid>/xstats    read-only  prxstats image (fast-path counters)
//! /proc2/<pid>/lwp/<tid>/{status,ctl,gregs}   per-thread files
//! ```
//!
//! Control messages are records `[u32 op][u32 len][len payload bytes]`;
//! "the use of a control file to which structured messages are written
//! makes it possible to combine several control operations in a single
//! write system call" — experiment E4 measures exactly that. A blocking
//! operation (`PCSTOP`, `PCWSTOP`) suspends the write; consumed records
//! are remembered per open descriptor so the retry resumes after them.

use crate::ioctl::Ioctl;
use crate::ops;
use crate::snap::{snap_handle, DirSlot, SnapHandle};
use crate::types::{PrCred, PrMap, PrUsage, PrXStats, PsInfo};
use ksim::proc::LwpState;
use ksim::{Kernel, Tid, HZ};
use std::collections::HashMap;
use std::sync::PoisonError;
use vfs::{
    Cred, DirEntry, Errno, FileSystem, IoReply, IoctlReply, Metadata, NodeId, OFlags, OpenToken,
    Pid, PollStatus, SysResult, VnodeKind,
};

/// Direct the process (or LWP) to stop and wait for it.
pub const PCSTOP: u32 = 1;
/// Direct a stop without waiting.
pub const PCDSTOP: u32 = 2;
/// Wait for an event-of-interest stop.
pub const PCWSTOP: u32 = 3;
/// Make runnable (payload: `prrun`).
pub const PCRUN: u32 = 4;
/// Set traced signals (payload: sigset).
pub const PCSTRACE: u32 = 5;
/// Set traced faults (payload: fltset).
pub const PCSFAULT: u32 = 6;
/// Set traced syscall entries (payload: sysset).
pub const PCSENTRY: u32 = 7;
/// Set traced syscall exits (payload: sysset).
pub const PCSEXIT: u32 = 8;
/// Post a signal (payload: u32).
pub const PCKILL: u32 = 9;
/// Delete a pending signal (payload: u32).
pub const PCUNKILL: u32 = 10;
/// Set/clear the current signal (payload: u32, 0 clears).
pub const PCSSIG: u32 = 11;
/// Set the held mask (payload: sigset).
pub const PCSHOLD: u32 = 12;
/// Install general registers (payload: gregset).
pub const PCSREG: u32 = 13;
/// Install floating registers (payload: fpregset).
pub const PCSFPREG: u32 = 14;
/// Set inherit-on-fork.
pub const PCSFORK: u32 = 15;
/// Clear inherit-on-fork.
pub const PCRFORK: u32 = 16;
/// Set run-on-last-close.
pub const PCSRLC: u32 = 17;
/// Clear run-on-last-close.
pub const PCRRLC: u32 = 18;
/// Add/remove a watched area (payload: prwatch).
pub const PCWATCH: u32 = 19;
/// Adjust priority (payload: i32).
pub const PCNICE: u32 = 20;

/// Node kinds within the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Root,
    PidDir,
    Status,
    PsInfo,
    Ctl,
    As,
    Map,
    CredFile,
    Usage,
    LwpDir,
    LwpSub,
    LwpStatus,
    LwpCtl,
    LwpGregs,
    XStats,
}

fn pack(pid: Pid, kind: u8, tid: u32) -> NodeId {
    NodeId(((pid.0 as u64) + 1) | ((kind as u64) << 32) | ((tid as u64) << 40))
}

fn unpack(node: NodeId) -> Option<(Pid, Kind, Tid)> {
    if node.0 == 0 {
        return Some((Pid(0), Kind::Root, Tid(0)));
    }
    let pid = Pid(((node.0 & 0xFFFF_FFFF) - 1) as u32);
    let tid = Tid((node.0 >> 40) as u32);
    let kind = match (node.0 >> 32) as u8 {
        1 => Kind::PidDir,
        2 => Kind::Status,
        3 => Kind::PsInfo,
        4 => Kind::Ctl,
        5 => Kind::As,
        6 => Kind::Map,
        7 => Kind::CredFile,
        8 => Kind::Usage,
        9 => Kind::LwpDir,
        10 => Kind::LwpSub,
        11 => Kind::LwpStatus,
        12 => Kind::LwpCtl,
        13 => Kind::LwpGregs,
        14 => Kind::XStats,
        _ => return None,
    };
    Some((pid, kind, tid))
}

fn kind_code(kind: Kind) -> u8 {
    match kind {
        Kind::Root => 0,
        Kind::PidDir => 1,
        Kind::Status => 2,
        Kind::PsInfo => 3,
        Kind::Ctl => 4,
        Kind::As => 5,
        Kind::Map => 6,
        Kind::CredFile => 7,
        Kind::Usage => 8,
        Kind::LwpDir => 9,
        Kind::LwpSub => 10,
        Kind::LwpStatus => 11,
        Kind::LwpCtl => 12,
        Kind::LwpGregs => 13,
        Kind::XStats => 14,
    }
}

/// Token bit marking a writable open (the rest is the exec generation).
const WRITABLE_BIT: u64 = 1 << 63;

/// The hierarchical `/proc`.
#[derive(Debug)]
pub struct HierFs {
    /// Mid-batch progress of blocked control writes, per `(node, token)`.
    ctl_progress: HashMap<(u64, u64), usize>,
    /// Rendered-image cache, shared with the flat interface when
    /// mounted via [`crate::mount_standard`].
    cache: SnapHandle,
}

impl Default for HierFs {
    fn default() -> HierFs {
        HierFs::new()
    }
}

impl HierFs {
    /// Creates the file system with a private snapshot cache (mount it
    /// with `System::mount`, e.g. at `/proc2`).
    pub fn new() -> HierFs {
        HierFs { ctl_progress: HashMap::new(), cache: snap_handle() }
    }

    /// Creates the file system around a shared snapshot cache.
    pub fn with_cache(cache: SnapHandle) -> HierFs {
        HierFs { ctl_progress: HashMap::new(), cache }
    }

    /// Serves the read-only file image for a node through the snapshot
    /// cache: a hit runs `f` over the cached bytes, a miss renders via
    /// [`Self::file_image`] and stores the result under the process's
    /// current generation stamps.
    fn cached_image<R>(
        &self,
        k: &Kernel,
        pid: Pid,
        kind: Kind,
        tid: Tid,
        f: impl FnOnce(&[u8]) -> R,
    ) -> SysResult<R> {
        let proc = k.proc(pid)?;
        let pr_gen = proc.pr_gen;
        // LWP-scoped images are additionally stamped with the LWP's own
        // generation so sibling and whole-process entries survive a
        // single thread's mutation.
        let lwp_gen = match kind {
            Kind::LwpStatus | Kind::LwpGregs => {
                proc.lwp(tid).ok_or(Errno::ESRCH)?.lwp_gen
            }
            _ => 0,
        };
        let mem_gen = k.objects.content_gen;
        let code = kind_code(kind);
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        // `f` is FnOnce but threads two mutually exclusive paths (cache
        // hit vs rebuilt image); the Option proves each path runs it at
        // most once.
        let mut f = Some(f);
        if let Some(r) = cache.lookup(pid.0, code, tid.0, pr_gen, mem_gen, lwp_gen, |b| {
            match f.take() {
                Some(g) => g(b),
                None => unreachable!("cache lookup invoked the image closure twice"),
            }
        }) {
            return Ok(r);
        }
        let img = Self::file_image(k, pid, kind, tid)?;
        let r = match f.take() {
            Some(g) => g(&img),
            None => unreachable!("image closure consumed without a cache hit"),
        };
        cache.insert(pid.0, code, tid.0, pr_gen, mem_gen, lwp_gen, img);
        Ok(r)
    }

    /// Renders the read-only file image for a node.
    fn file_image(k: &Kernel, pid: Pid, kind: Kind, tid: Tid) -> SysResult<Vec<u8>> {
        match kind {
            Kind::Status => ops::status_bytes(k, pid, None),
            Kind::PsInfo => Ok(PsInfo::capture(k, pid)?.to_bytes()),
            Kind::Map => {
                let maps = PrMap::capture_all(k, pid)?;
                let mut out = Vec::with_capacity(maps.len() * PrMap::WIRE_LEN);
                for m in &maps {
                    out.extend_from_slice(&m.to_bytes());
                }
                Ok(out)
            }
            Kind::CredFile => Ok(PrCred::capture(k, pid)?.to_bytes()),
            Kind::Usage => Ok(PrUsage::capture(k, pid)?.to_bytes()),
            Kind::LwpStatus => ops::status_bytes(k, pid, Some(tid)),
            Kind::LwpGregs => {
                let proc = k.proc(pid)?;
                let lwp = proc.lwp(tid).ok_or(Errno::ENOENT)?;
                Ok(lwp.gregs.to_bytes())
            }
            _ => Err(Errno::EISDIR),
        }
    }

    /// Executes one control record. Returns false when the record must
    /// block (the caller re-issues the write; consumed records are
    /// remembered).
    fn exec_ctl(
        k: &mut Kernel,
        caller: Pid,
        pid: Pid,
        tid: Option<Tid>,
        op: u32,
        payload: &[u8],
    ) -> SysResult<bool> {
        let _ = caller;
        // PCDSTOP has no flat `PIOC*` twin — a stop directive that does
        // not wait exists only in this write-based interface — so it is
        // handled before the shared request mapping.
        if op == PCDSTOP {
            match tid {
                Some(t) => Self::direct_stop_lwp(k, pid, t)?,
                None => ops::direct_stop(k, pid)?,
            }
            return Ok(true);
        }
        // Every other control op is the write-based spelling of a flat
        // ioctl request; the typed `Ioctl` enum is the single source of
        // the mapping shared with the flat dispatcher and the wire codec.
        let ioc = Ioctl::from_ctl_op(op).ok_or(Errno::EINVAL)?;
        match ioc {
            Ioctl::Stop => {
                match tid {
                    Some(t) => Self::direct_stop_lwp(k, pid, t)?,
                    None => ops::direct_stop(k, pid)?,
                }
                Ok(Self::stopped(k, pid, tid)?)
            }
            Ioctl::WStop => Ok(Self::stopped(k, pid, tid)?),
            Ioctl::Run => {
                ops::run(k, pid, tid, payload)?;
                Ok(true)
            }
            Ioctl::SetSigTrace => {
                ops::set_sig_trace(k, pid, payload)?;
                Ok(true)
            }
            Ioctl::SetFltTrace => {
                ops::set_flt_trace(k, pid, payload)?;
                Ok(true)
            }
            Ioctl::SetEntryTrace => {
                ops::set_entry_trace(k, pid, payload)?;
                Ok(true)
            }
            Ioctl::SetExitTrace => {
                ops::set_exit_trace(k, pid, payload)?;
                Ok(true)
            }
            Ioctl::Kill => {
                ops::kill(k, pid, payload)?;
                Ok(true)
            }
            Ioctl::UnKill => {
                ops::unkill(k, pid, payload)?;
                Ok(true)
            }
            Ioctl::SetSig => {
                ops::set_sig(k, pid, tid, payload)?;
                Ok(true)
            }
            Ioctl::SetHold => {
                ops::set_hold(k, pid, tid, payload)?;
                Ok(true)
            }
            Ioctl::SetRegs => {
                let mut regs = isa::GregSet::from_bytes(payload).ok_or(Errno::EINVAL)?;
                regs.normalize();
                ops::live(k, pid)?;
                let proc = k.proc_mut(pid)?;
                let lwp = match tid {
                    Some(t) => proc.lwp_mut(t).ok_or(Errno::ESRCH)?,
                    None => proc.rep_lwp_mut(),
                };
                if !lwp.is_stopped() {
                    return Err(Errno::EBUSY);
                }
                lwp.gregs = regs;
                Ok(true)
            }
            Ioctl::SetFpRegs => {
                let regs = isa::FpregSet::from_bytes(payload).ok_or(Errno::EINVAL)?;
                ops::live(k, pid)?;
                let proc = k.proc_mut(pid)?;
                let lwp = match tid {
                    Some(t) => proc.lwp_mut(t).ok_or(Errno::ESRCH)?,
                    None => proc.rep_lwp_mut(),
                };
                if !lwp.is_stopped() {
                    return Err(Errno::EBUSY);
                }
                lwp.fpregs = regs;
                Ok(true)
            }
            Ioctl::SetForkInherit | Ioctl::ClearForkInherit => {
                ops::live(k, pid)?;
                k.proc_mut(pid)?.trace.inherit_on_fork = ioc == Ioctl::SetForkInherit;
                Ok(true)
            }
            Ioctl::SetRunOnLastClose | Ioctl::ClearRunOnLastClose => {
                ops::live(k, pid)?;
                k.proc_mut(pid)?.trace.run_on_last_close = ioc == Ioctl::SetRunOnLastClose;
                Ok(true)
            }
            Ioctl::SetWatch => {
                ops::watch(k, pid, payload)?;
                Ok(true)
            }
            Ioctl::Nice => {
                ops::nice(k, pid, payload)?;
                Ok(true)
            }
            _ => Err(Errno::EINVAL),
        }
    }

    fn direct_stop_lwp(k: &mut Kernel, pid: Pid, tid: Tid) -> SysResult<()> {
        ops::live(k, pid)?;
        let proc = k.proc_mut(pid)?;
        let lwp = proc.lwp_mut(tid).ok_or(Errno::ESRCH)?;
        match &lwp.state {
            LwpState::Zombie => return Err(Errno::ESRCH),
            LwpState::Stopped(why) if why.is_event_stop() => {}
            LwpState::Stopped(_) => lwp.stop_directive = true,
            LwpState::Sleeping { interruptible: true, .. } => {
                lwp.stop_directive = true;
                lwp.state = LwpState::Runnable;
                lwp.sleep_interrupted = true;
                lwp.user_return_pending = true;
            }
            _ => {
                lwp.stop_directive = true;
                lwp.user_return_pending = true;
            }
        }
        Ok(())
    }

    fn stopped(k: &Kernel, pid: Pid, tid: Option<Tid>) -> SysResult<bool> {
        let proc = k.proc(pid)?;
        if proc.zombie {
            return Err(Errno::ENOENT);
        }
        Ok(match tid {
            Some(t) => proc.lwp(t).ok_or(Errno::ESRCH)?.is_event_stopped(),
            None => proc.is_event_stopped(),
        })
    }

    /// Validates that `data` frames cleanly as a sequence of
    /// `[op u32][len u32][payload]` control records covering the buffer
    /// exactly. Rejects a truncated final header, a payload length that
    /// overruns the buffer, an absurdly oversized payload, and trailing
    /// bytes that cannot be a record — all with `EINVAL` and before any
    /// record executes.
    fn check_ctl_framing(data: &[u8]) -> SysResult<()> {
        // No legitimate control record carries more than a register-set
        // image; anything larger is garbage even if the length field
        // happens to fit the buffer.
        const MAX_CTL_PAYLOAD: usize = 4096;
        let mut pos = 0;
        while pos < data.len() {
            if pos + 8 > data.len() {
                return Err(Errno::EINVAL);
            }
            let len = crate::bytes::le_u32(&data[pos + 4..])
                as usize;
            if len > MAX_CTL_PAYLOAD || pos + 8 + len > data.len() {
                return Err(Errno::EINVAL);
            }
            pos += 8 + len;
        }
        Ok(())
    }

    fn check_gen(k: &Kernel, pid: Pid, token: OpenToken) -> SysResult<()> {
        let proc = k.proc(pid)?;
        if proc.exec_gen as u64 != token.0 & !WRITABLE_BIT {
            return Err(Errno::EBADF);
        }
        Ok(())
    }
}

impl FileSystem<Kernel> for HierFs {
    fn type_name(&self) -> &'static str {
        "proc2"
    }

    fn root(&self) -> NodeId {
        NodeId(0)
    }

    fn lookup(&mut self, k: &mut Kernel, _cur: Pid, dir: NodeId, name: &str) -> SysResult<NodeId> {
        let (pid, kind, _tid) = unpack(dir).ok_or(Errno::ENOENT)?;
        match kind {
            Kind::Root => {
                let pid: u32 = name.parse().map_err(|_| Errno::ENOENT)?;
                k.proc(Pid(pid))?;
                Ok(pack(Pid(pid), kind_code(Kind::PidDir), 0))
            }
            Kind::PidDir => {
                k.proc(pid)?;
                let kind = match name {
                    "status" => Kind::Status,
                    "psinfo" => Kind::PsInfo,
                    "ctl" => Kind::Ctl,
                    "as" => Kind::As,
                    "map" => Kind::Map,
                    "cred" => Kind::CredFile,
                    "usage" => Kind::Usage,
                    "xstats" => Kind::XStats,
                    "lwp" => Kind::LwpDir,
                    _ => return Err(Errno::ENOENT),
                };
                Ok(pack(pid, kind_code(kind), 0))
            }
            Kind::LwpDir => {
                let tid: u32 = name.parse().map_err(|_| Errno::ENOENT)?;
                let proc = k.proc(pid)?;
                proc.lwp(Tid(tid)).ok_or(Errno::ENOENT)?;
                Ok(pack(pid, kind_code(Kind::LwpSub), tid))
            }
            Kind::LwpSub => {
                let (_, _, tid) = unpack(dir).ok_or(Errno::ENOENT)?;
                let kind = match name {
                    "status" => Kind::LwpStatus,
                    "ctl" => Kind::LwpCtl,
                    "gregs" => Kind::LwpGregs,
                    _ => return Err(Errno::ENOENT),
                };
                Ok(pack(pid, kind_code(kind), tid.0))
            }
            _ => Err(Errno::ENOTDIR),
        }
    }

    fn getattr(&mut self, k: &mut Kernel, node: NodeId) -> SysResult<Metadata> {
        let (pid, kind, tid) = unpack(node).ok_or(Errno::ENOENT)?;
        if kind == Kind::Root {
            return Ok(Metadata {
                kind: VnodeKind::Directory,
                mode: 0o555,
                uid: 0,
                gid: 0,
                size: k.procs.len() as u64,
                nlink: 2,
                mtime: k.clock / HZ,
            });
        }
        let proc = k.proc(pid)?;
        let (vkind, mode, size) = match kind {
            Kind::PidDir | Kind::LwpDir | Kind::LwpSub => (VnodeKind::Directory, 0o500, 0),
            Kind::Ctl | Kind::LwpCtl => (VnodeKind::Regular, 0o200, 0),
            Kind::As => (VnodeKind::Regular, 0o600, proc.aspace.total_size()),
            // Fixed-size counter image; changes every retired
            // instruction, so it bypasses the snapshot cache.
            Kind::XStats => (VnodeKind::Regular, 0o400, PrXStats::WIRE_LEN as u64),
            _ => {
                let img_len = self
                    .cached_image(k, pid, kind, tid, |b| b.len() as u64)
                    .unwrap_or(0);
                (VnodeKind::Regular, 0o400, img_len)
            }
        };
        Ok(Metadata {
            kind: vkind,
            mode,
            uid: proc.cred.ruid,
            gid: proc.cred.rgid,
            size,
            nlink: 1,
            mtime: proc.start_time / HZ,
        })
    }

    fn readdir(&mut self, k: &mut Kernel, _cur: Pid, dir: NodeId) -> SysResult<Vec<DirEntry>> {
        let (pid, kind, tid) = unpack(dir).ok_or(Errno::ENOENT)?;
        match kind {
            Kind::Root => {
                let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(list) = cache.dir(DirSlot::Hier, k.table_gen) {
                    return Ok(list);
                }
                let list: Vec<DirEntry> = k
                    .procs
                    .values()
                    .map(|p| DirEntry {
                        name: p.pid.0.to_string(),
                        node: pack(p.pid, kind_code(Kind::PidDir), 0),
                    })
                    .collect();
                cache.retain_pids(|pid| k.procs.contains_key(&pid));
                cache.set_dir(DirSlot::Hier, k.table_gen, list.clone());
                Ok(list)
            }
            Kind::PidDir => {
                k.proc(pid)?;
                Ok([
                    ("as", Kind::As),
                    ("cred", Kind::CredFile),
                    ("ctl", Kind::Ctl),
                    ("lwp", Kind::LwpDir),
                    ("map", Kind::Map),
                    ("psinfo", Kind::PsInfo),
                    ("status", Kind::Status),
                    ("usage", Kind::Usage),
                    ("xstats", Kind::XStats),
                ]
                .into_iter()
                .map(|(n, kd)| DirEntry { name: n.to_string(), node: pack(pid, kind_code(kd), 0) })
                .collect())
            }
            Kind::LwpDir => {
                let proc = k.proc(pid)?;
                Ok(proc
                    .lwps
                    .iter()
                    .filter(|l| l.state != LwpState::Zombie)
                    .map(|l| DirEntry {
                        name: l.tid.0.to_string(),
                        node: pack(pid, kind_code(Kind::LwpSub), l.tid.0),
                    })
                    .collect())
            }
            Kind::LwpSub => Ok(["status", "ctl", "gregs"]
                .into_iter()
                .map(|n| {
                    let kd = match n {
                        "status" => Kind::LwpStatus,
                        "ctl" => Kind::LwpCtl,
                        _ => Kind::LwpGregs,
                    };
                    DirEntry { name: n.to_string(), node: pack(pid, kind_code(kd), tid.0) }
                })
                .collect()),
            _ => Err(Errno::ENOTDIR),
        }
    }

    fn open(
        &mut self,
        k: &mut Kernel,
        _cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> SysResult<OpenToken> {
        let (pid, kind, _) = unpack(node).ok_or(Errno::ENOENT)?;
        if kind == Kind::Root {
            return Ok(OpenToken(0));
        }
        let proc = k.proc_mut(pid)?;
        if !cred.can_control(&proc.cred) {
            return Err(Errno::EACCES);
        }
        match kind {
            Kind::Ctl | Kind::LwpCtl if !flags.write => return Err(Errno::EACCES),
            Kind::Ctl | Kind::LwpCtl | Kind::As => {}
            _ if flags.write => return Err(Errno::EACCES),
            _ => {}
        }
        if flags.write {
            if proc.trace.excl {
                return Err(Errno::EBUSY);
            }
            if flags.excl {
                if proc.trace.writers > 0 {
                    return Err(Errno::EBUSY);
                }
                proc.trace.excl = true;
            }
            proc.trace.writers += 1;
        }
        let mut token = proc.exec_gen as u64;
        if flags.write {
            token |= WRITABLE_BIT;
        }
        Ok(OpenToken(token))
    }

    fn close(&mut self, k: &mut Kernel, _cur: Pid, node: NodeId, token: OpenToken, flags: OFlags) {
        self.ctl_progress.remove(&(node.0, token.0));
        // A blocked batch whose target exited leaves a progress entry
        // under a different (node, token) key than the one closing now;
        // such entries can never be resumed (pids are not reused), so
        // sweep them whenever any descriptor closes.
        self.ctl_progress
            .retain(|(n, _), _| unpack(NodeId(*n)).is_some_and(|(p, _, _)| k.procs.contains_key(&p.0)));
        let Some((pid, kind, _)) = unpack(node) else { return };
        if kind == Kind::Root || !flags.write {
            return;
        }
        let Ok(proc) = k.proc_mut(pid) else { return };
        proc.trace.writers = proc.trace.writers.saturating_sub(1);
        if flags.excl {
            proc.trace.excl = false;
        }
        if proc.trace.writers == 0 && proc.trace.run_on_last_close {
            proc.trace.clear_tracing();
            let tids: Vec<_> = proc
                .lwps
                .iter()
                .filter(|l| l.is_event_stopped())
                .map(|l| l.tid)
                .collect();
            for l in &mut proc.lwps {
                l.stop_directive = false;
            }
            for t in tids {
                let _ = k.run_lwp(pid, t, ksim::RunOpts::default());
            }
        }
    }

    fn read(
        &mut self,
        k: &mut Kernel,
        _cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        buf: &mut [u8],
    ) -> SysResult<IoReply> {
        let (pid, kind, tid) = unpack(node).ok_or(Errno::ENOENT)?;
        Self::check_gen(k, pid, token)?;
        match kind {
            Kind::As => {
                let proc = k.proc(pid)?;
                if proc.zombie {
                    return Err(Errno::EIO);
                }
                let span = proc.aspace.valid_span(off, buf.len() as u64) as usize;
                if span == 0 {
                    return Err(Errno::EIO);
                }
                proc.aspace
                    .kernel_read(&k.objects, off, &mut buf[..span])
                    .map_err(|_| Errno::EIO)?;
                Ok(IoReply::Done(span))
            }
            Kind::Ctl | Kind::LwpCtl => Err(Errno::EACCES),
            Kind::Root | Kind::PidDir | Kind::LwpDir | Kind::LwpSub => Err(Errno::EISDIR),
            // Rendered fresh on every read: the fast-path counters
            // advance with every retired instruction, and nothing
            // stamps `pr_gen` for them, so the snapshot cache would
            // serve stale numbers.
            Kind::XStats => {
                let img = PrXStats::capture(k, pid)?.to_bytes();
                let off = off as usize;
                if off >= img.len() {
                    return Ok(IoReply::Done(0));
                }
                let n = buf.len().min(img.len() - off);
                buf[..n].copy_from_slice(&img[off..off + n]);
                Ok(IoReply::Done(n))
            }
            _ => self.cached_image(k, pid, kind, tid, |img| {
                let off = off as usize;
                if off >= img.len() {
                    return IoReply::Done(0);
                }
                let n = buf.len().min(img.len() - off);
                buf[..n].copy_from_slice(&img[off..off + n]);
                IoReply::Done(n)
            }),
        }
    }

    fn write(
        &mut self,
        k: &mut Kernel,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> SysResult<IoReply> {
        let (pid, kind, tid) = unpack(node).ok_or(Errno::ENOENT)?;
        Self::check_gen(k, pid, token)?;
        if token.0 & WRITABLE_BIT == 0 {
            return Err(Errno::EBADF);
        }
        match kind {
            Kind::As => {
                let ksim::Kernel { procs, objects, .. } = k;
                let proc = procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
                if proc.zombie {
                    return Err(Errno::EIO);
                }
                let span = proc.aspace.valid_span(off, data.len() as u64) as usize;
                if span == 0 {
                    return Err(Errno::EIO);
                }
                proc.aspace
                    .kernel_write(objects, off, &data[..span])
                    .map_err(|d| match d {
                        // Same ENOMEM discipline as the flat face: a
                        // denied copy-on-write frame is typed, not EIO.
                        vm::AccessDenied::NoMemory { .. } => Errno::ENOMEM,
                        _ => Errno::EIO,
                    })?;
                // Private-overlay writes bypass the shared page cache's
                // generation; stamp the owner explicitly.
                proc.touch();
                Ok(IoReply::Done(span))
            }
            Kind::Ctl | Kind::LwpCtl => {
                let ctl_tid = (kind == Kind::LwpCtl).then_some(tid);
                let key = (node.0, token.0);
                let mut pos = self.ctl_progress.remove(&key).unwrap_or(0);
                // Validate the framing of the *entire* batch before
                // executing anything: a truncated header, a length that
                // overruns the buffer, or trailing garbage that does not
                // frame as a record rejects the whole write with no side
                // effects. (Semantic failures inside a well-framed batch
                // still stop at the offending record, SVR4-style.)
                Self::check_ctl_framing(&data[pos.min(data.len())..])?;
                while pos < data.len() {
                    let op =
                        crate::bytes::le_u32(&data[pos..]);
                    let len =
                        crate::bytes::le_u32(&data[pos + 4..])
                            as usize;
                    let payload = &data[pos + 8..pos + 8 + len];
                    match Self::exec_ctl(k, cur, pid, ctl_tid, op, payload) {
                        Ok(true) => {
                            pos += 8 + len;
                            // The record may have changed state the
                            // kernel primitives did not stamp (trace
                            // sets, registers, flags). An LWP-scoped
                            // record stamps only its own LWP, so sibling
                            // and whole-process snapshots stay cached.
                            if let Ok(p) = k.proc_mut(pid) {
                                match ctl_tid {
                                    Some(t) => p.touch_lwp(t),
                                    None => p.touch(),
                                }
                            }
                        }
                        Ok(false) => {
                            // Blocking op not yet satisfied: remember the
                            // records already consumed and suspend.
                            self.ctl_progress.insert(key, pos);
                            return Ok(IoReply::Block);
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(IoReply::Done(data.len()))
            }
            _ => Err(Errno::EACCES),
        }
    }

    fn ioctl(
        &mut self,
        _k: &mut Kernel,
        _cur: Pid,
        _node: NodeId,
        _token: OpenToken,
        _req: u32,
        _arg: &[u8],
    ) -> SysResult<IoctlReply> {
        // The whole point of the restructuring: no ioctl operations.
        Err(Errno::ENOTTY)
    }

    fn poll(&mut self, k: &mut Kernel, node: NodeId, _token: OpenToken) -> SysResult<PollStatus> {
        let Some((pid, kind, tid)) = unpack(node) else {
            return Err(Errno::ENOENT);
        };
        if kind == Kind::Root {
            return Ok(PollStatus { readable: true, writable: false, hangup: false });
        }
        match k.proc(pid) {
            Err(_) => Ok(PollStatus { readable: false, writable: false, hangup: true }),
            Ok(p) if p.zombie => Ok(PollStatus { readable: false, writable: false, hangup: true }),
            Ok(p) => {
                let stopped = match kind {
                    Kind::LwpStatus | Kind::LwpCtl | Kind::LwpGregs => {
                        p.lwp(tid).map(|l| l.is_event_stopped()).unwrap_or(false)
                    }
                    _ => p.is_event_stopped(),
                };
                Ok(PollStatus { readable: stopped, writable: true, hangup: false })
            }
        }
    }
}

/// Builds one control record.
pub fn ctl_record(op: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&op.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Concatenates several control records into one batched write — the
/// restructuring's performance trick.
pub fn ctl_batch(records: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (op, payload) in records {
        out.extend_from_slice(&ctl_record(*op, payload));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn node_packing_roundtrip() {
        for (pid, kind, tid) in [
            (Pid(0), Kind::PidDir, 0u32),
            (Pid(42), Kind::Status, 0),
            (Pid(9999), Kind::LwpStatus, 7),
            (Pid(1), Kind::Ctl, 0),
        ] {
            let node = pack(pid, kind_code(kind), tid);
            let (p, k2, t) = unpack(node).expect("unpack");
            assert_eq!((p, k2, t.0), (pid, kind, tid));
        }
        assert_eq!(unpack(NodeId(0)).expect("root").1, Kind::Root);
    }

    #[test]
    fn ctl_record_layout() {
        let r = ctl_record(PCKILL, &9u32.to_le_bytes());
        assert_eq!(r.len(), 12);
        assert_eq!(u32::from_le_bytes(r[0..4].try_into().expect("4")), PCKILL);
        assert_eq!(u32::from_le_bytes(r[4..8].try_into().expect("4")), 4);
        let batch = ctl_batch(&[(PCDSTOP, vec![]), (PCKILL, 9u32.to_le_bytes().to_vec())]);
        assert_eq!(batch.len(), 8 + 12);
    }
}
