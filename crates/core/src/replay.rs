//! Replay: re-materializing a recorded run at any virtual tick.
//!
//! The `ksim` layer records a run as its construction [`SimConfig`] plus
//! the log of host-boundary inputs ([`ksim::Recording`]); this module
//! closes the loop a layer up, where the `/proc` faces live:
//!
//! * [`build_sim`] is the one construction path that interprets a
//!   config's mount plans — flat, hierarchical, or remote-over-the-wire
//!   `/proc` — so a replayed run gets byte-identical mounts.
//! * [`replay`] re-executes a recording through the same public host
//!   API **with recording on**: the fresh recorder re-computes every
//!   digest, and the first mismatch against the original log is a typed
//!   [`ReplayDivergence`] naming the exact tick. A clean replay leaves
//!   the new system's log equal to the applied prefix, so navigation
//!   can keep recording seamlessly from wherever it landed.
//! * [`goto_tick`] re-materializes a *live* recorded system at an
//!   earlier position: restore the nearest copy-on-write snapshot at or
//!   below the target and replay the remainder. Remote mounts take the
//!   fast path too — their wire-session state (sequence numbers,
//!   fault-generator position, queues) travels in the snapshot's
//!   [`Snap::wires`] bank and is replanted into the freshly built
//!   [`RemoteFs`]. The full rebuild remains the fallback when the
//!   resumed run diverges (file-system-layer state such as cache
//!   counters is not snapshotted — a divergence there is honest, and
//!   the full rebuild is always exact).
//! * [`replay_file`] closes the durability loop: a recfile image saved
//!   by one process ([`ksim::recfile`]) parses, replays byte-identically
//!   and re-banks its snapshots in a fresh one.

use ksim::record::Snap;
use ksim::{
    FsSlot, Input, MountPlan, Pid, Recorder, Recording, ReplayDivergence, SimConfig, System,
};
use vfs::remote::RemoteFs;

use crate::snap::snap_handle;
use crate::{HierFs, ProcFs};

/// Builds a [`System`] from a config: kernel-level knobs via
/// [`System::with_config`], then every mount plan interpreted here —
/// the `/proc` faces share one snapshot cache, and remote plans wrap
/// the flat face in a [`RemoteFs`] with the full ioctl wire table.
pub fn build_sim(cfg: &SimConfig) -> System {
    let mut sys = System::with_config(cfg.clone());
    let cache = snap_handle();
    for (path, plan) in &cfg.mounts {
        match plan {
            MountPlan::ProcFlat => {
                sys.mount(path, Box::new(ProcFs::with_cache(cache.clone())));
            }
            MountPlan::ProcHier => {
                sys.mount(path, Box::new(HierFs::with_cache(cache.clone())));
            }
            MountPlan::RemoteProc(w) => {
                let fs = RemoteFs::new(Box::new(ProcFs::with_cache(cache.clone())))
                    .with_ioctl_table(crate::ioctl::wire_table())
                    .with_config(w);
                sys.mount(path, Box::new(fs));
            }
        }
    }
    sys
}

/// Re-issues one recorded input through the public host API. Results
/// are discarded — the recording wrapper inside each call re-computes
/// the digest that is then compared against the log.
fn apply(sys: &mut System, input: &Input) {
    match input {
        Input::InstallFile { path, mode, bytes } => sys.install_file(path, *mode, bytes),
        Input::InstallDir { path, mode } => sys.install_dir(path, *mode),
        Input::SpawnHosted { name, cred } => {
            sys.spawn_hosted(name, cred.clone());
        }
        Input::SpawnProgram { parent, path, argv } => {
            let argv: Vec<&str> = argv.iter().map(String::as_str).collect();
            let _ = sys.spawn_program(Pid(*parent), path, &argv);
        }
        Input::Steps { n } => {
            for _ in 0..*n {
                sys.step();
            }
        }
        Input::HostOpen { pid, path, flags } => {
            let _ = sys.host_open(Pid(*pid), path, *flags);
        }
        Input::HostClose { pid, fd } => {
            let _ = sys.host_close(Pid(*pid), *fd as usize);
        }
        Input::HostRead { pid, fd, len } => {
            let mut buf = vec![0u8; *len as usize];
            let _ = sys.host_read(Pid(*pid), *fd as usize, &mut buf);
        }
        Input::HostWrite { pid, fd, data } => {
            let _ = sys.host_write(Pid(*pid), *fd as usize, data);
        }
        Input::HostLseek { pid, fd, off, whence } => {
            let _ = sys.host_lseek(Pid(*pid), *fd as usize, *off, *whence);
        }
        Input::HostIoctl { pid, fd, req, arg } => {
            let _ = sys.host_ioctl(Pid(*pid), *fd as usize, *req, arg);
        }
        Input::HostKill { pid, target, sig } => {
            let _ = sys.host_kill(Pid(*pid), Pid(*target), *sig as usize);
        }
        Input::HostWait { pid } => {
            let _ = sys.host_wait(Pid(*pid));
        }
        Input::HostPoll { pid, fds } => {
            let fds: Vec<usize> = fds.iter().map(|&f| f as usize).collect();
            let _ = sys.host_poll(Pid(*pid), &fds);
        }
        Input::HostPollIn { pid, fds } => {
            let fds: Vec<usize> = fds.iter().map(|&f| f as usize).collect();
            let _ = sys.host_poll_in(Pid(*pid), &fds);
        }
        Input::HostPollFd { pid, fd } => {
            let _ = sys.poll_fd(Pid(*pid), *fd as usize);
        }
    }
}

/// Applies records `from..to` of `rec` to `sys` (which must hold the
/// first `from` records in its own log), comparing each re-computed
/// digest against the original. The first mismatch is returned as a
/// typed divergence at its exact tick and counted on the recorder.
fn apply_range(
    sys: &mut System,
    rec: &Recording,
    from: usize,
    to: usize,
) -> Result<(), ReplayDivergence> {
    for i in from..to {
        apply(sys, &rec.records[i].input);
        let got = sys
            .kernel
            .recorder
            .as_ref()
            .and_then(|r| r.records.get(i))
            .map(|r| r.digest);
        let expected = rec.records[i].digest;
        if let Some(r) = sys.kernel.recorder.as_mut() {
            r.stats.replays += 1;
        }
        if got != Some(expected) {
            if let Some(r) = sys.kernel.recorder.as_mut() {
                r.stats.divergences += 1;
            }
            return Err(ReplayDivergence { tick: i, expected, got: got.unwrap_or(0) });
        }
    }
    Ok(())
}

/// Replays the first `k` records of `rec` into a freshly built system.
/// On success the returned system's own log equals the applied prefix,
/// and recording continues from there.
pub fn replay_to(rec: &Recording, k: usize) -> Result<System, ReplayDivergence> {
    let mut sys = build_sim(&rec.config);
    apply_range(&mut sys, rec, 0, k.min(rec.len()))?;
    Ok(sys)
}

/// Replays `rec` in full. Byte-identical reproduction or a typed
/// divergence at the exact tick — never silent drift.
pub fn replay(rec: &Recording) -> Result<System, ReplayDivergence> {
    replay_to(rec, rec.len())
}

/// Resumes from a copy-on-write snapshot: fresh mounts from
/// [`build_sim`], the snapshot's kernel and root file system
/// transplanted in, the banked wire-transport state replanted into the
/// remote mounts, a recorder pre-loaded with the applied prefix, then
/// records `snap.pos..k` replayed on top. `None` when the snapshot
/// cannot be applied to this config's mounts (the full rebuild is the
/// caller's fallback).
fn resume_from_snap(rec: &Recording, snap: &Snap, k: usize) -> Option<System> {
    let mut sys = build_sim(&rec.config);
    sys.kernel = (*snap.kernel).clone();
    sys.fss[0] = FsSlot::Mem(snap.root.clone());
    // Every wire-carrying slot must have banked state in the snapshot
    // and accept it back; anything else means the mount shape changed
    // under the recording and resume would be dishonest.
    for (i, slot) in sys.fss.iter_mut().enumerate() {
        let FsSlot::Dyn(fs) = slot else { continue };
        if fs.wire_snapshot().is_none() {
            continue; // not a wire-carrying mount; rebuilt fresh is exact
        }
        let banked = snap.wires.iter().find(|(s, _)| *s == i).map(|(_, w)| w)?;
        if !fs.wire_restore(banked) {
            return None;
        }
    }
    let mut r = Recorder::new(rec.config.clone());
    r.records = rec.records[..snap.pos].to_vec();
    r.stats.restores = 1;
    sys.kernel.recorder = Some(Box::new(r));
    apply_range(&mut sys, rec, snap.pos, k).ok()?;
    Some(sys)
}

/// Re-materializes the run recorded by `sys` at position `k` (clamped
/// to the log length): nearest snapshot plus replay of the remainder
/// when possible — including over remote mounts, whose transport state
/// rides in the snapshot — full rebuild otherwise. The returned system
/// is *live*: it records, so stepping it forward extends its log from
/// tick `k`.
pub fn goto_tick(sys: &System, k: usize) -> Result<System, ReplayDivergence> {
    let Some(rec) = sys.kernel.recorder.as_ref() else {
        return Ok(build_sim(&SimConfig::new().record(true)));
    };
    let recording = rec.recording();
    let k = k.min(recording.len());
    if let Some(snap) = rec.nearest_snap(k) {
        if snap.pos > 0 {
            // A failed resume (divergence from non-snapshotted
            // file-system-layer state, or a mount-shape mismatch) falls
            // through to the full rebuild, which is always exact.
            if let Some(restored) = resume_from_snap(&recording, snap, k) {
                return Ok(restored);
            }
        }
    }
    replay_to(&recording, k)
}

/// Why a recfile image failed to become a live system.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadError {
    /// The image failed structural validation.
    File(ksim::RecfileError),
    /// The image parsed but its recording did not reproduce.
    Replay(ReplayDivergence),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::File(e) => write!(f, "{e}"),
            LoadError::Replay(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads a recfile image saved by [`ksim::System::save_recfile`] —
/// possibly in another process — and replays it in full. Recording is
/// re-enabled (the file's config deliberately carries `record = false`),
/// so the returned system re-banks its snapshots at the same positions
/// the original run did and keeps recording from the end of the log.
/// The recorder's file counters are stamped on success.
pub fn replay_file(bytes: &[u8]) -> Result<System, LoadError> {
    let file = ksim::recfile::load(bytes).map_err(LoadError::File)?;
    let mut rec = file.recording;
    rec.config.record = true;
    let mut sys = replay(&rec).map_err(LoadError::Replay)?;
    if let Some(r) = sys.kernel.recorder.as_mut() {
        r.stats.file_loads += 1;
        r.stats.file_bytes += bytes.len() as u64;
    }
    Ok(sys)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn recorded_run() -> System {
        let mut sys = build_sim(&SimConfig::standard().record(true).snapshot_every(4));
        sys.install_dir("/tmp", 0o777);
        let ctl = sys.spawn_hosted("ctl", ksim::Cred::superuser());
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", ctl.0), vfs::OFlags::rdonly())
            .expect("open self");
        let mut buf = [0u8; 64];
        let _ = sys.host_read(ctl, fd, &mut buf);
        sys.host_close(ctl, fd).expect("close");
        sys.run_idle(50);
        sys
    }

    #[test]
    fn clean_replay_is_byte_identical() {
        let sys = recorded_run();
        let rec = sys.recording().expect("recording on");
        let replayed = replay(&rec).expect("replay");
        assert_eq!(replayed.recording().expect("recording").records, rec.records);
    }

    #[test]
    fn corrupt_record_diverges_at_exact_tick() {
        let sys = recorded_run();
        let mut rec = sys.recording().expect("recording on");
        let tick = rec.len() / 2;
        rec.records[tick].digest ^= 1;
        let err = match replay(&rec) {
            Err(e) => e,
            Ok(_) => panic!("must diverge"),
        };
        assert_eq!(err.tick, tick);
    }

    #[test]
    fn goto_lands_on_prefix() {
        let sys = recorded_run();
        let rec = sys.recording().expect("recording on");
        let k = rec.len() - 1;
        let back = goto_tick(&sys, k).expect("goto");
        let log = back.recording().expect("recording on");
        assert_eq!(log.records[..], rec.records[..k]);
    }
}
