//! The flat SVR4 `/proc` file system type.
//!
//! "The name of each entry is a decimal number corresponding to the
//! process id. The owner and group of the file are the process's real
//! user-id and group-id, but permission to open the file is more
//! restrictive than traditional file system permissions. The reported
//! 'size' is the total virtual memory size of the process."
//!
//! Node encoding: node 0 is the `/proc` directory; node `pid+1` is the
//! process file for `pid`. The open token carries the exec generation at
//! open time; a set-id exec bumps the generation, after which "no further
//! operation on that file descriptor will succeed except close(2)".

use crate::ioctl::{
    needs_write, prioctl, PIOCCACHESTATS, PIOCCRED, PIOCMAP, PIOCPSINFO, PIOCSTATUS, PIOCUSAGE,
};
use crate::snap::{snap_handle, DirSlot, SnapHandle};
use ksim::proc::LwpState;
use ksim::{Kernel, HZ};
use std::sync::PoisonError;
use vfs::{
    Cred, DirEntry, Errno, FileSystem, IoReply, IoctlReply, Metadata, NodeId, OFlags, OpenToken,
    Pid, PollStatus, SysResult, VnodeKind,
};

/// The flat `/proc` file system. All tracing and bookkeeping state
/// lives in the kernel, where it belongs (tracing must survive any
/// particular descriptor); the file system itself holds only the
/// snapshot cache, which is pure memoisation of kernel state.
#[derive(Debug)]
pub struct ProcFs {
    cache: SnapHandle,
}

impl Default for ProcFs {
    fn default() -> ProcFs {
        ProcFs::new()
    }
}

/// The snapshot-cache kind code a cacheable pure-read request maps to.
/// The codes (and the cached bytes) are shared with the hierarchical
/// interface, whose file images are byte-identical renders.
fn flat_cache_kind(req: u32) -> Option<u8> {
    match req {
        PIOCSTATUS => Some(2),
        PIOCPSINFO => Some(3),
        PIOCMAP => Some(6),
        PIOCCRED => Some(7),
        PIOCUSAGE => Some(8),
        _ => None,
    }
}

impl ProcFs {
    /// Creates the file system with a private snapshot cache (mount it
    /// with `System::mount`).
    pub fn new() -> ProcFs {
        ProcFs { cache: snap_handle() }
    }

    /// Creates the file system around a shared snapshot cache —
    /// [`crate::mount_standard`] passes one handle to both generations
    /// so their byte-identical renders share entries.
    pub fn with_cache(cache: SnapHandle) -> ProcFs {
        ProcFs { cache }
    }

    fn node_pid(node: NodeId) -> SysResult<Pid> {
        if node.0 == 0 {
            return Err(Errno::EISDIR);
        }
        Ok(Pid((node.0 - 1) as u32))
    }

    fn check_gen(k: &Kernel, pid: Pid, token: OpenToken) -> SysResult<()> {
        let proc = k.proc(pid)?;
        if proc.exec_gen as u64 != token.0 & !WRITABLE_BIT {
            // The descriptor predates a set-id exec: dead, except for
            // close.
            return Err(Errno::EBADF);
        }
        Ok(())
    }
}

impl FileSystem<Kernel> for ProcFs {
    fn type_name(&self) -> &'static str {
        "proc"
    }

    fn root(&self) -> NodeId {
        NodeId(0)
    }

    fn lookup(&mut self, k: &mut Kernel, _cur: Pid, dir: NodeId, name: &str) -> SysResult<NodeId> {
        if dir.0 != 0 {
            return Err(Errno::ENOTDIR);
        }
        if name.is_empty() || name.len() > 10 || !name.bytes().all(|b| b.is_ascii_digit()) {
            return Err(Errno::ENOENT);
        }
        let pid: u32 = name.parse().map_err(|_| Errno::ENOENT)?;
        k.proc(Pid(pid))?;
        Ok(NodeId(pid as u64 + 1))
    }

    fn getattr(&mut self, k: &mut Kernel, node: NodeId) -> SysResult<Metadata> {
        if node.0 == 0 {
            return Ok(Metadata {
                kind: VnodeKind::Directory,
                mode: 0o555,
                uid: 0,
                gid: 0,
                size: k.procs.len() as u64,
                nlink: 2,
                mtime: k.clock / HZ,
            });
        }
        let pid = Self::node_pid(node)?;
        let proc = k.proc(pid)?;
        Ok(Metadata {
            kind: VnodeKind::Proc,
            mode: 0o600,
            uid: proc.cred.ruid,
            gid: proc.cred.rgid,
            size: proc.aspace.total_size(),
            nlink: 1,
            mtime: proc.start_time / HZ,
        })
    }

    fn readdir(&mut self, k: &mut Kernel, _cur: Pid, dir: NodeId) -> SysResult<Vec<DirEntry>> {
        if dir.0 != 0 {
            return Err(Errno::ENOTDIR);
        }
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(list) = cache.dir(DirSlot::Flat, k.table_gen) {
            return Ok(list);
        }
        // Five-digit zero-padded names, exactly as in the paper's
        // Figure 1. Digits are emitted by hand into a reused buffer —
        // `format!` per pid dominated the listing profile.
        let mut name = [0u8; 10];
        let list: Vec<DirEntry> = k
            .procs
            .values()
            .map(|p| {
                let mut v = p.pid.0;
                let mut i = name.len();
                while v > 0 || i > name.len() - 5 {
                    i -= 1;
                    name[i] = b'0' + (v % 10) as u8;
                    v /= 10;
                }
                DirEntry {
                    name: String::from_utf8_lossy(&name[i..]).into_owned(),
                    node: NodeId(p.pid.0 as u64 + 1),
                }
            })
            .collect();
        // The table changed shape since the last rebuild: any cached
        // image of a since-departed pid can never validate again (pids
        // are not reused), so drop them here.
        cache.retain_pids(|pid| k.procs.contains_key(&pid));
        cache.set_dir(DirSlot::Flat, k.table_gen, list.clone());
        Ok(list)
    }

    fn open(
        &mut self,
        k: &mut Kernel,
        _cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> SysResult<OpenToken> {
        if node.0 == 0 {
            if flags.write {
                return Err(Errno::EISDIR);
            }
            return Ok(OpenToken(0));
        }
        let pid = Self::node_pid(node)?;
        let proc = k.proc_mut(pid)?;
        // "Permission to open a /proc file requires that both the uid and
        // gid of the traced process match those of the controlling
        // process; setuid and setgid processes can be opened only by the
        // super-user."
        if !cred.can_control(&proc.cred) {
            return Err(Errno::EACCES);
        }
        if flags.write {
            // Exclusive-use arbitration: "a /proc file can be opened for
            // exclusive read/write use ... in this way a controlling
            // process can avoid collisions with other controlling
            // processes. Read-only opens are unaffected."
            if proc.trace.excl {
                return Err(Errno::EBUSY);
            }
            if flags.excl {
                if proc.trace.writers > 0 {
                    return Err(Errno::EBUSY);
                }
                proc.trace.excl = true;
            }
            proc.trace.writers += 1;
        }
        let mut token = proc.exec_gen as u64;
        if flags.write {
            token |= WRITABLE_BIT;
        }
        Ok(OpenToken(token))
    }

    fn close(&mut self, k: &mut Kernel, _cur: Pid, node: NodeId, _token: OpenToken, flags: OFlags) {
        let Ok(pid) = Self::node_pid(node) else { return };
        let Ok(proc) = k.proc_mut(pid) else { return };
        if !flags.write {
            return;
        }
        proc.trace.writers = proc.trace.writers.saturating_sub(1);
        if flags.excl {
            proc.trace.excl = false;
        }
        if proc.trace.writers == 0 && proc.trace.run_on_last_close {
            // "When this flag is set and the last writable /proc file
            // descriptor for the process is closed, all of the tracing
            // flags are cleared and, if the process is stopped, it is set
            // running."
            proc.trace.clear_tracing();
            let tids: Vec<_> = proc
                .lwps
                .iter()
                .filter(|l| l.is_event_stopped())
                .map(|l| l.tid)
                .collect();
            for l in &mut proc.lwps {
                l.stop_directive = false;
            }
            for tid in tids {
                let _ = k.run_lwp(pid, tid, ksim::RunOpts::default());
            }
        }
    }

    fn read(
        &mut self,
        k: &mut Kernel,
        _cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        buf: &mut [u8],
    ) -> SysResult<IoReply> {
        let pid = Self::node_pid(node)?;
        Self::check_gen(k, pid, token)?;
        let proc = k.proc(pid)?;
        if proc.zombie {
            return Err(Errno::EIO);
        }
        // "A process file contains data only at file offsets that match
        // valid virtual addresses ... operations with a file offset in an
        // unmapped area fail. I/O operations that extend into unmapped
        // areas do not fail but are truncated at the boundary."
        let span = proc.aspace.valid_span(off, buf.len() as u64) as usize;
        if span == 0 {
            return Err(Errno::EIO);
        }
        proc.aspace
            .kernel_read(&k.objects, off, &mut buf[..span])
            .map_err(|_| Errno::EIO)?;
        Ok(IoReply::Done(span))
    }

    fn write(
        &mut self,
        k: &mut Kernel,
        _cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> SysResult<IoReply> {
        let pid = Self::node_pid(node)?;
        Self::check_gen(k, pid, token)?;
        let Kernel { procs, objects, .. } = k;
        let proc = procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
        if proc.zombie {
            return Err(Errno::EIO);
        }
        // Truncation applies to writes as well as reads; copy-on-write is
        // performed by the VM layer so breakpoints planted through here
        // never corrupt other processes or the executable file.
        let span = proc.aspace.valid_span(off, data.len() as u64) as usize;
        if span == 0 {
            return Err(Errno::EIO);
        }
        proc.aspace
            .kernel_write(objects, off, &data[..span])
            .map_err(|d| match d {
                // Copy-on-write frame materialisation failed under
                // injected pressure: a typed ENOMEM, not a generic EIO.
                vm::AccessDenied::NoMemory { .. } => Errno::ENOMEM,
                _ => Errno::EIO,
            })?;
        // A private-overlay write bypasses the shared page cache's
        // generation, so stamp the owner explicitly.
        proc.touch();
        Ok(IoReply::Done(span))
    }

    fn ioctl(
        &mut self,
        k: &mut Kernel,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        req: u32,
        arg: &[u8],
    ) -> SysResult<IoctlReply> {
        let pid = Self::node_pid(node).map_err(|_| Errno::ENOTTY)?;
        Self::check_gen(k, pid, token)?;
        if needs_write(req) {
            // Enforced by the caller's open mode; the System layer stores
            // the mode on the open file. The flat interface additionally
            // re-derives it here from the kernel's writer accounting:
            // a read-only opener never incremented `writers`, but that is
            // shared state, so the mode check must come from the
            // descriptor. The System layer passes it via the token's
            // high bit.
            if token.0 & WRITABLE_BIT == 0 {
                return Err(Errno::EBADF);
            }
        }
        if req == PIOCCACHESTATS {
            return Ok(IoctlReply::Done(self.cache.lock().unwrap_or_else(PoisonError::into_inner).stats().to_bytes()));
        }
        if let Some(kind) = flat_cache_kind(req) {
            let pr_gen = k.proc(pid)?.pr_gen;
            let mem_gen = k.objects.content_gen;
            let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(bytes) =
                cache.lookup(pid.0, kind, 0, pr_gen, mem_gen, 0, |b| b.to_vec())
            {
                return Ok(IoctlReply::Done(bytes));
            }
            let reply = prioctl(k, cur, pid, req, arg)?;
            if let IoctlReply::Done(bytes) = &reply {
                cache.insert(pid.0, kind, 0, pr_gen, mem_gen, 0, bytes.clone());
            }
            return Ok(reply);
        }
        let reply = prioctl(k, cur, pid, req, arg)?;
        if needs_write(req) {
            // The control operation may have changed process state the
            // kernel primitives did not stamp (trace sets, hold masks,
            // registers, flags); one bump here covers them all.
            if let Ok(p) = k.proc_mut(pid) {
                p.touch();
            }
        }
        Ok(reply)
    }

    fn poll(&mut self, k: &mut Kernel, node: NodeId, _token: OpenToken) -> SysResult<PollStatus> {
        let Ok(pid) = Self::node_pid(node) else {
            return Ok(PollStatus { readable: true, writable: false, hangup: false });
        };
        // "By appropriately defining what it means for a /proc file to be
        // 'ready'": readable when stopped on an event of interest,
        // hangup when gone.
        match k.proc(pid) {
            Err(_) => Ok(PollStatus { readable: false, writable: false, hangup: true }),
            Ok(p) if p.zombie => Ok(PollStatus { readable: false, writable: false, hangup: true }),
            Ok(p) => Ok(PollStatus {
                readable: p.is_event_stopped(),
                writable: true,
                hangup: false,
            }),
        }
    }
}

/// Token bit recording that the descriptor was opened writable (the
/// token otherwise carries the exec generation).
pub const WRITABLE_BIT: u64 = 1 << 63;

impl ProcFs {
    /// Helper used by tests: the number of live (non-zombie) LWPs of a
    /// process.
    pub fn live_lwps(k: &Kernel, pid: Pid) -> usize {
        k.proc(pid)
            .map(|p| p.lwps.iter().filter(|l| l.state != LwpState::Zombie).count())
            .unwrap_or(0)
    }
}
