//! The process file system — the paper's primary contribution.
//!
//! Two generations of the interface are provided, exactly as the paper
//! describes them:
//!
//! * [`ProcFs`] — the SVR4 flat form: `/proc` is a directory of process
//!   files named by five-digit pid; `read`/`write` at a file offset move
//!   data to and from the process's virtual address space; `ioctl`
//!   carries the [`ioctl`] module's `PIOC*` information and control
//!   operations; security follows the uid/gid matching rules, including
//!   exclusive-use opens (`O_EXCL`), run-on-last-close, and descriptor
//!   invalidation on set-id exec.
//! * [`HierFs`] — the proposed restructuring: a directory per process
//!   containing read-only status files and a write-only control file
//!   taking structured (and batchable) messages, plus `lwp/<tid>/`
//!   subdirectories for the threads of a multi-threaded process. No
//!   ioctl operations at all.
//!
//! Both are implementations of [`vfs::FileSystem`] over the simulated
//! kernel and are mounted with [`ksim::System::mount`]; [`mount_standard`]
//! installs the conventional pair (`/proc`, `/proc2`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The `/proc` layer decodes wire images and controller-supplied ioctl
// arguments — hostile input by construction. Fallible cases surface
// typed results (`Errno`, `WireError`, `Option`), never a panic;
// invariant violations use an explicit `panic!`/`unreachable!` naming
// the broken invariant. Test modules opt back in with a local `allow`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod bytes;
pub mod fsimpl;
pub mod hier;
pub mod ioctl;
pub mod ops;
pub mod replay;
pub mod snap;
pub mod types;

pub use fsimpl::ProcFs;
pub use hier::{ctl_batch, ctl_record, HierFs};
pub use ioctl::StatsReport;
pub use replay::{build_sim, goto_tick, replay, replay_file, replay_to, LoadError};
pub use snap::{snap_handle, SnapCache, SnapHandle};
pub use types::{
    PrCacheStats, PrCred, PrMap, PrRun, PrStatus, PrUsage, PrWatch, PrWhy, PrXStats, PsInfo,
    PRRUN_CFAULT,
    PRRUN_CSIG, PRRUN_SABORT, PRRUN_SSTOP, PRRUN_STEP, PRRUN_SVADDR, PRRUN_WBYPASS, PR_ASLEEP,
    PR_DSTOP, PR_FORK, PR_ISSYS, PR_ISTOP, PR_PTRACE, PR_RLC, PR_STOPPED,
};

/// Mounts the flat interface at `/proc` and the hierarchical proposal at
/// `/proc2`. Returns `(flat_fsid, hier_fsid)`.
pub fn mount_standard(sys: &mut ksim::System) -> (u32, u32) {
    let (flat, hier, _) = mount_standard_with_cache(sys);
    (flat, hier)
}

/// Like [`mount_standard`], but also hands back the snapshot cache the
/// two file systems share, so callers can inspect hit/miss counters
/// without going through the `PIOCCACHESTATS` ioctl.
pub fn mount_standard_with_cache(sys: &mut ksim::System) -> (u32, u32, SnapHandle) {
    let cache = snap_handle();
    let flat = sys.mount("/proc", Box::new(ProcFs::with_cache(cache.clone())));
    let hier = sys.mount("/proc2", Box::new(HierFs::with_cache(cache.clone())));
    (flat, hier, cache)
}

/// Boots a system with both `/proc` generations mounted — the usual
/// starting point for examples, tests and benchmarks.
pub fn boot_with_proc() -> ksim::System {
    boot_with_proc_cache().0
}

/// Like [`boot_with_proc`], but also returns the shared snapshot cache.
pub fn boot_with_proc_cache() -> (ksim::System, SnapHandle) {
    let mut sys = ksim::System::boot();
    let (_, _, cache) = mount_standard_with_cache(&mut sys);
    (sys, cache)
}
