//! End-to-end tests of the flat `/proc` interface: a hosted controlling
//! process manipulating simulated targets exactly as a debugger would.

use isa::GregSet;
use ksim::signal::{SIGINT, SIGUSR1};
use ksim::sysno::{SYS_GETPID, SYS_NANOSLEEP};
use ksim::{Cred, Pid, SigSet, SysSet, System};
use procfs::ioctl::*;
use procfs::{boot_with_proc, PrMap, PrRun, PrStatus, PrWhy, PsInfo, PRRUN_CSIG};
use vfs::{Errno, OFlags};

/// Boots with /proc mounted, a uid-100 controller, and a spinning target.
fn setup(src: &str) -> (System, Pid, Pid) {
    let mut sys = boot_with_proc();
    let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
    sys.install_program("/bin/target", src);
    let target = sys.spawn_program(ctl, "/bin/target", &["target"]).expect("spawn");
    (sys, ctl, target)
}

const SPIN: &str = "_start:\nloop: jmp loop";

fn proc_path(pid: Pid) -> String {
    format!("/proc/{:05}", pid.0)
}

fn open_ctl(sys: &mut System, ctl: Pid, target: Pid) -> usize {
    sys.host_open(ctl, &proc_path(target), OFlags::rdwr()).expect("open /proc file")
}

fn status_of(sys: &mut System, ctl: Pid, fd: usize) -> PrStatus {
    let out = sys.host_ioctl(ctl, fd, PIOCSTATUS, &[]).expect("PIOCSTATUS");
    PrStatus::from_bytes(&out).expect("prstatus decodes")
}

#[test]
fn readdir_lists_processes_with_padded_names() {
    let (mut sys, ctl, target) = setup(SPIN);
    let entries = sys.list_dir(ctl, "/proc").expect("readdir");
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"00000"), "system process 0: {names:?}");
    assert!(names.contains(&"00001"), "init");
    assert!(names.contains(&format!("{:05}", target.0).as_str()));
    // Figure 1: sizes are the total virtual memory; system processes
    // report zero.
    let meta0 = sys.stat_path(ctl, "/proc/00000").expect("stat 0");
    assert_eq!(meta0.size, 0, "system process has no user-level address space");
    let metat = sys.stat_path(ctl, &proc_path(target)).expect("stat target");
    assert!(metat.size > 0);
    assert_eq!(metat.uid, 100, "owner is the real uid");
    assert_eq!(metat.gid, 10);
    assert_eq!(metat.ls_mode(), "-rw-------");
}

#[test]
fn open_permissions_follow_the_paper() {
    let (mut sys, _ctl, target) = setup(SPIN);
    let other = sys.spawn_hosted("other", Cred::new(200, 20));
    let root = sys.spawn_hosted("rootctl", Cred::superuser());
    // Same uid/gid: the spawner's cred was inherited by the target, so
    // `other` must be refused, root admitted.
    assert_eq!(
        sys.host_open(other, &proc_path(target), OFlags::rdonly()),
        Err(Errno::EACCES)
    );
    let fd = sys.host_open(root, &proc_path(target), OFlags::rdwr()).expect("root opens");
    sys.host_close(root, fd).expect("close");
}

#[test]
fn setid_process_is_superuser_only() {
    let (mut sys, ctl, _) = setup(SPIN);
    // Make a set-uid target by marking the executable.
    let aout = ksim::aout::build_aout(SPIN).expect("asm");
    sys.memfs_mut().install("/bin/su-target", 0o4755, 0, 0, aout.to_bytes());
    let suid = sys.spawn_program(ctl, "/bin/su-target", &["su"]).expect("spawn");
    // The uid-100 controller cannot open it even read-only (euid now 0).
    assert_eq!(sys.host_open(ctl, &proc_path(suid), OFlags::rdonly()), Err(Errno::EACCES));
    let root = sys.spawn_hosted("rootctl", Cred::superuser());
    let fd = sys.host_open(root, &proc_path(suid), OFlags::rdonly()).expect("root ok");
    sys.host_close(root, fd).expect("close");
}

#[test]
fn exclusive_open_blocks_other_writers_not_readers() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = sys
        .host_open(ctl, &proc_path(target), OFlags::rdwr_excl())
        .expect("exclusive open");
    assert_eq!(
        sys.host_open(ctl, &proc_path(target), OFlags::rdwr()),
        Err(Errno::EBUSY),
        "second writer refused"
    );
    let rfd = sys
        .host_open(ctl, &proc_path(target), OFlags::rdonly())
        .expect("read-only opens are unaffected");
    sys.host_close(ctl, rfd).expect("close");
    sys.host_close(ctl, fd).expect("close");
    // After release, writers may open again.
    let fd2 = sys.host_open(ctl, &proc_path(target), OFlags::rdwr()).expect("open again");
    sys.host_close(ctl, fd2).expect("close");
}

#[test]
fn excl_requested_after_existing_writer_fails() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = sys.host_open(ctl, &proc_path(target), OFlags::rdwr()).expect("writer");
    assert_eq!(
        sys.host_open(ctl, &proc_path(target), OFlags::rdwr_excl()),
        Err(Errno::EBUSY)
    );
    sys.host_close(ctl, fd).expect("close");
}

#[test]
fn address_space_io_with_truncation_semantics() {
    let (mut sys, ctl, target) = setup(
        r#"
        _start:
        loop: jmp loop
        .data
        cell: .asciz "ABCD"
        "#,
    );
    let aout = {
        // Find the data address from the symbol table via the image.
        let bytes = sys.memfs_mut().install("/bin/na", 0, 0, 0, vec![]); // placeholder
        let _ = bytes;
        ksim::aout::build_aout(
            "_start:\nloop: jmp loop\n.data\ncell: .asciz \"ABCD\"",
        )
        .expect("asm")
    };
    let cell = aout.sym("cell").expect("cell symbol");
    let fd = open_ctl(&mut sys, ctl, target);
    // lseek to the data address and read.
    sys.host_lseek(ctl, fd, cell as i64, 0).expect("lseek");
    let mut buf = [0u8; 4];
    assert_eq!(sys.host_read(ctl, fd, &mut buf).expect("read"), 4);
    assert_eq!(&buf, b"ABCD");
    // Write through /proc; the process sees the change.
    sys.host_lseek(ctl, fd, cell as i64, 0).expect("lseek");
    assert_eq!(sys.host_write(ctl, fd, b"xy").expect("write"), 2);
    sys.host_lseek(ctl, fd, cell as i64, 0).expect("lseek");
    sys.host_read(ctl, fd, &mut buf).expect("read back");
    assert_eq!(&buf, b"xyCD");
    // Unmapped offset: fails outright.
    sys.host_lseek(ctl, fd, 0x10, 0).expect("lseek");
    assert_eq!(sys.host_read(ctl, fd, &mut buf), Err(Errno::EIO));
    // A read extending past the end of a mapping truncates at the
    // boundary rather than failing.
    let maps = {
        let out = sys.host_ioctl(ctl, fd, PIOCMAP, &[]).expect("PIOCMAP");
        PrMap::decode_list(&out)
    };
    let text = maps.iter().find(|m| m.name == "text").expect("text mapping");
    let tail = text.vaddr + text.size - 8;
    // There is a gap between text and data mappings large enough only if
    // data does not start immediately; compute actual next mapping.
    let next_base = maps
        .iter()
        .map(|m| m.vaddr)
        .filter(|&v| v > tail)
        .min()
        .unwrap_or(u64::MAX);
    if next_base > text.vaddr + text.size {
        sys.host_lseek(ctl, fd, tail as i64, 0).expect("lseek");
        let mut big = [0u8; 64];
        let n = sys.host_read(ctl, fd, &mut big).expect("truncated read");
        assert_eq!(n, 8, "truncated at the mapping boundary");
    }
    sys.host_close(ctl, fd).expect("close");
}

#[test]
fn stop_and_run_cycle() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    // Initially running.
    let st = status_of(&mut sys, ctl, fd);
    assert_eq!(st.flags & procfs::PR_STOPPED, 0);
    assert_eq!(st.why, PrWhy::None);
    // PIOCSTOP: directed stop, waits, returns status.
    let out = sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("PIOCSTOP");
    let st = PrStatus::from_bytes(&out).expect("status");
    assert_ne!(st.flags & procfs::PR_STOPPED, 0);
    assert_ne!(st.flags & procfs::PR_ISTOP, 0);
    assert_eq!(st.why, PrWhy::Requested);
    assert_eq!(st.pid, target.0);
    // Registers are readable and the PC lies in text.
    let regs = {
        let out = sys.host_ioctl(ctl, fd, PIOCGREG, &[]).expect("PIOCGREG");
        GregSet::from_bytes(&out).expect("gregset")
    };
    assert!(regs.pc >= 0x0100_0000);
    // Resume; status shows running again.
    sys.host_ioctl(ctl, fd, PIOCRUN, &PrRun::default().to_bytes()).expect("PIOCRUN");
    sys.run_idle(5);
    let st = status_of(&mut sys, ctl, fd);
    assert_eq!(st.flags & procfs::PR_STOPPED, 0);
    sys.host_close(ctl, fd).expect("close");
}

#[test]
fn traced_signal_stops_target() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    let mut set = SigSet::empty();
    set.add(SIGUSR1);
    sys.host_ioctl(ctl, fd, PIOCSTRACE, &set.to_bytes()).expect("PIOCSTRACE");
    // Read back.
    let got = sys.host_ioctl(ctl, fd, PIOCGTRACE, &[]).expect("PIOCGTRACE");
    assert_eq!(SigSet::from_bytes(&got).expect("sigset"), set);
    sys.host_kill(ctl, target, SIGUSR1).expect("kill");
    let out = sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("PIOCWSTOP");
    let st = PrStatus::from_bytes(&out).expect("status");
    assert_eq!(st.why, PrWhy::Signalled);
    assert_eq!(st.what as usize, SIGUSR1);
    assert_eq!(st.cursig as usize, SIGUSR1);
    // Clear the signal on resume: the process survives (default action
    // for SIGUSR1 would have killed it).
    sys.host_ioctl(
        ctl,
        fd,
        PIOCRUN,
        &PrRun { flags: PRRUN_CSIG, vaddr: 0 }.to_bytes(),
    )
    .expect("PIOCRUN");
    sys.run_idle(20);
    assert!(!sys.kernel.proc(target).expect("alive").zombie);
    sys.host_close(ctl, fd).expect("close");
}

#[test]
fn syscall_entry_exit_stops_and_argument_control() {
    // Target calls getpid then exits with the returned value's low byte.
    let (mut sys, ctl, target) = setup(
        r#"
        _start:
            movi rv, 20     ; getpid
            syscall
            mov  a0, rv
            movi rv, 1      ; exit(pid)
            syscall
        "#,
    );
    let fd = open_ctl(&mut sys, ctl, target);
    let mut entry = SysSet::empty();
    entry.add(SYS_GETPID as usize);
    let mut exit = SysSet::empty();
    exit.add(SYS_GETPID as usize);
    sys.host_ioctl(ctl, fd, PIOCSENTRY, &entry.to_bytes()).expect("PIOCSENTRY");
    sys.host_ioctl(ctl, fd, PIOCSEXIT, &exit.to_bytes()).expect("PIOCSEXIT");
    // Entry stop.
    let st = PrStatus::from_bytes(&sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("wstop"))
        .expect("status");
    assert_eq!(st.why, PrWhy::SyscallEntry);
    assert_eq!(st.what, SYS_GETPID);
    sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
    // Exit stop: return value already in rv.
    let st = PrStatus::from_bytes(&sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("wstop"))
        .expect("status");
    assert_eq!(st.why, PrWhy::SyscallExit);
    assert_eq!(st.reg.rv(), target.0 as u64, "return value visible at exit stop");
    // Manufacture a different return value — "complete encapsulation".
    let mut regs = st.reg.clone();
    regs.set_rv(77);
    sys.host_ioctl(ctl, fd, PIOCSREG, &regs.to_bytes()).expect("PIOCSREG");
    sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(ksim::ptrace::decode_status(status), ksim::ptrace::WaitStatus::Exited(77));
}

#[test]
fn syscall_abort_goes_directly_to_exit() {
    // Target tries nanosleep(huge); controller aborts it at entry; the
    // call fails with EINTR and the target exits with the errno.
    let (mut sys, ctl, target) = setup(
        r#"
        _start:
            movi rv, 69         ; nanosleep(1<<30 ticks)
            movi a0, 0x40000000
            syscall
            mov  a0, rv         ; -EINTR
            movi a1, 0
            sub  a0, a1, a0     ; errno
            movi rv, 1
            syscall
        "#,
    );
    let fd = open_ctl(&mut sys, ctl, target);
    let mut entry = SysSet::empty();
    entry.add(SYS_NANOSLEEP as usize);
    sys.host_ioctl(ctl, fd, PIOCSENTRY, &entry.to_bytes()).expect("entry");
    let st = PrStatus::from_bytes(&sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("wstop"))
        .expect("status");
    assert_eq!(st.why, PrWhy::SyscallEntry);
    sys.host_ioctl(
        ctl,
        fd,
        PIOCRUN,
        &PrRun { flags: procfs::types::PRRUN_SABORT, vaddr: 0 }.to_bytes(),
    )
    .expect("abort");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(
        ksim::ptrace::decode_status(status),
        ksim::ptrace::WaitStatus::Exited(Errno::EINTR as i32 as u8)
    );
}

#[test]
fn breakpoint_via_fault_tracing() {
    // Plant a breakpoint at the `hit` symbol by writing the BPT encoding
    // through /proc; trace FLTBPT; the process stops with the PC at the
    // breakpoint address.
    let src = r#"
        _start:
            movi a0, 0
        loop:
            addi a0, a0, 1
            call hit
            jmp  loop
        hit:
            ret
    "#;
    let (mut sys, ctl, target) = setup(src);
    let aout = ksim::aout::build_aout(src).expect("asm");
    let hit = aout.sym("hit").expect("hit symbol");
    let fd = open_ctl(&mut sys, ctl, target);
    // Stop it first so planting is race-free, then plant.
    sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
    let mut flt = ksim::FltSet::empty();
    flt.add(ksim::Fault::Bpt.number());
    sys.host_ioctl(ctl, fd, PIOCSFAULT, &flt.to_bytes()).expect("sfault");
    sys.host_lseek(ctl, fd, hit as i64, 0).expect("lseek");
    let saved = {
        let mut b = [0u8; 8];
        sys.host_read(ctl, fd, &mut b).expect("read insn");
        b
    };
    sys.host_lseek(ctl, fd, hit as i64, 0).expect("lseek");
    sys.host_write(ctl, fd, &isa::insn::breakpoint_bytes()).expect("plant");
    sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
    // Stops on the fault, PC at the breakpoint address.
    let st = PrStatus::from_bytes(&sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("wstop"))
        .expect("status");
    assert_eq!(st.why, PrWhy::Faulted);
    assert_eq!(st.what as usize, ksim::Fault::Bpt.number());
    assert_eq!(st.reg.pc, hit, "PC left at the breakpoint address");
    // Lift the breakpoint, clear the fault, resume; target survives.
    sys.host_lseek(ctl, fd, hit as i64, 0).expect("lseek");
    sys.host_write(ctl, fd, &saved).expect("restore");
    sys.host_ioctl(
        ctl,
        fd,
        PIOCRUN,
        &PrRun { flags: procfs::types::PRRUN_CFAULT, vaddr: 0 }.to_bytes(),
    )
    .expect("run");
    sys.run_idle(50);
    assert!(!sys.kernel.proc(target).expect("alive").zombie);
}

#[test]
fn single_step_stops_on_flttrace() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
    let mut flt = ksim::FltSet::empty();
    flt.add(ksim::Fault::Trace.number());
    sys.host_ioctl(ctl, fd, PIOCSFAULT, &flt.to_bytes()).expect("sfault");
    let pc0 = status_of(&mut sys, ctl, fd).reg.pc;
    sys.host_ioctl(
        ctl,
        fd,
        PIOCRUN,
        &PrRun { flags: procfs::types::PRRUN_STEP, vaddr: 0 }.to_bytes(),
    )
    .expect("step");
    let st = PrStatus::from_bytes(&sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("wstop"))
        .expect("status");
    assert_eq!(st.why, PrWhy::Faulted);
    assert_eq!(st.what as usize, ksim::Fault::Trace.number());
    // The spin loop is `jmp loop`: one step lands back at the same PC.
    assert_eq!(st.reg.pc, pc0);
}

#[test]
fn inherit_on_fork_stops_both_parent_and_child() {
    let src = r#"
        _start:
            movi rv, 2      ; fork
            syscall
            beq  rv, zero, child
        parent:
            jmp parent
        child:
            jmp child
    "#;
    let (mut sys, ctl, target) = setup(src);
    let fd = open_ctl(&mut sys, ctl, target);
    sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop early");
    let mut exit = SysSet::empty();
    exit.add(ksim::sysno::SYS_FORK as usize);
    sys.host_ioctl(ctl, fd, PIOCSEXIT, &exit.to_bytes()).expect("sexit");
    sys.host_ioctl(ctl, fd, PIOCSFORK, &[]).expect("inherit-on-fork");
    sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
    // Parent stops on exit from fork; the return value names the child.
    let st = PrStatus::from_bytes(&sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("wstop"))
        .expect("status");
    assert_eq!(st.why, PrWhy::SyscallExit);
    assert_eq!(st.what, ksim::sysno::SYS_FORK);
    let child = Pid(st.reg.rv() as u32);
    assert_ne!(child, target);
    // "Because the child stopped before executing any user-level code,
    // the debugger can maintain complete control."
    let cfd = sys.host_open(ctl, &proc_path(child), OFlags::rdwr()).expect("open child");
    let cst = status_of(&mut sys, ctl, cfd);
    assert_ne!(cst.flags & procfs::PR_ISTOP, 0, "child stopped on fork exit");
    assert_eq!(cst.why, PrWhy::SyscallExit);
    assert_eq!(cst.reg.rv(), 0, "child's fork returns 0");
    // The child inherited the tracing flags.
    let cset = sys.host_ioctl(ctl, cfd, PIOCGEXIT, &[]).expect("child gexit");
    assert!(SysSet::from_bytes(&cset).expect("sysset").has(ksim::sysno::SYS_FORK as usize));
}

#[test]
fn run_on_last_close_releases_target() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
    let mut set = SigSet::empty();
    set.add(SIGINT);
    sys.host_ioctl(ctl, fd, PIOCSTRACE, &set.to_bytes()).expect("strace");
    sys.host_ioctl(ctl, fd, PIOCSRLC, &[]).expect("set rlc");
    sys.host_close(ctl, fd).expect("close last writable fd");
    // Tracing flags cleared, process set running.
    sys.run_idle(5);
    let proc = sys.kernel.proc(target).expect("alive");
    assert!(!proc.is_stopped(), "set running on last close");
    assert!(proc.trace.sig_trace.is_empty(), "tracing flags cleared");
}

#[test]
fn tracing_survives_close_without_rlc() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    let mut set = SigSet::empty();
    set.add(SIGINT);
    sys.host_ioctl(ctl, fd, PIOCSTRACE, &set.to_bytes()).expect("strace");
    sys.host_close(ctl, fd).expect("close");
    // "Tracing flags can remain active for a process when its process
    // file is closed, allowing a process to be left hanging and later
    // reattached."
    assert!(sys.kernel.proc(target).expect("alive").trace.sig_trace.has(SIGINT));
    // Reattach and find the state intact.
    let fd = open_ctl(&mut sys, ctl, target);
    let got = sys.host_ioctl(ctl, fd, PIOCGTRACE, &[]).expect("gtrace");
    assert!(SigSet::from_bytes(&got).expect("sigset").has(SIGINT));
}

#[test]
fn setid_exec_invalidates_descriptor() {
    let src = r#"
        _start:
            movi rv, 11     ; exec("/bin/su", 0)
            la   a0, path
            movi a1, 0
            syscall
        hang:
            jmp hang
        .data
        path: .asciz "/bin/su"
    "#;
    let (mut sys, _ctl, target) = setup(src);
    // A root-setuid executable.
    let aout = ksim::aout::build_aout(SPIN).expect("asm");
    sys.memfs_mut().install("/bin/su", 0o4755, 0, 0, aout.to_bytes());
    let root = sys.spawn_hosted("rootctl", Cred::superuser());
    let fd = sys.host_open(root, &proc_path(target), OFlags::rdwr()).expect("open");
    // Let the target exec the set-id program.
    sys.run_idle(2000);
    let proc = sys.kernel.proc(target).expect("alive");
    assert_eq!(proc.cred.euid, 0, "set-id honoured");
    assert!(proc.is_stopped(), "directed to stop on set-id exec under trace");
    assert!(proc.trace.run_on_last_close, "run-on-last-close set");
    // The old descriptor is dead except for close.
    assert_eq!(sys.host_ioctl(root, fd, PIOCSTATUS, &[]), Err(Errno::EBADF));
    let mut b = [0u8; 4];
    sys.host_lseek(root, fd, 0x0100_0000, 0).expect("lseek");
    assert_eq!(sys.host_read(root, fd, &mut b), Err(Errno::EBADF));
    // A privileged controller can reopen to retain control.
    let fd2 = sys.host_open(root, &proc_path(target), OFlags::rdwr()).expect("reopen");
    let st = status_of(&mut sys, root, fd2);
    assert_ne!(st.flags & procfs::PR_STOPPED, 0);
    sys.host_close(root, fd2).expect("close");
    // Closing the stale descriptor (now the last writable one) releases
    // the process.
    sys.host_close(root, fd).expect("close stale");
    sys.run_idle(5);
    assert!(!sys.kernel.proc(target).expect("alive").is_stopped());
}

#[test]
fn piocopenm_reaches_the_executable() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    let st = {
        sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
        status_of(&mut sys, ctl, fd)
    };
    // Open the object mapped at the PC (the a.out text).
    let out = sys
        .host_ioctl(ctl, fd, PIOCOPENM, &st.reg.pc.to_le_bytes())
        .expect("PIOCOPENM");
    let objfd = u64::from_le_bytes(out.try_into().expect("8 bytes")) as usize;
    // Read the a.out header and parse the symbol table from it — "this
    // enables a debugger to find executable file symbol tables ...
    // without having to know pathnames."
    let mut image = vec![0u8; 65536];
    let mut off = 0;
    loop {
        let n = sys.host_read(ctl, objfd, &mut image[off..]).expect("read aout");
        if n == 0 {
            break;
        }
        off += n;
    }
    image.truncate(off);
    let aout = ksim::Aout::from_bytes(&image).expect("parses as a.out");
    assert!(aout.sym("_start").is_some());
}

#[test]
fn psinfo_snapshot_matches_ps_needs() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = sys.host_open(ctl, &proc_path(target), OFlags::rdonly()).expect("open ro");
    let out = sys.host_ioctl(ctl, fd, PIOCPSINFO, &[]).expect("PIOCPSINFO");
    let info = PsInfo::from_bytes(&out).expect("psinfo");
    assert_eq!(info.pid, target.0);
    assert_eq!(info.uid, 100);
    assert_eq!(info.fname, "target");
    assert_eq!(info.psargs, "target");
    assert!(info.size > 0);
    assert_eq!(info.nlwp, 1);
}

#[test]
fn write_class_ops_require_writable_descriptor() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = sys.host_open(ctl, &proc_path(target), OFlags::rdonly()).expect("open ro");
    // Read-only ops fine.
    sys.host_ioctl(ctl, fd, PIOCSTATUS, &[]).expect("status ok");
    sys.host_ioctl(ctl, fd, PIOCCRED, &[]).expect("cred ok");
    // Control ops refused.
    let mut set = SigSet::empty();
    set.add(SIGINT);
    assert_eq!(sys.host_ioctl(ctl, fd, PIOCSTRACE, &set.to_bytes()), Err(Errno::EBADF));
    assert_eq!(sys.host_ioctl(ctl, fd, PIOCKILL, &9u32.to_le_bytes()), Err(Errno::EBADF));
}

#[test]
fn watchpoint_stops_on_watched_store() {
    let src = r#"
        _start:
            la   a0, cell
            movi a1, 0
        loop:
            addi a1, a1, 1
            st   a1, [a0+128]    ; unwatched, same page
            st   a1, [a0]        ; watched
            jmp  loop
        .data
        .align 8
        cell: .space 256
    "#;
    let (mut sys, ctl, target) = setup(src);
    let aout = ksim::aout::build_aout(src).expect("asm");
    let cell = aout.sym("cell").expect("cell");
    let fd = open_ctl(&mut sys, ctl, target);
    sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
    let mut flt = ksim::FltSet::empty();
    flt.add(ksim::Fault::Watch.number());
    sys.host_ioctl(ctl, fd, PIOCSFAULT, &flt.to_bytes()).expect("sfault");
    let w = procfs::PrWatch { vaddr: cell, size: 8, flags: 2 /* write */ };
    sys.host_ioctl(ctl, fd, PIOCSWATCH, &w.to_bytes()).expect("swatch");
    sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
    let st = PrStatus::from_bytes(&sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("wstop"))
        .expect("status");
    assert_eq!(st.why, PrWhy::Faulted);
    assert_eq!(st.what as usize, ksim::Fault::Watch.number());
    // The same-page unwatched store was recovered transparently.
    let usage = procfs::PrUsage::from_bytes(
        &sys.host_ioctl(ctl, fd, PIOCUSAGE, &[]).expect("usage"),
    )
    .expect("prusage");
    assert!(usage.watch_recoveries >= 1, "same-page store was recovered");
    // Step over the watched store with the one-shot bypass and continue.
    sys.host_ioctl(
        ctl,
        fd,
        PIOCRUN,
        &PrRun {
            flags: procfs::types::PRRUN_CFAULT | procfs::types::PRRUN_WBYPASS,
            vaddr: 0,
        }
        .to_bytes(),
    )
    .expect("run");
    // It fires again on the next iteration.
    let st = PrStatus::from_bytes(&sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("wstop"))
        .expect("status");
    assert_eq!(st.what as usize, ksim::Fault::Watch.number());
    // Remove the watchpoint; the target runs free.
    let rm = procfs::PrWatch { vaddr: cell, size: 0, flags: 0 };
    sys.host_ioctl(ctl, fd, PIOCSWATCH, &rm.to_bytes()).expect("remove");
    sys.host_ioctl(
        ctl,
        fd,
        PIOCRUN,
        &PrRun { flags: procfs::types::PRRUN_CFAULT, vaddr: 0 }.to_bytes(),
    )
    .expect("run");
    sys.run_idle(50);
    assert!(!sys.kernel.proc(target).expect("alive").is_stopped());
}

#[test]
fn poll_on_proc_descriptor_sees_stop_and_exit() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    let st = sys.poll_fd(ctl, fd).expect("poll");
    assert!(!st.readable, "running process is not 'ready'");
    sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
    let st = sys.poll_fd(ctl, fd).expect("poll");
    assert!(st.readable, "stopped on event of interest");
    sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
    sys.host_kill(ctl, target, ksim::signal::SIGKILL).expect("kill");
    sys.run_idle(20);
    let st = sys.poll_fd(ctl, fd).expect("poll");
    assert!(st.hangup, "dead target reports hangup");
}

#[test]
fn deprecated_getpr_reveals_implementation() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = sys.host_open(ctl, &proc_path(target), OFlags::rdonly()).expect("open");
    let dump = sys.host_ioctl(ctl, fd, PIOCGETPR, &[]).expect("getpr");
    let text = String::from_utf8_lossy(&dump);
    assert!(text.contains("Proc"), "a raw structure dump: {text:.60}");
    let dump = sys.host_ioctl(ctl, fd, PIOCGETU, &[]).expect("getu");
    assert!(String::from_utf8_lossy(&dump).contains("uarea"));
}

#[test]
fn kill_and_unkill_via_proc() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    // Stop it so the posted signal stays pending.
    sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
    sys.host_ioctl(ctl, fd, PIOCKILL, &(SIGUSR1 as u32).to_le_bytes()).expect("kill");
    let st = status_of(&mut sys, ctl, fd);
    assert!(st.sigpend.has(SIGUSR1));
    sys.host_ioctl(ctl, fd, PIOCUNKILL, &(SIGUSR1 as u32).to_le_bytes()).expect("unkill");
    let st = status_of(&mut sys, ctl, fd);
    assert!(!st.sigpend.has(SIGUSR1));
    // The target survives resumption (the signal is gone).
    sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
    sys.run_idle(20);
    assert!(!sys.kernel.proc(target).expect("alive").zombie);
}

#[test]
fn directed_stop_in_sleep_does_not_disturb_syscall() {
    // Target reads from an empty pipe (sleeping); a directed stop and
    // resume leave the read pending; data then completes it normally.
    let src = r#"
        _start:
            movi rv, 42        ; pipe(&fds)
            la   a0, fds
            syscall
            la   a0, fds
            ld   a0, [a0]      ; rfd
            movi rv, 3         ; read(rfd, buf, 8) — blocks forever
            la   a1, buf
            movi a2, 8
            syscall
            mov  a0, rv        ; bytes read
            movi rv, 1
            syscall
        .data
        .align 8
        fds: .space 16
        buf: .space 8
    "#;
    let (mut sys, ctl, target) = setup(src);
    let fd = open_ctl(&mut sys, ctl, target);
    // Let it reach the blocking read.
    sys.run_until(10_000, |s| {
        s.kernel
            .proc(target)
            .map(|p| matches!(p.rep_lwp().state, ksim::LwpState::Sleeping { .. }))
            .unwrap_or(false)
    });
    let st = status_of(&mut sys, ctl, fd);
    assert_ne!(st.flags & procfs::PR_ASLEEP, 0, "asleep in read");
    // Direct a stop; it stops without EINTR.
    let out = sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
    let st = PrStatus::from_bytes(&out).expect("status");
    assert_eq!(st.why, PrWhy::Requested);
    // Resume: it goes back to sleep, the call undisturbed.
    sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
    sys.run_until(10_000, |s| {
        s.kernel
            .proc(target)
            .map(|p| matches!(p.rep_lwp().state, ksim::LwpState::Sleeping { .. }))
            .unwrap_or(false)
    });
    // Feed the pipe from inside the target's own fd table: write through
    // a second hosted descriptor is not possible (the pipe belongs to the
    // target), so kill it to check it is still waiting, proving the read
    // survived the stop/run cycle.
    let proc = sys.kernel.proc(target).expect("alive");
    assert!(
        matches!(proc.rep_lwp().state, ksim::LwpState::Sleeping { .. }),
        "the system call is still pending, undisturbed"
    );
}

#[test]
fn piocnmap_counts_mappings() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    let n = {
        let out = sys.host_ioctl(ctl, fd, PIOCNMAP, &[]).expect("PIOCNMAP");
        u64::from_le_bytes(out.try_into().expect("8 bytes"))
    };
    let maps = {
        let out = sys.host_ioctl(ctl, fd, PIOCMAP, &[]).expect("PIOCMAP");
        PrMap::decode_list(&out)
    };
    assert_eq!(n as usize, maps.len());
    assert!(n >= 4, "text, bss, break, stack");
}

#[test]
fn pioccred_and_groups() {
    let mut sys = boot_with_proc();
    let mut cred = Cred::new(100, 10);
    cred.groups = vec![7, 8, 9];
    let ctl = sys.spawn_hosted("ctl", cred);
    sys.install_program("/bin/t", SPIN);
    let target = sys.spawn_program(ctl, "/bin/t", &["t"]).expect("spawn");
    let fd = sys.host_open(ctl, &proc_path(target), OFlags::rdonly()).expect("open");
    let out = sys.host_ioctl(ctl, fd, PIOCCRED, &[]).expect("PIOCCRED");
    let cred = procfs::PrCred::from_bytes(&out).expect("cred");
    assert_eq!(cred.ruid, 100);
    assert_eq!(cred.ngroups, 3);
    let out = sys.host_ioctl(ctl, fd, PIOCGROUPS, &[]).expect("PIOCGROUPS");
    let groups: Vec<u32> = out
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    assert_eq!(groups, vec![7, 8, 9]);
}

#[test]
fn piocnice_adjusts_priority() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    sys.host_ioctl(ctl, fd, PIOCNICE, &5u32.to_le_bytes()).expect("PIOCNICE");
    assert_eq!(sys.kernel.proc(target).expect("p").nice, 5);
    let info = PsInfo::from_bytes(&sys.host_ioctl(ctl, fd, PIOCPSINFO, &[]).expect("info"))
        .expect("psinfo");
    assert_eq!(info.nice, 5);
}

#[test]
fn piocshold_blocks_delivery() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    // Hold SIGUSR1, then post it: it stays pending and the target lives.
    let mut hold = SigSet::empty();
    hold.add(SIGUSR1);
    sys.host_ioctl(ctl, fd, PIOCSHOLD, &hold.to_bytes()).expect("PIOCSHOLD");
    let got = sys.host_ioctl(ctl, fd, PIOCGHOLD, &[]).expect("PIOCGHOLD");
    assert!(SigSet::from_bytes(&got).expect("sigset").has(SIGUSR1));
    sys.host_kill(ctl, target, SIGUSR1).expect("kill");
    sys.run_idle(50);
    let proc = sys.kernel.proc(target).expect("alive");
    assert!(!proc.zombie, "held signal not delivered");
    assert!(proc.pending.has(SIGUSR1), "still pending");
    // Unhold: the default action (terminate) fires.
    sys.host_ioctl(ctl, fd, PIOCSHOLD, &SigSet::empty().to_bytes()).expect("unhold");
    sys.run_idle(50);
    assert!(sys.kernel.proc(target).expect("gone").zombie);
}

#[test]
fn piocgwatch_lists_areas() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    let w1 = procfs::PrWatch { vaddr: 0x0100_2000, size: 8, flags: 2 };
    let w2 = procfs::PrWatch { vaddr: 0x0100_3000, size: 1, flags: 3 };
    sys.host_ioctl(ctl, fd, PIOCSWATCH, &w1.to_bytes()).expect("w1");
    sys.host_ioctl(ctl, fd, PIOCSWATCH, &w2.to_bytes()).expect("w2");
    let out = sys.host_ioctl(ctl, fd, PIOCGWATCH, &[]).expect("PIOCGWATCH");
    let list: Vec<procfs::PrWatch> = out
        .chunks_exact(procfs::PrWatch::WIRE_LEN)
        .filter_map(procfs::PrWatch::from_bytes)
        .collect();
    assert_eq!(list, vec![w1, w2]);
    // Remove one.
    let rm = procfs::PrWatch { vaddr: 0x0100_2000, size: 0, flags: 0 };
    sys.host_ioctl(ctl, fd, PIOCSWATCH, &rm.to_bytes()).expect("rm");
    let out = sys.host_ioctl(ctl, fd, PIOCGWATCH, &[]).expect("PIOCGWATCH");
    assert_eq!(out.len(), procfs::PrWatch::WIRE_LEN);
}

#[test]
fn read_watch_fires_on_load() {
    let src = r#"
        _start:
            la   a0, cell
        loop:
            ld   a1, [a0]       ; read the watched cell
            jmp  loop
        .data
        .align 8
        cell: .word 55
    "#;
    let (mut sys, ctl, target) = setup(src);
    let aout = ksim::aout::build_aout(src).expect("asm");
    let cell = aout.sym("cell").expect("cell");
    let fd = open_ctl(&mut sys, ctl, target);
    sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
    let mut flt = ksim::FltSet::empty();
    flt.add(ksim::Fault::Watch.number());
    sys.host_ioctl(ctl, fd, PIOCSFAULT, &flt.to_bytes()).expect("sfault");
    let w = procfs::PrWatch { vaddr: cell, size: 8, flags: 1 /* read */ };
    sys.host_ioctl(ctl, fd, PIOCSWATCH, &w.to_bytes()).expect("watch");
    sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
    let st = PrStatus::from_bytes(&sys.host_ioctl(ctl, fd, PIOCWSTOP, &[]).expect("wstop"))
        .expect("status");
    assert_eq!(st.what as usize, ksim::Fault::Watch.number());
}

#[test]
fn zombie_process_file_reports_psinfo_but_not_control() {
    let (mut sys, ctl, target) = setup(
        "_start:\nmovi rv, 1\nmovi a0, 3\nsyscall",
    );
    // Let it exit; do NOT reap it (no wait) so it stays a zombie.
    sys.run_idle(1000);
    assert!(sys.kernel.proc(target).expect("zombie").zombie);
    let fd = sys.host_open(ctl, &proc_path(target), OFlags::rdwr()).expect("open zombie");
    // psinfo works (ps lists zombies).
    let info = PsInfo::from_bytes(&sys.host_ioctl(ctl, fd, PIOCPSINFO, &[]).expect("psinfo"))
        .expect("decode");
    assert_eq!(info.state, b'Z');
    assert_eq!(info.size, 0);
    // Control and address-space I/O fail cleanly.
    assert_eq!(sys.host_ioctl(ctl, fd, PIOCSTATUS, &[]), Err(Errno::ENOENT));
    assert_eq!(sys.host_ioctl(ctl, fd, PIOCSTOP, &[]), Err(Errno::ENOENT));
    let mut b = [0u8; 4];
    sys.host_lseek(ctl, fd, 0x0100_0000, 0).expect("lseek");
    assert_eq!(sys.host_read(ctl, fd, &mut b), Err(Errno::EIO));
}

#[test]
fn prstatus_reports_instruction_at_pc() {
    let (mut sys, ctl, target) = setup(SPIN);
    let fd = open_ctl(&mut sys, ctl, target);
    let out = sys.host_ioctl(ctl, fd, PIOCSTOP, &[]).expect("stop");
    let st = PrStatus::from_bytes(&out).expect("status");
    // pr_instr holds the instruction bytes at the PC; it must decode.
    let insn = isa::Insn::decode(&st.instr.to_le_bytes()).expect("decodes");
    assert_eq!(insn.op, isa::Opcode::Jmp, "the spin loop's jmp");
}
