//! Crate-local panic-free gate: the `/proc` layer decodes
//! controller-supplied ioctl arguments, ctl messages and recorded
//! inputs — hostile bytes by construction — so its source carries
//! `#![deny(clippy::unwrap_used, clippy::expect_used)]` and this test
//! holds the whole crate to `clippy -D warnings` even when run from
//! the crate directory rather than the workspace root. Skips cleanly
//! when the toolchain has no clippy component.

use std::process::Command;

#[test]
fn proc_layer_is_clippy_clean() {
    let probe = Command::new("cargo").args(["clippy", "--version"]).output();
    if !matches!(probe, Ok(ref out) if out.status.success()) {
        eprintln!("skipping: cargo clippy is not installed");
        return;
    }
    let manifest = concat!(env!("CARGO_MANIFEST_DIR"), "/Cargo.toml");
    let out = Command::new("cargo")
        .args([
            "clippy",
            "--manifest-path",
            manifest,
            "-p",
            "procsim-core",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ])
        .output()
        .expect("run cargo clippy");
    assert!(
        out.status.success(),
        "clippy found warnings in procsim-core:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
