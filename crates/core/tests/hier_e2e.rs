//! End-to-end tests of the proposed hierarchical `/proc` (`/proc2`):
//! status by `read(2)`, control by structured messages written to `ctl`,
//! batching, per-LWP subdirectories — and equivalence with the flat
//! interface.

use ksim::signal::SIGUSR1;
use ksim::{Cred, Pid, SigSet, System};
use procfs::hier::*;
use procfs::{boot_with_proc, PrRun, PrStatus, PrWhy, PsInfo, PRRUN_CSIG};
use vfs::{Errno, OFlags};

fn setup(src: &str) -> (System, Pid, Pid) {
    let mut sys = boot_with_proc();
    let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
    sys.install_program("/bin/target", src);
    let target = sys.spawn_program(ctl, "/bin/target", &["target"]).expect("spawn");
    (sys, ctl, target)
}

const SPIN: &str = "_start:\nloop: jmp loop";

fn read_file(sys: &mut System, ctl: Pid, path: &str) -> Vec<u8> {
    let fd = sys.host_open(ctl, path, OFlags::rdonly()).expect("open");
    let mut out = Vec::new();
    let mut buf = [0u8; 256];
    loop {
        let n = sys.host_read(ctl, fd, &mut buf).expect("read");
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    sys.host_close(ctl, fd).expect("close");
    out
}

#[test]
fn hierarchy_layout() {
    let (mut sys, ctl, target) = setup(SPIN);
    let roots = sys.list_dir(ctl, "/proc2").expect("list /proc2");
    let names: Vec<&str> = roots.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&target.0.to_string().as_str()), "{names:?}");
    let dir = format!("/proc2/{}", target.0);
    let files = sys.list_dir(ctl, &dir).expect("list pid dir");
    let names: Vec<&str> = files.iter().map(|e| e.name.as_str()).collect();
    for want in ["status", "psinfo", "ctl", "as", "map", "cred", "usage", "lwp"] {
        assert!(names.contains(&want), "missing {want}: {names:?}");
    }
    let lwps = sys.list_dir(ctl, &format!("{dir}/lwp")).expect("list lwp");
    assert_eq!(lwps.len(), 1);
    assert_eq!(lwps[0].name, "1");
    let lfiles = sys.list_dir(ctl, &format!("{dir}/lwp/1")).expect("list lwp/1");
    let names: Vec<&str> = lfiles.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["status", "ctl", "gregs"]);
}

#[test]
fn status_read_matches_flat_ioctl() {
    let (mut sys, ctl, target) = setup(SPIN);
    // Flat ioctl status.
    let flat_fd = sys
        .host_open(ctl, &format!("/proc/{:05}", target.0), OFlags::rdonly())
        .expect("flat open");
    let flat = sys
        .host_ioctl(ctl, flat_fd, procfs::ioctl::PIOCSTATUS, &[])
        .expect("PIOCSTATUS");
    // Hierarchical read.
    let hier = read_file(&mut sys, ctl, &format!("/proc2/{}/status", target.0));
    assert_eq!(flat, hier, "identical byte images through both interfaces");
    let st = PrStatus::from_bytes(&hier).expect("decodes");
    assert_eq!(st.pid, target.0);
}

#[test]
fn psinfo_and_cred_readable() {
    let (mut sys, ctl, target) = setup(SPIN);
    let info =
        PsInfo::from_bytes(&read_file(&mut sys, ctl, &format!("/proc2/{}/psinfo", target.0)))
            .expect("psinfo");
    assert_eq!(info.pid, target.0);
    assert_eq!(info.fname, "target");
    let cred = procfs::PrCred::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/cred", target.0),
    ))
    .expect("cred");
    assert_eq!(cred.ruid, 100);
    assert_eq!(cred.rgid, 10);
}

#[test]
fn ctl_stop_and_run() {
    let (mut sys, ctl, target) = setup(SPIN);
    let cfd = sys
        .host_open(ctl, &format!("/proc2/{}/ctl", target.0), OFlags::wronly())
        .expect("open ctl");
    // PCSTOP blocks until stopped.
    let msg = ctl_record(PCSTOP, &[]);
    assert_eq!(sys.host_write(ctl, cfd, &msg).expect("write PCSTOP"), msg.len());
    let st = PrStatus::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/status", target.0),
    ))
    .expect("status");
    assert_ne!(st.flags & procfs::PR_STOPPED, 0);
    assert_eq!(st.why, PrWhy::Requested);
    // PCRUN resumes.
    let msg = ctl_record(PCRUN, &PrRun::default().to_bytes());
    sys.host_write(ctl, cfd, &msg).expect("write PCRUN");
    sys.run_idle(5);
    let st = PrStatus::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/status", target.0),
    ))
    .expect("status");
    assert_eq!(st.flags & procfs::PR_STOPPED, 0);
}

#[test]
fn batched_control_operations_in_one_write() {
    // "The use of a control file ... makes it possible to combine
    // several control operations in a single write system call."
    let (mut sys, ctl, target) = setup(SPIN);
    let cfd = sys
        .host_open(ctl, &format!("/proc2/{}/ctl", target.0), OFlags::wronly())
        .expect("open ctl");
    let mut sigs = SigSet::empty();
    sigs.add(SIGUSR1);
    let batch = ctl_batch(&[
        (PCSTRACE, sigs.to_bytes()),
        (PCSFORK, vec![]),
        (PCKILL, (SIGUSR1 as u32).to_le_bytes().to_vec()),
        (PCWSTOP, vec![]),
    ]);
    // One write: set tracing, set inherit-on-fork, post the signal, wait
    // for the resulting stop.
    assert_eq!(sys.host_write(ctl, cfd, &batch).expect("batched write"), batch.len());
    let st = PrStatus::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/status", target.0),
    ))
    .expect("status");
    assert_eq!(st.why, PrWhy::Signalled);
    assert_eq!(st.what as usize, SIGUSR1);
    assert_ne!(st.flags & procfs::PR_FORK, 0, "inherit-on-fork applied in the same write");
    // Resume, clearing the signal, again in one write.
    let batch = ctl_batch(&[(PCRUN, PrRun { flags: PRRUN_CSIG, vaddr: 0 }.to_bytes())]);
    sys.host_write(ctl, cfd, &batch).expect("resume");
    sys.run_idle(20);
    assert!(!sys.kernel.proc(target).expect("alive").zombie);
}

#[test]
fn as_file_reads_and_writes_address_space() {
    let src = r#"
        _start:
        loop: jmp loop
        .data
        cell: .asciz "WXYZ"
    "#;
    let (mut sys, ctl, target) = setup(src);
    let aout = ksim::aout::build_aout(src).expect("asm");
    let cell = aout.sym("cell").expect("cell");
    let fd = sys
        .host_open(ctl, &format!("/proc2/{}/as", target.0), OFlags::rdwr())
        .expect("open as");
    sys.host_lseek(ctl, fd, cell as i64, 0).expect("lseek");
    let mut buf = [0u8; 4];
    assert_eq!(sys.host_read(ctl, fd, &mut buf).expect("read"), 4);
    assert_eq!(&buf, b"WXYZ");
    sys.host_lseek(ctl, fd, cell as i64, 0).expect("lseek");
    sys.host_write(ctl, fd, b"ab").expect("write");
    sys.host_lseek(ctl, fd, cell as i64, 0).expect("lseek");
    sys.host_read(ctl, fd, &mut buf).expect("read");
    assert_eq!(&buf, b"abYZ");
    // Unmapped offsets fail as in the flat interface.
    sys.host_lseek(ctl, fd, 0x10, 0).expect("lseek");
    assert_eq!(sys.host_read(ctl, fd, &mut buf), Err(Errno::EIO));
}

#[test]
fn ctl_file_is_write_only_and_no_ioctl_anywhere() {
    let (mut sys, ctl, target) = setup(SPIN);
    // Opening ctl read-only is refused.
    assert_eq!(
        sys.host_open(ctl, &format!("/proc2/{}/ctl", target.0), OFlags::rdonly()),
        Err(Errno::EACCES)
    );
    // Status files cannot be opened for writing.
    assert_eq!(
        sys.host_open(ctl, &format!("/proc2/{}/status", target.0), OFlags::rdwr()),
        Err(Errno::EACCES)
    );
    // ioctl is gone entirely — the point of the restructuring.
    let fd = sys
        .host_open(ctl, &format!("/proc2/{}/status", target.0), OFlags::rdonly())
        .expect("open");
    assert_eq!(
        sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSTATUS, &[]),
        Err(Errno::ENOTTY)
    );
}

#[test]
fn lwp_subdirectories_expose_threads() {
    // A target that creates a second LWP spinning separately.
    let src = r#"
        _start:
            movi rv, 73          ; thr_create
            la   a0, side
            addi a1, sp, -8192
            movi a2, 0
            syscall
        mainloop:
            jmp mainloop
        side:
            jmp side
    "#;
    let (mut sys, ctl, target) = setup(src);
    sys.run_until(10_000, |s| {
        s.kernel.proc(target).map(|p| p.lwps.len() == 2).unwrap_or(false)
    });
    sys.run_idle(10);
    let lwps = sys.list_dir(ctl, &format!("/proc2/{}/lwp", target.0)).expect("lwp dir");
    let names: Vec<&str> = lwps.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["1", "2"]);
    // Stop only LWP 2 via its private ctl file.
    let cfd = sys
        .host_open(ctl, &format!("/proc2/{}/lwp/2/ctl", target.0), OFlags::wronly())
        .expect("open lwp ctl");
    let msg = ctl_record(PCSTOP, &[]);
    sys.host_write(ctl, cfd, &msg).expect("stop lwp 2");
    let st2 = PrStatus::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/lwp/2/status", target.0),
    ))
    .expect("lwp2 status");
    assert_ne!(st2.flags & procfs::PR_STOPPED, 0);
    assert_eq!(st2.who, 2);
    let st1 = PrStatus::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/lwp/1/status", target.0),
    ))
    .expect("lwp1 status");
    assert_eq!(st1.flags & procfs::PR_STOPPED, 0, "LWP 1 keeps running");
    assert_eq!(st1.who, 1);
    // Each LWP's registers are separately readable.
    let g2 = isa::GregSet::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/lwp/2/gregs", target.0),
    ))
    .expect("gregs");
    let g1 = isa::GregSet::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/lwp/1/gregs", target.0),
    ))
    .expect("gregs");
    assert_ne!(g1.pc, g2.pc, "distinct threads of control");
    // Resume LWP 2.
    let msg = ctl_record(PCRUN, &[]);
    sys.host_write(ctl, cfd, &msg).expect("run lwp 2");
}

#[test]
fn security_rules_match_flat_interface() {
    let (mut sys, _ctl, target) = setup(SPIN);
    let other = sys.spawn_hosted("other", Cred::new(200, 20));
    assert_eq!(
        sys.host_open(other, &format!("/proc2/{}/status", target.0), OFlags::rdonly()),
        Err(Errno::EACCES)
    );
    let root = sys.spawn_hosted("rootctl", Cred::superuser());
    let fd = sys
        .host_open(root, &format!("/proc2/{}/status", target.0), OFlags::rdonly())
        .expect("root can");
    sys.host_close(root, fd).expect("close");
}

#[test]
fn map_file_lists_mappings() {
    let (mut sys, ctl, target) = setup(SPIN);
    let bytes = read_file(&mut sys, ctl, &format!("/proc2/{}/map", target.0));
    let maps = procfs::PrMap::decode_list(&bytes);
    assert!(maps.len() >= 4, "text,bss,break,stack at least: {maps:?}");
    assert!(maps.iter().any(|m| m.name == "text"));
    assert!(maps.iter().any(|m| m.name == "stack"));
}

#[test]
fn usage_file_reports_cpu_time() {
    let (mut sys, ctl, target) = setup(SPIN);
    sys.run_idle(50);
    let usage = procfs::PrUsage::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/usage", target.0),
    ))
    .expect("usage");
    assert!(usage.cpu_ticks > 0, "the spinner consumed CPU");
    assert_eq!(usage.nlwp, 1);
}

#[test]
fn both_generations_coexist() {
    // The same process is controllable through either interface at once
    // (they are views of the same kernel state).
    let (mut sys, ctl, target) = setup(SPIN);
    let flat_fd = sys
        .host_open(ctl, &format!("/proc/{:05}", target.0), OFlags::rdwr())
        .expect("flat");
    // Stop via flat ioctl, observe via hierarchical read.
    sys.host_ioctl(ctl, flat_fd, procfs::ioctl::PIOCSTOP, &[]).expect("stop");
    let st = PrStatus::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/status", target.0),
    ))
    .expect("status");
    assert_ne!(st.flags & procfs::PR_STOPPED, 0);
    // Resume via hierarchical ctl, observe via flat ioctl.
    let cfd = sys
        .host_open(ctl, &format!("/proc2/{}/ctl", target.0), OFlags::wronly())
        .expect("ctl");
    sys.host_write(ctl, cfd, &ctl_record(PCRUN, &[])).expect("run");
    sys.run_idle(5);
    let st = PrStatus::from_bytes(
        &sys.host_ioctl(ctl, flat_fd, procfs::ioctl::PIOCSTATUS, &[]).expect("status"),
    )
    .expect("decode");
    assert_eq!(st.flags & procfs::PR_STOPPED, 0);
}

#[test]
fn lwp_registers_settable_through_lwp_ctl() {
    // Stop LWP 2, rewrite one of its registers through its own ctl file
    // (PCSREG), resume it, and watch the thread act on the new value.
    let src = r#"
        _start:
            movi rv, 73          ; thr_create(side, sp-8192, 0)
            la   a0, side
            addi a1, sp, -8192
            movi a2, 0
            syscall
        mainloop:
            jmp mainloop
        side:
            ; spins until a5 becomes 1, then writes a flag and spins on.
        sideloop:
            movi a4, 1
            bne  a5, a4, sideloop
            la   a3, flag
            st   a4, [a3]
        after:
            jmp after
        .data
        .align 8
        flag: .word 0
    "#;
    let (mut sys, ctl, target) = setup(src);
    sys.run_until(10_000, |s| {
        s.kernel.proc(target).map(|p| p.lwps.len() == 2).unwrap_or(false)
    });
    sys.run_idle(20);
    let aout = ksim::aout::build_aout(src).expect("asm");
    let flag = aout.sym("flag").expect("flag");
    // Stop only LWP 2.
    let cfd = sys
        .host_open(ctl, &format!("/proc2/{}/lwp/2/ctl", target.0), OFlags::wronly())
        .expect("open lwp ctl");
    sys.host_write(ctl, cfd, &ctl_record(PCSTOP, &[])).expect("stop lwp 2");
    // Rewrite its a5 so the spin condition passes.
    let mut gregs = isa::GregSet::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/lwp/2/gregs", target.0),
    ))
    .expect("gregs");
    gregs.set_r(7, 1); // a5 = r7
    sys.host_write(ctl, cfd, &ctl_record(PCSREG, &gregs.to_bytes())).expect("set regs");
    sys.host_write(ctl, cfd, &ctl_record(PCRUN, &[])).expect("run lwp 2");
    // The thread sees the injected register and sets the flag.
    sys.run_until(10_000, |s| {
        let mut b = [0u8; 8];
        s.kernel
            .proc(target)
            .ok()
            .map(|p| {
                p.aspace.kernel_read(&s.kernel.objects, flag, &mut b).is_ok()
                    && u64::from_le_bytes(b) == 1
            })
            .unwrap_or(false)
    });
    let mut b = [0u8; 8];
    sys.kernel
        .proc(target)
        .expect("p")
        .aspace
        .kernel_read(&sys.kernel.objects, flag, &mut b)
        .expect("read");
    assert_eq!(u64::from_le_bytes(b), 1, "LWP 2 acted on the injected register");
    // LWP 1 never stopped.
    let st1 = PrStatus::from_bytes(&read_file(
        &mut sys,
        ctl,
        &format!("/proc2/{}/lwp/1/status", target.0),
    ))
    .expect("status");
    assert_eq!(st1.flags & procfs::PR_STOPPED, 0);
}

#[test]
fn ctl_progress_survives_partial_blocking_batch() {
    // A batch whose middle record blocks (PCWSTOP): the earlier records
    // must apply exactly once even though the write retries.
    let (mut sys, ctl, target) = setup(SPIN);
    let cfd = sys
        .host_open(ctl, &format!("/proc2/{}/ctl", target.0), OFlags::wronly())
        .expect("open ctl");
    // PCNICE(+3), PCDSTOP, PCWSTOP, PCNICE(+3): if the prefix re-ran on
    // retry, nice would overshoot.
    let batch = ctl_batch(&[
        (procfs::hier::PCNICE, 3u32.to_le_bytes().to_vec()),
        (procfs::hier::PCDSTOP, vec![]),
        (PCWSTOP, vec![]),
        (procfs::hier::PCNICE, 3u32.to_le_bytes().to_vec()),
    ]);
    sys.host_write(ctl, cfd, &batch).expect("batched write");
    assert_eq!(sys.kernel.proc(target).expect("p").nice, 6, "each PCNICE applied once");
    assert!(sys.kernel.proc(target).expect("p").is_stopped());
}
