//! E13 — the execution fast path: a direct-mapped software TLB in
//! front of the address-space mapping search, a per-LWP
//! decoded-instruction cache in front of fetch + decode, and a
//! superblock engine that retires straight-line traces in a single
//! dispatch from the scheduler loop.
//!
//! The paper's premise is that `/proc` makes debugging cheap because
//! the kernel already holds everything a debugger needs; this harness
//! extends that premise to the simulated CPU itself — the dominant cost
//! of every experiment above is retiring guest instructions, so E13
//! tracks how fast the hot loop runs with the engine on vs. off, what
//! the hit rates are, and how much of the stream retires inside
//! superblocks. The dense-breakpoint table at the bottom isolates the
//! per-page text epochs: a debugger hammering clear-step-replant
//! cycles into one page must not invalidate blocks on the other pages
//! of the mapping (`coarse` is the PR 5 whole-mapping behaviour, kept
//! behind a knob for exactly this comparison).
//!
//! Expected shape: ≥ 2× insns/sec on the hot loop (the smoke gate in
//! `tests/bench_smoke.rs` enforces exactly that and drops
//! `BENCH_E13.json` at the repo root); hit rates and superblock
//! coverage within a whisker of 1.0 once the loop is warm; the paged
//! leg of the dense-breakpoint table beating coarse on both rebuild
//! count and hits/sec.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, dense_breakpoint_pair, fast_path_pair};
use bench_support::{criterion_group, Criterion};

fn print_rates() {
    banner(
        "E13",
        "execution fast path: software TLB + decoded-instruction cache + superblocks",
    );
    const TICKS: u64 = 4000;
    for program in ["/bin/spin", "/bin/watched"] {
        let (off, on) = fast_path_pair(program, TICKS, 3);
        println!(
            "{program:<14} slow path: {:>12.0} insns/s   fast path: {:>12.0} insns/s   ({:.2}x)",
            off.insns_per_sec,
            on.insns_per_sec,
            on.insns_per_sec / off.insns_per_sec,
        );
        println!(
            "{:14} dTLB {}/{} ({:.4} hit)   icache {}/{} ({:.4} hit)",
            "",
            on.tlb_hits,
            on.tlb_hits + on.tlb_misses,
            on.tlb_hit_rate(),
            on.icache_hits,
            on.icache_hits + on.icache_misses,
            on.icache_hit_rate(),
        );
        println!(
            "{:14} sblocks built {}  dispatched {}  stale {}  coverage {:.4}",
            "",
            on.sblock_built,
            on.sblock_dispatched,
            on.sblock_stale,
            on.sblock_coverage(),
        );
    }
    let (coarse, paged) = dense_breakpoint_pair(24, 3);
    println!("dense breakpoints (4-page loop, plant/replant into one page):");
    for p in [&coarse, &paged] {
        println!(
            "  {:18} {:>8.1} hits/s   built {:>5}  stale {:>5}  epoch bumps {:>4}",
            if p.coarse { "coarse (PR 5)" } else { "per-page epochs" },
            p.hits_per_sec,
            p.sblock_built,
            p.sblock_stale,
            p.page_epoch_bumps,
        );
    }
    println!(
        "  per-page epochs vs coarse: {:.2}x hits/s",
        paged.hits_per_sec / coarse.hits_per_sec
    );
}

/// Times one scheduler slice of each workload under both legs; the
/// comparison the table above prints in insns/sec appears here as
/// per-slice latency.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_exec_fastpath");
    group.sample_size(20);
    for (leg, fast) in [("slow_path", false), ("fast_path", true)] {
        for program in ["/bin/spin", "/bin/watched"] {
            let name = program.rsplit('/').next().expect("name");
            let (mut sys, ctl) =
                bench_support::boot_with_ctl_cfg(ksim::SimConfig::standard().fast_path(fast));
            sys.spawn_program(ctl, program, &[name]).expect("spawn");
            // Warm the caches (a no-op on the slow leg) so the timer
            // sees steady state, not the compulsory misses.
            sys.run_idle(64);
            group.bench_function(format!("{leg}/{name}_slice"), |b| {
                b.iter(|| sys.run_idle(1));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_rates();
    benches();
    Criterion.configure_from_args().final_summary();
}
