//! E13 — the execution fast path: a direct-mapped software TLB in
//! front of the address-space mapping search plus a per-LWP
//! decoded-instruction cache in front of fetch + decode.
//!
//! The paper's premise is that `/proc` makes debugging cheap because
//! the kernel already holds everything a debugger needs; this harness
//! extends that premise to the simulated CPU itself — the dominant cost
//! of every experiment above is retiring guest instructions, so E13
//! tracks how fast the hot loop runs with the caches on vs. off, and
//! what the hit rates are.
//!
//! Expected shape: ≥ 2× insns/sec on the hot loop (the smoke gate in
//! `tests/bench_smoke.rs` enforces exactly that and drops
//! `BENCH_E13.json` at the repo root); hit rates within a whisker of
//! 1.0 once the loop is warm.

use bench_support::{banner, boot_with_ctl, fast_path_pair};
use bench_support::{criterion_group, Criterion};

fn print_rates() {
    banner("E13", "execution fast path: software TLB + decoded-instruction cache");
    const TICKS: u64 = 4000;
    for program in ["/bin/spin", "/bin/watched"] {
        let (off, on) = fast_path_pair(program, TICKS, 3);
        println!(
            "{program:<14} slow path: {:>12.0} insns/s   fast path: {:>12.0} insns/s   ({:.2}x)",
            off.insns_per_sec,
            on.insns_per_sec,
            on.insns_per_sec / off.insns_per_sec,
        );
        println!(
            "{:14} dTLB {}/{} ({:.4} hit)   icache {}/{} ({:.4} hit)",
            "",
            on.tlb_hits,
            on.tlb_hits + on.tlb_misses,
            on.tlb_hit_rate(),
            on.icache_hits,
            on.icache_hits + on.icache_misses,
            on.icache_hit_rate(),
        );
    }
}

/// Times one scheduler slice of each workload under both legs; the
/// comparison the table above prints in insns/sec appears here as
/// per-slice latency.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_exec_fastpath");
    group.sample_size(20);
    for (leg, fast) in [("slow_path", false), ("fast_path", true)] {
        for program in ["/bin/spin", "/bin/watched"] {
            let name = program.rsplit('/').next().expect("name");
            let (mut sys, ctl) = boot_with_ctl();
            sys.set_fast_path(fast);
            sys.spawn_program(ctl, program, &[name]).expect("spawn");
            // Warm the caches (a no-op on the slow leg) so the timer
            // sees steady state, not the compulsory misses.
            sys.run_idle(64);
            group.bench_function(format!("{leg}/{name}_slice"), |b| {
                b.iter(|| sys.run_idle(1));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_rates();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
