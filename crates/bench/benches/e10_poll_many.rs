//! E10 — the poll extension: "it would be possible to permit /proc file
//! descriptors to be used with the poll(2) system call. This would make
//! it much easier for a debugger to wait for any one of a set of
//! controlled processes to stop ... more flexibility for multiprocess
//! debugger implementations than the current method of waiting for only
//! a single process to stop."
//!
//! N targets stop at staggered times; a poll-based controller collects
//! every stop as it happens, while the PIOCWSTOP-per-process controller
//! is stuck in pid order. Expected shape: poll services stops in arrival
//! order and scales with total events; sequential WSTOP waits head-of-
//! line.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use ksim::signal::SIGUSR1;
use ksim::SigSet;
use tools::ProcHandle;

/// Spawns N signal-traced spinners; returns their handles.
fn spawn_targets(
    sys: &mut ksim::System,
    ctl: ksim::Pid,
    n: usize,
) -> Vec<ProcHandle> {
    (0..n)
        .map(|_| {
            let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
            let mut h = ProcHandle::open_rw(sys, ctl, pid).expect("open");
            let mut set = SigSet::empty();
            set.add(SIGUSR1);
            h.set_sig_trace(sys, set).expect("trace");
            h
        })
        .collect()
}

/// Signals targets in reverse order so pid-ordered waiting is maximally
/// head-of-line blocked, then collects all stops with poll.
fn poll_collect(sys: &mut ksim::System, ctl: ksim::Pid, handles: &mut [ProcHandle]) -> Vec<u32> {
    for h in handles.iter_mut().rev() {
        h.kill(sys, SIGUSR1).expect("kill");
    }
    let fds: Vec<usize> = handles.iter().map(|h| h.fd).collect();
    let mut order = Vec::new();
    let mut done = vec![false; handles.len()];
    while order.len() < handles.len() {
        let statuses = sys.host_poll(ctl, &fds).expect("poll");
        let mut any = false;
        for (i, st) in statuses.iter().enumerate() {
            if st.readable && !done[i] {
                done[i] = true;
                any = true;
                order.push(handles[i].pid.0);
            }
        }
        if !any {
            sys.step();
        }
    }
    order
}

fn print_demo() {
    banner("E10", "poll(2) over /proc descriptors: wait for any of N targets");
    let (mut sys, ctl) = boot_with_ctl();
    let mut handles = spawn_targets(&mut sys, ctl, 5);
    let order = poll_collect(&mut sys, ctl, &mut handles);
    println!("5 targets signalled in reverse pid order; poll collected stops as: {order:?}");
    println!("(a single-process PIOCWSTOP loop would have waited on the lowest pid first)\n");
    for h in handles {
        let _ = h.close(&mut sys);
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_poll");
    group.sample_size(10);
    for n in [4usize, 16] {
        group.bench_function(format!("poll_collect_{n}_targets"), |b| {
            b.iter(|| {
                let (mut sys, ctl) = boot_with_ctl();
                let mut handles = spawn_targets(&mut sys, ctl, n);
                let order = poll_collect(&mut sys, ctl, &mut handles);
                assert_eq!(order.len(), n);
            })
        });
        group.bench_function(format!("wstop_sequential_{n}_targets"), |b| {
            b.iter(|| {
                let (mut sys, ctl) = boot_with_ctl();
                let mut handles = spawn_targets(&mut sys, ctl, n);
                for h in handles.iter_mut().rev() {
                    h.kill(&mut sys, SIGUSR1).expect("kill");
                }
                // Pid-ordered waiting: each WSTOP blocks until that
                // specific target stops.
                for h in handles.iter_mut() {
                    h.wstop(&mut sys).expect("wstop");
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_demo();
    benches();
    Criterion.configure_from_args().final_summary();
}
