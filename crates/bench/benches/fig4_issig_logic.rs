//! FIG4 — the paper's Figure 4: the complete control logic of `issig()`.
//! Every branch is driven by a scripted scenario directly against the
//! kernel, and the decision trace is printed; the benchmark times the
//! promotion/gate machinery itself.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::banner;
use bench_support::{criterion_group, Criterion};
use ksim::sched::{Issig, SleepSig};
use ksim::signal::{SigAction, SigSet, Handler, SIGCONT, SIGINT, SIGTSTP};
use ksim::{Cred, Kernel, Pid, RunOpts, Tid};

fn fresh() -> (Kernel, Pid) {
    let mut k = Kernel::new();
    let p0 = k.new_proc(Pid(0), Pid(0), Pid(0), Cred::superuser(), "sched", true);
    let pid = k.new_proc(p0, p0, p0, Cred::new(100, 10), "t", false);
    (k, pid)
}

const T: Tid = Tid(1);

fn scenario(name: &str, steps: impl FnOnce(&mut Kernel, Pid) -> Vec<String>) {
    let (mut k, pid) = fresh();
    println!("scenario: {name}");
    for line in steps(&mut k, pid) {
        println!("    {line}");
    }
}

fn print_figure() {
    banner("FIG4", "issig() control logic branch coverage (paper Figure 4)");

    scenario("untraced terminating signal", |k, pid| {
        k.post_signal(pid, SIGINT).expect("post");
        vec![format!("issig -> {:?} (promote, deliver via psig)", k.issig(pid, T))]
    });

    scenario("traced signal: signalled stop, then delivery if not cleared", |k, pid| {
        k.proc_mut(pid).expect("p").trace.sig_trace.add(SIGINT);
        k.post_signal(pid, SIGINT).expect("post");
        let mut out = vec![format!("issig -> {:?} (signalled stop)", k.issig(pid, T))];
        k.run_lwp(pid, T, RunOpts::default()).expect("run");
        out.push(format!("resume uncleared; issig -> {:?}", k.issig(pid, T)));
        out
    });

    scenario("traced signal cleared by debugger: nothing to do", |k, pid| {
        k.proc_mut(pid).expect("p").trace.sig_trace.add(SIGINT);
        k.post_signal(pid, SIGINT).expect("post");
        let mut out = vec![format!("issig -> {:?}", k.issig(pid, T))];
        k.run_lwp(pid, T, RunOpts { clear_sig: true, ..Default::default() }).expect("run");
        out.push(format!("resume cleared;   issig -> {:?}", k.issig(pid, T)));
        out
    });

    scenario("job-control double stop (traced SIGTSTP)", |k, pid| {
        k.proc_mut(pid).expect("p").trace.sig_trace.add(SIGTSTP);
        k.post_signal(pid, SIGTSTP).expect("post");
        let mut out = vec![format!("issig -> {:?} (signalled stop)", k.issig(pid, T))];
        k.run_lwp(pid, T, RunOpts::default()).expect("run");
        out.push(format!(
            "resume uncleared; issig -> {:?} (job-control stop, within issig)",
            k.issig(pid, T)
        ));
        out.push(format!(
            "PIOCRUN on job-control stop -> {:?} (only SIGCONT releases it)",
            k.run_lwp(pid, T, RunOpts::default())
        ));
        k.post_signal(pid, SIGCONT).expect("cont");
        out.push(format!("SIGCONT; issig -> {:?}", k.issig(pid, T)));
        out
    });

    scenario("/proc gets the last word after SIGCONT", |k, pid| {
        k.post_signal(pid, SIGTSTP).expect("post");
        let mut out = vec![format!("issig -> {:?} (job-control stop)", k.issig(pid, T))];
        k.direct_stop(pid).expect("dstop");
        k.post_signal(pid, SIGCONT).expect("cont");
        out.push(format!(
            "directive latched; SIGCONT; issig -> {:?} (requested stop before exiting issig)",
            k.issig(pid, T)
        ));
        out
    });

    scenario("ptrace competes: /proc first, then ptrace has control", |k, pid| {
        {
            let p = k.proc_mut(pid).expect("p");
            p.ptraced = true;
            p.trace.sig_trace.add(SIGINT);
        }
        k.post_signal(pid, SIGINT).expect("post");
        let mut out = vec![format!("issig -> {:?} (signalled stop first)", k.issig(pid, T))];
        k.run_lwp(pid, T, RunOpts::default()).expect("run via /proc");
        out.push(format!("issig -> {:?} (ptrace stop)", k.issig(pid, T)));
        out.push(format!(
            "PIOCRUN now -> {:?} (\"ptrace has control\")",
            k.run_lwp(pid, T, RunOpts::default())
        ));
        out
    });

    scenario("ignored-but-traced signal stops, then evaporates", |k, pid| {
        {
            let p = k.proc_mut(pid).expect("p");
            p.trace.sig_trace.add(SIGINT);
            p.actions.set(SIGINT, SigAction { handler: Handler::Ignore, mask: SigSet::empty() });
        }
        k.post_signal(pid, SIGINT).expect("post");
        let mut out = vec![format!("issig -> {:?} (tracing sees ignored signals)", k.issig(pid, T))];
        k.run_lwp(pid, T, RunOpts::default()).expect("run");
        out.push(format!("issig -> {:?} (nothing delivered)", k.issig(pid, T)));
        out
    });

    scenario("inside an interruptible sleep", |k, pid| {
        let mut out = Vec::new();
        k.proc_mut(pid).expect("p").lwps[0].stop_directive = true;
        out.push(format!(
            "directive while sleeping: issig_insleep -> {:?} (call undisturbed)",
            k.issig_insleep(pid, T)
        ));
        k.run_lwp(pid, T, RunOpts::default()).expect("run");
        out.push(format!("resumed: issig_insleep -> {:?}", k.issig_insleep(pid, T)));
        k.post_signal(pid, SIGINT).expect("post");
        out.push(format!(
            "real signal: issig_insleep -> {:?} (EINTR)",
            k.issig_insleep(pid, T)
        ));
        out
    });
    println!();
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig4/issig_no_signal", |b| {
        let (mut k, pid) = fresh();
        b.iter(|| {
            assert_eq!(k.issig(pid, T), Issig::Run);
        })
    });
    c.bench_function("fig4/issig_promote_and_deliver", |b| {
        let (mut k, pid) = fresh();
        b.iter(|| {
            k.post_signal(pid, SIGINT).expect("post");
            let _ = k.issig(pid, T);
            // psig would terminate; just clear the current signal.
            k.set_cursig(pid, T, None).expect("clear");
        })
    });
    c.bench_function("fig4/issig_insleep_retry", |b| {
        let (mut k, pid) = fresh();
        b.iter(|| {
            assert_eq!(k.issig_insleep(pid, T), SleepSig::Retry);
        })
    });
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion.configure_from_args().final_summary();
}
