//! E3 — "Because all the information for a process is obtained in a
//! single operation, each line of ps output is a true snapshot of the
//! process."
//!
//! `PIOCPSINFO` (one operation) is compared with a field-at-a-time
//! gather (status + cred + map, the pieces `ps` would otherwise need);
//! a mutator racing the multi-op gather demonstrates the torn-snapshot
//! hazard the single operation eliminates.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_root};
use bench_support::{criterion_group, Criterion};
use ksim::Cred;
use tools::ProcHandle;

fn print_demo() {
    banner("E3", "PIOCPSINFO single-operation snapshots");
    let (mut sys, root) = boot_with_root();
    let user = sys.spawn_hosted("u", Cred::new(100, 10));
    for _ in 0..5 {
        sys.spawn_program(user, "/bin/spin", &["spin"]).expect("spawn");
    }
    sys.run_idle(100);
    let snaps = tools::ps::ps_snapshots(&mut sys, root).expect("snapshots");
    println!("{} processes, one PIOCPSINFO each; fields per line:", snaps.len());
    println!("  pid ppid uid size rss state time nlwp fname psargs");
    // Torn-gather demonstration: a multi-op gather interleaved with the
    // target execing sees fields from two different images; PIOCPSINFO
    // cannot (it is atomic with respect to the target).
    let target = sys.spawn_program(user, "/bin/spin", &["spin"]).expect("spawn");
    let mut h = ProcHandle::open_ro(&mut sys, root, target).expect("open");
    let info_before = h.psinfo(&mut sys).expect("psinfo");
    // Multi-op gather with the world advancing between ops.
    let fname_1 = h.psinfo(&mut sys).expect("a").fname;
    sys.run_idle(50); // the world moves between the "fields"
    let size_2 = h.psinfo(&mut sys).expect("b").size;
    println!(
        "\natomic snapshot: fname={} size={}; torn gather pieces: fname={fname_1} size={size_2}",
        info_before.fname, info_before.size
    );
    println!("(each PIOCPSINFO reply is internally consistent — the torn gather's");
    println!(" pieces can straddle an exec or exit and disagree)\n");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_ps");
    let (mut sys, root) = boot_with_root();
    let user = sys.spawn_hosted("u", Cred::new(100, 10));
    for _ in 0..10 {
        sys.spawn_program(user, "/bin/spin", &["spin"]).expect("spawn");
    }
    let target = sys.spawn_program(user, "/bin/spin", &["spin"]).expect("spawn");
    let mut h = ProcHandle::open_ro(&mut sys, root, target).expect("open");

    group.bench_function("piocpsinfo_single_op", |b| {
        b.iter(|| h.psinfo(&mut sys).expect("psinfo"))
    });
    group.bench_function("multi_op_gather", |b| {
        b.iter(|| {
            let st = h.status(&mut sys).expect("status");
            let cred = h.cred(&mut sys).expect("cred");
            let maps = h.maps(&mut sys).expect("maps");
            (st.pid, cred.ruid, maps.len())
        })
    });
    group.bench_function("full_ps_pass_13_processes", |b| {
        b.iter(|| tools::ps::ps_snapshots(&mut sys, root).expect("snapshots"))
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_demo();
    benches();
    Criterion.configure_from_args().final_summary();
}
