//! FIG2 — regenerates the paper's Figure 2: the memory map returned by
//! `PIOCMAP` for a process running an a.out linked against a shared
//! library — private read/exec code mappings and read/write data
//! mappings for both, plus the named stack and break segments. Times
//! `PIOCMAP` itself.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use tools::pmap::pmap;
use tools::ProcHandle;

fn print_figure() {
    banner("FIG2", "PIOCMAP memory map of a library-linked process (paper Figure 2)");
    let (mut sys, ctl) = boot_with_ctl();
    let pid = sys.spawn_program(ctl, "/bin/libuser", &["libuser"]).expect("spawn");
    print!("{}", pmap(&mut sys, ctl, pid).expect("pmap"));
    println!(
        "\n(all mappings are MAP_PRIVATE; a controlling process can still\n\
         write the read/exec text through /proc, with copy-on-write)\n"
    );
}

fn bench(c: &mut Criterion) {
    let (mut sys, ctl) = boot_with_ctl();
    let pid = sys.spawn_program(ctl, "/bin/libuser", &["libuser"]).expect("spawn");
    let mut h = ProcHandle::open_ro(&mut sys, ctl, pid).expect("open");
    c.bench_function("fig2/piocmap", |b| b.iter(|| h.maps(&mut sys).expect("maps")));
    c.bench_function("fig2/piocmap_plus_render", |b| {
        b.iter(|| tools::pmap::render(&h.maps(&mut sys).expect("maps")))
    });
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion.configure_from_args().final_summary();
}
