//! E6 — the proposed watchpoint facility: "The traced process stops only
//! when a watchpoint really fires; the system takes care of the details
//! of recovering from machine faults taken due to references to
//! unwatched data that happens to fall in the same page as watched
//! data."
//!
//! Measured: target progress (instructions retired per host step budget)
//! with (a) no watchpoint, (b) a watchpoint in a page the loop never
//! touches, (c) a watchpoint sharing a page with unwatched data the loop
//! stores to. Expected shape: (a) ≈ (b) ≫ cost of an actual stop; (c)
//! slower than (b) (every same-page store takes the recovery path) but
//! the process never stops.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use procfs::PrWatch;
use tools::ProcHandle;

/// A loop that stores only to `quiet` (offset +512 from `cell`, same
/// page) — never to the watched bytes themselves.
const SAME_PAGE_LOOP: &str = r#"
_start:
    la   a0, cell
loop:
    addi a1, a1, 1
    st   a1, [a0+512]
    jmp  loop
.data
.align 8
cell: .space 1024
"#;

fn progress_with(watch: Option<PrWatch>) -> (u64, u64) {
    let (mut sys, ctl) = boot_with_ctl();
    sys.install_program("/bin/samepage", SAME_PAGE_LOOP);
    let pid = sys.spawn_program(ctl, "/bin/samepage", &["samepage"]).expect("spawn");
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    if let Some(w) = watch {
        h.stop(&mut sys).expect("stop");
        h.set_watch(&mut sys, w).expect("watch");
        h.resume(&mut sys).expect("run");
    }
    sys.run_idle(500);
    let usage = h.usage(&mut sys).expect("usage");
    (usage.cpu_ticks, usage.watch_recoveries)
}

fn print_table() {
    banner("E6", "watchpoint overhead: fires only on watched bytes");
    let cell = {
        let aout = ksim::aout::build_aout(SAME_PAGE_LOOP).expect("asm");
        aout.sym("cell").expect("cell")
    };
    let (base, _) = progress_with(None);
    let (other, rec_other) =
        progress_with(Some(PrWatch { vaddr: cell + 8192, size: 8, flags: 2 }));
    let (same, rec_same) = progress_with(Some(PrWatch { vaddr: cell, size: 8, flags: 2 }));
    println!("target progress over a fixed 500-step budget:");
    println!("  no watchpoint            : {base:>8} insns, 0 recoveries");
    println!("  watch in another page    : {other:>8} insns, {rec_other} recoveries");
    println!("  watch sharing the page   : {same:>8} insns, {rec_same} recoveries");
    println!("  (the process never stopped: no store touched the watched bytes)\n");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_watch");
    group.bench_function("store_no_watch", |b| {
        let (mut sys, ctl) = boot_with_ctl();
        sys.install_program("/bin/samepage", SAME_PAGE_LOOP);
        sys.spawn_program(ctl, "/bin/samepage", &["samepage"]).expect("spawn");
        b.iter(|| sys.run_idle(10));
    });
    group.bench_function("store_same_page_recovered", |b| {
        let (mut sys, ctl) = boot_with_ctl();
        sys.install_program("/bin/samepage", SAME_PAGE_LOOP);
        let pid = sys.spawn_program(ctl, "/bin/samepage", &["samepage"]).expect("spawn");
        let cell = ksim::aout::build_aout(SAME_PAGE_LOOP)
            .expect("asm")
            .sym("cell")
            .expect("cell");
        let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
        h.stop(&mut sys).expect("stop");
        h.set_watch(&mut sys, PrWatch { vaddr: cell, size: 8, flags: 2 }).expect("watch");
        h.resume(&mut sys).expect("run");
        b.iter(|| sys.run_idle(10));
    });
    group.bench_function("watch_fire_stop_resume", |b| {
        // The full fire-stop-resume cycle on /bin/watched.
        let (mut sys, ctl) = boot_with_ctl();
        let pid = sys.spawn_program(ctl, "/bin/watched", &["watched"]).expect("spawn");
        let cell = ksim::aout::build_aout(tools::userland::WATCH_TARGET)
            .expect("asm")
            .sym("cell")
            .expect("cell");
        let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
        h.stop(&mut sys).expect("stop");
        let mut flt = ksim::FltSet::empty();
        flt.add(ksim::Fault::Watch.number());
        h.set_flt_trace(&mut sys, flt).expect("trace");
        h.set_watch(&mut sys, PrWatch { vaddr: cell, size: 8, flags: 2 }).expect("watch");
        h.resume(&mut sys).expect("run");
        b.iter(|| {
            h.wstop(&mut sys).expect("fire");
            h.run(
                &mut sys,
                procfs::PrRun {
                    flags: procfs::PRRUN_CFAULT | procfs::PRRUN_WBYPASS,
                    vaddr: 0,
                },
            )
            .expect("resume");
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion.configure_from_args().final_summary();
}
