//! E5 — "Removing the dependence on ioctl simplifies the implementation
//! of /proc in a network environment. The unstructured nature of ioctl
//! operations and the variability of operand sizes and I/O directions
//! make it difficult to cleanly separate the client/server interactions;
//! read and write don't share these problems."
//!
//! Both `/proc` generations are mounted *behind the RFS-like remote
//! shim*. The flat interface only works because a hand-maintained
//! per-request wire table teaches the shim every `PIOC*` operand shape —
//! and operations outside the table (the deprecated variable-size dumps)
//! cannot cross at all. The hierarchical interface crosses generically.

use bench_support::banner;
use bench_support::{criterion_group, Criterion};
use ksim::{Cred, System};
use procfs::{HierFs, ProcFs, PrStatus};
use vfs::remote::{FaultPlan, FaultRates, IoctlWireSpec, RemoteFs};
use vfs::OFlags;

/// Boots a system whose /proc generations are mounted across the wire.
fn boot_remote() -> (System, ksim::Pid) {
    let mut sys = System::boot();
    tools::install_userland(&mut sys);
    // Flat /proc: needs the full ioctl wire table.
    let table: vfs::remote::IoctlTable = Box::new(|req| {
        procfs::ioctl::wire_spec(req).map(|(i, o)| IoctlWireSpec { in_len: i, out_len: o })
    });
    let flat = RemoteFs::new(Box::new(ProcFs::new())).with_ioctl_table(table);
    sys.mount("/proc", Box::new(flat));
    // Hierarchical /proc: crosses with no table at all.
    let hier = RemoteFs::new(Box::new(HierFs::new()));
    sys.mount("/proc2", Box::new(hier));
    let ctl = sys.spawn_hosted("remote-ctl", Cred::new(100, 10));
    (sys, ctl)
}

fn print_comparison() {
    banner("E5", "marshalling /proc across an RFS-like wire");
    // Drive the shims directly (unmounted) so their traffic counters are
    // observable.
    let mut sys = System::boot();
    tools::install_userland(&mut sys);
    let ctl = sys.spawn_hosted("remote-ctl", Cred::new(100, 10));
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    let cred = Cred::new(100, 10);

    let table: vfs::remote::IoctlTable = Box::new(|req| {
        procfs::ioctl::wire_spec(req).map(|(i, o)| IoctlWireSpec { in_len: i, out_len: o })
    });
    let mut flat = RemoteFs::new(Box::new(ProcFs::new())).with_ioctl_table(table);
    let mut hier = RemoteFs::new(Box::new(HierFs::new()));
    use vfs::FileSystem;

    // Flat: lookup, open, PIOCSTATUS via remote ioctl.
    let root = flat.root();
    let node = flat
        .lookup(&mut sys.kernel, ctl, root, &format!("{:05}", pid.0))
        .expect("lookup");
    let tok = flat.open(&mut sys.kernel, ctl, node, OFlags::rdonly(), &cred).expect("open");
    let reply = flat
        .ioctl(&mut sys.kernel, ctl, node, tok, procfs::ioctl::PIOCSTATUS, &[])
        .expect("status");
    if let vfs::IoctlReply::Done(bytes) = reply {
        assert!(PrStatus::from_bytes(&bytes).is_some());
    }
    println!(
        "flat PIOCSTATUS over the wire: OK — {} ops, {}B sent, {}B received",
        flat.stats.ops, flat.stats.bytes_sent, flat.stats.bytes_received
    );
    // The deprecated variable-size dump cannot cross.
    let err = flat.ioctl(&mut sys.kernel, ctl, node, tok, procfs::ioctl::PIOCGETPR, &[]);
    println!(
        "flat PIOCGETPR over the wire : {err:?} ({} refusal(s) — no wire shape exists)",
        flat.stats.unsupported_ioctls
    );

    // Hierarchical: pure lookup + read, no table anywhere.
    let root = hier.root();
    let pdir = hier
        .lookup(&mut sys.kernel, ctl, root, &pid.0.to_string())
        .expect("lookup pid");
    let snode = hier.lookup(&mut sys.kernel, ctl, pdir, "status").expect("lookup status");
    let stok = hier.open(&mut sys.kernel, ctl, snode, OFlags::rdonly(), &cred).expect("open");
    let mut buf = vec![0u8; PrStatus::WIRE_LEN];
    let reply = hier.read(&mut sys.kernel, ctl, snode, stok, 0, &mut buf).expect("read");
    assert_eq!(reply, vfs::IoReply::Done(PrStatus::WIRE_LEN));
    println!(
        "hier status by read(2)       : OK — {} ops, {}B sent, {}B received, 0 refusals",
        hier.stats.ops, hier.stats.bytes_sent, hier.stats.bytes_received
    );
    println!();
    println!("wire table size for the flat interface: {} PIOC requests", count_table());
    println!("wire table size for the hierarchy     : 0\n");
}

fn count_table() -> usize {
    (0x5001..=0x5025u32).filter(|r| procfs::ioctl::wire_spec(*r).is_some()).count()
}

/// Like [`boot_remote`] but the hierarchical mount's wire injects faults
/// at `permille` per class (drop/truncate/bitflip/duplicate/delay).
fn boot_remote_faulted(permille: u16) -> (System, ksim::Pid) {
    let mut sys = System::boot();
    tools::install_userland(&mut sys);
    let hier = RemoteFs::new(Box::new(HierFs::new()))
        .with_faults(FaultPlan::new(0xE5_FA_17, FaultRates::uniform(permille)));
    sys.mount("/proc2", Box::new(hier));
    let ctl = sys.spawn_hosted("remote-ctl", Cred::new(100, 10));
    (sys, ctl)
}

/// The fault-rate sweep: the same status-read workload at increasing
/// loss rates, reporting the recovery machinery's counters. The headline
/// claim is the *correctness* column — every outcome is either the right
/// bytes or a clean timeout, at any loss rate.
fn print_fault_sweep() {
    banner("E5b", "remote /proc under an increasingly lossy wire");
    println!(
        "{:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "rate(\u{2030})", "reads", "ok", "timeout", "retries", "dedup", "faults"
    );
    for permille in [0u16, 10, 50, 100, 200, 400] {
        let (mut sys, ctl) = boot_remote_faulted(permille);
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let path = format!("/proc2/{}/status", pid.0);
        let (mut ok, mut timeout) = (0u64, 0u64);
        let mut stats = Default::default();
        for _ in 0..200 {
            let fd = match sys.host_open(ctl, &path, OFlags::rdonly()) {
                Ok(fd) => fd,
                Err(_) => {
                    timeout += 1;
                    continue;
                }
            };
            let mut buf = vec![0u8; PrStatus::WIRE_LEN];
            match sys.host_read(ctl, fd, &mut buf) {
                Ok(n) => {
                    assert!(PrStatus::from_bytes(&buf[..n]).is_some(), "damaged bytes escaped");
                    ok += 1;
                }
                Err(_) => timeout += 1,
            }
            let _ = sys.host_close(ctl, fd);
        }
        // Final counter snapshot: the introspection ioctl is answered
        // client-side, but the open feeding it still crosses the lossy
        // wire — keep asking until one lands.
        for _ in 0..256 {
            let Ok(fd) = sys.host_open(ctl, &path, OFlags::rdonly()) else { continue };
            if let Ok(b) = sys.host_ioctl(ctl, fd, vfs::remote::PIOCWIRESTATS, &[]) {
                if let Some(s) = vfs::remote::WireStats::from_bytes(&b) {
                    stats = s;
                }
            }
            let _ = sys.host_close(ctl, fd);
            break;
        }
        println!(
            "{permille:>9} {:>8} {ok:>8} {timeout:>8} {:>8} {:>9} {:>9}",
            ok + timeout,
            stats.retries,
            stats.dedup_hits,
            stats.faults_injected(),
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_remote");
    group.bench_function("flat_remote_piocstatus", |b| {
        let (mut sys, ctl) = boot_remote();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", pid.0), OFlags::rdonly())
            .expect("open");
        b.iter(|| sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSTATUS, &[]).expect("status"));
    });
    group.bench_function("hier_remote_status_read", |b| {
        let (mut sys, ctl) = boot_remote();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let sfd = sys
            .host_open(ctl, &format!("/proc2/{}/status", pid.0), OFlags::rdonly())
            .expect("open");
        let mut buf = vec![0u8; PrStatus::WIRE_LEN];
        b.iter(|| {
            sys.host_lseek(ctl, sfd, 0, 0).expect("rewind");
            sys.host_read(ctl, sfd, &mut buf).expect("read")
        });
    });
    group.bench_function("hier_remote_status_read_faulted_5pct", |b| {
        let (mut sys, ctl) = boot_remote_faulted(50);
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let path = format!("/proc2/{}/status", pid.0);
        let mut buf = vec![0u8; PrStatus::WIRE_LEN];
        b.iter(|| {
            // Opens can time out on a lossy wire; keep the workload's
            // shape honest by paying for the reopen when they do.
            let fd = loop {
                if let Ok(fd) = sys.host_open(ctl, &path, OFlags::rdonly()) {
                    break fd;
                }
            };
            let r = sys.host_read(ctl, fd, &mut buf);
            let _ = sys.host_close(ctl, fd);
            r
        });
    });
    group.bench_function("local_piocstatus_baseline", |b| {
        let (mut sys, ctl) = bench_support::boot_with_ctl();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", pid.0), OFlags::rdonly())
            .expect("open");
        b.iter(|| sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSTATUS, &[]).expect("status"));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    print_fault_sweep();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
