//! E5 — "Removing the dependence on ioctl simplifies the implementation
//! of /proc in a network environment. The unstructured nature of ioctl
//! operations and the variability of operand sizes and I/O directions
//! make it difficult to cleanly separate the client/server interactions;
//! read and write don't share these problems."
//!
//! Both `/proc` generations are mounted *behind the RFS-like remote
//! shim*. The flat interface only works because a hand-maintained
//! per-request wire table teaches the shim every `PIOC*` operand shape —
//! and operations outside the table (the deprecated variable-size dumps)
//! cannot cross at all. The hierarchical interface crosses generically.

use bench_support::banner;
use bench_support::{criterion_group, Criterion};
use ksim::{Cred, System};
use procfs::{HierFs, ProcFs, PrStatus};
use vfs::remote::{IoctlWireSpec, RemoteFs};
use vfs::OFlags;

/// Boots a system whose /proc generations are mounted across the wire.
fn boot_remote() -> (System, ksim::Pid) {
    let mut sys = System::boot();
    tools::install_userland(&mut sys);
    // Flat /proc: needs the full ioctl wire table.
    let table: vfs::remote::IoctlTable = Box::new(|req| {
        procfs::ioctl::wire_spec(req).map(|(i, o)| IoctlWireSpec { in_len: i, out_len: o })
    });
    let flat = RemoteFs::new(Box::new(ProcFs::new())).with_ioctl_table(table);
    sys.mount("/proc", Box::new(flat));
    // Hierarchical /proc: crosses with no table at all.
    let hier = RemoteFs::new(Box::new(HierFs::new()));
    sys.mount("/proc2", Box::new(hier));
    let ctl = sys.spawn_hosted("remote-ctl", Cred::new(100, 10));
    (sys, ctl)
}

fn print_comparison() {
    banner("E5", "marshalling /proc across an RFS-like wire");
    // Drive the shims directly (unmounted) so their traffic counters are
    // observable.
    let mut sys = System::boot();
    tools::install_userland(&mut sys);
    let ctl = sys.spawn_hosted("remote-ctl", Cred::new(100, 10));
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    let cred = Cred::new(100, 10);

    let table: vfs::remote::IoctlTable = Box::new(|req| {
        procfs::ioctl::wire_spec(req).map(|(i, o)| IoctlWireSpec { in_len: i, out_len: o })
    });
    let mut flat = RemoteFs::new(Box::new(ProcFs::new())).with_ioctl_table(table);
    let mut hier = RemoteFs::new(Box::new(HierFs::new()));
    use vfs::FileSystem;

    // Flat: lookup, open, PIOCSTATUS via remote ioctl.
    let root = flat.root();
    let node = flat
        .lookup(&mut sys.kernel, ctl, root, &format!("{:05}", pid.0))
        .expect("lookup");
    let tok = flat.open(&mut sys.kernel, ctl, node, OFlags::rdonly(), &cred).expect("open");
    let reply = flat
        .ioctl(&mut sys.kernel, ctl, node, tok, procfs::ioctl::PIOCSTATUS, &[])
        .expect("status");
    if let vfs::IoctlReply::Done(bytes) = reply {
        assert!(PrStatus::from_bytes(&bytes).is_some());
    }
    println!(
        "flat PIOCSTATUS over the wire: OK — {} ops, {}B sent, {}B received",
        flat.stats.ops, flat.stats.bytes_sent, flat.stats.bytes_received
    );
    // The deprecated variable-size dump cannot cross.
    let err = flat.ioctl(&mut sys.kernel, ctl, node, tok, procfs::ioctl::PIOCGETPR, &[]);
    println!(
        "flat PIOCGETPR over the wire : {err:?} ({} refusal(s) — no wire shape exists)",
        flat.stats.unsupported_ioctls
    );

    // Hierarchical: pure lookup + read, no table anywhere.
    let root = hier.root();
    let pdir = hier
        .lookup(&mut sys.kernel, ctl, root, &pid.0.to_string())
        .expect("lookup pid");
    let snode = hier.lookup(&mut sys.kernel, ctl, pdir, "status").expect("lookup status");
    let stok = hier.open(&mut sys.kernel, ctl, snode, OFlags::rdonly(), &cred).expect("open");
    let mut buf = vec![0u8; PrStatus::WIRE_LEN];
    let reply = hier.read(&mut sys.kernel, ctl, snode, stok, 0, &mut buf).expect("read");
    assert_eq!(reply, vfs::IoReply::Done(PrStatus::WIRE_LEN));
    println!(
        "hier status by read(2)       : OK — {} ops, {}B sent, {}B received, 0 refusals",
        hier.stats.ops, hier.stats.bytes_sent, hier.stats.bytes_received
    );
    println!();
    println!("wire table size for the flat interface: {} PIOC requests", count_table());
    println!("wire table size for the hierarchy     : 0\n");
}

fn count_table() -> usize {
    (0x5001..=0x5025u32).filter(|r| procfs::ioctl::wire_spec(*r).is_some()).count()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_remote");
    group.bench_function("flat_remote_piocstatus", |b| {
        let (mut sys, ctl) = boot_remote();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", pid.0), OFlags::rdonly())
            .expect("open");
        b.iter(|| sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSTATUS, &[]).expect("status"));
    });
    group.bench_function("hier_remote_status_read", |b| {
        let (mut sys, ctl) = boot_remote();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let sfd = sys
            .host_open(ctl, &format!("/proc2/{}/status", pid.0), OFlags::rdonly())
            .expect("open");
        let mut buf = vec![0u8; PrStatus::WIRE_LEN];
        b.iter(|| {
            sys.host_lseek(ctl, sfd, 0, 0).expect("rewind");
            sys.host_read(ctl, sfd, &mut buf).expect("read")
        });
    });
    group.bench_function("local_piocstatus_baseline", |b| {
        let (mut sys, ctl) = bench_support::boot_with_ctl();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", pid.0), OFlags::rdonly())
            .expect("open");
        b.iter(|| sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSTATUS, &[]).expect("status"));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
