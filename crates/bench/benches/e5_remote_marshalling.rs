//! E5 — "Removing the dependence on ioctl simplifies the implementation
//! of /proc in a network environment. The unstructured nature of ioctl
//! operations and the variability of operand sizes and I/O directions
//! make it difficult to cleanly separate the client/server interactions;
//! read and write don't share these problems."
//!
//! Both `/proc` generations are mounted *behind the RFS-like remote
//! shim*. The flat interface only works because a per-request wire table
//! (one shared table, built from the typed `Ioctl` enum) teaches the
//! shim every `PIOC*` operand shape — and operations outside the table
//! (the deprecated variable-size dumps) cannot cross at all. The
//! hierarchical interface crosses generically. E5c adds the wire v2
//! payoff: many clients' tagged ops in flight at once complete out of
//! order, beating one-at-a-time calls on the same lossy wire.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::banner;
use bench_support::{criterion_group, Criterion};
use ksim::{Cred, System};
use procfs::{HierFs, ProcFs, PrStatus};
use tools::proc_io::ProcHandle;
use vfs::remote::{FaultRates, RemoteFs, WireConfig};
use vfs::OFlags;

/// Boots a system whose /proc generations are mounted across the wire.
fn boot_remote() -> (System, ksim::Pid) {
    let mut sys = System::boot();
    tools::install_userland(&mut sys);
    // Flat /proc: needs the full ioctl wire table — the one the typed
    // request enum exports, not a hand-rolled copy.
    let flat = RemoteFs::new(Box::new(ProcFs::new()))
        .with_ioctl_table(procfs::ioctl::wire_table());
    sys.mount("/proc", Box::new(flat));
    // Hierarchical /proc: crosses with no table at all.
    let hier = RemoteFs::new(Box::new(HierFs::new()));
    sys.mount("/proc2", Box::new(hier));
    let ctl = sys.spawn_hosted("remote-ctl", Cred::new(100, 10));
    (sys, ctl)
}

fn print_comparison() {
    banner("E5", "marshalling /proc across an RFS-like wire");
    // Both generations are mounted; the tools' one transport path (the
    // same ProcHandle the debugger uses) drives them, and the shim's
    // locally-answered PIOCWIRESTATS exposes the traffic counters.
    let (mut sys, ctl) = boot_remote();
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");

    // Flat: open + PIOCSTATUS through the wire.
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    let st = h.status(&mut sys).expect("status");
    assert_ne!(st.pid, 0);
    let w = h.wire_stats(&mut sys).expect("wire stats");
    println!(
        "flat PIOCSTATUS over the wire: OK — {} ops, {}B sent, {}B received",
        w.ops, w.bytes_sent, w.bytes_received
    );
    // The deprecated variable-size dump cannot cross.
    let err = sys.host_ioctl(ctl, h.fd, procfs::ioctl::PIOCGETPR, &[]);
    let w = h.wire_stats(&mut sys).expect("wire stats");
    println!(
        "flat PIOCGETPR over the wire : {err:?} ({} refusal(s) — no wire shape exists)",
        w.unsupported_ioctls
    );
    h.close(&mut sys).expect("close");

    // Hierarchical: pure lookup + read, no table anywhere.
    let path = format!("/proc2/{}/status", pid.0);
    let sfd = sys.host_open(ctl, &path, OFlags::rdonly()).expect("open status");
    let mut buf = vec![0u8; PrStatus::WIRE_LEN];
    let n = sys.host_read(ctl, sfd, &mut buf).expect("read");
    assert_eq!(n, PrStatus::WIRE_LEN);
    let w = vfs::remote::WireStats::from_bytes(
        &sys.host_ioctl(ctl, sfd, vfs::remote::PIOCWIRESTATS, &[]).expect("wire stats"),
    )
    .expect("decode");
    sys.host_close(ctl, sfd).expect("close");
    println!(
        "hier status by read(2)       : OK — {} ops, {}B sent, {}B received, 0 refusals",
        w.ops, w.bytes_sent, w.bytes_received
    );
    println!();
    println!("wire table size for the flat interface: {} PIOC requests", count_table());
    println!("wire table size for the hierarchy     : 0\n");
}

fn count_table() -> usize {
    (0x5001..=0x5026u32).filter(|r| procfs::ioctl::wire_spec(*r).is_some()).count()
}

/// Like [`boot_remote`] but the hierarchical mount's wire injects faults
/// at `permille` per class (drop/truncate/bitflip/duplicate/delay).
fn boot_remote_faulted(permille: u16) -> (System, ksim::Pid) {
    let mut sys = System::boot();
    tools::install_userland(&mut sys);
    let hier = RemoteFs::new(Box::new(HierFs::new()))
        .with_config(&WireConfig::faulty(0xE5_FA_17, FaultRates::uniform(permille)));
    sys.mount("/proc2", Box::new(hier));
    let ctl = sys.spawn_hosted("remote-ctl", Cred::new(100, 10));
    (sys, ctl)
}

/// The fault-rate sweep: the same status-read workload at increasing
/// loss rates, reporting the recovery machinery's counters. The headline
/// claim is the *correctness* column — every outcome is either the right
/// bytes or a clean timeout, at any loss rate.
fn print_fault_sweep() {
    banner("E5b", "remote /proc under an increasingly lossy wire");
    println!(
        "{:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "rate(\u{2030})", "reads", "ok", "timeout", "retries", "dedup", "faults"
    );
    for permille in [0u16, 10, 50, 100, 200, 400] {
        let (mut sys, ctl) = boot_remote_faulted(permille);
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let path = format!("/proc2/{}/status", pid.0);
        let (mut ok, mut timeout) = (0u64, 0u64);
        let mut stats = Default::default();
        for _ in 0..200 {
            let fd = match sys.host_open(ctl, &path, OFlags::rdonly()) {
                Ok(fd) => fd,
                Err(_) => {
                    timeout += 1;
                    continue;
                }
            };
            let mut buf = vec![0u8; PrStatus::WIRE_LEN];
            match sys.host_read(ctl, fd, &mut buf) {
                Ok(n) => {
                    assert!(PrStatus::from_bytes(&buf[..n]).is_some(), "damaged bytes escaped");
                    ok += 1;
                }
                Err(_) => timeout += 1,
            }
            let _ = sys.host_close(ctl, fd);
        }
        // Final counter snapshot: the introspection ioctl is answered
        // client-side, but the open feeding it still crosses the lossy
        // wire — keep asking until one lands.
        for _ in 0..256 {
            let Ok(fd) = sys.host_open(ctl, &path, OFlags::rdonly()) else { continue };
            if let Ok(b) = sys.host_ioctl(ctl, fd, vfs::remote::PIOCWIRESTATS, &[]) {
                if let Some(s) = vfs::remote::WireStats::from_bytes(&b) {
                    stats = s;
                }
            }
            let _ = sys.host_close(ctl, fd);
            break;
        }
        println!(
            "{permille:>9} {:>8} {ok:>8} {timeout:>8} {:>8} {:>9} {:>9}",
            ok + timeout,
            stats.retries,
            stats.dedup_hits,
            stats.faults_injected(),
        );
    }
    println!();
}

/// The wire v2 payoff: N client handles, ops tagged and in flight
/// together, completions demultiplexed out of order — against the same
/// workload issued one blocking op at a time over an identical fault
/// schedule. Time is virtual ticks of the session clock (deterministic).
fn print_multi_client_sweep() {
    banner("E5c", "pipelined multi-client sessions vs. serial ops");
    println!(
        "{:>9} {:>6} {:>10} {:>10} {:>11} {:>11} {:>8}",
        "rate(\u{2030})", "ops", "serial-ok", "piped-ok", "serial-tick", "piped-tick", "speedup"
    );
    for p in bench_support::multi_client_wire_sweep(&[0, 50, 150, 300], 4, 24, 0xE5C0) {
        println!(
            "{:>9} {:>6} {:>10} {:>10} {:>11} {:>11} {:>7.1}x",
            p.permille,
            p.ops,
            p.serial_ok,
            p.pipelined_ok,
            p.serial_ticks,
            p.pipelined_ticks,
            p.serial_ticks as f64 / p.pipelined_ticks.max(1) as f64,
        );
    }
    println!();
}

/// E5d: the readiness-loop server under a rising client count, on a
/// clean wire and under the full adversarial-client mix (slow readers,
/// half-open sessions, frame floods, mid-frame cuts, stale-tag
/// replays). Throughput is successful ops per 1000 virtual ticks; p99
/// is the submit-to-completion latency of the 99th-percentile
/// successful op. Deterministic: same seed, same table.
fn print_client_count_sweep() {
    banner("E5d", "wire server client-count sweep, clean vs. adversarial");
    println!(
        "{:>8} {:>5} {:>6} {:>5} {:>9} {:>7} {:>9} {:>7} {:>6} {:>6}",
        "clients", "mix", "ops", "ok", "ticks", "p99", "ok/ktick", "in-hwm", "evict", "shed"
    );
    for adversarial in [false, true] {
        for p in
            bench_support::client_count_sweep(&[1, 8, 64, 256, 1000], 4, adversarial, 0xE5D0)
        {
            println!(
                "{:>8} {:>5} {:>6} {:>5} {:>9} {:>7} {:>9.2} {:>7} {:>6} {:>6}",
                p.clients,
                if p.adversarial { "adv" } else { "clean" },
                p.ops,
                p.ok,
                p.ticks,
                p.p99_ticks,
                p.ok_per_kilotick,
                p.in_queue_hwm,
                p.sessions_evicted,
                p.frames_shed,
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_remote");
    group.bench_function("flat_remote_piocstatus", |b| {
        let (mut sys, ctl) = boot_remote();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", pid.0), OFlags::rdonly())
            .expect("open");
        b.iter(|| sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSTATUS, &[]).expect("status"));
    });
    group.bench_function("hier_remote_status_read", |b| {
        let (mut sys, ctl) = boot_remote();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let sfd = sys
            .host_open(ctl, &format!("/proc2/{}/status", pid.0), OFlags::rdonly())
            .expect("open");
        let mut buf = vec![0u8; PrStatus::WIRE_LEN];
        b.iter(|| {
            sys.host_lseek(ctl, sfd, 0, 0).expect("rewind");
            sys.host_read(ctl, sfd, &mut buf).expect("read")
        });
    });
    group.bench_function("hier_remote_status_read_faulted_5pct", |b| {
        let (mut sys, ctl) = boot_remote_faulted(50);
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let path = format!("/proc2/{}/status", pid.0);
        let mut buf = vec![0u8; PrStatus::WIRE_LEN];
        b.iter(|| {
            // Opens can time out on a lossy wire; keep the workload's
            // shape honest by paying for the reopen when they do.
            let fd = loop {
                if let Ok(fd) = sys.host_open(ctl, &path, OFlags::rdonly()) {
                    break fd;
                }
            };
            let r = sys.host_read(ctl, fd, &mut buf);
            let _ = sys.host_close(ctl, fd);
            r
        });
    });
    group.bench_function("local_piocstatus_baseline", |b| {
        let (mut sys, ctl) = bench_support::boot_with_ctl();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", pid.0), OFlags::rdonly())
            .expect("open");
        b.iter(|| sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSTATUS, &[]).expect("status"));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    print_fault_sweep();
    print_multi_client_sweep();
    print_client_count_sweep();
    benches();
    Criterion.configure_from_args().final_summary();
}
