//! E8 — "truss will not alter the behavior of a process other than by
//! slowing it down."
//!
//! A syscall-heavy program runs traced and untraced: the observable
//! behaviour (exit status, file side effects) is identical; the trace
//! costs two stops plus controller work per system call. Expected shape:
//! a large constant slowdown factor per syscall, zero behavioural
//! difference.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use ksim::ptrace::{decode_status, WaitStatus};
use tools::{truss_command, TrussOptions};

fn print_demo() {
    banner("E8", "truss overhead: identical behaviour, slower execution");
    // Untraced run.
    let (mut sys, ctl) = boot_with_ctl();
    sys.spawn_program(ctl, "/bin/greeter", &["greeter"]).expect("spawn");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    let untraced = decode_status(status);
    let untraced_file = read_greeting(&mut sys, ctl);
    // Traced run.
    let (mut sys, ctl) = boot_with_ctl();
    let report = truss_command(
        &mut sys,
        ctl,
        "/bin/greeter",
        &["greeter"],
        &TrussOptions::default(),
    )
    .expect("truss");
    let traced = decode_status(report.exits[0].1);
    let traced_file = read_greeting(&mut sys, ctl);
    println!("untraced: exit {untraced:?}, file content {untraced_file:?}");
    println!("traced  : exit {traced:?}, file content {traced_file:?}");
    assert_eq!(untraced, traced);
    assert_eq!(untraced_file, traced_file);
    println!("behaviour identical; {} trace lines produced\n", report.lines.len());
}

fn read_greeting(sys: &mut ksim::System, ctl: ksim::Pid) -> String {
    let fd = sys.host_open(ctl, "/tmp/greeting", vfs::OFlags::rdonly()).expect("open");
    let mut buf = [0u8; 64];
    let n = sys.host_read(ctl, fd, &mut buf).expect("read");
    sys.host_close(ctl, fd).expect("close");
    String::from_utf8_lossy(&buf[..n]).into_owned()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_truss");
    group.sample_size(10);
    group.bench_function("burst_untraced", |b| {
        b.iter(|| {
            let (mut sys, ctl) = boot_with_ctl();
            sys.spawn_program(ctl, "/bin/burst", &["burst"]).expect("spawn");
            let (_, status) = sys.host_wait(ctl).expect("wait");
            assert_eq!(decode_status(status), WaitStatus::Exited(0));
        })
    });
    group.bench_function("burst_traced", |b| {
        b.iter(|| {
            let (mut sys, ctl) = boot_with_ctl();
            let report = truss_command(
                &mut sys,
                ctl,
                "/bin/burst",
                &["burst"],
                &TrussOptions { faults: false, follow: false, max_events: 50_000 },
            )
            .expect("truss");
            assert_eq!(decode_status(report.exits[0].1), WaitStatus::Exited(0));
        })
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_demo();
    benches();
    Criterion.configure_from_args().final_summary();
}
