//! FIG1 — regenerates the paper's Figure 1, `ls -l /proc`: a directory of
//! process files named by pid, owned by the real uid/gid, sized by total
//! virtual memory, with system processes at size zero. Times the full
//! readdir-plus-stat pass that `ls` performs.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_root};
use bench_support::{criterion_group, Criterion};
use ksim::Cred;
use tools::lsproc::ls_l_proc;
use tools::UserTable;

fn print_figure() {
    banner("FIG1", "ls -l /proc (paper Figure 1)");
    let (mut sys, root) = boot_with_root();
    // Recreate the figure's population: system processes (0, 1, 2 — our
    // pid 2 is the hosted root controller standing in for pageout) plus
    // user processes owned by different users, as in the paper.
    let rrg = sys.spawn_hosted("rrg-shell", Cred::new(101, 10));
    let weath = sys.spawn_hosted("weath-shell", Cred::new(102, 10));
    let raf = sys.spawn_hosted("raf-shell", Cred::new(103, 10));
    sys.spawn_program(rrg, "/bin/spin", &["spin"]).expect("spawn");
    sys.spawn_program(weath, "/bin/sleeper", &["sleeper"]).expect("spawn");
    sys.spawn_program(raf, "/bin/ticker", &["ticker"]).expect("spawn");
    sys.run_idle(100);
    let mut users = UserTable::default();
    users.add_user(101, "rrg").add_user(102, "weath").add_user(103, "raf");
    print!("{}", ls_l_proc(&mut sys, root, &users).expect("ls"));
    println!();
}

fn bench(c: &mut Criterion) {
    let (mut sys, root) = boot_with_root();
    for i in 0..20 {
        let owner = sys.spawn_hosted(&format!("sh{i}"), Cred::new(100 + i, 10));
        sys.spawn_program(owner, "/bin/spin", &["spin"]).expect("spawn");
    }
    let users = UserTable::default();
    c.bench_function("fig1/ls_l_proc_23_processes", |b| {
        b.iter(|| ls_l_proc(&mut sys, root, &users).expect("ls"))
    });
    c.bench_function("fig1/readdir_only", |b| {
        b.iter(|| sys.list_dir(root, "/proc").expect("readdir"))
    });
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion.configure_from_args().final_summary();
}
