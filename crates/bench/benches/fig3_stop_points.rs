//! FIG3 — the paper's Figure 3: the points in the kernel at which a
//! traced process may stop. One target is driven through every stop
//! point — system call entry, system call exit, machine fault, signalled
//! stop, requested stop, job-control stop — and the observed trace is
//! printed. Times a stop-resume round trip at each point.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use ksim::fault::FltSet;
use ksim::signal::{SigSet, SIGCONT, SIGTSTP, SIGUSR1};
use ksim::sysno::{SysSet, SYS_GETPID};
use procfs::{PrRun, PrWhy, PRRUN_CFAULT, PRRUN_CSIG};
use tools::ProcHandle;

const TARGET: &str = r#"
_start:
loop:
    movi rv, 20        ; getpid — entry and exit stop points
    syscall
    jmp  loop
"#;

fn why_name(w: PrWhy) -> &'static str {
    match w {
        PrWhy::Requested => "PR_REQUESTED (stop directive)",
        PrWhy::Signalled => "PR_SIGNALLED (traced signal received)",
        PrWhy::SyscallEntry => "PR_SYSENTRY (system call entry)",
        PrWhy::SyscallExit => "PR_SYSEXIT  (system call exit)",
        PrWhy::Faulted => "PR_FAULTED  (traced machine fault)",
        PrWhy::JobControl => "PR_JOBCONTROL (stop signal default action)",
        PrWhy::Ptrace => "PR_PTRACE   (old-style ptrace)",
        PrWhy::None => "running",
    }
}

fn print_figure() {
    banner("FIG3", "stop points in the kernel (paper Figure 3)");
    let (mut sys, ctl) = boot_with_ctl();
    sys.install_program("/bin/fig3", TARGET);
    let pid = sys.spawn_program(ctl, "/bin/fig3", &["fig3"]).expect("spawn");
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    let mut seen = Vec::new();

    // 1. Requested stop.
    let st = h.stop(&mut sys).expect("stop");
    seen.push((st.why, st.what));
    // 2/3. Syscall entry and exit.
    let mut set = SysSet::empty();
    set.add(SYS_GETPID as usize);
    h.set_entry_trace(&mut sys, set).expect("entry");
    h.set_exit_trace(&mut sys, set).expect("exit");
    h.resume(&mut sys).expect("run");
    let st = h.wstop(&mut sys).expect("wstop");
    seen.push((st.why, st.what));
    h.resume(&mut sys).expect("run");
    let st = h.wstop(&mut sys).expect("wstop");
    seen.push((st.why, st.what));
    h.set_entry_trace(&mut sys, SysSet::empty()).expect("entry off");
    h.set_exit_trace(&mut sys, SysSet::empty()).expect("exit off");
    // 4. Machine fault: plant a breakpoint over the loop.
    let aout = h.read_aout(&mut sys).expect("aout");
    let looppc = aout.sym("loop").expect("loop");
    let mut saved = [0u8; 8];
    h.read_mem(&mut sys, looppc, &mut saved).expect("read");
    h.write_mem(&mut sys, looppc, &isa::insn::breakpoint_bytes()).expect("plant");
    let mut flt = FltSet::empty();
    flt.add(ksim::Fault::Bpt.number());
    h.set_flt_trace(&mut sys, flt).expect("fault trace");
    h.resume(&mut sys).expect("run");
    let st = h.wstop(&mut sys).expect("wstop");
    seen.push((st.why, st.what));
    h.write_mem(&mut sys, looppc, &saved).expect("restore");
    // 5. Signalled stop.
    let mut sigs = SigSet::empty();
    sigs.add(SIGUSR1);
    sigs.add(SIGTSTP);
    h.set_sig_trace(&mut sys, sigs).expect("sig trace");
    h.kill(&mut sys, SIGUSR1).expect("kill");
    h.run(&mut sys, PrRun { flags: PRRUN_CFAULT, vaddr: 0 }).expect("run");
    let st = h.wstop(&mut sys).expect("wstop");
    seen.push((st.why, st.what));
    // 6. Job-control stop: run on with SIGTSTP uncleared ("stops twice").
    h.kill(&mut sys, SIGTSTP).expect("tstp");
    h.run(&mut sys, PrRun { flags: PRRUN_CSIG, vaddr: 0 }).expect("run");
    let st = h.wstop(&mut sys).expect("signalled for TSTP");
    seen.push((st.why, st.what));
    h.resume(&mut sys).expect("run without clearing");
    sys.run_idle(10);
    let st = h.status(&mut sys).expect("status");
    seen.push((st.why, st.what));
    let _ = sys.host_kill(ctl, pid, SIGCONT);

    println!("observed stop sequence for one process:");
    for (i, (why, what)) in seen.iter().enumerate() {
        println!("  {}. {:<44} what={}", i + 1, why_name(*why), what);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    // Round-trip cost per stop point: requested, syscall-entry, fault.
    let (mut sys, ctl) = boot_with_ctl();
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
    c.bench_function("fig3/requested_stop_resume", |b| {
        b.iter(|| {
            h.stop(&mut sys).expect("stop");
            h.resume(&mut sys).expect("run");
            sys.run_idle(2);
        })
    });

    let (mut sys2, ctl2) = boot_with_ctl();
    sys2.install_program("/bin/fig3", TARGET);
    let pid2 = sys2.spawn_program(ctl2, "/bin/fig3", &["fig3"]).expect("spawn");
    let mut h2 = ProcHandle::open_rw(&mut sys2, ctl2, pid2).expect("open");
    let mut set = SysSet::empty();
    set.add(SYS_GETPID as usize);
    h2.set_entry_trace(&mut sys2, set).expect("entry");
    c.bench_function("fig3/syscall_entry_stop_resume", |b| {
        b.iter(|| {
            h2.wstop(&mut sys2).expect("wstop");
            h2.resume(&mut sys2).expect("run");
        })
    });
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion.configure_from_args().final_summary();
}
