//! E9 — "Copy-on-write is performed by the system excepting only
//! bona-fide shared memory; writing to one process will not corrupt
//! another process executing the same executable file or shared
//! library."
//!
//! Two processes run the same a.out; a breakpoint planted in one is
//! invisible to the other and to the executable file. The benchmark
//! times the first (copying) write against subsequent writes to the
//! already-private page.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use tools::ProcHandle;

fn print_demo() {
    banner("E9", "copy-on-write isolation of /proc writes");
    let (mut sys, ctl) = boot_with_ctl();
    let a = sys.spawn_program(ctl, "/bin/ticker", &["ticker"]).expect("spawn a");
    let b = sys.spawn_program(ctl, "/bin/ticker", &["ticker"]).expect("spawn b");
    let tick = ksim::aout::build_aout(tools::userland::TICKER)
        .expect("asm")
        .sym("tick")
        .expect("sym");
    let mut ha = ProcHandle::open_rw(&mut sys, ctl, a).expect("open a");
    let mut hb = ProcHandle::open_rw(&mut sys, ctl, b).expect("open b");
    ha.write_mem(&mut sys, tick, &isa::insn::breakpoint_bytes()).expect("plant in a");
    let mut wa = [0u8; 8];
    let mut wb = [0u8; 8];
    ha.read_mem(&mut sys, tick, &mut wa).expect("read a");
    hb.read_mem(&mut sys, tick, &mut wb).expect("read b");
    println!("breakpoint planted in process {}:", a.0);
    println!("  process {} sees {:02x?}", a.0, &wa[..2]);
    println!("  process {} sees {:02x?}  (unchanged)", b.0, &wb[..2]);
    assert_ne!(wa, wb);
    // The executable file itself is untouched.
    let meta = sys.stat_path(ctl, "/bin/ticker").expect("stat");
    let fd = sys.host_open(ctl, "/bin/ticker", vfs::OFlags::rdonly()).expect("open file");
    let mut image = vec![0u8; meta.size as usize];
    let mut off = 0;
    while off < image.len() {
        let n = sys.host_read(ctl, fd, &mut image[off..]).expect("read");
        if n == 0 {
            break;
        }
        off += n;
    }
    let aout = ksim::Aout::from_bytes(&image).expect("parse");
    let text_off = (tick - aout.text_base) as usize;
    println!(
        "  the a.out file still holds  {:02x?}  at that offset",
        &aout.text[text_off..text_off + 2]
    );
    assert_ne!(&aout.text[text_off..text_off + 8], &wa);
    // And process b still runs correctly.
    sys.run_idle(100);
    assert!(!sys.kernel.proc(b).expect("alive").zombie);
    println!("  process {} continues running the shared text unharmed\n", b.0);
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_cow");
    group.bench_function("first_write_copies_page", |b| {
        // Fresh process each iteration: the write must copy the shared
        // text page.
        let (mut sys, ctl) = boot_with_ctl();
        let tick = ksim::aout::build_aout(tools::userland::TICKER)
            .expect("asm")
            .sym("tick")
            .expect("sym");
        b.iter(|| {
            let pid = sys.spawn_program(ctl, "/bin/ticker", &["t"]).expect("spawn");
            let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
            h.write_mem(&mut sys, tick, &isa::insn::breakpoint_bytes()).expect("plant");
            sys.host_kill(ctl, pid, ksim::signal::SIGKILL).expect("kill");
            h.close(&mut sys).expect("close");
            let _ = sys.host_wait(ctl);
        });
    });
    group.bench_function("repeat_write_private_page", |b| {
        let (mut sys, ctl) = boot_with_ctl();
        let pid = sys.spawn_program(ctl, "/bin/ticker", &["t"]).expect("spawn");
        let tick = ksim::aout::build_aout(tools::userland::TICKER)
            .expect("asm")
            .sym("tick")
            .expect("sym");
        let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
        h.write_mem(&mut sys, tick, &isa::insn::breakpoint_bytes()).expect("first");
        b.iter(|| h.write_mem(&mut sys, tick, &isa::insn::breakpoint_bytes()).expect("plant"));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_demo();
    benches();
    Criterion.configure_from_args().final_summary();
}
