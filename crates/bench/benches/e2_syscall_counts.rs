//! E2 — "a primary goal was to remove these dependencies from the
//! interface; secondary goals were to ease debugger development, improve
//! portability of applications, and reduce the number of system calls
//! routinely made by a debugger."
//!
//! A canonical debugger step is performed by both interfaces and the
//! control-interface calls are counted:
//!
//!   stop the target, read its full status, read its registers, read W
//!   words of memory, resume.
//!
//! `/proc` answers the status *and* registers in one `PIOCWSTOP` reply
//! and reads memory in one lseek+read pair; `ptrace` pays one call per
//! word. Expected shape: `/proc` strictly fewer calls, with the gap
//! growing linearly in W.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use ksim::ptrace::WaitStatus;
use tools::{ProcHandle, PtraceDebugger};

/// The /proc debug step; returns calls used.
fn proc_step(sys: &mut ksim::System, h: &mut ProcHandle, addr: u64, words: usize) -> u64 {
    let before = h.calls;
    let st = h.stop(sys).expect("stop");
    // Status and registers arrive together in the prstatus.
    let _regs = &st.reg;
    let mut buf = vec![0u8; words * 8];
    h.read_mem(sys, addr, &mut buf).expect("read");
    h.resume(sys).expect("run");
    h.calls - before
}

/// The ptrace debug step; returns calls used.
fn ptrace_step(
    sys: &mut ksim::System,
    dbg: &mut PtraceDebugger,
    addr: u64,
    words: usize,
) -> u64 {
    let before = dbg.calls;
    // Stop via signal + wait.
    dbg.calls += 1;
    sys.host_kill(dbg.ctl, dbg.pid, ksim::signal::SIGINT).expect("kill");
    let st = dbg.wait_stop(sys).expect("wait");
    assert!(matches!(st, WaitStatus::Stopped(_)));
    let _regs = dbg.regs(sys).expect("regs");
    let mut buf = vec![0u8; words * 8];
    dbg.read_mem(sys, addr, &mut buf).expect("read");
    // Resume, discarding the signal.
    dbg.calls += 1;
    sys.host_ptrace(dbg.ctl, ksim::ptrace::PT_CONT, dbg.pid, 1, 0).expect("cont");
    dbg.calls - before
}

fn print_table() {
    banner("E2", "control-interface calls per canonical debug step");
    println!("step = stop + status + registers + read W words + resume");
    println!();
    println!("{:>8} {:>12} {:>12} {:>8}", "W words", "/proc calls", "ptrace calls", "ratio");
    for words in [1usize, 4, 16, 64, 256] {
        let (mut sys, ctl) = boot_with_ctl();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
        let text = ksim::aout::TEXT_BASE;
        let pcalls = proc_step(&mut sys, &mut h, text, words);

        let (mut sys, ctl) = boot_with_ctl();
        let mut dbg =
            PtraceDebugger::launch(&mut sys, ctl, "/bin/spin", &["spin"]).expect("launch");
        // Release the initial trap first.
        sys.host_ptrace(ctl, ksim::ptrace::PT_CONT, dbg.pid, 1, 0).expect("cont");
        sys.run_idle(5);
        let tcalls = ptrace_step(&mut sys, &mut dbg, text, words);
        println!(
            "{:>8} {:>12} {:>12} {:>7.1}x",
            words,
            pcalls,
            tcalls,
            tcalls as f64 / pcalls as f64
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_debug_step");
    group.sample_size(20);
    group.bench_function("proc_step_16_words", |b| {
        let (mut sys, ctl) = boot_with_ctl();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
        let text = ksim::aout::TEXT_BASE;
        b.iter(|| {
            proc_step(&mut sys, &mut h, text, 16);
            sys.run_idle(2);
        });
    });
    group.bench_function("ptrace_step_16_words", |b| {
        let (mut sys, ctl) = boot_with_ctl();
        let mut dbg =
            PtraceDebugger::launch(&mut sys, ctl, "/bin/spin", &["spin"]).expect("launch");
        sys.host_ptrace(ctl, ksim::ptrace::PT_CONT, dbg.pid, 1, 0).expect("cont");
        sys.run_idle(5);
        let text = ksim::aout::TEXT_BASE;
        b.iter(|| {
            ptrace_step(&mut sys, &mut dbg, text, 16);
            sys.run_idle(2);
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion.configure_from_args().final_summary();
}
