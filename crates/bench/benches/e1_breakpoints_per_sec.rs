//! E1 — "the goal of debugger efficiency ... becomes important in the
//! implementation of features such as conditional breakpoints, for which
//! 'breakpoints per second' is a realistic measure of performance."
//!
//! Three debuggers field the same breakpoint on the same tight loop:
//!
//! * `/proc` (stop-on-FLTBPT, PIOCWSTOP status with registers included,
//!   single PIOCRUN resume);
//! * kernel `ptrace` (SIGTRAP stop via wait, GETREGS, the classic
//!   restore/step/replant dance);
//! * the `ptrace`-over-`/proc` library (the compatibility shim).
//!
//! Expected shape: /proc ≥ kernel-ptrace > ptrace-over-/proc, with the
//! call counts explaining the gaps.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use ksim::ptrace::WaitStatus;
use procfs::{PrRun, PRRUN_CFAULT, PRRUN_STEP};
use tools::{Debugger, PtraceDebugger};

/// One /proc breakpoint round trip: wait for the FLTBPT stop, read the
/// registers (already in the status), step over and re-arm.
fn proc_roundtrip(
    sys: &mut ksim::System,
    dbg: &mut Debugger,
    tick: u64,
) {
    match dbg.cont(sys).expect("cont") {
        tools::DebugEvent::Breakpoint { addr, .. } => assert_eq!(addr, tick),
        other => panic!("unexpected {other:?}"),
    }
}

/// One kernel-ptrace round trip: continue, wait for SIGTRAP, fetch regs,
/// restore/step/replant.
fn ptrace_roundtrip(sys: &mut ksim::System, dbg: &mut PtraceDebugger, tick: u64) {
    let st = dbg.step_over_and_cont(sys, tick).expect("dance");
    assert_eq!(st, WaitStatus::Stopped(ksim::signal::SIGTRAP));
    let regs = dbg.regs(sys).expect("regs");
    assert_eq!(regs.pc, tick);
}

fn print_counts() {
    banner("E1", "breakpoints per second: /proc vs ptrace (paper footnote 3)");
    // Count the control-interface calls needed to field 100 breakpoints.
    let (mut sys, ctl) = boot_with_ctl();
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
    let tick = dbg.sym("tick").expect("symbol");
    dbg.set_breakpoint(&mut sys, tick).expect("bp");
    let before = dbg.h.calls;
    for _ in 0..100 {
        proc_roundtrip(&mut sys, &mut dbg, tick);
    }
    let proc_calls = dbg.h.calls - before;
    dbg.kill(&mut sys).expect("kill");

    let (mut sys, ctl) = boot_with_ctl();
    let mut pdbg =
        PtraceDebugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
    let aout = ksim::aout::build_aout(tools::userland::TICKER).expect("asm");
    let tick = aout.sym("tick").expect("symbol");
    pdbg.set_breakpoint(&mut sys, tick).expect("bp");
    let st = pdbg.cont_wait(&mut sys).expect("first hit");
    assert_eq!(st, WaitStatus::Stopped(ksim::signal::SIGTRAP));
    let before = pdbg.calls;
    for _ in 0..100 {
        ptrace_roundtrip(&mut sys, &mut pdbg, tick);
    }
    let ptrace_calls = pdbg.calls - before;
    pdbg.kill(&mut sys).expect("kill");

    println!("control-interface calls to field 100 breakpoints");
    println!("(each fielding inspects the registers, as a conditional breakpoint must):");
    println!("  /proc debugger            : {proc_calls:>6}  ({:.1}/bp; registers arrive inside the PIOCWSTOP status)",
        proc_calls as f64 / 100.0);
    println!(
        "  ptrace + GETREGS extension: {ptrace_calls:>6}  ({:.1}/bp)",
        ptrace_calls as f64 / 100.0
    );
    // Classic ptrace had no GETREGS: every register is a PEEKUSER call.
    let classic = ptrace_calls + 100 * (isa::reg::NGREG as u64 + 1);
    println!(
        "  classic ptrace (PEEKUSER) : {classic:>6}  ({:.1}/bp; one call per register)",
        classic as f64 / 100.0
    );
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_breakpoints");
    group.sample_size(20);

    group.bench_function("proc_debugger_roundtrip", |b| {
        let (mut sys, ctl) = boot_with_ctl();
        let mut dbg =
            Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let tick = dbg.sym("tick").expect("symbol");
        dbg.set_breakpoint(&mut sys, tick).expect("bp");
        b.iter(|| proc_roundtrip(&mut sys, &mut dbg, tick));
    });

    // E13 before/after on this experiment's own metric. Two densities:
    //
    // * `ticker` hits the breakpoint every ~8 instructions — the round
    //   trip is all controller overhead, and each re-plant is itself an
    //   invalidation event, so the fast path neither helps nor hurts
    //   (checked: the `_slow_path` twin of the bench above times the
    //   same);
    // * `cruncher` retires ~770 instructions per hit — the realistic
    //   conditional-breakpoint shape the paper's footnote 3 is about —
    //   and there breakpoints/sec tracks raw execution speed, which is
    //   exactly what the software TLB + icache buy.
    for (leg, fast) in [("fast_path", true), ("slow_path", false)] {
        group.bench_function(format!("compute_loop_bp_{leg}"), |b| {
            let (mut sys, ctl) =
                bench_support::boot_with_ctl_cfg(ksim::SimConfig::standard().fast_path(fast));
            let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/cruncher", &["cruncher"])
                .expect("launch");
            let tick = dbg.sym("tick").expect("symbol");
            dbg.set_breakpoint(&mut sys, tick).expect("bp");
            b.iter(|| proc_roundtrip(&mut sys, &mut dbg, tick));
        });
    }

    group.bench_function("kernel_ptrace_roundtrip", |b| {
        let (mut sys, ctl) = boot_with_ctl();
        let mut dbg =
            PtraceDebugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let aout = ksim::aout::build_aout(tools::userland::TICKER).expect("asm");
        let tick = aout.sym("tick").expect("symbol");
        dbg.set_breakpoint(&mut sys, tick).expect("bp");
        dbg.cont_wait(&mut sys).expect("first hit");
        b.iter(|| ptrace_roundtrip(&mut sys, &mut dbg, tick));
    });

    group.bench_function("conditional_bp_false_skip", |b| {
        // The transparent skip path: lift, single-step, re-plant, resume.
        let (mut sys, ctl) = boot_with_ctl();
        let mut dbg =
            Debugger::launch(&mut sys, ctl, "/bin/ticker", &["ticker"]).expect("launch");
        let tick = dbg.sym("tick").expect("symbol");
        let h = &mut dbg.h;
        let mut flt = ksim::FltSet::empty();
        flt.add(ksim::Fault::Bpt.number());
        flt.add(ksim::Fault::Trace.number());
        h.set_flt_trace(&mut sys, flt).expect("flt");
        let mut saved = [0u8; 8];
        h.read_mem(&mut sys, tick, &mut saved).expect("read");
        h.write_mem(&mut sys, tick, &isa::insn::breakpoint_bytes()).expect("plant");
        h.resume(&mut sys).expect("run");
        h.wstop(&mut sys).expect("first hit");
        b.iter(|| {
            // At a bpt stop: lift, step, replant, continue to next hit.
            h.write_mem(&mut sys, tick, &saved).expect("lift");
            h.run(&mut sys, PrRun { flags: PRRUN_STEP | PRRUN_CFAULT, vaddr: 0 })
                .expect("step");
            h.wstop(&mut sys).expect("trace stop");
            h.write_mem(&mut sys, tick, &isa::insn::breakpoint_bytes()).expect("replant");
            h.run(&mut sys, PrRun { flags: PRRUN_CFAULT, vaddr: 0 }).expect("run");
            h.wstop(&mut sys).expect("next hit");
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_counts();
    benches();
    Criterion.configure_from_args().final_summary();
}
