//! E7 — "This combination of facilities enables complete encapsulation
//! of the system call execution environment of a process so that, for
//! example, older system calls or alternate versions of them can be
//! simulated entirely at user level."
//!
//! The retired call is emulated by a controller (entry stop, kernel
//! abort, manufactured exit values) and its throughput compared with a
//! native call the kernel still implements. Expected shape:
//! encapsulation costs a few controller round trips per call — orders of
//! magnitude slower than native, but the *program* is byte-for-byte
//! unmodified and cannot tell.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use ksim::ptrace::{decode_status, WaitStatus};
use ksim::sysno::{SysSet, SYS_RETIRED};
use procfs::{PrRun, PRRUN_SABORT};
use tools::{Debugger, ProcHandle};

/// Calls retired_op N times; exits with the last result's low byte.
const RETIRED_LOOP: &str = r#"
_start:
    movi a4, 50
    movi a3, 0
loop:
    beq  a3, a4, done
    movi rv, 79         ; retired_op(a3)
    mov  a0, a3
    syscall
    addi a3, a3, 1
    jmp  loop
done:
    mov  a0, rv
    movi rv, 1
    syscall
"#;

const NATIVE_LOOP: &str = r#"
_start:
    movi a4, 50
    movi a3, 0
loop:
    beq  a3, a4, done
    movi rv, 20         ; getpid (native)
    syscall
    addi a3, a3, 1
    jmp  loop
done:
    movi rv, 1
    movi a0, 0
    syscall
"#;

fn print_demo() {
    banner("E7", "syscall encapsulation: retired calls simulated at user level");
    let (mut sys, ctl) = boot_with_ctl();
    sys.install_program("/bin/retloop", RETIRED_LOOP);
    let mut dbg = Debugger::launch(&mut sys, ctl, "/bin/retloop", &["retloop"]).expect("launch");
    let mut calls = SysSet::empty();
    calls.add(SYS_RETIRED as usize);
    let mut emulated = 0u64;
    let status = dbg
        .encapsulate(&mut sys, calls, |_nr, regs| {
            emulated += 1;
            Ok(regs.arg(0) + 1)
        })
        .expect("encapsulate");
    println!("50 retired calls emulated ({emulated} interceptions),");
    println!("target exited {:?} — it saw every manufactured return value", decode_status(status));
    assert_eq!(decode_status(status), WaitStatus::Exited(50));
    println!();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_encapsulation");
    group.sample_size(10);
    group.bench_function("native_50_syscalls", |b| {
        b.iter(|| {
            let (mut sys, ctl) = boot_with_ctl();
            sys.install_program("/bin/natloop", NATIVE_LOOP);
            sys.spawn_program(ctl, "/bin/natloop", &["natloop"]).expect("spawn");
            let (_, status) = sys.host_wait(ctl).expect("wait");
            assert_eq!(decode_status(status), WaitStatus::Exited(0));
        })
    });
    group.bench_function("encapsulated_50_syscalls", |b| {
        b.iter(|| {
            let (mut sys, ctl) = boot_with_ctl();
            sys.install_program("/bin/retloop", RETIRED_LOOP);
            let mut dbg =
                Debugger::launch(&mut sys, ctl, "/bin/retloop", &["retloop"]).expect("launch");
            let mut calls = SysSet::empty();
            calls.add(SYS_RETIRED as usize);
            let status = dbg
                .encapsulate(&mut sys, calls, |_nr, regs| Ok(regs.arg(0) + 1))
                .expect("encapsulate");
            assert_eq!(decode_status(status), WaitStatus::Exited(50));
        })
    });
    group.bench_function("single_intercept_roundtrip", |b| {
        // Just the entry-stop + abort + exit-stop + set-regs + resume
        // cycle on an endless retired caller.
        let (mut sys, ctl) = boot_with_ctl();
        sys.install_program(
            "/bin/retspin",
            "_start:\nloop: movi rv, 79\nmovi a0, 1\nsyscall\njmp loop",
        );
        let pid = sys.spawn_program(ctl, "/bin/retspin", &["retspin"]).expect("spawn");
        let mut h = ProcHandle::open_rw(&mut sys, ctl, pid).expect("open");
        let mut calls = SysSet::empty();
        calls.add(SYS_RETIRED as usize);
        h.set_entry_trace(&mut sys, calls).expect("entry");
        h.set_exit_trace(&mut sys, calls).expect("exit");
        b.iter(|| {
            let st = h.wstop(&mut sys).expect("entry stop");
            assert_eq!(st.why, procfs::PrWhy::SyscallEntry);
            h.run(&mut sys, PrRun { flags: PRRUN_SABORT, vaddr: 0 }).expect("abort");
            let st = h.wstop(&mut sys).expect("exit stop");
            let mut regs = st.reg;
            regs.set_rv(7);
            h.set_gregs(&mut sys, &regs).expect("manufacture");
            h.resume(&mut sys).expect("run");
        });
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_demo();
    benches();
    Criterion.configure_from_args().final_summary();
}
