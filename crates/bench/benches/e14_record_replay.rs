//! E14 — the cost of time travel: deterministic record/replay.
//!
//! PR 8's recorder logs every nondeterministic input at the host
//! boundary (construction config, installs, spawns, host system calls,
//! coalesced step batches) and banks a copy-on-write kernel snapshot
//! every N records. Two questions decide whether the feature can stay
//! on during ordinary work:
//!
//!  * what does recording *cost* while the simulation runs? — the
//!    overhead table compares the same workload with the recorder off
//!    and on across snapshot cadences; the log itself is digests over
//!    bytes already in hand, so the recorded leg should stay within a
//!    small factor of the bare one;
//!  * what does going *back* cost? — `goto_tick` restores the nearest
//!    snapshot and replays only the tail, against the always-correct
//!    full rebuild that replays the entire prefix. The replayed-record
//!    counts make the asymmetry exact, the wall times make it felt.
//!
//! Expected shape: identical guest instruction counts on both overhead
//! legs (the recorder must not perturb the run); snapshot-path goto
//! replaying ≤ cadence records vs the full log for the rebuild, with
//! wall time to match. `tests/bench_smoke.rs` gates exactly that and
//! drops `BENCH_E14.json` at the repo root.

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bench_support::{banner, goto_latency_point, record_overhead_point};
use bench_support::{criterion_group, Criterion};

const TICKS: u64 = 2048;

fn print_tables() {
    banner("E14", "record/replay: logging overhead and time-travel latency");

    println!("recording overhead ({TICKS} ticks of /bin/spin + /proc reads):");
    let off = record_overhead_point(false, 64, TICKS);
    println!(
        "  {:16} {:>10.2} ms   {:>12} insns",
        "recorder off",
        off.wall_ns as f64 / 1e6,
        off.insns
    );
    for snap_every in [256, 64, 16] {
        let on = record_overhead_point(true, snap_every, TICKS);
        println!(
            "  snap every {:>4} {:>10.2} ms   {:>12} insns   {:>5} records  {:>8} bytes  {:>3} snaps  ({:.2}x)",
            snap_every,
            on.wall_ns as f64 / 1e6,
            on.insns,
            on.records,
            on.bytes_logged,
            on.snapshots,
            on.wall_ns as f64 / off.wall_ns as f64,
        );
    }

    println!("goto-tick to the end of the log, snapshot resume vs full rebuild:");
    for snap_every in [256, 64, 16] {
        let p = goto_latency_point(snap_every, TICKS, 3);
        println!(
            "  snap every {:>4} ({:>3} snaps, {:>4} records): goto {:>9.3} ms replaying {:>4}   rebuild {:>9.3} ms replaying {:>4}   ({:.1}x)",
            p.snapshot_every,
            p.snapshots,
            p.len,
            p.goto_ns as f64 / 1e6,
            p.goto_replayed,
            p.rebuild_ns as f64 / 1e6,
            p.rebuild_replayed,
            p.rebuild_ns as f64 / p.goto_ns as f64,
        );
    }
}

/// Times the two navigation paths at a fixed cadence; the tables above
/// give the cross-cadence shape, this pins the per-call latency.
fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_record_replay");
    group.sample_size(10);

    let (mut sys, ctl) = bench_support::boot_with_ctl_cfg(
        ksim::SimConfig::standard().record(true).snapshot_every(64),
    );
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    // Slice the run with `/proc` reads so the log carries enough
    // records for snapshots to land between them (a single `run_idle`
    // coalesces into a handful of `Steps` batches and the snapshot
    // path would degenerate to the full rebuild).
    for _ in 0..32 {
        sys.run_idle(TICKS / 32);
        if let Ok(fd) =
            sys.host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdonly())
        {
            let mut buf = [0u8; 64];
            let _ = sys.host_read(ctl, fd, &mut buf);
            let _ = sys.host_close(ctl, fd);
        }
    }
    let rec = sys.recording().expect("recording on");
    let k = rec.len();
    group.bench_function("goto_snapshot_path", |b| {
        b.iter(|| procfs::goto_tick(&sys, k).expect("goto"));
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| procfs::replay_to(&rec, k).expect("replay"));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_tables();
    benches();
    Criterion.configure_from_args().final_summary();
}
