//! E4 — "the use of a control file to which structured messages are
//! written makes it possible to combine several control operations in a
//! single write system call; this can improve the performance of some
//! applications for which the number of system calls is a bottleneck."
//!
//! The same debugger resume sequence (set traced signals, set traced
//! faults, clear the current signal via PCSSIG, run) is issued as k flat
//! ioctls versus one batched hierarchical write. Expected shape: the
//! batch costs one interface crossing instead of k, and wins by roughly
//! the per-crossing overhead times (k-1).

// Bench drivers are throwaway executables: a failed step should abort
// the run loudly, so the harness-wide panic-free gate is waived here.
#![allow(clippy::unwrap_used, clippy::expect_used)]


use bench_support::{banner, boot_with_ctl};
use bench_support::{criterion_group, Criterion};
use ksim::signal::SigSet;
use ksim::fault::FltSet;
use procfs::hier::{ctl_batch, PCRUN, PCSFAULT, PCSSIG, PCSTRACE};
use procfs::ioctl::{PIOCRUN, PIOCSFAULT, PIOCSSIG, PIOCSTRACE};
use vfs::OFlags;

fn sequences() -> (SigSet, FltSet) {
    let mut sigs = SigSet::empty();
    sigs.add(ksim::signal::SIGINT);
    let mut flts = FltSet::empty();
    flts.add(ksim::Fault::Bpt.number());
    (sigs, flts)
}

fn print_comparison() {
    banner("E4", "batched control writes vs one ioctl per operation");
    println!("resume sequence = set sig trace, set fault trace, clear cursig, run");
    println!("flat interface : 4 ioctl(2) calls");
    println!("hierarchical   : 1 write(2) call carrying 4 records\n");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_ctl");
    let (sigs, flts) = sequences();

    group.bench_function("flat_4_ioctls", |b| {
        let (mut sys, ctl) = boot_with_ctl();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let fd = sys
            .host_open(ctl, &format!("/proc/{:05}", pid.0), OFlags::rdwr())
            .expect("open");
        sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSTOP, &[]).expect("stop");
        b.iter(|| {
            sys.host_ioctl(ctl, fd, PIOCSTRACE, &sigs.to_bytes()).expect("strace");
            sys.host_ioctl(ctl, fd, PIOCSFAULT, &flts.to_bytes()).expect("sfault");
            sys.host_ioctl(ctl, fd, PIOCSSIG, &0u32.to_le_bytes()).expect("ssig");
            sys.host_ioctl(ctl, fd, PIOCRUN, &[]).expect("run");
            // Re-stop for the next iteration.
            sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSTOP, &[]).expect("stop");
        });
    });

    group.bench_function("hier_1_batched_write", |b| {
        let (mut sys, ctl) = boot_with_ctl();
        let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
        let cfd = sys
            .host_open(ctl, &format!("/proc2/{}/ctl", pid.0), OFlags::wronly())
            .expect("open ctl");
        let stop = ctl_batch(&[(procfs::hier::PCSTOP, vec![])]);
        sys.host_write(ctl, cfd, &stop).expect("stop");
        let batch = ctl_batch(&[
            (PCSTRACE, sigs.to_bytes()),
            (PCSFAULT, flts.to_bytes()),
            (PCSSIG, 0u32.to_le_bytes().to_vec()),
            (PCRUN, vec![]),
        ]);
        b.iter(|| {
            sys.host_write(ctl, cfd, &batch).expect("batch");
            sys.host_write(ctl, cfd, &stop).expect("stop");
        });
    });

    // Scaling with batch size: k kill/unkill pairs.
    for k in [1usize, 4, 16] {
        group.bench_function(format!("hier_batch_{k}_records"), |b| {
            let (mut sys, ctl) = boot_with_ctl();
            let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
            let cfd = sys
                .host_open(ctl, &format!("/proc2/{}/ctl", pid.0), OFlags::wronly())
                .expect("open ctl");
            let records: Vec<(u32, Vec<u8>)> = (0..k)
                .map(|_| (procfs::hier::PCSFORK, vec![]))
                .collect();
            let batch = ctl_batch(&records);
            b.iter(|| sys.host_write(ctl, cfd, &batch).expect("batch"));
        });
        group.bench_function(format!("flat_{k}_separate_ioctls"), |b| {
            let (mut sys, ctl) = boot_with_ctl();
            let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
            let fd = sys
                .host_open(ctl, &format!("/proc/{:05}", pid.0), OFlags::rdwr())
                .expect("open");
            b.iter(|| {
                for _ in 0..k {
                    sys.host_ioctl(ctl, fd, procfs::ioctl::PIOCSFORK, &[]).expect("op");
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_comparison();
    benches();
    Criterion.configure_from_args().final_summary();
}
