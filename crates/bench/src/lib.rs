//! Shared scaffolding for the benchmark harness.
//!
//! Every bench regenerates a paper artifact (figure or claim) by
//! printing it to stdout, then times the operations behind it with
//! criterion. EXPERIMENTS.md records the expected shape of each result.

#![forbid(unsafe_code)]

use ksim::{Cred, Pid, System};
use tools::install_userland;

/// Boots a demo system (both `/proc` generations + userland) with a
/// uid-100 controller.
pub fn boot_with_ctl() -> (System, Pid) {
    let mut sys = procfs::boot_with_proc();
    install_userland(&mut sys);
    let ctl = sys.spawn_hosted("bench-ctl", Cred::new(100, 10));
    (sys, ctl)
}

/// Boots with a super-user controller (`ps`/`ls` style tools).
pub fn boot_with_root() -> (System, Pid) {
    let mut sys = procfs::boot_with_proc();
    install_userland(&mut sys);
    let ctl = sys.spawn_hosted("bench-root", Cred::superuser());
    (sys, ctl)
}

/// Prints the standard banner naming the regenerated artifact.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}
