//! Shared scaffolding for the benchmark harness.
//!
//! Every bench regenerates a paper artifact (figure or claim) by
//! printing it to stdout, then times the operations behind it with the
//! in-repo [`Criterion`] harness below. EXPERIMENTS.md records the
//! expected shape of each result.
//!
//! The harness is deliberately criterion-shaped (`benchmark_group`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` macro) so
//! the bench sources read like any other Rust benchmark suite, but it is
//! implemented entirely in this crate: the workspace builds and runs
//! with no external registry dependencies.

#![forbid(unsafe_code)]
// Harness code fields controller-visible errors like any other tool
// layer: fallible steps go through [`setup`]/[`setup_some`] so a failed
// boot or spawn aborts the run naming the step, never via a bare
// `unwrap`. The bench *executables* under `benches/` opt back out with
// a file-level `allow` — they are throwaway drivers, not library code.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use ksim::{Cred, Pid, System};
use std::time::{Duration, Instant};
use tools::install_userland;


/// Unwraps a bench-setup step. The harness has no caller to propagate
/// errors to, so a failed boot, spawn or launch aborts the run with the
/// step name — the panic-free gate's sanctioned invariant form.
#[track_caller]
pub fn setup<T, E: std::fmt::Debug>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("bench setup: {what} failed: {e:?}"),
    }
}

/// [`setup`] for `Option`-shaped lookups (symbols, first reps).
#[track_caller]
pub fn setup_some<T>(o: Option<T>, what: &str) -> T {
    match o {
        Some(v) => v,
        None => panic!("bench setup: {what} missing"),
    }
}

/// Boots a demo system (both `/proc` generations + userland) with a
/// uid-100 controller.
pub fn boot_with_ctl() -> (System, Pid) {
    boot_with_ctl_cfg(ksim::SimConfig::standard())
}

/// [`boot_with_ctl`] under an explicit construction config — how the
/// benches choose fast-path / invalidation-policy legs.
pub fn boot_with_ctl_cfg(cfg: ksim::SimConfig) -> (System, Pid) {
    let mut sys = tools::boot_demo_cfg(cfg);
    let ctl = sys.spawn_hosted("bench-ctl", Cred::new(100, 10));
    (sys, ctl)
}

/// Boots with a super-user controller (`ps`/`ls` style tools).
pub fn boot_with_root() -> (System, Pid) {
    let mut sys = procfs::boot_with_proc();
    install_userland(&mut sys);
    let ctl = sys.spawn_hosted("bench-root", Cred::superuser());
    (sys, ctl)
}

/// Prints the standard banner naming the regenerated artifact.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Deterministic xorshift64* pseudo-random generator — the workspace's
/// only randomness source, so every randomized test and bench replays
/// identically from its seed.
#[derive(Clone, Debug)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// A generator from a non-zero seed (zero is mapped to a fixed
    /// constant: xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> XorShift {
        XorShift { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform byte string of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

/// Target wall-clock duration of one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(2);

/// Default number of samples per benchmark (overridable per group via
/// [`BenchmarkGroup::sample_size`]).
const DEFAULT_SAMPLES: usize = 50;

/// Timing state handed to the benchmark closure; [`Bencher::iter`] runs
/// and times the measured operation.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` the requested number of iterations and records the total
    /// elapsed time. Results are passed through `black_box` so the
    /// optimizer cannot delete the measured work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibration pass: one iteration, to size the per-sample batch so
    // each sample lasts roughly SAMPLE_TARGET.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(f64::total_cmp);
    let lo = per_iter_ns[0];
    let med = per_iter_ns[per_iter_ns.len() / 2];
    let hi = per_iter_ns[per_iter_ns.len() - 1];
    println!(
        "{name:<48} time: [{} {} {}]  ({iters} iters/sample, {} samples)",
        format_ns(lo),
        format_ns(med),
        format_ns(hi),
        per_iter_ns.len(),
    );
}

/// The benchmark driver: a drop-in for the criterion type of the same
/// name covering the API surface the suite uses.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Command-line configuration is accepted (and ignored) for
    /// compatibility with `cargo bench -- <filter>` invocation syntax.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Prints nothing: each benchmark reported its line as it ran.
    pub fn final_summary(self) {}

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        run_bench(&id.into(), DEFAULT_SAMPLES, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), samples: DEFAULT_SAMPLES }
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measurement samples for subsequent benchmarks
    /// in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.samples = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut BenchmarkGroup {
        run_bench(&format!("{}/{}", self.name, id.into()), self.samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// One measured point of the E5c multi-client wire sweep: the same
/// status workload run serially (one blocking op at a time) and
/// pipelined (every client's ops in flight at once) over wires with an
/// identical seeded fault schedule. Time is the wire session's virtual
/// clock, so the comparison is deterministic — no wall-clock noise.
#[derive(Clone, Copy, Debug)]
pub struct WireSweepPoint {
    /// Per-class fault rate, in permille.
    pub permille: u16,
    /// Operations issued per leg.
    pub ops: u64,
    /// Operations that returned a well-formed status, serial leg.
    pub serial_ok: u64,
    /// Operations that returned a well-formed status, pipelined leg.
    pub pipelined_ok: u64,
    /// Virtual ticks consumed by the serial leg.
    pub serial_ticks: u64,
    /// Virtual ticks consumed by the pipelined leg.
    pub pipelined_ticks: u64,
}

/// A flat `/proc` behind the wire shim with the shared ioctl table and a
/// seeded fault plan (rate 0 still installs the plan so the two legs'
/// jitter schedules stay comparable across rates).
fn faulted_remote_proc(
    permille: u16,
    seed: u64,
) -> vfs::remote::RemoteFs<ksim::Kernel> {
    vfs::remote::RemoteFs::new(Box::new(procfs::ProcFs::new()))
        .with_ioctl_table(procfs::ioctl::wire_table())
        .with_config(&vfs::remote::WireConfig::faulty(
            seed,
            vfs::remote::FaultRates::uniform(permille),
        ))
}

/// Retries an idempotent wire call until the recovery machinery lands
/// it; panics if the wire never delivers (bounded, deterministic).
fn until_ok<T>(mut f: impl FnMut() -> vfs::SysResult<T>) -> T {
    for _ in 0..256 {
        if let Ok(v) = f() {
            return v;
        }
    }
    panic!("wire never recovered within 256 attempts");
}

/// Measures one fault rate of the multi-client sweep:
/// `clients * ops_per_client` `PIOCSTATUS` calls, serial vs. pipelined.
pub fn multi_client_wire_point(
    permille: u16,
    clients: usize,
    ops_per_client: usize,
    seed: u64,
) -> WireSweepPoint {
    use vfs::FileSystem;
    let ops = (clients * ops_per_client) as u64;
    let (mut sys, ctl) = boot_with_ctl();
    let target = setup(sys.spawn_program(ctl, "/bin/spin", &["spin"]), "spawn /bin/spin");
    let cred = Cred::new(100, 10);
    let name = format!("{:05}", target.0);

    // Serial leg: the blocking FileSystem face, one op at a time.
    let mut serial = faulted_remote_proc(permille, seed);
    let root = serial.root();
    let node = until_ok(|| serial.lookup(&mut sys.kernel, ctl, root, &name));
    let tok = until_ok(|| serial.open(&mut sys.kernel, ctl, node, vfs::OFlags::rdonly(), &cred));
    let mut serial_ok = 0u64;
    for _ in 0..ops {
        if let Ok(vfs::IoctlReply::Done(b)) =
            serial.ioctl(&mut sys.kernel, ctl, node, tok, procfs::ioctl::PIOCSTATUS, &[])
        {
            if procfs::PrStatus::from_bytes(&b).is_some() {
                serial_ok += 1;
            }
        }
    }
    let serial_ticks = serial.ticks();

    // Pipelined leg: same seed, same workload, but every client handle's
    // ops are submitted up front and demultiplexed as they complete.
    let mut piped = faulted_remote_proc(permille, seed);
    let root = piped.root();
    let node = until_ok(|| piped.lookup(&mut sys.kernel, ctl, root, &name));
    let tok = until_ok(|| piped.open(&mut sys.kernel, ctl, node, vfs::OFlags::rdonly(), &cred));
    let handles: Vec<_> = (0..clients).map(|_| piped.client()).collect();
    let mut futs = Vec::with_capacity(ops as usize);
    for _ in 0..ops_per_client {
        for h in &handles {
            futs.push(h.submit_ioctl(ctl, node, tok, procfs::ioctl::PIOCSTATUS, &[]));
        }
    }
    let pump = piped.client();
    let mut pipelined_ok = 0u64;
    while !futs.is_empty() {
        let advanced = pump.pump(&mut sys.kernel);
        futs.retain_mut(|f| match pump.try_complete(f) {
            Some(Ok(vfs::IoctlReply::Done(b))) => {
                if procfs::PrStatus::from_bytes(&b).is_some() {
                    pipelined_ok += 1;
                }
                false
            }
            Some(_) => false,
            None => true,
        });
        if !advanced && !futs.is_empty() {
            // An idle wire with pending futures cannot make progress;
            // every remaining op has already timed out.
            break;
        }
    }
    let pipelined_ticks = piped.ticks();

    WireSweepPoint { permille, ops, serial_ok, pipelined_ok, serial_ticks, pipelined_ticks }
}

/// The full sweep across fault rates.
pub fn multi_client_wire_sweep(
    rates: &[u16],
    clients: usize,
    ops_per_client: usize,
    seed: u64,
) -> Vec<WireSweepPoint> {
    rates
        .iter()
        .map(|&permille| multi_client_wire_point(permille, clients, ops_per_client, seed))
        .collect()
}

/// One measured point of the E5d client-count sweep: `clients` wire
/// sessions each pipelining `ops_per_client` status calls against the
/// readiness-loop server, on a clean wire or one with the full
/// adversarial-client mix enabled. Time is the wire's virtual clock, so
/// every number here replays identically from the seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientCountPoint {
    /// Concurrent client sessions driven through the server.
    pub clients: usize,
    /// Whether the adversarial-client fault dimension was armed.
    pub adversarial: bool,
    /// Operations issued across all sessions.
    pub ops: u64,
    /// Operations that returned a well-formed status image.
    pub ok: u64,
    /// Virtual ticks consumed by the whole run.
    pub ticks: u64,
    /// 99th-percentile submit-to-completion latency (virtual ticks)
    /// over the successful operations; zero when none succeeded.
    pub p99_ticks: u64,
    /// Successful operations per 1000 virtual ticks.
    pub ok_per_kilotick: f64,
    /// Inbound queue high-water mark across all sessions (bytes).
    pub in_queue_hwm: u64,
    /// Outbound queue high-water mark across all sessions (bytes).
    pub out_queue_hwm: u64,
    /// Sessions the server evicted for persistent misbehaviour.
    pub sessions_evicted: u64,
    /// Frames the server shed at a full queue.
    pub frames_shed: u64,
}

/// Queue cap used by the E5d sweep: small enough that floods and slow
/// readers actually hit the bound, large enough that a clean status
/// round-trip never does.
const E5D_QUEUE_CAP: usize = 4096;

/// Measures one client count of the E5d sweep. The adversarial leg arms
/// both the classic wire faults (drop/duplicate/corrupt/delay at 15‰)
/// and the adversarial-client personas; the clean leg installs a
/// zero-rate plan so the jitter schedule stays comparable.
pub fn client_count_point(
    clients: usize,
    ops_per_client: usize,
    adversarial: bool,
    seed: u64,
) -> ClientCountPoint {
    use vfs::FileSystem;
    let ops = (clients * ops_per_client) as u64;
    let (mut sys, ctl) = boot_with_ctl();
    let target = setup(sys.spawn_program(ctl, "/bin/spin", &["spin"]), "spawn /bin/spin");
    let cred = Cred::new(100, 10);
    let name = format!("{:05}", target.0);

    let rates = if adversarial { 15 } else { 0 };
    let mut wire = vfs::remote::WireConfig::faulty(seed, vfs::remote::FaultRates::uniform(rates))
        .queue_caps(E5D_QUEUE_CAP, E5D_QUEUE_CAP);
    if adversarial {
        wire = wire.adversarial(vfs::remote::AdversaryRates {
            slow_reader: 120,
            half_open: 60,
            flood: 40,
            mid_frame: 40,
            stale_replay: 150,
        });
    }
    let mut fs = vfs::remote::RemoteFs::new(Box::new(procfs::ProcFs::new()))
        .with_ioctl_table(procfs::ioctl::wire_table())
        .with_config(&wire);

    // The target's status node is resolved and opened once on the
    // blocking mount face (session 0, always clean); the backing-fs
    // token is then valid on every minted session.
    let root = fs.root();
    let node = until_ok(|| fs.lookup(&mut sys.kernel, ctl, root, &name));
    let tok = until_ok(|| fs.open(&mut sys.kernel, ctl, node, vfs::OFlags::rdonly(), &cred));

    let handles: Vec<_> = (0..clients).map(|_| fs.client()).collect();
    let mut futs = Vec::with_capacity(ops as usize);
    for _ in 0..ops_per_client {
        for h in &handles {
            let born = fs.ticks();
            futs.push((h.submit_ioctl(ctl, node, tok, procfs::ioctl::PIOCSTATUS, &[]), born));
        }
    }

    let pump = fs.client();
    let mut ok = 0u64;
    let mut latencies: Vec<u64> = Vec::with_capacity(ops as usize);
    while !futs.is_empty() {
        let advanced = pump.pump(&mut sys.kernel);
        let now = fs.ticks();
        futs.retain_mut(|(f, born)| match pump.try_complete(f) {
            Some(Ok(vfs::IoctlReply::Done(b))) => {
                if procfs::PrStatus::from_bytes(&b).is_some() {
                    ok += 1;
                    latencies.push(now.saturating_sub(*born));
                }
                false
            }
            Some(_) => false,
            None => true,
        });
        if !advanced && !futs.is_empty() {
            // Idle wire with pending futures: everything left has
            // already resolved to a typed failure.
            break;
        }
    }

    let ticks = fs.ticks();
    let stats = fs.stats();
    latencies.sort_unstable();
    let p99_ticks =
        if latencies.is_empty() { 0 } else { latencies[(latencies.len() * 99) / 100] };
    let ok_per_kilotick = if ticks == 0 { 0.0 } else { ok as f64 * 1000.0 / ticks as f64 };
    ClientCountPoint {
        clients,
        adversarial,
        ops,
        ok,
        ticks,
        p99_ticks,
        ok_per_kilotick,
        in_queue_hwm: stats.in_queue_hwm,
        out_queue_hwm: stats.out_queue_hwm,
        sessions_evicted: stats.sessions_evicted,
        frames_shed: stats.frames_shed,
    }
}

/// The full E5d sweep over client counts, one leg per fault mix.
pub fn client_count_sweep(
    counts: &[usize],
    ops_per_client: usize,
    adversarial: bool,
    seed: u64,
) -> Vec<ClientCountPoint> {
    counts
        .iter()
        .map(|&clients| client_count_point(clients, ops_per_client, adversarial, seed))
        .collect()
}

/// One leg of the E13 execution fast-path measurement: a hot guest
/// loop driven for a fixed virtual-tick budget with the per-LWP caches
/// on or off, timed on the wall clock around `run_idle` only (boot and
/// spawn are excluded). The instruction stream is identical across
/// legs — the fast path is an accelerator, not a scheduler — so
/// insns/sec is directly comparable.
#[derive(Clone, Copy, Debug)]
pub struct FastPathPoint {
    /// Whether the software TLB + decoded-instruction cache were live.
    pub fast: bool,
    /// Guest instructions retired by the target during the run.
    pub insns: u64,
    /// Wall-clock nanoseconds spent inside `run_idle`.
    pub wall_ns: u128,
    /// Retired guest instructions per wall-clock second.
    pub insns_per_sec: f64,
    /// Data-TLB probe outcomes (zero on the disabled leg).
    pub tlb_hits: u64,
    /// Data-TLB slow-path fills.
    pub tlb_misses: u64,
    /// Decoded-instruction cache hits (zero on the disabled leg).
    pub icache_hits: u64,
    /// Decoded-instruction cache misses (fetch + decode taken).
    pub icache_misses: u64,
    /// Superblocks traced and installed.
    pub sblock_built: u64,
    /// Superblock dispatches.
    pub sblock_dispatched: u64,
    /// Instructions retired inside superblock dispatches.
    pub sblock_insns: u64,
    /// Superblock probes that failed stamp validation.
    pub sblock_stale: u64,
}

impl FastPathPoint {
    /// dTLB hit rate in `[0, 1]`; zero when no probes happened.
    pub fn tlb_hit_rate(&self) -> f64 {
        rate(self.tlb_hits, self.tlb_misses)
    }

    /// icache hit rate in `[0, 1]`; zero when no probes happened.
    pub fn icache_hit_rate(&self) -> f64 {
        rate(self.icache_hits, self.icache_misses)
    }

    /// Fraction of retired instructions executed inside superblock
    /// dispatches, in `[0, 1]`; zero when nothing retired.
    pub fn sblock_coverage(&self) -> f64 {
        if self.insns == 0 {
            0.0
        } else {
            self.sblock_insns as f64 / self.insns as f64
        }
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Measures one E13 leg: boots a fresh machine, flips the fast path,
/// spawns `program` and drives it for `ticks` scheduler slices under a
/// wall-clock timer. `/bin/spin` is the icache-bound workload (a
/// store-free jump loop whose fetches never reach the dTLB once the
/// icache is warm); `/bin/watched` adds two stores per iteration and
/// exercises the dTLB as well.
pub fn fast_path_point(program: &str, fast: bool, ticks: u64) -> FastPathPoint {
    let (mut sys, ctl) = boot_with_ctl_cfg(ksim::SimConfig::standard().fast_path(fast));
    let name = program.rsplit('/').next().unwrap_or(program);
    let pid = setup(sys.spawn_program(ctl, program, &[name]), "spawn workload");
    let start = Instant::now();
    sys.run_idle(ticks);
    let wall = start.elapsed();
    let st = setup(procfs::PrXStats::capture(&sys.kernel, pid), "xstats");
    let wall_ns = wall.as_nanos().max(1);
    FastPathPoint {
        fast,
        insns: st.insns,
        wall_ns,
        insns_per_sec: st.insns as f64 * 1e9 / wall_ns as f64,
        tlb_hits: st.tlb_hits,
        tlb_misses: st.tlb_misses,
        icache_hits: st.icache_hits,
        icache_misses: st.icache_misses,
        sblock_built: st.sblock_built,
        sblock_dispatched: st.sblock_dispatched,
        sblock_insns: st.sblock_insns,
        sblock_stale: st.sblock_stale,
    }
}

/// Both legs of the E13 comparison for one workload, best-of-`reps`
/// wall time per leg (each rep is a fresh boot, so a scheduling hiccup
/// in one rep cannot poison the point).
pub fn fast_path_pair(program: &str, ticks: u64, reps: usize) -> (FastPathPoint, FastPathPoint) {
    let best = |fast: bool| {
        (0..reps.max(1))
            .map(|_| fast_path_point(program, fast, ticks))
            .min_by(|a, b| a.wall_ns.cmp(&b.wall_ns))
            .unwrap_or_else(|| unreachable!("reps.max(1) yields at least one rep"))
    };
    (best(false), best(true))
}

/// The E1-metric leg of E13: wall-clock breakpoints/sec fielding a
/// `/proc` breakpoint on `/bin/cruncher`'s `tick` (one hit per ~770
/// retired instructions — the paper's footnote-3 conditional-breakpoint
/// shape, where execution speed rather than controller overhead bounds
/// the rate). Returns fielded breakpoints per second.
pub fn breakpoint_rate_point(fast: bool, hits: u64) -> f64 {
    let (mut sys, ctl) = boot_with_ctl_cfg(ksim::SimConfig::standard().fast_path(fast));
    let mut dbg =
        setup(tools::Debugger::launch(&mut sys, ctl, "/bin/cruncher", &["cruncher"]), "launch");
    let tick = setup(dbg.sym("tick"), "tick symbol");
    setup(dbg.set_breakpoint(&mut sys, tick), "set breakpoint");
    let field = |sys: &mut System, dbg: &mut tools::Debugger| {
        match setup(dbg.cont(sys), "cont") {
            tools::DebugEvent::Breakpoint { addr, .. } => assert_eq!(addr, tick),
            other => panic!("unexpected {other:?}"),
        }
    };
    // One fielding outside the timer absorbs the compulsory stop.
    field(&mut sys, &mut dbg);
    let start = Instant::now();
    for _ in 0..hits {
        field(&mut sys, &mut dbg);
    }
    let wall_ns = start.elapsed().as_nanos().max(1);
    hits as f64 * 1e9 / wall_ns as f64
}

/// Both legs of the breakpoints/sec comparison, best-of-`reps` each.
pub fn breakpoint_rate_pair(hits: u64, reps: usize) -> (f64, f64) {
    let best = |fast: bool| {
        (0..reps.max(1))
            .map(|_| breakpoint_rate_point(fast, hits))
            .fold(0.0f64, f64::max)
    };
    (best(false), best(true))
}

/// Instructions per page of text (fixed 8-byte encoding).
const INSNS_PER_PAGE: usize = 4096 / 8;

/// Source of the dense-breakpoint workload: `/bin/cruncher`'s shape
/// (hot compute, `call tick`, repeat) stretched so the compute body is
/// several pages of straight-line code and `tick` sits alone on its own
/// page. Every breakpoint fielding writes into `tick`'s page twice
/// (clear + replant); with per-page text epochs the body's superblocks
/// survive those writes, with whole-mapping epochs they all die and
/// rebuild each fielding.
fn dense_workload_src(body_insns: usize) -> String {
    let mut src = String::from("_start:\n    movi a0, 0\nouter:\n");
    for _ in 0..body_insns {
        src.push_str("    addi a0, a0, 1\n");
    }
    src.push_str("    call tick\n    jmp  outer\n");
    // Pad so `tick` starts exactly on the next page boundary. Insns so
    // far: movi + body + call + jmp.
    let used = 1 + body_insns + 2;
    let pad = (INSNS_PER_PAGE - used % INSNS_PER_PAGE) % INSNS_PER_PAGE;
    for _ in 0..pad {
        src.push_str("    nop\n");
    }
    src.push_str("tick:\n    addi a1, a1, 1\n    ret\n");
    src
}

/// One leg of the dense-breakpoint comparison (E1's metric under E13's
/// engine): wall-clock breakpoints/sec on the multi-page workload, with
/// text-epoch invalidation either per-page (the shipped policy) or
/// coarse whole-mapping (the PR 5 behaviour, kept behind a knob for
/// exactly this measurement).
#[derive(Clone, Copy, Debug)]
pub struct DenseBpPoint {
    /// Whether whole-mapping (coarse) invalidation was forced.
    pub coarse: bool,
    /// Fielded breakpoints per wall-clock second.
    pub hits_per_sec: f64,
    /// Superblocks rebuilt during the timed fieldings.
    pub sblock_built: u64,
    /// Superblock probes killed by stamp validation.
    pub sblock_stale: u64,
    /// Per-page text-epoch bumps observed.
    pub page_epoch_bumps: u64,
}

/// Measures one dense-breakpoint leg: `hits` fieldings of a breakpoint
/// on `tick`, fast path on, with `coarse` selecting the invalidation
/// granularity. The compute body is ~4 pages of straight-line code, so
/// a coarse leg re-traces every body superblock after each fielding's
/// clear/replant writes while the per-page leg keeps them warm.
pub fn dense_breakpoint_point(coarse: bool, hits: u64) -> DenseBpPoint {
    let (mut sys, ctl) =
        boot_with_ctl_cfg(ksim::SimConfig::standard().fast_path(true).coarse_epochs(coarse));
    sys.install_program("/bin/dense", &dense_workload_src(4 * INSNS_PER_PAGE));
    let mut dbg =
        setup(tools::Debugger::launch(&mut sys, ctl, "/bin/dense", &["dense"]), "launch");
    let tick = setup(dbg.sym("tick"), "tick symbol");
    setup(dbg.set_breakpoint(&mut sys, tick), "set breakpoint");
    let pid = dbg.pid();
    let field = |sys: &mut System, dbg: &mut tools::Debugger| {
        match setup(dbg.cont(sys), "cont") {
            tools::DebugEvent::Breakpoint { addr, .. } => assert_eq!(addr, tick),
            other => panic!("unexpected {other:?}"),
        }
    };
    field(&mut sys, &mut dbg);
    let before = setup(procfs::PrXStats::capture(&sys.kernel, pid), "xstats");
    let start = Instant::now();
    for _ in 0..hits {
        field(&mut sys, &mut dbg);
    }
    let wall_ns = start.elapsed().as_nanos().max(1);
    let after = setup(procfs::PrXStats::capture(&sys.kernel, pid), "xstats");
    DenseBpPoint {
        coarse,
        hits_per_sec: hits as f64 * 1e9 / wall_ns as f64,
        sblock_built: after.sblock_built - before.sblock_built,
        sblock_stale: after.sblock_stale - before.sblock_stale,
        page_epoch_bumps: after.page_epoch_bumps - before.page_epoch_bumps,
    }
}

/// Both granularities of the dense-breakpoint comparison, best-of-`reps`
/// wall rate each; counters come from the best rep.
pub fn dense_breakpoint_pair(hits: u64, reps: usize) -> (DenseBpPoint, DenseBpPoint) {
    let best = |coarse: bool| {
        (0..reps.max(1))
            .map(|_| dense_breakpoint_point(coarse, hits))
            .max_by(|a, b| a.hits_per_sec.total_cmp(&b.hits_per_sec))
            .unwrap_or_else(|| unreachable!("reps.max(1) yields at least one rep"))
    };
    (best(true), best(false))
}

/// One leg of the E14 record-overhead comparison: the same workload
/// with the recorder off or on, plus what the recorder banked.
#[derive(Clone, Debug)]
pub struct RecordPoint {
    /// Whether the recorder was on for this leg.
    pub recorded: bool,
    /// Wall-clock nanoseconds for the measured run.
    pub wall_ns: u128,
    /// Guest instructions retired (same on both legs — the recorder
    /// must not perturb the simulation).
    pub insns: u64,
    /// Records in the log at the end of the run.
    pub records: usize,
    /// Bytes folded into digests over the run.
    pub bytes_logged: u64,
    /// Copy-on-write snapshots taken.
    pub snapshots: u64,
}

/// Runs the E14 workload — a hot loop interleaved with `/proc` status
/// reads, so the log carries both `Steps` batches and host-call records
/// — with the recorder off or on.
pub fn record_overhead_point(record: bool, snapshot_every: usize, ticks: u64) -> RecordPoint {
    let cfg = if record {
        ksim::SimConfig::standard().record(true).snapshot_every(snapshot_every)
    } else {
        ksim::SimConfig::standard()
    };
    let (mut sys, ctl) = boot_with_ctl_cfg(cfg);
    let pid = setup(sys.spawn_program(ctl, "/bin/spin", &["spin"]), "spawn /bin/spin");
    const SLICES: u64 = 32;
    let start = Instant::now();
    for _ in 0..SLICES {
        sys.run_idle(ticks / SLICES);
        if let Ok(fd) =
            sys.host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdonly())
        {
            let mut buf = [0u8; 64];
            let _ = sys.host_read(ctl, fd, &mut buf);
            let _ = sys.host_close(ctl, fd);
        }
    }
    let wall_ns = start.elapsed().as_nanos().max(1);
    let st = setup(procfs::PrXStats::capture(&sys.kernel, pid), "xstats");
    let (records, bytes_logged, snapshots) = match sys.kernel.recorder.as_ref() {
        Some(r) => (r.records.len(), r.stats.bytes_logged, r.stats.snapshots),
        None => (0, 0, 0),
    };
    RecordPoint { recorded: record, wall_ns, insns: st.insns, records, bytes_logged, snapshots }
}

/// One E14 time-travel point: latency of `goto_tick` to the end of a
/// recorded log via the nearest snapshot, against the full-rebuild
/// path replaying the whole prefix.
#[derive(Clone, Debug)]
pub struct GotoPoint {
    /// Snapshot cadence (records between snapshots) of the recorded run.
    pub snapshot_every: usize,
    /// Log length the run produced.
    pub len: usize,
    /// Snapshots the recorder banked.
    pub snapshots: u64,
    /// Nanoseconds for `goto_tick` (snapshot resume + tail replay).
    pub goto_ns: u128,
    /// Records the snapshot path actually re-applied live.
    pub goto_replayed: u64,
    /// Nanoseconds for the full rebuild (`replay_to` from tick zero).
    pub rebuild_ns: u128,
    /// Records the full rebuild re-applied (the whole prefix).
    pub rebuild_replayed: u64,
}

/// Records the E14 workload at the given snapshot cadence, then times
/// landing on the final tick both ways. Best-of-`reps` wall time per
/// leg; the replayed-record counts are deterministic.
pub fn goto_latency_point(snapshot_every: usize, ticks: u64, reps: usize) -> GotoPoint {
    let (mut sys, ctl) = boot_with_ctl_cfg(
        ksim::SimConfig::standard().record(true).snapshot_every(snapshot_every),
    );
    let pid = setup(sys.spawn_program(ctl, "/bin/spin", &["spin"]), "spawn /bin/spin");
    const SLICES: u64 = 32;
    for _ in 0..SLICES {
        sys.run_idle(ticks / SLICES);
        if let Ok(fd) =
            sys.host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdonly())
        {
            let mut buf = [0u8; 64];
            let _ = sys.host_read(ctl, fd, &mut buf);
            let _ = sys.host_close(ctl, fd);
        }
    }
    let rec = setup_some(sys.recording(), "recording on");
    let snapshots = sys.kernel.recorder.as_ref().map_or(0, |r| r.stats.snapshots);
    let k = rec.len();
    let replays_of = |s: &System| s.kernel.recorder.as_ref().map_or(0, |r| r.stats.replays);
    let mut goto_ns = u128::MAX;
    let mut goto_replayed = 0;
    let mut rebuild_ns = u128::MAX;
    let mut rebuild_replayed = 0;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let restored = setup(procfs::goto_tick(&sys, k), "goto_tick");
        goto_ns = goto_ns.min(start.elapsed().as_nanos().max(1));
        goto_replayed = replays_of(&restored);
        let start = Instant::now();
        let rebuilt = setup(procfs::replay_to(&rec, k), "replay_to");
        rebuild_ns = rebuild_ns.min(start.elapsed().as_nanos().max(1));
        rebuild_replayed = replays_of(&rebuilt);
    }
    GotoPoint { snapshot_every, len: k, snapshots, goto_ns, goto_replayed, rebuild_ns, rebuild_replayed }
}

/// One E15 migration point: a full live migration of a guest from a
/// clean source into a destination reached through a remote `/proc`
/// mount at the given wire fault rate.
#[derive(Clone, Debug)]
pub struct MigratePoint {
    /// Per-op wire fault rate (permille) on the destination mount.
    pub fault_permille: u16,
    /// Per-op adversary persona rate (permille) on the same mount.
    pub adversary_permille: u16,
    /// Wall-clock nanoseconds for the end-to-end migration.
    pub wall_ns: u128,
    /// Checkpoint image size streamed across.
    pub bytes: usize,
    /// Chunk ops the driver issued (first sends plus refills).
    pub chunks: u32,
    /// Wire-level re-sends the driver needed on top of that.
    pub retries: u32,
    /// Chunks the destination kernel discarded as already-applied —
    /// the idempotency discipline absorbing duplicate delivery.
    pub dup_chunks: u64,
    /// Transfers the destination kernel resumed mid-stream after a
    /// driver or placeholder restart.
    pub resumes: u64,
    /// The floor: chunks a loss-free wire would need for this image.
    pub min_chunks: u32,
}

/// Runs one E15 migration leg: boots a source with a live guest and a
/// destination whose `/proc` is also mounted remotely at the given
/// fault/adversary rates, then drives [`tools::migrate::migrate`]
/// across that wire. Panics (via [`setup`]) if the migration does not
/// commit — every swept rate is sub-certain, so the bounded-retry
/// driver must land.
pub fn migrate_point(seed: u64, fault_permille: u16, adversary_permille: u16) -> MigratePoint {
    let mut src = tools::boot_demo();
    let src_ctl = src.spawn_hosted("bench-mig-src", Cred::superuser());
    let target =
        setup(src.spawn_program(src_ctl, "/bin/ticker", &["ticker"]), "spawn /bin/ticker");
    src.run_idle(120);

    let mut wire = vfs::remote::WireConfig::faulty(
        seed,
        vfs::remote::FaultRates::uniform(fault_permille),
    );
    if adversary_permille > 0 {
        wire = wire.adversarial(vfs::remote::AdversaryRates::uniform(adversary_permille));
    }
    let mut dst = tools::boot_demo_cfg(
        ksim::SimConfig::standard().mount("/procr", ksim::MountPlan::RemoteProc(wire)),
    );
    let dst_ctl = dst.spawn_hosted("bench-mig-dst", Cred::superuser());

    let start = Instant::now();
    let report = setup(
        tools::migrate::migrate(&mut src, src_ctl, "/proc", target, &mut dst, dst_ctl, "/procr"),
        "migrate",
    );
    let wall_ns = start.elapsed().as_nanos().max(1);
    let min_chunks = report.bytes.div_ceil(ksim::migrate::MIG_CHUNK_MAX) as u32;
    MigratePoint {
        fault_permille,
        adversary_permille,
        wall_ns,
        bytes: report.bytes,
        chunks: report.chunks,
        retries: report.retries,
        dup_chunks: dst.kernel.mig_stats.dup_chunks,
        resumes: dst.kernel.mig_stats.resumes,
        min_chunks,
    }
}

/// One E15 durability point: cost of taking a recording through the
/// on-disk format and back, against replaying it directly in memory.
#[derive(Clone, Debug)]
pub struct RecfilePoint {
    /// Records in the log the workload produced.
    pub records: usize,
    /// Size of the serialised recfile image.
    pub bytes: usize,
    /// Nanoseconds to serialise ([`ksim::System::save_recfile`]).
    pub save_ns: u128,
    /// Nanoseconds to parse and checksum-verify the image
    /// ([`ksim::recfile::load`]) without rebuilding the system.
    pub load_ns: u128,
    /// Nanoseconds for the full [`procfs::replay_file`] rebuild — the
    /// cross-process resume a consumer actually pays for.
    pub replay_ns: u128,
}

/// Records the E14 workload, then times the recfile round trip:
/// serialise, parse-and-verify, and full replay-from-bytes.
/// Best-of-`reps` wall time per leg.
pub fn recfile_point(snapshot_every: usize, ticks: u64, reps: usize) -> RecfilePoint {
    let (mut sys, ctl) = boot_with_ctl_cfg(
        ksim::SimConfig::standard().record(true).snapshot_every(snapshot_every),
    );
    let pid = setup(sys.spawn_program(ctl, "/bin/spin", &["spin"]), "spawn /bin/spin");
    const SLICES: u64 = 32;
    for _ in 0..SLICES {
        sys.run_idle(ticks / SLICES);
        if let Ok(fd) =
            sys.host_open(ctl, &format!("/proc/{:05}", pid.0), vfs::OFlags::rdonly())
        {
            let mut buf = [0u8; 64];
            let _ = sys.host_read(ctl, fd, &mut buf);
            let _ = sys.host_close(ctl, fd);
        }
    }
    let records = setup_some(sys.recording(), "recording on").len();
    let mut save_ns = u128::MAX;
    let mut load_ns = u128::MAX;
    let mut replay_ns = u128::MAX;
    let mut bytes = Vec::new();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        bytes = setup_some(sys.save_recfile(), "save_recfile");
        save_ns = save_ns.min(start.elapsed().as_nanos().max(1));
        let start = Instant::now();
        let parsed = setup(ksim::recfile::load(&bytes), "recfile::load");
        load_ns = load_ns.min(start.elapsed().as_nanos().max(1));
        assert_eq!(parsed.recording.len(), records, "recfile dropped records");
        let start = Instant::now();
        let _rebuilt = setup(procfs::replay_file(&bytes), "replay_file");
        replay_ns = replay_ns.min(start.elapsed().as_nanos().max(1));
    }
    RecfilePoint { records, bytes: bytes.len(), save_ns, load_ns, replay_ns }
}

/// One E16 shard-sweep point: a farm of compute-bound spinners driven
/// for `ticks` scheduler rounds at a given shard count, timed on the
/// wall clock around `run_idle` only. `shards == 0` is the legacy
/// single-slice engine (the pre-PR-10 baseline row); `shards >= 1` is
/// the gang-round engine, whose guest-visible results are identical at
/// every shard count — only the wall-clock rate may differ.
#[derive(Clone, Copy, Debug)]
pub struct ShardPoint {
    /// Shard count (0 = legacy engine).
    pub shards: u32,
    /// Guest processes in the farm.
    pub guests: usize,
    /// Guest instructions retired across the whole farm.
    pub insns: u64,
    /// Final simulated clock — with `insns`, the determinism fingerprint.
    pub clock: u64,
    /// Wall-clock nanoseconds spent inside `run_idle`.
    pub wall_ns: u128,
    /// Retired guest instructions per wall-clock second.
    pub insns_per_sec: f64,
}

/// The fixed interleave seed every E16 row shares, so rows differ only
/// in their shard count.
const E16_SEED: u64 = 0xE16_5EED;

fn shard_cfg(shards: u32) -> ksim::SimConfig {
    ksim::SimConfig::standard().shards(shards).interleave_seed(E16_SEED).shard_batch(8)
}

/// Sums retired instructions over every simulated (non-hosted) process,
/// live or zombie — fork children included, so pipe farms count both
/// halves of each pair.
fn farm_insns(sys: &System) -> u64 {
    sys.kernel.procs.iter().filter(|(_, p)| !p.hosted).map(|(_, p)| p.cpu_time).sum()
}

/// Measures one E16 spin-farm point: `guests` copies of `/bin/spin`
/// (pure user work, the embarrassingly parallel best case) driven for
/// `ticks` rounds.
pub fn shard_sweep_point(shards: u32, guests: usize, ticks: u64) -> ShardPoint {
    let (mut sys, ctl) = boot_with_ctl_cfg(shard_cfg(shards));
    for _ in 0..guests {
        setup(sys.spawn_program(ctl, "/bin/spin", &["spin"]), "spawn spin farm");
    }
    let start = Instant::now();
    sys.run_idle(ticks);
    let wall_ns = start.elapsed().as_nanos().max(1);
    let insns = farm_insns(&sys);
    ShardPoint {
        shards,
        guests,
        insns,
        clock: sys.kernel.clock,
        wall_ns,
        insns_per_sec: insns as f64 * 1e9 / wall_ns as f64,
    }
}

/// Measures one E16 pipe-farm point: `pairs` copies of `/bin/piper`
/// (each forks a child and talks to it through a pipe — every slice
/// ends in a kernel entry, so the whole workload runs through the
/// serial commit phase and cross-shard wakeups).
pub fn pipe_farm_point(shards: u32, pairs: usize, ticks: u64) -> ShardPoint {
    let (mut sys, ctl) = boot_with_ctl_cfg(shard_cfg(shards));
    for _ in 0..pairs {
        setup(sys.spawn_program(ctl, "/bin/piper", &["piper"]), "spawn pipe farm");
    }
    let start = Instant::now();
    sys.run_idle(ticks);
    let wall_ns = start.elapsed().as_nanos().max(1);
    let insns = farm_insns(&sys);
    ShardPoint {
        shards,
        guests: pairs,
        insns,
        clock: sys.kernel.clock,
        wall_ns,
        insns_per_sec: insns as f64 * 1e9 / wall_ns as f64,
    }
}

/// Declares the bench entry function, criterion-style:
/// `criterion_group!(benches, bench_a, bench_b)` defines `fn benches()`
/// that runs each target against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x != 0));
        // Zero seed is remapped, not a fixed point.
        let mut z = XorShift::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn xorshift_below_bounds() {
        let mut r = XorShift::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.bytes(9).len(), 9);
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        b.iter(|| count += 1);
        assert_eq!(count, 10);
        assert!(b.elapsed > Duration::ZERO || count == 10);
    }
}
