//! Process credentials.
//!
//! "Permission to open a /proc file requires that both the uid and gid of
//! the traced process match those of the controlling process; setuid and
//! setgid processes can be opened only by the super-user." The credential
//! structure carries real, effective and saved ids so the set-id exec
//! rules can be expressed faithfully.

/// User identifier.
pub type Uid = u32;
/// Group identifier.
pub type Gid = u32;

/// Full credentials of a process (the content of `PIOCCRED`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cred {
    /// Real user id.
    pub ruid: Uid,
    /// Effective user id.
    pub euid: Uid,
    /// Saved user id (from the last set-id exec).
    pub suid: Uid,
    /// Real group id.
    pub rgid: Gid,
    /// Effective group id.
    pub egid: Gid,
    /// Saved group id.
    pub sgid: Gid,
    /// Supplementary groups (`PIOCGROUPS`).
    pub groups: Vec<Gid>,
}

impl Cred {
    /// Credentials with all ids equal to `uid`/`gid` and no supplementary
    /// groups.
    pub fn new(uid: Uid, gid: Gid) -> Cred {
        Cred { ruid: uid, euid: uid, suid: uid, rgid: gid, egid: gid, sgid: gid, groups: vec![] }
    }

    /// Root credentials.
    pub fn superuser() -> Cred {
        Cred::new(0, 0)
    }

    /// True if the effective uid is root.
    pub fn is_superuser(&self) -> bool {
        self.euid == 0
    }

    /// True if the process is (or has been) set-id: effective or saved ids
    /// differ from the real ids. Such processes can be opened through
    /// `/proc` only by the super-user.
    pub fn is_setid(&self) -> bool {
        self.euid != self.ruid
            || self.egid != self.rgid
            || self.suid != self.ruid
            || self.sgid != self.rgid
    }

    /// True if `self` may open the `/proc` file of a process owning
    /// `target` credentials: super-user always; otherwise both the uid and
    /// gid must match and the target must not be set-id.
    pub fn can_control(&self, target: &Cred) -> bool {
        if self.is_superuser() {
            return true;
        }
        !target.is_setid() && self.euid == target.ruid && self.egid == target.rgid
    }

    /// Classic file-permission check against a mode/owner triple.
    /// `want` bits: 4 read, 2 write, 1 execute.
    pub fn file_access(&self, mode: u16, uid: Uid, gid: Gid, want: u16) -> bool {
        if self.is_superuser() {
            // Root needs at least one execute bit for execute permission.
            if want & 1 != 0 {
                return mode & 0o111 != 0;
            }
            return true;
        }
        let perm = if self.euid == uid {
            (mode >> 6) & 7
        } else if self.egid == gid || self.groups.contains(&gid) {
            (mode >> 3) & 7
        } else {
            mode & 7
        };
        perm & want == want
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_requires_matching_ids() {
        let me = Cred::new(100, 10);
        let mine = Cred::new(100, 10);
        let other_uid = Cred::new(101, 10);
        let other_gid = Cred::new(100, 11);
        assert!(me.can_control(&mine));
        assert!(!me.can_control(&other_uid));
        assert!(!me.can_control(&other_gid));
    }

    #[test]
    fn setid_targets_are_root_only() {
        let me = Cred::new(100, 10);
        let mut setid = Cred::new(100, 10);
        setid.euid = 0;
        assert!(setid.is_setid());
        assert!(!me.can_control(&setid));
        assert!(Cred::superuser().can_control(&setid));
    }

    #[test]
    fn saved_id_makes_process_setid() {
        let mut c = Cred::new(100, 10);
        assert!(!c.is_setid());
        c.suid = 0;
        assert!(c.is_setid());
    }

    #[test]
    fn file_access_triples() {
        let owner = Cred::new(100, 10);
        let group = Cred::new(200, 10);
        let other = Cred::new(300, 30);
        let mode = 0o640;
        assert!(owner.file_access(mode, 100, 10, 4));
        assert!(owner.file_access(mode, 100, 10, 2));
        assert!(group.file_access(mode, 100, 10, 4));
        assert!(!group.file_access(mode, 100, 10, 2));
        assert!(!other.file_access(mode, 100, 10, 4));
        assert!(Cred::superuser().file_access(mode, 100, 10, 6));
    }

    #[test]
    fn supplementary_groups_grant_group_class() {
        let mut c = Cred::new(300, 30);
        c.groups.push(10);
        assert!(c.file_access(0o040, 100, 10, 4));
    }

    #[test]
    fn root_execute_needs_an_x_bit() {
        let root = Cred::superuser();
        assert!(!root.file_access(0o600, 100, 10, 1));
        assert!(root.file_access(0o700, 100, 10, 1));
    }
}
