//! An RFS-like remote-access shim with a lossy, recoverable wire.
//!
//! "The SVR4 implementation of /proc works correctly with Remote File
//! Sharing (RFS). With appropriate permission it is possible to inspect,
//! modify and control processes running on any machine in an RFS
//! network." And, motivating the proposed restructuring: "Removing the
//! dependence on ioctl simplifies the implementation of /proc in a
//! network environment. The unstructured nature of ioctl operations and
//! the variability of operand sizes and I/O directions make it difficult
//! to cleanly separate the client/server interactions; read and write
//! don't share these problems."
//!
//! [`RemoteFs`] wraps any [`FileSystem`] and simulates a client/server
//! split: every operation is marshalled into a request byte image, the
//! image crosses a (possibly faulty) wire, the server parses it and
//! executes the call against the inner file system, and the result
//! crosses back the same way. Byte and operation counts accumulate in
//! [`WireStats`], giving experiment E5 its data.
//!
//! Real process-control traffic must survive a network that corrupts,
//! loses, duplicates and delays messages, so the wire layer is built
//! from explicit state rather than hope:
//!
//! * every image is framed with a magic, a sequence number, a length and
//!   a CRC-32 ([`encode_frame`]/[`decode_frame`]); damaged frames are
//!   rejected with a distinct [`WireError`], never misparsed;
//! * a seeded, replayable [`FaultPlan`] injects drops, truncations,
//!   bit-flips, duplications and delays at configured per-mille rates —
//!   the same seed always yields the same fault schedule;
//! * a client-side retry engine resends until a usable reply arrives,
//!   with capped exponential backoff and a bounded time budget; an
//!   exhausted budget degrades to [`Errno::ETIMEDOUT`], never a panic or
//!   a silently wrong reply;
//! * operations are classified by idempotency ([`OpClass`]): pure reads
//!   retry freely, while mutating operations (`open`, `close`, `write`,
//!   `ioctl`) carry their sequence number into a server-side dedup
//!   window so a retried request is applied exactly once.
//!
//! The crucial asymmetry from the paper survives intact: `read`,
//! `write`, `lookup` and friends marshal *generically* — their operand
//! sizes and directions are manifest in the call. `ioctl` cannot be
//! marshalled without a per-request table of operand sizes and
//! directions ([`IoctlWireSpec`]); any request missing from the table is
//! refused with `ENOTSUP` and counted.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::cred::Cred;
use crate::errno::{Errno, SysResult};
use crate::fs::{FileSystem, IoReply, IoctlReply, OFlags, OpenToken, PollStatus};
use crate::node::{DirEntry, Metadata, NodeId, Pid, VnodeKind};
use std::collections::VecDeque;

/// Introspection ioctl answered by [`RemoteFs`] itself (never crossing
/// the wire): returns the [`WireStats`] image. Numbered after the
/// `PIOC*` family so the flat tooling can issue it on any remote-mounted
/// descriptor, mirroring `PIOCCACHESTATS`.
pub const PIOCWIRESTATS: u32 = 0x5030;

/// Traffic, fault and recovery counters for the simulated wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Remote operations performed.
    pub ops: u64,
    /// Request bytes sent client to server (framed, including retries).
    pub bytes_sent: u64,
    /// Response bytes sent server to client (framed).
    pub bytes_received: u64,
    /// ioctl requests refused because no wire specification exists.
    pub unsupported_ioctls: u64,
    /// Request frames transmitted (one per attempt).
    pub frames_sent: u64,
    /// Frames the network dropped.
    pub drops: u64,
    /// Frames the network truncated.
    pub truncations: u64,
    /// Frames the network bit-flipped.
    pub bitflips: u64,
    /// Frames the network duplicated.
    pub duplicates: u64,
    /// Frames delivered too late to be useful.
    pub delays: u64,
    /// Damaged frames rejected by the length/CRC check (either side).
    pub checksum_rejects: u64,
    /// Attempts beyond the first (client resends).
    pub retries: u64,
    /// Re-executed sequenced requests answered from the dedup window.
    pub dedup_hits: u64,
    /// Operations that exhausted their retry budget (`ETIMEDOUT`).
    pub timeouts: u64,
}

impl WireStats {
    /// Encoded length of the wire image.
    pub const WIRE_LEN: usize = 14 * 8;

    /// Serialises, `PIOCWIRESTATS`'s reply format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        for v in [
            self.ops,
            self.bytes_sent,
            self.bytes_received,
            self.unsupported_ioctls,
            self.frames_sent,
            self.drops,
            self.truncations,
            self.bitflips,
            self.duplicates,
            self.delays,
            self.checksum_rejects,
            self.retries,
            self.dedup_hits,
            self.timeouts,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    /// Deserialises a `PIOCWIRESTATS` reply.
    pub fn from_bytes(b: &[u8]) -> Option<WireStats> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let at = |o: usize| {
            b.get(o..o + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .unwrap_or(0)
        };
        Some(WireStats {
            ops: at(0),
            bytes_sent: at(8),
            bytes_received: at(16),
            unsupported_ioctls: at(24),
            frames_sent: at(32),
            drops: at(40),
            truncations: at(48),
            bitflips: at(56),
            duplicates: at(64),
            delays: at(72),
            checksum_rejects: at(80),
            retries: at(88),
            dedup_hits: at(96),
            timeouts: at(104),
        })
    }

    /// Total frames the fault plan perturbed in any way.
    pub fn faults_injected(&self) -> u64 {
        self.drops + self.truncations + self.bitflips + self.duplicates + self.delays
    }
}

/// How a frame failed validation. Distinct from an [`Errno`] so tests
/// can tell "the wire rejected a damaged image" apart from "the server
/// refused the operation"; at the system-call boundary every wire error
/// degrades to `EIO`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame is shorter than its header claims.
    Truncated,
    /// The magic or CRC does not match (bit damage).
    Corrupt,
    /// The frame validated but its contents don't parse.
    Malformed,
}

impl From<WireError> for Errno {
    fn from(_: WireError) -> Errno {
        Errno::EIO
    }
}

/// Per-mille probabilities for each fault class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Frame silently discarded.
    pub drop: u16,
    /// Frame cut short at a random point.
    pub truncate: u16,
    /// One random bit inverted.
    pub bitflip: u16,
    /// Frame delivered twice.
    pub duplicate: u16,
    /// Frame delivered after the client has given up waiting.
    pub delay: u16,
}

impl FaultRates {
    /// The same per-mille rate for every fault class.
    pub fn uniform(permille: u16) -> FaultRates {
        FaultRates {
            drop: permille,
            truncate: permille,
            bitflip: permille,
            duplicate: permille,
            delay: permille,
        }
    }
}

/// A deterministic, replayable fault schedule: an xorshift64* stream
/// seeded once, consumed in a fixed order per frame. Re-running the same
/// operation sequence under the same seed reproduces every fault.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    state: u64,
    rates: FaultRates,
}

/// One frame as the network delivered it.
struct Delivery {
    bytes: Vec<u8>,
    /// Delivered after the client stopped waiting (the effect of a delay
    /// fault: the work happens, the reply is wasted).
    late: bool,
}

impl FaultPlan {
    /// A plan from a seed and per-fault rates (zero seed is remapped:
    /// xorshift has an all-zero fixed point).
    pub fn new(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed }, rates }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn roll(&mut self, permille: u16) -> bool {
        permille > 0 && self.next() % 1000 < u64::from(permille)
    }

    /// Applies the schedule to one outbound frame, returning what the
    /// network actually delivers (possibly nothing, possibly twice).
    fn perturb(&mut self, frame: Vec<u8>, stats: &mut WireStats) -> Vec<Delivery> {
        if self.roll(self.rates.drop) {
            stats.drops += 1;
            return Vec::new();
        }
        let copies = if self.roll(self.rates.duplicate) {
            stats.duplicates += 1;
            2
        } else {
            1
        };
        let mut out = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut bytes = frame.clone();
            if self.roll(self.rates.truncate) && !bytes.is_empty() {
                stats.truncations += 1;
                let keep = (self.next() as usize) % bytes.len();
                bytes.truncate(keep);
            }
            if self.roll(self.rates.bitflip) && !bytes.is_empty() {
                stats.bitflips += 1;
                let bit = (self.next() as usize) % (bytes.len() * 8);
                if let Some(byte) = bytes.get_mut(bit / 8) {
                    *byte ^= 1 << (bit % 8);
                }
            }
            let late = self.roll(self.rates.delay);
            if late {
                stats.delays += 1;
            }
            out.push(Delivery { bytes, late });
        }
        out
    }
}

/// Client retry discipline: how often and for how long to resend before
/// degrading to `ETIMEDOUT`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before giving up (first send included).
    pub max_attempts: u32,
    /// Upper bound on the per-attempt backoff, in abstract ticks.
    pub backoff_cap: u64,
    /// Total backoff ticks the operation may consume.
    pub budget: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 8, backoff_cap: 64, budget: 256 }
    }
}

/// Idempotency class of one wire operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    /// Safe to execute any number of times (lookup, getattr, readdir,
    /// read, poll): the client retries freely.
    Idempotent,
    /// Carries side effects (open, close, write, ioctl): the sequence
    /// number enters the server's dedup window so a retried request is
    /// executed exactly once and re-answered from the cached response.
    Sequenced,
}

/// Responses remembered per sequence number for exactly-once execution.
const DEDUP_WINDOW: usize = 128;

/// Frame magic ("/proc wire").
const FRAME_MAGIC: u32 = 0x70F5_57E1;
/// Frame header: magic + seq + body length + CRC-32.
const FRAME_HEADER: usize = 4 + 8 + 4 + 4;

/// CRC-32 (IEEE 802.3 polynomial, bitwise): guarantees detection of any
/// single-bit flip and any burst up to 32 bits.
fn crc32(seed: u32, data: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
        }
    }
    !crc
}

fn frame_crc(seq: u64, body: &[u8]) -> u32 {
    let crc = crc32(0, &seq.to_le_bytes());
    let crc = crc32(crc, &(body.len() as u32).to_le_bytes());
    crc32(crc, body)
}

/// Frames a message body: `[magic][seq][len][crc][body]`.
fn encode_frame(seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(seq, body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Validates and unframes a delivered image. Any damage is reported as a
/// [`WireError`]; nothing is ever parsed out of a damaged frame.
fn decode_frame(data: &[u8]) -> Result<(u64, Vec<u8>), WireError> {
    let mut r = WireReader::new(data);
    let magic = r.u32().map_err(|_| WireError::Truncated)?;
    if magic != FRAME_MAGIC {
        return Err(WireError::Corrupt);
    }
    let seq = r.u64().map_err(|_| WireError::Truncated)?;
    let len = r.u32().map_err(|_| WireError::Truncated)? as usize;
    let crc = r.u32().map_err(|_| WireError::Truncated)?;
    if data.len() != FRAME_HEADER + len {
        return Err(WireError::Truncated);
    }
    let body = &data[FRAME_HEADER..];
    if frame_crc(seq, body) != crc {
        return Err(WireError::Corrupt);
    }
    Ok((seq, body.to_vec()))
}

/// Wire shape of one ioctl request: how many bytes go in and (at most)
/// how many come back. Exactly the knowledge a remote file system must be
/// taught per request — the paper's complaint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoctlWireSpec {
    /// Operand bytes carried with the request.
    pub in_len: usize,
    /// Maximum operand bytes returned.
    pub out_len: usize,
}

/// Table resolving an ioctl request number to its wire shape.
pub type IoctlTable = Box<dyn Fn(u32) -> Option<IoctlWireSpec> + Send>;

/// A file system accessed across a simulated (and possibly lossy) wire.
pub struct RemoteFs<K> {
    inner: Box<dyn FileSystem<K> + Send>,
    ioctl_table: Option<IoctlTable>,
    fault: Option<FaultPlan>,
    retry: RetryPolicy,
    /// Next request sequence number.
    next_seq: u64,
    /// Server-side dedup window: `(seq, cached response body)`.
    dedup: VecDeque<(u64, Vec<u8>)>,
    /// Accumulated traffic counters.
    pub stats: WireStats,
}

impl<K> RemoteFs<K> {
    /// Wraps `inner` over a perfect wire. Without an ioctl table, every
    /// ioctl is refused.
    pub fn new(inner: Box<dyn FileSystem<K> + Send>) -> RemoteFs<K> {
        RemoteFs {
            inner,
            ioctl_table: None,
            fault: None,
            retry: RetryPolicy::default(),
            next_seq: 1,
            dedup: VecDeque::new(),
            stats: WireStats::default(),
        }
    }

    /// Supplies the per-request ioctl wire table.
    pub fn with_ioctl_table(mut self, table: IoctlTable) -> RemoteFs<K> {
        self.ioctl_table = Some(table);
        self
    }

    /// Makes the wire lossy under a deterministic fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> RemoteFs<K> {
        self.fault = Some(plan);
        self
    }

    /// Overrides the client retry discipline.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> RemoteFs<K> {
        self.retry = policy;
        self
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        self.stats = WireStats::default();
    }

    /// Performs one remote operation end to end: frame and send the
    /// request, survive the network, execute on the server (through the
    /// dedup window for sequenced ops), frame and return the reply,
    /// retrying with capped exponential backoff until a usable reply
    /// arrives or the budget is gone. Returns the server's response body
    /// (already status-stripped) or a clean errno.
    fn transact(
        &mut self,
        k: &mut K,
        class: OpClass,
        req_body: &[u8],
        mut server: impl FnMut(
            &mut (dyn FileSystem<K> + Send),
            &mut K,
            &mut WireReader<'_>,
        ) -> SysResult<Wire>,
    ) -> SysResult<Vec<u8>> {
        self.stats.ops += 1;
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let mut backoff: u64 = 1;
        let mut budget = self.retry.budget;
        for attempt in 0..self.retry.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            let frame = encode_frame(seq, req_body);
            self.stats.frames_sent += 1;
            self.stats.bytes_sent += frame.len() as u64;
            let deliveries = match self.fault.as_mut() {
                Some(plan) => plan.perturb(frame, &mut self.stats),
                None => vec![Delivery { bytes: frame, late: false }],
            };
            let mut reply: Option<Vec<u8>> = None;
            for d in deliveries {
                // ---- server side: validate, dedup, execute ----
                let (rseq, rbody) = match decode_frame(&d.bytes) {
                    Ok(x) => x,
                    Err(_) => {
                        self.stats.checksum_rejects += 1;
                        continue;
                    }
                };
                let cached = (class == OpClass::Sequenced)
                    .then(|| self.dedup.iter().find(|(s, _)| *s == rseq).map(|(_, b)| b.clone()))
                    .flatten();
                let resp_body = match cached {
                    Some(body) => {
                        self.stats.dedup_hits += 1;
                        body
                    }
                    None => {
                        let mut r = WireReader::new(&rbody);
                        let body = match server(&mut *self.inner, k, &mut r) {
                            Ok(w) => {
                                let mut b = vec![0u8];
                                b.extend_from_slice(&w.0);
                                b
                            }
                            Err(e) => {
                                let mut b = vec![1u8];
                                b.extend_from_slice(&(e as u32).to_le_bytes());
                                b
                            }
                        };
                        if class == OpClass::Sequenced {
                            self.dedup.push_back((rseq, body.clone()));
                            if self.dedup.len() > DEDUP_WINDOW {
                                self.dedup.pop_front();
                            }
                        }
                        body
                    }
                };
                // ---- response crosses back ----
                let resp_frame = encode_frame(rseq, &resp_body);
                self.stats.bytes_received += resp_frame.len() as u64;
                let responses = match self.fault.as_mut() {
                    Some(plan) => plan.perturb(resp_frame, &mut self.stats),
                    None => vec![Delivery { bytes: resp_frame, late: false }],
                };
                for rd in responses {
                    if d.late || rd.late {
                        // The work happened, but the reply missed the
                        // client's patience window; the retry path (and
                        // the dedup window) must absorb it.
                        continue;
                    }
                    match decode_frame(&rd.bytes) {
                        Ok((s, b)) if s == seq => {
                            reply.get_or_insert(b);
                        }
                        Ok(_) => {} // stale sequence: discarded
                        Err(_) => self.stats.checksum_rejects += 1,
                    }
                }
            }
            if let Some(body) = reply {
                return match body.split_first() {
                    Some((0, rest)) => Ok(rest.to_vec()),
                    Some((1, rest)) => {
                        let mut r = WireReader::new(rest);
                        let code = r.u32().map_err(Errno::from)? as i32;
                        Err(Errno::from_i32(code).unwrap_or(Errno::EIO))
                    }
                    _ => Err(Errno::EIO),
                };
            }
            // No usable reply this attempt: back off, then resend.
            if budget < backoff {
                break;
            }
            budget -= backoff;
            backoff = (backoff * 2).min(self.retry.backoff_cap.max(1));
        }
        self.stats.timeouts += 1;
        Err(Errno::ETIMEDOUT)
    }
}

/// A marshalled message body: just bytes, with cursor-based read-back.
struct Wire(Vec<u8>);

/// Fallible cursor over a received message. Every accessor reports
/// [`WireError::Truncated`] instead of panicking: recovery paths must
/// not hide panics.
struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type WireResult<T> = Result<T, WireError>;

impl Wire {
    fn new(op: u8) -> Wire {
        Wire(vec![op])
    }
    fn empty() -> Wire {
        Wire(Vec::new())
    }
    fn u32(mut self, v: u32) -> Wire {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn u64(mut self, v: u64) -> Wire {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn str(mut self, s: &str) -> Wire {
        self.0.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.0.extend_from_slice(s.as_bytes());
        self
    }
    fn bytes(mut self, b: &[u8]) -> Wire {
        self.0.extend_from_slice(&(b.len() as u32).to_le_bytes());
        self.0.extend_from_slice(b);
        self
    }
}

impl<'a> WireReader<'a> {
    fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> WireResult<u32> {
        let s = self.take(4)?;
        s.try_into().map(u32::from_le_bytes).map_err(|_| WireError::Truncated)
    }
    fn u64(&mut self) -> WireResult<u64> {
        let s = self.take(8)?;
        s.try_into().map(u64::from_le_bytes).map_err(|_| WireError::Truncated)
    }
    fn str(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        Ok(String::from_utf8_lossy(self.take(n)?).into_owned())
    }
    fn bytes(&mut self) -> WireResult<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

fn cred_wire(w: Wire, c: &Cred) -> Wire {
    let mut w = w.u32(c.ruid).u32(c.euid).u32(c.suid).u32(c.rgid).u32(c.egid).u32(c.sgid);
    w = w.u32(c.groups.len() as u32);
    for g in &c.groups {
        w = w.u32(*g);
    }
    w
}

fn cred_unwire(r: &mut WireReader<'_>) -> WireResult<Cred> {
    let (ruid, euid, suid, rgid, egid, sgid) =
        (r.u32()?, r.u32()?, r.u32()?, r.u32()?, r.u32()?, r.u32()?);
    let n = r.u32()?;
    let mut groups = Vec::with_capacity(n.min(64) as usize);
    for _ in 0..n {
        groups.push(r.u32()?);
    }
    Ok(Cred { ruid, euid, suid, rgid, egid, sgid, groups })
}

const OP_LOOKUP: u8 = 1;
const OP_GETATTR: u8 = 2;
const OP_READDIR: u8 = 3;
const OP_OPEN: u8 = 4;
const OP_CLOSE: u8 = 5;
const OP_READ: u8 = 6;
const OP_WRITE: u8 = 7;
const OP_IOCTL: u8 = 8;
const OP_POLL: u8 = 9;

/// Server-side dispatch guard: the op byte must match the handler the
/// request was routed to (a validated frame with a foreign op byte can
/// only mean a marshalling bug, not wire damage).
fn expect_op(r: &mut WireReader<'_>, op: u8) -> WireResult<()> {
    if r.u8()? != op {
        return Err(WireError::Malformed);
    }
    Ok(())
}

impl<K> FileSystem<K> for RemoteFs<K> {
    fn type_name(&self) -> &'static str {
        "remote"
    }

    fn root(&self) -> NodeId {
        self.inner.root()
    }

    fn lookup(&mut self, k: &mut K, cur: Pid, dir: NodeId, name: &str) -> SysResult<NodeId> {
        let req = Wire::new(OP_LOOKUP).u32(cur.0).u64(dir.0).str(name);
        let resp = self.transact(k, OpClass::Idempotent, &req.0, |inner, k, r| {
            expect_op(r, OP_LOOKUP)?;
            let (cur, dir, name) = (Pid(r.u32()?), NodeId(r.u64()?), r.str()?);
            inner.lookup(k, cur, dir, &name).map(|n| Wire::empty().u64(n.0))
        })?;
        let mut rr = WireReader::new(&resp);
        Ok(NodeId(rr.u64().map_err(Errno::from)?))
    }

    fn getattr(&mut self, k: &mut K, node: NodeId) -> SysResult<Metadata> {
        let req = Wire::new(OP_GETATTR).u64(node.0);
        let resp = self.transact(k, OpClass::Idempotent, &req.0, |inner, k, r| {
            expect_op(r, OP_GETATTR)?;
            let node = NodeId(r.u64()?);
            inner.getattr(k, node).map(|m| {
                Wire::new(match m.kind {
                    VnodeKind::Regular => 0,
                    VnodeKind::Directory => 1,
                    VnodeKind::Proc => 2,
                    VnodeKind::Fifo => 3,
                })
                .u32(u32::from(m.mode))
                .u32(m.uid)
                .u32(m.gid)
                .u64(m.size)
                .u32(m.nlink)
                .u64(m.mtime)
            })
        })?;
        let mut rr = WireReader::new(&resp);
        let parse = |rr: &mut WireReader<'_>| -> WireResult<Metadata> {
            let kind = match rr.u8()? {
                0 => VnodeKind::Regular,
                1 => VnodeKind::Directory,
                2 => VnodeKind::Proc,
                3 => VnodeKind::Fifo,
                _ => return Err(WireError::Malformed),
            };
            Ok(Metadata {
                kind,
                mode: rr.u32()? as u16,
                uid: rr.u32()?,
                gid: rr.u32()?,
                size: rr.u64()?,
                nlink: rr.u32()?,
                mtime: rr.u64()?,
            })
        };
        parse(&mut rr).map_err(Errno::from)
    }

    fn readdir(&mut self, k: &mut K, cur: Pid, dir: NodeId) -> SysResult<Vec<DirEntry>> {
        let req = Wire::new(OP_READDIR).u32(cur.0).u64(dir.0);
        let resp = self.transact(k, OpClass::Idempotent, &req.0, |inner, k, r| {
            expect_op(r, OP_READDIR)?;
            let (cur, dir) = (Pid(r.u32()?), NodeId(r.u64()?));
            inner.readdir(k, cur, dir).map(|entries| {
                let mut w = Wire::empty().u32(entries.len() as u32);
                for e in &entries {
                    w = w.str(&e.name).u64(e.node.0);
                }
                w
            })
        })?;
        let mut rr = WireReader::new(&resp);
        let parse = |rr: &mut WireReader<'_>| -> WireResult<Vec<DirEntry>> {
            let n = rr.u32()?;
            let mut out = Vec::with_capacity(n.min(4096) as usize);
            for _ in 0..n {
                out.push(DirEntry { name: rr.str()?, node: NodeId(rr.u64()?) });
            }
            Ok(out)
        };
        parse(&mut rr).map_err(Errno::from)
    }

    fn open(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> SysResult<OpenToken> {
        let req = cred_wire(Wire::new(OP_OPEN).u32(cur.0).u64(node.0).u64(flags.to_bits()), cred);
        let resp = self.transact(k, OpClass::Sequenced, &req.0, |inner, k, r| {
            expect_op(r, OP_OPEN)?;
            let (cur, node, bits) = (Pid(r.u32()?), NodeId(r.u64()?), r.u64()?);
            let cred = cred_unwire(r)?;
            inner
                .open(k, cur, node, OFlags::from_bits(bits), &cred)
                .map(|t| Wire::empty().u64(t.0))
        })?;
        let mut rr = WireReader::new(&resp);
        Ok(OpenToken(rr.u64().map_err(Errno::from)?))
    }

    fn close(&mut self, k: &mut K, cur: Pid, node: NodeId, token: OpenToken, flags: OFlags) {
        let req = Wire::new(OP_CLOSE).u32(cur.0).u64(node.0).u64(token.0).u64(flags.to_bits());
        // `close` has no error path to surface, but it still mutates
        // server state (writer accounting, exclusive-use release), so it
        // crosses as a sequenced op; a lost close is recorded in
        // `stats.timeouts`.
        let _ = self.transact(k, OpClass::Sequenced, &req.0, |inner, k, r| {
            expect_op(r, OP_CLOSE)?;
            let (cur, node, token, bits) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u64()?);
            inner.close(k, cur, node, token, OFlags::from_bits(bits));
            Ok(Wire::empty())
        });
    }

    fn read(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        buf: &mut [u8],
    ) -> SysResult<IoReply> {
        // A read marshals generically: the request is (node, off, len) and
        // the response is the data — sizes and direction are manifest.
        let req = Wire::new(OP_READ)
            .u32(cur.0)
            .u64(node.0)
            .u64(token.0)
            .u64(off)
            .u64(buf.len() as u64);
        let resp = self.transact(k, OpClass::Idempotent, &req.0, |inner, k, r| {
            expect_op(r, OP_READ)?;
            let (cur, node, token, off, len) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u64()?, r.u64()? as usize);
            let mut server_buf = vec![0u8; len];
            inner.read(k, cur, node, token, off, &mut server_buf).map(|reply| match reply {
                IoReply::Done(n) => Wire::new(0).bytes(server_buf.get(..n).unwrap_or(&[])),
                IoReply::Block => Wire::new(1),
            })
        })?;
        let mut rr = WireReader::new(&resp);
        match rr.u8().map_err(Errno::from)? {
            0 => {
                let data = rr.bytes().map_err(Errno::from)?;
                let n = data.len().min(buf.len());
                buf[..n].copy_from_slice(&data[..n]);
                Ok(IoReply::Done(n))
            }
            _ => Ok(IoReply::Block),
        }
    }

    fn write(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> SysResult<IoReply> {
        let req = Wire::new(OP_WRITE).u32(cur.0).u64(node.0).u64(token.0).u64(off).bytes(data);
        let resp = self.transact(k, OpClass::Sequenced, &req.0, |inner, k, r| {
            expect_op(r, OP_WRITE)?;
            let (cur, node, token, off) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u64()?);
            let payload = r.bytes()?;
            inner.write(k, cur, node, token, off, &payload).map(|reply| match reply {
                IoReply::Done(n) => Wire::new(0).u64(n as u64),
                IoReply::Block => Wire::new(1),
            })
        })?;
        let mut rr = WireReader::new(&resp);
        match rr.u8().map_err(Errno::from)? {
            0 => Ok(IoReply::Done(rr.u64().map_err(Errno::from)? as usize)),
            _ => Ok(IoReply::Block),
        }
    }

    fn ioctl(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        req_no: u32,
        arg: &[u8],
    ) -> SysResult<IoctlReply> {
        // Wire introspection is answered locally — the counters being
        // asked about live on this side of the wire.
        if req_no == PIOCWIRESTATS {
            return Ok(IoctlReply::Done(self.stats.to_bytes()));
        }
        // An ioctl can only cross the wire if someone taught the shim this
        // request's operand sizes and directions.
        let spec = match self.ioctl_table.as_ref().and_then(|t| t(req_no)) {
            Some(s) => s,
            None => {
                self.stats.unsupported_ioctls += 1;
                return Err(Errno::ENOTSUP);
            }
        };
        if arg.len() > spec.in_len {
            self.stats.unsupported_ioctls += 1;
            return Err(Errno::ENOTSUP);
        }
        let req =
            Wire::new(OP_IOCTL).u32(cur.0).u64(node.0).u64(token.0).u32(req_no).bytes(arg);
        let resp = self.transact(k, OpClass::Sequenced, &req.0, |inner, k, r| {
            expect_op(r, OP_IOCTL)?;
            let (cur, node, token, req_no) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u32()?);
            let payload = r.bytes()?;
            inner.ioctl(k, cur, node, token, req_no, &payload).map(|reply| match reply {
                IoctlReply::Done(out) => {
                    // The server can only return what the spec promised.
                    let n = out.len().min(spec.out_len);
                    Wire::new(0).bytes(out.get(..n).unwrap_or(&[]))
                }
                IoctlReply::Block => Wire::new(1),
            })
        })?;
        let mut rr = WireReader::new(&resp);
        match rr.u8().map_err(Errno::from)? {
            0 => Ok(IoctlReply::Done(rr.bytes().map_err(Errno::from)?)),
            _ => Ok(IoctlReply::Block),
        }
    }

    fn poll(&mut self, k: &mut K, node: NodeId, token: OpenToken) -> SysResult<PollStatus> {
        let req = Wire::new(OP_POLL).u64(node.0).u64(token.0);
        let resp = self.transact(k, OpClass::Idempotent, &req.0, |inner, k, r| {
            expect_op(r, OP_POLL)?;
            let (node, token) = (NodeId(r.u64()?), OpenToken(r.u64()?));
            inner.poll(k, node, token).map(|p| {
                Wire::new(u8::from(p.readable) | u8::from(p.writable) << 1 | u8::from(p.hangup) << 2)
            })
        })?;
        let mut rr = WireReader::new(&resp);
        let bits = rr.u8().map_err(Errno::from)?;
        Ok(PollStatus { readable: bits & 1 != 0, writable: bits & 2 != 0, hangup: bits & 4 != 0 })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;

    const P: Pid = Pid(1);

    fn remote_memfs() -> RemoteFs<()> {
        let mut fs = MemFs::<()>::new();
        fs.install("/bin/tool", 0o755, 0, 0, b"payload-bytes".to_vec());
        RemoteFs::new(Box::new(fs))
    }

    fn faulty_memfs(seed: u64, rates: FaultRates) -> RemoteFs<()> {
        let mut fs = MemFs::<()>::new();
        fs.install("/bin/tool", 0o755, 0, 0, b"payload-bytes".to_vec());
        RemoteFs::new(Box::new(fs)).with_faults(FaultPlan::new(seed, rates))
    }

    #[test]
    fn lookup_and_read_work_across_the_wire() {
        let mut r = remote_memfs();
        let cred = Cred::superuser();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let tok = r.open(&mut (), P, tool, OFlags::rdonly(), &cred).expect("open");
        let mut buf = [0u8; 7];
        let reply = r.read(&mut (), P, tool, tok, 0, &mut buf).expect("read");
        assert_eq!(reply, IoReply::Done(7));
        assert_eq!(&buf, b"payload");
        assert!(r.stats.ops >= 4);
        assert!(r.stats.bytes_sent > 0);
        assert!(r.stats.bytes_received > 0);
    }

    #[test]
    fn errors_cross_the_wire() {
        let mut r = remote_memfs();
        assert_eq!(r.lookup(&mut (), P, NodeId(0), "missing"), Err(Errno::ENOENT));
    }

    #[test]
    fn ioctl_without_table_is_refused() {
        let mut r = remote_memfs();
        let err = r
            .ioctl(&mut (), P, NodeId(0), OpenToken(0), 0x1234, &[])
            .expect_err("no table");
        assert_eq!(err, Errno::ENOTSUP);
        assert_eq!(r.stats.unsupported_ioctls, 1);
        assert_eq!(r.stats.ops, 0, "the request never even reaches the wire");
    }

    #[test]
    fn ioctl_with_table_crosses_but_is_bounded() {
        // memfs rejects ioctl with ENOTTY; we verify the round trip
        // carries the error back, which demands a wire spec.
        let table: IoctlTable =
            Box::new(|req| (req == 7).then_some(IoctlWireSpec { in_len: 8, out_len: 16 }));
        let mut r = RemoteFs::new(Box::new(MemFs::<()>::new())).with_ioctl_table(table);
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 7, &[0; 8]).expect_err("enotty");
        assert_eq!(err, Errno::ENOTTY);
        assert_eq!(r.stats.ops, 1);
        // Oversized operand refused client-side.
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 7, &[0; 64]).expect_err("too big");
        assert_eq!(err, Errno::ENOTSUP);
        // Unknown request refused.
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 8, &[]).expect_err("unknown");
        assert_eq!(err, Errno::ENOTSUP);
    }

    #[test]
    fn write_marshals_payload() {
        let mut r = remote_memfs();
        let cred = Cred::superuser();
        let f = {
            let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
            r.lookup(&mut (), P, bin, "tool").expect("tool")
        };
        let tok = r.open(&mut (), P, f, OFlags::rdwr(), &cred).expect("open");
        r.reset_stats();
        let reply = r.write(&mut (), P, f, tok, 0, b"NEW").expect("write");
        assert_eq!(reply, IoReply::Done(3));
        assert!(r.stats.bytes_sent as usize >= 3 + 1 + 4, "payload travelled");
        let mut buf = [0u8; 3];
        r.read(&mut (), P, f, tok, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"NEW");
    }

    #[test]
    fn readdir_marshals_entries() {
        let mut r = remote_memfs();
        let entries = r.readdir(&mut (), P, NodeId(0)).expect("readdir");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "bin");
    }

    #[test]
    fn getattr_roundtrip() {
        let mut r = remote_memfs();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let meta = r.getattr(&mut (), tool).expect("attr");
        assert_eq!(meta.mode, 0o755);
        assert_eq!(meta.size, 13);
        assert_eq!(meta.kind, VnodeKind::Regular);
    }

    #[test]
    fn frames_reject_damage_without_misparsing() {
        let frame = encode_frame(42, b"important bytes");
        assert_eq!(decode_frame(&frame), Ok((42, b"important bytes".to_vec())));
        // Any single bit flip is caught by the CRC (or the magic/length
        // checks before it).
        for bit in 0..frame.len() * 8 {
            let mut dam = frame.clone();
            dam[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_frame(&dam).is_err(), "bit {bit} slipped through");
        }
        // Every truncation point is caught.
        for keep in 0..frame.len() {
            assert!(decode_frame(&frame[..keep]).is_err(), "cut at {keep} slipped through");
        }
    }

    #[test]
    fn wirestats_roundtrip() {
        let s = WireStats { ops: 7, drops: 3, dedup_hits: 11, timeouts: 1, ..Default::default() };
        let b = s.to_bytes();
        assert_eq!(b.len(), WireStats::WIRE_LEN);
        assert_eq!(WireStats::from_bytes(&b), Some(s));
        assert_eq!(WireStats::from_bytes(&b[..10]), None);
    }

    #[test]
    fn faulted_reads_recover_and_stay_correct() {
        // 10% of frames suffer each fault class; every operation must
        // still produce the exact fault-free answer (retries are free for
        // idempotent ops) or a clean timeout.
        let mut r = faulty_memfs(0xFEED, FaultRates::uniform(100));
        let cred = Cred::superuser();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let tok = r.open(&mut (), P, tool, OFlags::rdonly(), &cred).expect("open");
        for _ in 0..200 {
            let mut buf = [0u8; 13];
            match r.read(&mut (), P, tool, tok, 0, &mut buf) {
                Ok(IoReply::Done(13)) => assert_eq!(&buf, b"payload-bytes"),
                Ok(other) => panic!("unexpected reply {other:?}"),
                Err(e) => assert_eq!(e, Errno::ETIMEDOUT, "only clean timeouts allowed"),
            }
        }
        assert!(r.stats.faults_injected() > 0, "faults were actually exercised");
        assert!(r.stats.retries > 0, "recovery actually retried");
    }

    #[test]
    fn dead_wire_degrades_to_etimedout() {
        let rates = FaultRates { drop: 1000, ..FaultRates::default() };
        let mut r = faulty_memfs(1, rates);
        let err = r.lookup(&mut (), P, NodeId(0), "bin").expect_err("nothing arrives");
        assert_eq!(err, Errno::ETIMEDOUT);
        assert_eq!(r.stats.timeouts, 1);
        assert!(r.stats.retries > 0);
        assert_eq!(r.stats.drops as u32, r.stats.frames_sent as u32);
    }

    #[test]
    fn duplicated_writes_apply_exactly_once() {
        // Every frame is duplicated; the dedup window must keep the
        // second execution from happening.
        let rates = FaultRates { duplicate: 1000, ..FaultRates::default() };
        let mut fs = MemFs::<()>::new();
        fs.install("/log", 0o644, 0, 0, Vec::new());
        let mut r = RemoteFs::new(Box::new(fs)).with_faults(FaultPlan::new(9, rates));
        let cred = Cred::superuser();
        let log = r.lookup(&mut (), P, NodeId(0), "log").expect("log");
        let tok = r.open(&mut (), P, log, OFlags::rdwr(), &cred).expect("open");
        r.write(&mut (), P, log, tok, 0, b"once").expect("write");
        assert!(r.stats.dedup_hits > 0, "the duplicate hit the window");
        let mut buf = [0u8; 8];
        let n = match r.read(&mut (), P, log, tok, 0, &mut buf).expect("read") {
            IoReply::Done(n) => n,
            IoReply::Block => panic!("memfs never blocks"),
        };
        assert_eq!(&buf[..n], b"once", "the write applied exactly once");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let mut r = faulty_memfs(0xD15EA5E, FaultRates::uniform(120));
            let mut outcomes = Vec::new();
            for i in 0..50 {
                let name = if i % 2 == 0 { "bin" } else { "missing" };
                outcomes.push(r.lookup(&mut (), P, NodeId(0), name));
            }
            (outcomes, r.stats)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "per-op outcomes replay exactly");
        assert_eq!(sa, sb, "fault and retry counters replay exactly");
        assert!(sa.faults_injected() > 0);
    }

    #[test]
    fn wirestats_ioctl_is_answered_locally() {
        let mut r = remote_memfs();
        let _ = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let ops_before = r.stats.ops;
        let reply = r
            .ioctl(&mut (), P, NodeId(0), OpenToken(0), PIOCWIRESTATS, &[])
            .expect("wirestats");
        let bytes = match reply {
            IoctlReply::Done(b) => b,
            IoctlReply::Block => panic!("never blocks"),
        };
        let stats = WireStats::from_bytes(&bytes).expect("decode");
        assert_eq!(stats.ops, ops_before, "answered without another wire op");
        assert_eq!(r.stats.ops, ops_before, "no traffic was generated");
        assert_eq!(r.stats.unsupported_ioctls, 0, "not counted as a refusal");
    }
}
