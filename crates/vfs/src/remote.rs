//! An RFS-like remote-access shim: concurrent tagged sessions over a
//! lossy, recoverable wire.
//!
//! "The SVR4 implementation of /proc works correctly with Remote File
//! Sharing (RFS). With appropriate permission it is possible to inspect,
//! modify and control processes running on any machine in an RFS
//! network." And, motivating the proposed restructuring: "Removing the
//! dependence on ioctl simplifies the implementation of /proc in a
//! network environment. The unstructured nature of ioctl operations and
//! the variability of operand sizes and I/O directions make it difficult
//! to cleanly separate the client/server interactions; read and write
//! don't share these problems."
//!
//! # Wire protocol v2: tagged, pipelined, out of order
//!
//! A [`WireSession`] owns one server ([`FileSystem`]) end and one shared
//! wire. Every request frame carries an **op tag** (a session-unique
//! monotone counter, travelling in the frame's sequence field); many
//! operations — from many [`RemoteClient`] handles — may be in flight at
//! once. The server completes them **out of order** (a seeded service
//! jitter reorders replies) and the client side demultiplexes each
//! completion into its per-op [`OpFuture`], a poll-based state machine:
//! no async runtime, just `submit_*` → [`RemoteClient::pump`] →
//! [`RemoteClient::try_complete`]. [`RemoteFs`] keeps the blocking
//! [`FileSystem`] face by submitting and waiting on one future at a
//! time, so a remote mount drops into [`crate::mount::MountTable`]
//! unchanged while pipelined clients share its session.
//!
//! Time is **virtual**: a deterministic event scheduler orders request
//! arrivals, service completions, reply arrivals and retry timers on a
//! tick clock ([`WireSession::ticks`]). No wall clock is ever read, so
//! every interleaving — including multi-client races — replays exactly
//! from the seeds.
//!
//! Real process-control traffic must survive a network that corrupts,
//! loses, duplicates and delays messages, so the wire layer is built
//! from explicit state rather than hope:
//!
//! * every image is framed with a magic, a tag, a length and a CRC-32
//!   ([`encode_frame`]/[`decode_frame`]); damaged frames are rejected
//!   with a distinct [`WireError`], never misparsed;
//! * a seeded, replayable [`FaultPlan`] injects drops, truncations,
//!   bit-flips, duplications and delays at configured per-mille rates —
//!   the same seed always yields the same fault schedule;
//! * a per-op retry timer resends until a usable reply arrives, with
//!   capped exponential backoff and a bounded tick budget; an exhausted
//!   budget degrades to [`Errno::ETIMEDOUT`], never a panic or a
//!   silently wrong reply;
//! * operations are classified by idempotency ([`OpClass`]): pure reads
//!   retry freely, while mutating operations (`open`, `close`, `write`,
//!   `ioctl`) carry their tag into a server-side dedup window so a
//!   retried or duplicated request is applied exactly once — even when
//!   retransmissions from different client handles interleave.
//!
//! The crucial asymmetry from the paper survives intact: `read`,
//! `write`, `lookup` and friends marshal *generically* — their operand
//! sizes and directions are manifest in the call. `ioctl` cannot be
//! marshalled without a per-request table of operand sizes and
//! directions ([`IoctlWireSpec`]); any request missing from the table is
//! refused with `ENOTSUP` and counted.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::cred::Cred;
use crate::errno::{Errno, SysResult};
use crate::fs::{FileSystem, IoReply, IoctlReply, OFlags, OpenToken, PollStatus};
use crate::node::{DirEntry, Metadata, NodeId, Pid, VnodeKind};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Introspection ioctl answered by [`RemoteFs`] itself (never crossing
/// the wire): returns the [`WireStats`] image. Numbered after the
/// `PIOC*` family so the flat tooling can issue it on any remote-mounted
/// descriptor, mirroring `PIOCCACHESTATS`.
pub const PIOCWIRESTATS: u32 = 0x5030;

/// Traffic, fault and recovery counters for the simulated wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Remote operations performed.
    pub ops: u64,
    /// Request bytes sent client to server (framed, including retries).
    pub bytes_sent: u64,
    /// Response bytes sent server to client (framed).
    pub bytes_received: u64,
    /// ioctl requests refused because no wire specification exists.
    pub unsupported_ioctls: u64,
    /// Request frames transmitted (one per attempt).
    pub frames_sent: u64,
    /// Frames the network dropped.
    pub drops: u64,
    /// Frames the network truncated.
    pub truncations: u64,
    /// Frames the network bit-flipped.
    pub bitflips: u64,
    /// Frames the network duplicated.
    pub duplicates: u64,
    /// Frames delivered too late to be useful.
    pub delays: u64,
    /// Damaged frames rejected by the length/CRC check (either side).
    pub checksum_rejects: u64,
    /// Attempts beyond the first (client resends).
    pub retries: u64,
    /// Re-executed sequenced requests answered from the dedup window.
    pub dedup_hits: u64,
    /// Operations that exhausted their retry budget (`ETIMEDOUT`).
    pub timeouts: u64,
}

impl WireStats {
    /// Encoded length of the wire image.
    pub const WIRE_LEN: usize = 14 * 8;

    /// Serialises, `PIOCWIRESTATS`'s reply format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        for v in [
            self.ops,
            self.bytes_sent,
            self.bytes_received,
            self.unsupported_ioctls,
            self.frames_sent,
            self.drops,
            self.truncations,
            self.bitflips,
            self.duplicates,
            self.delays,
            self.checksum_rejects,
            self.retries,
            self.dedup_hits,
            self.timeouts,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    /// Deserialises a `PIOCWIRESTATS` reply.
    pub fn from_bytes(b: &[u8]) -> Option<WireStats> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let at = |o: usize| {
            b.get(o..o + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .unwrap_or(0)
        };
        Some(WireStats {
            ops: at(0),
            bytes_sent: at(8),
            bytes_received: at(16),
            unsupported_ioctls: at(24),
            frames_sent: at(32),
            drops: at(40),
            truncations: at(48),
            bitflips: at(56),
            duplicates: at(64),
            delays: at(72),
            checksum_rejects: at(80),
            retries: at(88),
            dedup_hits: at(96),
            timeouts: at(104),
        })
    }

    /// Total frames the fault plan perturbed in any way.
    pub fn faults_injected(&self) -> u64 {
        self.drops + self.truncations + self.bitflips + self.duplicates + self.delays
    }
}

/// How a frame failed validation. Distinct from an [`Errno`] so tests
/// can tell "the wire rejected a damaged image" apart from "the server
/// refused the operation"; at the system-call boundary every wire error
/// degrades to `EIO`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame is shorter than its header claims.
    Truncated,
    /// The magic or CRC does not match (bit damage).
    Corrupt,
    /// The frame validated but its contents don't parse.
    Malformed,
}

impl From<WireError> for Errno {
    fn from(_: WireError) -> Errno {
        Errno::EIO
    }
}

/// Per-mille probabilities for each fault class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Frame silently discarded.
    pub drop: u16,
    /// Frame cut short at a random point.
    pub truncate: u16,
    /// One random bit inverted.
    pub bitflip: u16,
    /// Frame delivered twice.
    pub duplicate: u16,
    /// Frame delivered after the client has given up waiting.
    pub delay: u16,
}

impl FaultRates {
    /// The same per-mille rate for every fault class.
    pub fn uniform(permille: u16) -> FaultRates {
        FaultRates {
            drop: permille,
            truncate: permille,
            bitflip: permille,
            duplicate: permille,
            delay: permille,
        }
    }
}

/// A deterministic, replayable fault schedule: an xorshift64* stream
/// seeded once, consumed in a fixed order per frame. Re-running the same
/// operation sequence under the same seed reproduces every fault.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    state: u64,
    rates: FaultRates,
}

/// One frame as the network delivered it.
struct Delivery {
    bytes: Vec<u8>,
    /// Delivered after the client stopped waiting (the effect of a delay
    /// fault: the work happens, the reply is wasted).
    late: bool,
}

impl FaultPlan {
    /// A plan from a seed and per-fault rates (zero seed is remapped:
    /// xorshift has an all-zero fixed point).
    pub fn new(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed }, rates }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn roll(&mut self, permille: u16) -> bool {
        permille > 0 && self.next() % 1000 < u64::from(permille)
    }

    /// Applies the schedule to one outbound frame, returning what the
    /// network actually delivers (possibly nothing, possibly twice).
    fn perturb(&mut self, frame: Vec<u8>, stats: &mut WireStats) -> Vec<Delivery> {
        if self.roll(self.rates.drop) {
            stats.drops += 1;
            return Vec::new();
        }
        let copies = if self.roll(self.rates.duplicate) {
            stats.duplicates += 1;
            2
        } else {
            1
        };
        let mut out = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut bytes = frame.clone();
            if self.roll(self.rates.truncate) && !bytes.is_empty() {
                stats.truncations += 1;
                let keep = (self.next() as usize) % bytes.len();
                bytes.truncate(keep);
            }
            if self.roll(self.rates.bitflip) && !bytes.is_empty() {
                stats.bitflips += 1;
                let bit = (self.next() as usize) % (bytes.len() * 8);
                if let Some(byte) = bytes.get_mut(bit / 8) {
                    *byte ^= 1 << (bit % 8);
                }
            }
            let late = self.roll(self.rates.delay);
            if late {
                stats.delays += 1;
            }
            out.push(Delivery { bytes, late });
        }
        out
    }
}

/// Client retry discipline: how often and for how long to resend before
/// degrading to `ETIMEDOUT`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before giving up (first send included).
    pub max_attempts: u32,
    /// Upper bound on the per-attempt backoff, in abstract ticks.
    pub backoff_cap: u64,
    /// Total backoff ticks the operation may consume.
    pub budget: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 8, backoff_cap: 64, budget: 256 }
    }
}

/// Idempotency class of one wire operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    /// Safe to execute any number of times (lookup, getattr, readdir,
    /// read, poll): the client retries freely.
    Idempotent,
    /// Carries side effects (open, close, write, ioctl): the op tag
    /// enters the server's dedup window so a retried request is
    /// executed exactly once and re-answered from the cached response.
    Sequenced,
}

/// Responses remembered per op tag for exactly-once execution.
const DEDUP_WINDOW: usize = 128;

/// Frame magic ("/proc wire", v2: tagged concurrent sessions).
const FRAME_MAGIC: u32 = 0x70F5_57E2;
/// Frame header: magic + tag + body length + CRC-32.
const FRAME_HEADER: usize = 4 + 8 + 4 + 4;

/// Ticks a frame spends crossing the wire in either direction.
const TRANSIT_TICKS: u64 = 1;
/// Server service-time jitter, exclusive upper bound: replies complete
/// `0..SERVICE_JITTER` ticks after arrival, reordering completions.
const SERVICE_JITTER: u64 = 3;
/// Client patience per attempt before the retry timer fires. Must
/// exceed a round trip plus the worst service jitter or clean wires
/// would retransmit.
const RETRY_RTT: u64 = 6;

/// CRC-32 (IEEE 802.3 polynomial, bitwise): guarantees detection of any
/// single-bit flip and any burst up to 32 bits.
fn crc32(seed: u32, data: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
        }
    }
    !crc
}

fn frame_crc(tag: u64, body: &[u8]) -> u32 {
    let crc = crc32(0, &tag.to_le_bytes());
    let crc = crc32(crc, &(body.len() as u32).to_le_bytes());
    crc32(crc, body)
}

/// Frames a message body: `[magic][tag][len][crc][body]`.
fn encode_frame(tag: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(tag, body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Validates and unframes a delivered image. Any damage is reported as a
/// [`WireError`]; nothing is ever parsed out of a damaged frame.
fn decode_frame(data: &[u8]) -> Result<(u64, Vec<u8>), WireError> {
    let mut r = WireReader::new(data);
    let magic = r.u32().map_err(|_| WireError::Truncated)?;
    if magic != FRAME_MAGIC {
        return Err(WireError::Corrupt);
    }
    let tag = r.u64().map_err(|_| WireError::Truncated)?;
    let len = r.u32().map_err(|_| WireError::Truncated)? as usize;
    let crc = r.u32().map_err(|_| WireError::Truncated)?;
    if data.len() != FRAME_HEADER + len {
        return Err(WireError::Truncated);
    }
    let body = &data[FRAME_HEADER..];
    if frame_crc(tag, body) != crc {
        return Err(WireError::Corrupt);
    }
    Ok((tag, body.to_vec()))
}

/// Wire shape of one ioctl request: how many bytes go in and (at most)
/// how many come back. Exactly the knowledge a remote file system must be
/// taught per request — the paper's complaint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoctlWireSpec {
    /// Operand bytes carried with the request.
    pub in_len: usize,
    /// Maximum operand bytes returned.
    pub out_len: usize,
}

/// Table resolving an ioctl request number to its wire shape.
pub type IoctlTable = Box<dyn Fn(u32) -> Option<IoctlWireSpec> + Send>;

/// A marshalled message body: just bytes, with cursor-based read-back.
struct Wire(Vec<u8>);

/// Fallible cursor over a received message. Every accessor reports
/// [`WireError::Truncated`] instead of panicking: recovery paths must
/// not hide panics.
struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type WireResult<T> = Result<T, WireError>;

impl Wire {
    fn new(op: u8) -> Wire {
        Wire(vec![op])
    }
    fn empty() -> Wire {
        Wire(Vec::new())
    }
    fn u32(mut self, v: u32) -> Wire {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn u64(mut self, v: u64) -> Wire {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn str(mut self, s: &str) -> Wire {
        self.0.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.0.extend_from_slice(s.as_bytes());
        self
    }
    fn bytes(mut self, b: &[u8]) -> Wire {
        self.0.extend_from_slice(&(b.len() as u32).to_le_bytes());
        self.0.extend_from_slice(b);
        self
    }
}

impl<'a> WireReader<'a> {
    fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> WireResult<u32> {
        let s = self.take(4)?;
        s.try_into().map(u32::from_le_bytes).map_err(|_| WireError::Truncated)
    }
    fn u64(&mut self) -> WireResult<u64> {
        let s = self.take(8)?;
        s.try_into().map(u64::from_le_bytes).map_err(|_| WireError::Truncated)
    }
    fn str(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        Ok(String::from_utf8_lossy(self.take(n)?).into_owned())
    }
    fn bytes(&mut self) -> WireResult<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

fn cred_wire(w: Wire, c: &Cred) -> Wire {
    let mut w = w.u32(c.ruid).u32(c.euid).u32(c.suid).u32(c.rgid).u32(c.egid).u32(c.sgid);
    w = w.u32(c.groups.len() as u32);
    for g in &c.groups {
        w = w.u32(*g);
    }
    w
}

fn cred_unwire(r: &mut WireReader<'_>) -> WireResult<Cred> {
    let (ruid, euid, suid, rgid, egid, sgid) =
        (r.u32()?, r.u32()?, r.u32()?, r.u32()?, r.u32()?, r.u32()?);
    let n = r.u32()?;
    let mut groups = Vec::with_capacity(n.min(64) as usize);
    for _ in 0..n {
        groups.push(r.u32()?);
    }
    Ok(Cred { ruid, euid, suid, rgid, egid, sgid, groups })
}

const OP_LOOKUP: u8 = 1;
const OP_GETATTR: u8 = 2;
const OP_READDIR: u8 = 3;
const OP_OPEN: u8 = 4;
const OP_CLOSE: u8 = 5;
const OP_READ: u8 = 6;
const OP_WRITE: u8 = 7;
const OP_IOCTL: u8 = 8;
const OP_POLL: u8 = 9;

fn op_class(op: u8) -> OpClass {
    match op {
        OP_OPEN | OP_CLOSE | OP_WRITE | OP_IOCTL => OpClass::Sequenced,
        _ => OpClass::Idempotent,
    }
}

/// The single server-side dispatcher: validates the op byte, unmarshals
/// the operands, executes against the inner file system and marshals the
/// reply. One decode path for every operation, shared by every client.
fn serve<K>(
    inner: &mut (dyn FileSystem<K> + Send),
    table: &Option<IoctlTable>,
    k: &mut K,
    body: &[u8],
) -> SysResult<Wire> {
    let mut r = WireReader::new(body);
    let op = r.u8().map_err(Errno::from)?;
    match op {
        OP_LOOKUP => {
            let (cur, dir, name) = (Pid(r.u32()?), NodeId(r.u64()?), r.str()?);
            inner.lookup(k, cur, dir, &name).map(|n| Wire::empty().u64(n.0))
        }
        OP_GETATTR => {
            let node = NodeId(r.u64()?);
            inner.getattr(k, node).map(|m| {
                Wire::new(match m.kind {
                    VnodeKind::Regular => 0,
                    VnodeKind::Directory => 1,
                    VnodeKind::Proc => 2,
                    VnodeKind::Fifo => 3,
                })
                .u32(u32::from(m.mode))
                .u32(m.uid)
                .u32(m.gid)
                .u64(m.size)
                .u32(m.nlink)
                .u64(m.mtime)
            })
        }
        OP_READDIR => {
            let (cur, dir) = (Pid(r.u32()?), NodeId(r.u64()?));
            inner.readdir(k, cur, dir).map(|entries| {
                let mut w = Wire::empty().u32(entries.len() as u32);
                for e in &entries {
                    w = w.str(&e.name).u64(e.node.0);
                }
                w
            })
        }
        OP_OPEN => {
            let (cur, node, bits) = (Pid(r.u32()?), NodeId(r.u64()?), r.u64()?);
            let cred = cred_unwire(&mut r)?;
            inner
                .open(k, cur, node, OFlags::from_bits(bits), &cred)
                .map(|t| Wire::empty().u64(t.0))
        }
        OP_CLOSE => {
            let (cur, node, token, bits) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u64()?);
            inner.close(k, cur, node, token, OFlags::from_bits(bits));
            Ok(Wire::empty())
        }
        OP_READ => {
            let (cur, node, token, off, len) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u64()?, r.u64()? as usize);
            let mut server_buf = vec![0u8; len];
            inner.read(k, cur, node, token, off, &mut server_buf).map(|reply| match reply {
                IoReply::Done(n) => Wire::new(0).bytes(server_buf.get(..n).unwrap_or(&[])),
                IoReply::Block => Wire::new(1),
            })
        }
        OP_WRITE => {
            let (cur, node, token, off) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u64()?);
            let payload = r.bytes()?;
            inner.write(k, cur, node, token, off, &payload).map(|reply| match reply {
                IoReply::Done(n) => Wire::new(0).u64(n as u64),
                IoReply::Block => Wire::new(1),
            })
        }
        OP_IOCTL => {
            let (cur, node, token, req_no) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u32()?);
            let payload = r.bytes()?;
            // The server can only return what the spec promised.
            let out_cap = table
                .as_ref()
                .and_then(|t| t(req_no))
                .map(|s| s.out_len)
                .unwrap_or(usize::MAX);
            inner.ioctl(k, cur, node, token, req_no, &payload).map(|reply| match reply {
                IoctlReply::Done(out) => {
                    let n = out.len().min(out_cap);
                    Wire::new(0).bytes(out.get(..n).unwrap_or(&[]))
                }
                IoctlReply::Block => Wire::new(1),
            })
        }
        OP_POLL => {
            let (node, token) = (NodeId(r.u64()?), OpenToken(r.u64()?));
            inner.poll(k, node, token).map(|p| {
                Wire::new(u8::from(p.readable) | u8::from(p.writable) << 1 | u8::from(p.hangup) << 2)
            })
        }
        _ => Err(Errno::EIO),
    }
}

// ---- client-side reply parsers (one per op, shared by the blocking ----
// ---- FileSystem face and the pipelined RemoteClient futures)       ----

/// A remote read completion: either the data bytes or a block verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemoteRead {
    /// The server returned these bytes.
    Data(Vec<u8>),
    /// The server said the read would block.
    Block,
}

fn parse_node(b: &[u8]) -> SysResult<NodeId> {
    let mut r = WireReader::new(b);
    Ok(NodeId(r.u64().map_err(Errno::from)?))
}

fn parse_token(b: &[u8]) -> SysResult<OpenToken> {
    let mut r = WireReader::new(b);
    Ok(OpenToken(r.u64().map_err(Errno::from)?))
}

fn parse_unit(_: &[u8]) -> SysResult<()> {
    Ok(())
}

fn parse_metadata(b: &[u8]) -> SysResult<Metadata> {
    let mut rr = WireReader::new(b);
    let parse = |rr: &mut WireReader<'_>| -> WireResult<Metadata> {
        let kind = match rr.u8()? {
            0 => VnodeKind::Regular,
            1 => VnodeKind::Directory,
            2 => VnodeKind::Proc,
            3 => VnodeKind::Fifo,
            _ => return Err(WireError::Malformed),
        };
        Ok(Metadata {
            kind,
            mode: rr.u32()? as u16,
            uid: rr.u32()?,
            gid: rr.u32()?,
            size: rr.u64()?,
            nlink: rr.u32()?,
            mtime: rr.u64()?,
        })
    };
    parse(&mut rr).map_err(Errno::from)
}

fn parse_dirents(b: &[u8]) -> SysResult<Vec<DirEntry>> {
    let mut rr = WireReader::new(b);
    let parse = |rr: &mut WireReader<'_>| -> WireResult<Vec<DirEntry>> {
        let n = rr.u32()?;
        let mut out = Vec::with_capacity(n.min(4096) as usize);
        for _ in 0..n {
            out.push(DirEntry { name: rr.str()?, node: NodeId(rr.u64()?) });
        }
        Ok(out)
    };
    parse(&mut rr).map_err(Errno::from)
}

fn parse_read(b: &[u8]) -> SysResult<RemoteRead> {
    let mut rr = WireReader::new(b);
    match rr.u8().map_err(Errno::from)? {
        0 => Ok(RemoteRead::Data(rr.bytes().map_err(Errno::from)?)),
        _ => Ok(RemoteRead::Block),
    }
}

fn parse_write(b: &[u8]) -> SysResult<IoReply> {
    let mut rr = WireReader::new(b);
    match rr.u8().map_err(Errno::from)? {
        0 => Ok(IoReply::Done(rr.u64().map_err(Errno::from)? as usize)),
        _ => Ok(IoReply::Block),
    }
}

fn parse_ioctl(b: &[u8]) -> SysResult<IoctlReply> {
    let mut rr = WireReader::new(b);
    match rr.u8().map_err(Errno::from)? {
        0 => Ok(IoctlReply::Done(rr.bytes().map_err(Errno::from)?)),
        _ => Ok(IoctlReply::Block),
    }
}

fn parse_poll(b: &[u8]) -> SysResult<PollStatus> {
    let mut rr = WireReader::new(b);
    let bits = rr.u8().map_err(Errno::from)?;
    Ok(PollStatus { readable: bits & 1 != 0, writable: bits & 2 != 0, hangup: bits & 4 != 0 })
}

fn parse_never<T>(_: &[u8]) -> SysResult<T> {
    Err(Errno::EIO)
}

// ---- the deterministic event scheduler ----

/// What the wire delivers or the client's timer fires.
enum NetEvent {
    /// A request frame reaches the server.
    Request { bytes: Vec<u8>, late: bool },
    /// A reply frame reaches the client.
    Reply { bytes: Vec<u8>, late: bool },
    /// The per-op retry timer expires.
    Retry { tag: u64 },
}

/// An event on the virtual clock. Ordered by `(due, id)` — `id` is a
/// monotone tie-breaker so equal-time events replay in schedule order.
struct Scheduled {
    due: u64,
    id: u64,
    ev: NetEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> Ordering {
        // Reversed: the binary heap pops the earliest (due, id) first.
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}

/// One submitted operation awaiting completion. The idempotency class
/// lives server-side (derived from the op byte): the client retries
/// every op the same way and the dedup window keeps sequenced ones
/// exactly-once.
struct InFlight {
    body: Vec<u8>,
    attempts: u32,
    backoff: u64,
    budget: u64,
    done: Option<SysResult<Vec<u8>>>,
}

/// One client/server wire session: the in-flight op table, the event
/// queue, the fault plan and the server end. Shared (behind a mutex) by
/// every [`RemoteClient`] handle and the mounted [`RemoteFs`].
pub struct WireSession<K> {
    inner: Box<dyn FileSystem<K> + Send>,
    ioctl_table: Option<IoctlTable>,
    fault: Option<FaultPlan>,
    retry: RetryPolicy,
    /// Virtual wire clock, in ticks.
    clock: u64,
    /// Next op tag (session-unique, travels in the frame header).
    next_tag: u64,
    /// Monotone event id: ties on the clock break deterministically.
    next_event_id: u64,
    events: BinaryHeap<Scheduled>,
    inflight: HashMap<u64, InFlight>,
    /// Server-side dedup window: `(tag, cached response body)`.
    dedup: VecDeque<(u64, Vec<u8>)>,
    /// Seeded service-jitter stream: reorders reply completions.
    jitter: u64,
    stats: WireStats,
}

impl<K> WireSession<K> {
    fn new(inner: Box<dyn FileSystem<K> + Send>) -> WireSession<K> {
        WireSession {
            inner,
            ioctl_table: None,
            fault: None,
            retry: RetryPolicy::default(),
            clock: 0,
            next_tag: 1,
            next_event_id: 0,
            events: BinaryHeap::new(),
            inflight: HashMap::new(),
            dedup: VecDeque::new(),
            jitter: 0x5EED_0F0F_CAFE_F00D,
            stats: WireStats::default(),
        }
    }

    fn schedule(&mut self, delay: u64, ev: NetEvent) {
        let id = self.next_event_id;
        self.next_event_id += 1;
        self.events.push(Scheduled { due: self.clock + delay, id, ev });
    }

    fn service_jitter(&mut self) -> u64 {
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) % SERVICE_JITTER
    }

    /// Runs one frame through the fault plan (or delivers it intact).
    fn network(&mut self, frame: Vec<u8>) -> Vec<Delivery> {
        match self.fault.as_mut() {
            Some(plan) => plan.perturb(frame, &mut self.stats),
            None => vec![Delivery { bytes: frame, late: false }],
        }
    }

    /// Submits one marshalled request; returns its op tag. The request
    /// frame and the first retry timer enter the event queue; nothing
    /// blocks.
    fn submit(&mut self, body: Vec<u8>) -> u64 {
        self.stats.ops += 1;
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        self.inflight.insert(
            tag,
            InFlight { body, attempts: 0, backoff: 1, budget: self.retry.budget, done: None },
        );
        self.send_attempt(tag);
        tag
    }

    /// Frames and transmits one attempt for `tag`, arming its retry
    /// timer.
    fn send_attempt(&mut self, tag: u64) {
        let (body, attempt, backoff) = match self.inflight.get_mut(&tag) {
            Some(op) => {
                op.attempts += 1;
                (op.body.clone(), op.attempts, op.backoff)
            }
            None => return,
        };
        if attempt > 1 {
            self.stats.retries += 1;
        }
        let frame = encode_frame(tag, &body);
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        let deliveries = self.network(frame);
        for d in deliveries {
            self.schedule(TRANSIT_TICKS, NetEvent::Request { bytes: d.bytes, late: d.late });
        }
        self.schedule(RETRY_RTT + backoff, NetEvent::Retry { tag });
    }

    /// Processes the next scheduled event, advancing the virtual clock.
    /// Returns false when the queue is empty (the wire is idle).
    fn pump_one(&mut self, k: &mut K) -> bool {
        let Some(s) = self.events.pop() else {
            return false;
        };
        self.clock = self.clock.max(s.due);
        match s.ev {
            NetEvent::Request { bytes, late } => self.on_request(k, &bytes, late),
            NetEvent::Reply { bytes, late } => self.on_reply(&bytes, late),
            NetEvent::Retry { tag } => self.on_retry(tag),
        }
        true
    }

    /// Server side: validate, dedup, execute, send the reply back with
    /// seeded service jitter (this is where completions reorder).
    fn on_request(&mut self, k: &mut K, bytes: &[u8], late: bool) {
        let (tag, body) = match decode_frame(bytes) {
            Ok(x) => x,
            Err(_) => {
                self.stats.checksum_rejects += 1;
                return;
            }
        };
        let class = op_class(body.first().copied().unwrap_or(0));
        let cached = (class == OpClass::Sequenced)
            .then(|| self.dedup.iter().find(|(t, _)| *t == tag).map(|(_, b)| b.clone()))
            .flatten();
        let resp_body = match cached {
            Some(b) => {
                self.stats.dedup_hits += 1;
                b
            }
            None => {
                let resp = match serve(&mut *self.inner, &self.ioctl_table, k, &body) {
                    Ok(w) => {
                        let mut b = vec![0u8];
                        b.extend_from_slice(&w.0);
                        b
                    }
                    Err(e) => {
                        let mut b = vec![1u8];
                        b.extend_from_slice(&e.to_wire().to_le_bytes());
                        b
                    }
                };
                if class == OpClass::Sequenced {
                    self.dedup.push_back((tag, resp.clone()));
                    if self.dedup.len() > DEDUP_WINDOW {
                        self.dedup.pop_front();
                    }
                }
                resp
            }
        };
        let frame = encode_frame(tag, &resp_body);
        self.stats.bytes_received += frame.len() as u64;
        let jitter = self.service_jitter();
        let deliveries = self.network(frame);
        for d in deliveries {
            let l = late || d.late;
            self.schedule(TRANSIT_TICKS + jitter, NetEvent::Reply { bytes: d.bytes, late: l });
        }
    }

    /// Client side: demultiplex a completion into its in-flight slot.
    fn on_reply(&mut self, bytes: &[u8], late: bool) {
        if late {
            // The work happened, but the reply missed the client's
            // patience window; the retry path (and the dedup window)
            // must absorb it.
            return;
        }
        let (tag, body) = match decode_frame(bytes) {
            Ok(x) => x,
            Err(_) => {
                self.stats.checksum_rejects += 1;
                return;
            }
        };
        let Some(op) = self.inflight.get_mut(&tag) else {
            return; // stale tag: the op already completed and was taken
        };
        if op.done.is_some() {
            return; // duplicate reply: first one won
        }
        op.done = Some(match body.split_first() {
            Some((0, rest)) => Ok(rest.to_vec()),
            Some((1, rest)) => {
                let mut r = WireReader::new(rest);
                match r.u32() {
                    Ok(code) => Err(Errno::from_wire(code)),
                    Err(_) => Err(Errno::EIO),
                }
            }
            _ => Err(Errno::EIO),
        });
    }

    /// Retry timer: resend with doubled (capped) backoff, or degrade the
    /// op to a clean `ETIMEDOUT` once attempts or budget run out.
    fn on_retry(&mut self, tag: u64) {
        let (attempts, backoff, budget) = match self.inflight.get(&tag) {
            Some(op) if op.done.is_none() => (op.attempts, op.backoff, op.budget),
            _ => return,
        };
        if attempts >= self.retry.max_attempts.max(1) || budget < backoff {
            if let Some(op) = self.inflight.get_mut(&tag) {
                op.done = Some(Err(Errno::ETIMEDOUT));
            }
            self.stats.timeouts += 1;
            return;
        }
        if let Some(op) = self.inflight.get_mut(&tag) {
            op.budget -= op.backoff;
            op.backoff = (op.backoff * 2).min(self.retry.backoff_cap.max(1));
        }
        self.send_attempt(tag);
    }

    /// Removes and returns the completion for `tag` if it has arrived.
    fn try_take(&mut self, tag: u64) -> Option<SysResult<Vec<u8>>> {
        if self.inflight.get(&tag)?.done.is_some() {
            return self.inflight.remove(&tag).and_then(|op| op.done);
        }
        None
    }

    /// Pumps events until `tag` completes; the blocking face of the
    /// session. Other in-flight ops make progress underneath — their
    /// completions land in their own slots while we wait for ours.
    fn wait_raw(&mut self, k: &mut K, tag: u64) -> SysResult<Vec<u8>> {
        loop {
            if let Some(done) = self.try_take(tag) {
                return done;
            }
            if !self.inflight.contains_key(&tag) {
                return Err(Errno::EIO); // taken twice: caller bug
            }
            if !self.pump_one(k) {
                return Err(Errno::EIO); // queue dry with op pending: impossible
            }
        }
    }

    /// The ioctl gate shared by the blocking and pipelined faces:
    /// wire-stats introspection is answered locally, unknown or
    /// oversized requests are refused before any traffic.
    fn ioctl_gate(&mut self, req_no: u32, arg_len: usize) -> Result<IoctlWireSpec, IoctlGate> {
        if req_no == PIOCWIRESTATS {
            return Err(IoctlGate::Local(IoctlReply::Done(self.stats.to_bytes())));
        }
        let spec = match self.ioctl_table.as_ref().and_then(|t| t(req_no)) {
            Some(s) => s,
            None => {
                self.stats.unsupported_ioctls += 1;
                return Err(IoctlGate::Refused(Errno::ENOTSUP));
            }
        };
        if arg_len > spec.in_len {
            self.stats.unsupported_ioctls += 1;
            return Err(IoctlGate::Refused(Errno::ENOTSUP));
        }
        Ok(spec)
    }
}

/// Outcome of the client-side ioctl gate when no wire op is needed.
enum IoctlGate {
    Local(IoctlReply),
    Refused(Errno),
}

fn lock<K>(session: &Arc<Mutex<WireSession<K>>>) -> MutexGuard<'_, WireSession<K>> {
    session.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A pending remote operation: a poll-based state machine resolved by
/// [`RemoteClient::try_complete`] or [`RemoteClient::wait`]. No async
/// runtime — completion is driven by pumping the session's event queue.
pub struct OpFuture<T> {
    tag: Option<u64>,
    ready: Option<SysResult<T>>,
    parse: fn(&[u8]) -> SysResult<T>,
}

impl<T> OpFuture<T> {
    fn pending(tag: u64, parse: fn(&[u8]) -> SysResult<T>) -> OpFuture<T> {
        OpFuture { tag: Some(tag), ready: None, parse }
    }

    /// An operation resolved without touching the wire (local ioctl
    /// answers, client-side refusals).
    fn resolved(r: SysResult<T>) -> OpFuture<T> {
        OpFuture { tag: None, ready: Some(r), parse: parse_never }
    }

    /// The op tag this future is waiting on (`None` once resolved
    /// locally).
    pub fn tag(&self) -> Option<u64> {
        self.tag
    }
}

/// One client handle onto a shared [`WireSession`]. Handles are cheap to
/// clone; ops submitted through any handle share the session's in-flight
/// table, fault plan and dedup window, so concurrent handles' traffic
/// interleaves on the wire exactly as concurrent processes' would.
pub struct RemoteClient<K> {
    session: Arc<Mutex<WireSession<K>>>,
}

impl<K> Clone for RemoteClient<K> {
    fn clone(&self) -> RemoteClient<K> {
        RemoteClient { session: Arc::clone(&self.session) }
    }
}

impl<K> RemoteClient<K> {
    /// Pipelined lookup.
    pub fn submit_lookup(&self, cur: Pid, dir: NodeId, name: &str) -> OpFuture<NodeId> {
        let req = Wire::new(OP_LOOKUP).u32(cur.0).u64(dir.0).str(name);
        OpFuture::pending(lock(&self.session).submit(req.0), parse_node)
    }

    /// Pipelined getattr.
    pub fn submit_getattr(&self, node: NodeId) -> OpFuture<Metadata> {
        let req = Wire::new(OP_GETATTR).u64(node.0);
        OpFuture::pending(lock(&self.session).submit(req.0), parse_metadata)
    }

    /// Pipelined readdir.
    pub fn submit_readdir(&self, cur: Pid, dir: NodeId) -> OpFuture<Vec<DirEntry>> {
        let req = Wire::new(OP_READDIR).u32(cur.0).u64(dir.0);
        OpFuture::pending(lock(&self.session).submit(req.0), parse_dirents)
    }

    /// Pipelined open (sequenced: exactly-once under retransmission).
    pub fn submit_open(
        &self,
        cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> OpFuture<OpenToken> {
        let req = cred_wire(Wire::new(OP_OPEN).u32(cur.0).u64(node.0).u64(flags.to_bits()), cred);
        OpFuture::pending(lock(&self.session).submit(req.0), parse_token)
    }

    /// Pipelined close (sequenced).
    pub fn submit_close(
        &self,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        flags: OFlags,
    ) -> OpFuture<()> {
        let req = Wire::new(OP_CLOSE).u32(cur.0).u64(node.0).u64(token.0).u64(flags.to_bits());
        OpFuture::pending(lock(&self.session).submit(req.0), parse_unit)
    }

    /// Pipelined read.
    pub fn submit_read(
        &self,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        len: usize,
    ) -> OpFuture<RemoteRead> {
        let req =
            Wire::new(OP_READ).u32(cur.0).u64(node.0).u64(token.0).u64(off).u64(len as u64);
        OpFuture::pending(lock(&self.session).submit(req.0), parse_read)
    }

    /// Pipelined write (sequenced).
    pub fn submit_write(
        &self,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> OpFuture<IoReply> {
        let req = Wire::new(OP_WRITE).u32(cur.0).u64(node.0).u64(token.0).u64(off).bytes(data);
        OpFuture::pending(lock(&self.session).submit(req.0), parse_write)
    }

    /// Pipelined ioctl (sequenced). Wire-stats introspection and
    /// table-refused requests resolve immediately without traffic.
    pub fn submit_ioctl(
        &self,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        req_no: u32,
        arg: &[u8],
    ) -> OpFuture<IoctlReply> {
        let mut s = lock(&self.session);
        match s.ioctl_gate(req_no, arg.len()) {
            Ok(_) => {
                let req =
                    Wire::new(OP_IOCTL).u32(cur.0).u64(node.0).u64(token.0).u32(req_no).bytes(arg);
                OpFuture::pending(s.submit(req.0), parse_ioctl)
            }
            Err(IoctlGate::Local(reply)) => OpFuture::resolved(Ok(reply)),
            Err(IoctlGate::Refused(e)) => OpFuture::resolved(Err(e)),
        }
    }

    /// Pipelined poll of a remote descriptor's readiness.
    pub fn submit_poll(&self, node: NodeId, token: OpenToken) -> OpFuture<PollStatus> {
        let req = Wire::new(OP_POLL).u64(node.0).u64(token.0);
        OpFuture::pending(lock(&self.session).submit(req.0), parse_poll)
    }

    /// Processes one scheduled wire event; false when the wire is idle.
    pub fn pump(&self, k: &mut K) -> bool {
        lock(&self.session).pump_one(k)
    }

    /// Polls a future without blocking: `Some` exactly once, when the
    /// completion has been demultiplexed into its slot.
    pub fn try_complete<T>(&self, fut: &mut OpFuture<T>) -> Option<SysResult<T>> {
        if let Some(r) = fut.ready.take() {
            fut.tag = None;
            return Some(r);
        }
        let tag = fut.tag?;
        let raw = lock(&self.session).try_take(tag)?;
        fut.tag = None;
        Some(raw.and_then(|b| (fut.parse)(&b)))
    }

    /// Blocks (pumping the wire) until the future completes. Other
    /// handles' in-flight ops progress underneath.
    pub fn wait<T>(&self, k: &mut K, mut fut: OpFuture<T>) -> SysResult<T> {
        if let Some(r) = fut.ready.take() {
            return r;
        }
        let tag = match fut.tag {
            Some(t) => t,
            None => return Err(Errno::EIO),
        };
        let raw = lock(&self.session).wait_raw(k, tag)?;
        (fut.parse)(&raw)
    }

    /// Ops submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        let s = lock(&self.session);
        s.inflight.values().filter(|op| op.done.is_none()).count()
    }

    /// The session's virtual clock, in ticks.
    pub fn ticks(&self) -> u64 {
        lock(&self.session).clock
    }

    /// A snapshot of the session's traffic counters.
    pub fn stats(&self) -> WireStats {
        lock(&self.session).stats
    }

    /// Resets the session's traffic counters.
    pub fn reset_stats(&self) {
        lock(&self.session).stats = WireStats::default();
    }
}

/// A file system accessed across a simulated (and possibly lossy) wire:
/// the blocking [`FileSystem`] face of a [`WireSession`]. Mint
/// pipelined handles with [`RemoteFs::client`] before (or after)
/// mounting — they share this session's wire.
pub struct RemoteFs<K> {
    session: Arc<Mutex<WireSession<K>>>,
}

impl<K> RemoteFs<K> {
    /// Wraps `inner` over a perfect wire. Without an ioctl table, every
    /// ioctl is refused.
    pub fn new(inner: Box<dyn FileSystem<K> + Send>) -> RemoteFs<K> {
        RemoteFs { session: Arc::new(Mutex::new(WireSession::new(inner))) }
    }

    /// Supplies the per-request ioctl wire table.
    pub fn with_ioctl_table(self, table: IoctlTable) -> RemoteFs<K> {
        lock(&self.session).ioctl_table = Some(table);
        self
    }

    /// Makes the wire lossy under a deterministic fault plan. The
    /// service-jitter stream reseeds from the plan so one seed fixes the
    /// whole schedule — faults and reorderings both.
    pub fn with_faults(self, plan: FaultPlan) -> RemoteFs<K> {
        {
            let mut s = lock(&self.session);
            s.jitter = plan.state ^ 0xA5A5_5A5A_0DDC_0DE5;
            s.fault = Some(plan);
        }
        self
    }

    /// Overrides the client retry discipline.
    pub fn with_retry_policy(self, policy: RetryPolicy) -> RemoteFs<K> {
        lock(&self.session).retry = policy;
        self
    }

    /// Mints a pipelined client handle sharing this session's wire.
    pub fn client(&self) -> RemoteClient<K> {
        RemoteClient { session: Arc::clone(&self.session) }
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> WireStats {
        lock(&self.session).stats
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        lock(&self.session).stats = WireStats::default();
    }

    /// The session's virtual clock, in ticks.
    pub fn ticks(&self) -> u64 {
        lock(&self.session).clock
    }

    /// Blocking submit-and-wait: one op end to end through the shared
    /// session.
    fn call<T>(
        &self,
        k: &mut K,
        req: Wire,
        parse: fn(&[u8]) -> SysResult<T>,
    ) -> SysResult<T> {
        let mut s = lock(&self.session);
        let tag = s.submit(req.0);
        let raw = s.wait_raw(k, tag)?;
        parse(&raw)
    }
}

impl<K> FileSystem<K> for RemoteFs<K> {
    fn type_name(&self) -> &'static str {
        "remote"
    }

    fn root(&self) -> NodeId {
        lock(&self.session).inner.root()
    }

    fn lookup(&mut self, k: &mut K, cur: Pid, dir: NodeId, name: &str) -> SysResult<NodeId> {
        let req = Wire::new(OP_LOOKUP).u32(cur.0).u64(dir.0).str(name);
        self.call(k, req, parse_node)
    }

    fn getattr(&mut self, k: &mut K, node: NodeId) -> SysResult<Metadata> {
        let req = Wire::new(OP_GETATTR).u64(node.0);
        self.call(k, req, parse_metadata)
    }

    fn readdir(&mut self, k: &mut K, cur: Pid, dir: NodeId) -> SysResult<Vec<DirEntry>> {
        let req = Wire::new(OP_READDIR).u32(cur.0).u64(dir.0);
        self.call(k, req, parse_dirents)
    }

    fn open(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> SysResult<OpenToken> {
        let req = cred_wire(Wire::new(OP_OPEN).u32(cur.0).u64(node.0).u64(flags.to_bits()), cred);
        self.call(k, req, parse_token)
    }

    fn close(&mut self, k: &mut K, cur: Pid, node: NodeId, token: OpenToken, flags: OFlags) {
        // `close` has no error path to surface, but it still mutates
        // server state (writer accounting, exclusive-use release), so it
        // crosses as a sequenced op; a lost close is recorded in
        // `stats.timeouts`.
        let req = Wire::new(OP_CLOSE).u32(cur.0).u64(node.0).u64(token.0).u64(flags.to_bits());
        let _ = self.call(k, req, parse_unit);
    }

    fn read(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        buf: &mut [u8],
    ) -> SysResult<IoReply> {
        // A read marshals generically: the request is (node, off, len) and
        // the response is the data — sizes and direction are manifest.
        let req = Wire::new(OP_READ)
            .u32(cur.0)
            .u64(node.0)
            .u64(token.0)
            .u64(off)
            .u64(buf.len() as u64);
        match self.call(k, req, parse_read)? {
            RemoteRead::Data(data) => {
                let n = data.len().min(buf.len());
                buf[..n].copy_from_slice(&data[..n]);
                Ok(IoReply::Done(n))
            }
            RemoteRead::Block => Ok(IoReply::Block),
        }
    }

    fn write(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> SysResult<IoReply> {
        let req = Wire::new(OP_WRITE).u32(cur.0).u64(node.0).u64(token.0).u64(off).bytes(data);
        self.call(k, req, parse_write)
    }

    fn ioctl(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        req_no: u32,
        arg: &[u8],
    ) -> SysResult<IoctlReply> {
        // Wire introspection is answered locally — the counters being
        // asked about live on this side of the wire. An ioctl can only
        // cross if someone taught the shim this request's operand sizes
        // and directions.
        let mut s = lock(&self.session);
        match s.ioctl_gate(req_no, arg.len()) {
            Ok(_) => {
                let req =
                    Wire::new(OP_IOCTL).u32(cur.0).u64(node.0).u64(token.0).u32(req_no).bytes(arg);
                let tag = s.submit(req.0);
                let raw = s.wait_raw(k, tag)?;
                parse_ioctl(&raw)
            }
            Err(IoctlGate::Local(reply)) => Ok(reply),
            Err(IoctlGate::Refused(e)) => Err(e),
        }
    }

    fn poll(&mut self, k: &mut K, node: NodeId, token: OpenToken) -> SysResult<PollStatus> {
        let req = Wire::new(OP_POLL).u64(node.0).u64(token.0);
        self.call(k, req, parse_poll)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;

    const P: Pid = Pid(1);

    fn remote_memfs() -> RemoteFs<()> {
        let mut fs = MemFs::<()>::new();
        fs.install("/bin/tool", 0o755, 0, 0, b"payload-bytes".to_vec());
        RemoteFs::new(Box::new(fs))
    }

    fn faulty_memfs(seed: u64, rates: FaultRates) -> RemoteFs<()> {
        let mut fs = MemFs::<()>::new();
        fs.install("/bin/tool", 0o755, 0, 0, b"payload-bytes".to_vec());
        RemoteFs::new(Box::new(fs)).with_faults(FaultPlan::new(seed, rates))
    }

    #[test]
    fn lookup_and_read_work_across_the_wire() {
        let mut r = remote_memfs();
        let cred = Cred::superuser();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let tok = r.open(&mut (), P, tool, OFlags::rdonly(), &cred).expect("open");
        let mut buf = [0u8; 7];
        let reply = r.read(&mut (), P, tool, tok, 0, &mut buf).expect("read");
        assert_eq!(reply, IoReply::Done(7));
        assert_eq!(&buf, b"payload");
        assert!(r.stats().ops >= 4);
        assert!(r.stats().bytes_sent > 0);
        assert!(r.stats().bytes_received > 0);
        assert!(r.ticks() > 0, "virtual time advanced");
    }

    #[test]
    fn errors_cross_the_wire() {
        let mut r = remote_memfs();
        assert_eq!(r.lookup(&mut (), P, NodeId(0), "missing"), Err(Errno::ENOENT));
    }

    #[test]
    fn ioctl_without_table_is_refused() {
        let mut r = remote_memfs();
        let err = r
            .ioctl(&mut (), P, NodeId(0), OpenToken(0), 0x1234, &[])
            .expect_err("no table");
        assert_eq!(err, Errno::ENOTSUP);
        assert_eq!(r.stats().unsupported_ioctls, 1);
        assert_eq!(r.stats().ops, 0, "the request never even reaches the wire");
    }

    #[test]
    fn ioctl_with_table_crosses_but_is_bounded() {
        // memfs rejects ioctl with ENOTTY; we verify the round trip
        // carries the error back, which demands a wire spec.
        let table: IoctlTable =
            Box::new(|req| (req == 7).then_some(IoctlWireSpec { in_len: 8, out_len: 16 }));
        let mut r = RemoteFs::new(Box::new(MemFs::<()>::new())).with_ioctl_table(table);
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 7, &[0; 8]).expect_err("enotty");
        assert_eq!(err, Errno::ENOTTY);
        assert_eq!(r.stats().ops, 1);
        // Oversized operand refused client-side.
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 7, &[0; 64]).expect_err("too big");
        assert_eq!(err, Errno::ENOTSUP);
        // Unknown request refused.
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 8, &[]).expect_err("unknown");
        assert_eq!(err, Errno::ENOTSUP);
    }

    #[test]
    fn write_marshals_payload() {
        let mut r = remote_memfs();
        let cred = Cred::superuser();
        let f = {
            let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
            r.lookup(&mut (), P, bin, "tool").expect("tool")
        };
        let tok = r.open(&mut (), P, f, OFlags::rdwr(), &cred).expect("open");
        r.reset_stats();
        let reply = r.write(&mut (), P, f, tok, 0, b"NEW").expect("write");
        assert_eq!(reply, IoReply::Done(3));
        assert!(r.stats().bytes_sent as usize >= 3 + 1 + 4, "payload travelled");
        let mut buf = [0u8; 3];
        r.read(&mut (), P, f, tok, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"NEW");
    }

    #[test]
    fn readdir_marshals_entries() {
        let mut r = remote_memfs();
        let entries = r.readdir(&mut (), P, NodeId(0)).expect("readdir");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "bin");
    }

    #[test]
    fn getattr_roundtrip() {
        let mut r = remote_memfs();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let meta = r.getattr(&mut (), tool).expect("attr");
        assert_eq!(meta.mode, 0o755);
        assert_eq!(meta.size, 13);
        assert_eq!(meta.kind, VnodeKind::Regular);
    }

    #[test]
    fn frames_reject_damage_without_misparsing() {
        let frame = encode_frame(42, b"important bytes");
        assert_eq!(decode_frame(&frame), Ok((42, b"important bytes".to_vec())));
        // Any single bit flip is caught by the CRC (or the magic/length
        // checks before it).
        for bit in 0..frame.len() * 8 {
            let mut dam = frame.clone();
            dam[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_frame(&dam).is_err(), "bit {bit} slipped through");
        }
        // Every truncation point is caught.
        for keep in 0..frame.len() {
            assert!(decode_frame(&frame[..keep]).is_err(), "cut at {keep} slipped through");
        }
    }

    #[test]
    fn wirestats_roundtrip() {
        let s = WireStats { ops: 7, drops: 3, dedup_hits: 11, timeouts: 1, ..Default::default() };
        let b = s.to_bytes();
        assert_eq!(b.len(), WireStats::WIRE_LEN);
        assert_eq!(WireStats::from_bytes(&b), Some(s));
        assert_eq!(WireStats::from_bytes(&b[..10]), None);
    }

    #[test]
    fn faulted_reads_recover_and_stay_correct() {
        // 10% of frames suffer each fault class; every operation must
        // still produce the exact fault-free answer (retries are free for
        // idempotent ops) or a clean timeout.
        let mut r = faulty_memfs(0xFEED, FaultRates::uniform(100));
        let cred = Cred::superuser();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let tok = r.open(&mut (), P, tool, OFlags::rdonly(), &cred).expect("open");
        for _ in 0..200 {
            let mut buf = [0u8; 13];
            match r.read(&mut (), P, tool, tok, 0, &mut buf) {
                Ok(IoReply::Done(13)) => assert_eq!(&buf, b"payload-bytes"),
                Ok(other) => panic!("unexpected reply {other:?}"),
                Err(e) => assert_eq!(e, Errno::ETIMEDOUT, "only clean timeouts allowed"),
            }
        }
        assert!(r.stats().faults_injected() > 0, "faults were actually exercised");
        assert!(r.stats().retries > 0, "recovery actually retried");
    }

    #[test]
    fn dead_wire_degrades_to_etimedout() {
        let rates = FaultRates { drop: 1000, ..FaultRates::default() };
        let mut r = faulty_memfs(1, rates);
        let err = r.lookup(&mut (), P, NodeId(0), "bin").expect_err("nothing arrives");
        assert_eq!(err, Errno::ETIMEDOUT);
        assert_eq!(r.stats().timeouts, 1);
        assert!(r.stats().retries > 0);
        assert_eq!(r.stats().drops as u32, r.stats().frames_sent as u32);
    }

    #[test]
    fn duplicated_writes_apply_exactly_once() {
        // Every frame is duplicated; the dedup window must keep the
        // second execution from happening.
        let rates = FaultRates { duplicate: 1000, ..FaultRates::default() };
        let mut fs = MemFs::<()>::new();
        fs.install("/log", 0o644, 0, 0, Vec::new());
        let mut r = RemoteFs::new(Box::new(fs)).with_faults(FaultPlan::new(9, rates));
        let cred = Cred::superuser();
        let log = r.lookup(&mut (), P, NodeId(0), "log").expect("log");
        let tok = r.open(&mut (), P, log, OFlags::rdwr(), &cred).expect("open");
        r.write(&mut (), P, log, tok, 0, b"once").expect("write");
        assert!(r.stats().dedup_hits > 0, "the duplicate hit the window");
        let mut buf = [0u8; 8];
        let n = match r.read(&mut (), P, log, tok, 0, &mut buf).expect("read") {
            IoReply::Done(n) => n,
            IoReply::Block => panic!("memfs never blocks"),
        };
        assert_eq!(&buf[..n], b"once", "the write applied exactly once");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let mut r = faulty_memfs(0xD15EA5E, FaultRates::uniform(120));
            let mut outcomes = Vec::new();
            for i in 0..50 {
                let name = if i % 2 == 0 { "bin" } else { "missing" };
                outcomes.push(r.lookup(&mut (), P, NodeId(0), name));
            }
            (outcomes, r.stats(), r.ticks())
        };
        let (a, sa, ta) = run();
        let (b, sb, tb) = run();
        assert_eq!(a, b, "per-op outcomes replay exactly");
        assert_eq!(sa, sb, "fault and retry counters replay exactly");
        assert_eq!(ta, tb, "the virtual clock replays exactly");
        assert!(sa.faults_injected() > 0);
    }

    #[test]
    fn wirestats_ioctl_is_answered_locally() {
        let mut r = remote_memfs();
        let _ = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let ops_before = r.stats().ops;
        let reply = r
            .ioctl(&mut (), P, NodeId(0), OpenToken(0), PIOCWIRESTATS, &[])
            .expect("wirestats");
        let bytes = match reply {
            IoctlReply::Done(b) => b,
            IoctlReply::Block => panic!("never blocks"),
        };
        let stats = WireStats::from_bytes(&bytes).expect("decode");
        assert_eq!(stats.ops, ops_before, "answered without another wire op");
        assert_eq!(r.stats().ops, ops_before, "no traffic was generated");
        assert_eq!(r.stats().unsupported_ioctls, 0, "not counted as a refusal");
    }

    #[test]
    fn pipelined_ops_demux_out_of_order() {
        // Submit a burst of reads before waiting on any of them: every
        // future must resolve to its own op's answer even though the
        // service jitter completes them out of submission order.
        let r = remote_memfs();
        let c = r.client();
        let bin = c.wait(&mut (), c.submit_lookup(P, NodeId(0), "bin")).expect("bin");
        let tool = c.wait(&mut (), c.submit_lookup(P, bin, "tool")).expect("tool");
        let cred = Cred::superuser();
        let tok = c.wait(&mut (), c.submit_open(P, tool, OFlags::rdonly(), &cred)).expect("open");
        let mut futs: Vec<(u64, OpFuture<RemoteRead>)> = (0..8u64)
            .map(|off| (off, c.submit_read(P, tool, tok, off, 4)))
            .collect();
        assert_eq!(c.in_flight(), 8, "all eight reads are on the wire at once");
        // Poll-based completion: pump until every future resolves.
        let mut got = 0;
        while got < futs.len() {
            c.pump(&mut ());
            for (off, fut) in futs.iter_mut() {
                if let Some(done) = c.try_complete(fut) {
                    let want: Vec<u8> =
                        b"payload-bytes"[*off as usize..].iter().copied().take(4).collect();
                    assert_eq!(done.expect("read"), RemoteRead::Data(want), "offset {off}");
                    got += 1;
                }
            }
        }
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn two_handles_share_one_wire() {
        // Two client handles interleave sequenced writes on one session;
        // both complete, and the server saw one dedup window and one tag
        // space (no cross-handle collisions).
        let mut fs = MemFs::<()>::new();
        fs.install("/a", 0o644, 0, 0, Vec::new());
        fs.install("/b", 0o644, 0, 0, Vec::new());
        let r = RemoteFs::new(Box::new(fs));
        let c1 = r.client();
        let c2 = c1.clone();
        let cred = Cred::superuser();
        let a = c1.wait(&mut (), c1.submit_lookup(P, NodeId(0), "a")).expect("a");
        let b = c2.wait(&mut (), c2.submit_lookup(P, NodeId(0), "b")).expect("b");
        let ta = c1.wait(&mut (), c1.submit_open(P, a, OFlags::rdwr(), &cred)).expect("open a");
        let tb = c2.wait(&mut (), c2.submit_open(P, b, OFlags::rdwr(), &cred)).expect("open b");
        // Interleave: both writes in flight before either completes.
        let mut wa = c1.submit_write(P, a, ta, 0, b"from-one");
        let mut wb = c2.submit_write(P, b, tb, 0, b"from-two");
        assert!(wa.tag() != wb.tag(), "tags are session-unique across handles");
        let (mut ra, mut rb) = (None, None);
        while ra.is_none() || rb.is_none() {
            c1.pump(&mut ());
            if ra.is_none() {
                ra = c1.try_complete(&mut wa);
            }
            if rb.is_none() {
                rb = c2.try_complete(&mut wb);
            }
        }
        assert_eq!(ra.unwrap().expect("write a"), IoReply::Done(8));
        assert_eq!(rb.unwrap().expect("write b"), IoReply::Done(8));
        let mut buf = [0u8; 8];
        let mut rfs = r;
        rfs.read(&mut (), P, a, ta, 0, &mut buf).expect("read a");
        assert_eq!(&buf, b"from-one");
        rfs.read(&mut (), P, b, tb, 0, &mut buf).expect("read b");
        assert_eq!(&buf, b"from-two");
    }

    #[test]
    fn pipelining_beats_serial_on_a_lossy_wire() {
        // Same seed, same fault rates, same 24 reads: issuing them all
        // before waiting must finish in strictly fewer virtual ticks
        // than submit-wait-submit-wait, because retransmission backoffs
        // overlap instead of summing.
        let rates = FaultRates::uniform(80);
        let run = |pipelined: bool| -> u64 {
            let mut r = faulty_memfs(0xBEEF, rates);
            let cred = Cred::superuser();
            let c = r.client();
            let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
            let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
            let tok = r.open(&mut (), P, tool, OFlags::rdonly(), &cred).expect("open");
            if pipelined {
                let futs: Vec<OpFuture<RemoteRead>> =
                    (0..24).map(|_| c.submit_read(P, tool, tok, 0, 13)).collect();
                for fut in futs {
                    let _ = c.wait(&mut (), fut);
                }
            } else {
                for _ in 0..24 {
                    let fut = c.submit_read(P, tool, tok, 0, 13);
                    let _ = c.wait(&mut (), fut);
                }
            }
            c.ticks()
        };
        let serial = run(false);
        let pipelined = run(true);
        assert!(
            pipelined < serial,
            "pipelined ({pipelined} ticks) must beat serial ({serial} ticks)"
        );
    }
}
