//! An RFS-like remote-access shim.
//!
//! "The SVR4 implementation of /proc works correctly with Remote File
//! Sharing (RFS). With appropriate permission it is possible to inspect,
//! modify and control processes running on any machine in an RFS
//! network." And, motivating the proposed restructuring: "Removing the
//! dependence on ioctl simplifies the implementation of /proc in a
//! network environment. The unstructured nature of ioctl operations and
//! the variability of operand sizes and I/O directions make it difficult
//! to cleanly separate the client/server interactions; read and write
//! don't share these problems."
//!
//! [`RemoteFs`] wraps any [`FileSystem`] and simulates a client/server
//! split: every operation is marshalled into a request byte image, the
//! image is parsed back (the "server"), the inner file system executes
//! the call, and the result is marshalled into a response image and
//! parsed again (the "client"). Byte and operation counts accumulate in
//! [`WireStats`], giving experiment E5 its data.
//!
//! The crucial asymmetry: `read`, `write`, `lookup` and friends marshal
//! *generically* — their operand sizes and directions are manifest in the
//! call. `ioctl` cannot be marshalled without a per-request table of
//! operand sizes and directions ([`IoctlWireSpec`]); any request missing
//! from the table is refused with `ENOTSUP` and counted.

use crate::cred::Cred;
use crate::errno::{Errno, SysResult};
use crate::fs::{FileSystem, IoReply, IoctlReply, OFlags, OpenToken, PollStatus};
use crate::node::{DirEntry, Metadata, NodeId, Pid, VnodeKind};

/// Traffic counters for the simulated wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Remote operations performed.
    pub ops: u64,
    /// Request bytes sent client to server.
    pub bytes_sent: u64,
    /// Response bytes sent server to client.
    pub bytes_received: u64,
    /// ioctl requests refused because no wire specification exists.
    pub unsupported_ioctls: u64,
}

/// Wire shape of one ioctl request: how many bytes go in and (at most)
/// how many come back. Exactly the knowledge a remote file system must be
/// taught per request — the paper's complaint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoctlWireSpec {
    /// Operand bytes carried with the request.
    pub in_len: usize,
    /// Maximum operand bytes returned.
    pub out_len: usize,
}

/// Table resolving an ioctl request number to its wire shape.
pub type IoctlTable = Box<dyn Fn(u32) -> Option<IoctlWireSpec> + Send>;

/// A file system accessed across a simulated wire.
pub struct RemoteFs<K> {
    inner: Box<dyn FileSystem<K> + Send>,
    ioctl_table: Option<IoctlTable>,
    /// Accumulated traffic counters.
    pub stats: WireStats,
}

impl<K> RemoteFs<K> {
    /// Wraps `inner`. Without an ioctl table, every ioctl is refused.
    pub fn new(inner: Box<dyn FileSystem<K> + Send>) -> RemoteFs<K> {
        RemoteFs { inner, ioctl_table: None, stats: WireStats::default() }
    }

    /// Supplies the per-request ioctl wire table.
    pub fn with_ioctl_table(mut self, table: IoctlTable) -> RemoteFs<K> {
        self.ioctl_table = Some(table);
        self
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        self.stats = WireStats::default();
    }

    /// Sends a request image and returns it as the server would parse it.
    fn send(&mut self, req: Wire) -> Wire {
        self.stats.ops += 1;
        self.stats.bytes_sent += req.0.len() as u64;
        // The image crosses the "wire" by being re-parsed from its bytes.
        Wire(req.0)
    }

    /// Sends a response image back.
    fn respond(&mut self, resp: Wire) -> Wire {
        self.stats.bytes_received += resp.0.len() as u64;
        Wire(resp.0)
    }
}

/// A marshalled message: just bytes, with cursor-based read-back.
struct Wire(Vec<u8>);

struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Wire {
    fn new(op: u8) -> Wire {
        Wire(vec![op])
    }
    fn u32(mut self, v: u32) -> Wire {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn u64(mut self, v: u64) -> Wire {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn str(mut self, s: &str) -> Wire {
        self.0.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.0.extend_from_slice(s.as_bytes());
        self
    }
    fn bytes(mut self, b: &[u8]) -> Wire {
        self.0.extend_from_slice(&(b.len() as u32).to_le_bytes());
        self.0.extend_from_slice(b);
        self
    }
    fn reader(&self) -> WireReader<'_> {
        WireReader { buf: &self.0, pos: 0 }
    }
}

impl WireReader<'_> {
    fn u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"));
        self.pos += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8 bytes"));
        self.pos += 8;
        v
    }
    fn str(&mut self) -> String {
        let n = self.u32() as usize;
        let s = String::from_utf8_lossy(&self.buf[self.pos..self.pos + n]).into_owned();
        self.pos += n;
        s
    }
    fn bytes(&mut self) -> Vec<u8> {
        let n = self.u32() as usize;
        let b = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        b
    }
}

fn cred_wire(w: Wire, c: &Cred) -> Wire {
    let mut w = w.u32(c.ruid).u32(c.euid).u32(c.suid).u32(c.rgid).u32(c.egid).u32(c.sgid);
    w = w.u32(c.groups.len() as u32);
    for g in &c.groups {
        w = w.u32(*g);
    }
    w
}

fn cred_unwire(r: &mut WireReader<'_>) -> Cred {
    let (ruid, euid, suid, rgid, egid, sgid) =
        (r.u32(), r.u32(), r.u32(), r.u32(), r.u32(), r.u32());
    let n = r.u32();
    let groups = (0..n).map(|_| r.u32()).collect();
    Cred { ruid, euid, suid, rgid, egid, sgid, groups }
}

const OP_LOOKUP: u8 = 1;
const OP_GETATTR: u8 = 2;
const OP_READDIR: u8 = 3;
const OP_OPEN: u8 = 4;
const OP_CLOSE: u8 = 5;
const OP_READ: u8 = 6;
const OP_WRITE: u8 = 7;
const OP_IOCTL: u8 = 8;
const OP_POLL: u8 = 9;

fn result_wire(status: SysResult<Wire>) -> Wire {
    match status {
        Ok(body) => {
            let mut w = Wire::new(0);
            w.0.extend_from_slice(&body.0);
            w
        }
        Err(e) => Wire::new(1).u32(e as u32),
    }
}

fn result_unwire(w: &Wire) -> SysResult<WireReader<'_>> {
    let mut r = w.reader();
    match r.u8() {
        0 => Ok(r),
        _ => {
            let code = r.u32() as i32;
            Err(Errno::from_i32(code).unwrap_or(Errno::EIO))
        }
    }
}

impl<K> FileSystem<K> for RemoteFs<K> {
    fn type_name(&self) -> &'static str {
        "remote"
    }

    fn root(&self) -> NodeId {
        self.inner.root()
    }

    fn lookup(&mut self, k: &mut K, cur: Pid, dir: NodeId, name: &str) -> SysResult<NodeId> {
        let req = self.send(Wire::new(OP_LOOKUP).u32(cur.0).u64(dir.0).str(name));
        // Server side: parse and execute.
        let mut r = req.reader();
        let _op = r.u8();
        let (cur, dir, name) = (Pid(r.u32()), NodeId(r.u64()), r.str());
        let result = self.inner.lookup(k, cur, dir, &name);
        let resp = self.respond(result_wire(result.map(|n| Wire(n.0.to_le_bytes().to_vec()))));
        let mut rr = result_unwire(&resp)?;
        Ok(NodeId(rr.u64()))
    }

    fn getattr(&mut self, k: &mut K, node: NodeId) -> SysResult<Metadata> {
        let req = self.send(Wire::new(OP_GETATTR).u64(node.0));
        let mut r = req.reader();
        let _op = r.u8();
        let node = NodeId(r.u64());
        let result = self.inner.getattr(k, node).map(|m| {
            Wire::new(match m.kind {
                VnodeKind::Regular => 0,
                VnodeKind::Directory => 1,
                VnodeKind::Proc => 2,
                VnodeKind::Fifo => 3,
            })
            .u32(m.mode as u32)
            .u32(m.uid)
            .u32(m.gid)
            .u64(m.size)
            .u32(m.nlink)
            .u64(m.mtime)
        });
        let resp = self.respond(result_wire(result));
        let mut rr = result_unwire(&resp)?;
        let kind = match rr.u8() {
            0 => VnodeKind::Regular,
            1 => VnodeKind::Directory,
            2 => VnodeKind::Proc,
            _ => VnodeKind::Fifo,
        };
        Ok(Metadata {
            kind,
            mode: rr.u32() as u16,
            uid: rr.u32(),
            gid: rr.u32(),
            size: rr.u64(),
            nlink: rr.u32(),
            mtime: rr.u64(),
        })
    }

    fn readdir(&mut self, k: &mut K, cur: Pid, dir: NodeId) -> SysResult<Vec<DirEntry>> {
        let req = self.send(Wire::new(OP_READDIR).u32(cur.0).u64(dir.0));
        let mut r = req.reader();
        let _op = r.u8();
        let (cur, dir) = (Pid(r.u32()), NodeId(r.u64()));
        let result = self.inner.readdir(k, cur, dir).map(|entries| {
            let mut w = Wire::new(0).u32(entries.len() as u32);
            w.0.remove(0); // Drop the placeholder op byte; body only.
            for e in &entries {
                w = w.str(&e.name).u64(e.node.0);
            }
            w
        });
        let resp = self.respond(result_wire(result));
        let mut rr = result_unwire(&resp)?;
        let n = rr.u32();
        Ok((0..n).map(|_| DirEntry { name: rr.str(), node: NodeId(rr.u64()) }).collect())
    }

    fn open(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> SysResult<OpenToken> {
        let req = self.send(cred_wire(
            Wire::new(OP_OPEN).u32(cur.0).u64(node.0).u64(flags.to_bits()),
            cred,
        ));
        let mut r = req.reader();
        let _op = r.u8();
        let (cur, node, bits) = (Pid(r.u32()), NodeId(r.u64()), r.u64());
        let cred = cred_unwire(&mut r);
        let result = self.inner.open(k, cur, node, OFlags::from_bits(bits), &cred);
        let resp = self.respond(result_wire(result.map(|t| Wire(t.0.to_le_bytes().to_vec()))));
        let mut rr = result_unwire(&resp)?;
        Ok(OpenToken(rr.u64()))
    }

    fn close(&mut self, k: &mut K, cur: Pid, node: NodeId, token: OpenToken, flags: OFlags) {
        let req = self.send(
            Wire::new(OP_CLOSE).u32(cur.0).u64(node.0).u64(token.0).u64(flags.to_bits()),
        );
        let mut r = req.reader();
        let _op = r.u8();
        let (cur, node, token, bits) =
            (Pid(r.u32()), NodeId(r.u64()), OpenToken(r.u64()), r.u64());
        self.inner.close(k, cur, node, token, OFlags::from_bits(bits));
        let _ = self.respond(Wire::new(0));
    }

    fn read(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        buf: &mut [u8],
    ) -> SysResult<IoReply> {
        // A read marshals generically: the request is (node, off, len) and
        // the response is the data — sizes and direction are manifest.
        let req = self.send(
            Wire::new(OP_READ).u32(cur.0).u64(node.0).u64(token.0).u64(off).u64(buf.len() as u64),
        );
        let mut r = req.reader();
        let _op = r.u8();
        let (cur, node, token, off, len) =
            (Pid(r.u32()), NodeId(r.u64()), OpenToken(r.u64()), r.u64(), r.u64() as usize);
        let mut server_buf = vec![0u8; len];
        let result = self.inner.read(k, cur, node, token, off, &mut server_buf);
        let result = result.map(|reply| match reply {
            IoReply::Done(n) => Wire::new(0).bytes(&server_buf[..n]),
            IoReply::Block => Wire::new(1),
        });
        let resp = self.respond(result_wire(result));
        let mut rr = result_unwire(&resp)?;
        match rr.u8() {
            0 => {
                let data = rr.bytes();
                buf[..data.len()].copy_from_slice(&data);
                Ok(IoReply::Done(data.len()))
            }
            _ => Ok(IoReply::Block),
        }
    }

    fn write(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> SysResult<IoReply> {
        let req = self.send(
            Wire::new(OP_WRITE).u32(cur.0).u64(node.0).u64(token.0).u64(off).bytes(data),
        );
        let mut r = req.reader();
        let _op = r.u8();
        let (cur, node, token, off) = (Pid(r.u32()), NodeId(r.u64()), OpenToken(r.u64()), r.u64());
        let payload = r.bytes();
        let result = self.inner.write(k, cur, node, token, off, &payload);
        let result = result.map(|reply| match reply {
            IoReply::Done(n) => Wire::new(0).u64(n as u64),
            IoReply::Block => Wire::new(1),
        });
        let resp = self.respond(result_wire(result));
        let mut rr = result_unwire(&resp)?;
        match rr.u8() {
            0 => Ok(IoReply::Done(rr.u64() as usize)),
            _ => Ok(IoReply::Block),
        }
    }

    fn ioctl(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        req_no: u32,
        arg: &[u8],
    ) -> SysResult<IoctlReply> {
        // An ioctl can only cross the wire if someone taught the shim this
        // request's operand sizes and directions.
        let spec = match self.ioctl_table.as_ref().and_then(|t| t(req_no)) {
            Some(s) => s,
            None => {
                self.stats.unsupported_ioctls += 1;
                return Err(Errno::ENOTSUP);
            }
        };
        if arg.len() > spec.in_len {
            self.stats.unsupported_ioctls += 1;
            return Err(Errno::ENOTSUP);
        }
        let req = self.send(
            Wire::new(OP_IOCTL).u32(cur.0).u64(node.0).u64(token.0).u32(req_no).bytes(arg),
        );
        let mut r = req.reader();
        let _op = r.u8();
        let (cur, node, token, req_no) =
            (Pid(r.u32()), NodeId(r.u64()), OpenToken(r.u64()), r.u32());
        let payload = r.bytes();
        let result = self.inner.ioctl(k, cur, node, token, req_no, &payload);
        let result = result.map(|reply| match reply {
            IoctlReply::Done(out) => {
                // The server can only return what the spec promised.
                let truncated = &out[..out.len().min(spec.out_len)];
                Wire::new(0).bytes(truncated)
            }
            IoctlReply::Block => Wire::new(1),
        });
        let resp = self.respond(result_wire(result));
        let mut rr = result_unwire(&resp)?;
        match rr.u8() {
            0 => Ok(IoctlReply::Done(rr.bytes())),
            _ => Ok(IoctlReply::Block),
        }
    }

    fn poll(&mut self, k: &mut K, node: NodeId, token: OpenToken) -> SysResult<PollStatus> {
        let req = self.send(Wire::new(OP_POLL).u64(node.0).u64(token.0));
        let mut r = req.reader();
        let _op = r.u8();
        let (node, token) = (NodeId(r.u64()), OpenToken(r.u64()));
        let result = self.inner.poll(k, node, token).map(|p| {
            Wire::new(
                (p.readable as u8) | (p.writable as u8) << 1 | (p.hangup as u8) << 2,
            )
        });
        let resp = self.respond(result_wire(result));
        let mut rr = result_unwire(&resp)?;
        let bits = rr.u8();
        Ok(PollStatus { readable: bits & 1 != 0, writable: bits & 2 != 0, hangup: bits & 4 != 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;

    const P: Pid = Pid(1);

    fn remote_memfs() -> RemoteFs<()> {
        let mut fs = MemFs::<()>::new();
        fs.install("/bin/tool", 0o755, 0, 0, b"payload-bytes".to_vec());
        RemoteFs::new(Box::new(fs))
    }

    #[test]
    fn lookup_and_read_work_across_the_wire() {
        let mut r = remote_memfs();
        let cred = Cred::superuser();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let tok = r.open(&mut (), P, tool, OFlags::rdonly(), &cred).expect("open");
        let mut buf = [0u8; 7];
        let reply = r.read(&mut (), P, tool, tok, 0, &mut buf).expect("read");
        assert_eq!(reply, IoReply::Done(7));
        assert_eq!(&buf, b"payload");
        assert!(r.stats.ops >= 4);
        assert!(r.stats.bytes_sent > 0);
        assert!(r.stats.bytes_received > 0);
    }

    #[test]
    fn errors_cross_the_wire() {
        let mut r = remote_memfs();
        assert_eq!(r.lookup(&mut (), P, NodeId(0), "missing"), Err(Errno::ENOENT));
    }

    #[test]
    fn ioctl_without_table_is_refused() {
        let mut r = remote_memfs();
        let err = r
            .ioctl(&mut (), P, NodeId(0), OpenToken(0), 0x1234, &[])
            .expect_err("no table");
        assert_eq!(err, Errno::ENOTSUP);
        assert_eq!(r.stats.unsupported_ioctls, 1);
        assert_eq!(r.stats.ops, 0, "the request never even reaches the wire");
    }

    #[test]
    fn ioctl_with_table_crosses_but_is_bounded() {
        // memfs rejects ioctl with ENOTTY; we verify the round trip
        // carries the error back, which demands a wire spec.
        let table: IoctlTable =
            Box::new(|req| (req == 7).then_some(IoctlWireSpec { in_len: 8, out_len: 16 }));
        let mut r = RemoteFs::new(Box::new(MemFs::<()>::new())).with_ioctl_table(table);
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 7, &[0; 8]).expect_err("enotty");
        assert_eq!(err, Errno::ENOTTY);
        assert_eq!(r.stats.ops, 1);
        // Oversized operand refused client-side.
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 7, &[0; 64]).expect_err("too big");
        assert_eq!(err, Errno::ENOTSUP);
        // Unknown request refused.
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 8, &[]).expect_err("unknown");
        assert_eq!(err, Errno::ENOTSUP);
    }

    #[test]
    fn write_marshals_payload() {
        let mut r = remote_memfs();
        let cred = Cred::superuser();
        let f = {
            let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
            r.lookup(&mut (), P, bin, "tool").expect("tool")
        };
        let tok = r.open(&mut (), P, f, OFlags::rdwr(), &cred).expect("open");
        r.reset_stats();
        let reply = r.write(&mut (), P, f, tok, 0, b"NEW").expect("write");
        assert_eq!(reply, IoReply::Done(3));
        assert!(r.stats.bytes_sent as usize >= 3 + 1 + 4, "payload travelled");
        let mut buf = [0u8; 3];
        r.read(&mut (), P, f, tok, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"NEW");
    }

    #[test]
    fn readdir_marshals_entries() {
        let mut r = remote_memfs();
        let entries = r.readdir(&mut (), P, NodeId(0)).expect("readdir");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "bin");
    }

    #[test]
    fn getattr_roundtrip() {
        let mut r = remote_memfs();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let meta = r.getattr(&mut (), tool).expect("attr");
        assert_eq!(meta.mode, 0o755);
        assert_eq!(meta.size, 13);
        assert_eq!(meta.kind, VnodeKind::Regular);
    }
}
