//! An RFS-like remote-access shim: concurrent tagged sessions over a
//! lossy, recoverable wire, served by a bounded-queue readiness loop.
//!
//! "The SVR4 implementation of /proc works correctly with Remote File
//! Sharing (RFS). With appropriate permission it is possible to inspect,
//! modify and control processes running on any machine in an RFS
//! network." And, motivating the proposed restructuring: "Removing the
//! dependence on ioctl simplifies the implementation of /proc in a
//! network environment. The unstructured nature of ioctl operations and
//! the variability of operand sizes and I/O directions make it difficult
//! to cleanly separate the client/server interactions; read and write
//! don't share these problems."
//!
//! # Wire protocol v2: tagged, pipelined, out of order
//!
//! A [`WireSession`] owns one server ([`FileSystem`]) end and one shared
//! wire. Every request frame carries an **op tag** (a session-unique
//! monotone counter, travelling in the frame's sequence field); many
//! operations — from many [`RemoteClient`] handles — may be in flight at
//! once. The server completes them **out of order** (a seeded service
//! jitter reorders replies) and the client side demultiplexes each
//! completion into its per-op [`OpFuture`], a poll-based state machine:
//! no async runtime, just `submit_*` → [`RemoteClient::pump`] →
//! [`RemoteClient::try_complete`]. [`RemoteFs`] keeps the blocking
//! [`FileSystem`] face by submitting and waiting on one future at a
//! time, so a remote mount drops into [`crate::mount::MountTable`]
//! unchanged while pipelined clients share its wire.
//!
//! # The server: a readiness loop over bounded per-session queues
//!
//! The server half is structured the way a real `poll(2)`-driven daemon
//! is. Each connection is a session with a **bounded inbound and
//! outbound byte queue** (builder: [`RemoteFs::with_queue_caps`]).
//! Frames arrive as raw bytes appended to the inbound queue; a FIFO
//! ready-set records which sessions hold servable bytes, and the
//! service loop pops ready sessions and extracts **at most
//! [`SERVER_OPS_PER_TICK`] frames per virtual tick** — fairness is
//! round-robin, so one chatty client cannot starve another, and load
//! beyond the budget rolls to the next tick via a self-armed service
//! event. Frame extraction is resynchronising: damaged or truncated
//! bytes in the stream are skipped (counted in
//! [`WireStats::resync_bytes`]) until the next frame magic, so one
//! mangled frame never wedges a session.
//!
//! When a queue would overflow its cap the frame is **shed**, not
//! buffered ([`WireStats::frames_shed`]); a session that keeps shedding
//! is **evicted** — its queues are dropped, its pending operations
//! resolve to a typed `EAGAIN` (never a hung future), and any
//! `OpenToken`s the server granted it are closed on its behalf, so
//! run-on-last-close semantics survive abrupt client death. The
//! degradation ladder is typed end to end: `EAGAIN` for shed/evicted/
//! over-committed work, `ETIMEDOUT` for an exhausted retry budget —
//! never a panic, never unbounded memory.
//!
//! # Adversarial clients
//!
//! Real servers die at the hands of misbehaving peers, so the seeded
//! [`FaultPlan`] grows an adversarial-client dimension
//! ([`AdversaryRates`], builder [`FaultPlan::with_adversary`]):
//!
//! * **slow readers** drain their reply queue one byte per tick;
//! * **half-open sessions** stop reading entirely but keep writing
//!   (their reply queue fills until eviction);
//! * **frame floods** deliver [`FLOOD_COPIES`] extra copies of a
//!   request in one burst (the dedup window keeps effects
//!   exactly-once; the queue cap sheds the excess);
//! * **mid-frame disconnects** cut a request partway through and drop
//!   the link, which heals [`RECONNECT_TICKS`] later;
//! * **stale-tag replay** re-injects the session's last sequenced
//!   frame after a reconnect, which must be answered from the dedup
//!   window, not re-executed.
//!
//! All of it rides the same xorshift64* stream, so one seed still
//! fixes the entire schedule — faults, personas, churn and
//! reorderings — and same-seed replays are byte-identical.
//!
//! Time is **virtual**: a deterministic event scheduler orders request
//! arrivals, service completions, queue drains, reconnects and retry
//! timers on a tick clock ([`WireSession::ticks`]). No wall clock is
//! ever read, so every interleaving — including multi-client races —
//! replays exactly from the seeds.
//!
//! Real process-control traffic must survive a network that corrupts,
//! loses, duplicates and delays messages, so the wire layer is built
//! from explicit state rather than hope:
//!
//! * every image is framed with a magic, a tag, a length and a CRC-32
//!   ([`encode_frame`]/[`decode_frame`]); damaged frames are rejected
//!   with a distinct [`WireError`], never misparsed;
//! * a seeded, replayable [`FaultPlan`] injects drops, truncations,
//!   bit-flips, duplications and delays at configured per-mille rates —
//!   the same seed always yields the same fault schedule;
//! * a per-op retry timer resends until a usable reply arrives, with
//!   capped exponential backoff and a bounded tick budget; an exhausted
//!   budget degrades to [`Errno::ETIMEDOUT`], never a panic or a
//!   silently wrong reply;
//! * operations are classified by idempotency ([`OpClass`]): pure reads
//!   retry freely, while mutating operations (`open`, `close`, `write`,
//!   `ioctl`) carry their tag into a server-side dedup window so a
//!   retried, duplicated or replayed request is applied exactly once —
//!   even when retransmissions from different sessions interleave.
//!
//! The crucial asymmetry from the paper survives intact: `read`,
//! `write`, `lookup` and friends marshal *generically* — their operand
//! sizes and directions are manifest in the call. `ioctl` cannot be
//! marshalled without a per-request table of operand sizes and
//! directions ([`IoctlWireSpec`]); any request missing from the table is
//! refused with `ENOTSUP` and counted.

use crate::cred::Cred;
use crate::errno::{Errno, SysResult};
use crate::fs::{FileSystem, IoReply, IoctlReply, OFlags, OpenToken, PollStatus};
use crate::node::{DirEntry, Metadata, NodeId, Pid, VnodeKind};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Introspection ioctl answered by [`RemoteFs`] itself (never crossing
/// the wire): returns the [`WireStats`] image. Numbered after the
/// `PIOC*` family so the flat tooling can issue it on any remote-mounted
/// descriptor, mirroring `PIOCCACHESTATS`.
pub const PIOCWIRESTATS: u32 = 0x5030;

/// Traffic, fault, recovery and server-side load counters for the
/// simulated wire. The first fourteen fields are the PR 2/3 layout;
/// the rest are the server counters (sessions, shedding, queue
/// high-water marks, churn) grown for the readiness-loop server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Remote operations performed.
    pub ops: u64,
    /// Request bytes sent client to server (framed, including retries).
    pub bytes_sent: u64,
    /// Response bytes sent server to client (framed).
    pub bytes_received: u64,
    /// ioctl requests refused because no wire specification exists.
    pub unsupported_ioctls: u64,
    /// Request frames transmitted (one per attempt).
    pub frames_sent: u64,
    /// Frames the network dropped.
    pub drops: u64,
    /// Frames the network truncated.
    pub truncations: u64,
    /// Frames the network bit-flipped.
    pub bitflips: u64,
    /// Frames the network duplicated.
    pub duplicates: u64,
    /// Frames the network delayed by [`LATE_TICKS`].
    pub delays: u64,
    /// Damaged frames rejected by the length/CRC check (either side).
    pub checksum_rejects: u64,
    /// Attempts beyond the first (client resends).
    pub retries: u64,
    /// Re-executed sequenced requests answered from the dedup window.
    pub dedup_hits: u64,
    /// Operations that exhausted their retry budget (`ETIMEDOUT`).
    pub timeouts: u64,
    /// Client sessions opened (the blocking mount face is not counted).
    pub sessions_opened: u64,
    /// Sessions evicted by the shedding policy.
    pub sessions_evicted: u64,
    /// Frames shed at a full queue or a dead link.
    pub frames_shed: u64,
    /// High-water mark across all inbound queues, in bytes.
    pub in_queue_hwm: u64,
    /// High-water mark across all outbound queues, in bytes.
    pub out_queue_hwm: u64,
    /// Connection-churn events (disconnects, reconnects, hangups).
    pub churn_events: u64,
    /// Junk bytes skipped while resynchronising to a frame magic.
    pub resync_bytes: u64,
    /// Stale sequenced frames replayed after a reconnect.
    pub stale_replays: u64,
    /// Submissions rejected with `EAGAIN` (session gone or
    /// [`INFLIGHT_CAP`] reached).
    pub eagain_rejected: u64,
    /// Adversarial frame-flood bursts injected.
    pub floods: u64,
}

impl WireStats {
    /// Encoded length of the wire image.
    pub const WIRE_LEN: usize = 24 * 8;

    /// Serialises, `PIOCWIRESTATS`'s reply format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_LEN);
        for v in [
            self.ops,
            self.bytes_sent,
            self.bytes_received,
            self.unsupported_ioctls,
            self.frames_sent,
            self.drops,
            self.truncations,
            self.bitflips,
            self.duplicates,
            self.delays,
            self.checksum_rejects,
            self.retries,
            self.dedup_hits,
            self.timeouts,
            self.sessions_opened,
            self.sessions_evicted,
            self.frames_shed,
            self.in_queue_hwm,
            self.out_queue_hwm,
            self.churn_events,
            self.resync_bytes,
            self.stale_replays,
            self.eagain_rejected,
            self.floods,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    }

    /// Deserialises a `PIOCWIRESTATS` reply.
    pub fn from_bytes(b: &[u8]) -> Option<WireStats> {
        if b.len() < Self::WIRE_LEN {
            return None;
        }
        let at = |o: usize| {
            b.get(o..o + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .unwrap_or(0)
        };
        Some(WireStats {
            ops: at(0),
            bytes_sent: at(8),
            bytes_received: at(16),
            unsupported_ioctls: at(24),
            frames_sent: at(32),
            drops: at(40),
            truncations: at(48),
            bitflips: at(56),
            duplicates: at(64),
            delays: at(72),
            checksum_rejects: at(80),
            retries: at(88),
            dedup_hits: at(96),
            timeouts: at(104),
            sessions_opened: at(112),
            sessions_evicted: at(120),
            frames_shed: at(128),
            in_queue_hwm: at(136),
            out_queue_hwm: at(144),
            churn_events: at(152),
            resync_bytes: at(160),
            stale_replays: at(168),
            eagain_rejected: at(176),
            floods: at(184),
        })
    }

    /// Total frames the fault plan perturbed in any way.
    pub fn faults_injected(&self) -> u64 {
        self.drops + self.truncations + self.bitflips + self.duplicates + self.delays
    }
}

/// How a frame failed validation. Distinct from an [`Errno`] so tests
/// can tell "the wire rejected a damaged image" apart from "the server
/// refused the operation"; at the system-call boundary every wire error
/// degrades to `EIO`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame is shorter than its header claims.
    Truncated,
    /// The magic or CRC does not match (bit damage).
    Corrupt,
    /// The frame validated but its contents don't parse.
    Malformed,
}

impl From<WireError> for Errno {
    fn from(_: WireError) -> Errno {
        Errno::EIO
    }
}

/// Per-mille probabilities for each network fault class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Frame silently discarded.
    pub drop: u16,
    /// Frame cut short at a random point.
    pub truncate: u16,
    /// One random bit inverted.
    pub bitflip: u16,
    /// Frame delivered twice.
    pub duplicate: u16,
    /// Frame delivered [`LATE_TICKS`] late.
    pub delay: u16,
}

impl FaultRates {
    /// The same per-mille rate for every fault class.
    pub fn uniform(permille: u16) -> FaultRates {
        FaultRates {
            drop: permille,
            truncate: permille,
            bitflip: permille,
            duplicate: permille,
            delay: permille,
        }
    }
}

/// Per-mille probabilities for each adversarial-client behaviour. The
/// first two are rolled once per session at creation (they pick the
/// session's persona); the rest are rolled per arriving request frame
/// or per reconnect. The blocking mount face (session 0) is exempt —
/// adversaries are clients, not the local mount.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdversaryRates {
    /// Session persona: drains its reply queue one byte per tick.
    pub slow_reader: u16,
    /// Session persona: stops reading entirely but keeps writing.
    pub half_open: u16,
    /// Request arrives as a burst of [`FLOOD_COPIES`] extra copies.
    pub flood: u16,
    /// Request is cut mid-frame and the link drops, healing after
    /// [`RECONNECT_TICKS`].
    pub mid_frame: u16,
    /// On reconnect, the session's last sequenced frame is replayed
    /// with its (now stale) tag.
    pub stale_replay: u16,
}

impl AdversaryRates {
    /// The same per-mille rate for every adversarial behaviour.
    pub fn uniform(permille: u16) -> AdversaryRates {
        AdversaryRates {
            slow_reader: permille,
            half_open: permille,
            flood: permille,
            mid_frame: permille,
            stale_replay: permille,
        }
    }
}

/// A deterministic, replayable fault schedule: an xorshift64* stream
/// seeded once, consumed in a fixed order per frame. Re-running the same
/// operation sequence under the same seed reproduces every fault,
/// persona and churn event.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    state: u64,
    rates: FaultRates,
    adv: AdversaryRates,
}

/// One frame as the network delivered it.
struct Delivery {
    bytes: Vec<u8>,
    /// Delivered [`LATE_TICKS`] after the rest (the effect of a delay
    /// fault: the bytes arrive long after the client's patience window,
    /// so the retry path and the dedup window must absorb them).
    late: bool,
}

impl FaultPlan {
    /// A plan from a seed and per-fault rates (zero seed is remapped:
    /// xorshift has an all-zero fixed point). Adversarial-client rates
    /// start at zero; see [`FaultPlan::with_adversary`].
    pub fn new(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
            rates,
            adv: AdversaryRates::default(),
        }
    }

    /// Builder: adds an adversarial-client dimension to the schedule.
    /// Zero rates roll nothing and consume no generator state, so a
    /// plan without adversaries replays exactly as before.
    pub fn with_adversary(mut self, adv: AdversaryRates) -> FaultPlan {
        self.adv = adv;
        self
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn roll(&mut self, permille: u16) -> bool {
        permille > 0 && self.next() % 1000 < u64::from(permille)
    }

    fn roll_slow_reader(&mut self) -> bool {
        self.roll(self.adv.slow_reader)
    }

    fn roll_half_open(&mut self) -> bool {
        self.roll(self.adv.half_open)
    }

    fn roll_flood(&mut self) -> bool {
        self.roll(self.adv.flood)
    }

    fn roll_mid_frame(&mut self) -> bool {
        self.roll(self.adv.mid_frame)
    }

    fn roll_stale_replay(&mut self) -> bool {
        self.roll(self.adv.stale_replay)
    }

    /// Deterministic cut point in `0..len` for mid-frame truncation.
    /// `len` must be nonzero.
    fn cut_point(&mut self, len: usize) -> usize {
        (self.next() as usize) % len
    }

    /// Applies the schedule to one outbound frame, returning what the
    /// network actually delivers (possibly nothing, possibly twice).
    fn perturb(&mut self, frame: Vec<u8>, stats: &mut WireStats) -> Vec<Delivery> {
        if self.roll(self.rates.drop) {
            stats.drops += 1;
            return Vec::new();
        }
        let copies = if self.roll(self.rates.duplicate) {
            stats.duplicates += 1;
            2
        } else {
            1
        };
        let mut out = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut bytes = frame.clone();
            if self.roll(self.rates.truncate) && !bytes.is_empty() {
                stats.truncations += 1;
                let keep = (self.next() as usize) % bytes.len();
                bytes.truncate(keep);
            }
            if self.roll(self.rates.bitflip) && !bytes.is_empty() {
                stats.bitflips += 1;
                let bit = (self.next() as usize) % (bytes.len() * 8);
                if let Some(byte) = bytes.get_mut(bit / 8) {
                    *byte ^= 1 << (bit % 8);
                }
            }
            let late = self.roll(self.rates.delay);
            if late {
                stats.delays += 1;
            }
            out.push(Delivery { bytes, late });
        }
        out
    }
}

/// Client retry discipline: how often and for how long to resend before
/// degrading to `ETIMEDOUT`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before giving up (first send included).
    pub max_attempts: u32,
    /// Upper bound on the per-attempt backoff, in abstract ticks.
    pub backoff_cap: u64,
    /// Total backoff ticks the operation may consume.
    pub budget: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 8, backoff_cap: 64, budget: 256 }
    }
}

/// Idempotency class of one wire operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    /// Safe to execute any number of times (lookup, getattr, readdir,
    /// read, poll): the client retries freely.
    Idempotent,
    /// Carries side effects (open, close, write, ioctl): the op tag
    /// enters the server's dedup window so a retried request is
    /// executed exactly once and re-answered from the cached response.
    Sequenced,
}

/// Responses remembered per op tag for exactly-once execution.
const DEDUP_WINDOW: usize = 128;

/// Frame magic ("/proc wire", v2: tagged concurrent sessions).
const FRAME_MAGIC: u32 = 0x70F5_57E2;
/// Frame header: magic + tag + body length + CRC-32.
const FRAME_HEADER: usize = 4 + 8 + 4 + 4;

/// Ticks a frame spends crossing the wire in either direction.
const TRANSIT_TICKS: u64 = 1;
/// Server service-time jitter, exclusive upper bound: replies complete
/// `0..SERVICE_JITTER` ticks after service, reordering completions.
const SERVICE_JITTER: u64 = 3;
/// Client patience per attempt before the retry timer fires. Must
/// exceed a round trip plus the worst service jitter or clean wires
/// would retransmit.
const RETRY_RTT: u64 = 6;
/// Extra transit ticks a delay fault adds: long past the per-attempt
/// patience window, so the retry path (and the dedup window) must
/// absorb the late arrival.
const LATE_TICKS: u64 = 24;
/// Ticks a mid-frame disconnect keeps the link down before it heals.
const RECONNECT_TICKS: u64 = 8;
/// Largest believable frame body while resynchronising a byte stream;
/// a corrupted length field beyond this is junk, not a frame to wait
/// for.
const MAX_BODY: usize = 1 << 20;

/// Request frames the server extracts per virtual tick, across all
/// sessions. Load beyond the budget rolls to the next tick (this is
/// what makes p99 latency grow with client count instead of everything
/// completing in one magic instant).
pub const SERVER_OPS_PER_TICK: u32 = 8;
/// Operations one session may have in flight before `submit` rejects
/// with `EAGAIN`.
pub const INFLIGHT_CAP: u32 = 64;
/// Sheds a session survives before it is evicted.
pub const EVICT_SHED_LIMIT: u32 = 8;
/// Extra request copies an adversarial frame flood delivers.
pub const FLOOD_COPIES: usize = 8;
/// Default per-direction queue cap, in bytes.
pub const DEFAULT_QUEUE_CAP: usize = 256 * 1024;

/// CRC-32 (IEEE 802.3 polynomial, bitwise): guarantees detection of any
/// single-bit flip and any burst up to 32 bits. Public so the on-disk
/// recording format can checksum its segments with the same discipline
/// the wire uses for frames.
pub fn crc32(seed: u32, data: &[u8]) -> u32 {
    let mut crc = !seed;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
        }
    }
    !crc
}

fn frame_crc(tag: u64, body: &[u8]) -> u32 {
    let crc = crc32(0, &tag.to_le_bytes());
    let crc = crc32(crc, &(body.len() as u32).to_le_bytes());
    crc32(crc, body)
}

/// Frames a message body: `[magic][tag][len][crc][body]`. Public so
/// robustness tests can forge raw frames to throw at the server.
pub fn encode_frame(tag: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(tag, body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Validates and unframes a delivered image. Any damage is reported as a
/// [`WireError`]; nothing is ever parsed out of a damaged frame.
pub fn decode_frame(data: &[u8]) -> Result<(u64, Vec<u8>), WireError> {
    let mut r = WireReader::new(data);
    let magic = r.u32().map_err(|_| WireError::Truncated)?;
    if magic != FRAME_MAGIC {
        return Err(WireError::Corrupt);
    }
    let tag = r.u64().map_err(|_| WireError::Truncated)?;
    let len = r.u32().map_err(|_| WireError::Truncated)? as usize;
    let crc = r.u32().map_err(|_| WireError::Truncated)?;
    if data.len() != FRAME_HEADER + len {
        return Err(WireError::Truncated);
    }
    let body = &data[FRAME_HEADER..];
    if frame_crc(tag, body) != crc {
        return Err(WireError::Corrupt);
    }
    Ok((tag, body.to_vec()))
}

/// Position of the first frame-magic occurrence in `buf`, if any.
fn find_magic(buf: &[u8]) -> Option<usize> {
    let magic = FRAME_MAGIC.to_le_bytes();
    buf.windows(4).position(|w| w == magic)
}

/// Extracts the next whole frame from a byte-stream buffer,
/// resynchronising past damage. Junk before a magic is dropped; a
/// plausible-looking header whose body bytes can never arrive (another
/// magic already follows it in the buffer) is skipped one byte at a
/// time rather than waited on forever — a truncated frame must never
/// wedge the session behind it. Returns `None` when no complete frame
/// is available yet (the tail stays buffered for the next arrival).
fn extract_frame(buf: &mut Vec<u8>, stats: &mut WireStats) -> Option<(u64, Vec<u8>)> {
    loop {
        // Resynchronise to the next magic, keeping a possible prefix of
        // one at the very tail.
        match find_magic(buf) {
            Some(0) => {}
            Some(idx) => {
                stats.resync_bytes += idx as u64;
                buf.drain(..idx);
            }
            None => {
                let keep = buf.len().min(3);
                let junk = buf.len() - keep;
                if junk > 0 {
                    stats.resync_bytes += junk as u64;
                    buf.drain(..junk);
                }
                return None;
            }
        }
        if buf.len() < FRAME_HEADER {
            return None; // header still arriving
        }
        let len = buf
            .get(12..16)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
            .unwrap_or(u32::MAX) as usize;
        if len > MAX_BODY {
            // A corrupted length field: this was never a real header.
            stats.resync_bytes += 1;
            buf.drain(..1);
            continue;
        }
        let total = FRAME_HEADER + len;
        if buf.len() < total {
            // Not enough bytes yet. If another magic already follows,
            // the missing tail will never arrive (the frame was cut);
            // skip forward instead of waiting forever.
            if find_magic(&buf[4..]).is_some() {
                stats.resync_bytes += 1;
                buf.drain(..1);
                continue;
            }
            return None;
        }
        match decode_frame(&buf[..total]) {
            Ok((tag, body)) => {
                buf.drain(..total);
                return Some((tag, body));
            }
            Err(_) => {
                stats.checksum_rejects += 1;
                stats.resync_bytes += 1;
                buf.drain(..1);
            }
        }
    }
}

/// Wire shape of one ioctl request: how many bytes go in and (at most)
/// how many come back. Exactly the knowledge a remote file system must be
/// taught per request — the paper's complaint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoctlWireSpec {
    /// Operand bytes carried with the request.
    pub in_len: usize,
    /// Maximum operand bytes returned.
    pub out_len: usize,
}

/// Table resolving an ioctl request number to its wire shape.
pub type IoctlTable = Box<dyn Fn(u32) -> Option<IoctlWireSpec> + Send>;

/// A marshalled message body: just bytes, with cursor-based read-back.
struct Wire(Vec<u8>);

/// Fallible cursor over a received message. Every accessor reports
/// [`WireError::Truncated`] instead of panicking: recovery paths must
/// not hide panics. Public so other binary decoders (the on-disk
/// recording format, [`WireConfig::decode`]) parse with the same
/// discipline.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Result alias for wire parsing.
pub type WireResult<T> = Result<T, WireError>;

impl Wire {
    fn new(op: u8) -> Wire {
        Wire(vec![op])
    }
    fn empty() -> Wire {
        Wire(Vec::new())
    }
    fn u32(mut self, v: u32) -> Wire {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn u64(mut self, v: u64) -> Wire {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn str(mut self, s: &str) -> Wire {
        self.0.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.0.extend_from_slice(s.as_bytes());
        self
    }
    fn bytes(mut self, b: &[u8]) -> Wire {
        self.0.extend_from_slice(&(b.len() as u32).to_le_bytes());
        self.0.extend_from_slice(b);
        self
    }
}

impl<'a> WireReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }
    /// Consumes the next `n` bytes, or reports truncation.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }
    /// Next byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }
    /// Next little-endian `u16`.
    pub fn u16(&mut self) -> WireResult<u16> {
        let s = self.take(2)?;
        s.try_into().map(u16::from_le_bytes).map_err(|_| WireError::Truncated)
    }
    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        let s = self.take(4)?;
        s.try_into().map(u32::from_le_bytes).map_err(|_| WireError::Truncated)
    }
    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        let s = self.take(8)?;
        s.try_into().map(u64::from_le_bytes).map_err(|_| WireError::Truncated)
    }
    /// Next `u32`-length-prefixed UTF-8 string (lossy).
    pub fn str(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        Ok(String::from_utf8_lossy(self.take(n)?).into_owned())
    }
    /// Next `u32`-length-prefixed byte run.
    pub fn bytes(&mut self) -> WireResult<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

fn cred_wire(w: Wire, c: &Cred) -> Wire {
    let mut w = w.u32(c.ruid).u32(c.euid).u32(c.suid).u32(c.rgid).u32(c.egid).u32(c.sgid);
    w = w.u32(c.groups.len() as u32);
    for g in &c.groups {
        w = w.u32(*g);
    }
    w
}

fn cred_unwire(r: &mut WireReader<'_>) -> WireResult<Cred> {
    let (ruid, euid, suid, rgid, egid, sgid) =
        (r.u32()?, r.u32()?, r.u32()?, r.u32()?, r.u32()?, r.u32()?);
    let n = r.u32()?;
    let mut groups = Vec::with_capacity(n.min(64) as usize);
    for _ in 0..n {
        groups.push(r.u32()?);
    }
    Ok(Cred { ruid, euid, suid, rgid, egid, sgid, groups })
}

const OP_LOOKUP: u8 = 1;
const OP_GETATTR: u8 = 2;
const OP_READDIR: u8 = 3;
const OP_OPEN: u8 = 4;
const OP_CLOSE: u8 = 5;
const OP_READ: u8 = 6;
const OP_WRITE: u8 = 7;
const OP_IOCTL: u8 = 8;
const OP_POLL: u8 = 9;

fn op_class(op: u8) -> OpClass {
    match op {
        OP_OPEN | OP_CLOSE | OP_WRITE | OP_IOCTL => OpClass::Sequenced,
        _ => OpClass::Idempotent,
    }
}

/// Marshals an `OP_WRITE` request body. Public so robustness tests can
/// forge byte-exact frames (truncated at chosen offsets, replayed with
/// stale tags) without reimplementing the marshaller.
pub fn marshal_write(cur: Pid, node: NodeId, token: OpenToken, off: u64, data: &[u8]) -> Vec<u8> {
    Wire::new(OP_WRITE).u32(cur.0).u64(node.0).u64(token.0).u64(off).bytes(data).0
}

/// Marshals an `OP_READ` request body (see [`marshal_write`]).
pub fn marshal_read(cur: Pid, node: NodeId, token: OpenToken, off: u64, len: usize) -> Vec<u8> {
    Wire::new(OP_READ).u32(cur.0).u64(node.0).u64(token.0).u64(off).u64(len as u64).0
}

/// The single server-side dispatcher: validates the op byte, unmarshals
/// the operands, executes against the inner file system and marshals the
/// reply. One decode path for every operation, shared by every client.
fn serve<K>(
    inner: &mut (dyn FileSystem<K> + Send),
    table: &Option<IoctlTable>,
    k: &mut K,
    body: &[u8],
) -> SysResult<Wire> {
    let mut r = WireReader::new(body);
    let op = r.u8().map_err(Errno::from)?;
    match op {
        OP_LOOKUP => {
            let (cur, dir, name) = (Pid(r.u32()?), NodeId(r.u64()?), r.str()?);
            inner.lookup(k, cur, dir, &name).map(|n| Wire::empty().u64(n.0))
        }
        OP_GETATTR => {
            let node = NodeId(r.u64()?);
            inner.getattr(k, node).map(|m| {
                Wire::new(match m.kind {
                    VnodeKind::Regular => 0,
                    VnodeKind::Directory => 1,
                    VnodeKind::Proc => 2,
                    VnodeKind::Fifo => 3,
                })
                .u32(u32::from(m.mode))
                .u32(m.uid)
                .u32(m.gid)
                .u64(m.size)
                .u32(m.nlink)
                .u64(m.mtime)
            })
        }
        OP_READDIR => {
            let (cur, dir) = (Pid(r.u32()?), NodeId(r.u64()?));
            inner.readdir(k, cur, dir).map(|entries| {
                let mut w = Wire::empty().u32(entries.len() as u32);
                for e in &entries {
                    w = w.str(&e.name).u64(e.node.0);
                }
                w
            })
        }
        OP_OPEN => {
            let (cur, node, bits) = (Pid(r.u32()?), NodeId(r.u64()?), r.u64()?);
            let cred = cred_unwire(&mut r)?;
            inner
                .open(k, cur, node, OFlags::from_bits(bits), &cred)
                .map(|t| Wire::empty().u64(t.0))
        }
        OP_CLOSE => {
            let (cur, node, token, bits) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u64()?);
            inner.close(k, cur, node, token, OFlags::from_bits(bits));
            Ok(Wire::empty())
        }
        OP_READ => {
            let (cur, node, token, off, len) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u64()?, r.u64()? as usize);
            let mut server_buf = vec![0u8; len];
            inner.read(k, cur, node, token, off, &mut server_buf).map(|reply| match reply {
                IoReply::Done(n) => Wire::new(0).bytes(server_buf.get(..n).unwrap_or(&[])),
                IoReply::Block => Wire::new(1),
            })
        }
        OP_WRITE => {
            let (cur, node, token, off) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u64()?);
            let payload = r.bytes()?;
            inner.write(k, cur, node, token, off, &payload).map(|reply| match reply {
                IoReply::Done(n) => Wire::new(0).u64(n as u64),
                IoReply::Block => Wire::new(1),
            })
        }
        OP_IOCTL => {
            let (cur, node, token, req_no) =
                (Pid(r.u32()?), NodeId(r.u64()?), OpenToken(r.u64()?), r.u32()?);
            let payload = r.bytes()?;
            // The server can only return what the spec promised.
            let out_cap = table
                .as_ref()
                .and_then(|t| t(req_no))
                .map(|s| s.out_len)
                .unwrap_or(usize::MAX);
            inner.ioctl(k, cur, node, token, req_no, &payload).map(|reply| match reply {
                IoctlReply::Done(out) => {
                    let n = out.len().min(out_cap);
                    Wire::new(0).bytes(out.get(..n).unwrap_or(&[]))
                }
                IoctlReply::Block => Wire::new(1),
            })
        }
        OP_POLL => {
            let (node, token) = (NodeId(r.u64()?), OpenToken(r.u64()?));
            inner.poll(k, node, token).map(|p| {
                Wire::new(u8::from(p.readable) | u8::from(p.writable) << 1 | u8::from(p.hangup) << 2)
            })
        }
        _ => Err(Errno::EIO),
    }
}

// ---- client-side reply parsers (one per op, shared by the blocking ----
// ---- FileSystem face and the pipelined RemoteClient futures)       ----

/// A remote read completion: either the data bytes or a block verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RemoteRead {
    /// The server returned these bytes.
    Data(Vec<u8>),
    /// The server said the read would block.
    Block,
}

fn parse_node(b: &[u8]) -> SysResult<NodeId> {
    let mut r = WireReader::new(b);
    Ok(NodeId(r.u64().map_err(Errno::from)?))
}

fn parse_token(b: &[u8]) -> SysResult<OpenToken> {
    let mut r = WireReader::new(b);
    Ok(OpenToken(r.u64().map_err(Errno::from)?))
}

fn parse_unit(_: &[u8]) -> SysResult<()> {
    Ok(())
}

fn parse_metadata(b: &[u8]) -> SysResult<Metadata> {
    let mut rr = WireReader::new(b);
    let parse = |rr: &mut WireReader<'_>| -> WireResult<Metadata> {
        let kind = match rr.u8()? {
            0 => VnodeKind::Regular,
            1 => VnodeKind::Directory,
            2 => VnodeKind::Proc,
            3 => VnodeKind::Fifo,
            _ => return Err(WireError::Malformed),
        };
        Ok(Metadata {
            kind,
            mode: rr.u32()? as u16,
            uid: rr.u32()?,
            gid: rr.u32()?,
            size: rr.u64()?,
            nlink: rr.u32()?,
            mtime: rr.u64()?,
        })
    };
    parse(&mut rr).map_err(Errno::from)
}

fn parse_dirents(b: &[u8]) -> SysResult<Vec<DirEntry>> {
    let mut rr = WireReader::new(b);
    let parse = |rr: &mut WireReader<'_>| -> WireResult<Vec<DirEntry>> {
        let n = rr.u32()?;
        let mut out = Vec::with_capacity(n.min(4096) as usize);
        for _ in 0..n {
            out.push(DirEntry { name: rr.str()?, node: NodeId(rr.u64()?) });
        }
        Ok(out)
    };
    parse(&mut rr).map_err(Errno::from)
}

fn parse_read(b: &[u8]) -> SysResult<RemoteRead> {
    let mut rr = WireReader::new(b);
    match rr.u8().map_err(Errno::from)? {
        0 => Ok(RemoteRead::Data(rr.bytes().map_err(Errno::from)?)),
        _ => Ok(RemoteRead::Block),
    }
}

fn parse_write(b: &[u8]) -> SysResult<IoReply> {
    let mut rr = WireReader::new(b);
    match rr.u8().map_err(Errno::from)? {
        0 => Ok(IoReply::Done(rr.u64().map_err(Errno::from)? as usize)),
        _ => Ok(IoReply::Block),
    }
}

fn parse_ioctl(b: &[u8]) -> SysResult<IoctlReply> {
    let mut rr = WireReader::new(b);
    match rr.u8().map_err(Errno::from)? {
        0 => Ok(IoctlReply::Done(rr.bytes().map_err(Errno::from)?)),
        _ => Ok(IoctlReply::Block),
    }
}

fn parse_poll(b: &[u8]) -> SysResult<PollStatus> {
    let mut rr = WireReader::new(b);
    let bits = rr.u8().map_err(Errno::from)?;
    Ok(PollStatus { readable: bits & 1 != 0, writable: bits & 2 != 0, hangup: bits & 4 != 0 })
}

fn parse_never<T>(_: &[u8]) -> SysResult<T> {
    Err(Errno::EIO)
}

// ---- the deterministic event scheduler ----

/// What the wire delivers or a timer fires. `Clone` so a wire
/// snapshot can carry the whole event queue.
#[derive(Clone)]
enum NetEvent {
    /// A request frame's bytes reach the server side of a session.
    Request { sid: u32, bytes: Vec<u8> },
    /// A reply frame's bytes reach a session's outbound queue.
    ReplyEnqueue { sid: u32, bytes: Vec<u8> },
    /// The client end of a session drains its outbound queue.
    Drain { sid: u32 },
    /// The per-op retry timer expires.
    Retry { tag: u64 },
    /// A dropped link heals.
    Reconnect { sid: u32 },
    /// The service budget rolled over; ready sessions get a new tick.
    Service,
}

/// An event on the virtual clock. Ordered by `(due, id)` — `id` is a
/// monotone tie-breaker so equal-time events replay in schedule order.
#[derive(Clone)]
struct Scheduled {
    due: u64,
    id: u64,
    ev: NetEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> Ordering {
        // Reversed: the binary heap pops the earliest (due, id) first.
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}

/// One submitted operation awaiting completion. The idempotency class
/// lives server-side (derived from the op byte): the client retries
/// every op the same way and the dedup window keeps sequenced ones
/// exactly-once.
#[derive(Clone)]
struct InFlight {
    /// The session this op was submitted on (its eviction resolves us).
    sid: u32,
    body: Vec<u8>,
    attempts: u32,
    backoff: u64,
    budget: u64,
    done: Option<SysResult<Vec<u8>>>,
}

/// How a session's client end behaves, fixed at session creation by the
/// adversary rates. The blocking mount face (session 0) is always
/// `Clean`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Persona {
    /// Reads replies promptly (drains everything each drain tick).
    Clean,
    /// Drains one reply byte per tick.
    SlowReader,
    /// Never reads replies; its outbound queue fills until eviction.
    HalfOpen,
}

impl Persona {
    /// Outbound bytes the client end consumes per drain tick.
    fn drain_rate(self) -> usize {
        match self {
            Persona::Clean => usize::MAX,
            Persona::SlowReader => 1,
            Persona::HalfOpen => 0,
        }
    }
}

/// Link state of one session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LinkState {
    /// Connected; frames flow both ways.
    Live,
    /// Dropped mid-stream; arrivals shed until the link heals.
    Down,
    /// Evicted or hung up; terminal.
    Gone,
}

/// Server-side state of one client session: bounded byte queues, link
/// state, persona, shed accounting and the `OpenToken`s granted to this
/// client (closed on its behalf if it dies).
#[derive(Clone)]
struct SessionState {
    link: LinkState,
    persona: Persona,
    /// Bytes received from the client, awaiting frame extraction.
    inbound: Vec<u8>,
    /// Reply bytes awaiting the client's reads.
    outbound: Vec<u8>,
    /// Bytes the client end has drained, awaiting frame extraction.
    rx: Vec<u8>,
    /// A drain event is scheduled.
    drain_armed: bool,
    /// Frames shed at this session's full queues (eviction trigger).
    sheds: u32,
    /// Ops submitted and not yet completed ([`INFLIGHT_CAP`]).
    pending: u32,
    /// Tokens the server granted this session: `(pid, node, token,
    /// open-flag bits)`, auto-closed on eviction or hangup.
    open_tokens: Vec<(Pid, NodeId, OpenToken, u64)>,
    /// Raw bytes of the last sequenced request frame this session
    /// delivered (fuel for the stale-replay adversary).
    last_seq_frame: Option<Vec<u8>>,
}

impl SessionState {
    fn new(persona: Persona) -> SessionState {
        SessionState {
            link: LinkState::Live,
            persona,
            inbound: Vec::new(),
            outbound: Vec::new(),
            rx: Vec::new(),
            drain_armed: false,
            sheds: 0,
            pending: 0,
            open_tokens: Vec::new(),
            last_seq_frame: None,
        }
    }
}

/// One server and its client sessions: the in-flight op table, the
/// event queue, the fault plan, the per-session bounded queues and the
/// readiness loop. Shared (behind a mutex) by every [`RemoteClient`]
/// handle and the mounted [`RemoteFs`].
pub struct WireSession<K> {
    inner: Box<dyn FileSystem<K> + Send>,
    ioctl_table: Option<IoctlTable>,
    fault: Option<FaultPlan>,
    retry: RetryPolicy,
    /// Virtual wire clock, in ticks.
    clock: u64,
    /// Next op tag (server-unique, travels in the frame header).
    next_tag: u64,
    /// Monotone event id: ties on the clock break deterministically.
    next_event_id: u64,
    events: BinaryHeap<Scheduled>,
    inflight: HashMap<u64, InFlight>,
    /// Server-side dedup window: `(tag, cached response body)`.
    dedup: VecDeque<(u64, Vec<u8>)>,
    /// Seeded service-jitter stream: reorders reply completions.
    jitter: u64,
    stats: WireStats,
    // -- the server half --
    sessions: HashMap<u32, SessionState>,
    next_sid: u32,
    /// FIFO ready-set: sessions holding servable inbound bytes.
    ready_q: VecDeque<u32>,
    ready_in: HashSet<u32>,
    /// Inbound queue cap, bytes.
    in_cap: usize,
    /// Outbound queue cap, bytes.
    out_cap: usize,
    /// Tick the service budget below applies to.
    served_tick: u64,
    /// Frames served at `served_tick` (bounded by
    /// [`SERVER_OPS_PER_TICK`]).
    served_count: u32,
    /// A `Service` rollover event is scheduled.
    service_armed: bool,
}

impl<K> WireSession<K> {
    fn new(inner: Box<dyn FileSystem<K> + Send>) -> WireSession<K> {
        let mut s = WireSession {
            inner,
            ioctl_table: None,
            fault: None,
            retry: RetryPolicy::default(),
            clock: 0,
            next_tag: 1,
            next_event_id: 0,
            events: BinaryHeap::new(),
            inflight: HashMap::new(),
            dedup: VecDeque::new(),
            jitter: 0x5EED_0F0F_CAFE_F00D,
            stats: WireStats::default(),
            sessions: HashMap::new(),
            next_sid: 0,
            ready_q: VecDeque::new(),
            ready_in: HashSet::new(),
            in_cap: DEFAULT_QUEUE_CAP,
            out_cap: DEFAULT_QUEUE_CAP,
            served_tick: 0,
            served_count: 0,
            service_armed: false,
        };
        // Session 0: the blocking mount face. Always clean, always
        // live — the local mount is not an adversary.
        let _ = s.create_session();
        s
    }

    /// Creates a session, rolling its persona from the adversary rates
    /// (session 0 and plans without adversaries roll nothing).
    fn create_session(&mut self) -> u32 {
        let sid = self.next_sid;
        self.next_sid += 1;
        let persona = if sid == 0 {
            Persona::Clean
        } else if self.fault.as_mut().is_some_and(FaultPlan::roll_slow_reader) {
            Persona::SlowReader
        } else if self.fault.as_mut().is_some_and(FaultPlan::roll_half_open) {
            Persona::HalfOpen
        } else {
            Persona::Clean
        };
        if sid != 0 {
            self.stats.sessions_opened += 1;
        }
        self.sessions.insert(sid, SessionState::new(persona));
        sid
    }

    fn schedule(&mut self, delay: u64, ev: NetEvent) {
        let id = self.next_event_id;
        self.next_event_id += 1;
        self.events.push(Scheduled { due: self.clock + delay, id, ev });
    }

    fn service_jitter(&mut self) -> u64 {
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) % SERVICE_JITTER
    }

    /// Runs one frame through the fault plan (or delivers it intact).
    fn network(&mut self, frame: Vec<u8>) -> Vec<Delivery> {
        match self.fault.as_mut() {
            Some(plan) => plan.perturb(frame, &mut self.stats),
            None => vec![Delivery { bytes: frame, late: false }],
        }
    }

    /// Marks a session's inbound queue servable (idempotent; FIFO).
    fn mark_ready(&mut self, sid: u32) {
        if self.ready_in.insert(sid) {
            self.ready_q.push_back(sid);
        }
    }

    /// Submits one marshalled request on a session; returns its op tag.
    /// Rejects with `EAGAIN` — before any traffic, and without counting
    /// an op — when the session is gone or over its in-flight cap. The
    /// request frame and the first retry timer enter the event queue;
    /// nothing blocks.
    fn submit(&mut self, sid: u32, body: Vec<u8>) -> SysResult<u64> {
        let ok = match self.sessions.get(&sid) {
            Some(s) => s.link != LinkState::Gone && s.pending < INFLIGHT_CAP,
            None => false,
        };
        if !ok {
            self.stats.eagain_rejected += 1;
            return Err(Errno::EAGAIN);
        }
        self.stats.ops += 1;
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        self.inflight.insert(
            tag,
            InFlight { sid, body, attempts: 0, backoff: 1, budget: self.retry.budget, done: None },
        );
        if let Some(s) = self.sessions.get_mut(&sid) {
            s.pending += 1;
        }
        self.send_attempt(tag);
        Ok(tag)
    }

    /// Frames and transmits one attempt for `tag`, arming its retry
    /// timer. A down or gone link transmits nothing (the bytes are
    /// lost with the link), but the retry timer still arms so the op
    /// degrades to `ETIMEDOUT` instead of hanging.
    fn send_attempt(&mut self, tag: u64) {
        let (body, attempt, backoff, sid) = match self.inflight.get_mut(&tag) {
            Some(op) => {
                op.attempts += 1;
                (op.body.clone(), op.attempts, op.backoff, op.sid)
            }
            None => return,
        };
        let live = self.sessions.get(&sid).is_some_and(|s| s.link == LinkState::Live);
        if live {
            if attempt > 1 {
                self.stats.retries += 1;
            }
            let frame = encode_frame(tag, &body);
            self.stats.frames_sent += 1;
            self.stats.bytes_sent += frame.len() as u64;
            let deliveries = self.network(frame);
            for d in deliveries {
                let delay = TRANSIT_TICKS + if d.late { LATE_TICKS } else { 0 };
                self.schedule(delay, NetEvent::Request { sid, bytes: d.bytes });
            }
        }
        self.schedule(RETRY_RTT + backoff, NetEvent::Retry { tag });
    }

    /// Processes the next scheduled event, advancing the virtual clock,
    /// then serves any ready sessions within this tick's budget.
    /// Returns false when the queue is empty (the wire is idle).
    fn pump_one(&mut self, k: &mut K) -> bool {
        let Some(s) = self.events.pop() else {
            return false;
        };
        self.clock = self.clock.max(s.due);
        match s.ev {
            NetEvent::Request { sid, bytes } => self.on_request_arrive(k, sid, bytes),
            NetEvent::ReplyEnqueue { sid, bytes } => self.on_reply_enqueue(k, sid, bytes),
            NetEvent::Drain { sid } => self.on_drain(sid),
            NetEvent::Retry { tag } => self.on_retry(tag),
            NetEvent::Reconnect { sid } => self.do_reconnect(k, sid),
            NetEvent::Service => self.service_armed = false,
        }
        self.service_ready(k);
        true
    }

    /// Request bytes reach the server: adversary rolls (mid-frame cut,
    /// flood burst), then a cap-checked append to the session's inbound
    /// queue. Session 0 — the local mount — is exempt from adversarial
    /// client behaviour.
    fn on_request_arrive(&mut self, k: &mut K, sid: u32, mut bytes: Vec<u8>) {
        match self.sessions.get(&sid).map(|s| s.link) {
            Some(LinkState::Live) => {}
            _ => {
                self.stats.frames_shed += 1;
                return;
            }
        }
        if sid != 0 {
            let mid = self.fault.as_mut().is_some_and(FaultPlan::roll_mid_frame);
            if mid {
                if !bytes.is_empty() {
                    let keep = self
                        .fault
                        .as_mut()
                        .map(|p| p.cut_point(bytes.len()))
                        .unwrap_or(0);
                    bytes.truncate(keep);
                }
                self.stats.churn_events += 1;
                if let Some(sess) = self.sessions.get_mut(&sid) {
                    sess.link = LinkState::Down;
                    sess.drain_armed = false;
                }
                self.schedule(RECONNECT_TICKS, NetEvent::Reconnect { sid });
                if !bytes.is_empty() {
                    self.append_inbound(k, sid, bytes);
                }
                return;
            }
            let flood = self.fault.as_mut().is_some_and(FaultPlan::roll_flood);
            if flood {
                self.stats.floods += 1;
                for _ in 0..FLOOD_COPIES {
                    self.append_inbound(k, sid, bytes.clone());
                }
            }
        }
        self.append_inbound(k, sid, bytes);
    }

    /// Cap-checked append to a session's inbound queue; sheds on
    /// overflow and evicts a session that keeps shedding.
    fn append_inbound(&mut self, k: &mut K, sid: u32, bytes: Vec<u8>) {
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return;
        };
        if sess.link == LinkState::Gone {
            self.stats.frames_shed += 1;
            return;
        }
        if sess.inbound.len() + bytes.len() > self.in_cap {
            self.stats.frames_shed += 1;
            sess.sheds += 1;
            let evict = sess.sheds > EVICT_SHED_LIMIT && sid != 0;
            if evict {
                self.teardown(k, sid, false);
            }
            return;
        }
        if let Ok((_, body)) = decode_frame(&bytes) {
            if op_class(body.first().copied().unwrap_or(0)) == OpClass::Sequenced {
                sess.last_seq_frame = Some(bytes.clone());
            }
        }
        sess.inbound.extend_from_slice(&bytes);
        let hw = sess.inbound.len() as u64;
        self.stats.in_queue_hwm = self.stats.in_queue_hwm.max(hw);
        self.mark_ready(sid);
    }

    /// The readiness loop: pops ready sessions FIFO and serves at most
    /// [`SERVER_OPS_PER_TICK`] frames this tick; leftover readiness
    /// arms a `Service` rollover event for the next tick.
    fn service_ready(&mut self, k: &mut K) {
        if self.clock != self.served_tick {
            self.served_tick = self.clock;
            self.served_count = 0;
        }
        while self.served_count < SERVER_OPS_PER_TICK {
            let Some(sid) = self.ready_q.pop_front() else {
                break;
            };
            self.ready_in.remove(&sid);
            let frame = match self.sessions.get_mut(&sid) {
                Some(sess) if sess.link == LinkState::Live => {
                    extract_frame(&mut sess.inbound, &mut self.stats)
                }
                _ => None,
            };
            let Some((tag, body)) = frame else {
                continue;
            };
            self.served_count += 1;
            if self.sessions.get(&sid).is_some_and(|s| !s.inbound.is_empty()) {
                self.mark_ready(sid);
            }
            self.handle_request(k, sid, tag, body);
        }
        if !self.ready_q.is_empty() && !self.service_armed {
            self.service_armed = true;
            self.schedule(1, NetEvent::Service);
        }
    }

    /// Serves one extracted request frame: dedup, execute, track
    /// granted tokens, enqueue the (possibly perturbed) reply with
    /// service jitter.
    fn handle_request(&mut self, k: &mut K, sid: u32, tag: u64, body: Vec<u8>) {
        let op = body.first().copied().unwrap_or(0);
        let class = op_class(op);
        let cached = (class == OpClass::Sequenced)
            .then(|| self.dedup.iter().find(|(t, _)| *t == tag).map(|(_, b)| b.clone()))
            .flatten();
        let resp_body = match cached {
            Some(b) => {
                self.stats.dedup_hits += 1;
                b
            }
            None => {
                let resp = match serve(&mut *self.inner, &self.ioctl_table, k, &body) {
                    Ok(w) => {
                        let mut b = vec![0u8];
                        b.extend_from_slice(&w.0);
                        b
                    }
                    Err(e) => {
                        let mut b = vec![1u8];
                        b.extend_from_slice(&e.to_wire().to_le_bytes());
                        b
                    }
                };
                self.track_tokens(sid, op, &body, &resp);
                if class == OpClass::Sequenced {
                    self.dedup.push_back((tag, resp.clone()));
                    if self.dedup.len() > DEDUP_WINDOW {
                        self.dedup.pop_front();
                    }
                }
                resp
            }
        };
        let frame = encode_frame(tag, &resp_body);
        self.stats.bytes_received += frame.len() as u64;
        let jitter = self.service_jitter();
        let deliveries = self.network(frame);
        for d in deliveries {
            let delay = TRANSIT_TICKS + jitter + if d.late { LATE_TICKS } else { 0 };
            self.schedule(delay, NetEvent::ReplyEnqueue { sid, bytes: d.bytes });
        }
    }

    /// Records tokens the server granted (successful opens) and drops
    /// them again on successful closes, so eviction can release what
    /// the dead client held.
    fn track_tokens(&mut self, sid: u32, op: u8, req: &[u8], resp: &[u8]) {
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return;
        };
        match op {
            OP_OPEN => {
                let mut r = WireReader::new(req);
                let parsed = (|| -> WireResult<(Pid, NodeId, u64)> {
                    let _ = r.u8()?;
                    Ok((Pid(r.u32()?), NodeId(r.u64()?), r.u64()?))
                })();
                if let (Ok((cur, node, bits)), Some((0, rest))) = (parsed, resp.split_first()) {
                    let mut rr = WireReader::new(rest);
                    if let Ok(tok) = rr.u64() {
                        sess.open_tokens.push((cur, node, OpenToken(tok), bits));
                    }
                }
            }
            OP_CLOSE => {
                let mut r = WireReader::new(req);
                let parsed = (|| -> WireResult<(NodeId, OpenToken)> {
                    let _ = r.u8()?;
                    let _ = r.u32()?;
                    Ok((NodeId(r.u64()?), OpenToken(r.u64()?)))
                })();
                if let Ok((node, tok)) = parsed {
                    sess.open_tokens.retain(|(_, n, t, _)| !(*n == node && *t == tok));
                }
            }
            _ => {}
        }
    }

    /// Reply bytes reach a session's outbound queue (cap-checked; a
    /// dead link or a full queue sheds them) and the client end's drain
    /// is armed.
    fn on_reply_enqueue(&mut self, k: &mut K, sid: u32, bytes: Vec<u8>) {
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return;
        };
        if sess.link != LinkState::Live {
            self.stats.frames_shed += 1;
            return;
        }
        if sess.outbound.len() + bytes.len() > self.out_cap {
            self.stats.frames_shed += 1;
            sess.sheds += 1;
            let evict = sess.sheds > EVICT_SHED_LIMIT && sid != 0;
            if evict {
                self.teardown(k, sid, false);
            }
            return;
        }
        sess.outbound.extend_from_slice(&bytes);
        let hw = sess.outbound.len() as u64;
        self.stats.out_queue_hwm = self.stats.out_queue_hwm.max(hw);
        let arm = sess.persona.drain_rate() > 0 && !sess.drain_armed;
        if arm {
            sess.drain_armed = true;
            self.schedule(TRANSIT_TICKS, NetEvent::Drain { sid });
        }
    }

    /// The client end reads: moves up to the persona's drain rate from
    /// the outbound queue into the receive buffer and completes any
    /// whole frames found there.
    fn on_drain(&mut self, sid: u32) {
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return;
        };
        if sess.link != LinkState::Live {
            sess.drain_armed = false;
            return;
        }
        let rate = sess.persona.drain_rate();
        let n = rate.min(sess.outbound.len());
        let moved: Vec<u8> = sess.outbound.drain(..n).collect();
        sess.rx.extend_from_slice(&moved);
        let rearm = !sess.outbound.is_empty() && rate > 0;
        sess.drain_armed = rearm;
        let mut done = Vec::new();
        while let Some((tag, body)) = extract_frame(&mut sess.rx, &mut self.stats) {
            done.push((tag, body));
        }
        for (tag, body) in done {
            self.complete_op(tag, &body);
        }
        if rearm {
            self.schedule(1, NetEvent::Drain { sid });
        }
    }

    /// Client side: demultiplex a completion into its in-flight slot.
    fn complete_op(&mut self, tag: u64, body: &[u8]) {
        let Some(op) = self.inflight.get_mut(&tag) else {
            return; // stale tag: the op already completed and was taken
        };
        if op.done.is_some() {
            return; // duplicate reply: first one won
        }
        op.done = Some(match body.split_first() {
            Some((0, rest)) => Ok(rest.to_vec()),
            Some((1, rest)) => {
                let mut r = WireReader::new(rest);
                match r.u32() {
                    Ok(code) => Err(Errno::from_wire(code)),
                    Err(_) => Err(Errno::EIO),
                }
            }
            _ => Err(Errno::EIO),
        });
        let sid = op.sid;
        if let Some(s) = self.sessions.get_mut(&sid) {
            s.pending = s.pending.saturating_sub(1);
        }
    }

    /// Retry timer: resend with doubled (capped) backoff, or degrade the
    /// op to a clean `ETIMEDOUT` once attempts or budget run out.
    fn on_retry(&mut self, tag: u64) {
        let (attempts, backoff, budget) = match self.inflight.get(&tag) {
            Some(op) if op.done.is_none() => (op.attempts, op.backoff, op.budget),
            _ => return,
        };
        if attempts >= self.retry.max_attempts.max(1) || budget < backoff {
            if let Some(op) = self.inflight.get_mut(&tag) {
                op.done = Some(Err(Errno::ETIMEDOUT));
                let sid = op.sid;
                if let Some(s) = self.sessions.get_mut(&sid) {
                    s.pending = s.pending.saturating_sub(1);
                }
            }
            self.stats.timeouts += 1;
            return;
        }
        if let Some(op) = self.inflight.get_mut(&tag) {
            op.budget -= op.backoff;
            op.backoff = (op.backoff * 2).min(self.retry.backoff_cap.max(1));
        }
        self.send_attempt(tag);
    }

    /// Drops a session's link mid-stream (client-driven churn): queues
    /// clear, in-flight ops ride their retry timers.
    fn do_disconnect(&mut self, sid: u32) {
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return;
        };
        if sess.link != LinkState::Live {
            return;
        }
        sess.link = LinkState::Down;
        sess.inbound.clear();
        sess.outbound.clear();
        sess.rx.clear();
        sess.drain_armed = false;
        self.stats.churn_events += 1;
    }

    /// Heals a down link; may replay the session's last sequenced frame
    /// with its stale tag (the dedup window must answer it, not
    /// re-execute it).
    fn do_reconnect(&mut self, k: &mut K, sid: u32) {
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return;
        };
        if sess.link != LinkState::Down {
            return;
        }
        sess.link = LinkState::Live;
        let arm = !sess.outbound.is_empty() && sess.persona.drain_rate() > 0 && !sess.drain_armed;
        if arm {
            sess.drain_armed = true;
        }
        let replay = sess.last_seq_frame.clone();
        self.stats.churn_events += 1;
        if arm {
            self.schedule(TRANSIT_TICKS, NetEvent::Drain { sid });
        }
        let stale = self.fault.as_mut().is_some_and(FaultPlan::roll_stale_replay);
        if stale {
            if let Some(frame) = replay {
                self.stats.stale_replays += 1;
                self.append_inbound(k, sid, frame);
            }
        }
    }

    /// Terminal teardown (eviction or hangup): the link goes `Gone`,
    /// queues drop, every pending op on the session resolves to a typed
    /// `EAGAIN` (no future ever hangs), and the tokens the server
    /// granted this client are closed on its behalf — run-on-last-close
    /// fires exactly as if the client had closed cleanly.
    fn teardown(&mut self, k: &mut K, sid: u32, churn: bool) {
        let Some(sess) = self.sessions.get_mut(&sid) else {
            return;
        };
        if sess.link == LinkState::Gone {
            return;
        }
        sess.link = LinkState::Gone;
        sess.inbound.clear();
        sess.outbound.clear();
        sess.rx.clear();
        sess.drain_armed = false;
        sess.pending = 0;
        let tokens = std::mem::take(&mut sess.open_tokens);
        for op in self.inflight.values_mut() {
            if op.sid == sid && op.done.is_none() {
                op.done = Some(Err(Errno::EAGAIN));
            }
        }
        if churn {
            self.stats.churn_events += 1;
        } else {
            self.stats.sessions_evicted += 1;
        }
        for (cur, node, tok, bits) in tokens {
            self.inner.close(k, cur, node, tok, OFlags::from_bits(bits));
        }
    }

    /// Removes and returns the completion for `tag` if it has arrived.
    fn try_take(&mut self, tag: u64) -> Option<SysResult<Vec<u8>>> {
        if self.inflight.get(&tag)?.done.is_some() {
            return self.inflight.remove(&tag).and_then(|op| op.done);
        }
        None
    }

    /// Pumps events until `tag` completes; the blocking face of the
    /// session. Other in-flight ops make progress underneath — their
    /// completions land in their own slots while we wait for ours.
    fn wait_raw(&mut self, k: &mut K, tag: u64) -> SysResult<Vec<u8>> {
        loop {
            if let Some(done) = self.try_take(tag) {
                return done;
            }
            if !self.inflight.contains_key(&tag) {
                return Err(Errno::EIO); // taken twice: caller bug
            }
            if !self.pump_one(k) {
                return Err(Errno::EIO); // queue dry with op pending: impossible
            }
        }
    }

    /// The ioctl gate shared by the blocking and pipelined faces:
    /// wire-stats introspection is answered locally, unknown or
    /// oversized requests are refused before any traffic.
    fn ioctl_gate(&mut self, req_no: u32, arg_len: usize) -> Result<IoctlWireSpec, IoctlGate> {
        if req_no == PIOCWIRESTATS {
            return Err(IoctlGate::Local(IoctlReply::Done(self.stats.to_bytes())));
        }
        let spec = match self.ioctl_table.as_ref().and_then(|t| t(req_no)) {
            Some(s) => s,
            None => {
                self.stats.unsupported_ioctls += 1;
                return Err(IoctlGate::Refused(Errno::ENOTSUP));
            }
        };
        if arg_len > spec.in_len {
            self.stats.unsupported_ioctls += 1;
            return Err(IoctlGate::Refused(Errno::ENOTSUP));
        }
        Ok(spec)
    }

    /// Deep-copies every piece of wire state *except* the served file
    /// system and the ioctl table (both are reconstructed from the
    /// `SimConfig` at restore time) into a [`WireSnapshot`].
    fn capture_state(&self) -> WireSnapshot {
        WireSnapshot {
            fault: self.fault.clone(),
            retry: self.retry,
            clock: self.clock,
            next_tag: self.next_tag,
            next_event_id: self.next_event_id,
            events: self.events.iter().cloned().collect(),
            inflight: self.inflight.iter().map(|(t, op)| (*t, op.clone())).collect(),
            dedup: self.dedup.iter().cloned().collect(),
            jitter: self.jitter,
            stats: self.stats,
            sessions: self.sessions.iter().map(|(s, st)| (*s, st.clone())).collect(),
            next_sid: self.next_sid,
            ready_q: self.ready_q.iter().copied().collect(),
            in_cap: self.in_cap,
            out_cap: self.out_cap,
            served_tick: self.served_tick,
            served_count: self.served_count,
            service_armed: self.service_armed,
        }
    }

    /// Overwrites every captured field from a [`WireSnapshot`], leaving
    /// the served file system and the ioctl table as constructed.
    fn restore_state(&mut self, snap: &WireSnapshot) {
        self.fault = snap.fault.clone();
        self.retry = snap.retry;
        self.clock = snap.clock;
        self.next_tag = snap.next_tag;
        self.next_event_id = snap.next_event_id;
        self.events = snap.events.iter().cloned().collect();
        self.inflight = snap.inflight.iter().map(|(t, op)| (*t, op.clone())).collect();
        self.dedup = snap.dedup.iter().cloned().collect();
        self.jitter = snap.jitter;
        self.stats = snap.stats;
        self.sessions = snap.sessions.iter().map(|(s, st)| (*s, st.clone())).collect();
        self.next_sid = snap.next_sid;
        self.ready_q = snap.ready_q.iter().copied().collect();
        self.ready_in = snap.ready_q.iter().copied().collect();
        self.in_cap = snap.in_cap;
        self.out_cap = snap.out_cap;
        self.served_tick = snap.served_tick;
        self.served_count = snap.served_count;
        self.service_armed = snap.service_armed;
    }
}

/// A deep copy of one [`WireSession`]'s state — clock, tags, event
/// queue, in-flight ops, dedup window, per-session queues and personas,
/// fault-plan RNG position, counters — *without* the served file system
/// or the ioctl table (those are rebuilt from the `SimConfig`). Banked
/// into a recording `Snap` so remote-mount configs resume from a
/// snapshot instead of rebuilding from tick zero.
#[derive(Clone)]
pub struct WireSnapshot {
    fault: Option<FaultPlan>,
    retry: RetryPolicy,
    clock: u64,
    next_tag: u64,
    next_event_id: u64,
    events: Vec<Scheduled>,
    inflight: Vec<(u64, InFlight)>,
    dedup: Vec<(u64, Vec<u8>)>,
    jitter: u64,
    stats: WireStats,
    sessions: Vec<(u32, SessionState)>,
    next_sid: u32,
    ready_q: Vec<u32>,
    in_cap: usize,
    out_cap: usize,
    served_tick: u64,
    served_count: u32,
    service_armed: bool,
}

impl std::fmt::Debug for WireSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireSnapshot")
            .field("clock", &self.clock)
            .field("next_tag", &self.next_tag)
            .field("events", &self.events.len())
            .field("inflight", &self.inflight.len())
            .field("sessions", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

/// Outcome of the client-side ioctl gate when no wire op is needed.
enum IoctlGate {
    Local(IoctlReply),
    Refused(Errno),
}

fn lock<K>(session: &Arc<Mutex<WireSession<K>>>) -> MutexGuard<'_, WireSession<K>> {
    session.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A pending remote operation: a poll-based state machine resolved by
/// [`RemoteClient::try_complete`] or [`RemoteClient::wait`]. No async
/// runtime — completion is driven by pumping the session's event queue.
/// A future whose session is evicted or hung up mid-flight resolves to
/// `EAGAIN`; it never hangs.
pub struct OpFuture<T> {
    tag: Option<u64>,
    ready: Option<SysResult<T>>,
    parse: fn(&[u8]) -> SysResult<T>,
}

impl<T> OpFuture<T> {
    fn pending(tag: u64, parse: fn(&[u8]) -> SysResult<T>) -> OpFuture<T> {
        OpFuture { tag: Some(tag), ready: None, parse }
    }

    /// An operation resolved without touching the wire (local ioctl
    /// answers, client-side refusals, over-cap submissions).
    fn resolved(r: SysResult<T>) -> OpFuture<T> {
        OpFuture { tag: None, ready: Some(r), parse: parse_never }
    }

    /// The op tag this future is waiting on (`None` once resolved
    /// locally).
    pub fn tag(&self) -> Option<u64> {
        self.tag
    }
}

/// One client handle onto a shared [`WireSession`], bound to one
/// session. `clone` shares the session (tags stay server-unique);
/// [`RemoteFs::client`] mints a handle with a *new* session — its own
/// bounded queues, persona and link state. Ops submitted through any
/// handle share the server's in-flight table, fault plan and dedup
/// window, so concurrent handles' traffic interleaves on the wire
/// exactly as concurrent processes' would.
pub struct RemoteClient<K> {
    session: Arc<Mutex<WireSession<K>>>,
    sid: u32,
}

impl<K> Clone for RemoteClient<K> {
    fn clone(&self) -> RemoteClient<K> {
        RemoteClient { session: Arc::clone(&self.session), sid: self.sid }
    }
}

impl<K> RemoteClient<K> {
    fn start<T>(&self, req: Wire, parse: fn(&[u8]) -> SysResult<T>) -> OpFuture<T> {
        match lock(&self.session).submit(self.sid, req.0) {
            Ok(tag) => OpFuture::pending(tag, parse),
            Err(e) => OpFuture::resolved(Err(e)),
        }
    }

    /// Pipelined lookup.
    pub fn submit_lookup(&self, cur: Pid, dir: NodeId, name: &str) -> OpFuture<NodeId> {
        self.start(Wire::new(OP_LOOKUP).u32(cur.0).u64(dir.0).str(name), parse_node)
    }

    /// Pipelined getattr.
    pub fn submit_getattr(&self, node: NodeId) -> OpFuture<Metadata> {
        self.start(Wire::new(OP_GETATTR).u64(node.0), parse_metadata)
    }

    /// Pipelined readdir.
    pub fn submit_readdir(&self, cur: Pid, dir: NodeId) -> OpFuture<Vec<DirEntry>> {
        self.start(Wire::new(OP_READDIR).u32(cur.0).u64(dir.0), parse_dirents)
    }

    /// Pipelined open (sequenced: exactly-once under retransmission).
    pub fn submit_open(
        &self,
        cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> OpFuture<OpenToken> {
        let req = cred_wire(Wire::new(OP_OPEN).u32(cur.0).u64(node.0).u64(flags.to_bits()), cred);
        self.start(req, parse_token)
    }

    /// Pipelined close (sequenced).
    pub fn submit_close(
        &self,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        flags: OFlags,
    ) -> OpFuture<()> {
        let req = Wire::new(OP_CLOSE).u32(cur.0).u64(node.0).u64(token.0).u64(flags.to_bits());
        self.start(req, parse_unit)
    }

    /// Pipelined read.
    pub fn submit_read(
        &self,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        len: usize,
    ) -> OpFuture<RemoteRead> {
        let req =
            Wire::new(OP_READ).u32(cur.0).u64(node.0).u64(token.0).u64(off).u64(len as u64);
        self.start(req, parse_read)
    }

    /// Pipelined write (sequenced).
    pub fn submit_write(
        &self,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> OpFuture<IoReply> {
        let req = Wire::new(OP_WRITE).u32(cur.0).u64(node.0).u64(token.0).u64(off).bytes(data);
        self.start(req, parse_write)
    }

    /// Pipelined ioctl (sequenced). Wire-stats introspection and
    /// table-refused requests resolve immediately without traffic.
    pub fn submit_ioctl(
        &self,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        req_no: u32,
        arg: &[u8],
    ) -> OpFuture<IoctlReply> {
        let mut s = lock(&self.session);
        match s.ioctl_gate(req_no, arg.len()) {
            Ok(_) => {
                let req =
                    Wire::new(OP_IOCTL).u32(cur.0).u64(node.0).u64(token.0).u32(req_no).bytes(arg);
                match s.submit(self.sid, req.0) {
                    Ok(tag) => OpFuture::pending(tag, parse_ioctl),
                    Err(e) => OpFuture::resolved(Err(e)),
                }
            }
            Err(IoctlGate::Local(reply)) => OpFuture::resolved(Ok(reply)),
            Err(IoctlGate::Refused(e)) => OpFuture::resolved(Err(e)),
        }
    }

    /// Pipelined poll of a remote descriptor's readiness.
    pub fn submit_poll(&self, node: NodeId, token: OpenToken) -> OpFuture<PollStatus> {
        self.start(Wire::new(OP_POLL).u64(node.0).u64(token.0), parse_poll)
    }

    /// Processes one scheduled wire event; false when the wire is idle.
    pub fn pump(&self, k: &mut K) -> bool {
        lock(&self.session).pump_one(k)
    }

    /// Polls a future without blocking: `Some` exactly once, when the
    /// completion has been demultiplexed into its slot.
    pub fn try_complete<T>(&self, fut: &mut OpFuture<T>) -> Option<SysResult<T>> {
        if let Some(r) = fut.ready.take() {
            fut.tag = None;
            return Some(r);
        }
        let tag = fut.tag?;
        let raw = lock(&self.session).try_take(tag)?;
        fut.tag = None;
        Some(raw.and_then(|b| (fut.parse)(&b)))
    }

    /// Blocks (pumping the wire) until the future completes. Other
    /// handles' in-flight ops progress underneath. An evicted session's
    /// futures resolve to `EAGAIN` — this never hangs.
    pub fn wait<T>(&self, k: &mut K, mut fut: OpFuture<T>) -> SysResult<T> {
        if let Some(r) = fut.ready.take() {
            return r;
        }
        let tag = match fut.tag {
            Some(t) => t,
            None => return Err(Errno::EIO),
        };
        let raw = lock(&self.session).wait_raw(k, tag)?;
        (fut.parse)(&raw)
    }

    /// Ops submitted but not yet completed, across all sessions.
    pub fn in_flight(&self) -> usize {
        let s = lock(&self.session);
        s.inflight.values().filter(|op| op.done.is_none()).count()
    }

    /// The session's virtual clock, in ticks.
    pub fn ticks(&self) -> u64 {
        lock(&self.session).clock
    }

    /// A snapshot of the session's traffic counters.
    pub fn stats(&self) -> WireStats {
        lock(&self.session).stats
    }

    /// Resets the session's traffic counters.
    pub fn reset_stats(&self) {
        lock(&self.session).stats = WireStats::default();
    }

    /// This handle's session id (0 is the blocking mount face).
    pub fn session_id(&self) -> u32 {
        self.sid
    }

    /// Readiness of this handle's session, in `poll(2)` terms:
    /// readable when a completed op is waiting to be taken, writable
    /// when the link is live and under its in-flight cap, hangup once
    /// the session is evicted or hung up.
    pub fn poll_session(&self) -> PollStatus {
        let s = lock(&self.session);
        let sess = s.sessions.get(&self.sid);
        let hangup = sess.is_none_or(|x| x.link == LinkState::Gone);
        let writable =
            sess.is_some_and(|x| x.link == LinkState::Live && x.pending < INFLIGHT_CAP);
        let readable = s
            .inflight
            .values()
            .any(|op| op.sid == self.sid && op.done.is_some());
        PollStatus { readable, writable, hangup }
    }

    /// Drops this session's link mid-stream (connection churn): queued
    /// bytes are lost, in-flight ops ride their retry timers, and the
    /// link stays down until [`RemoteClient::reconnect`].
    pub fn disconnect(&self) {
        lock(&self.session).do_disconnect(self.sid);
    }

    /// Heals a dropped link. Under an adversarial plan the reconnect
    /// may replay the session's last sequenced frame with a stale tag —
    /// the dedup window answers it without re-executing.
    pub fn reconnect(&self, k: &mut K) {
        lock(&self.session).do_reconnect(k, self.sid);
    }

    /// Hangs the session up for good: pending ops resolve to `EAGAIN`,
    /// server-side tokens it held are closed on its behalf, and further
    /// submissions are rejected.
    pub fn hangup(&self, k: &mut K) {
        lock(&self.session).teardown(k, self.sid, true);
    }

    /// Injects raw bytes into this session's inbound queue, as a
    /// misbehaving peer would, then lets the readiness loop serve them.
    /// Robustness tests use this to deliver forged, truncated and
    /// replayed frames.
    pub fn inject_inbound(&self, k: &mut K, bytes: &[u8]) {
        let mut s = lock(&self.session);
        s.append_inbound(k, self.sid, bytes.to_vec());
        s.service_ready(k);
    }
}

/// Declarative wire configuration: everything the ad-hoc
/// [`RemoteFs::with_faults`] / [`RemoteFs::with_retry_policy`] /
/// [`RemoteFs::with_queue_caps`] builders used to set, as one plain
/// value. A `SimConfig` mount plan carries one of these so a recorded
/// run can reconstruct its wire byte-for-byte; apply it with
/// [`RemoteFs::with_config`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireConfig {
    /// Seed for the fault plan (unused when `faults` is `None`).
    pub fault_seed: u64,
    /// Network-fault rates; `None` means a perfect wire.
    pub faults: Option<FaultRates>,
    /// Adversarial-client persona rates (only meaningful with `faults`).
    pub adversary: Option<AdversaryRates>,
    /// Client retry discipline override.
    pub retry: Option<RetryPolicy>,
    /// Per-session queue caps `(in, out)` in bytes.
    pub queue_caps: Option<(usize, usize)>,
}

impl WireConfig {
    /// A perfect wire: no faults, default retry and caps.
    pub fn clean() -> WireConfig {
        WireConfig::default()
    }

    /// A lossy wire under `rates`, scheduled from `seed`.
    pub fn faulty(seed: u64, rates: FaultRates) -> WireConfig {
        WireConfig { fault_seed: seed, faults: Some(rates), ..WireConfig::default() }
    }

    /// Adds adversarial-client personas to a faulty wire.
    pub fn adversarial(mut self, adv: AdversaryRates) -> WireConfig {
        self.adversary = Some(adv);
        self
    }

    /// Overrides the retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> WireConfig {
        self.retry = Some(policy);
        self
    }

    /// Overrides the per-session queue caps (bytes per direction).
    pub fn queue_caps(mut self, in_cap: usize, out_cap: usize) -> WireConfig {
        self.queue_caps = Some((in_cap, out_cap));
        self
    }

    /// Folds every field into a stable little-endian byte encoding (the
    /// recording digest covers the construction config).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.fault_seed.to_le_bytes());
        match self.faults {
            None => out.push(0),
            Some(r) => {
                out.push(1);
                for v in [r.drop, r.truncate, r.bitflip, r.duplicate, r.delay] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        match self.adversary {
            None => out.push(0),
            Some(a) => {
                out.push(1);
                for v in [a.slow_reader, a.half_open, a.flood, a.mid_frame, a.stale_replay] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        match self.retry {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.max_attempts.to_le_bytes());
                out.extend_from_slice(&p.backoff_cap.to_le_bytes());
                out.extend_from_slice(&p.budget.to_le_bytes());
            }
        }
        match self.queue_caps {
            None => out.push(0),
            Some((i, o)) => {
                out.push(1);
                out.extend_from_slice(&(i as u64).to_le_bytes());
                out.extend_from_slice(&(o as u64).to_le_bytes());
            }
        }
    }

    /// Parses the [`WireConfig::encode`] byte layout back into a config,
    /// advancing `r` past it. The inverse the on-disk recording loader
    /// needs; any truncation or malformed presence byte is a
    /// [`WireError`], never a panic or a half-parsed config.
    pub fn decode(r: &mut WireReader<'_>) -> Result<WireConfig, WireError> {
        let fault_seed = r.u64()?;
        let presence = |r: &mut WireReader<'_>| -> Result<bool, WireError> {
            match r.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(WireError::Malformed),
            }
        };
        let faults = if presence(r)? {
            Some(FaultRates {
                drop: r.u16()?,
                truncate: r.u16()?,
                bitflip: r.u16()?,
                duplicate: r.u16()?,
                delay: r.u16()?,
            })
        } else {
            None
        };
        let adversary = if presence(r)? {
            Some(AdversaryRates {
                slow_reader: r.u16()?,
                half_open: r.u16()?,
                flood: r.u16()?,
                mid_frame: r.u16()?,
                stale_replay: r.u16()?,
            })
        } else {
            None
        };
        let retry = if presence(r)? {
            Some(RetryPolicy { max_attempts: r.u32()?, backoff_cap: r.u64()?, budget: r.u64()? })
        } else {
            None
        };
        let queue_caps = if presence(r)? {
            Some((r.u64()? as usize, r.u64()? as usize))
        } else {
            None
        };
        Ok(WireConfig { fault_seed, faults, adversary, retry, queue_caps })
    }
}

/// A file system accessed across a simulated (and possibly lossy) wire:
/// the blocking [`FileSystem`] face of a [`WireSession`] (always
/// session 0). Mint pipelined handles with [`RemoteFs::client`] before
/// (or after) mounting — each gets its own session on this server.
pub struct RemoteFs<K> {
    session: Arc<Mutex<WireSession<K>>>,
}

impl<K> RemoteFs<K> {
    /// Wraps `inner` over a perfect wire. Without an ioctl table, every
    /// ioctl is refused.
    pub fn new(inner: Box<dyn FileSystem<K> + Send>) -> RemoteFs<K> {
        RemoteFs { session: Arc::new(Mutex::new(WireSession::new(inner))) }
    }

    /// Supplies the per-request ioctl wire table.
    pub fn with_ioctl_table(self, table: IoctlTable) -> RemoteFs<K> {
        lock(&self.session).ioctl_table = Some(table);
        self
    }

    /// Makes the wire lossy under a deterministic fault plan. The
    /// service-jitter stream reseeds from the plan so one seed fixes the
    /// whole schedule — faults, personas and reorderings.
    pub fn with_faults(self, plan: FaultPlan) -> RemoteFs<K> {
        {
            let mut s = lock(&self.session);
            s.jitter = plan.state ^ 0xA5A5_5A5A_0DDC_0DE5;
            s.fault = Some(plan);
        }
        self
    }

    /// Overrides the client retry discipline.
    pub fn with_retry_policy(self, policy: RetryPolicy) -> RemoteFs<K> {
        lock(&self.session).retry = policy;
        self
    }

    /// Overrides the per-session queue caps (bytes per direction).
    /// Smaller caps shed sooner; see [`DEFAULT_QUEUE_CAP`].
    pub fn with_queue_caps(self, in_cap: usize, out_cap: usize) -> RemoteFs<K> {
        {
            let mut s = lock(&self.session);
            s.in_cap = in_cap.max(1);
            s.out_cap = out_cap.max(1);
        }
        self
    }

    /// Applies a declarative [`WireConfig`] — the construction-time
    /// path `SimConfig` mount plans use instead of chaining the
    /// individual builders.
    pub fn with_config(self, cfg: &WireConfig) -> RemoteFs<K> {
        let mut fs = self;
        if let Some(rates) = cfg.faults {
            let mut plan = FaultPlan::new(cfg.fault_seed, rates);
            if let Some(adv) = cfg.adversary {
                plan = plan.with_adversary(adv);
            }
            fs = fs.with_faults(plan);
        }
        if let Some(policy) = cfg.retry {
            fs = fs.with_retry_policy(policy);
        }
        if let Some((i, o)) = cfg.queue_caps {
            fs = fs.with_queue_caps(i, o);
        }
        fs
    }

    /// Mints a pipelined client handle with its own session (bounded
    /// queues, persona, link state) on this server.
    pub fn client(&self) -> RemoteClient<K> {
        let sid = lock(&self.session).create_session();
        RemoteClient { session: Arc::clone(&self.session), sid }
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> WireStats {
        lock(&self.session).stats
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&mut self) {
        lock(&self.session).stats = WireStats::default();
    }

    /// The session's virtual clock, in ticks.
    pub fn ticks(&self) -> u64 {
        lock(&self.session).clock
    }

    /// Captures the wire state (see [`WireSnapshot`]).
    pub fn snapshot_wire(&self) -> WireSnapshot {
        lock(&self.session).capture_state()
    }

    /// Restores previously captured wire state over this session's
    /// served file system and ioctl table.
    pub fn restore_wire(&self, snap: &WireSnapshot) {
        lock(&self.session).restore_state(snap);
    }

    /// Blocking submit-and-wait: one op end to end through the shared
    /// session (always session 0, the mount face).
    fn call<T>(
        &self,
        k: &mut K,
        req: Wire,
        parse: fn(&[u8]) -> SysResult<T>,
    ) -> SysResult<T> {
        let mut s = lock(&self.session);
        let tag = s.submit(0, req.0)?;
        let raw = s.wait_raw(k, tag)?;
        parse(&raw)
    }
}

impl<K> FileSystem<K> for RemoteFs<K> {
    fn type_name(&self) -> &'static str {
        "remote"
    }

    fn wire_snapshot(&self) -> Option<WireSnapshot> {
        Some(self.snapshot_wire())
    }

    fn wire_restore(&mut self, snap: &WireSnapshot) -> bool {
        self.restore_wire(snap);
        true
    }

    fn root(&self) -> NodeId {
        lock(&self.session).inner.root()
    }

    fn lookup(&mut self, k: &mut K, cur: Pid, dir: NodeId, name: &str) -> SysResult<NodeId> {
        let req = Wire::new(OP_LOOKUP).u32(cur.0).u64(dir.0).str(name);
        self.call(k, req, parse_node)
    }

    fn getattr(&mut self, k: &mut K, node: NodeId) -> SysResult<Metadata> {
        let req = Wire::new(OP_GETATTR).u64(node.0);
        self.call(k, req, parse_metadata)
    }

    fn readdir(&mut self, k: &mut K, cur: Pid, dir: NodeId) -> SysResult<Vec<DirEntry>> {
        let req = Wire::new(OP_READDIR).u32(cur.0).u64(dir.0);
        self.call(k, req, parse_dirents)
    }

    fn open(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> SysResult<OpenToken> {
        let req = cred_wire(Wire::new(OP_OPEN).u32(cur.0).u64(node.0).u64(flags.to_bits()), cred);
        self.call(k, req, parse_token)
    }

    fn close(&mut self, k: &mut K, cur: Pid, node: NodeId, token: OpenToken, flags: OFlags) {
        // `close` has no error path to surface, but it still mutates
        // server state (writer accounting, exclusive-use release), so it
        // crosses as a sequenced op; a lost close is recorded in
        // `stats.timeouts`.
        let req = Wire::new(OP_CLOSE).u32(cur.0).u64(node.0).u64(token.0).u64(flags.to_bits());
        let _ = self.call(k, req, parse_unit);
    }

    fn read(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        buf: &mut [u8],
    ) -> SysResult<IoReply> {
        // A read marshals generically: the request is (node, off, len) and
        // the response is the data — sizes and direction are manifest.
        let req = Wire::new(OP_READ)
            .u32(cur.0)
            .u64(node.0)
            .u64(token.0)
            .u64(off)
            .u64(buf.len() as u64);
        match self.call(k, req, parse_read)? {
            RemoteRead::Data(data) => {
                let n = data.len().min(buf.len());
                buf[..n].copy_from_slice(&data[..n]);
                Ok(IoReply::Done(n))
            }
            RemoteRead::Block => Ok(IoReply::Block),
        }
    }

    fn write(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> SysResult<IoReply> {
        let req = Wire::new(OP_WRITE).u32(cur.0).u64(node.0).u64(token.0).u64(off).bytes(data);
        self.call(k, req, parse_write)
    }

    fn ioctl(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        req_no: u32,
        arg: &[u8],
    ) -> SysResult<IoctlReply> {
        // Wire introspection is answered locally — the counters being
        // asked about live on this side of the wire. An ioctl can only
        // cross if someone taught the shim this request's operand sizes
        // and directions.
        let mut s = lock(&self.session);
        match s.ioctl_gate(req_no, arg.len()) {
            Ok(_) => {
                let req =
                    Wire::new(OP_IOCTL).u32(cur.0).u64(node.0).u64(token.0).u32(req_no).bytes(arg);
                let tag = s.submit(0, req.0)?;
                let raw = s.wait_raw(k, tag)?;
                parse_ioctl(&raw)
            }
            Err(IoctlGate::Local(reply)) => Ok(reply),
            Err(IoctlGate::Refused(e)) => Err(e),
        }
    }

    fn poll(&mut self, k: &mut K, node: NodeId, token: OpenToken) -> SysResult<PollStatus> {
        let req = Wire::new(OP_POLL).u64(node.0).u64(token.0);
        self.call(k, req, parse_poll)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;

    const P: Pid = Pid(1);

    fn remote_memfs() -> RemoteFs<()> {
        let mut fs = MemFs::<()>::new();
        fs.install("/bin/tool", 0o755, 0, 0, b"payload-bytes".to_vec());
        RemoteFs::new(Box::new(fs))
    }

    fn faulty_memfs(seed: u64, rates: FaultRates) -> RemoteFs<()> {
        let mut fs = MemFs::<()>::new();
        fs.install("/bin/tool", 0o755, 0, 0, b"payload-bytes".to_vec());
        RemoteFs::new(Box::new(fs)).with_faults(FaultPlan::new(seed, rates))
    }

    /// Forces a persona on a client's session (tests drive personas
    /// directly instead of fishing for the right seed).
    fn force_persona(c: &RemoteClient<()>, p: Persona) {
        let mut s = lock(&c.session);
        s.sessions.get_mut(&c.sid).expect("session").persona = p;
    }

    #[test]
    fn lookup_and_read_work_across_the_wire() {
        let mut r = remote_memfs();
        let cred = Cred::superuser();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let tok = r.open(&mut (), P, tool, OFlags::rdonly(), &cred).expect("open");
        let mut buf = [0u8; 7];
        let reply = r.read(&mut (), P, tool, tok, 0, &mut buf).expect("read");
        assert_eq!(reply, IoReply::Done(7));
        assert_eq!(&buf, b"payload");
        assert!(r.stats().ops >= 4);
        assert!(r.stats().bytes_sent > 0);
        assert!(r.stats().bytes_received > 0);
        assert!(r.ticks() > 0, "virtual time advanced");
    }

    #[test]
    fn errors_cross_the_wire() {
        let mut r = remote_memfs();
        assert_eq!(r.lookup(&mut (), P, NodeId(0), "missing"), Err(Errno::ENOENT));
    }

    #[test]
    fn ioctl_without_table_is_refused() {
        let mut r = remote_memfs();
        let err = r
            .ioctl(&mut (), P, NodeId(0), OpenToken(0), 0x1234, &[])
            .expect_err("no table");
        assert_eq!(err, Errno::ENOTSUP);
        assert_eq!(r.stats().unsupported_ioctls, 1);
        assert_eq!(r.stats().ops, 0, "the request never even reaches the wire");
    }

    #[test]
    fn ioctl_with_table_crosses_but_is_bounded() {
        // memfs rejects ioctl with ENOTTY; we verify the round trip
        // carries the error back, which demands a wire spec.
        let table: IoctlTable =
            Box::new(|req| (req == 7).then_some(IoctlWireSpec { in_len: 8, out_len: 16 }));
        let mut r = RemoteFs::new(Box::new(MemFs::<()>::new())).with_ioctl_table(table);
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 7, &[0; 8]).expect_err("enotty");
        assert_eq!(err, Errno::ENOTTY);
        assert_eq!(r.stats().ops, 1);
        // Oversized operand refused client-side.
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 7, &[0; 64]).expect_err("too big");
        assert_eq!(err, Errno::ENOTSUP);
        // Unknown request refused.
        let err = r.ioctl(&mut (), P, NodeId(0), OpenToken(0), 8, &[]).expect_err("unknown");
        assert_eq!(err, Errno::ENOTSUP);
    }

    #[test]
    fn write_marshals_payload() {
        let mut r = remote_memfs();
        let cred = Cred::superuser();
        let f = {
            let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
            r.lookup(&mut (), P, bin, "tool").expect("tool")
        };
        let tok = r.open(&mut (), P, f, OFlags::rdwr(), &cred).expect("open");
        r.reset_stats();
        let reply = r.write(&mut (), P, f, tok, 0, b"NEW").expect("write");
        assert_eq!(reply, IoReply::Done(3));
        assert!(r.stats().bytes_sent as usize >= 3 + 1 + 4, "payload travelled");
        let mut buf = [0u8; 3];
        r.read(&mut (), P, f, tok, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"NEW");
    }

    #[test]
    fn readdir_marshals_entries() {
        let mut r = remote_memfs();
        let entries = r.readdir(&mut (), P, NodeId(0)).expect("readdir");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "bin");
    }

    #[test]
    fn getattr_roundtrip() {
        let mut r = remote_memfs();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let meta = r.getattr(&mut (), tool).expect("attr");
        assert_eq!(meta.mode, 0o755);
        assert_eq!(meta.size, 13);
        assert_eq!(meta.kind, VnodeKind::Regular);
    }

    #[test]
    fn frames_reject_damage_without_misparsing() {
        let frame = encode_frame(42, b"important bytes");
        assert_eq!(decode_frame(&frame), Ok((42, b"important bytes".to_vec())));
        // Any single bit flip is caught by the CRC (or the magic/length
        // checks before it).
        for bit in 0..frame.len() * 8 {
            let mut dam = frame.clone();
            dam[bit / 8] ^= 1 << (bit % 8);
            assert!(decode_frame(&dam).is_err(), "bit {bit} slipped through");
        }
        // Every truncation point is caught.
        for keep in 0..frame.len() {
            assert!(decode_frame(&frame[..keep]).is_err(), "cut at {keep} slipped through");
        }
    }

    #[test]
    fn wirestats_roundtrip() {
        let s = WireStats {
            ops: 7,
            drops: 3,
            dedup_hits: 11,
            timeouts: 1,
            sessions_evicted: 2,
            frames_shed: 5,
            stale_replays: 4,
            ..Default::default()
        };
        let b = s.to_bytes();
        assert_eq!(b.len(), WireStats::WIRE_LEN);
        assert_eq!(WireStats::from_bytes(&b), Some(s));
        assert_eq!(WireStats::from_bytes(&b[..10]), None);
    }

    #[test]
    fn faulted_reads_recover_and_stay_correct() {
        // 10% of frames suffer each fault class; every operation must
        // still produce the exact fault-free answer (retries are free for
        // idempotent ops) or a clean timeout.
        let mut r = faulty_memfs(0xFEED, FaultRates::uniform(100));
        let cred = Cred::superuser();
        let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
        let tok = r.open(&mut (), P, tool, OFlags::rdonly(), &cred).expect("open");
        for _ in 0..200 {
            let mut buf = [0u8; 13];
            match r.read(&mut (), P, tool, tok, 0, &mut buf) {
                Ok(IoReply::Done(13)) => assert_eq!(&buf, b"payload-bytes"),
                Ok(other) => panic!("unexpected reply {other:?}"),
                Err(e) => assert_eq!(e, Errno::ETIMEDOUT, "only clean timeouts allowed"),
            }
        }
        assert!(r.stats().faults_injected() > 0, "faults were actually exercised");
        assert!(r.stats().retries > 0, "recovery actually retried");
    }

    #[test]
    fn dead_wire_degrades_to_etimedout() {
        let rates = FaultRates { drop: 1000, ..FaultRates::default() };
        let mut r = faulty_memfs(1, rates);
        let err = r.lookup(&mut (), P, NodeId(0), "bin").expect_err("nothing arrives");
        assert_eq!(err, Errno::ETIMEDOUT);
        assert_eq!(r.stats().timeouts, 1);
        assert!(r.stats().retries > 0);
        assert_eq!(r.stats().drops as u32, r.stats().frames_sent as u32);
    }

    #[test]
    fn duplicated_writes_apply_exactly_once() {
        // Every frame is duplicated; the dedup window must keep the
        // second execution from happening.
        let rates = FaultRates { duplicate: 1000, ..FaultRates::default() };
        let mut fs = MemFs::<()>::new();
        fs.install("/log", 0o644, 0, 0, Vec::new());
        let mut r = RemoteFs::new(Box::new(fs)).with_faults(FaultPlan::new(9, rates));
        let cred = Cred::superuser();
        let log = r.lookup(&mut (), P, NodeId(0), "log").expect("log");
        let tok = r.open(&mut (), P, log, OFlags::rdwr(), &cred).expect("open");
        r.write(&mut (), P, log, tok, 0, b"once").expect("write");
        assert!(r.stats().dedup_hits > 0, "the duplicate hit the window");
        let mut buf = [0u8; 8];
        let n = match r.read(&mut (), P, log, tok, 0, &mut buf).expect("read") {
            IoReply::Done(n) => n,
            IoReply::Block => panic!("memfs never blocks"),
        };
        assert_eq!(&buf[..n], b"once", "the write applied exactly once");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let mut r = faulty_memfs(0xD15EA5E, FaultRates::uniform(120));
            let mut outcomes = Vec::new();
            for i in 0..50 {
                let name = if i % 2 == 0 { "bin" } else { "missing" };
                outcomes.push(r.lookup(&mut (), P, NodeId(0), name));
            }
            (outcomes, r.stats(), r.ticks())
        };
        let (a, sa, ta) = run();
        let (b, sb, tb) = run();
        assert_eq!(a, b, "per-op outcomes replay exactly");
        assert_eq!(sa, sb, "fault and retry counters replay exactly");
        assert_eq!(ta, tb, "the virtual clock replays exactly");
        assert!(sa.faults_injected() > 0);
    }

    #[test]
    fn wirestats_ioctl_is_answered_locally() {
        let mut r = remote_memfs();
        let _ = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let ops_before = r.stats().ops;
        let reply = r
            .ioctl(&mut (), P, NodeId(0), OpenToken(0), PIOCWIRESTATS, &[])
            .expect("wirestats");
        let bytes = match reply {
            IoctlReply::Done(b) => b,
            IoctlReply::Block => panic!("never blocks"),
        };
        let stats = WireStats::from_bytes(&bytes).expect("decode");
        assert_eq!(stats.ops, ops_before, "answered without another wire op");
        assert_eq!(r.stats().ops, ops_before, "no traffic was generated");
        assert_eq!(r.stats().unsupported_ioctls, 0, "not counted as a refusal");
    }

    #[test]
    fn pipelined_ops_demux_out_of_order() {
        // Submit a burst of reads before waiting on any of them: every
        // future must resolve to its own op's answer even though the
        // service jitter completes them out of submission order.
        let r = remote_memfs();
        let c = r.client();
        let bin = c.wait(&mut (), c.submit_lookup(P, NodeId(0), "bin")).expect("bin");
        let tool = c.wait(&mut (), c.submit_lookup(P, bin, "tool")).expect("tool");
        let cred = Cred::superuser();
        let tok = c.wait(&mut (), c.submit_open(P, tool, OFlags::rdonly(), &cred)).expect("open");
        let mut futs: Vec<(u64, OpFuture<RemoteRead>)> = (0..8u64)
            .map(|off| (off, c.submit_read(P, tool, tok, off, 4)))
            .collect();
        assert_eq!(c.in_flight(), 8, "all eight reads are on the wire at once");
        // Poll-based completion: pump until every future resolves.
        let mut got = 0;
        while got < futs.len() {
            c.pump(&mut ());
            for (off, fut) in futs.iter_mut() {
                if let Some(done) = c.try_complete(fut) {
                    let want: Vec<u8> =
                        b"payload-bytes"[*off as usize..].iter().copied().take(4).collect();
                    assert_eq!(done.expect("read"), RemoteRead::Data(want), "offset {off}");
                    got += 1;
                }
            }
        }
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn two_handles_share_one_wire() {
        // Two client handles interleave sequenced writes on one session;
        // both complete, and the server saw one dedup window and one tag
        // space (no cross-handle collisions).
        let mut fs = MemFs::<()>::new();
        fs.install("/a", 0o644, 0, 0, Vec::new());
        fs.install("/b", 0o644, 0, 0, Vec::new());
        let r = RemoteFs::new(Box::new(fs));
        let c1 = r.client();
        let c2 = c1.clone();
        let cred = Cred::superuser();
        let a = c1.wait(&mut (), c1.submit_lookup(P, NodeId(0), "a")).expect("a");
        let b = c2.wait(&mut (), c2.submit_lookup(P, NodeId(0), "b")).expect("b");
        let ta = c1.wait(&mut (), c1.submit_open(P, a, OFlags::rdwr(), &cred)).expect("open a");
        let tb = c2.wait(&mut (), c2.submit_open(P, b, OFlags::rdwr(), &cred)).expect("open b");
        // Interleave: both writes in flight before either completes.
        let mut wa = c1.submit_write(P, a, ta, 0, b"from-one");
        let mut wb = c2.submit_write(P, b, tb, 0, b"from-two");
        assert!(wa.tag() != wb.tag(), "tags are session-unique across handles");
        let (mut ra, mut rb) = (None, None);
        while ra.is_none() || rb.is_none() {
            c1.pump(&mut ());
            if ra.is_none() {
                ra = c1.try_complete(&mut wa);
            }
            if rb.is_none() {
                rb = c2.try_complete(&mut wb);
            }
        }
        assert_eq!(ra.unwrap().expect("write a"), IoReply::Done(8));
        assert_eq!(rb.unwrap().expect("write b"), IoReply::Done(8));
        let mut buf = [0u8; 8];
        let mut rfs = r;
        rfs.read(&mut (), P, a, ta, 0, &mut buf).expect("read a");
        assert_eq!(&buf, b"from-one");
        rfs.read(&mut (), P, b, tb, 0, &mut buf).expect("read b");
        assert_eq!(&buf, b"from-two");
    }

    #[test]
    fn pipelining_beats_serial_on_a_lossy_wire() {
        // Same seed, same fault rates, same 24 reads: issuing them all
        // before waiting must finish in strictly fewer virtual ticks
        // than submit-wait-submit-wait, because retransmission backoffs
        // overlap instead of summing.
        let rates = FaultRates::uniform(80);
        let run = |pipelined: bool| -> u64 {
            let mut r = faulty_memfs(0xBEEF, rates);
            let cred = Cred::superuser();
            let c = r.client();
            let bin = r.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
            let tool = r.lookup(&mut (), P, bin, "tool").expect("tool");
            let tok = r.open(&mut (), P, tool, OFlags::rdonly(), &cred).expect("open");
            if pipelined {
                let futs: Vec<OpFuture<RemoteRead>> =
                    (0..24).map(|_| c.submit_read(P, tool, tok, 0, 13)).collect();
                for fut in futs {
                    let _ = c.wait(&mut (), fut);
                }
            } else {
                for _ in 0..24 {
                    let fut = c.submit_read(P, tool, tok, 0, 13);
                    let _ = c.wait(&mut (), fut);
                }
            }
            c.ticks()
        };
        let serial = run(false);
        let pipelined = run(true);
        assert!(
            pipelined < serial,
            "pipelined ({pipelined} ticks) must beat serial ({serial} ticks)"
        );
    }

    // ---- the readiness-loop server and the adversarial clients ----

    #[test]
    fn truncated_stream_resyncs_to_next_frame() {
        // A frame cut mid-body followed by an intact frame: extraction
        // must skip the corpse and return the good frame, not wait
        // forever for bytes that never come.
        let mut stats = WireStats::default();
        let cut = encode_frame(7, b"this frame was cut off");
        let good = encode_frame(8, b"good");
        let mut buf = Vec::new();
        buf.extend_from_slice(&cut[..FRAME_HEADER + 5]);
        buf.extend_from_slice(&good);
        let got = extract_frame(&mut buf, &mut stats).expect("resync finds the good frame");
        assert_eq!(got, (8, b"good".to_vec()));
        assert!(stats.resync_bytes > 0, "junk was skipped, not kept");
        assert!(extract_frame(&mut buf, &mut stats).is_none());
        // Pure junk drains without yielding anything.
        let mut junk: Vec<u8> = (0u8..200).map(|b| b ^ 0x5A).collect();
        assert!(extract_frame(&mut junk, &mut stats).is_none());
        assert!(junk.len() <= 3, "junk does not accumulate");
    }

    #[test]
    fn split_delivery_waits_for_the_tail() {
        // A frame arriving in two chunks is not junk: the head waits
        // buffered until the tail arrives.
        let mut stats = WireStats::default();
        let frame = encode_frame(9, b"split across arrivals");
        let mut buf = frame[..10].to_vec();
        assert!(extract_frame(&mut buf, &mut stats).is_none());
        buf.extend_from_slice(&frame[10..]);
        let got = extract_frame(&mut buf, &mut stats).expect("whole now");
        assert_eq!(got, (9, b"split across arrivals".to_vec()));
        assert_eq!(stats.checksum_rejects, 0);
    }

    #[test]
    fn inflight_cap_rejects_with_eagain() {
        let r = remote_memfs();
        let c = r.client();
        let mut futs: Vec<OpFuture<NodeId>> = (0..INFLIGHT_CAP)
            .map(|_| c.submit_lookup(P, NodeId(0), "bin"))
            .collect();
        let mut over = c.submit_lookup(P, NodeId(0), "bin");
        assert_eq!(
            c.try_complete(&mut over),
            Some(Err(Errno::EAGAIN)),
            "the over-cap submit is rejected before any traffic"
        );
        assert_eq!(c.stats().eagain_rejected, 1);
        assert_eq!(c.stats().ops, u64::from(INFLIGHT_CAP), "rejected ops are not counted");
        for fut in futs.drain(..) {
            assert!(c.wait(&mut (), fut).is_ok(), "capped ops all complete");
        }
        // Capacity is back.
        let again = c.submit_lookup(P, NodeId(0), "bin");
        assert!(c.wait(&mut (), again).is_ok());
    }

    #[test]
    fn half_open_session_is_evicted_and_futures_resolve_eagain() {
        // A half-open client (writes, never reads) behind a tiny reply
        // queue: every reply is shed, the shed counter passes the
        // eviction limit, and the pending futures resolve to EAGAIN
        // instead of hanging wait() forever.
        let r = remote_memfs().with_queue_caps(4096, 8);
        let c = r.client();
        force_persona(&c, Persona::HalfOpen);
        let f1 = c.submit_lookup(P, NodeId(0), "bin");
        let f2 = c.submit_lookup(P, NodeId(0), "bin");
        assert_eq!(c.wait(&mut (), f1), Err(Errno::EAGAIN), "no hang, typed error");
        assert_eq!(c.wait(&mut (), f2), Err(Errno::EAGAIN));
        let st = c.stats();
        assert_eq!(st.sessions_evicted, 1, "the session was evicted");
        assert!(st.frames_shed > u64::from(EVICT_SHED_LIMIT));
        assert!(st.out_queue_hwm <= 8, "the cap held");
        // The session is gone for good: submits bounce immediately.
        let mut f3 = c.submit_lookup(P, NodeId(0), "bin");
        assert_eq!(c.try_complete(&mut f3), Some(Err(Errno::EAGAIN)));
        let p = c.poll_session();
        assert!(p.hangup && !p.writable);
        // Session 0 (the blocking mount face) is never evicted: its
        // replies shed under the same tiny cap, but it degrades to a
        // clean timeout instead of an eviction.
        let mut rfs = r;
        assert_eq!(rfs.lookup(&mut (), P, NodeId(0), "bin"), Err(Errno::ETIMEDOUT));
        assert_eq!(rfs.stats().sessions_evicted, 1, "still just the one eviction");
    }

    #[test]
    fn hangup_resolves_pending_futures_and_rejects_submits() {
        let r = remote_memfs();
        let c = r.client();
        let fut = c.submit_lookup(P, NodeId(0), "bin");
        c.hangup(&mut ());
        assert_eq!(c.wait(&mut (), fut), Err(Errno::EAGAIN), "teardown resolved it");
        let mut after = c.submit_lookup(P, NodeId(0), "bin");
        assert_eq!(c.try_complete(&mut after), Some(Err(Errno::EAGAIN)));
        assert!(c.poll_session().hangup);
        assert!(c.stats().churn_events > 0);
        // Other sessions are untouched.
        let c2 = r.client();
        assert!(c2.wait(&mut (), c2.submit_lookup(P, NodeId(0), "bin")).is_ok());
    }

    #[test]
    fn slow_reader_completes_but_pays_in_ticks() {
        let run = |persona: Persona| -> u64 {
            let r = remote_memfs();
            let c = r.client();
            force_persona(&c, persona);
            let fut = c.submit_lookup(P, NodeId(0), "bin");
            assert!(c.wait(&mut (), fut).is_ok());
            c.ticks()
        };
        let clean = run(Persona::Clean);
        let slow = run(Persona::SlowReader);
        assert!(
            slow > clean,
            "one byte per tick ({slow}) must be slower than a clean drain ({clean})"
        );
    }

    #[test]
    fn disconnect_and_reconnect_churn_recovers() {
        let r = remote_memfs();
        let c = r.client();
        let fut = c.submit_lookup(P, NodeId(0), "bin");
        c.disconnect();
        assert!(!c.poll_session().writable, "down links are not writable");
        // Pump a few events while down: retries transmit nothing.
        for _ in 0..4 {
            c.pump(&mut ());
        }
        c.reconnect(&mut ());
        let got = c.wait(&mut (), fut).expect("retry after reconnect completes the op");
        assert!(got.0 > 0);
        assert!(c.stats().churn_events >= 2, "both transitions counted");
    }

    #[test]
    fn mid_frame_cuts_recover_exactly_once_with_stale_replays() {
        // Heavy mid-frame disconnects plus guaranteed stale replays on
        // a sequenced write stream: the write must land exactly once no
        // matter how many cut/reconnect/replay rounds it takes.
        let adv = AdversaryRates { mid_frame: 400, stale_replay: 1000, ..Default::default() };
        let mut fs = MemFs::<()>::new();
        fs.install("/log", 0o644, 0, 0, Vec::new());
        let r = RemoteFs::new(Box::new(fs))
            .with_faults(FaultPlan::new(0xC0FFEE, FaultRates::default()).with_adversary(adv));
        let c = r.client();
        let cred = Cred::superuser();
        let log = c.wait(&mut (), c.submit_lookup(P, NodeId(0), "log")).expect("log");
        let tok = c
            .wait(&mut (), c.submit_open(P, log, OFlags::rdwr(), &cred))
            .expect("open");
        for i in 0..8u64 {
            let fut = c.submit_write(P, log, tok, i, &[b'a' + i as u8]);
            match c.wait(&mut (), fut) {
                Ok(IoReply::Done(1)) | Err(Errno::ETIMEDOUT) => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let st = c.stats();
        assert!(st.churn_events > 0, "mid-frame cuts actually happened");
        // Replays only fire when a reconnect rolls one and a sequenced
        // frame was delivered before the cut; with these rates some
        // must have fired, and every one must hit the dedup window.
        assert!(st.stale_replays > 0, "stale replays actually happened");
        assert!(st.dedup_hits >= st.stale_replays, "replays answered from the window");
        // Exactly-once: each offset holds its byte or was never written
        // (timed out); never a doubled effect.
        let mut rfs = r;
        let mut buf = [0u8; 8];
        if let Ok(IoReply::Done(n)) = rfs.read(&mut (), P, log, tok, 0, &mut buf) {
            for (i, got) in buf[..n].iter().enumerate() {
                assert!(
                    *got == 0 || *got == b'a' + i as u8,
                    "offset {i} holds {got}: a write landed twice or corrupted"
                );
            }
        }
    }

    #[test]
    fn frame_floods_are_absorbed_by_dedup_and_caps() {
        let adv = AdversaryRates { flood: 1000, ..Default::default() };
        let mut fs = MemFs::<()>::new();
        fs.install("/log", 0o644, 0, 0, Vec::new());
        let r = RemoteFs::new(Box::new(fs))
            .with_faults(FaultPlan::new(0xF100D, FaultRates::default()).with_adversary(adv));
        let c = r.client();
        let cred = Cred::superuser();
        let log = c.wait(&mut (), c.submit_lookup(P, NodeId(0), "log")).expect("log");
        let tok = c
            .wait(&mut (), c.submit_open(P, log, OFlags::rdwr(), &cred))
            .expect("open");
        let fut = c.submit_write(P, log, tok, 0, b"once");
        assert_eq!(c.wait(&mut (), fut), Ok(IoReply::Done(4)));
        let st = c.stats();
        assert!(st.floods > 0, "floods actually fired");
        assert!(st.dedup_hits > 0, "extra copies answered from the window");
        assert!(st.in_queue_hwm <= DEFAULT_QUEUE_CAP as u64, "caps never exceeded");
        let mut rfs = r;
        let mut buf = [0u8; 8];
        let n = match rfs.read(&mut (), P, log, tok, 0, &mut buf).expect("read") {
            IoReply::Done(n) => n,
            IoReply::Block => panic!("memfs never blocks"),
        };
        assert_eq!(&buf[..n], b"once", "the flood applied exactly once");
    }

    #[test]
    fn adversarial_schedules_replay_identically() {
        let run = || {
            let plan = FaultPlan::new(0x00AD_5EED, FaultRates::uniform(60))
                .with_adversary(AdversaryRates::uniform(120));
            let r = remote_memfs().with_faults(plan).with_queue_caps(2048, 2048);
            let mut outcomes = Vec::new();
            for round in 0..6 {
                let c = r.client();
                for i in 0..4 {
                    let name = if (round + i) % 3 == 0 { "missing" } else { "bin" };
                    let fut = c.submit_lookup(P, NodeId(0), name);
                    outcomes.push(c.wait(&mut (), fut));
                }
            }
            (outcomes, r.stats(), r.ticks())
        };
        let (a, sa, ta) = run();
        let (b, sb, tb) = run();
        assert_eq!(a, b, "per-op outcomes replay exactly");
        assert_eq!(sa, sb, "server and adversary counters replay exactly");
        assert_eq!(ta, tb, "the virtual clock replays exactly");
        assert_eq!(sa.sessions_opened, 6);
    }

    #[test]
    fn no_session_starves_another_under_load() {
        // One chatty client floods its own session with work; a second
        // client's single op must still complete within the round-robin
        // budget, not behind the entire backlog.
        let r = remote_memfs();
        let chatty = r.client();
        let quiet = r.client();
        let futs: Vec<OpFuture<NodeId>> = (0..u64::from(INFLIGHT_CAP))
            .map(|_| chatty.submit_lookup(P, NodeId(0), "bin"))
            .collect();
        let q = quiet.submit_lookup(P, NodeId(0), "bin");
        let quiet_done = {
            let mut fut = q;
            loop {
                if let Some(res) = quiet.try_complete(&mut fut) {
                    break res;
                }
                quiet.pump(&mut ());
            }
        };
        assert!(quiet_done.is_ok(), "the quiet session completed");
        let quiet_ticks = quiet.ticks();
        for fut in futs {
            assert!(chatty.wait(&mut (), fut).is_ok());
        }
        let all_ticks = chatty.ticks();
        assert!(
            quiet_ticks < all_ticks,
            "quiet op ({quiet_ticks}) finished before the backlog drained ({all_ticks})"
        );
    }

    #[test]
    fn injected_junk_has_no_side_effects() {
        let mut fs = MemFs::<()>::new();
        fs.install("/log", 0o644, 0, 0, b"untouched".to_vec());
        let r = RemoteFs::new(Box::new(fs));
        let c = r.client();
        // Raw garbage, a truncated forged write, a bad-CRC frame.
        c.inject_inbound(&mut (), b"not a frame at all");
        let forged = encode_frame(999, &marshal_write(P, NodeId(1), OpenToken(0), 0, b"EVIL"));
        c.inject_inbound(&mut (), &forged[..forged.len() - 3]);
        let mut bad = encode_frame(1000, &marshal_write(P, NodeId(1), OpenToken(0), 0, b"EVIL"));
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        c.inject_inbound(&mut (), &bad);
        while c.pump(&mut ()) {}
        let mut rfs = r;
        let log = rfs.lookup(&mut (), P, NodeId(0), "log").expect("log");
        let cred = Cred::superuser();
        let tok = rfs.open(&mut (), P, log, OFlags::rdonly(), &cred).expect("open");
        let mut buf = [0u8; 9];
        rfs.read(&mut (), P, log, tok, 0, &mut buf).expect("read");
        assert_eq!(&buf, b"untouched", "no forged write ever applied");
    }
}
