//! An in-memory conventional file system.
//!
//! Stands in for the paper's disk file systems: it holds the simulated
//! userland's executables and data files and demonstrates that `/proc`
//! coexists with ordinary fstypes behind the same vnode interface. It is
//! generic over the kernel context `K` and never touches it.

use crate::cred::Cred;
use crate::errno::{Errno, SysResult};
use crate::fs::{FileSystem, IoReply, OFlags, OpenToken};
use crate::node::{DirEntry, Metadata, NodeId, Pid, VnodeKind};
use std::collections::BTreeMap;
use std::marker::PhantomData;

#[derive(Clone, Debug)]
enum Content {
    File(Vec<u8>),
    Dir(BTreeMap<String, u64>),
}

#[derive(Clone, Debug)]
struct MemNode {
    mode: u16,
    uid: u32,
    gid: u32,
    mtime: u64,
    nlink: u32,
    content: Content,
}

/// The in-memory file system. Node 0 is the root directory.
#[derive(Debug)]
pub struct MemFs<K> {
    nodes: Vec<MemNode>,
    _kernel: PhantomData<fn(&mut K)>,
}

impl<K> Default for MemFs<K> {
    fn default() -> Self {
        MemFs::new()
    }
}

// A manual impl: the kernel marker `K` is phantom, so cloning the file
// system must not require `K: Clone` (the derive would add that bound).
impl<K> Clone for MemFs<K> {
    fn clone(&self) -> Self {
        MemFs { nodes: self.nodes.clone(), _kernel: PhantomData }
    }
}

impl<K> MemFs<K> {
    /// Creates a file system containing only an empty root directory
    /// owned by root, mode 0755.
    pub fn new() -> MemFs<K> {
        MemFs {
            nodes: vec![MemNode {
                mode: 0o755,
                uid: 0,
                gid: 0,
                mtime: 0,
                nlink: 2,
                content: Content::Dir(BTreeMap::new()),
            }],
            _kernel: PhantomData,
        }
    }

    fn node(&self, id: NodeId) -> SysResult<&MemNode> {
        self.nodes.get(id.0 as usize).ok_or(Errno::ENOENT)
    }

    fn node_mut(&mut self, id: NodeId) -> SysResult<&mut MemNode> {
        self.nodes.get_mut(id.0 as usize).ok_or(Errno::ENOENT)
    }

    fn dir_children(&self, id: NodeId) -> SysResult<&BTreeMap<String, u64>> {
        match &self.node(id)?.content {
            Content::Dir(c) => Ok(c),
            Content::File(_) => Err(Errno::ENOTDIR),
        }
    }

    fn alloc(&mut self, node: MemNode) -> NodeId {
        self.nodes.push(node);
        NodeId((self.nodes.len() - 1) as u64)
    }

    /// Builder: creates intermediate directories (mode 0755, root-owned)
    /// along `parts` and returns the final directory's id. A plain file
    /// sitting where a directory is needed is shadowed by a fresh
    /// directory, so the walk always descends through directories.
    pub fn mkdir_p(&mut self, parts: &[&str]) -> NodeId {
        let mut dir = NodeId(0);
        for part in parts {
            let existing = self
                .dir_children(dir)
                .ok()
                .and_then(|c| c.get(*part).copied())
                .filter(|&id| self.dir_children(NodeId(id)).is_ok());
            dir = match existing {
                Some(id) => NodeId(id),
                None => {
                    let id = self.alloc(MemNode {
                        mode: 0o755,
                        uid: 0,
                        gid: 0,
                        mtime: 0,
                        nlink: 2,
                        content: Content::Dir(BTreeMap::new()),
                    });
                    if let Ok(parent) = self.node_mut(dir) {
                        if let Content::Dir(c) = &mut parent.content {
                            c.insert(part.to_string(), id.0);
                        }
                    }
                    id
                }
            };
        }
        dir
    }

    /// Builder: installs a file at absolute path `path` (intermediate
    /// directories are created), with the given mode/owner and content.
    /// Replaces any existing file. Returns the node id.
    pub fn install(
        &mut self,
        path: &str,
        mode: u16,
        uid: u32,
        gid: u32,
        content: Vec<u8>,
    ) -> NodeId {
        let parts = crate::path::components(path).unwrap_or_default();
        let Some((name, dirs)) = parts.split_last() else {
            panic!("install needs a non-root absolute path, got {path:?}");
        };
        let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
        let dir = self.mkdir_p(&dir_refs);
        let id = self.alloc(MemNode {
            mode,
            uid,
            gid,
            mtime: 0,
            nlink: 1,
            content: Content::File(content),
        });
        if let Ok(parent) = self.node_mut(dir) {
            if let Content::Dir(c) = &mut parent.content {
                c.insert(name.clone(), id.0);
            }
        }
        id
    }

    /// Builder: changes a node's mode bits (e.g. making `/tmp` world
    /// writable).
    pub fn set_mode(&mut self, id: NodeId, mode: u16) {
        if let Ok(n) = self.node_mut(id) {
            n.mode = mode & 0o7777;
        }
    }

    /// Whole-file read by node id, used by the kernel's exec path.
    pub fn file_bytes(&self, id: NodeId) -> SysResult<&[u8]> {
        match &self.node(id)?.content {
            Content::File(b) => Ok(b),
            Content::Dir(_) => Err(Errno::EISDIR),
        }
    }
}

impl<K> FileSystem<K> for MemFs<K> {
    fn type_name(&self) -> &'static str {
        "memfs"
    }

    fn root(&self) -> NodeId {
        NodeId(0)
    }

    fn lookup(&mut self, _k: &mut K, _cur: Pid, dir: NodeId, name: &str) -> SysResult<NodeId> {
        self.dir_children(dir)?.get(name).map(|&id| NodeId(id)).ok_or(Errno::ENOENT)
    }

    fn getattr(&mut self, _k: &mut K, node: NodeId) -> SysResult<Metadata> {
        let n = self.node(node)?;
        Ok(Metadata {
            kind: match n.content {
                Content::File(_) => VnodeKind::Regular,
                Content::Dir(_) => VnodeKind::Directory,
            },
            mode: n.mode,
            uid: n.uid,
            gid: n.gid,
            size: match &n.content {
                Content::File(b) => b.len() as u64,
                Content::Dir(c) => c.len() as u64,
            },
            nlink: n.nlink,
            mtime: n.mtime,
        })
    }

    fn readdir(&mut self, _k: &mut K, _cur: Pid, dir: NodeId) -> SysResult<Vec<DirEntry>> {
        Ok(self
            .dir_children(dir)?
            .iter()
            .map(|(name, &id)| DirEntry { name: name.clone(), node: NodeId(id) })
            .collect())
    }

    fn create(
        &mut self,
        _k: &mut K,
        _cur: Pid,
        dir: NodeId,
        name: &str,
        mode: u16,
        cred: &Cred,
    ) -> SysResult<NodeId> {
        let d = self.node(dir)?;
        if !cred.file_access(d.mode, d.uid, d.gid, 2) {
            return Err(Errno::EACCES);
        }
        if self.dir_children(dir)?.contains_key(name) {
            return Err(Errno::EEXIST);
        }
        let id = self.alloc(MemNode {
            mode: mode & 0o7777,
            uid: cred.euid,
            gid: cred.egid,
            mtime: 0,
            nlink: 1,
            content: Content::File(Vec::new()),
        });
        match &mut self.node_mut(dir)?.content {
            Content::Dir(c) => {
                c.insert(name.to_string(), id.0);
            }
            Content::File(_) => return Err(Errno::ENOTDIR),
        }
        Ok(id)
    }

    fn mkdir(
        &mut self,
        _k: &mut K,
        _cur: Pid,
        dir: NodeId,
        name: &str,
        mode: u16,
        cred: &Cred,
    ) -> SysResult<NodeId> {
        let d = self.node(dir)?;
        if !cred.file_access(d.mode, d.uid, d.gid, 2) {
            return Err(Errno::EACCES);
        }
        if self.dir_children(dir)?.contains_key(name) {
            return Err(Errno::EEXIST);
        }
        let id = self.alloc(MemNode {
            mode: mode & 0o7777,
            uid: cred.euid,
            gid: cred.egid,
            mtime: 0,
            nlink: 2,
            content: Content::Dir(BTreeMap::new()),
        });
        match &mut self.node_mut(dir)?.content {
            Content::Dir(c) => {
                c.insert(name.to_string(), id.0);
            }
            Content::File(_) => return Err(Errno::ENOTDIR),
        }
        Ok(id)
    }

    fn unlink(&mut self, _k: &mut K, _cur: Pid, dir: NodeId, name: &str) -> SysResult<()> {
        let target = *self.dir_children(dir)?.get(name).ok_or(Errno::ENOENT)?;
        if let Content::Dir(c) = &self.node(NodeId(target))?.content {
            if !c.is_empty() {
                return Err(Errno::ENOTEMPTY);
            }
        }
        match &mut self.node_mut(dir)?.content {
            Content::Dir(c) => {
                c.remove(name);
            }
            Content::File(_) => return Err(Errno::ENOTDIR),
        }
        // Node storage is not compacted; the slot simply becomes
        // unreachable. Fine for a simulation-lifetime file system.
        Ok(())
    }

    fn open(
        &mut self,
        _k: &mut K,
        _cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> SysResult<OpenToken> {
        let n = self.node(node)?;
        let mut want = 0u16;
        if flags.read {
            want |= 4;
        }
        if flags.write {
            want |= 2;
        }
        if !cred.file_access(n.mode, n.uid, n.gid, want) {
            return Err(Errno::EACCES);
        }
        if flags.write {
            if let Content::Dir(_) = n.content {
                return Err(Errno::EISDIR);
            }
        }
        if flags.trunc && flags.write {
            if let Content::File(b) = &mut self.node_mut(node)?.content {
                b.clear();
            }
        }
        Ok(OpenToken(0))
    }

    fn close(&mut self, _k: &mut K, _cur: Pid, _node: NodeId, _token: OpenToken, _flags: OFlags) {}

    fn read(
        &mut self,
        _k: &mut K,
        _cur: Pid,
        node: NodeId,
        _token: OpenToken,
        off: u64,
        buf: &mut [u8],
    ) -> SysResult<IoReply> {
        match &self.node(node)?.content {
            Content::File(b) => {
                let off = off as usize;
                if off >= b.len() {
                    return Ok(IoReply::Done(0));
                }
                let n = buf.len().min(b.len() - off);
                buf[..n].copy_from_slice(&b[off..off + n]);
                Ok(IoReply::Done(n))
            }
            Content::Dir(_) => Err(Errno::EISDIR),
        }
    }

    fn write(
        &mut self,
        _k: &mut K,
        _cur: Pid,
        node: NodeId,
        _token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> SysResult<IoReply> {
        match &mut self.node_mut(node)?.content {
            Content::File(b) => {
                let off = off as usize;
                if b.len() < off + data.len() {
                    b.resize(off + data.len(), 0);
                }
                b[off..off + data.len()].copy_from_slice(data);
                Ok(IoReply::Done(data.len()))
            }
            Content::Dir(_) => Err(Errno::EISDIR),
        }
    }

    fn truncate(&mut self, _k: &mut K, node: NodeId, len: u64) -> SysResult<()> {
        match &mut self.node_mut(node)?.content {
            Content::File(b) => {
                b.resize(len as usize, 0);
                Ok(())
            }
            Content::Dir(_) => Err(Errno::EISDIR),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    type Fs = MemFs<()>;
    const P: Pid = Pid(1);

    fn open_rw(fs: &mut Fs, node: NodeId, cred: &Cred) -> SysResult<OpenToken> {
        fs.open(&mut (), P, node, OFlags::rdwr(), cred)
    }

    #[test]
    fn install_and_lookup() {
        let mut fs = Fs::new();
        let id = fs.install("/bin/spin", 0o755, 0, 0, b"code".to_vec());
        let bin = fs.lookup(&mut (), P, NodeId(0), "bin").expect("bin");
        let spin = fs.lookup(&mut (), P, bin, "spin").expect("spin");
        assert_eq!(spin, id);
        assert_eq!(fs.file_bytes(id).expect("bytes"), b"code");
        let meta = fs.getattr(&mut (), spin).expect("attr");
        assert_eq!(meta.mode, 0o755);
        assert_eq!(meta.size, 4);
        assert_eq!(meta.kind, VnodeKind::Regular);
    }

    #[test]
    fn read_write_through_trait() {
        let mut fs = Fs::new();
        let cred = Cred::superuser();
        let id = fs.install("/tmp/f", 0o644, 0, 0, vec![]);
        let tok = open_rw(&mut fs, id, &cred).expect("open");
        assert_eq!(
            fs.write(&mut (), P, id, tok, 0, b"hello world").expect("write"),
            IoReply::Done(11)
        );
        let mut buf = [0u8; 5];
        assert_eq!(fs.read(&mut (), P, id, tok, 6, &mut buf).expect("read"), IoReply::Done(5));
        assert_eq!(&buf, b"world");
        // Read past EOF.
        assert_eq!(fs.read(&mut (), P, id, tok, 100, &mut buf).expect("eof"), IoReply::Done(0));
        // Sparse write extends with zeroes.
        fs.write(&mut (), P, id, tok, 20, b"x").expect("sparse");
        let mut b2 = [9u8; 2];
        fs.read(&mut (), P, id, tok, 18, &mut b2).expect("read sparse");
        assert_eq!(b2, [0, 0]);
    }

    #[test]
    fn permissions_enforced_on_open() {
        let mut fs = Fs::new();
        let id = fs.install("/secret", 0o600, 100, 10, b"s".to_vec());
        let owner = Cred::new(100, 10);
        let other = Cred::new(200, 20);
        assert!(fs.open(&mut (), P, id, OFlags::rdonly(), &owner).is_ok());
        assert_eq!(fs.open(&mut (), P, id, OFlags::rdonly(), &other), Err(Errno::EACCES));
        assert_eq!(fs.open(&mut (), P, id, OFlags::rdwr(), &other), Err(Errno::EACCES));
    }

    #[test]
    fn create_unlink_cycle() {
        let mut fs = Fs::new();
        let cred = Cred::superuser();
        let root = NodeId(0);
        let f = fs.create(&mut (), P, root, "new", 0o644, &cred).expect("create");
        assert_eq!(fs.create(&mut (), P, root, "new", 0o644, &cred), Err(Errno::EEXIST));
        assert_eq!(fs.lookup(&mut (), P, root, "new").expect("lookup"), f);
        fs.unlink(&mut (), P, root, "new").expect("unlink");
        assert_eq!(fs.lookup(&mut (), P, root, "new"), Err(Errno::ENOENT));
        assert_eq!(fs.unlink(&mut (), P, root, "new"), Err(Errno::ENOENT));
    }

    #[test]
    fn unlink_nonempty_dir_fails() {
        let mut fs = Fs::new();
        fs.install("/dir/file", 0o644, 0, 0, vec![]);
        let root = NodeId(0);
        assert_eq!(fs.unlink(&mut (), P, root, "dir"), Err(Errno::ENOTEMPTY));
    }

    #[test]
    fn readdir_lists_sorted() {
        let mut fs = Fs::new();
        fs.install("/b", 0o644, 0, 0, vec![]);
        fs.install("/a", 0o644, 0, 0, vec![]);
        fs.mkdir_p(&["c"]);
        let names: Vec<String> = fs
            .readdir(&mut (), P, NodeId(0))
            .expect("readdir")
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn trunc_on_open() {
        let mut fs = Fs::new();
        let cred = Cred::superuser();
        let id = fs.install("/f", 0o644, 0, 0, b"old content".to_vec());
        let flags = OFlags { read: true, write: true, trunc: true, ..Default::default() };
        fs.open(&mut (), P, id, flags, &cred).expect("open");
        assert!(fs.file_bytes(id).expect("bytes").is_empty());
    }

    #[test]
    fn setuid_mode_preserved() {
        let mut fs = Fs::new();
        let id = fs.install("/bin/su", 0o4755, 0, 0, b"x".to_vec());
        let meta = fs.getattr(&mut (), id).expect("attr");
        assert_eq!(meta.mode & 0o4000, 0o4000);
        assert_eq!(meta.ls_mode(), "-rwsr-xr-x");
    }

    #[test]
    fn dir_io_is_rejected() {
        let mut fs = Fs::new();
        fs.mkdir_p(&["d"]);
        let d = fs.lookup(&mut (), P, NodeId(0), "d").expect("d");
        let mut buf = [0u8; 1];
        assert_eq!(fs.read(&mut (), P, d, OpenToken(0), 0, &mut buf), Err(Errno::EISDIR));
        assert_eq!(fs.write(&mut (), P, d, OpenToken(0), 0, &[1]), Err(Errno::EISDIR));
        let cred = Cred::superuser();
        assert_eq!(fs.open(&mut (), P, d, OFlags::rdwr(), &cred), Err(Errno::EISDIR));
    }
}
