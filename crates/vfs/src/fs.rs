//! The file-system-type interface: the set of vnode operations.
//!
//! "The upper level requests the creation of vnodes by the lower level,
//! and these vnodes are subsequently supplied as operands to other file
//! operations. The set of vnode operations includes open, close, read,
//! write, ioctl, lookup, create, remove, and many more. The developer of
//! a file system type provides the code that implements the necessary set
//! of vnode operations for that type."
//!
//! The trait is generic over `K`, the kernel context. Conventional file
//! systems ([`crate::MemFs`]) ignore it; `/proc` is "an unconventional
//! file system and not an 'add-on'" — its operations manipulate kernel
//! process state through `K`.

use crate::cred::Cred;
use crate::errno::{Errno, SysResult};
use crate::node::{DirEntry, Metadata, NodeId, Pid};

/// Open flags, decoded from the numeric `open(2)` argument.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Exclusive use. For `/proc` this requests exclusive *control*: the
    /// open fails with `EBUSY` if another writable descriptor exists, and
    /// subsequent writable opens fail while this one is held. (For
    /// ordinary file systems it retains its `O_CREAT|O_EXCL` meaning.)
    pub excl: bool,
    /// Create if absent.
    pub creat: bool,
    /// Truncate on open.
    pub trunc: bool,
}

impl OFlags {
    /// Read-only open.
    pub fn rdonly() -> OFlags {
        OFlags { read: true, ..Default::default() }
    }

    /// Read-write open.
    pub fn rdwr() -> OFlags {
        OFlags { read: true, write: true, ..Default::default() }
    }

    /// Read-write open with exclusive use.
    pub fn rdwr_excl() -> OFlags {
        OFlags { read: true, write: true, excl: true, ..Default::default() }
    }

    /// Write-only open.
    pub fn wronly() -> OFlags {
        OFlags { write: true, ..Default::default() }
    }

    /// Encodes to the numeric `open(2)` flag word used by simulated
    /// programs: bits 0/1 select rd/wr/rdwr the historical way
    /// (0 = read, 1 = write, 2 = rdwr), then O_CREAT=0x100, O_TRUNC=0x200,
    /// O_EXCL=0x400.
    pub fn to_bits(self) -> u64 {
        let acc = match (self.read, self.write) {
            (true, true) => 2,
            (false, true) => 1,
            _ => 0,
        };
        acc | if self.creat { 0x100 } else { 0 }
            | if self.trunc { 0x200 } else { 0 }
            | if self.excl { 0x400 } else { 0 }
    }

    /// Decodes the numeric `open(2)` flag word.
    pub fn from_bits(bits: u64) -> OFlags {
        let (read, write) = match bits & 3 {
            0 => (true, false),
            1 => (false, true),
            _ => (true, true),
        };
        OFlags {
            read,
            write,
            creat: bits & 0x100 != 0,
            trunc: bits & 0x200 != 0,
            excl: bits & 0x400 != 0,
        }
    }
}

/// Per-open state handle returned by [`FileSystem::open`] and passed back
/// on later operations; opaque to the generic layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenToken(pub u64);

/// Result of a read or write that may need to wait.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoReply {
    /// Transferred this many bytes.
    Done(usize),
    /// The operation cannot complete yet; the caller sleeps (or, for a
    /// hosted caller, pumps the scheduler) and retries.
    Block,
}

/// Result of an ioctl that may need to wait (`PIOCWSTOP`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoctlReply {
    /// The operation completed, producing these out-bytes.
    Done(Vec<u8>),
    /// The operation cannot complete yet; retry after scheduling.
    Block,
}

/// Poll status for a node — the paper's proposed extension "by
/// appropriately defining what it means for a /proc file to be 'ready'".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollStatus {
    /// Data (or an event of interest) is available.
    pub readable: bool,
    /// Writing would not block.
    pub writable: bool,
    /// The node is in an exceptional state (for `/proc`: the process has
    /// terminated and the descriptor is effectively dead).
    pub hangup: bool,
}

impl PollStatus {
    /// Input-readiness (`POLLIN | POLLHUP`): an event is available or
    /// the node is dead. This is the bit a debugger waits on — `/proc`
    /// files of live processes are always writable, so writability says
    /// nothing about stop events.
    pub fn ready(self) -> bool {
        self.readable || self.hangup
    }
}

/// The vnode-operations interface implemented by each file system type.
///
/// Operations that involve the calling process receive its [`Pid`] and
/// credentials explicitly; `K` supplies whatever kernel state the file
/// system type requires (nothing for conventional types, everything for
/// `/proc`).
pub trait FileSystem<K> {
    /// Short type name ("memfs", "proc", ...).
    fn type_name(&self) -> &'static str;

    /// The root node of this file system.
    fn root(&self) -> NodeId;

    /// Resolves `name` within directory `dir`.
    fn lookup(&mut self, k: &mut K, cur: Pid, dir: NodeId, name: &str) -> SysResult<NodeId>;

    /// Attributes of `node`.
    fn getattr(&mut self, k: &mut K, node: NodeId) -> SysResult<Metadata>;

    /// Entries of directory `dir` (without `.`/`..`).
    fn readdir(&mut self, k: &mut K, cur: Pid, dir: NodeId) -> SysResult<Vec<DirEntry>>;

    /// Creates a regular file. Conventional file systems only.
    fn create(
        &mut self,
        _k: &mut K,
        _cur: Pid,
        _dir: NodeId,
        _name: &str,
        _mode: u16,
        _cred: &Cred,
    ) -> SysResult<NodeId> {
        Err(Errno::EROFS)
    }

    /// Creates a directory. Conventional file systems only.
    fn mkdir(
        &mut self,
        _k: &mut K,
        _cur: Pid,
        _dir: NodeId,
        _name: &str,
        _mode: u16,
        _cred: &Cred,
    ) -> SysResult<NodeId> {
        Err(Errno::EROFS)
    }

    /// Removes a directory entry. Conventional file systems only.
    fn unlink(&mut self, _k: &mut K, _cur: Pid, _dir: NodeId, _name: &str) -> SysResult<()> {
        Err(Errno::EROFS)
    }

    /// Opens `node`. Returns a token carried on subsequent per-open
    /// operations. Permission and exclusivity enforcement live here.
    fn open(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        flags: OFlags,
        cred: &Cred,
    ) -> SysResult<OpenToken>;

    /// Closes a descriptor previously opened with `flags`.
    fn close(&mut self, k: &mut K, cur: Pid, node: NodeId, token: OpenToken, flags: OFlags);

    /// Reads at `off` into `buf`.
    fn read(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        buf: &mut [u8],
    ) -> SysResult<IoReply>;

    /// Writes `data` at `off`.
    fn write(
        &mut self,
        k: &mut K,
        cur: Pid,
        node: NodeId,
        token: OpenToken,
        off: u64,
        data: &[u8],
    ) -> SysResult<IoReply>;

    /// Truncates to `len`. Conventional file systems only.
    fn truncate(&mut self, _k: &mut K, _node: NodeId, _len: u64) -> SysResult<()> {
        Err(Errno::EINVAL)
    }

    /// Control operation: `req` selects the operation, `arg` carries the
    /// in-bytes, the reply carries the out-bytes.
    fn ioctl(
        &mut self,
        _k: &mut K,
        _cur: Pid,
        _node: NodeId,
        _token: OpenToken,
        _req: u32,
        _arg: &[u8],
    ) -> SysResult<IoctlReply> {
        Err(Errno::ENOTTY)
    }

    /// Poll readiness of `node`.
    fn poll(&mut self, _k: &mut K, _node: NodeId, _token: OpenToken) -> SysResult<PollStatus> {
        Ok(PollStatus { readable: true, writable: true, hangup: false })
    }

    /// Captures transport state carried *outside* the kernel, for
    /// recording snapshots. Only the remote wire has any
    /// ([`crate::remote::RemoteFs`] overrides this); plain file systems
    /// return `None` and are cloned wholesale instead.
    fn wire_snapshot(&self) -> Option<crate::remote::WireSnapshot> {
        None
    }

    /// Restores transport state captured by
    /// [`FileSystem::wire_snapshot`]. Returns `false` when this file
    /// system has no wire state to restore (the snapshot cannot be
    /// applied and the caller must rebuild instead).
    fn wire_restore(&mut self, _snap: &crate::remote::WireSnapshot) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oflags_roundtrip() {
        for f in [
            OFlags::rdonly(),
            OFlags::rdwr(),
            OFlags::rdwr_excl(),
            OFlags::wronly(),
            OFlags { read: true, write: true, creat: true, trunc: true, excl: false },
        ] {
            assert_eq!(OFlags::from_bits(f.to_bits()), f, "{f:?}");
        }
    }

    #[test]
    fn oflags_bit_layout_matches_convention() {
        assert_eq!(OFlags::rdonly().to_bits(), 0);
        assert_eq!(OFlags::wronly().to_bits(), 1);
        assert_eq!(OFlags::rdwr().to_bits(), 2);
        assert_eq!(OFlags::rdwr_excl().to_bits(), 2 | 0x400);
    }
}
