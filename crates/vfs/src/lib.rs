//! The Virtual File System layer.
//!
//! "The implementation of /proc as a set of 'files' is facilitated by the
//! Virtual File System (VFS) architecture of SVR4 ... VFS permits the
//! coexistence on a single system of several disparate file system types
//! (fstypes) by providing a clean separation of file system code into
//! generic (file system-independent) and specific (file system-dependent)
//! pieces with a well-defined but narrow interface between the pieces."
//!
//! This crate is the *generic* piece:
//!
//! * [`Errno`] and shared credential/identity types used across the
//!   system;
//! * the [`FileSystem`] trait — the vnode-operations interface a file
//!   system type implements (`lookup`, `readdir`, `read`, `write`,
//!   `ioctl`, `getattr`, ...). It is generic over a kernel-context type
//!   `K` so that unconventional file systems (such as `/proc`, which is
//!   intimately connected with process control) can reach kernel state
//!   without a dependency cycle;
//! * [`MountTable`] — path-prefix resolution onto mounted file systems;
//! * [`MemFs`] — a conventional in-memory file system holding executables
//!   and data files (standing in for the paper's disk file systems);
//! * [`remote`] — an RFS-like marshalling shim that serialises VFS
//!   operations onto a simulated wire, used to reproduce the paper's
//!   argument that `read`/`write`-style interfaces generalise to networks
//!   more cleanly than `ioctl`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The VFS layer sits under every caller in the workspace, including the
// wire server's fault-injection paths: a stray `unwrap` here turns an
// injected fault into a panic instead of a typed errno. Tests opt back
// in per-module.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cred;
pub mod errno;
pub mod fs;
pub mod memfs;
pub mod mount;
pub mod node;
pub mod path;
pub mod remote;

pub use cred::Cred;
pub use errno::{Errno, SysResult};
pub use fs::{FileSystem, IoReply, IoctlReply, OFlags, OpenToken, PollStatus};
pub use memfs::MemFs;
pub use mount::MountTable;
pub use node::{DirEntry, Metadata, NodeId, Pid, VnodeKind};
