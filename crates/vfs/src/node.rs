//! Vnode-level identities and metadata.

use crate::cred::{Gid, Uid};

/// A process identifier. Defined here (the bottom shared crate) because
/// VFS operations carry the calling process's identity; the kernel crate
/// re-exports it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A node identifier within one file system. Meaning is private to the
/// file system type ("private data is opaque to the upper level").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

/// File types as seen in directory listings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VnodeKind {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// A process file (flat `/proc`); lists like a plain file, sized by
    /// the process's virtual memory.
    Proc,
    /// FIFO (pipe given a name; unused by the current memfs).
    Fifo,
}

impl VnodeKind {
    /// The type character used in `ls -l` output.
    pub fn ls_char(self) -> char {
        match self {
            VnodeKind::Regular | VnodeKind::Proc => '-',
            VnodeKind::Directory => 'd',
            VnodeKind::Fifo => 'p',
        }
    }
}

/// Mode bit: set-user-id on execute.
pub const MODE_SETUID: u16 = 0o4000;
/// Mode bit: set-group-id on execute.
pub const MODE_SETGID: u16 = 0o2000;

/// File attributes returned by `getattr` (the public vnode data plus what
/// `stat(2)` reports).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metadata {
    /// File type.
    pub kind: VnodeKind,
    /// Permission bits plus set-id bits.
    pub mode: u16,
    /// Owning user (for `/proc`: the process's real uid).
    pub uid: Uid,
    /// Owning group (for `/proc`: the process's real gid).
    pub gid: Gid,
    /// Size in bytes (for `/proc`: total virtual memory of the process).
    pub size: u64,
    /// Link count.
    pub nlink: u32,
    /// Modification time, seconds since the simulated epoch.
    pub mtime: u64,
}

impl Metadata {
    /// Renders the mode in `ls -l` style, e.g. `-rw-------` or
    /// `-rwsr-xr-x` for a setuid executable.
    pub fn ls_mode(&self) -> String {
        let mut s = String::with_capacity(10);
        s.push(self.kind.ls_char());
        let trio = |bits: u16| {
            [
                if bits & 4 != 0 { 'r' } else { '-' },
                if bits & 2 != 0 { 'w' } else { '-' },
                if bits & 1 != 0 { 'x' } else { '-' },
            ]
        };
        let mut owner = trio(self.mode >> 6);
        if self.mode & MODE_SETUID != 0 {
            owner[2] = if owner[2] == 'x' { 's' } else { 'S' };
        }
        let mut group = trio(self.mode >> 3);
        if self.mode & MODE_SETGID != 0 {
            group[2] = if group[2] == 'x' { 's' } else { 'S' };
        }
        let other = trio(self.mode);
        s.extend(owner);
        s.extend(group);
        s.extend(other);
        s
    }
}

/// One directory entry from `readdir`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name within the directory.
    pub name: String,
    /// The named node.
    pub node: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(kind: VnodeKind, mode: u16) -> Metadata {
        Metadata { kind, mode, uid: 0, gid: 0, size: 0, nlink: 1, mtime: 0 }
    }

    #[test]
    fn ls_mode_plain() {
        assert_eq!(meta(VnodeKind::Regular, 0o600).ls_mode(), "-rw-------");
        assert_eq!(meta(VnodeKind::Directory, 0o755).ls_mode(), "drwxr-xr-x");
        assert_eq!(meta(VnodeKind::Proc, 0o600).ls_mode(), "-rw-------");
    }

    #[test]
    fn ls_mode_setid() {
        assert_eq!(meta(VnodeKind::Regular, 0o4755).ls_mode(), "-rwsr-xr-x");
        assert_eq!(meta(VnodeKind::Regular, 0o4644).ls_mode(), "-rwSr--r--");
        assert_eq!(meta(VnodeKind::Regular, 0o2755).ls_mode(), "-rwxr-sr-x");
    }

    #[test]
    fn pid_displays_bare() {
        assert_eq!(Pid(42).to_string(), "42");
    }
}
