//! The mount table: path-prefix resolution onto file system instances.
//!
//! "In general any resource can be made to appear within the file system
//! name space if it makes sense to view it that way." The kernel mounts
//! the root memfs at `/`, the flat `/proc` at `/proc`, and the proposed
//! hierarchical restructuring at `/proc2`; this table routes an absolute
//! path to the responsible file system plus the remaining components.

use crate::path::components;

/// Identifier of a mounted file system (index into the kernel's file
/// system vector).
pub type FsId = u32;

/// A single mount: a path prefix served by one file system instance.
#[derive(Clone, Debug)]
struct Mount {
    prefix: Vec<String>,
    fs: FsId,
}

/// The table of mounts. Longest-prefix match wins, so `/proc` shadows the
/// `proc` directory entry of the root file system (if any).
#[derive(Clone, Debug, Default)]
pub struct MountTable {
    mounts: Vec<Mount>,
}

impl MountTable {
    /// An empty table.
    pub fn new() -> MountTable {
        MountTable::default()
    }

    /// Adds a mount of `fs` at absolute path `prefix`. Returns `false`
    /// (and does nothing) if the path is relative or already mounted.
    pub fn add(&mut self, prefix: &str, fs: FsId) -> bool {
        let Some(parts) = components(prefix) else {
            return false;
        };
        if self.mounts.iter().any(|m| m.prefix == parts) {
            return false;
        }
        self.mounts.push(Mount { prefix: parts, fs });
        // Longest prefixes first for matching.
        self.mounts.sort_by_key(|m| std::cmp::Reverse(m.prefix.len()));
        true
    }

    /// Resolves an absolute path to `(fs, remaining_components)`.
    /// Returns `None` for relative paths or when nothing is mounted.
    pub fn resolve(&self, path: &str) -> Option<(FsId, Vec<String>)> {
        let parts = components(path)?;
        for m in &self.mounts {
            if parts.len() >= m.prefix.len() && parts[..m.prefix.len()] == m.prefix[..] {
                return Some((m.fs, parts[m.prefix.len()..].to_vec()));
            }
        }
        None
    }

    /// The mounted prefixes (diagnostics).
    pub fn mounts(&self) -> Vec<(String, FsId)> {
        self.mounts.iter().map(|m| (crate::path::join(&m.prefix), m.fs)).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut t = MountTable::new();
        assert!(t.add("/", 0));
        assert!(t.add("/proc", 1));
        assert!(t.add("/proc2", 2));
        assert_eq!(t.resolve("/bin/sh").expect("root"), (0, vec!["bin".into(), "sh".into()]));
        assert_eq!(t.resolve("/proc").expect("proc"), (1, vec![]));
        assert_eq!(t.resolve("/proc/00042").expect("proc"), (1, vec!["00042".into()]));
        assert_eq!(
            t.resolve("/proc2/42/status").expect("proc2"),
            (2, vec!["42".into(), "status".into()])
        );
        assert_eq!(t.resolve("/").expect("root"), (0, vec![]));
    }

    #[test]
    fn duplicate_and_relative_rejected() {
        let mut t = MountTable::new();
        assert!(t.add("/", 0));
        assert!(!t.add("/", 1));
        assert!(!t.add("proc", 1));
    }

    #[test]
    fn no_root_mount_resolves_nothing() {
        let mut t = MountTable::new();
        t.add("/proc", 1);
        assert_eq!(t.resolve("/bin"), None);
        assert!(t.resolve("/proc/1").is_some());
    }
}
