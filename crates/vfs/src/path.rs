//! Path normalisation.

/// Splits an absolute path into normalised components, resolving `.` and
/// `..` lexically. Returns `None` for relative paths. An empty component
/// list denotes the root directory.
pub fn components(path: &str) -> Option<Vec<String>> {
    if !path.starts_with('/') {
        return None;
    }
    let mut out: Vec<String> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            p => out.push(p.to_string()),
        }
    }
    Some(out)
}

/// Joins components back into an absolute path.
pub fn join(parts: &[String]) -> String {
    if parts.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", parts.join("/"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn normalises() {
        assert_eq!(components("/a/b/c").expect("abs"), ["a", "b", "c"]);
        assert_eq!(components("/a//b/./c/").expect("abs"), ["a", "b", "c"]);
        assert_eq!(components("/a/b/../c").expect("abs"), ["a", "c"]);
        assert_eq!(components("/../a").expect("abs"), ["a"]);
        assert!(components("/").expect("abs").is_empty());
        assert_eq!(components("relative"), None);
    }

    #[test]
    fn join_inverts() {
        for p in ["/", "/proc", "/proc/00042", "/bin/spin"] {
            assert_eq!(join(&components(p).expect("abs")), p);
        }
    }
}
