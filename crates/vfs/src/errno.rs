//! System error numbers, following classic System V numbering.

/// UNIX error numbers returned by failing system calls.
///
/// The numeric values follow System V so that simulated user programs see
/// the numbers they would on the real system (`rv` holds `-errno` on
/// return from a failed call).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// No such process.
    ESRCH = 3,
    /// Interrupted system call.
    EINTR = 4,
    /// I/O error (also: `/proc` I/O at an unmapped offset).
    EIO = 5,
    /// No such device or address.
    ENXIO = 6,
    /// Argument list too long.
    E2BIG = 7,
    /// Exec format error.
    ENOEXEC = 8,
    /// Bad file descriptor.
    EBADF = 9,
    /// No child processes.
    ECHILD = 10,
    /// Resource temporarily unavailable.
    EAGAIN = 11,
    /// Out of memory (or out of address space).
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// Bad address.
    EFAULT = 14,
    /// Device or resource busy (also: exclusive-use `/proc` open
    /// collision).
    EBUSY = 16,
    /// File exists.
    EEXIST = 17,
    /// No such device.
    ENODEV = 19,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// Too many open files in system.
    ENFILE = 23,
    /// Too many open files in the process.
    EMFILE = 24,
    /// Inappropriate ioctl for device.
    ENOTTY = 25,
    /// File too large.
    EFBIG = 27,
    /// No space left on device.
    ENOSPC = 28,
    /// Illegal seek.
    ESPIPE = 29,
    /// Read-only file system.
    EROFS = 30,
    /// Broken pipe.
    EPIPE = 32,
    /// Resource deadlock avoided (also: a hosted blocking call that can
    /// provably never complete in the simulation).
    EDEADLK = 45,
    /// Directory not empty.
    ENOTEMPTY = 93,
    /// Operation not supported (e.g. an ioctl that cannot be marshalled
    /// across the remote shim).
    ENOTSUP = 48,
    /// Function not implemented (unknown system call number).
    ENOSYS = 89,
    /// Connection timed out (a remote `/proc` operation exhausted its
    /// retry budget without a usable reply).
    ETIMEDOUT = 145,
}

impl Errno {
    /// Symbolic name, for `truss`-style output.
    pub fn name(self) -> &'static str {
        use Errno::*;
        match self {
            EPERM => "EPERM",
            ENOENT => "ENOENT",
            ESRCH => "ESRCH",
            EINTR => "EINTR",
            EIO => "EIO",
            ENXIO => "ENXIO",
            E2BIG => "E2BIG",
            ENOEXEC => "ENOEXEC",
            EBADF => "EBADF",
            ECHILD => "ECHILD",
            EAGAIN => "EAGAIN",
            ENOMEM => "ENOMEM",
            EACCES => "EACCES",
            EFAULT => "EFAULT",
            EBUSY => "EBUSY",
            EEXIST => "EEXIST",
            ENODEV => "ENODEV",
            ENOTDIR => "ENOTDIR",
            EISDIR => "EISDIR",
            EINVAL => "EINVAL",
            ENFILE => "ENFILE",
            EMFILE => "EMFILE",
            ENOTTY => "ENOTTY",
            EFBIG => "EFBIG",
            ENOSPC => "ENOSPC",
            ESPIPE => "ESPIPE",
            EROFS => "EROFS",
            EPIPE => "EPIPE",
            EDEADLK => "EDEADLK",
            ENOTEMPTY => "ENOTEMPTY",
            ENOTSUP => "ENOTSUP",
            ENOSYS => "ENOSYS",
            ETIMEDOUT => "ETIMEDOUT",
        }
    }

    /// Recovers an `Errno` from its number, if defined.
    pub fn from_i32(v: i32) -> Option<Errno> {
        use Errno::*;
        Some(match v {
            1 => EPERM,
            2 => ENOENT,
            3 => ESRCH,
            4 => EINTR,
            5 => EIO,
            6 => ENXIO,
            7 => E2BIG,
            8 => ENOEXEC,
            9 => EBADF,
            10 => ECHILD,
            11 => EAGAIN,
            12 => ENOMEM,
            13 => EACCES,
            14 => EFAULT,
            16 => EBUSY,
            17 => EEXIST,
            19 => ENODEV,
            20 => ENOTDIR,
            21 => EISDIR,
            22 => EINVAL,
            23 => ENFILE,
            24 => EMFILE,
            25 => ENOTTY,
            27 => EFBIG,
            28 => ENOSPC,
            29 => ESPIPE,
            30 => EROFS,
            32 => EPIPE,
            45 => EDEADLK,
            93 => ENOTEMPTY,
            48 => ENOTSUP,
            89 => ENOSYS,
            145 => ETIMEDOUT,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl std::error::Error for Errno {}

impl Errno {
    /// Encodes for the wire: the `u32` image of the System V number.
    pub fn to_wire(self) -> u32 {
        self as i32 as u32
    }

    /// Decodes a wire error image; unknown numbers degrade to `EIO`
    /// rather than inventing an errno the kernel never produced.
    pub fn from_wire(code: u32) -> Errno {
        Errno::from_i32(code as i32).unwrap_or(Errno::EIO)
    }
}

/// The standard result type of system-call-layer operations.
pub type SysResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_numbers() {
        for e in [
            Errno::EPERM,
            Errno::ENOENT,
            Errno::EINTR,
            Errno::EIO,
            Errno::EBADF,
            Errno::ECHILD,
            Errno::EACCES,
            Errno::EBUSY,
            Errno::EINVAL,
            Errno::ENOTTY,
            Errno::EDEADLK,
            Errno::ENOSYS,
            Errno::ETIMEDOUT,
        ] {
            assert_eq!(Errno::from_i32(e as i32), Some(e));
        }
        assert_eq!(Errno::from_i32(0), None);
        assert_eq!(Errno::from_i32(-1), None);
    }

    #[test]
    fn names_match() {
        assert_eq!(Errno::EINTR.name(), "EINTR");
        assert_eq!(Errno::EINTR.to_string(), "EINTR");
    }
}
