//! End-to-end kernel tests: simulated programs executing real system
//! calls on the virtual CPU, exercising the process model the paper's
//! `/proc` interface controls.

use ksim::ptrace::{decode_status, WaitStatus};
use ksim::signal::{SIGINT, SIGKILL, SIGPIPE, SIGSEGV};
use ksim::{Cred, Pid, System};
use vfs::OFlags;

/// Boots a system with a hosted controller owned by uid 100.
fn boot() -> (System, Pid) {
    let mut sys = System::boot();
    let ctl = sys.spawn_hosted("ctl", Cred::new(100, 10));
    (sys, ctl)
}

fn run_and_wait(sys: &mut System, ctl: Pid, src: &str) -> (Pid, u16) {
    sys.install_program("/bin/prog", src);
    let pid = sys.spawn_program(ctl, "/bin/prog", &["prog"]).expect("spawn");
    let (wpid, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(wpid, pid);
    (pid, status)
}

#[test]
fn exit_status_propagates() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 1      ; exit
            movi a0, 7
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(7));
}

#[test]
fn getpid_and_write_to_file() {
    let (mut sys, ctl) = boot();
    sys.memfs_mut().install("/tmp/out", 0o666, 100, 10, vec![]);
    let (pid, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 20             ; getpid
            syscall
            la   a0, pidcell
            st   rv, [a0]
            movi rv, 5              ; open("/tmp/out", O_WRONLY)
            la   a0, path
            movi a1, 1
            syscall
            mov  a0, rv             ; fd
            movi rv, 4              ; write(fd, pidcell, 8)
            la   a1, pidcell
            movi a2, 8
            syscall
            movi rv, 1              ; exit(0)
            movi a0, 0
            syscall
        .data
        path:    .asciz "/tmp/out"
        .align 8
        pidcell: .word 0
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(0));
    // The file now holds the child's pid, written by the child itself.
    let fd = sys.host_open(ctl, "/tmp/out", OFlags::rdonly()).expect("open");
    let mut buf = [0u8; 8];
    assert_eq!(sys.host_read(ctl, fd, &mut buf).expect("read"), 8);
    assert_eq!(u64::from_le_bytes(buf), pid.0 as u64);
}

#[test]
fn fork_parent_and_child_disambiguate() {
    let (mut sys, ctl) = boot();
    sys.memfs_mut().install("/tmp/f", 0o666, 100, 10, vec![]);
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 2          ; fork
            syscall
            beq  rv, zero, child
            ; parent: wait for the child, exit with 0
            movi rv, 7          ; wait(0)
            movi a0, 0
            syscall
            movi rv, 1
            movi a0, 0
            syscall
        child:
            movi rv, 1          ; exit(5)
            movi a0, 5
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(0));
}

#[test]
fn pipe_between_parent_and_child() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        ; parent writes "ok" into a pipe; child reads it and exits with
        ; the byte count; parent exits with the child's code via wait.
        _start:
            movi rv, 42         ; pipe(&fds)
            la   a0, fds
            syscall
            movi rv, 2          ; fork
            syscall
            beq  rv, zero, child
            ; parent: write to fds[1]
            la   a0, fds
            ld   a0, [a0+8]
            movi rv, 4          ; write(wfd, msg, 2)
            la   a1, msg
            movi a2, 2
            syscall
            movi rv, 7          ; wait(&st)
            la   a0, st
            syscall
            la   a0, st
            ld   a0, [a0]
            shri a0, a0, 8      ; exit code of child
            movi rv, 1
            syscall
        child:
            la   a0, fds
            ld   a0, [a0]       ; rfd
            movi rv, 3          ; read(rfd, buf, 16) — sleeps until data
            la   a1, buf
            movi a2, 16
            syscall
            mov  a0, rv
            movi rv, 1          ; exit(n)
            syscall
        .data
        .align 8
        fds: .space 16
        st:  .word 0
        msg: .asciz "ok"
        buf: .space 16
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(2));
}

#[test]
fn signal_handler_runs_and_sigreturn_restores() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        ; Install a SIGUSR1 handler, kill ourselves, verify the handler
        ; ran (it sets a flag), then exit with flag value.
        _start:
            movi rv, 48         ; sigaction(SIGUSR1, handler, 0)
            movi a0, 16
            la   a1, handler
            movi a2, 0
            syscall
            movi rv, 20         ; getpid
            syscall
            mov  a0, rv
            movi rv, 37         ; kill(self, SIGUSR1)
            movi a1, 16
            syscall
            ; after handler returns:
            la   a0, flag
            ld   a0, [a0]
            movi rv, 1          ; exit(flag)
            syscall
        handler:
            la   a1, flag
            movi a2, 1
            st   a2, [a1]
            ret                 ; returns via the kernel sigreturn trampoline
        .data
        .align 8
        flag: .word 0
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(1));
}

#[test]
fn uncaught_signal_kills_with_core() {
    let (mut sys, ctl) = boot();
    sys.install_program(
        "/bin/spin",
        r#"
        _start:
        loop:
            jmp loop
        "#,
    );
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(50);
    sys.host_kill(ctl, pid, SIGSEGV).expect("kill");
    let (wpid, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(wpid, pid);
    assert_eq!(decode_status(status), WaitStatus::Signalled(SIGSEGV, true));
}

#[test]
fn sigkill_terminates_spinner() {
    let (mut sys, ctl) = boot();
    sys.install_program("/bin/spin", "_start:\nloop: jmp loop");
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.run_idle(10);
    sys.host_kill(ctl, pid, SIGKILL).expect("kill");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(decode_status(status), WaitStatus::Signalled(SIGKILL, false));
}

#[test]
fn divide_by_zero_faults_to_sigfpe() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi a0, 7
            movi a1, 0
            div  a2, a0, a1
            movi rv, 1
            movi a0, 0
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Signalled(ksim::signal::SIGFPE, true));
}

#[test]
fn unmapped_access_faults_to_sigsegv() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi a0, 0x10
            ld   a1, [a0]
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Signalled(SIGSEGV, true));
}

#[test]
fn write_to_text_faults() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            la   a0, _start
            st   a0, [a0]       ; text is read/exec: protection fault
        "#,
    );
    // FLTACCESS delivers SIGBUS.
    assert_eq!(
        decode_status(status),
        WaitStatus::Signalled(ksim::signal::SIGBUS, true)
    );
}

#[test]
fn stack_grows_transparently() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        ; Touch memory well below the initial stack: the grows-down
        ; mapping extends silently.
        _start:
            movi a0, 100000
            sub  a1, sp, a0
            movi a2, 123
            st   a2, [a1]
            ld   a3, [a1]
            movi rv, 1
            mov  a0, a3
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(123));
}

#[test]
fn brk_extends_heap() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 17          ; brk(0) — returns current end
            movi a0, 0
            syscall
            mov  a3, rv          ; old end
            addi a0, a3, 65536
            movi rv, 17          ; brk(old + 64K)
            syscall
            st   a3, [a3]        ; store at the old end (now mapped)
            ld   a4, [a3]
            movi rv, 1
            movi a0, 9
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(9));
}

#[test]
fn alarm_delivers_sigalrm() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        ; alarm(1) then pause(): SIGALRM terminates the process.
        _start:
            movi rv, 27         ; alarm(1)
            movi a0, 1
            syscall
            movi rv, 29         ; pause
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Signalled(ksim::signal::SIGALRM, false));
}

#[test]
fn exec_replaces_image() {
    let (mut sys, ctl) = boot();
    sys.install_program(
        "/bin/second",
        r#"
        _start:
            movi rv, 1
            movi a0, 33
            syscall
        "#,
    );
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 11         ; exec("/bin/second", 0)
            la   a0, path
            movi a1, 0
            syscall
            ; not reached
            movi rv, 1
            movi a0, 1
            syscall
        .data
        path: .asciz "/bin/second"
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(33));
}

#[test]
fn argv_reaches_program() {
    let (mut sys, ctl) = boot();
    sys.install_program(
        "/bin/argc",
        r#"
        ; exit(argc + first byte of argv[1])
        _start:
            ld   a2, [a1+8]     ; argv[1]
            ldb  a3, [a2]
            add  a0, a0, a3
            movi rv, 1
            syscall
        "#,
    );
    let pid = sys
        .spawn_program(ctl, "/bin/argc", &["argc", "A"])
        .expect("spawn");
    let _ = pid;
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(decode_status(status), WaitStatus::Exited(2 + b'A'));
}

#[test]
fn sigpipe_on_write_to_closed_pipe() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 42         ; pipe
            la   a0, fds
            syscall
            la   a0, fds
            ld   a0, [a0]       ; rfd
            movi rv, 6          ; close(rfd)
            syscall
            la   a0, fds
            ld   a0, [a0+8]     ; wfd
            movi rv, 4          ; write(wfd, msg, 1)
            la   a1, msg
            movi a2, 1
            syscall
        hang:
            jmp hang
        .data
        .align 8
        fds: .space 16
        msg: .asciz "x"
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Signalled(SIGPIPE, false));
}

#[test]
fn nanosleep_wakes_on_deadline() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 69          ; nanosleep(5000 ticks)
            movi a0, 5000
            syscall
            movi rv, 1
            movi a0, 0
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(0));
}

#[test]
fn threads_share_memory() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        ; Create a second LWP that stores 11 to a cell; main LWP spins
        ; until it sees the store, then exits with the value.
        _start:
            movi rv, 73          ; thr_create(pc, sp, arg)
            la   a0, side
            addi a1, sp, -4096   ; carve a second stack below ours
            movi a2, 11
            syscall
        waitloop:
            la   a3, cell
            ld   a4, [a3]
            beq  a4, zero, waitloop
            movi rv, 1
            mov  a0, a4
            syscall
        side:
            la   a1, cell
            st   a0, [a1]
            movi rv, 74          ; thr_exit
            syscall
        .data
        .align 8
        cell: .word 0
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(11));
}

#[test]
fn ptrace_traced_child_stops_on_signal() {
    let (mut sys, ctl) = boot();
    sys.install_program("/bin/spin", "_start:\nloop: jmp loop");
    let pid = sys.spawn_program(ctl, "/bin/spin", &["spin"]).expect("spawn");
    sys.host_ptrace_traceme(pid).expect("traceme");
    sys.run_idle(10);
    sys.host_kill(ctl, pid, SIGINT).expect("kill");
    // The child stops rather than dying; the parent sees it via wait.
    let (wpid, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(wpid, pid);
    assert_eq!(decode_status(status), WaitStatus::Stopped(SIGINT));
    // Continue clearing the signal; then kill for real with SIGKILL.
    sys.host_ptrace(ctl, ksim::ptrace::PT_CONT, pid, 1, 0).expect("cont");
    sys.run_idle(10);
    sys.host_kill(ctl, pid, SIGKILL).expect("kill");
    let (_, status) = sys.host_wait(ctl).expect("wait");
    assert_eq!(decode_status(status), WaitStatus::Signalled(SIGKILL, false));
}

#[test]
fn vfork_blocks_parent_until_child_exits() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 62         ; vfork
            syscall
            beq  rv, zero, child
            movi rv, 7          ; wait(0) — reap the child
            movi a0, 0
            syscall
            movi rv, 1
            movi a0, 21
            syscall
        child:
            movi rv, 1
            movi a0, 4
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(21));
}

#[test]
fn shared_mmap_between_processes() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        ; Map a shared anonymous region, fork; the child writes 17 into
        ; it, the parent reads it back after wait.
        _start:
            movi rv, 70         ; mmap(0, 4096, RW(3), SHARED|ANON(3), -1, 0)
            movi a0, 0
            movi a1, 4096
            movi a2, 3
            movi a3, 3
            movi a4, -1
            movi a5, 0
            syscall
            mov  a3, rv         ; base — preserved across fork in child too
            movi rv, 2          ; fork
            syscall
            beq  rv, zero, child
            movi rv, 7          ; wait(0)
            movi a0, 0
            syscall
            ld   a0, [a3]
            movi rv, 1          ; exit(*base)
            syscall
        child:
            movi a4, 17
            st   a4, [a3]
            movi rv, 1
            movi a0, 0
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(17));
}

#[test]
fn time_and_getdents_work() {
    let (mut sys, ctl) = boot();
    sys.memfs_mut().install("/docs/a", 0o644, 0, 0, vec![]);
    sys.memfs_mut().install("/docs/b", 0o644, 0, 0, vec![]);
    let entries = sys.list_dir(ctl, "/docs").expect("list");
    assert_eq!(entries.len(), 2);
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        ; getdents on /docs, exit with the returned byte count
        _start:
            movi rv, 5          ; open("/docs", O_RDONLY)
            la   a0, path
            movi a1, 0
            syscall
            mov  a0, rv
            movi rv, 63         ; getdents(fd, buf, 256)
            la   a1, buf
            movi a2, 256
            syscall
            mov  a0, rv
            movi rv, 1
            syscall
        .data
        path: .asciz "/docs"
        .align 8
        buf: .space 256
        "#,
    );
    // Two entries, each 8+2+1 bytes.
    assert_eq!(decode_status(status), WaitStatus::Exited(22));
}

#[test]
fn hosted_deadlock_detected() {
    let (mut sys, ctl) = boot();
    // Reading from an empty pipe we hold both ends of... close the write
    // end first so it is a clean EOF; instead wait with no children.
    let err = sys.host_wait(ctl).expect_err("no children");
    assert_eq!(err, ksim::Errno::ECHILD);
}

#[test]
fn core_dump_written_on_fatal_signal() {
    let (mut sys, ctl) = boot();
    // A writable /tmp is required for cores, as in the classic system.
    let tmp = sys.memfs_mut().mkdir_p(&["tmp"]);
    sys.memfs_mut().set_mode(tmp, 0o777);
    let (pid, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi a0, 1
            movi a1, 0
            div  a2, a0, a1     ; FLTIZDIV -> SIGFPE -> core
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Signalled(ksim::signal::SIGFPE, true));
    // The core file exists and parses.
    let path = format!("/tmp/core.{}", pid.0);
    let meta = sys.stat_path(ctl, &path).expect("core exists");
    assert!(meta.size > 0);
    let fd = sys.host_open(ctl, &path, OFlags::rdonly()).expect("open core");
    let mut image = vec![0u8; meta.size as usize];
    let mut off = 0;
    while off < image.len() {
        let n = sys.host_read(ctl, fd, &mut image[off..]).expect("read");
        if n == 0 {
            break;
        }
        off += n;
    }
    let core = ksim::corefile::Core::from_bytes(&image).expect("parses");
    assert_eq!(core.pid, pid.0);
    assert_eq!(core.sig as usize, ksim::signal::SIGFPE);
    // The PC points at the faulting divide (third instruction).
    assert_eq!(core.gregs.pc, ksim::aout::TEXT_BASE + 2 * 8);
    assert!(core.maps.iter().any(|m| m.name == "stack"));
    assert!(!core.stack.is_empty(), "stack snapshot captured");
}

#[test]
fn no_core_without_writable_tmp() {
    let (mut sys, ctl) = boot();
    // No /tmp at all: death by signal still works, silently coreless.
    let (pid, status) = run_and_wait(
        &mut sys,
        ctl,
        "_start:\nmovi a0, 1\nmovi a1, 0\ndiv a2, a0, a1",
    );
    assert_eq!(decode_status(status), WaitStatus::Signalled(ksim::signal::SIGFPE, true));
    assert!(sys.stat_path(ctl, &format!("/tmp/core.{}", pid.0)).is_err());
}

#[test]
fn sigsuspend_swaps_mask_and_restores() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        ; Block SIGUSR1, then sigsuspend with an empty mask: a pending
        ; SIGUSR1 must be delivered during the suspend, and the handler's
        ; count proves it ran exactly once.
        _start:
            movi rv, 48         ; sigaction(SIGUSR1, handler, 0)
            movi a0, 16
            la   a1, handler
            movi a2, 0
            syscall
            movi rv, 66         ; sigprocmask(BLOCK, &usr1, 0)
            movi a0, 0
            la   a1, usr1set
            movi a2, 0
            syscall
            movi rv, 20         ; getpid
            syscall
            mov  a0, rv
            movi rv, 37         ; kill(self, SIGUSR1) — stays pending
            movi a1, 16
            syscall
            la   a0, count
            ld   a3, [a0]
            bne  a3, zero, fail ; must NOT have run yet (blocked)
            movi rv, 67         ; sigsuspend(&empty) — unblocks + waits
            la   a0, emptyset
            syscall
            la   a0, count
            ld   a3, [a0]
            movi a4, 1
            bne  a3, a4, fail
            ; after sigsuspend returns, the old mask (USR1 blocked) is
            ; back: a second kill stays pending again.
            movi rv, 20
            syscall
            mov  a0, rv
            movi rv, 37
            movi a1, 16
            syscall
            la   a0, count
            ld   a3, [a0]
            movi a4, 1
            bne  a3, a4, fail
            movi rv, 1
            movi a0, 0
            syscall
        fail:
            movi rv, 1
            movi a0, 1
            syscall
        handler:
            la   a1, count
            ld   a2, [a1]
            addi a2, a2, 1
            st   a2, [a1]
            ret
        .data
        .align 8
        usr1set:  .word 0x10000     ; bit 16
        .word 0
        emptyset: .word 0
        .word 0
        count:    .word 0
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(0));
}

#[test]
fn dup_shares_file_offset() {
    let (mut sys, ctl) = boot();
    sys.memfs_mut().install("/data", 0o644, 0, 0, b"abcdef".to_vec());
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 5          ; open("/data", RDONLY)
            la   a0, path
            movi a1, 0
            syscall
            mov  a3, rv
            movi rv, 41         ; dup(fd)
            mov  a0, a3
            syscall
            mov  a4, rv
            ; read 2 bytes via fd, then 1 byte via the dup: offsets share.
            movi rv, 3
            mov  a0, a3
            la   a1, buf
            movi a2, 2
            syscall
            movi rv, 3
            mov  a0, a4
            la   a1, buf
            movi a2, 1
            syscall
            la   a1, buf
            ldb  a0, [a1]       ; must be 'c'
            movi rv, 1
            syscall
        .data
        path: .asciz "/data"
        .align 8
        buf:  .space 8
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(b'c'));
}

#[test]
fn alarm_cancel_returns_remaining_and_stops_signal() {
    let (mut sys, ctl) = boot();
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        _start:
            movi rv, 27         ; alarm(5)
            movi a0, 5
            syscall
            movi rv, 27         ; alarm(0) — cancel; returns remaining >0
            movi a0, 0
            syscall
            beq  rv, zero, fail
            movi rv, 69         ; sleep past where the alarm would fire
            movi a0, 80000
            syscall
            movi rv, 1          ; survived: no SIGALRM
            movi a0, 0
            syscall
        fail:
            movi rv, 1
            movi a0, 1
            syscall
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(0));
}

#[test]
fn getdents_paginates_with_small_buffer() {
    let (mut sys, ctl) = boot();
    for name in ["alpha", "beta", "gamma", "delta"] {
        sys.memfs_mut().install(&format!("/d/{name}"), 0o644, 0, 0, vec![]);
    }
    let (_, status) = run_and_wait(
        &mut sys,
        ctl,
        r#"
        ; Read /d with a buffer sized for ~2 entries at a time; count
        ; total entries seen across calls; exit with the count.
        _start:
            movi rv, 5          ; open("/d", RDONLY)
            la   a0, path
            movi a1, 0
            syscall
            mov  a3, rv         ; fd
            movi a5, 0          ; entries seen
        again:
            movi rv, 63         ; getdents(fd, buf, 32)
            mov  a0, a3
            la   a1, buf
            movi a2, 32
            syscall
            beq  rv, zero, done
            ; each record is 8 + 2 + namelen; count records in rv bytes
            mov  a4, rv         ; bytes
            la   a1, buf
        scan:
            beq  a4, zero, again
            addi a5, a5, 1
            ldb  a2, [a1+8]     ; namelen low byte
            addi a2, a2, 10     ; record length
            add  a1, a1, a2
            sub  a4, a4, a2
            jmp  scan
        done:
            mov  a0, a5
            movi rv, 1
            syscall
        .data
        path: .asciz "/d"
        .align 8
        buf:  .space 64
        "#,
    );
    assert_eq!(decode_status(status), WaitStatus::Exited(4));
}
