//! Single-process checkpoint/restore: the paper's network-transparency
//! claim taken to its logical end.
//!
//! `PIOCCKPT` serialises a stopped process — registers, identity,
//! held-signal mask and the full address-space image — into one byte
//! vector; `PIOCRESTORE` applies such an image to another stopped
//! process, replacing its state wholesale. Both travel through the
//! ordinary `/proc` ioctl path, so a process can be checkpointed on one
//! mount and restored through a remote mount on "another machine" —
//! migration over the wire.
//!
//! The image is self-describing and sparse: every mapping records its
//! geometry (base, length, protections, flags, segment name) plus only
//! its non-zero pages, so a small guest images in a few kilobytes even
//! with a large stack reservation. Restored mappings are always backed
//! by fresh anonymous objects — a restored process shares no pages with
//! its source (a migrated process cannot, and the checkpoint captures
//! content, not identity).

use crate::bytes::le_u64;
use crate::kernel::Kernel;
use crate::proc::LwpState;
use crate::signal::SigSet;
use vfs::{Errno, Pid, SysResult};
use vm::{MapFlags, Prot, SegName, PAGE_SIZE};

/// Magic + version header of a checkpoint image.
pub const CKPT_MAGIC: &[u8; 8] = b"PSCKPT01";

/// Upper bound on a checkpoint image (and therefore on the
/// `PIOCCKPT`/`PIOCRESTORE` wire argument). Images beyond this fail
/// with `EFBIG` rather than overrunning the wire queue caps.
pub const CKPT_MAX: usize = 128 * 1024;

fn enc_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn seg_tag(name: &SegName) -> (u8, Option<&str>) {
    match name {
        SegName::Text => (0, None),
        SegName::Data => (1, None),
        SegName::Bss => (2, None),
        SegName::Stack => (3, None),
        SegName::Break => (4, None),
        SegName::LibText(n) => (5, Some(n)),
        SegName::LibData(n) => (6, Some(n)),
        SegName::Anon => (7, None),
        SegName::Mapped => (8, None),
    }
}

fn seg_untag(tag: u8, name: String) -> SysResult<SegName> {
    Ok(match tag {
        0 => SegName::Text,
        1 => SegName::Data,
        2 => SegName::Bss,
        3 => SegName::Stack,
        4 => SegName::Break,
        5 => SegName::LibText(name),
        6 => SegName::LibData(name),
        7 => SegName::Anon,
        8 => SegName::Mapped,
        _ => return Err(Errno::EINVAL),
    })
}

/// Validates that `pid` is a live, single-LWP process stopped on an
/// event — the only state a checkpoint or restore is coherent in.
fn check_target(k: &Kernel, pid: Pid) -> SysResult<()> {
    let proc = k.proc(pid)?;
    if proc.zombie {
        return Err(Errno::ESRCH);
    }
    if proc.lwps.len() != 1 {
        return Err(Errno::EINVAL);
    }
    if !matches!(proc.lwps[0].state, LwpState::Stopped(_)) {
        return Err(Errno::EBUSY);
    }
    Ok(())
}

/// Serialises the stopped process `pid` into a checkpoint image.
pub fn checkpoint(k: &mut Kernel, pid: Pid) -> SysResult<Vec<u8>> {
    check_target(k, pid)?;
    let proc = k.proc(pid)?;
    let lwp = &proc.lwps[0];
    let mut out = Vec::new();
    out.extend_from_slice(CKPT_MAGIC);
    enc_str(&proc.fname, &mut out);
    enc_str(&proc.psargs, &mut out);
    out.extend_from_slice(&lwp.gregs.to_bytes());
    out.extend_from_slice(&lwp.fpregs.to_bytes());
    out.extend_from_slice(&lwp.held.to_bytes());
    out.extend_from_slice(&proc.aspace.stack_limit.to_le_bytes());
    let maps = proc.aspace.mappings();
    out.extend_from_slice(&(maps.len() as u64).to_le_bytes());
    for m in maps {
        out.extend_from_slice(&m.base.to_le_bytes());
        out.extend_from_slice(&m.len.to_le_bytes());
        out.push((m.prot.read as u8) | (m.prot.write as u8) << 1 | (m.prot.exec as u8) << 2);
        out.push(
            (m.flags.shared as u8)
                | (m.flags.grows_down as u8) << 1
                | (m.flags.is_break as u8) << 2,
        );
        let (tag, name) = seg_tag(&m.name);
        out.push(tag);
        enc_str(name.unwrap_or(""), &mut out);
        // Sparse content: only pages with any non-zero byte.
        let npages = m.len / PAGE_SIZE;
        let mut pages: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        for p in 0..npages {
            if proc
                .aspace
                .kernel_read(&k.objects, m.base + p * PAGE_SIZE, &mut buf)
                .is_err()
            {
                continue;
            }
            if buf.iter().any(|&b| b != 0) {
                pages.push((p, buf.clone()));
            }
        }
        out.extend_from_slice(&(pages.len() as u64).to_le_bytes());
        for (p, bytes) in pages {
            out.extend_from_slice(&p.to_le_bytes());
            out.extend_from_slice(&bytes);
        }
    }
    if out.len() > CKPT_MAX {
        return Err(Errno::EFBIG);
    }
    if let Some(r) = k.recorder.as_mut() {
        r.stats.ckpts += 1;
    }
    Ok(out)
}

/// A bounds-checked little-endian cursor over a checkpoint image.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> SysResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(Errno::EINVAL)?;
        if end > self.b.len() {
            return Err(Errno::EINVAL);
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> SysResult<u64> {
        Ok(le_u64(self.take(8)?))
    }

    fn u8(&mut self) -> SysResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn str(&mut self) -> SysResult<String> {
        let n = self.u64()? as usize;
        if n > CKPT_MAX {
            return Err(Errno::EINVAL);
        }
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| Errno::EINVAL)
    }
}

/// Applies a checkpoint image to the stopped process `pid`, replacing
/// its registers, identity and entire address space. The process stays
/// stopped; resume it with `PIOCRUN` as usual.
pub fn restore(k: &mut Kernel, pid: Pid, image: &[u8]) -> SysResult<()> {
    check_target(k, pid)?;
    if image.len() > CKPT_MAX {
        return Err(Errno::EFBIG);
    }
    let mut c = Cur { b: image, pos: 0 };
    if c.take(CKPT_MAGIC.len())? != CKPT_MAGIC {
        return Err(Errno::EINVAL);
    }
    let fname = c.str()?;
    let psargs = c.str()?;
    let gregs = isa::GregSet::from_bytes(c.take(isa::GregSet::WIRE_LEN)?)
        .ok_or(Errno::EINVAL)?;
    let fpregs = isa::FpregSet::from_bytes(c.take(isa::FpregSet::WIRE_LEN)?)
        .ok_or(Errno::EINVAL)?;
    let held = SigSet::from_bytes(c.take(SigSet::WIRE_LEN)?).ok_or(Errno::EINVAL)?;
    let stack_limit = c.u64()?;
    let nmaps = c.u64()? as usize;
    if nmaps > 1024 {
        return Err(Errno::EINVAL);
    }
    // Parse every mapping fully before mutating the target, so a
    // malformed image has zero side effects.
    struct Seg {
        base: u64,
        len: u64,
        prot: Prot,
        flags: MapFlags,
        name: SegName,
        pages: Vec<(u64, Vec<u8>)>,
    }
    let mut segs = Vec::with_capacity(nmaps);
    for _ in 0..nmaps {
        let base = c.u64()?;
        let len = c.u64()?;
        let pb = c.u8()?;
        let fb = c.u8()?;
        let tag = c.u8()?;
        let name = c.str()?;
        let npages = c.u64()? as usize;
        if len == 0 || npages > (CKPT_MAX / PAGE_SIZE as usize) + 1 {
            return Err(Errno::EINVAL);
        }
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            let p = c.u64()?;
            if p >= len / PAGE_SIZE {
                return Err(Errno::EINVAL);
            }
            pages.push((p, c.take(PAGE_SIZE as usize)?.to_vec()));
        }
        segs.push(Seg {
            base,
            len,
            prot: Prot { read: pb & 1 != 0, write: pb & 2 != 0, exec: pb & 4 != 0 },
            flags: MapFlags {
                shared: fb & 1 != 0,
                grows_down: fb & 2 != 0,
                is_break: fb & 4 != 0,
            },
            name: seg_untag(tag, name)?,
            pages,
        });
    }
    let Kernel { procs, objects, .. } = k;
    let Some(proc) = procs.get_mut(&pid.0) else {
        return Err(Errno::ESRCH);
    };
    proc.aspace.clear(objects);
    for seg in &segs {
        let obj = objects.alloc_anon(seg.len);
        proc.aspace
            .map_fixed(seg.base, seg.len, seg.prot, seg.flags, obj, 0, seg.name.clone())
            .map_err(|_| Errno::EINVAL)?;
    }
    for seg in &segs {
        for (p, bytes) in &seg.pages {
            proc.aspace
                .kernel_write(objects, seg.base + p * PAGE_SIZE, bytes)
                .map_err(|_| Errno::EINVAL)?;
        }
    }
    proc.aspace.stack_limit = stack_limit;
    proc.fname = fname;
    proc.psargs = psargs;
    let lwp = &mut proc.lwps[0];
    lwp.gregs = gregs;
    lwp.gregs.normalize();
    lwp.fpregs = fpregs;
    lwp.held = held;
    lwp.cursig = None;
    lwp.last_fault = None;
    lwp.single_step = false;
    lwp.syscall = None;
    proc.touch();
    if let Some(r) = k.recorder.as_mut() {
        r.stats.ckpts += 1;
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_requires_stopped_single_lwp() {
        let mut k = Kernel::new();
        let pid = k.new_proc(Pid(0), Pid(0), Pid(0), vfs::Cred::new(1, 1), "t", false);
        // Runnable: EBUSY.
        assert_eq!(checkpoint(&mut k, pid).unwrap_err(), Errno::EBUSY);
        // Missing: ESRCH.
        assert_eq!(checkpoint(&mut k, Pid(99)).unwrap_err(), Errno::ESRCH);
    }

    #[test]
    fn malformed_image_rejected_without_side_effects() {
        let mut k = Kernel::new();
        let pid = k.new_proc(Pid(0), Pid(0), Pid(0), vfs::Cred::new(1, 1), "t", false);
        k.procs.get_mut(&pid.0).unwrap().lwps[0].state =
            LwpState::Stopped(crate::proc::StopWhy::Requested);
        let before = k.proc(pid).unwrap().fname.clone();
        assert_eq!(restore(&mut k, pid, b"not a checkpoint"), Err(Errno::EINVAL));
        assert_eq!(k.proc(pid).unwrap().fname, before);
    }
}
