//! Core dump files.
//!
//! "If the action for the signal is SIG_DFL, psig() terminates the
//! process, possibly with a core dump." When a process dies by a
//! core-dumping signal, the kernel writes `/tmp/core.<pid>` (if `/tmp`
//! exists and is writable): a compact post-mortem image holding the
//! fatal signal, the machine state of the representative LWP, the memory
//! map, and the contents of the stack segment — enough for a post-mortem
//! debugger to produce a backtrace-grade diagnosis.

use isa::GregSet;
use vfs::{Errno, SysResult};

const MAGIC: &[u8; 8] = b"PSCORE\x01\0";

/// One mapping descriptor recorded in a core file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreMap {
    /// Base virtual address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Protection bits.
    pub prot: u32,
    /// Advisory name.
    pub name: String,
}

/// A parsed core image.
#[derive(Clone, Debug, PartialEq)]
pub struct Core {
    /// The dumped process.
    pub pid: u32,
    /// The fatal signal.
    pub sig: u32,
    /// Registers of the representative LWP at death.
    pub gregs: GregSet,
    /// The memory map at death.
    pub maps: Vec<CoreMap>,
    /// Base address of the dumped stack snapshot.
    pub stack_base: u64,
    /// The stack bytes (from the stack pointer's page to the top of the
    /// stack mapping, bounded).
    pub stack: Vec<u8>,
}

/// Upper bound on the stack snapshot stored in a core file.
pub const MAX_STACK_DUMP: usize = 64 * 1024;

impl Core {
    /// Serialises the image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.pid.to_le_bytes());
        out.extend_from_slice(&self.sig.to_le_bytes());
        out.extend_from_slice(&self.gregs.to_bytes());
        out.extend_from_slice(&(self.maps.len() as u32).to_le_bytes());
        for m in &self.maps {
            out.extend_from_slice(&m.base.to_le_bytes());
            out.extend_from_slice(&m.len.to_le_bytes());
            out.extend_from_slice(&m.prot.to_le_bytes());
            out.extend_from_slice(&(m.name.len() as u32).to_le_bytes());
            out.extend_from_slice(m.name.as_bytes());
        }
        out.extend_from_slice(&self.stack_base.to_le_bytes());
        out.extend_from_slice(&(self.stack.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.stack);
        out
    }

    /// Parses a core image.
    pub fn from_bytes(b: &[u8]) -> SysResult<Core> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> SysResult<&[u8]> {
            if *pos + n > b.len() {
                return Err(Errno::EINVAL);
            }
            let s = &b[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != MAGIC {
            return Err(Errno::EINVAL);
        }
        let u32_at = |pos: &mut usize| -> SysResult<u32> {
            Ok(crate::bytes::le_u32(take(pos, 4)?))
        };
        let u64_at = |pos: &mut usize| -> SysResult<u64> {
            Ok(crate::bytes::le_u64(take(pos, 8)?))
        };
        let pid = u32_at(&mut pos)?;
        let sig = u32_at(&mut pos)?;
        let gregs = GregSet::from_bytes(take(&mut pos, GregSet::WIRE_LEN)?)
            .ok_or(Errno::EINVAL)?;
        let nmaps = u32_at(&mut pos)? as usize;
        if nmaps > 4096 {
            return Err(Errno::EINVAL);
        }
        let mut maps = Vec::with_capacity(nmaps);
        for _ in 0..nmaps {
            let base = u64_at(&mut pos)?;
            let len = u64_at(&mut pos)?;
            let prot = u32_at(&mut pos)?;
            let nlen = u32_at(&mut pos)? as usize;
            let name = String::from_utf8_lossy(take(&mut pos, nlen)?).into_owned();
            maps.push(CoreMap { base, len, prot, name });
        }
        let stack_base = u64_at(&mut pos)?;
        let stack_len = u64_at(&mut pos)? as usize;
        if stack_len > MAX_STACK_DUMP {
            return Err(Errno::EINVAL);
        }
        let stack = take(&mut pos, stack_len)?.to_vec();
        Ok(Core { pid, sig, gregs, maps, stack_base, stack })
    }

    /// Reads a 64-bit word from the dumped stack, if covered.
    pub fn stack_word(&self, addr: u64) -> Option<u64> {
        let off = addr.checked_sub(self.stack_base)? as usize;
        let bytes = self.stack.get(off..off + 8)?;
        Some(crate::bytes::le_u64(bytes))
    }
}

impl crate::system::System {
    /// Builds the core image of a dying process (before its address
    /// space is torn down). Returns `None` for hosted processes or when
    /// nothing useful can be captured.
    pub(crate) fn capture_core(&self, pid: vfs::Pid, sig: usize) -> Option<Core> {
        let proc = self.kernel.proc(pid).ok()?;
        if proc.hosted || proc.aspace.mappings().is_empty() {
            return None;
        }
        let lwp = proc.rep_lwp();
        let maps: Vec<CoreMap> = proc
            .aspace
            .mappings()
            .iter()
            .map(|m| CoreMap {
                base: m.base,
                len: m.len,
                prot: m.prot.to_bits(),
                name: m.name.to_string(),
            })
            .collect();
        // Stack snapshot: from the page under the stack pointer to the
        // end of its mapping, bounded.
        let sp = lwp.gregs.sp();
        let (stack_base, stack) = match proc.aspace.find(sp) {
            Some(m) => {
                let base = sp & !(vm::PAGE_SIZE - 1);
                let len = ((m.base + m.len - base) as usize).min(MAX_STACK_DUMP);
                let mut buf = vec![0u8; len];
                if proc.aspace.kernel_read(&self.kernel.objects, base, &mut buf).is_err() {
                    buf.clear();
                }
                (base, buf)
            }
            None => (0, Vec::new()),
        };
        Some(Core {
            pid: pid.0,
            sig: sig as u32,
            gregs: lwp.gregs.clone(),
            maps,
            stack_base,
            stack,
        })
    }

    /// Writes the core image to `/tmp/core.<pid>`, silently doing nothing
    /// when `/tmp` is missing or unwritable by the dying process (the
    /// classic behaviour).
    pub(crate) fn write_core(&mut self, pid: vfs::Pid, sig: usize) {
        let Some(core) = self.capture_core(pid, sig) else { return };
        let cred = match self.kernel.proc(pid) {
            Ok(p) => p.cred.clone(),
            Err(_) => return,
        };
        let path = format!("/tmp/core.{}", pid.0);
        let Ok((fsid, dir, _)) = self.resolve_parent(pid, &path) else {
            return;
        };
        if fsid != 0 {
            return;
        }
        let crate::system::System { kernel, fss, .. } = self;
        let crate::system::FsSlot::Mem(memfs) = &mut fss[0] else { return };
        let Ok(meta) = vfs::FileSystem::getattr(memfs, kernel, dir) else {
            return;
        };
        if !cred.file_access(meta.mode, meta.uid, meta.gid, 2) {
            return;
        }
        memfs.install(&path, 0o600, cred.ruid, cred.rgid, core.to_bytes());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn core_roundtrip() {
        let mut g = GregSet::at(0x100_0040);
        g.set_sp(0x7FFF_0000);
        let core = Core {
            pid: 42,
            sig: 11,
            gregs: g,
            maps: vec![CoreMap { base: 0x100_0000, len: 8192, prot: 5, name: "text".into() }],
            stack_base: 0x7FFE_F000,
            stack: vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        };
        let parsed = Core::from_bytes(&core.to_bytes()).expect("roundtrip");
        assert_eq!(parsed, core);
        assert_eq!(parsed.stack_word(0x7FFE_F000), Some(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8])));
        assert_eq!(parsed.stack_word(0x7FFE_F003), None, "past the snapshot");
    }

    #[test]
    fn bad_core_rejected() {
        assert_eq!(Core::from_bytes(b"nope"), Err(Errno::EINVAL));
        assert_eq!(Core::from_bytes(&[]), Err(Errno::EINVAL));
    }
}
